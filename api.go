package busarb

import (
	"fmt"
	"io"
	"sort"
	"time"

	"busarb/client"
	"busarb/internal/bussim"
	"busarb/internal/core"
	"busarb/internal/cyclesim"
	"busarb/internal/dist"
	"busarb/internal/experiment"
	"busarb/internal/membus"
	"busarb/internal/mp"
	"busarb/internal/obs"
	"busarb/internal/snoop"
	"busarb/internal/stats"
	"busarb/internal/workload"
)

// Core types, re-exported so downstream users never import internal
// packages directly.
type (
	// Protocol is an arbitration protocol instance (see NewProtocol).
	Protocol = core.Protocol
	// Factory builds a Protocol for an n-agent bus.
	Factory = core.Factory
	// Outcome is one arbitration result.
	Outcome = core.Outcome
	// SimConfig configures a bus simulation run (§4.1 model).
	SimConfig = bussim.Config
	// Result carries a simulation run's measurements.
	Result = bussim.Result
	// Estimate is a batch-means point estimate with a 90% CI.
	Estimate = stats.Estimate
	// Sampler draws interrequest times.
	Sampler = dist.Sampler
	// Scenario is a named agent population.
	Scenario = workload.Scenario
	// ExperimentOpts controls the statistical effort of table/figure
	// reproduction runs.
	ExperimentOpts = experiment.Opts
)

// Observability layer (internal/obs): a probe receives the simulators'
// event streams; consumers turn them into traces and windowed metrics.
// Every simulator Config has an Observer field accepting a Probe; a nil
// Observer costs nothing.
type (
	// Probe receives simulation events.
	Probe = obs.Probe
	// Event is one simulation event.
	Event = obs.Event
	// EventKind discriminates Event values.
	EventKind = obs.Kind
	// MultiProbe fans one event stream out to several probes.
	MultiProbe = obs.Multi
	// EventFilter forwards only selected event kinds.
	EventFilter = obs.Filter
	// EventBuffer is a probe that records events in memory.
	EventBuffer = obs.Buffer
	// EventCounter counts events by kind.
	EventCounter = obs.Counter
	// JSONLWriter streams events as JSON Lines (the trace format).
	JSONLWriter = obs.JSONLWriter
	// TextTraceWriter streams events as human-readable text.
	TextTraceWriter = obs.TextWriter
	// Metrics aggregates events into windowed per-agent metrics.
	Metrics = obs.Metrics
	// MetricsWindow is one time slice of a Metrics collection.
	MetricsWindow = obs.Window
	// Summary is the cross-simulator headline result.
	Summary = obs.Summary
)

// The event kinds.
const (
	RequestIssued      = obs.RequestIssued
	ArbitrationStart   = obs.ArbitrationStart
	ArbitrationResolve = obs.ArbitrationResolve
	Repass             = obs.Repass
	ServiceStart       = obs.ServiceStart
	ServiceEnd         = obs.ServiceEnd
	CacheMiss          = obs.CacheMiss
	Invalidation       = obs.Invalidation
	BankConflict       = obs.BankConflict
)

// NewMetrics builds a windowed metrics collector (see Metrics).
func NewMetrics(width float64) *Metrics { return obs.NewMetrics(width) }

// ReadTrace decodes a JSONL trace back into events, inverting
// JSONLWriter.
func ReadTrace(r io.Reader) ([]Event, error) { return obs.ReadJSONL(r) }

// RunConfig is implemented by every simulator configuration: SimConfig,
// MachineConfig, CoherentConfig, MemBusConfig, and CycleConfig. All of
// them share the Protocol / Seed / Observer / Horizon field vocabulary.
type RunConfig interface {
	// Validate reports a configuration error without running anything.
	Validate() error
}

// Report is the cross-simulator result surface: every simulator's
// result type can summarize itself. Type-assert to the concrete result
// (*Result, *MachineResult, *CoherentResult, *MemBusResult,
// *CycleResult) for the simulator-specific measurements.
type Report interface {
	Summary() obs.Summary
}

// Run is the unified entry point: it validates cfg, dispatches to the
// simulator the config type belongs to, and returns its result. The
// per-simulator entry points (Simulate, RunMachine, RunCoherent,
// RunMemBus, RunCycle) remain for code that wants the concrete result
// type without an assertion.
func Run(cfg RunConfig) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch c := cfg.(type) {
	case SimConfig:
		return bussim.Run(c), nil
	case MachineConfig:
		return mp.Run(c), nil
	case CoherentConfig:
		return snoop.Run(c), nil
	case MemBusConfig:
		return membus.Run(c), nil
	case CycleConfig:
		return cyclesim.Run(c), nil
	}
	return nil, fmt.Errorf("busarb: unsupported configuration type %T", cfg)
}

// Protocols returns the registered protocol names, sorted.
func Protocols() []string {
	names := core.Names()
	sort.Strings(names)
	return names
}

// NewProtocol builds the named protocol for an n-agent bus. Names are
// those of the paper: "RR1", "RR2", "RR3" (the three round-robin
// implementations of §3.1), "FCFS1", "FCFS2" (the two counter-update
// strategies of §3.2), "Hybrid" (§5), and the baselines "FP", "AAP1",
// "AAP2".
func NewProtocol(name string, n int) (Protocol, error) {
	f, err := core.ByName(name)
	if err != nil {
		return nil, err
	}
	return f(n), nil
}

// NewProtocolFactory returns the Factory for name, for wiring literal
// protocol names into a Config's Protocol field.
func NewProtocolFactory(name string) (Factory, error) {
	return core.ByName(name)
}

// MustProtocol returns the Factory for name, panicking on unknown names.
// Use it for literal protocol names in configuration.
func MustProtocol(name string) Factory {
	f, err := core.ByName(name)
	if err != nil {
		panic(err)
	}
	return f
}

// Simulate runs the §4.1 bus simulation and returns its measurements.
func Simulate(cfg SimConfig) *Result { return bussim.Run(cfg) }

// EqualWorkload builds n identical agents offering totalLoad in
// aggregate with interrequest coefficient of variation cv (§4.2).
func EqualWorkload(n int, totalLoad, cv float64) Scenario {
	return workload.Equal(n, totalLoad, cv)
}

// ScaledWorkload builds the §4.4 population: agent 1 requests at factor
// times the rate of the n-1 identical others.
func ScaledWorkload(n int, baseLoad, factor, cv float64) Scenario {
	return workload.OneScaled(n, baseLoad, factor, cv)
}

// WorstCaseWorkload builds the §4.5 "just miss" population for RR.
func WorstCaseWorkload(n int, cv float64) Scenario {
	return workload.WorstCaseRR(n, cv)
}

// PriorityWorkload builds n equal agents whose requests are urgent with
// the given probability; pair it with a priority-capable protocol from
// NewPriorityProtocol.
func PriorityWorkload(n int, totalLoad, cv, urgentProb float64) Scenario {
	return workload.PriorityMix(n, totalLoad, cv, urgentProb)
}

// NewPriorityProtocol builds the priority-integrated variants of §2.4,
// §3.1 and §3.2. Names: "RR1+prio" (urgent requests ignore the RR
// protocol), "RR1+prio/rr" (round-robin within the urgent class),
// "FCFS1+prio/overflow", "FCFS1+prio/matched", "FCFS2+prio". These are
// also available through NewProtocol; this constructor exists to return
// them with their ClassRequester capability statically known.
func NewPriorityProtocol(name string, n int) (Protocol, error) {
	switch name {
	case "RR1+prio":
		return core.NewPriorityRR(n, core.RRIgnoreWithinClass), nil
	case "RR1+prio/rr":
		return core.NewPriorityRR(n, core.RRWithinClass), nil
	case "FCFS1+prio/overflow":
		return core.NewPriorityFCFS1(n, core.CounterOverflow), nil
	case "FCFS1+prio/matched":
		return core.NewPriorityFCFS1(n, core.CounterMatched), nil
	case "FCFS2+prio":
		return core.NewPriorityFCFS2(n), nil
	}
	return nil, fmt.Errorf("busarb: unknown priority protocol %q", name)
}

// NewMultiFCFS builds the §3.2 extension serving up to r outstanding
// requests per agent in global FCFS order.
func NewMultiFCFS(n, r int) Protocol { return core.NewMultiFCFS(n, r) }

// Experiment re-exports: each function regenerates one of the paper's
// tables or figures; see EXPERIMENTS.md for the recorded outputs.

// Table41 reproduces Table 4.1 (bandwidth allocation among equal
// agents) for n agents; includeAAP adds the assured-access column shown
// for 30 agents.
func Table41(n int, includeAAP bool, o ExperimentOpts) []experiment.Table41Row {
	return experiment.Table41(n, includeAAP, o)
}

// Table42 reproduces Table 4.2 (waiting-time standard deviation).
func Table42(n int, o ExperimentOpts) []experiment.Table42Row {
	return experiment.Table42(n, o)
}

// Figure41 reproduces Figure 4.1 (waiting-time CDFs, RR vs FCFS).
func Figure41(n int, load float64, o ExperimentOpts) experiment.Figure41Result {
	return experiment.Figure41(n, load, o)
}

// Table43 reproduces Table 4.3 (execution overlapped with waiting).
func Table43(n int, o ExperimentOpts) []experiment.Table43Row {
	return experiment.Table43(n, o)
}

// Table44 reproduces Table 4.4 (one agent at factor× request rate).
func Table44(n int, factor float64, o ExperimentOpts) []experiment.Table44Row {
	return experiment.Table44(n, factor, o)
}

// Table45 reproduces Table 4.5 (worst-case RR allocation vs CV).
func Table45(n int, o ExperimentOpts) []experiment.Table45Row {
	return experiment.Table45(n, o)
}

// Multiprocessor substrate (internal/mp): processors with private
// caches whose misses become the arbitrated bus traffic — the workload
// the paper's introduction motivates.
type (
	// Cache is a set-associative write-back LRU cache.
	Cache = mp.Cache
	// Processor couples a cache and a reference pattern into a bus
	// traffic source.
	Processor = mp.Processor
	// Pattern generates synthetic memory-reference streams.
	Pattern = mp.Pattern
	// SequentialPattern streams through memory with a fixed stride.
	SequentialPattern = mp.Sequential
	// WorkingSetPattern references a fixed region uniformly.
	WorkingSetPattern = mp.WorkingSet
	// HotColdPattern mixes a hit-prone hot region with a cold one.
	HotColdPattern = mp.HotCold
	// MachineConfig assembles processors and a protocol into a machine.
	MachineConfig = mp.MachineConfig
	// MachineResult reports bus- and application-level measurements.
	MachineResult = mp.MachineResult
)

// NewCache builds a set-associative write-back cache.
func NewCache(sizeBytes, blockBytes, ways int) *Cache {
	return mp.NewCache(sizeBytes, blockBytes, ways)
}

// RunMachine simulates a shared-bus multiprocessor.
func RunMachine(cfg MachineConfig) *MachineResult { return mp.Run(cfg) }

// Snooping-coherent machine (internal/snoop): MSI caches whose misses,
// upgrades and write-backs are the arbitrated bus traffic, with
// invalidations delivered when transactions commit.
type (
	// CoherentProc is one processor of the snooping machine.
	CoherentProc = snoop.Proc
	// CoherentConfig assembles the snooping machine.
	CoherentConfig = snoop.Config
	// CoherentResult reports its measurements.
	CoherentResult = snoop.Result
	// TxKind is a coherence bus-transaction type.
	TxKind = snoop.TxKind
)

// The coherence transaction kinds.
const (
	BusRd   = snoop.BusRd
	BusRdX  = snoop.BusRdX
	BusUpgr = snoop.BusUpgr
	BusWB   = snoop.BusWB
)

// RunCoherent simulates the snooping-coherent multiprocessor.
func RunCoherent(cfg CoherentConfig) *CoherentResult { return snoop.Run(cfg) }

// Memory bus (internal/membus): banked memory behind connected or
// split-transaction block transfers, with the memory controller as an
// arbitrated bus agent.
type (
	// MemBusConfig assembles the memory-bus machine.
	MemBusConfig = membus.Config
	// MemBusResult reports its measurements.
	MemBusResult = membus.Result
	// MemBusMode selects connected or split transfers.
	MemBusMode = membus.Mode
)

// The memory-bus disciplines.
const (
	Connected = membus.Connected
	Split     = membus.Split
)

// RunMemBus simulates the memory-bus machine.
func RunMemBus(cfg MemBusConfig) *MemBusResult { return membus.Run(cfg) }

// Cycle-level bus (internal/cyclesim): the wired-OR hardware model.
type (
	// CycleConfig drives the cycle-level bus under Bernoulli arrivals.
	CycleConfig = cyclesim.Config
	// CycleResult reports a cycle-level run's measurements.
	CycleResult = cyclesim.RunResult
	// CycleKind selects a line-level protocol implementation.
	CycleKind = cyclesim.Kind
)

// RunCycle simulates the cycle-level bus.
func RunCycle(cfg CycleConfig) *CycleResult { return cyclesim.Run(cfg) }

// LineLevelProtocol maps a protocol name to its line-level Kind. All
// eight non-hybrid protocols have one: FP, RR1, RR2, RR3, FCFS1,
// FCFS2, AAP1, AAP2. The error enumerates the supported names.
func LineLevelProtocol(name string) (CycleKind, error) {
	return cyclesim.KindByName(name)
}

// LineLevelBus builds the cycle-accurate wired-OR bus model for the
// given protocol name (see LineLevelProtocol for the supported set),
// the hardware-shaped counterpart of the abstract protocols.
func LineLevelBus(name string, n int) (*cyclesim.Bus, error) {
	k, err := cyclesim.KindByName(name)
	if err != nil {
		return nil, err
	}
	return cyclesim.New(k, n), nil
}

// Serving layer (busarb/client): the transport-agnostic client for an
// arbd arbitration daemon. Re-exported here so programs embedding the
// simulators and talking to a live daemon need only this package; the
// client package remains importable directly.
type (
	// Client talks to one arbd daemon over the transport its Dial
	// target selects.
	Client = client.Client
	// Lease is a granted resource tenure on a daemon.
	Lease = client.Lease
	// AcquireOptions tunes one Client.Acquire.
	AcquireOptions = client.AcquireOptions
	// DialOption adjusts Dial.
	DialOption = client.Option
)

// The client error taxonomy's sentinels; match with errors.Is.
var (
	// ErrDeadline reports an acquire not granted in time (408).
	ErrDeadline = client.ErrDeadline
	// ErrOverload reports daemon backpressure (503).
	ErrOverload = client.ErrOverload
	// ErrClosed reports use of a closed Client.
	ErrClosed = client.ErrClosed
)

// Dial connects to an arbd daemon; the target's scheme selects the
// transport (http://, https://, or tcp:// for the binary protocol).
func Dial(target string, opts ...DialOption) (*Client, error) {
	return client.Dial(target, opts...)
}

// WithDialTimeout bounds the binary transport's connection attempts.
func WithDialTimeout(d time.Duration) DialOption {
	return client.WithDialTimeout(d)
}
