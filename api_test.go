package busarb

import (
	"math"
	"strings"
	"testing"
)

func TestProtocolsSorted(t *testing.T) {
	names := Protocols()
	if len(names) < 9 {
		t.Fatalf("Protocols() = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("not sorted: %v", names)
		}
	}
}

func TestNewProtocol(t *testing.T) {
	p, err := NewProtocol("RR1", 10)
	if err != nil || p.Name() != "RR1" || p.N() != 10 {
		t.Fatalf("NewProtocol: %v %v", p, err)
	}
	if _, err := NewProtocol("bogus", 10); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestMustProtocolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustProtocol(bogus) did not panic")
		}
	}()
	MustProtocol("bogus")
}

func TestSimulateEndToEnd(t *testing.T) {
	sc := EqualWorkload(10, 1.5, 1.0)
	cfg := SimConfig{Protocol: MustProtocol("RR1"), Seed: 1, Batches: 5, BatchSize: 1000}
	sc.Apply(&cfg)
	res := Simulate(cfg)
	if res.ProtocolName != "RR1" || res.Completions != 5000 {
		t.Fatalf("res = %+v", res)
	}
	if math.Abs(res.ThroughputRatio(10, 1).Mean-1.0) > 0.1 {
		t.Errorf("RR fairness ratio = %s", res.ThroughputRatio(10, 1))
	}
}

func TestWorkloadConstructors(t *testing.T) {
	if s := EqualWorkload(10, 2.0, 0.5); s.N != 10 || math.Abs(s.TotalLoad-2.0) > 1e-9 {
		t.Errorf("EqualWorkload: %+v", s)
	}
	if s := ScaledWorkload(30, 1.0, 2, 1.0); math.Abs(s.TotalLoad-31.0/30.0) > 1e-9 {
		t.Errorf("ScaledWorkload total = %v", s.TotalLoad)
	}
	if s := WorstCaseWorkload(10, 0); s.Inter[0].Mean() != 9.5 {
		t.Errorf("WorstCaseWorkload slow mean = %v", s.Inter[0].Mean())
	}
	if s := PriorityWorkload(8, 1.0, 1.0, 0.3); len(s.UrgentProb) != 8 {
		t.Errorf("PriorityWorkload: %+v", s)
	}
}

func TestNewPriorityProtocol(t *testing.T) {
	for _, name := range []string{"RR1+prio", "RR1+prio/rr", "FCFS1+prio/overflow",
		"FCFS1+prio/matched", "FCFS2+prio"} {
		p, err := NewPriorityProtocol(name, 8)
		if err != nil || p.N() != 8 {
			t.Errorf("%s: %v %v", name, p, err)
		}
	}
	if _, err := NewPriorityProtocol("nope", 8); err == nil {
		t.Error("unknown priority protocol accepted")
	}
}

func TestNewMultiFCFS(t *testing.T) {
	p := NewMultiFCFS(8, 4)
	if p.Name() != "FCFSx4" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestLineLevelBus(t *testing.T) {
	b, err := LineLevelBus("RR1", 6)
	if err != nil {
		t.Fatal(err)
	}
	b.Request(3)
	b.Request(5)
	if err := b.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if got := b.GrantOrder(); len(got) != 2 || got[0] != 5 {
		t.Errorf("grants = %v", got)
	}
	// All eight non-hybrid protocols have a line-level model, RR2 and
	// the AAPs included.
	for _, name := range []string{"FP", "RR1", "RR2", "RR3", "FCFS1", "FCFS2", "AAP1", "AAP2"} {
		if _, err := LineLevelBus(name, 4); err != nil {
			t.Errorf("LineLevelBus(%s): %v", name, err)
		}
	}
	_, err = LineLevelBus("Hybrid", 6)
	if err == nil {
		t.Fatal("Hybrid has no line-level model; want error")
	}
	// The error must enumerate the supported names.
	for _, name := range []string{"RR2", "AAP1", "FCFS2"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not enumerate %q", err, name)
		}
	}
}

func mustCycleKind(name string) CycleKind {
	k, err := LineLevelProtocol(name)
	if err != nil {
		panic(err)
	}
	return k
}

func TestRunDispatch(t *testing.T) {
	// Every Config type routes through the single Run entry point and
	// comes back with a coherent Summary.
	sc := EqualWorkload(4, 1.5, 1.0)
	simCfg := SimConfig{Protocol: MustProtocol("RR1"), Seed: 1, Batches: 2, BatchSize: 200}
	sc.Apply(&simCfg)

	procs := make([]*Processor, 2)
	for i := range procs {
		procs[i] = &Processor{
			Cache:       NewCache(1024, 32, 2),
			Pattern:     &WorkingSetPattern{Bytes: 16384, WriteFrac: 0.3},
			CyclePerRef: 0.2,
		}
	}
	cases := []struct {
		simulator string
		cfg       RunConfig
	}{
		{"bussim", simCfg},
		{"mp", MachineConfig{Processors: procs, Protocol: MustProtocol("RR1"),
			Seed: 2, Batches: 2, BatchSize: 100}},
		{"snoop", CoherentConfig{
			Procs: []*CoherentProc{
				{Pattern: &WorkingSetPattern{Bytes: 8192, WriteFrac: 0.4}, CyclePerRef: 0.5},
				{Pattern: &WorkingSetPattern{Bytes: 8192, WriteFrac: 0.4}, CyclePerRef: 0.5},
			},
			Protocol: MustProtocol("RR1"), Seed: 3, Horizon: 100}},
		{"membus", MemBusConfig{N: 4, Banks: 2, Protocol: MustProtocol("RR1"),
			Inter: simCfg.Inter, Seed: 4, Batches: 2, BatchSize: 100}},
		{"cyclesim", CycleConfig{Protocol: mustCycleKind("RR1"), N: 4, Seed: 5, Horizon: 200}},
	}
	for _, tc := range cases {
		rep, err := Run(tc.cfg)
		if err != nil {
			t.Fatalf("Run(%s): %v", tc.simulator, err)
		}
		s := rep.Summary()
		if s.Simulator != tc.simulator {
			t.Errorf("Summary().Simulator = %q, want %q", s.Simulator, tc.simulator)
		}
		if s.Grants == 0 || s.N == 0 {
			t.Errorf("%s summary = %+v", tc.simulator, s)
		}
	}
}

func TestRunValidatesInsteadOfPanicking(t *testing.T) {
	// A broken config comes back as an error from Run, not a panic.
	if _, err := Run(SimConfig{N: 1}); err == nil {
		t.Error("Run accepted a 1-agent SimConfig")
	}
	if _, err := Run(MemBusConfig{N: 0}); err == nil {
		t.Error("Run accepted an empty MemBusConfig")
	}
	if _, err := Run(CycleConfig{}); err == nil {
		t.Error("Run accepted an empty CycleConfig")
	}
}

func TestNewProtocolFactory(t *testing.T) {
	f, err := NewProtocolFactory("FCFS1")
	if err != nil {
		t.Fatal(err)
	}
	if p := f(6); p.Name() != "FCFS1" || p.N() != 6 {
		t.Errorf("factory built %v/%d", p.Name(), p.N())
	}
	if _, err := NewProtocolFactory("bogus"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestObserverThroughFacade(t *testing.T) {
	var buf EventBuffer
	sc := EqualWorkload(4, 1.5, 1.0)
	cfg := SimConfig{Protocol: MustProtocol("RR1"), Seed: 1, Batches: 2, BatchSize: 100,
		Observer: &buf}
	sc.Apply(&cfg)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var counter EventCounter
	for _, e := range buf.Events() {
		counter.OnEvent(e)
	}
	if counter.Count(ServiceEnd) == 0 || counter.Count(RequestIssued) == 0 {
		t.Errorf("facade probe saw %+v", counter)
	}
}

func TestExperimentFacade(t *testing.T) {
	o := ExperimentOpts{Batches: 3, BatchSize: 300, Seed: 2}
	if rows := Table41(10, false, o); len(rows) == 0 {
		t.Error("Table41 empty")
	}
	if rows := Table42(10, o); len(rows) == 0 {
		t.Error("Table42 empty")
	}
	if f := Figure41(10, 1.5, o); len(f.Points) == 0 {
		t.Error("Figure41 empty")
	}
	if rows := Table43(10, o); len(rows) == 0 {
		t.Error("Table43 empty")
	}
	if rows := Table44(10, 2, o); len(rows) == 0 {
		t.Error("Table44 empty")
	}
	if rows := Table45(10, o); len(rows) == 0 {
		t.Error("Table45 empty")
	}
}
