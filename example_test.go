package busarb_test

import (
	"fmt"

	"busarb"
)

// ExampleSimulate runs the paper's §4.1 bus model under the distributed
// round-robin protocol and reports fairness.
func ExampleSimulate() {
	sc := busarb.EqualWorkload(10, 2.0, 1.0)
	cfg := busarb.SimConfig{
		Protocol:  busarb.MustProtocol("RR1"),
		Seed:      1988,
		Batches:   5,
		BatchSize: 2000,
	}
	sc.Apply(&cfg)
	res := busarb.Simulate(cfg)
	ratio := res.ThroughputRatio(10, 1)
	fmt.Printf("utilization %.2f, fairness ratio within CI of 1.00: %v\n",
		res.Utilization.Mean, ratio.Contains(1.0))
	// Output:
	// utilization 1.00, fairness ratio within CI of 1.00: true
}

// ExampleNewProtocol shows direct protocol use: drive an arbitration by
// hand, as a hardware testbench would.
func ExampleNewProtocol() {
	p, err := busarb.NewProtocol("RR1", 8)
	if err != nil {
		panic(err)
	}
	// Three agents request; arbitrations pick them in round-robin order.
	p.OnRequest(2, 0)
	p.OnRequest(5, 0)
	p.OnRequest(7, 0)
	for _, waiting := range [][]int{{2, 5, 7}, {2, 5}, {2}} {
		out := p.Arbitrate(waiting)
		p.OnServiceStart(out.Winner, 0)
		fmt.Println("granted", out.Winner)
	}
	// Output:
	// granted 7
	// granted 5
	// granted 2
}

// ExampleLineLevelBus drives the cycle-accurate wired-OR model: the
// same grant order emerges from registers, comparators and open-
// collector lines.
func ExampleLineLevelBus() {
	bus, err := busarb.LineLevelBus("FCFS2", 8)
	if err != nil {
		panic(err)
	}
	bus.Request(6)
	bus.Step()
	bus.Request(3) // arrives later than 6: served later despite any id
	if err := bus.RunUntilIdle(100); err != nil {
		panic(err)
	}
	fmt.Println("grant order:", bus.GrantOrder())
	// Output:
	// grant order: [6 3]
}

// ExampleTable45 regenerates the paper's worst-case table at reduced
// effort: the slow agent's throughput collapses only at CV = 0.
func ExampleTable45() {
	rows := busarb.Table45(10, busarb.ExperimentOpts{Batches: 5, BatchSize: 1000, Seed: 1988})
	fmt.Printf("CV=%.2f ratio %.2f\n", rows[0].CV, rows[0].Ratio.Mean)
	recovered := rows[len(rows)-1].Ratio.Mean > 0.65
	fmt.Println("recovers with variability:", recovered)
	// Output:
	// CV=0.00 ratio 0.50
	// recovers with variability: true
}
