# busarb build targets. Everything is plain `go` — this file just names
# the common invocations.

GO ?= go

.PHONY: all build vet test race bench fuzz paper examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus ablations and micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzLoad -fuzztime=30s ./internal/scenario/
	$(GO) test -fuzz=FuzzSettleFindsMax -fuzztime=30s ./internal/contention/

# Full-effort reproduction of the paper's evaluation section.
paper:
	$(GO) run ./cmd/paper -all -ablations

examples:
	for d in examples/*/; do echo "=== $$d ==="; $(GO) run ./$$d; done

clean:
	$(GO) clean ./...
