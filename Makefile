# busarb build targets. Everything is plain `go` — this file just names
# the common invocations.

GO ?= go

.PHONY: all build vet lint lint-stats test race bench bench-json bench-gate check cluster-smoke fuzz paper examples examples-smoke trace-demo clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The repository's own analyzers (internal/analysis, driven by
# cmd/arblint): determinism, nilprobe, validatecall, seedsrc, allocfree,
# syncguard, goroleak. They mechanically enforce the invariants every
# reproduced table rests on; see docs/LINT.md for the catalogue and
# docs/ARCHITECTURE.md ("Static analysis") for how the engine works.
lint:
	$(GO) run ./cmd/arblint ./...

# Like lint, but also print the per-analyzer finding/suppression table
# — a quick read on how many //arblint:allow escapes the tree carries.
lint-stats:
	$(GO) run ./cmd/arblint -stats ./...

# The worker pool in internal/experiment always runs under the race
# detector, even in the quick tier: it is the only concurrency in the
# repository and a data race there silently corrupts table results.
test:
	$(GO) test ./...
	$(GO) test -race ./internal/experiment/...

race:
	$(GO) test -race ./...

# The full gate: what CI (and a careful PR author) runs. gofmt -l
# prints nothing when the tree is clean; grep flips that into an exit
# status.
check: vet build lint race cluster-smoke examples-smoke
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then echo "gofmt needed:"; echo "$$fmt_out"; exit 1; fi

# Three in-process arbd nodes under the race detector: a fresh binary
# (not the cached `race` run) exercising ring ownership, cross-node
# forwarding, and relay correlation end to end. -count=1 forces the
# run even when the race tier already cached the package.
cluster-smoke:
	$(GO) test -race -run 'TestClusterSmoke|TestForwardingEquivalence|TestRoutedFlagOnWire' -count=1 ./internal/arbd/cluster/

# Regenerate the sample event trace committed under docs/: a small
# fixed-seed RR1 run through the -trace JSONL exporter.
trace-demo:
	$(GO) run ./cmd/arbsim -n 4 -protocol RR1 -load 1.5 -seed 7 \
		-batches 2 -batchsize 25 -metrics-window 50 \
		-trace docs/trace-demo.jsonl

# One benchmark per paper table/figure plus ablations and micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Archive today's benchmark suite as BENCH_<date>.json (the perf
# trajectory; commit the snapshot alongside perf-relevant PRs).
bench-json:
	$(GO) test -bench=. -benchmem ./... | $(GO) run ./cmd/benchjson -o BENCH_$$(date +%Y-%m-%d).json

# The bench-regression gate: rerun the suite (short benchtime — only
# allocs/op is compared, and allocation counts don't depend on it) and
# diff against the newest committed snapshot. ns/op is not gated here
# because the hardware differs run to run; use
# `benchjson -compare -ns-threshold=0.25 old new` manually for timing.
BENCHTIME ?= 100ms
bench-gate:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) ./... | \
		$(GO) run ./cmd/benchjson -stamp=false -o /tmp/busarb-bench-new.json
	$(GO) run ./cmd/benchjson -compare -ns-threshold=-1 \
		$$(ls BENCH_*.json | sort | tail -1) /tmp/busarb-bench-new.json

# FUZZTIME is overridable so CI can run a quick smoke
# (`make fuzz FUZZTIME=10s`) while local runs default to 30s per target.
FUZZTIME ?= 30s

fuzz:
	$(GO) test -fuzz=FuzzLoad -fuzztime=$(FUZZTIME) ./internal/scenario/
	$(GO) test -fuzz=FuzzSettleFindsMax -fuzztime=$(FUZZTIME) ./internal/contention/
	$(GO) test -fuzz=FuzzKernelMatchesSettle -fuzztime=$(FUZZTIME) ./internal/contention/
	$(GO) test -fuzz=FuzzReadJSONL -fuzztime=$(FUZZTIME) ./internal/obs/
	$(GO) test -fuzz=FuzzCodecRoundTrip -fuzztime=$(FUZZTIME) ./internal/arbd/codec/
	$(GO) test -fuzz=FuzzRingStability -fuzztime=$(FUZZTIME) ./internal/arbd/cluster/

# Full-effort reproduction of the paper's evaluation section.
paper:
	$(GO) run ./cmd/paper -all -ablations

examples:
	for d in examples/*/; do echo "=== $$d ==="; $(GO) run ./$$d; done

# The check-tier version of `examples`: run every example silently and
# fail on the first broken one. The examples are documented usage of the
# public API, so a runtime regression there is a break, not doc rot.
examples-smoke:
	@for d in examples/*/; do $(GO) run ./$$d >/dev/null || { echo "example $$d failed"; exit 1; }; done

clean:
	$(GO) clean ./...
