module busarb

go 1.22
