// Package busarb reproduces "Distributed Round-Robin and First-Come
// First-Serve Protocols and Their Application to Multiprocessor Bus
// Arbitration" (Mary K. Vernon and Udi Manber, ISCA 1988).
//
// The paper proposes two distributed bus-arbitration protocols built on
// the parallel contention (wired-OR maximum-finding) arbiter used by the
// Futurebus/Fastbus/NuBus/Multibus II standards: a round-robin protocol
// using statically assigned arbitration numbers plus one priority bit,
// and a first-come first-serve protocol whose arbitration numbers carry
// a waiting-time counter in their most significant bits.
//
// This package is the public facade. It re-exports:
//
//   - the protocols (round-robin RR1/RR2/RR3, FCFS1/FCFS2, the §5
//     hybrid, priority-integrated variants, and the fixed-priority and
//     assured-access baselines) via NewProtocol and Protocols;
//   - the §4.1 bus simulator via Simulate (see SimConfig and Result);
//   - workload constructors for the paper's experiment populations;
//   - the experiment harness that regenerates every table and figure in
//     the paper's evaluation (Table41 ... Table45, Figure41).
//
// Quick start:
//
//	cfg := busarb.SimConfig{
//		N:        10,
//		Protocol: busarb.MustProtocol("RR1"),
//		Inter:    busarb.EqualWorkload(10, 1.5, 1.0).Inter,
//		Seed:     1,
//	}
//	res := busarb.Simulate(cfg)
//	fmt.Println("mean wait:", res.WaitMean, "fairness:", res.ThroughputRatio(10, 1))
//
// The runnable examples under examples/ and the cmd/paper binary show
// larger uses. DESIGN.md maps every subsystem and experiment to its
// module; EXPERIMENTS.md records paper-versus-measured values.
package busarb
