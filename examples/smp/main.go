// SMP: a full shared-memory multiprocessor built from the library's
// substrate — processors executing synthetic reference streams against
// private write-back caches, with every miss (and dirty write-back)
// becoming an arbitrated bus transaction.
//
// The machine mixes workload classes:
//   - 4 "compute" processors with a cache-friendly hot working set,
//   - 3 "streaming" processors marching through large arrays,
//   - 1 "pointer-chasing" processor hitting a big cold region.
//
// For each arbitration protocol it reports bus utilization, per-class
// application progress, and the slowest processor's relative speed —
// the quantity §2.3 says bounds tightly coupled parallel programs.
package main

import (
	"fmt"

	"busarb"
)

func buildProcessors() []*busarb.Processor {
	var procs []*busarb.Processor
	for i := 0; i < 4; i++ { // compute: mostly hits
		procs = append(procs, &busarb.Processor{
			Cache:       busarb.NewCache(8192, 32, 2),
			Pattern:     &busarb.HotColdPattern{HotBytes: 4096, ColdBytes: 1 << 20, HotProb: 0.97, WriteFrac: 0.3},
			CyclePerRef: 0.10,
		})
	}
	for i := 0; i < 3; i++ { // streaming: a miss every 8th reference
		procs = append(procs, &busarb.Processor{
			Cache:       busarb.NewCache(8192, 32, 2),
			Pattern:     &busarb.SequentialPattern{Stride: 4, WriteFrac: 0.5},
			CyclePerRef: 0.12,
		})
	}
	procs = append(procs, &busarb.Processor{ // pointer chasing: cold
		Cache:       busarb.NewCache(8192, 32, 2),
		Pattern:     &busarb.WorkingSetPattern{Bytes: 1 << 22},
		CyclePerRef: 0.50,
	})
	return procs
}

func main() {
	fmt.Println("8-processor SMP: 4 compute + 3 streaming + 1 pointer-chasing")
	fmt.Println("(progress in references per bus-transaction time; fairness is the")
	fmt.Println("slowest/mean ratio within the four identical compute processors)")
	fmt.Println()
	fmt.Printf("%-6s  %8s  %10s  %10s  %10s  %14s\n",
		"proto", "bus util", "compute", "streaming", "chasing", "compute fair")

	for _, proto := range []string{"FP", "AAP1", "RR1", "FCFS2"} {
		res := busarb.RunMachine(busarb.MachineConfig{
			Processors: buildProcessors(),
			Protocol:   busarb.MustProtocol(proto),
			Seed:       17,
			Batches:    6,
			BatchSize:  2500,
		})
		classMean := func(lo, hi int) float64 {
			sum := 0.0
			for i := lo; i < hi; i++ {
				sum += res.Progress[i]
			}
			return sum / float64(hi-lo)
		}
		// Fairness within the identical compute class (agents 1-4, the
		// lowest bus identities — the ones a priority arbiter starves).
		minC, maxC := res.Progress[0], res.Progress[0]
		for i := 1; i < 4; i++ {
			if res.Progress[i] < minC {
				minC = res.Progress[i]
			}
			if res.Progress[i] > maxC {
				maxC = res.Progress[i]
			}
		}
		fmt.Printf("%-6s  %8.2f  %10.1f  %10.1f  %10.1f  %14.2f\n",
			proto,
			res.Bus.Utilization.Mean,
			classMean(0, 4), classMean(4, 7), classMean(7, 8),
			minC/classMean(0, 4))
	}

	fmt.Println(`
Columns 3-5 are references executed per bus-transaction time — the
application-level progress of each workload class. The last column is
the §2.3 headline: under FP (and, milder, AAP1) the low-identity
processors fall behind; under the paper's RR and FCFS protocols no
processor is systematically slowed by its slot on the backplane.`)
}
