// Coherence: the snooping-coherent multiprocessor. Writes invalidate
// remote copies over the same broadcast bus the arbitration rides on,
// so coherence traffic competes with ordinary misses for bus tenure —
// and the arbitration protocol decides whose invalidations and refills
// go first.
//
// Three sharing intensities are compared: private data (no sharing),
// mostly-read sharing, and write-heavy sharing (lock/counter
// ping-pong), each under round-robin arbitration.
package main

import (
	"fmt"

	"busarb"
	"busarb/internal/mp"
)

func run(name string, writeFrac, hotProb float64) {
	const n = 6
	procs := make([]*busarb.CoherentProc, n)
	for i := range procs {
		procs[i] = &busarb.CoherentProc{
			// The hot region is shared between all processors; the cold
			// region is effectively private (it is vast).
			Pattern: &mp.HotCold{
				HotBytes:  256,
				ColdBytes: 1 << 20,
				HotProb:   hotProb,
				WriteFrac: writeFrac,
			},
			CyclePerRef: 0.2,
		}
	}
	res := busarb.RunCoherent(busarb.CoherentConfig{
		Procs:           procs,
		Protocol:        busarb.MustProtocol("RR1"),
		Seed:            9,
		Duration:        5000,
		CheckInvariants: true,
	})
	var inval, coh, upg int64
	var refs int64
	for _, p := range procs {
		inval += p.Stats.InvalidationsRecv
		coh += p.Stats.CoherenceMisses
		upg += p.Stats.Upgrades
		refs += p.Stats.Refs
	}
	fmt.Printf("%-18s  %8.2f  %10.4f  %10.4f  %9.4f  %8.2f\n",
		name,
		res.Utilization(),
		float64(inval)/float64(refs),
		float64(coh)/float64(refs),
		float64(upg)/float64(refs),
		float64(refs)/res.Time)
}

func runMESI(exclusive bool) int64 {
	const n = 6
	procs := make([]*busarb.CoherentProc, n)
	for i := range procs {
		// Churning private working sets: blocks are read in clean, then
		// written — the pattern whose upgrades MESI's Exclusive state
		// makes free.
		procs[i] = &busarb.CoherentProc{
			Pattern: &mp.WorkingSet{
				Bytes:     8192,
				Base:      uint64(i) << 24,
				WriteFrac: 0.3,
			},
			CyclePerRef: 0.2,
		}
	}
	res := busarb.RunCoherent(busarb.CoherentConfig{
		Procs:           procs,
		Protocol:        busarb.MustProtocol("RR1"),
		Seed:            9,
		Duration:        5000,
		CheckInvariants: true,
		Exclusive:       exclusive,
	})
	return res.ByKind[busarb.BusUpgr]
}

func main() {
	fmt.Println("6-processor snooping MSI bus (RR arbitration), per-reference rates:")
	fmt.Println()
	fmt.Printf("%-18s  %8s  %10s  %10s  %9s  %8s\n",
		"workload", "bus util", "inval/ref", "cohmiss/ref", "upgr/ref", "refs/t")
	run("private", 0.3, 0.0)      // no shared region traffic
	run("read-mostly", 0.02, 0.6) // shared reads, rare writes
	run("write-shared", 0.5, 0.6) // contended counters/locks
	fmt.Println(`
Private data costs only capacity misses. Read-mostly sharing is nearly
free: Shared copies coexist. Write-shared data turns the bus into an
invalidation channel — every write kills the other five copies, whose
next access misses again (cohmiss/ref), throttling everyone's progress
(refs/t). The arbitration protocol keeps that pain fairly distributed.`)

	fmt.Println("\nMESI vs MSI: BusUpgr transactions on the mostly-private workload:")
	fmt.Printf("  MSI:  %d upgrades\n", runMESI(false))
	fmt.Printf("  MESI: %d upgrades (Exclusive fills upgrade silently)\n", runMESI(true))
}
