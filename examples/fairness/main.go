// Fairness: the experiment that motivates the paper. The "assured
// access" protocols shipped in 1980s bus standards (Fastbus, NuBus,
// Multibus II, Futurebus) were widely believed to be fair; modeling
// studies showed the most favorably treated processor can receive up to
// 100% more bus bandwidth than the least favorably treated one. The
// paper's RR and FCFS protocols eliminate the bias.
//
// This example sweeps offered load and prints the throughput ratio of
// the highest- to lowest-identity agent for every protocol family.
package main

import (
	"fmt"
	"math"

	"busarb"
)

func main() {
	const n = 16
	protocols := []string{"FP", "AAP1", "AAP2", "RR1", "FCFS1", "FCFS2"}
	loads := []float64{0.5, 1.0, 1.5, 2.5, 5.0}

	fmt.Printf("Throughput ratio t%d/t1 (1.00 = fair), %d agents:\n\n", n, n)
	fmt.Printf("%6s", "load")
	for _, p := range protocols {
		fmt.Printf("  %-8s", p)
	}
	fmt.Println()

	for _, load := range loads {
		fmt.Printf("%6.2f", load)
		for _, name := range protocols {
			sc := busarb.EqualWorkload(n, load, 1.0)
			cfg := busarb.SimConfig{
				Protocol:  busarb.MustProtocol(name),
				Seed:      7,
				Batches:   8,
				BatchSize: 1500,
			}
			sc.Apply(&cfg)
			res := busarb.Simulate(cfg)
			ratio := res.ThroughputRatio(n, 1).Mean
			if math.IsNaN(ratio) || math.IsInf(ratio, 0) || ratio > 99 {
				// Agent 1 completed nothing in some batch: starved.
				fmt.Printf("  %-8s", "starved")
			} else {
				fmt.Printf("  %-8.2f", ratio)
			}
		}
		fmt.Println()
	}

	fmt.Println(`
Reading the table:
  FP    — raw parallel contention arbiter: low identities starve under load.
  AAP1  — Fastbus/NuBus/Multibus II batching: bias grows toward ~2x at
          saturation (the unfairness the paper quantifies).
  AAP2  — Futurebus inhibit/release: much fairer, still biased within batches.
  RR1   — the paper's distributed round-robin: ratio pinned at 1.00.
  FCFS1 — simple distributed FCFS: at most a few percent from counter ties.
  FCFS2 — a-incr distributed FCFS: indistinguishable from perfect FCFS.`)
}
