// Memory: block transfers against banked memory under the two bus
// disciplines of the standards era. A connected bus (NuBus/Multibus
// style) is held through the memory access; a split-transaction bus
// (Fastbus/Futurebus style) releases it and lets the memory controller
// arbitrate the data burst back — the controller competes through the
// same distributed arbitration protocols this library reproduces.
//
// The sweep shows the design trade-off: with fast memory the
// disciplines tie; as memory slows, the connected bus wastes its
// bandwidth on dead cycles while the split bus keeps carrying traffic.
package main

import (
	"fmt"

	"busarb/internal/experiment"
)

func main() {
	const (
		n     = 12
		banks = 8
		load  = 2.0 // aggregate demand, in connected-service units
	)
	memTimes := []float64{0.25, 0.5, 1.0, 2.0, 4.0}
	rows := experiment.SplitVsConnected(n, banks, load, memTimes,
		experiment.Opts{Batches: 6, BatchSize: 1500, Seed: 11, Parallel: 4})
	fmt.Println(experiment.FormatSplitVsConnected(n, banks, load, rows))
	fmt.Println(`Reading the table: the connected bus is capped at 1/(A+M+D) transfers
per unit time because it holds the bus through the memory access; even
at mem time 0.25 that costs it 20% of the traffic this demand offers.
By mem time 4.0 it spends 80% of every tenure waiting for the bank,
while the split bus overlaps those waits with other processors'
transfers — twice the carried throughput at a fraction of the latency.
The response bursts are arbitrated like any other request, so the
fairness guarantees of the RR/FCFS protocols cover the memory
controller too.`)
}
