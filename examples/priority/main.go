// Priority: urgent-request integration (§2.4, §3.1, §3.2). A bus line
// carrying a most-significant "urgent" bit lets interrupt-class traffic
// win every arbitration while the fairness protocol keeps scheduling
// the bulk traffic underneath.
//
// The example runs a loaded bus where 10% of requests are urgent and
// compares the urgent and normal classes' waiting times under the
// priority-integrated RR and FCFS variants, including the §3.2 counter
// policies for FCFS under priority traffic.
package main

import (
	"fmt"

	"busarb"
)

const (
	n          = 12
	load       = 2.0
	urgentFrac = 0.10
)

func main() {
	variants := []string{
		"RR1+prio",            // urgent requests ignore the RR protocol
		"RR1+prio/rr",         // round-robin within the urgent class too
		"FCFS1+prio/overflow", // counters may wrap under urgent pressure
		"FCFS1+prio/matched",  // counters count only same-class grants
		"FCFS2+prio",          // dual a-incr lines
	}

	fmt.Printf("%d agents, load %.1f, %.0f%% urgent requests\n\n", n, load, 100*urgentFrac)
	fmt.Printf("%-22s  %10s  %12s  %10s\n", "protocol", "mean wait", "wait σ", "t12/t1")

	for _, name := range variants {
		proto := func(m int) busarb.Protocol {
			p, err := busarb.NewPriorityProtocol(name, m)
			if err != nil {
				panic(err)
			}
			return p
		}
		sc := busarb.PriorityWorkload(n, load, 1.0, urgentFrac)
		cfg := busarb.SimConfig{
			Protocol:  proto,
			Seed:      5,
			Batches:   8,
			BatchSize: 2000,
		}
		sc.Apply(&cfg)
		res := busarb.Simulate(cfg)
		fmt.Printf("%-22s  %10.2f  %12.2f  %10.2f\n",
			name, res.WaitMean.Mean, res.WaitStdDev.Mean, res.ThroughputRatio(n, 1).Mean)
	}

	// Contrast: one agent generating only urgent traffic on an otherwise
	// normal bus sees dramatically lower waits.
	fmt.Println()
	urgentOnly := make([]float64, n)
	urgentOnly[0] = 1.0
	sc := busarb.EqualWorkload(n, load, 1.0)
	cfg := busarb.SimConfig{
		Protocol: func(m int) busarb.Protocol {
			p, _ := busarb.NewPriorityProtocol("RR1+prio", m)
			return p
		},
		UrgentProb: urgentOnly,
		Seed:       5,
		Batches:    8,
		BatchSize:  2000,
	}
	sc.Apply(&cfg)
	cfg.UrgentProb = urgentOnly
	res := busarb.Simulate(cfg)
	fmt.Printf("agent 1 all-urgent on a normal bus: wait %.2f vs bus-wide %.2f\n",
		res.AgentWait[0].Mean(), res.WaitPooled.Mean())
	fmt.Println("\nUrgent traffic preempts the fairness protocols without destroying")
	fmt.Println("them: normal requests still see RR/FCFS order among themselves.")
}
