// Wirelevel: the arbitration seen from the bus wires. This example
// drives the cycle-accurate model in which each agent is a register-and-
// comparator state machine and every arbitration is resolved by the
// wired-OR settle process of the parallel contention arbiter (§2.1),
// demonstrating the property the protocols rely on: the lines converge
// to the maximum competing arbitration number, observably to all agents.
package main

import (
	"fmt"

	"busarb"
)

func main() {
	// A saturated 6-agent bus under line-level round-robin: every agent
	// re-requests the moment it is served.
	bus, err := busarb.LineLevelBus("RR1", 6)
	if err != nil {
		panic(err)
	}
	for id := 1; id <= 6; id++ {
		bus.Request(id)
	}

	fmt.Println("Line-level RR1 bus, 6 agents, all requesting (saturation):")
	grants := 0
	for tick := 0; grants < 18; tick++ {
		if g := bus.Step(); g != nil {
			fmt.Printf("  tick %3d: agent %d granted\n", g.StartTick, g.Agent)
			grants++
			bus.Request(g.Agent)
		}
	}
	fmt.Printf("\ngrant order: %v\n", bus.GrantOrder())
	fmt.Printf("arbitrations: %d, total wired-OR settle rounds: %d (avg %.1f/arbitration)\n",
		bus.Arbitrations, bus.SettleRounds, float64(bus.SettleRounds)/float64(bus.Arbitrations))

	fmt.Println(`
Note the order: 6,5,4,3,2,1 repeating — the round-robin scan emerges
from nothing but static identities, one extra priority bit, and the
maximum-finding wired-OR lines. No token passes between agents and no
central arbiter exists; each agent only watches the winning number on
the bus and compares it with its own.`)

	// The same bus under FCFS2: arrival order wins regardless of identity.
	fbus, err := busarb.LineLevelBus("FCFS2", 6)
	if err != nil {
		panic(err)
	}
	fmt.Println("Line-level FCFS2 bus: staggered arrivals 3, 6, 1, 5:")
	fbus.Request(3)
	fbus.Step()
	fbus.Request(6)
	fbus.Step()
	fbus.Request(1)
	fbus.Step()
	fbus.Request(5)
	if err := fbus.RunUntilIdle(100); err != nil {
		panic(err)
	}
	fmt.Printf("grant order: %v (arrival order, not identity order)\n", fbus.GrantOrder())
}
