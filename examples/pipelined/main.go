// Pipelined: the §3.2 multi-outstanding extension. "One nice property
// of the FCFS algorithm is that it can easily be modified to allow each
// agent to have more than one active request, yet still serve all
// requests in FCFS order" — up to 8 outstanding requests cost only
// ceil(log2 8) more counter bits.
//
// This example models processors with non-blocking caches that pipeline
// block requests: each agent may have up to `window` transfers in
// flight. It shows (a) the carried load rising with the window at fixed
// interrequest times, and (b) the arbitration-line cost of each window
// size.
package main

import (
	"fmt"

	"busarb"
)

const n = 8

func run(window int) *busarb.Result {
	cfg := busarb.SimConfig{
		N:         n,
		Protocol:  func(m int) busarb.Protocol { return busarb.NewMultiFCFS(m, window) },
		Window:    window,
		Seed:      3,
		Batches:   8,
		BatchSize: 2000,
	}
	cfg.Inter = busarb.EqualWorkload(n, 0.9*float64(n)/float64(n), 1.0).Inter
	return busarb.Simulate(cfg)
}

func main() {
	fmt.Printf("%d processors with pipelined bus requests (distributed FCFS):\n\n", n)
	fmt.Printf("%8s  %12s  %12s  %11s\n", "window", "bus util", "mean wait", "wait σ")
	for _, window := range []int{1, 2, 4, 8} {
		res := run(window)
		fmt.Printf("%8d  %12.3f  %12.2f  %11.2f\n",
			window, res.Utilization.Mean, res.WaitMean.Mean, res.WaitStdDev.Mean)
	}

	fmt.Println("\nArbitration-number width per window size (static + counter bits):")
	for _, window := range []int{1, 2, 4, 8} {
		p := busarb.NewMultiFCFS(n, window)
		m := p.(interface{ ExtraCounterBits() int })
		fmt.Printf("  window %d: %d extra counter bit(s) beyond the single-request FCFS\n",
			window, m.ExtraCounterBits())
	}

	fmt.Println(`
With deeper windows the same processors keep the bus busier (their
interrequest clocks keep running while transfers queue), yet every
transfer still completes in global first-come first-serve order — the
property the waiting-time counters preserve at a cost of log2(window)
extra bus lines.`)
}
