// Multiprocessor: a shared-memory multiprocessor whose processors stall
// on cache-block transfers — the workload the paper's introduction
// motivates. "The relative bus bandwidth allocated to each processor
// translates directly to the relative speeds at which application
// processes run" (§1): a processor's progress rate is proportional to
// its request completion rate.
//
// The machine here has 15 identical CPUs plus one DMA engine requesting
// at four times the CPU rate (agent 1). The example reports how each
// arbitration protocol divides bus bandwidth between the DMA engine and
// the CPUs as the machine approaches saturation, and what that does to
// the slowest CPU's relative speed.
package main

import (
	"fmt"

	"busarb"
)

const (
	nAgents   = 16
	dmaFactor = 4.0
)

func run(protocol string, baseLoad float64) *busarb.Result {
	sc := busarb.ScaledWorkload(nAgents, baseLoad, dmaFactor, 1.0)
	cfg := busarb.SimConfig{
		Protocol:  busarb.MustProtocol(protocol),
		Seed:      11,
		Batches:   8,
		BatchSize: 2000,
	}
	sc.Apply(&cfg)
	return busarb.Simulate(cfg)
}

func main() {
	fmt.Println("16-agent multiprocessor: 15 CPUs + 1 DMA engine at 4x request rate")
	fmt.Println()
	fmt.Printf("%6s  %-6s  %12s  %12s  %14s\n",
		"load", "proto", "DMA/CPU tput", "slowest CPU", "CPU spread")

	for _, baseLoad := range []float64{0.5, 1.5, 3.0} {
		for _, proto := range []string{"RR1", "FCFS2", "AAP1"} {
			res := run(proto, baseLoad)

			// DMA is agent 1; CPUs are 2..16.
			dma := res.AgentThroughput[0].Mean
			minCPU, maxCPU := -1.0, 0.0
			for id := 2; id <= nAgents; id++ {
				tp := res.AgentThroughput[id-1].Mean
				if minCPU < 0 || tp < minCPU {
					minCPU = tp
				}
				if tp > maxCPU {
					maxCPU = tp
				}
			}
			// A CPU's relative speed: its completion rate over the mean
			// CPU completion rate. The slowest CPU bounds tightly
			// coupled parallel programs (§2.3).
			meanCPU := 0.0
			for id := 2; id <= nAgents; id++ {
				meanCPU += res.AgentThroughput[id-1].Mean
			}
			meanCPU /= float64(nAgents - 1)

			fmt.Printf("%6.2f  %-6s  %12.2f  %12.3f  %13.1f%%\n",
				baseLoad, proto, dma/meanCPU, minCPU/meanCPU, 100*(maxCPU-minCPU)/meanCPU)
		}
		fmt.Println()
	}

	fmt.Println(`Reading the table:
  DMA/CPU tput — bandwidth multiple granted to the 4x requester. Below
      saturation every protocol gives ~4x. Past saturation RR evens the
      allocation out (toward 1x) while FCFS keeps it closer to demand —
      the §4.4 trade-off; which is preferable "depends on system
      implementation goals".
  slowest CPU  — relative speed of the most disadvantaged CPU (1.0 = no
      penalty). Under AAP1 the low-identity CPUs fall behind at load;
      under RR/FCFS no CPU is disadvantaged.
  CPU spread   — max-min relative speed difference across CPUs: direct
      bus-arbitration unfairness as seen by application code.`)
}
