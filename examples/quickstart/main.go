// Quickstart: simulate a 10-processor shared bus under the paper's
// distributed round-robin arbitration protocol and print the headline
// metrics — throughput, fairness, and waiting times.
package main

import (
	"fmt"

	"busarb"
)

func main() {
	const (
		nAgents = 10
		load    = 1.5 // total offered load; > 1 saturates the bus
		cv      = 1.0 // exponential interrequest times
	)

	// A workload of identical processors, each offering load/nAgents.
	scenario := busarb.EqualWorkload(nAgents, load, cv)

	cfg := busarb.SimConfig{
		Protocol:  busarb.MustProtocol("RR1"),
		Seed:      1,
		Batches:   10,
		BatchSize: 2000,
	}
	scenario.Apply(&cfg)

	res := busarb.Simulate(cfg)

	fmt.Println("=== Distributed round-robin bus arbitration (Vernon & Manber 1988) ===")
	fmt.Printf("agents:            %d, total offered load %.2f\n", nAgents, load)
	fmt.Printf("bus throughput:    %s transactions per transaction-time\n", res.Throughput)
	fmt.Printf("bus utilization:   %s\n", res.Utilization)
	fmt.Printf("mean waiting time: %s (request to completion)\n", res.WaitMean)
	fmt.Printf("waiting time σ:    %s\n", res.WaitStdDev)
	fmt.Printf("fairness t10/t1:   %s (1.00 = perfectly fair)\n", res.ThroughputRatio(nAgents, 1))

	// The same workload under the simple FCFS protocol: same mean wait
	// (conservation law), lower variance, tiny tie-break unfairness.
	cfg2 := cfg
	cfg2.Protocol = busarb.MustProtocol("FCFS1")
	res2 := busarb.Simulate(cfg2)
	fmt.Println()
	fmt.Println("--- same bus under the distributed FCFS protocol ---")
	fmt.Printf("mean waiting time: %s\n", res2.WaitMean)
	fmt.Printf("waiting time σ:    %s (lower: FCFS minimizes wait variance)\n", res2.WaitStdDev)
	fmt.Printf("fairness t10/t1:   %s (slight bias from counter-tie breaks)\n", res2.ThroughputRatio(nAgents, 1))
}
