// Package client is the public, transport-agnostic client for an
// arbd arbitration daemon: acquire and release leases on named
// resources arbitrated by the paper's protocols, over either of the
// daemon's transports — JSON over HTTP, or the compact binary
// protocol (length-prefixed frames over one persistent multiplexed
// TCP connection; spec in docs/WIRE.md).
//
// The transport is selected by the Dial target's scheme:
//
//	c, err := client.Dial("http://127.0.0.1:8321") // HTTP transport
//	c, err := client.Dial("tcp://127.0.0.1:8322")  // binary transport
//	defer c.Close()
//
//	lease, err := c.Acquire(ctx, "bus", 3, client.AcquireOptions{
//		Timeout: 2 * time.Second,
//	})
//	if err != nil { ... }
//	defer c.Release(ctx, lease)
//
// A Client is safe for concurrent use: many logical agents share one
// Client (and, on the binary transport, one connection — requests are
// correlated by ID, so a thousand closed-loop agents cost one
// socket).
//
// Errors follow a typed taxonomy shared by both transports. Use
// errors.Is:
//
//	errors.Is(err, client.ErrDeadline) // 408: timeout while queued, or abandoned
//	errors.Is(err, client.ErrOverload) // 503: full queue or daemon shutting down
//	errors.Is(err, client.ErrClosed)   // this Client was closed
//
// Every server-reported failure is an *Error carrying the daemon's
// numeric code and message, so the non-sentinel cases (400 bad
// request, 404 unknown resource or lease) stay inspectable.
//
// Against a multi-node arbd cluster, DialCluster takes the full
// member list, learns which node owns which resource (eagerly from
// /clusterz, or lazily from the owner hints on routed responses) and
// sends each call directly to its owner, falling back to any member —
// whose forwarding layer still lands the frame — when the owner is
// unreachable. Transient connection failures on the binary transport
// retry with jittered exponential backoff before surfacing
// ErrRetriesExhausted; see WithRetries and WithRetryBackoff.
package client

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"
)

// Lease is a granted resource tenure. Hold it for up to TTL and
// Release it when done; an unreleased lease lapses at its TTL.
type Lease struct {
	// Resource is the arbitrated resource the lease is on.
	Resource string `json:"resource"`
	// Agent is the arbitrating identity that was granted.
	Agent int `json:"agent"`
	// Token identifies the lease to Release.
	Token string `json:"token"`
	// TTL is the granted lifetime.
	TTL time.Duration `json:"ttl_ns"`
}

// The sentinel errors of the taxonomy. Server-side conditions arrive
// as *Error values that match these under errors.Is.
var (
	// ErrDeadline reports an acquire that was not granted in time: the
	// requested Timeout passed while queued, or the context was
	// abandoned (the daemon's 408).
	ErrDeadline = errors.New("client: deadline exceeded")
	// ErrOverload reports backpressure: the resource's queue is full
	// or the daemon is shutting down (the daemon's 503). Try elsewhere
	// or later.
	ErrOverload = errors.New("client: server overloaded")
	// ErrClosed reports use of a closed Client.
	ErrClosed = errors.New("client: closed")
)

// Error is a failure reported by the daemon, on either transport.
type Error struct {
	// Code is the daemon's transport-neutral status: 400 bad request,
	// 404 unknown resource or lease, 408 deadline, 503 overload.
	Code int
	// Msg is the daemon's message.
	Msg string
}

// Error implements error.
func (e *Error) Error() string {
	if e.Msg != "" {
		return e.Msg
	}
	return fmt.Sprintf("client: server error %d", e.Code)
}

// Is maps the taxonomy's codes onto the sentinel errors, so
// errors.Is(err, ErrDeadline) matches any 408 and errors.Is(err,
// ErrOverload) any 503.
func (e *Error) Is(target error) bool {
	switch target {
	case ErrDeadline:
		return e.Code == 408
	case ErrOverload:
		return e.Code == 503
	}
	return false
}

// AcquireOptions tunes one acquire. The zero value asks for the
// resource's defaults.
type AcquireOptions struct {
	// Timeout bounds the time spent queued before the daemon answers
	// ErrDeadline; 0 waits indefinitely (the context still applies).
	Timeout time.Duration
	// TTL requests a lease lifetime; 0 (or anything above the
	// resource's configured maximum) gets the resource's default.
	TTL time.Duration
}

// transport is the seam between the public API and the two wire
// protocols. Implementations are safe for concurrent use.
type transport interface {
	acquire(ctx context.Context, resource string, agent int, opts AcquireOptions) (Lease, error)
	release(ctx context.Context, resource, token string) error
	close() error
}

// Client talks to one arbd daemon. Create with Dial; a Client is safe
// for concurrent use by many goroutines (logical agents).
type Client struct {
	t transport
}

// Option adjusts Dial.
type Option func(*options)

type options struct {
	dialTimeout     time.Duration
	retryAttempts   int
	retryBase       time.Duration
	retryJitterSeed uint64
	seedSet         bool
}

func defaultOptions() options {
	return options{
		dialTimeout:   10 * time.Second,
		retryAttempts: 3,
		retryBase:     50 * time.Millisecond,
	}
}

// resolve finalizes the options after every Option ran: clients that
// did not pin a jitter seed get a per-client one off a process
// counter, so a fleet created together still spreads its redials.
func (o *options) resolve() {
	if !o.seedSet {
		o.retryJitterSeed = nextRetrySeed()
	}
}

// WithDialTimeout bounds the binary transport's connection attempts
// (the initial dial and any redial after a torn connection). The
// default is 10 seconds. The HTTP transport ignores it.
func WithDialTimeout(d time.Duration) Option {
	return func(o *options) { o.dialTimeout = d }
}

// WithRetries bounds the binary transport's retry of transient
// connection failures (refused redial, connection torn before the
// request was written): up to n attempts in total per call, with
// jittered exponential backoff between them. n <= 1 disables
// retrying; the default is 3 attempts. When the budget runs out the
// call fails with an error matching ErrRetriesExhausted that wraps
// the last underlying failure. The HTTP transport ignores it.
func WithRetries(n int) Option {
	return func(o *options) {
		if n < 1 {
			n = 1
		}
		o.retryAttempts = n
	}
}

// WithRetryBackoff sets the base backoff before the first retry
// (doubled each further attempt, jittered over [1/2, 3/2) of itself).
// The default is 50ms.
func WithRetryBackoff(base time.Duration) Option {
	return func(o *options) { o.retryBase = base }
}

// WithRetryJitterSeed pins the backoff jitter's random stream
// (busarb/internal/rng), making the retry schedule reproducible.
// Tests use it; production clients normally let each client draw its
// own seed.
func WithRetryJitterSeed(seed uint64) Option {
	return func(o *options) { o.retryJitterSeed = seed; o.seedSet = true }
}

// Dial connects to the daemon named by target and returns a Client on
// the transport its scheme selects:
//
//	http:// or https://  the JSON-over-HTTP surface
//	tcp://               the binary protocol (persistent multiplexed conn)
//
// The binary transport connects eagerly, so an unreachable daemon
// fails here rather than on the first Acquire.
func Dial(target string, opts ...Option) (*Client, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	o.resolve()
	switch {
	case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"):
		return &Client{t: newHTTPTransport(target)}, nil
	case strings.HasPrefix(target, "tcp://"):
		t, err := newBinaryTransport(strings.TrimPrefix(target, "tcp://"), o, nil)
		if err != nil {
			return nil, err
		}
		return &Client{t: t}, nil
	}
	return nil, fmt.Errorf("client: target %q needs a scheme: http://, https://, or tcp://", target)
}

// Acquire blocks until agent is granted resource, the options'
// Timeout passes while queued (ErrDeadline), ctx ends, or the daemon
// pushes back (ErrOverload). The returned lease is live for its TTL
// or until Release.
func (c *Client) Acquire(ctx context.Context, resource string, agent int, opts AcquireOptions) (Lease, error) {
	return c.t.acquire(ctx, resource, agent, opts)
}

// Release ends a lease obtained from Acquire. Releasing a lease that
// already lapsed (or was never granted) reports a 404 *Error.
func (c *Client) Release(ctx context.Context, lease Lease) error {
	return c.t.release(ctx, lease.Resource, lease.Token)
}

// Close releases the client's connections. In-flight calls on the
// binary transport fail with ErrClosed; the Client is unusable
// afterwards.
func (c *Client) Close() error {
	return c.t.close()
}
