package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
)

// clusterTransport fans a Client out over an arbd cluster
// (internal/arbd/cluster): every member serves every resource — ones
// it owns locally, the rest by forwarding — so correctness needs no
// topology knowledge at all. What the transport adds is placement
// awareness: it learns which member owns which resource (eagerly from
// /clusterz, lazily from the owner hints on routed responses) and
// sends each call straight to the owner, falling back to any member —
// and the cluster's forwarding — when it does not know or the owner
// is unreachable.
type clusterTransport struct {
	opts options

	mu     sync.Mutex
	member []string                    // guarded by mu; dialable addrs, preference order
	seen   map[string]bool             // guarded by mu; addr dedup for member
	conns  map[string]*binaryTransport // guarded by mu; lazily dialed per member
	owners map[string]string           // guarded by mu; resource -> owner addr
	closed bool                        // guarded by mu
}

// DialCluster connects to an arbd cluster. targets lists the member
// addresses (tcp://host:port, the binary transport); http:// targets
// are used to bootstrap the topology from that node's /clusterz
// endpoint — the members it names are added to the pool and the
// resource → owner map is pre-loaded, so the first call already goes
// to the right node. Member connections are dialed lazily as calls
// route to them.
//
// The client works with any subset of the cluster reachable: calls
// for resources with no known owner go to the first reachable member,
// whose forwarding layer does the rest (the response's owner hint
// then upgrades future calls to direct). A call fails over to other
// members only when it never reached the wire (ErrRetriesExhausted),
// so an acquire is never duplicated.
func DialCluster(targets []string, opts ...Option) (*Client, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	o.resolve()
	ct := &clusterTransport{
		opts:   o,
		seen:   make(map[string]bool),
		conns:  make(map[string]*binaryTransport),
		owners: make(map[string]string),
	}
	var httpTargets []string
	for _, target := range targets {
		switch {
		case strings.HasPrefix(target, "tcp://"):
			ct.addMember(strings.TrimPrefix(target, "tcp://"))
		case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"):
			httpTargets = append(httpTargets, strings.TrimSuffix(target, "/"))
		default:
			return nil, fmt.Errorf("client: cluster target %q needs a scheme: tcp:// (member) or http:// (topology bootstrap)", target)
		}
	}
	// Topology bootstrap is best-effort when members are known: a dead
	// metrics port should not stop a client that can already reach the
	// cluster. With no tcp targets at all the bootstrap is the only
	// source of members, so its failure is fatal.
	var bootErr error
	for _, base := range httpTargets {
		if err := ct.bootstrap(base); err != nil {
			bootErr = err
			continue
		}
		bootErr = nil
		break
	}
	ct.mu.Lock()
	n := len(ct.member)
	ct.mu.Unlock()
	if n == 0 {
		if bootErr != nil {
			return nil, fmt.Errorf("client: cluster topology bootstrap failed: %w", bootErr)
		}
		return nil, fmt.Errorf("client: no cluster members in targets")
	}
	return &Client{t: ct}, nil
}

// addMember registers a dialable member address once, preserving
// first-seen order.
func (ct *clusterTransport) addMember(addr string) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if !ct.seen[addr] {
		ct.seen[addr] = true
		ct.member = append(ct.member, addr)
	}
}

// clusterzDoc mirrors the fields of the cluster's /clusterz document
// this transport needs (the document belongs to internal/arbd/cluster;
// re-declaring the shape keeps the public client free of internal
// imports, like the error envelope in http.go).
type clusterzDoc struct {
	Members []struct {
		Name string `json:"name"`
		Addr string `json:"addr"`
	} `json:"members"`
	Owners map[string]string `json:"owners"`
}

// bootstrap loads the topology from one member's /clusterz.
func (ct *clusterTransport) bootstrap(base string) error {
	req, err := http.NewRequest(http.MethodGet, base+"/clusterz", nil)
	if err != nil {
		return fmt.Errorf("client: %v", err)
	}
	hc := &http.Client{Timeout: ct.opts.dialTimeout}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: clusterz %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeHTTPError(resp)
	}
	var doc clusterzDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("client: bad clusterz document from %s: %v", base, err)
	}
	byName := make(map[string]string, len(doc.Members))
	for _, m := range doc.Members {
		addr := strings.TrimPrefix(m.Addr, "tcp://")
		byName[m.Name] = addr
		ct.addMember(addr)
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	for resource, owner := range doc.Owners {
		if addr, ok := byName[owner]; ok {
			ct.owners[resource] = addr
		}
	}
	return nil
}

// learn records an owner hint from a routed response; it is the
// binary transports' onOwnerHint callback.
func (ct *clusterTransport) learn(resource, addr string) {
	addr = strings.TrimPrefix(addr, "tcp://")
	ct.addMember(addr)
	ct.mu.Lock()
	ct.owners[resource] = addr
	ct.mu.Unlock()
}

// route orders the member addresses to try for resource: the known
// owner first, then the rest in pool order.
func (ct *clusterTransport) route(resource string) []string {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	out := make([]string, 0, len(ct.member))
	owner, known := ct.owners[resource]
	if known {
		out = append(out, owner)
	}
	for _, addr := range ct.member {
		if !known || addr != owner {
			out = append(out, addr)
		}
	}
	return out
}

// conn returns the lazily-dialed transport for addr. Dialing happens
// outside ct.mu so one dead member cannot stall routing to the rest;
// a racing duplicate loses and is closed.
func (ct *clusterTransport) conn(addr string) (*binaryTransport, error) {
	ct.mu.Lock()
	if ct.closed {
		ct.mu.Unlock()
		return nil, ErrClosed
	}
	if bt := ct.conns[addr]; bt != nil {
		ct.mu.Unlock()
		return bt, nil
	}
	ct.mu.Unlock()
	bt, err := newBinaryTransport(addr, ct.opts, ct.learn)
	if err != nil {
		return nil, err
	}
	ct.mu.Lock()
	if ct.closed {
		ct.mu.Unlock()
		bt.close()
		return nil, ErrClosed
	}
	if existing := ct.conns[addr]; existing != nil {
		ct.mu.Unlock()
		bt.close()
		return existing, nil
	}
	ct.conns[addr] = bt
	ct.mu.Unlock()
	return bt, nil
}

// do runs one call against the routed members in order, failing over
// only on errors that prove the request never reached a daemon: a
// failed dial, or a retry budget spent entirely before the write.
// Anything the server answered — including 503s — is the caller's to
// see.
func (ct *clusterTransport) do(resource string, call func(*binaryTransport) (Lease, error)) (Lease, error) {
	var lastErr error
	for _, addr := range ct.route(resource) {
		bt, err := ct.conn(addr)
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return Lease{}, err
			}
			lastErr = err
			continue
		}
		lease, err := call(bt)
		if err != nil && errors.Is(err, ErrRetriesExhausted) {
			lastErr = err
			continue
		}
		return lease, err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("client: no cluster members reachable")
	}
	return Lease{}, lastErr
}

func (ct *clusterTransport) acquire(ctx context.Context, resource string, agent int, opts AcquireOptions) (Lease, error) {
	return ct.do(resource, func(bt *binaryTransport) (Lease, error) {
		return bt.acquire(ctx, resource, agent, opts)
	})
}

func (ct *clusterTransport) release(ctx context.Context, resource, token string) error {
	_, err := ct.do(resource, func(bt *binaryTransport) (Lease, error) {
		return Lease{}, bt.release(ctx, resource, token)
	})
	return err
}

func (ct *clusterTransport) close() error {
	ct.mu.Lock()
	if ct.closed {
		ct.mu.Unlock()
		return nil
	}
	ct.closed = true
	var conns []*binaryTransport
	for _, bt := range ct.conns {
		conns = append(conns, bt)
	}
	ct.mu.Unlock()
	var first error
	for _, bt := range conns {
		if err := bt.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
