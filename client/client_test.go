package client_test

import (
	"context"
	"errors"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"busarb/client"
	"busarb/internal/arbd"
)

// tick keeps the daemon's bus-cycle fast so queue timeouts resolve in
// test time.
const tick = 200 * time.Microsecond

// startDaemon builds a daemon with one "bus" resource and serves it
// over both transports, returning the two Dial targets and the daemon
// (for metrics-based synchronization).
func startDaemon(t *testing.T, agents, maxQueue int) (httpTarget, tcpTarget string, d *arbd.Daemon) {
	t.Helper()
	var err error
	d, err = arbd.New(arbd.Config{Resources: []arbd.ResourceConfig{{
		Name:     "bus",
		Agents:   agents,
		Protocol: "RR1",
		Tick:     tick,
		MaxQueue: maxQueue,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bs := arbd.NewBinaryServer(d)
	go bs.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		bs.Close()
		d.Close()
	})
	return srv.URL, "tcp://" + ln.Addr().String(), d
}

// transports runs a subtest against each transport's Dial target.
func transports(t *testing.T, httpTarget, tcpTarget string, f func(t *testing.T, c *client.Client)) {
	t.Helper()
	for _, tc := range []struct{ name, target string }{
		{"http", httpTarget},
		{"binary", tcpTarget},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, err := client.Dial(tc.target)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			f(t, c)
		})
	}
}

// TestDialErrors pins Dial's failure modes: a target without a known
// scheme is rejected before any I/O, and an unreachable tcp:// target
// fails eagerly at Dial, not on the first Acquire.
func TestDialErrors(t *testing.T) {
	if _, err := client.Dial("127.0.0.1:8321"); err == nil ||
		!strings.Contains(err.Error(), "scheme") {
		t.Errorf("schemeless Dial err = %v, want scheme error", err)
	}
	if _, err := client.Dial("ftp://127.0.0.1:8321"); err == nil ||
		!strings.Contains(err.Error(), "scheme") {
		t.Errorf("ftp Dial err = %v, want scheme error", err)
	}
	// A listener we immediately close: a port with nobody behind it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := client.Dial("tcp://"+addr, client.WithDialTimeout(time.Second)); err == nil ||
		!strings.Contains(err.Error(), "dial") {
		t.Errorf("unreachable tcp Dial err = %v, want dial error", err)
	}
}

// TestAcquireRelease is the public API round trip on both transports:
// the lease fields survive the wire identically.
func TestAcquireRelease(t *testing.T) {
	httpTarget, tcpTarget, _ := startDaemon(t, 4, 0)
	transports(t, httpTarget, tcpTarget, func(t *testing.T, c *client.Client) {
		ctx := context.Background()
		lease, err := c.Acquire(ctx, "bus", 2, client.AcquireOptions{TTL: 3 * time.Second})
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		if lease.Resource != "bus" || lease.Agent != 2 || lease.Token == "" || lease.TTL != 3*time.Second {
			t.Fatalf("lease = %+v, want bus/2/non-empty token/3s TTL", lease)
		}
		if err := c.Release(ctx, lease); err != nil {
			t.Fatalf("release: %v", err)
		}
	})
}

// TestErrorTaxonomy pins that both transports surface the daemon's
// taxonomy as the same typed errors: 404 as an inspectable *Error,
// 408 matching ErrDeadline, 503 matching ErrOverload.
func TestErrorTaxonomy(t *testing.T) {
	// MaxQueue 1: a holder plus one queued waiter saturate the
	// resource, so a further acquire is backpressured 503.
	httpTarget, tcpTarget, d := startDaemon(t, 4, 1)
	transports(t, httpTarget, tcpTarget, func(t *testing.T, c *client.Client) {
		ctx := context.Background()

		_, err := c.Acquire(ctx, "nosuch", 1, client.AcquireOptions{})
		var se *client.Error
		if !errors.As(err, &se) || se.Code != 404 {
			t.Fatalf("unknown resource err = %v, want *client.Error code 404", err)
		}
		if errors.Is(err, client.ErrDeadline) || errors.Is(err, client.ErrOverload) {
			t.Fatalf("404 matched a sentinel it should not: %v", err)
		}

		holder, err := c.Acquire(ctx, "bus", 1, client.AcquireOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Release(ctx, holder)

		// Queued past its timeout: the deadline error.
		_, err = c.Acquire(ctx, "bus", 2, client.AcquireOptions{Timeout: 5 * tick})
		if !errors.Is(err, client.ErrDeadline) {
			t.Fatalf("queue timeout err = %v, want ErrDeadline", err)
		}

		// Fill the queue with a patient waiter, then overflow it. The
		// probe must not race the waiter into the single queue slot, so
		// wait for the waiter's request line in the daemon's metrics
		// (its tally increments when the shard admits it) before
		// probing.
		base := d.Metrics()["bus"].Agents[2].Requests // agent 3
		waiterDone := make(chan struct{})
		go func() {
			defer close(waiterDone)
			lease, err := c.Acquire(ctx, "bus", 3, client.AcquireOptions{Timeout: 2 * time.Second})
			if err == nil {
				c.Release(ctx, lease)
			}
		}()
		deadline := time.Now().Add(2 * time.Second)
		for d.Metrics()["bus"].Agents[2].Requests == base {
			if time.Now().After(deadline) {
				t.Fatal("waiter never reached the shard queue")
			}
			time.Sleep(tick)
		}
		_, err = c.Acquire(ctx, "bus", 4, client.AcquireOptions{Timeout: 5 * tick})
		if !errors.Is(err, client.ErrOverload) {
			t.Fatalf("full-queue err = %v, want ErrOverload", err)
		}
		c.Release(ctx, holder)
		<-waiterDone
	})
}

// TestContextDeadline pins the binary transport's deadline handling: a
// context deadline with no explicit Timeout is forwarded to the daemon
// as the queue timeout, so the caller gets the daemon's 408 — and the
// daemon discards the waiter instead of granting to an absent caller.
func TestContextDeadline(t *testing.T) {
	_, tcpTarget, _ := startDaemon(t, 4, 0)
	c, err := client.Dial(tcpTarget)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	holder, err := c.Acquire(ctx, "bus", 1, client.AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Release(ctx, holder)

	dctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	_, err = c.Acquire(dctx, "bus", 2, client.AcquireOptions{})
	if !errors.Is(err, client.ErrDeadline) {
		t.Fatalf("ctx-deadline acquire err = %v, want ErrDeadline", err)
	}
}

// TestClosedClient pins ErrClosed: a closed binary client fails fast
// on the next call.
func TestClosedClient(t *testing.T) {
	_, tcpTarget, _ := startDaemon(t, 4, 0)
	c, err := client.Dial(tcpTarget)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Acquire(context.Background(), "bus", 1, client.AcquireOptions{}); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("acquire on closed client err = %v, want ErrClosed", err)
	}
}
