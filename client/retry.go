package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"busarb/internal/rng"
)

// retrySeeds hands each client that did not pin a jitter seed a
// distinct one: deterministic per process (no wall clock, no global
// rand), different per client, which is all the lockstep-avoidance
// needs.
var retrySeeds atomic.Uint64

func nextRetrySeed() uint64 {
	return retrySeeds.Add(1) * 0x9e3779b97f4a7c15
}

// ErrRetriesExhausted reports that the binary transport's bounded
// retry gave up: every attempt failed with a transient connection
// error (refused dial, torn connection before the request was
// written). The last underlying error is wrapped and inspectable with
// errors.As/Is.
var ErrRetriesExhausted = errors.New("client: retries exhausted")

// transientError marks a failure that happened before the request
// reached the wire — a dial or write error. Only these are retried:
// once a frame is written the daemon may have acted on it, and
// retrying an acquire whose fate is unknown could double-grant.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// retryPolicy is the binary transport's bounded retry with jittered
// exponential backoff. The jitter source is busarb/internal/rng —
// deterministic under WithRetryJitterSeed, so tests can pin the exact
// delay schedule.
type retryPolicy struct {
	attempts int
	base     time.Duration

	mu  sync.Mutex
	rng *rng.Source // guarded by mu

	// sleep waits between attempts; tests stub it to capture the
	// schedule without waiting it out. ctx ends the wait early.
	sleep func(ctx context.Context, d time.Duration) error
}

func newRetryPolicy(o options) *retryPolicy {
	return &retryPolicy{
		attempts: o.retryAttempts,
		base:     o.retryBase,
		rng:      rng.New(o.retryJitterSeed),
		sleep:    sleepCtx,
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// delay computes the attempt'th backoff: base doubled per attempt,
// jittered uniformly over [1/2, 3/2) of itself so a fleet of clients
// that failed together does not redial in lockstep.
func (p *retryPolicy) delay(attempt int) time.Duration {
	d := p.base << attempt
	p.mu.Lock()
	j := p.rng.Float64()
	p.mu.Unlock()
	return d/2 + time.Duration(float64(d)*j)
}

// run invokes call until it succeeds, fails permanently, or the
// attempt budget is spent. A budget of 1 means no retries.
func (p *retryPolicy) run(ctx context.Context, call func() (Lease, error)) (Lease, error) {
	var last error
	for attempt := 0; attempt < p.attempts; attempt++ {
		if attempt > 0 {
			if err := p.sleep(ctx, p.delay(attempt-1)); err != nil {
				return Lease{}, &Error{Code: 408, Msg: "client: context done during retry backoff: " + err.Error()}
			}
		}
		lease, err := call()
		var te *transientError
		if err == nil || !errors.As(err, &te) {
			return lease, err
		}
		last = te.err
	}
	return Lease{}, fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, p.attempts, last)
}
