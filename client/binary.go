package client

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"busarb/internal/arbd/codec"
)

// binaryTransport speaks the daemon's binary protocol (docs/WIRE.md):
// one persistent TCP connection carrying length-prefixed frames, with
// every in-flight call correlated by ID so any number of logical
// agents multiplex over it. The connection is dialed eagerly by Dial
// and redialed transparently if it tears; calls in flight when it
// tears fail with the connection's error.
type binaryTransport struct {
	addr        string
	dialTimeout time.Duration
	retry       *retryPolicy
	// onOwnerHint, when set (DialCluster), receives the owner hints a
	// cluster node attaches to relayed responses (docs/WIRE.md routed
	// frames): this resource's owner listens at addr. Called from the
	// read loop without t.mu held; set before the first read loop
	// starts and immutable after.
	onOwnerHint func(resource, addr string)

	mu      sync.Mutex
	conn    net.Conn                // guarded by mu; nil between teardown and redial
	w       *codec.Writer           // guarded by mu; writes serialized under it
	corr    uint64                  // guarded by mu
	pending map[uint64]chan outcome // guarded by mu
	closed  bool                    // guarded by mu
}

// outcome resolves one correlated call.
type outcome struct {
	lease Lease // valid for acquire grants
	err   error
}

func newBinaryTransport(addr string, o options, onOwnerHint func(resource, addr string)) (*binaryTransport, error) {
	t := &binaryTransport{
		addr:        addr,
		dialTimeout: o.dialTimeout,
		retry:       newRetryPolicy(o),
		onOwnerHint: onOwnerHint,
		pending:     make(map[uint64]chan outcome),
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.ensureConnLocked(); err != nil {
		return nil, err
	}
	return t, nil
}

// ensureConnLocked dials if the connection is down and starts its
// reader. Callers hold t.mu.
func (t *binaryTransport) ensureConnLocked() error {
	if t.closed {
		return ErrClosed
	}
	if t.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", t.addr, t.dialTimeout)
	if err != nil {
		// Transient: nothing reached the wire, so the retry policy may
		// redial.
		return &transientError{fmt.Errorf("client: dial %s: %w", t.addr, err)}
	}
	t.conn = conn
	t.w = codec.NewWriter(conn)
	// The read loop's shutdown signal is the connection itself: close()
	// closes conn, the blocked Next fails, and readLoop tears down and
	// returns. No WaitGroup or done channel exists to tie it to.
	//arblint:allow goroleak
	go t.readLoop(conn)
	return nil
}

// readLoop owns conn's read side: it resolves correlated calls until
// the connection ends, then fails whatever is still in flight.
func (t *binaryTransport) readLoop(conn net.Conn) {
	r := codec.NewReader(conn)
	var f codec.Frame
	for {
		if err := r.Next(&f); err != nil {
			t.teardown(conn, fmt.Errorf("client: connection to %s lost: %w", t.addr, err))
			return
		}
		var out outcome
		switch f.Type {
		case codec.TGrant:
			out.lease = Lease{
				Resource: string(f.Resource),
				Agent:    int(f.Agent),
				Token:    string(f.Token),
				TTL:      time.Duration(f.TTLNS),
			}
			t.noteOwnerHint(&f)
		case codec.TReleased:
			// success, zero outcome
			t.noteOwnerHint(&f)
		case codec.TError:
			out.err = &Error{Code: int(f.Code), Msg: string(f.Msg)}
		default:
			// A frame type we never ask for: protocol skew. Drop the
			// connection rather than guess.
			t.teardown(conn, fmt.Errorf("client: unexpected %v frame from %s", f.Type, t.addr))
			return
		}
		t.mu.Lock()
		ch, ok := t.pending[f.Corr]
		if ok {
			delete(t.pending, f.Corr)
		}
		t.mu.Unlock()
		if ok {
			ch <- out // buffered; never blocks
		}
		// An unmatched correlation ID is a response to a call whose
		// context was abandoned; its lease (if any) lapses at TTL.
	}
}

// teardown retires a torn connection and fails its in-flight calls.
func (t *binaryTransport) teardown(conn net.Conn, err error) {
	conn.Close()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conn == conn {
		t.conn = nil
		t.w = nil
	}
	if t.closed {
		err = ErrClosed
	}
	for corr, ch := range t.pending {
		delete(t.pending, corr)
		ch <- outcome{err: err}
	}
}

// call writes one frame and waits for its correlated response.
func (t *binaryTransport) call(ctx context.Context, f *codec.Frame) (Lease, error) {
	t.mu.Lock()
	if err := t.ensureConnLocked(); err != nil {
		t.mu.Unlock()
		return Lease{}, err
	}
	t.corr++
	corr := t.corr
	f.Corr = corr
	ch := make(chan outcome, 1)
	t.pending[corr] = ch
	err := t.w.WriteFrame(f)
	t.mu.Unlock()
	if err != nil {
		// The reader's teardown will (or already did) fail ch; prefer
		// the write error for this caller. Transient: a failed write
		// never reached the daemon, so retrying cannot double-acquire.
		t.forget(corr)
		return Lease{}, &transientError{fmt.Errorf("client: write to %s: %w", t.addr, err)}
	}
	select {
	case out := <-ch:
		return out.lease, out.err
	case <-ctx.Done():
		t.forget(corr)
		return Lease{}, &Error{Code: 408, Msg: "client: context done before response: " + ctx.Err().Error()}
	}
}

// forget abandons a pending correlation ID.
func (t *binaryTransport) forget(corr uint64) {
	t.mu.Lock()
	delete(t.pending, corr)
	t.mu.Unlock()
}

// noteOwnerHint surfaces a routed response's owner hint to the
// cluster transport, if one is listening.
func (t *binaryTransport) noteOwnerHint(f *codec.Frame) {
	if t.onOwnerHint == nil || f.Flags&codec.FlagRouted == 0 {
		return
	}
	if _, _, addr, ok := codec.ParseOwnerRoute(f.Route); ok && len(addr) > 0 {
		t.onOwnerHint(string(f.Resource), string(addr))
	}
}

func (t *binaryTransport) acquire(ctx context.Context, resource string, agent int, opts AcquireOptions) (Lease, error) {
	timeout := opts.Timeout
	if timeout == 0 {
		// No explicit timeout: let a context deadline bound the queue
		// wait server-side too, so the daemon answers 408 and discards
		// the waiter instead of granting into an abandoned call.
		if deadline, ok := ctx.Deadline(); ok {
			if timeout = time.Until(deadline); timeout <= 0 {
				return Lease{}, &Error{Code: 408, Msg: "client: context deadline already passed"}
			}
		}
	}
	f := codec.Frame{
		Type:      codec.TAcquire,
		Agent:     uint32(agent),
		TimeoutNS: int64(timeout),
		TTLNS:     int64(opts.TTL),
		Resource:  []byte(resource),
	}
	return t.retry.run(ctx, func() (Lease, error) { return t.call(ctx, &f) })
}

func (t *binaryTransport) release(ctx context.Context, resource, token string) error {
	f := codec.Frame{
		Type:     codec.TRelease,
		Resource: []byte(resource),
		Token:    []byte(token),
	}
	_, err := t.retry.run(ctx, func() (Lease, error) { return t.call(ctx, &f) })
	return err
}

func (t *binaryTransport) close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conn := t.conn
	t.mu.Unlock()
	if conn != nil {
		// The reader's teardown fails in-flight calls with ErrClosed.
		conn.Close()
	}
	return nil
}
