package client

// In-package tests for the retry layer: they reach the unexported
// policy and transport internals, and fake the server with raw codec
// frames (importing internal/arbd here would cycle — arbd's load
// generator imports this package).

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"busarb/internal/arbd/codec"
	"busarb/internal/rng"
)

// fakeServer answers Acquire with a Grant and Release with Released,
// enough protocol for the transport under test.
type fakeServer struct {
	t  *testing.T
	ln net.Listener

	mu    sync.Mutex
	conns []net.Conn // guarded by mu
	done  bool       // guarded by mu
}

func newFakeServer(t *testing.T, addr string) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	s := &fakeServer{t: t, ln: ln}
	go s.acceptLoop()
	t.Cleanup(s.stop)
	return s
}

func (s *fakeServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.conns = append(s.conns, conn)
		s.mu.Unlock()
		go s.serve(conn)
	}
}

func (s *fakeServer) serve(conn net.Conn) {
	r := codec.NewReader(conn)
	w := codec.NewWriter(conn)
	var f codec.Frame
	for {
		if err := r.Next(&f); err != nil {
			conn.Close()
			return
		}
		var resp codec.Frame
		switch f.Type {
		case codec.TAcquire:
			resp = codec.Frame{
				Type:     codec.TGrant,
				Corr:     f.Corr,
				Agent:    f.Agent,
				TTLNS:    f.TTLNS,
				Resource: f.Resource,
				Token:    []byte("tok"),
			}
		case codec.TRelease:
			resp = codec.Frame{Type: codec.TReleased, Corr: f.Corr, Resource: f.Resource}
		default:
			conn.Close()
			return
		}
		if err := w.WriteFrame(&resp); err != nil {
			conn.Close()
			return
		}
	}
}

// stop closes the listener and every live connection.
func (s *fakeServer) stop() {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	conns := s.conns
	s.conns = nil
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

// waitTorn blocks until the transport's read loop has retired the
// dead connection (conn nil under the lock).
func waitTorn(t *testing.T, bt *binaryTransport) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		bt.mu.Lock()
		torn := bt.conn == nil
		bt.mu.Unlock()
		if torn {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("transport never noticed the torn connection")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRetrySchedule pins the backoff arithmetic: exponential base
// doubling with jitter drawn from the seeded rng stream, byte-for-byte
// reproducible under WithRetryJitterSeed.
func TestRetrySchedule(t *testing.T) {
	o := defaultOptions()
	o.retryAttempts = 4
	o.retryBase = 100 * time.Millisecond
	o.retryJitterSeed = 7
	p := newRetryPolicy(o)
	var got []time.Duration
	p.sleep = func(ctx context.Context, d time.Duration) error {
		got = append(got, d)
		return nil
	}
	_, err := p.run(context.Background(), func() (Lease, error) {
		return Lease{}, &transientError{errors.New("dial refused")}
	})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if !strings.Contains(err.Error(), "dial refused") {
		t.Errorf("err %q does not carry the last underlying failure", err)
	}
	src := rng.New(7)
	var want []time.Duration
	for attempt := 0; attempt < 3; attempt++ {
		d := o.retryBase << attempt
		want = append(want, d/2+time.Duration(float64(d)*src.Float64()))
	}
	if len(got) != len(want) {
		t.Fatalf("slept %d times, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("delay[%d] = %v, want %v", i, got[i], want[i])
		}
		if got[i] < want[i]/3 || got[i] > 2*(o.retryBase<<i) {
			t.Errorf("delay[%d] = %v outside the jitter envelope", i, got[i])
		}
	}
}

// TestRetryPermanentErrorStops pins that non-transient failures are
// not retried: the server's answer (or a lost in-flight call) is the
// caller's, first time.
func TestRetryPermanentErrorStops(t *testing.T) {
	o := defaultOptions()
	p := newRetryPolicy(o)
	p.sleep = func(ctx context.Context, d time.Duration) error {
		t.Fatal("slept before a permanent error")
		return nil
	}
	calls := 0
	want := &Error{Code: 404, Msg: "no such resource"}
	_, err := p.run(context.Background(), func() (Lease, error) {
		calls++
		return Lease{}, want
	})
	if calls != 1 || !errors.Is(err, want) {
		t.Fatalf("calls = %d, err = %v; want one call returning the server error", calls, err)
	}
}

// TestRetryRecovers is the satellite's headline: a connection torn
// between calls redials; if the redial is refused, the bounded retry
// keeps trying and succeeds once the server is back.
func TestRetryRecovers(t *testing.T) {
	srv := newFakeServer(t, "127.0.0.1:0")
	addr := srv.ln.Addr().String()
	o := defaultOptions()
	o.retryJitterSeed = 1
	bt, err := newBinaryTransport(addr, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bt.close()
	ctx := context.Background()
	if _, err := bt.acquire(ctx, "bus", 1, AcquireOptions{}); err != nil {
		t.Fatalf("warm-up acquire: %v", err)
	}

	// Kill the server and wait until the transport knows. The next
	// dial is refused (transient); the sleep hook resurrects the
	// server, so the following attempt connects.
	srv.stop()
	waitTorn(t, bt)
	slept := 0
	bt.retry.sleep = func(ctx context.Context, d time.Duration) error {
		slept++
		newFakeServer(t, addr)
		return nil
	}
	lease, err := bt.acquire(ctx, "bus", 2, AcquireOptions{})
	if err != nil {
		t.Fatalf("acquire after restart: %v", err)
	}
	if slept == 0 {
		t.Error("recovery needed no backoff; the refused dial was not exercised")
	}
	if lease.Token != "tok" || lease.Agent != 2 {
		t.Errorf("lease = %+v, want the fake server's grant", lease)
	}
}

// TestRetriesExhausted pins the typed failure: a server that stays
// dead burns the attempt budget and surfaces ErrRetriesExhausted
// wrapping the dial error.
func TestRetriesExhausted(t *testing.T) {
	srv := newFakeServer(t, "127.0.0.1:0")
	addr := srv.ln.Addr().String()
	o := defaultOptions()
	o.retryAttempts = 2
	o.retryJitterSeed = 1
	bt, err := newBinaryTransport(addr, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bt.close()
	srv.stop()
	waitTorn(t, bt)
	bt.retry.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	_, err = bt.acquire(context.Background(), "bus", 1, AcquireOptions{})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if !strings.Contains(err.Error(), "dial") {
		t.Errorf("err %q should carry the dial failure", err)
	}
}

// TestRetryBackoffContext pins that a context ending mid-backoff
// stops the retry loop with a deadline-taxonomy error.
func TestRetryBackoffContext(t *testing.T) {
	o := defaultOptions()
	p := newRetryPolicy(o)
	ctx, cancel := context.WithCancel(context.Background())
	p.sleep = func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}
	_, err := p.run(ctx, func() (Lease, error) {
		return Lease{}, &transientError{errors.New("refused")}
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}
