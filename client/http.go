package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// httpTransport speaks the daemon's JSON-over-HTTP surface:
// POST /v1/acquire and POST /v1/release with query parameters,
// JSON bodies on success, and a {"code","error"} envelope on failure.
type httpTransport struct {
	base   string
	client *http.Client
}

func newHTTPTransport(base string) *httpTransport {
	return &httpTransport{
		base: strings.TrimSuffix(base, "/"),
		// A private http.Client so closing this transport cannot idle
		// out anyone else's connections.
		client: &http.Client{},
	}
}

func (t *httpTransport) acquire(ctx context.Context, resource string, agent int, opts AcquireOptions) (Lease, error) {
	v := url.Values{}
	v.Set("resource", resource)
	v.Set("agent", strconv.Itoa(agent))
	if opts.Timeout != 0 {
		v.Set("timeout", opts.Timeout.String())
	}
	if opts.TTL != 0 {
		v.Set("ttl", opts.TTL.String())
	}
	resp, err := t.post(ctx, "/v1/acquire", v)
	if err != nil {
		return Lease{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Lease{}, decodeHTTPError(resp)
	}
	var lease Lease
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		return Lease{}, fmt.Errorf("client: bad acquire response: %v", err)
	}
	return lease, nil
}

func (t *httpTransport) release(ctx context.Context, resource, token string) error {
	v := url.Values{}
	v.Set("resource", resource)
	v.Set("token", token)
	resp, err := t.post(ctx, "/v1/release", v)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeHTTPError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

func (t *httpTransport) post(ctx context.Context, path string, v url.Values) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		t.base+path+"?"+v.Encode(), nil)
	if err != nil {
		return nil, fmt.Errorf("client: %v", err)
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %v", err)
	}
	return resp, nil
}

// decodeHTTPError turns a non-200 response into an *Error, reading
// the daemon's {"code","error"} envelope when present and falling
// back to the body text (proxies and older daemons answer plain
// text).
func decodeHTTPError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
	var envelope struct {
		Code  string `json:"code"`
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(body))
	if err := json.Unmarshal(body, &envelope); err == nil && envelope.Error != "" {
		msg = envelope.Error
	}
	return &Error{Code: resp.StatusCode, Msg: msg}
}

func (t *httpTransport) close() error {
	t.client.CloseIdleConnections()
	return nil
}
