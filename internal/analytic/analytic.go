// Package analytic provides closed-form and numerical queueing results
// that bound or approximate the simulated bus, used to validate the
// simulator (and usable on their own for quick capacity estimates):
//
//   - the machine-repairman mean-value analysis (MVA) for the closed
//     bus model of §4.1 (N cycling agents, one server);
//   - exact saturation formulas (the regime the paper calls "peak
//     demand ... useful for looking at the asymptotic behavior");
//   - the M/G/1-style conservation-law statement the paper invokes for
//     why all its protocols share one mean waiting time [Klei76];
//   - the arbiter cost model of §1-§2: bus lines required and the Taub
//     settle-delay bound.
package analytic

import "math"

// BusLines returns the number of arbitration lines the parallel
// contention arbiter needs for n agents: ceil(log2(n+1)) (§1; identity
// 0 is reserved).
func BusLines(n int) int {
	if n < 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n + 1))))
}

// TaubSettleBound returns the §2.1 bound on the arbitration settle
// time, in end-to-end bus propagation delays, for k arbitration lines:
// k/2 (Taub 1984).
func TaubSettleBound(k int) float64 { return float64(k) / 2 }

// FCFSExtraLines returns the additional lines the FCFS protocol needs
// beyond the basic arbiter for n agents with up to r outstanding
// requests per agent (§3.2): a ceil(log2 n)-bit counter plus
// ceil(log2 r) more bits for the multi-request extension.
func FCFSExtraLines(n, r int) int {
	extra := BusLines(n)
	if r > 1 {
		extra += int(math.Ceil(math.Log2(float64(r))))
	}
	return extra
}

// MVA solves the closed machine-repairman model by exact mean-value
// analysis: n statistically identical agents cycle between thinking
// (mean think time z) and a single FCFS server (mean service time s).
// It returns the steady-state residence time at the server (queueing +
// service) and the system throughput.
//
// The recursion is exact for exponential service; for the paper's
// deterministic transactions it is an approximation that overstates
// queueing slightly at mid load (deterministic service queues less) and
// ignores the 0.5 arbitration exposure at low load, so the simulator is
// expected to land within a few tenths of a time unit of it — the
// validation tests encode exactly that band.
func MVA(n int, s, z float64) (residence, throughput float64) {
	if n < 1 || s <= 0 || z < 0 {
		panic("analytic: MVA needs n >= 1, s > 0, z >= 0")
	}
	q := 0.0 // mean queue length with k-1 customers
	var w, x float64
	for k := 1; k <= n; k++ {
		w = s * (1 + q)
		x = float64(k) / (w + z)
		q = x * w
	}
	return w, x
}

// SaturatedResidence returns the exact residence time of the
// deterministic saturated bus: every one of the n agents is served once
// per cycle of n service times, so a request issued z after the
// previous completion waits n*s - z until its own completion. Valid
// when the bus is saturated (total offered load comfortably above 1)
// and agents are equal.
func SaturatedResidence(n int, s, z float64) float64 { return float64(n)*s - z }

// SaturatedAgentThroughput returns each equal agent's completion rate
// on a saturated bus: one transaction per n service times.
func SaturatedAgentThroughput(n int, s float64) float64 { return 1 / (float64(n) * s) }

// ConservationHolds reports whether a set of per-protocol mean waiting
// times is consistent with the conservation law for work-conserving,
// non-preemptive disciplines whose service order is independent of
// service times [Klei76]: all means must coincide within the given
// relative tolerance.
func ConservationHolds(waits []float64, relTol float64) bool {
	if len(waits) < 2 {
		return true
	}
	ref := waits[0]
	for _, w := range waits[1:] {
		if math.Abs(w-ref) > relTol*math.Abs(ref) {
			return false
		}
	}
	return true
}

// OfferedLoad returns an agent's offered load for service time s and
// mean interrequest time z (§4.1: "bus transaction time divided by the
// sum of its bus transaction time and mean interrequest time").
func OfferedLoad(s, z float64) float64 { return s / (s + z) }

// InterrequestFor returns the mean interrequest time realizing the
// given per-agent offered load (the inverse of OfferedLoad).
func InterrequestFor(load, s float64) float64 {
	if load <= 0 || load >= 1 {
		panic("analytic: per-agent load must be in (0,1)")
	}
	return s * (1 - load) / load
}
