package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"busarb/internal/bussim"
	"busarb/internal/core"
)

func TestBusLines(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1}, {3, 2}, {7, 3}, {10, 4}, {30, 5}, {63, 6}, {64, 7}, {0, 0},
	}
	for _, c := range cases {
		if got := BusLines(c.n); got != c.want {
			t.Errorf("BusLines(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestTaubSettleBound(t *testing.T) {
	if TaubSettleBound(6) != 3 {
		t.Error("k=6 bound should be 3 propagations (Futurebus example)")
	}
}

func TestFCFSExtraLines(t *testing.T) {
	// §3.2: "at most we need to double the size of the identities".
	if got := FCFSExtraLines(30, 1); got != BusLines(30) {
		t.Errorf("extra lines = %d, want %d", got, BusLines(30))
	}
	// "up to 8 requests outstanding ... only 3 more lines".
	if got := FCFSExtraLines(30, 8) - FCFSExtraLines(30, 1); got != 3 {
		t.Errorf("multi-request extra = %d, want 3", got)
	}
}

func TestMVADegenerate(t *testing.T) {
	// A single customer never queues: residence = service.
	w, x := MVA(1, 1.0, 3.0)
	if math.Abs(w-1.0) > 1e-12 {
		t.Errorf("W = %v, want 1", w)
	}
	if math.Abs(x-0.25) > 1e-12 {
		t.Errorf("X = %v, want 1/4", x)
	}
}

func TestMVAPanics(t *testing.T) {
	for _, c := range []struct {
		n    int
		s, z float64
	}{{0, 1, 1}, {2, 0, 1}, {2, 1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MVA(%d,%v,%v) did not panic", c.n, c.s, c.z)
				}
			}()
			MVA(c.n, c.s, c.z)
		}()
	}
}

func TestMVASaturationLimit(t *testing.T) {
	// With tiny think time the server saturates: X -> 1/s, W -> n*s - z.
	w, x := MVA(10, 1.0, 0.1)
	if math.Abs(x-1.0) > 0.01 {
		t.Errorf("saturated X = %v, want ~1", x)
	}
	if math.Abs(w-(10-0.1)) > 0.1 {
		t.Errorf("saturated W = %v, want ~9.9", w)
	}
}

// Property: MVA throughput never exceeds either capacity bound
// (1/s or n/(s+z)) and residence is at least s.
func TestMVABoundsProperty(t *testing.T) {
	f := func(nRaw uint8, sRaw, zRaw uint16) bool {
		n := 1 + int(nRaw%64)
		s := 0.1 + float64(sRaw%100)/25
		z := float64(zRaw%1000) / 50
		w, x := MVA(n, s, z)
		if w < s-1e-9 {
			return false
		}
		if x > 1/s+1e-9 {
			return false
		}
		if x > float64(n)/(s+z)+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// The simulator must agree with MVA within the documented band: MVA
// ignores the 0.5 exposed arbitration (undershoots at low load) and
// assumes exponential service (overshoots queueing at mid load).
func TestSimulatorMatchesMVA(t *testing.T) {
	rr, _ := core.ByName("RR1")
	for _, tc := range []struct {
		n    int
		load float64
	}{
		{10, 0.25}, {10, 1.0}, {10, 2.0}, {10, 5.0},
		{30, 0.5}, {30, 2.0},
	} {
		z := bussim.MeanForLoad(tc.load/float64(tc.n), 1.0)
		wMVA, xMVA := MVA(tc.n, 1.0, z)
		res := bussim.Run(bussim.Config{
			N: tc.n, Protocol: rr, Seed: 31,
			Inter:   bussim.UniformLoad(tc.n, tc.load, 1.0, 1.0),
			Batches: 8, BatchSize: 2000,
		})
		if diff := math.Abs(res.WaitMean.Mean - wMVA); diff > 0.30+0.12*wMVA {
			t.Errorf("n=%d load=%v: sim W %v vs MVA %v (diff %v)",
				tc.n, tc.load, res.WaitMean.Mean, wMVA, diff)
		}
		if diff := math.Abs(res.Throughput.Mean - xMVA); diff > 0.05 {
			t.Errorf("n=%d load=%v: sim X %v vs MVA %v", tc.n, tc.load, res.Throughput.Mean, xMVA)
		}
	}
}

// The deterministic saturated bus matches the exact formula.
func TestSimulatorMatchesSaturationFormula(t *testing.T) {
	rr, _ := core.ByName("RR1")
	const n = 10
	const load = 7.52
	z := bussim.MeanForLoad(load/n, 1.0)
	res := bussim.Run(bussim.Config{
		N: n, Protocol: rr, Seed: 33,
		Inter:   bussim.UniformLoad(n, load, 1.0, 1.0),
		Batches: 6, BatchSize: 2000,
	})
	want := SaturatedResidence(n, 1.0, z)
	if math.Abs(res.WaitMean.Mean-want) > 0.05 {
		t.Errorf("sim W %v vs exact saturation %v", res.WaitMean.Mean, want)
	}
	per := SaturatedAgentThroughput(n, 1.0)
	for id := 1; id <= n; id++ {
		if math.Abs(res.AgentThroughput[id-1].Mean-per) > 0.003 {
			t.Errorf("agent %d throughput %v vs exact %v", id, res.AgentThroughput[id-1].Mean, per)
		}
	}
}

func TestConservationHolds(t *testing.T) {
	if !ConservationHolds([]float64{5.0, 5.05, 4.98}, 0.02) {
		t.Error("near-equal waits rejected")
	}
	if ConservationHolds([]float64{5.0, 6.0}, 0.02) {
		t.Error("unequal waits accepted")
	}
	if !ConservationHolds([]float64{5.0}, 0) || !ConservationHolds(nil, 0) {
		t.Error("degenerate cases should hold")
	}
}

func TestLoadHelpers(t *testing.T) {
	if got := OfferedLoad(1, 3); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("OfferedLoad = %v", got)
	}
	if got := InterrequestFor(0.25, 1); math.Abs(got-3) > 1e-12 {
		t.Errorf("InterrequestFor = %v", got)
	}
	// Round trip.
	f := func(raw uint16) bool {
		load := 0.01 + float64(raw%97)/100
		return math.Abs(OfferedLoad(1, InterrequestFor(load, 1))-load) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("InterrequestFor(1.0) did not panic")
		}
	}()
	InterrequestFor(1.0, 1)
}
