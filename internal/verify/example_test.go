package verify_test

import (
	"fmt"

	"busarb/internal/core"
	"busarb/internal/verify"
)

// Prove, by exhausting the reachable state space, that the paper's RR1
// protocol never bypasses a continuously waiting agent more than N-1
// times on a 4-agent bus — and that fixed priority has no such bound.
func Example() {
	rr := verify.System{
		N:         4,
		New:       func(n int) core.Protocol { return core.NewRR1(n) },
		Key:       verify.KeyRR,
		MaxBypass: 3,
	}
	res := verify.Explore(rr, 1_000_000)
	fmt.Printf("RR1: violation=%v states=%d worst=%d\n",
		res.Violation != nil, res.States, res.MaxBypass)

	fp := verify.System{
		N:         4,
		New:       func(n int) core.Protocol { return core.NewFixedPriority(n) },
		Key:       verify.KeyFP,
		MaxBypass: 3,
	}
	res = verify.Explore(fp, 1_000_000)
	fmt.Printf("FP: violation=%v (agent %d starved)\n",
		res.Violation != nil, res.Violation.Agent)
	// Output:
	// RR1: violation=false states=496 worst=3
	// FP: violation=true (agent 1 starved)
}
