// Package verify exhaustively explores protocol state spaces for small
// agent counts: every reachable combination of protocol state, waiting
// set, and per-agent bypass count is visited via breadth-first search
// over all request/grant interleavings. Unlike randomized tests, a pass
// here is a proof (for the given N) that no interleaving whatsoever can
// starve an agent beyond the protocol's bypass bound.
//
// The transition system is untimed: from each state, any non-waiting
// agent may request, and (if anyone waits) the bus may grant. This
// over-approximates the timed simulator — every schedule the simulator
// can produce is a path here — so safety results carry over.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"busarb/internal/core"
)

// System describes one protocol to verify.
type System struct {
	// N is the number of agents.
	N int
	// New builds a fresh protocol instance.
	New func(n int) core.Protocol
	// Key returns a canonical encoding of the protocol's internal
	// state; two states with equal keys (and equal waiting/bypass
	// vectors) behave identically forever. Sound keys are derived from
	// the protocols' exported registers.
	Key func(p core.Protocol) string
	// MaxBypass is the claimed bound: a continuously waiting agent is
	// granted after at most MaxBypass other grants.
	MaxBypass int
}

// Violation describes a found counterexample.
type Violation struct {
	Agent  int
	Bypass int
	Path   string
}

// Result summarizes an exploration.
type Result struct {
	States    int
	MaxBypass int // worst bypass actually observed
	Violation *Violation
	Exhausted bool // false if the state cap stopped the search
}

type state struct {
	proto   core.Protocol
	waiting []bool
	bypass  []int
	path    string
}

func (s *state) key(sys System) string {
	var b strings.Builder
	b.WriteString(sys.Key(s.proto))
	b.WriteByte('|')
	for id := 1; id <= sys.N; id++ {
		if s.waiting[id] {
			fmt.Fprintf(&b, "w%d:%d,", id, s.bypass[id])
		}
	}
	return b.String()
}

func (s *state) waitingIDs(n int) []int {
	var ids []int
	for id := 1; id <= n; id++ {
		if s.waiting[id] {
			ids = append(ids, id)
		}
	}
	return ids
}

// Explore runs the BFS up to maxStates distinct states.
func Explore(sys System, maxStates int) Result {
	if sys.N < 2 || sys.New == nil || sys.Key == nil || sys.MaxBypass < 1 {
		panic("verify: incomplete system description")
	}
	res := Result{Exhausted: true}
	initial := &state{
		proto:   sys.New(sys.N),
		waiting: make([]bool, sys.N+1),
		bypass:  make([]int, sys.N+1),
	}
	seen := map[string]bool{initial.key(sys): true}
	queue := []*state{initial}
	res.States = 1
	// step is a logical timestamp for OnRequest; it is NOT part of the
	// state key (protocol registers are bounded even when time is not).
	step := 0.0

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]

		var succs []*state
		// Action: a non-waiting agent requests.
		for id := 1; id <= sys.N; id++ {
			if cur.waiting[id] {
				continue
			}
			next := clone(cur, sys.N)
			step++
			next.waiting[id] = true
			next.bypass[id] = 0
			next.proto.OnRequest(id, step)
			next.path = cur.path + fmt.Sprintf("r%d ", id)
			succs = append(succs, next)
		}
		// Action: the bus grants (if anyone waits).
		if ids := cur.waitingIDs(sys.N); len(ids) > 0 {
			next := clone(cur, sys.N)
			step++
			w := arbitrate(next.proto, next.waitingIDs(sys.N))
			next.waiting[w] = false
			next.bypass[w] = 0
			next.proto.OnServiceStart(w, step)
			next.path = cur.path + fmt.Sprintf("g%d ", w)
			for id := 1; id <= sys.N; id++ {
				if next.waiting[id] {
					next.bypass[id]++
					if next.bypass[id] > res.MaxBypass {
						res.MaxBypass = next.bypass[id]
					}
					if next.bypass[id] > sys.MaxBypass {
						res.Violation = &Violation{
							Agent:  id,
							Bypass: next.bypass[id],
							Path:   next.path,
						}
						return res
					}
				}
			}
			succs = append(succs, next)
		}

		for _, next := range succs {
			k := next.key(sys)
			if seen[k] {
				continue
			}
			seen[k] = true
			res.States++
			if res.States > maxStates {
				res.Exhausted = false
				return res
			}
			queue = append(queue, next)
		}
	}
	return res
}

// clone deep-copies a state, rebuilding the protocol by replaying its
// canonical pieces. Protocols are cheap value-ish structures; cloning
// via the Cloner interface when available, else via replay is not
// possible generically — so clone relies on each supported protocol
// implementing the internal snapshot below.
func clone(s *state, n int) *state {
	next := &state{
		proto:   cloneProtocol(s.proto),
		waiting: append([]bool(nil), s.waiting...),
		bypass:  append([]int(nil), s.bypass...),
		path:    s.path,
	}
	_ = n
	return next
}

// arbitrate resolves an arbitration including RR3 repasses.
func arbitrate(p core.Protocol, waiting []int) int {
	for pass := 0; ; pass++ {
		if pass > 2 {
			panic("verify: runaway repass")
		}
		out := p.Arbitrate(waiting)
		if !out.Repass {
			return out.Winner
		}
	}
}

// cloneProtocol copies the supported protocol implementations.
func cloneProtocol(p core.Protocol) core.Protocol {
	switch v := p.(type) {
	case *core.FixedPriority:
		return core.NewFixedPriority(v.N())
	case *core.RR1:
		c := core.NewRR1(v.N())
		c.SetLastWinner(v.LastWinner())
		return c
	case *core.RR2:
		c := core.NewRR2(v.N())
		c.SetLastWinner(v.LastWinner())
		return c
	case *core.RR3:
		c := core.NewRR3(v.N())
		c.SetLastWinner(v.LastWinner())
		return c
	case *core.FCFS1:
		return v.Clone()
	case *core.FCFS2:
		return v.Clone()
	case *core.AAP1:
		return v.Clone()
	case *core.AAP2:
		return v.Clone()
	case *core.RotatingRR:
		return v.Clone()
	default:
		panic(fmt.Sprintf("verify: cannot clone protocol %T", p))
	}
}

// KeyRotRR keys the rotating-priority scheme by every agent's private
// rotation base (they can diverge — that divergence is the point of the
// robustness study; healthy systems keep them equal).
func KeyRotRR(p core.Protocol) string {
	v := p.(*core.RotatingRR)
	var b strings.Builder
	b.WriteString("rot")
	for id := 1; id <= v.N(); id++ {
		fmt.Fprintf(&b, "%d,", v.Base(id))
	}
	return b.String()
}

// Keys for the supported protocols, built from exported registers.

// KeyRR keys any of the three RR implementations by the winner register.
func KeyRR(p core.Protocol) string {
	switch v := p.(type) {
	case *core.RR1:
		return fmt.Sprintf("rr%d", v.LastWinner())
	case *core.RR2:
		return fmt.Sprintf("rr%d", v.LastWinner())
	case *core.RR3:
		return fmt.Sprintf("rr%d", v.LastWinner())
	}
	panic("verify: KeyRR on non-RR protocol")
}

// KeyFP is the fixed-priority key (stateless).
func KeyFP(core.Protocol) string { return "fp" }

// KeyCounters keys FCFS1/FCFS2 by the waiting-time counters.
func KeyCounters(p core.Protocol) string {
	type counterer interface {
		N() int
		Counter(id int) int
	}
	c, ok := p.(counterer)
	if !ok {
		panic("verify: KeyCounters on protocol without counters")
	}
	parts := make([]string, 0, c.N())
	for id := 1; id <= c.N(); id++ {
		parts = append(parts, fmt.Sprintf("%d", c.Counter(id)))
	}
	return "ctr" + strings.Join(parts, ",")
}

// KeyAAP1 keys AAP1 by batch membership (pending follows from the
// waiting set, which the explorer already keys).
func KeyAAP1(p core.Protocol) string {
	v := p.(*core.AAP1)
	var ids []int
	for id := 1; id <= v.N(); id++ {
		if v.InBatch(id) {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return fmt.Sprintf("b%v", ids)
}

// KeyAAP2 keys AAP2 by the inhibit flags.
func KeyAAP2(p core.Protocol) string {
	v := p.(*core.AAP2)
	var b strings.Builder
	b.WriteString("i")
	for id := 1; id <= v.N(); id++ {
		if v.Inhibited(id) {
			fmt.Fprintf(&b, "%d,", id)
		}
	}
	return b.String()
}
