package verify

import (
	"testing"

	"busarb/internal/core"
)

const stateCap = 2_000_000

func explore(t *testing.T, sys System) Result {
	t.Helper()
	res := Explore(sys, stateCap)
	if !res.Exhausted {
		t.Fatalf("state cap hit after %d states — raise the cap or shrink N", res.States)
	}
	if res.Violation != nil {
		t.Fatalf("agent %d bypassed %d times (bound %d); path: %s",
			res.Violation.Agent, res.Violation.Bypass, sys.MaxBypass, res.Violation.Path)
	}
	return res
}

// The RR protocols: a continuously waiting agent is bypassed at most
// N-1 times — perfect round-robin, proven over the full state space.
func TestRRBoundedBypassExhaustive(t *testing.T) {
	mks := map[string]func(n int) core.Protocol{
		"RR1": func(n int) core.Protocol { return core.NewRR1(n) },
		"RR2": func(n int) core.Protocol { return core.NewRR2(n) },
		"RR3": func(n int) core.Protocol { return core.NewRR3(n) },
	}
	for name, mk := range mks {
		for _, n := range []int{2, 3, 4, 5} {
			res := explore(t, System{N: n, New: mk, Key: KeyRR, MaxBypass: n - 1})
			t.Logf("%s n=%d: %d states, worst bypass %d", name, n, res.States, res.MaxBypass)
			if res.MaxBypass != n-1 {
				t.Errorf("%s n=%d: worst bypass %d, want the tight bound %d", name, n, res.MaxBypass, n-1)
			}
		}
	}
}

// FCFS2: also at most N-1 bypasses (strict arrival order), proven.
func TestFCFS2BoundedBypassExhaustive(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		res := explore(t, System{
			N:         n,
			New:       func(m int) core.Protocol { return core.NewFCFS2(m) },
			Key:       KeyCounters,
			MaxBypass: n - 1,
		})
		t.Logf("FCFS2 n=%d: %d states, worst bypass %d", n, res.States, res.MaxBypass)
	}
}

// FCFS1: a request can be bypassed by same-interval arrivals with
// higher identities, but never more than N-1 times in total.
func TestFCFS1BoundedBypassExhaustive(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		res := explore(t, System{
			N:         n,
			New:       func(m int) core.Protocol { return core.NewFCFS1(m) },
			Key:       KeyCounters,
			MaxBypass: n - 1,
		})
		t.Logf("FCFS1 n=%d: %d states, worst bypass %d", n, res.States, res.MaxBypass)
	}
}

// AAP1: an agent can miss at most one full batch: bound 2(N-1). The
// exploration also reports the worst case actually reachable.
func TestAAP1BoundedBypassExhaustive(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		res := explore(t, System{
			N:         n,
			New:       func(m int) core.Protocol { return core.NewAAP1(m) },
			Key:       KeyAAP1,
			MaxBypass: 2 * (n - 1),
		})
		t.Logf("AAP1 n=%d: %d states, worst bypass %d", n, res.States, res.MaxBypass)
	}
}

// AAP2: a request joins the current batch unless its agent was already
// served in it: bound 2(N-1) as well.
func TestAAP2BoundedBypassExhaustive(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		res := explore(t, System{
			N:         n,
			New:       func(m int) core.Protocol { return core.NewAAP2(m) },
			Key:       KeyAAP2,
			MaxBypass: 2 * (n - 1),
		})
		t.Logf("AAP2 n=%d: %d states, worst bypass %d", n, res.States, res.MaxBypass)
	}
}

// Fixed priority is genuinely unbounded: the verifier must find a
// violation for any finite bound (here 2N), demonstrating that the
// harness actually detects starvation.
func TestFPStarvationDetected(t *testing.T) {
	const n = 3
	res := Explore(System{
		N:         n,
		New:       func(m int) core.Protocol { return core.NewFixedPriority(m) },
		Key:       KeyFP,
		MaxBypass: 2 * n,
	}, stateCap)
	if res.Violation == nil {
		t.Fatal("fixed priority passed a bypass bound — the verifier is broken")
	}
	if res.Violation.Agent != 1 {
		t.Errorf("starved agent = %d, want the lowest identity 1", res.Violation.Agent)
	}
}

func TestExplorePanicsOnBadSystem(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("incomplete system did not panic")
		}
	}()
	Explore(System{N: 1}, 10)
}

func BenchmarkExploreRR1(b *testing.B) {
	sys := System{
		N:         5,
		New:       func(m int) core.Protocol { return core.NewRR1(m) },
		Key:       KeyRR,
		MaxBypass: 4,
	}
	for i := 0; i < b.N; i++ {
		Explore(sys, stateCap)
	}
}

// The healthy rotating-priority scheme has the same proven bound as the
// static RR protocols (faults are what break it; see the robustness
// study in internal/experiment).
func TestRotatingRRBoundedBypassExhaustive(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		res := explore(t, System{
			N:         n,
			New:       func(m int) core.Protocol { return core.NewRotatingRR(m) },
			Key:       KeyRotRR,
			MaxBypass: n - 1,
		})
		t.Logf("RotRR n=%d: %d states, worst bypass %d", n, res.States, res.MaxBypass)
	}
}
