package arbd

import (
	"context"
	"time"

	"busarb/internal/arbd/codec"
)

// Router is the seam between the binary server and a cluster layer
// (internal/arbd/cluster). A routed BinaryServer consults it per
// frame: frames for resources the router owns are handled by the
// local Daemon exactly as on a standalone server; frames for foreign
// resources are handed to ForwardAcquire/ForwardRelease, which proxy
// them to the owning node and return the owner's answer. The server
// stays transport-mechanical — membership, hop limits, deadline
// decrements and connection pooling all live behind this interface.
//
// Implementations must be safe for concurrent use: the server calls
// Owns from every connection's reader goroutine and the Forward
// methods from per-request goroutines.
type Router interface {
	// Owns reports whether the local node is the owner of resource
	// under the cluster's ring. Unknown resources are "owned" too —
	// the local daemon answers 404 with more context than a routing
	// layer could.
	Owns(resource string) bool

	// ForwardAcquire proxies an acquire to the owner and blocks until
	// the owner answers, the forward fails, or ctx is done. It always
	// returns a terminal reply (TGrant or TError).
	ForwardAcquire(ctx context.Context, f ForwardFrame) ForwardReply

	// ForwardRelease proxies a release to the owner. It always returns
	// a terminal reply (TReleased or TError).
	ForwardRelease(ctx context.Context, f ForwardFrame) ForwardReply
}

// ForwardFrame is one decoded client request handed to a Router, with
// owned (not buffer-aliased) fields.
type ForwardFrame struct {
	Resource string
	// Agent is the arbitrating identity (acquire only).
	Agent int
	// Timeout is the client's queue-wait bound (acquire only; 0 waits
	// indefinitely). Routers decrement it per hop so a forwarded
	// acquire cannot outlive the client's deadline.
	Timeout time.Duration
	// TTL is the requested lease lifetime (acquire only).
	TTL time.Duration
	// Token identifies the lease (release only).
	Token string
	// Corr is the client's correlation ID, used to stamp the origin
	// into the onward route field.
	Corr uint64
	// Route is the incoming frame's route field (owned copy) and
	// Routed whether FlagRouted was set — non-zero when this frame
	// already crossed a node, in which case the router enforces the
	// hop limit instead of stamping a fresh origin.
	Route  []byte
	Routed bool
}

// ForwardReply is a Router's terminal answer, ready to encode as the
// response to the origin client. Route carries the owner hint
// (codec.AppendOwnerRoute layout) the server attaches under
// FlagRouted so clients can learn resource placement lazily.
type ForwardReply struct {
	// Type is TGrant, TReleased or TError.
	Type codec.Type
	// Agent and TTL populate a TGrant.
	Agent int
	TTL   time.Duration
	// Resource and Token populate TGrant/TReleased frames.
	Resource string
	Token    string
	// Code and Msg populate a TError (the daemon's 400/404/408/503
	// taxonomy).
	Code int
	Msg  string
	// Route is the owner-hint route field for the response.
	Route []byte
}

// ErrorReply builds a TError ForwardReply; routers use it for local
// forwarding failures (overload, unreachable owner, hop limit).
func ErrorReply(code int, msg string) ForwardReply {
	return ForwardReply{Type: codec.TError, Code: code, Msg: msg}
}
