package arbd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"busarb/internal/arbd/codec"
)

// BinaryServer serves the daemon over the compact binary protocol
// (internal/arbd/codec, spec in docs/WIRE.md): length-prefixed frames
// over persistent connections, many in-flight acquires per connection
// correlated by ID. It is the second transport onto the same
// transport-blind Daemon.Acquire/Daemon.Release entry points the HTTP
// handlers use — the shard loops cannot tell the transports apart.
//
// Per connection: one reader goroutine decodes frames; each acquire
// runs in its own goroutine (acquires block, and blocking the reader
// would serialize the multiplexed agents behind one grant); one
// writer goroutine owns the connection's write side and serializes
// the responses. A dropped connection abandons its in-flight acquires
// the same way a closed HTTP request body does: their contexts
// cancel, and queued waiters are answered (and discarded) through the
// shard's 408 path.
type BinaryServer struct {
	d *Daemon
	// router, when non-nil, makes this a cluster node: frames for
	// resources it does not own are proxied to the owner instead of
	// hitting the local daemon. See Router.
	router Router

	mu     sync.Mutex
	ln     net.Listener          // guarded by mu
	conns  map[net.Conn]struct{} // guarded by mu
	closed bool                  // guarded by mu

	wg sync.WaitGroup // one per live connection handler
}

// ErrServerClosed is Serve's return after Close, mirroring
// net/http.ErrServerClosed.
var ErrServerClosed = errors.New("arbd: binary server closed")

// NewBinaryServer returns a server for d. Serve starts it; Close
// stops it.
func NewBinaryServer(d *Daemon) *BinaryServer {
	return &BinaryServer{d: d, conns: make(map[net.Conn]struct{})}
}

// NewRoutedBinaryServer returns a cluster-aware server: frames for
// resources r does not own are forwarded through r to their owner and
// the answer relayed back under FlagRouted. Frames r owns behave
// exactly as on a standalone server.
func NewRoutedBinaryServer(d *Daemon, r Router) *BinaryServer {
	return &BinaryServer{d: d, router: r, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Close, blocking like
// http.Server.Serve. It returns ErrServerClosed after Close, or the
// first accept error otherwise.
func (s *BinaryServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close stops accepting, closes every live connection (in-flight
// acquires are abandoned via their contexts), and waits for all
// connection handlers to exit. It is idempotent.
func (s *BinaryServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// dropConn forgets a finished connection.
func (s *BinaryServer) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// response is one server→client frame with owned (not buffer-aliased)
// fields, queued for the connection's writer goroutine.
type response struct {
	frame codec.Frame
	// resource, token, msg and route own the bytes frame's fields
	// alias. route is encoded only when frame.Flags carries
	// FlagRouted.
	resource, token, msg, route string
}

// serveConn runs one connection: reader here, writer and per-acquire
// goroutines below.
func (s *BinaryServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)
	defer conn.Close()

	// ctx abandons this connection's in-flight acquires when the read
	// side ends (peer gone or server closing).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The writer drains responses until the channel closes; a write
	// error degrades it into a discard loop so blocked acquire
	// goroutines can still finish sending.
	responses := make(chan response, 64)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		w := codec.NewWriter(conn)
		broken := false
		for r := range responses {
			if broken {
				continue
			}
			r.frame.Resource = []byte(r.resource)
			r.frame.Token = []byte(r.token)
			r.frame.Msg = []byte(r.msg)
			r.frame.Route = []byte(r.route)
			if err := w.WriteFrame(&r.frame); err != nil {
				broken = true
			}
		}
	}()

	var acquires sync.WaitGroup
	r := codec.NewReader(conn)
	var f codec.Frame
	for {
		if err := r.Next(&f); err != nil {
			// io.EOF is the peer's orderly goodbye; anything else —
			// malformed frame, version skew, torn connection, our own
			// Close — also just ends the conversation. A codec error is
			// answered best-effort before hanging up.
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.enqueue(responses, response{
					frame: codec.Frame{Type: codec.TError, Corr: f.Corr, Code: codeBadRequest},
					msg:   fmt.Sprintf("arbd: %v", err),
				})
			}
			break
		}
		switch f.Type {
		case codec.TAcquire:
			// Copy the buffer-aliased fields before the next Next call
			// invalidates them; the acquire blocks in its own goroutine.
			req := acquireArgs{
				corr:     f.Corr,
				resource: string(f.Resource),
				agent:    int(int32(f.Agent)),
				timeout:  time.Duration(f.TimeoutNS),
				ttl:      time.Duration(f.TTLNS),
				route:    string(f.Route),
				routed:   f.Flags&codec.FlagRouted != 0,
			}
			if s.router != nil && !s.router.Owns(req.resource) {
				s.forward(ctx, &acquires, responses, codec.TAcquire, ForwardFrame{
					Resource: req.resource,
					Agent:    req.agent,
					Timeout:  req.timeout,
					TTL:      req.ttl,
					Corr:     req.corr,
					Route:    []byte(req.route),
					Routed:   req.routed,
				})
				continue
			}
			acquires.Add(1)
			go func() {
				defer acquires.Done()
				s.handleAcquire(ctx, responses, req)
			}()
		case codec.TRelease:
			corr := f.Corr
			resource := string(f.Resource)
			if s.router != nil && !s.router.Owns(resource) {
				// A forwarded release blocks on the owner, so unlike the
				// local path it runs in its own goroutine (joining the
				// acquires group): release→response ordering is per-node,
				// not preserved across a hop.
				s.forward(ctx, &acquires, responses, codec.TRelease, ForwardFrame{
					Resource: resource,
					Token:    string(f.Token),
					Corr:     corr,
					Route:    []byte(f.Route),
					Routed:   f.Flags&codec.FlagRouted != 0,
				})
				continue
			}
			// Releases resolve against the shard loop without blocking
			// on a grant, so they are answered inline, preserving
			// release→response ordering on the connection.
			routed, route := f.Flags&codec.FlagRouted != 0, string(f.Route)
			if serr := s.d.Release(resource, string(f.Token)); serr != nil {
				s.enqueue(responses, stampRoute(errResponse(corr, serr), routed, route))
			} else {
				s.enqueue(responses, stampRoute(response{
					frame:    codec.Frame{Type: codec.TReleased, Corr: corr},
					resource: resource,
				}, routed, route))
			}
		default:
			s.enqueue(responses, response{
				frame: codec.Frame{Type: codec.TError, Corr: f.Corr, Code: codeBadRequest},
				msg:   fmt.Sprintf("arbd: unexpected %v frame", f.Type),
			})
		}
	}
	// Reader is done: cancel in-flight acquires, let them finish
	// replying, then retire the writer.
	cancel()
	acquires.Wait()
	close(responses)
	<-writerDone
}

// acquireArgs is one decoded acquire with owned fields. route/routed
// carry the incoming route field so owner-side responses to forwarded
// frames echo it back under FlagRouted.
type acquireArgs struct {
	corr     uint64
	resource string
	agent    int
	timeout  time.Duration
	ttl      time.Duration
	route    string
	routed   bool
}

// handleAcquire blocks on the shard and queues the response.
func (s *BinaryServer) handleAcquire(ctx context.Context, responses chan<- response, req acquireArgs) {
	lease, serr := s.d.Acquire(ctx, req.resource, req.agent, req.timeout, req.ttl)
	if serr != nil {
		s.enqueue(responses, stampRoute(errResponse(req.corr, serr), req.routed, req.route))
		return
	}
	s.enqueue(responses, stampRoute(response{
		frame: codec.Frame{
			Type:  codec.TGrant,
			Corr:  req.corr,
			Agent: uint32(lease.Agent),
			TTLNS: int64(lease.TTL),
		},
		resource: lease.Resource,
		token:    lease.Token,
	}, req.routed, req.route))
}

// forward hands a non-owned frame to the router in its own goroutine
// (joining the connection's acquires group — Close semantics are
// identical to a blocked local acquire) and queues the router's
// terminal reply, always under FlagRouted with the router's owner
// hint in the route field.
func (s *BinaryServer) forward(ctx context.Context, acquires *sync.WaitGroup, responses chan<- response, t codec.Type, ff ForwardFrame) {
	acquires.Add(1)
	go func() {
		defer acquires.Done()
		var rep ForwardReply
		if t == codec.TAcquire {
			rep = s.router.ForwardAcquire(ctx, ff)
		} else {
			rep = s.router.ForwardRelease(ctx, ff)
		}
		s.enqueue(responses, response{
			frame: codec.Frame{
				Type:  rep.Type,
				Flags: codec.FlagRouted,
				Corr:  ff.Corr,
				Agent: uint32(rep.Agent),
				TTLNS: int64(rep.TTL),
				Code:  uint16(rep.Code),
			},
			resource: rep.Resource,
			token:    rep.Token,
			msg:      rep.Msg,
			route:    string(rep.Route),
		})
	}()
}

// stampRoute marks a response as the answer to a routed frame,
// echoing the request's route field; unrouted responses pass through
// unchanged.
func stampRoute(r response, routed bool, route string) response {
	if routed {
		r.frame.Flags |= codec.FlagRouted
		r.route = route
	}
	return r
}

// errResponse maps a statusError onto a wire error frame.
func errResponse(corr uint64, serr *statusError) response {
	return response{
		frame: codec.Frame{Type: codec.TError, Corr: corr, Code: uint16(serr.code)},
		msg:   serr.msg,
	}
}

// enqueue hands a response to the writer goroutine. The channel is
// only closed after every possible sender has finished (acquires are
// waited for, the reader enqueues inline), and the writer drains it
// to the end even on a broken connection, so the send cannot deadlock
// or panic.
func (s *BinaryServer) enqueue(responses chan<- response, r response) {
	responses <- r
}
