package arbd

import (
	"fmt"
	"net"
	"net/http/httptest"
	"testing"
)

// TestNetworkedFairness is Table 4.1 over a socket: closed-loop
// clients saturate one resource through a full transport path and the
// bandwidth ratio t_N/t_1 (worst-served throughput over best-served)
// separates the protocols exactly as the paper's simulations do — the
// round-robin and FCFS protocols share evenly, fixed priority starves
// the low identities.
//
// The HTTP rows keep PR 4's scale (10 agents); the binary rows re-pin
// the same headline over the binary protocol at 100 multiplexed
// agents on one TCP connection.
func TestNetworkedFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive load run")
	}
	protocols := []struct {
		protocol string
		minRatio float64 // inclusive lower bound on t_N/t_1
		maxRatio float64 // inclusive upper bound
	}{
		{"RR1", 0.85, 1.15},
		{"FCFS2", 0.85, 1.15},
		{"FP", 0, 0.7}, // exclusive upper bound, checked below
	}
	transports := []struct {
		name     string
		agents   int
		requests int
		// serve starts the transport for d and returns a Dial target
		// plus a shutdown func.
		serve func(t *testing.T, d *Daemon) (string, func())
	}{
		{"http", 10, 30, func(t *testing.T, d *Daemon) (string, func()) {
			srv := httptest.NewServer(d.Handler())
			return srv.URL, srv.Close
		}},
		{"binary", 100, 15, func(t *testing.T, d *Daemon) (string, func()) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			bs := NewBinaryServer(d)
			go bs.Serve(ln)
			return "tcp://" + ln.Addr().String(), func() { bs.Close() }
		}},
	}
	for _, tr := range transports {
		for _, tc := range protocols {
			t.Run(fmt.Sprintf("%s/%s", tr.name, tc.protocol), func(t *testing.T) {
				d, err := New(Config{Resources: []ResourceConfig{{
					Name:     "bus",
					Agents:   tr.agents,
					Protocol: tc.protocol,
					Tick:     testTick,
				}}})
				if err != nil {
					t.Fatal(err)
				}
				target, shutdown := tr.serve(t, d)
				defer func() { shutdown(); d.Close() }()

				rep, err := RunLoad(LoadConfig{
					Target:   target,
					Resource: "bus",
					Agents:   tr.agents,
					Requests: tr.requests,
					Seed:     1,
				})
				if err != nil {
					t.Fatal(err)
				}
				for i, a := range rep.Agents {
					if a.Grants != int64(tr.requests) {
						t.Errorf("agent %d got %d grants, want %d", i+1, a.Grants, tr.requests)
					}
				}
				t.Logf("%s/%s: bandwidth ratio t_N/t_1 = %.3f (run %.2fs, pooled Wp50=%s Wp90=%s)",
					tr.name, tc.protocol, rep.BandwidthRatio, rep.Elapsed.Seconds(), rep.WaitP50, rep.WaitP90)
				if tc.protocol == "FP" {
					if rep.BandwidthRatio >= tc.maxRatio {
						t.Errorf("FP bandwidth ratio %.3f, want < %.2f: fixed priority should starve low identities at saturation",
							rep.BandwidthRatio, tc.maxRatio)
					}
					return
				}
				if rep.BandwidthRatio < tc.minRatio || rep.BandwidthRatio > tc.maxRatio {
					t.Errorf("%s bandwidth ratio %.3f outside [%.2f, %.2f]",
						tc.protocol, rep.BandwidthRatio, tc.minRatio, tc.maxRatio)
				}
			})
		}
	}
}
