package arbd

import (
	"net/http/httptest"
	"testing"
)

// TestNetworkedFairness is Table 4.1 over a socket: ten closed-loop
// clients saturate one resource through the full HTTP path and the
// bandwidth ratio t_N/t_1 (worst-served throughput over best-served)
// separates the protocols exactly as the paper's simulations do — the
// round-robin and FCFS protocols share evenly, fixed priority starves
// the low identities.
func TestNetworkedFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive load run")
	}
	const (
		agents   = 10
		requests = 30
	)
	cases := []struct {
		protocol string
		minRatio float64 // inclusive lower bound on t_N/t_1
		maxRatio float64 // inclusive upper bound
	}{
		{"RR1", 0.85, 1.15},
		{"FCFS2", 0.85, 1.15},
		{"FP", 0, 0.7}, // exclusive upper bound, checked below
	}
	for _, tc := range cases {
		t.Run(tc.protocol, func(t *testing.T) {
			d, err := New(Config{Resources: []ResourceConfig{{
				Name:     "bus",
				Agents:   agents,
				Protocol: tc.protocol,
				Tick:     testTick,
			}}})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(d.Handler())
			defer func() { srv.Close(); d.Close() }()

			rep, err := RunLoad(LoadConfig{
				BaseURL:  srv.URL,
				Resource: "bus",
				Agents:   agents,
				Requests: requests,
				Seed:     1,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, a := range rep.Agents {
				if a.Grants != requests {
					t.Errorf("agent %d got %d grants, want %d", i+1, a.Grants, requests)
				}
			}
			t.Logf("%s: bandwidth ratio t_N/t_1 = %.3f (run %.2fs, pooled Wp50=%s Wp90=%s)",
				tc.protocol, rep.BandwidthRatio, rep.Elapsed.Seconds(), rep.WaitP50, rep.WaitP90)
			if tc.protocol == "FP" {
				if rep.BandwidthRatio >= tc.maxRatio {
					t.Errorf("FP bandwidth ratio %.3f, want < %.2f: fixed priority should starve low identities at saturation",
						rep.BandwidthRatio, tc.maxRatio)
				}
				return
			}
			if rep.BandwidthRatio < tc.minRatio || rep.BandwidthRatio > tc.maxRatio {
				t.Errorf("%s bandwidth ratio %.3f outside [%.2f, %.2f]",
					tc.protocol, rep.BandwidthRatio, tc.minRatio, tc.maxRatio)
			}
		})
	}
}
