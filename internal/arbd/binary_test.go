package arbd

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"busarb/client"
	"busarb/internal/arbd/codec"
)

// startBinary serves d over the binary protocol on a fresh loopback
// listener, returning the Dial target and the server for shutdown.
func startBinary(t *testing.T, d *Daemon) (string, *BinaryServer) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bs := NewBinaryServer(d)
	go bs.Serve(ln)
	return "tcp://" + ln.Addr().String(), bs
}

// TestBinaryAcquireRelease is the binary transport's basic round trip
// over a real TCP socket: acquire grants a lease whose fields survive
// the wire, release ends it, and a second release of the same token is
// the not-found error.
func TestBinaryAcquireRelease(t *testing.T) {
	d, err := New(Config{Resources: []ResourceConfig{res("bus", 4, "RR1")}})
	if err != nil {
		t.Fatal(err)
	}
	target, bs := startBinary(t, d)
	defer func() { bs.Close(); d.Close() }()

	c, err := client.Dial(target)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	lease, err := c.Acquire(ctx, "bus", 3, client.AcquireOptions{TTL: 2 * time.Second})
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if lease.Resource != "bus" || lease.Agent != 3 || lease.Token == "" {
		t.Fatalf("lease = %+v, want resource bus, agent 3, non-empty token", lease)
	}
	if lease.TTL != 2*time.Second {
		t.Fatalf("lease TTL = %v, want 2s", lease.TTL)
	}
	if err := c.Release(ctx, lease); err != nil {
		t.Fatalf("release: %v", err)
	}
	err = c.Release(ctx, lease)
	var se *client.Error
	if !errors.As(err, &se) || se.Code != 404 {
		t.Fatalf("double release = %v, want *client.Error with code 404", err)
	}
}

// TestBinaryMultiplexing runs many logical agents through one Client —
// one TCP connection — with overlapping in-flight acquires, and checks
// every agent completes its budget. Correlation IDs, not connections,
// keep the conversations apart.
func TestBinaryMultiplexing(t *testing.T) {
	const agents, rounds = 16, 8
	d, err := New(Config{Resources: []ResourceConfig{
		res("bus", agents, "RR1"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	target, bs := startBinary(t, d)
	defer func() { bs.Close(); d.Close() }()

	c, err := client.Dial(target)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, agents)
	for id := 1; id <= agents; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				lease, err := c.Acquire(ctx, "bus", id, client.AcquireOptions{})
				if err != nil {
					errs <- fmt.Errorf("agent %d acquire: %w", id, err)
					return
				}
				if lease.Agent != id {
					errs <- fmt.Errorf("agent %d granted lease for agent %d", id, lease.Agent)
					return
				}
				if err := c.Release(ctx, lease); err != nil {
					errs <- fmt.Errorf("agent %d release: %w", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBinaryErrors pins the taxonomy over the wire: unknown resource
// and unknown lease are 404, queue-timeout is ErrDeadline (408), and a
// negative timeout or TTL — raw nanoseconds the binary codec ships
// without the HTTP layer's parseDuration guard — is rejected 400 by
// the shard itself.
func TestBinaryErrors(t *testing.T) {
	d, err := New(Config{Resources: []ResourceConfig{res("bus", 4, "RR1")}})
	if err != nil {
		t.Fatal(err)
	}
	target, bs := startBinary(t, d)
	defer func() { bs.Close(); d.Close() }()

	c, err := client.Dial(target)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	wantCode := func(t *testing.T, err error, code int) {
		t.Helper()
		var se *client.Error
		if !errors.As(err, &se) || se.Code != code {
			t.Fatalf("err = %v, want *client.Error with code %d", err, code)
		}
	}

	t.Run("unknown resource", func(t *testing.T) {
		_, err := c.Acquire(ctx, "nope", 1, client.AcquireOptions{})
		wantCode(t, err, 404)
	})
	t.Run("unknown lease", func(t *testing.T) {
		err := c.Release(ctx, client.Lease{Resource: "bus", Token: "bogus"})
		wantCode(t, err, 404)
	})
	t.Run("negative timeout", func(t *testing.T) {
		_, err := c.Acquire(ctx, "bus", 1, client.AcquireOptions{Timeout: -time.Second})
		wantCode(t, err, 400)
	})
	t.Run("negative ttl", func(t *testing.T) {
		_, err := c.Acquire(ctx, "bus", 1, client.AcquireOptions{TTL: -time.Second})
		wantCode(t, err, 400)
	})
	t.Run("deadline while queued", func(t *testing.T) {
		holder, err := c.Acquire(ctx, "bus", 1, client.AcquireOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Release(ctx, holder)
		_, err = c.Acquire(ctx, "bus", 2, client.AcquireOptions{Timeout: 5 * testTick})
		if !errors.Is(err, client.ErrDeadline) {
			t.Fatalf("queued acquire = %v, want ErrDeadline", err)
		}
		wantCode(t, err, 408)
	})
}

// TestBinaryBadFrame feeds the listener raw garbage and checks the
// server answers a bad_request error frame before hanging up, rather
// than stalling or dying.
func TestBinaryBadFrame(t *testing.T) {
	d, err := New(Config{Resources: []ResourceConfig{res("bus", 4, "RR1")}})
	if err != nil {
		t.Fatal(err)
	}
	target, bs := startBinary(t, d)
	defer func() { bs.Close(); d.Close() }()

	conn, err := net.Dial("tcp", target[len("tcp://"):])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A length prefix far over MaxPayload: hostile or corrupt.
	if _, err := conn.Write([]byte{0xff, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var f codec.Frame
	if err := codec.NewReader(conn).Next(&f); err != nil {
		t.Fatalf("reading error frame: %v", err)
	}
	if f.Type != codec.TError || f.Code != 400 {
		t.Fatalf("got frame type %v code %d, want TError 400", f.Type, f.Code)
	}
}

// TestBinaryServerClose is the no-leaked-goroutines pin for the binary
// listener: with connections open and an acquire blocked in the shard
// queue, Close must abandon the waiter, tear down every per-connection
// goroutine, and return — and the goroutine count must come back to
// the baseline.
func TestBinaryServerClose(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()

	d, err := New(Config{Resources: []ResourceConfig{res("bus", 4, "RR1")}})
	if err != nil {
		t.Fatal(err)
	}
	target, bs := startBinary(t, d)

	c, err := client.Dial(target)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	holder, err := c.Acquire(ctx, "bus", 1, client.AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = holder
	// A second acquire that will still be queued when the server closes.
	waiterErr := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx, "bus", 2, client.AcquireOptions{})
		waiterErr <- err
	}()
	// Let the waiter reach the shard queue.
	time.Sleep(20 * testTick)

	if err := bs.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The torn connection must fail the in-flight call, not strand it.
	select {
	case err := <-waiterErr:
		if err == nil {
			t.Fatal("queued acquire succeeded across server Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued acquire still blocked after server Close")
	}
	c.Close()
	d.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after Close\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
