package arbd

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// getEnvelope performs req and decodes the error envelope, failing if
// the body is not one.
func getEnvelope(t *testing.T, method, url string) (int, http.Header, errorEnvelope) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("%s %s: body %q is not an error envelope: %v", method, url, body, err)
	}
	return resp.StatusCode, resp.Header, env
}

// TestErrorEnvelope pins that every HTTP failure path answers the JSON
// envelope {"code","error"} with the taxonomy's code name matching the
// status, so clients never have to sniff plain-text bodies.
func TestErrorEnvelope(t *testing.T) {
	_, srv := newTestDaemon(t, res("bus", 4, "RR1"))

	cases := []struct {
		name     string
		method   string
		url      string
		status   int
		code     string
		contains string // substring of the error message
	}{
		{"unknown resource", "POST", "/v1/acquire?resource=nope&agent=1",
			404, "not_found", "unknown resource"},
		{"missing resource", "POST", "/v1/acquire?agent=1",
			400, "bad_request", "missing resource"},
		{"bad agent", "POST", "/v1/acquire?resource=bus&agent=zero",
			400, "bad_request", "bad agent"},
		{"negative timeout", "POST", "/v1/acquire?resource=bus&agent=1&timeout=-1s",
			400, "bad_request", "negative timeout"},
		{"negative ttl", "POST", "/v1/acquire?resource=bus&agent=1&ttl=-5s",
			400, "bad_request", "negative ttl"},
		{"release unknown token", "POST", "/v1/release?resource=bus&token=nope",
			404, "not_found", "unknown or expired"},
		{"release missing token", "POST", "/v1/release?resource=bus",
			400, "bad_request", "missing token"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, hdr, env := getEnvelope(t, tc.method, srv.URL+tc.url)
			if status != tc.status {
				t.Errorf("status %d, want %d", status, tc.status)
			}
			if ct := hdr.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type %q, want application/json", ct)
			}
			if env.Code != tc.code {
				t.Errorf("code %q, want %q", env.Code, tc.code)
			}
			if !strings.Contains(env.Error, tc.contains) {
				t.Errorf("error %q does not mention %q", env.Error, tc.contains)
			}
		})
	}

	// The queue-timeout failure carries the envelope too.
	code, lease := httpAcquire(t, srv.URL, "bus", 1, "")
	if code != http.StatusOK {
		t.Fatalf("holder acquire status %d", code)
	}
	status, _, env := getEnvelope(t, "POST", srv.URL+"/v1/acquire?resource=bus&agent=2&timeout=1ms")
	if status != 408 || env.Code != "deadline" {
		t.Errorf("queued timeout: status %d code %q, want 408 deadline", status, env.Code)
	}
	if code := httpRelease(t, srv.URL, "bus", lease.Token); code != http.StatusOK {
		t.Fatalf("release status %d", code)
	}
}

// TestVersionGuard pins the /v1/ catch-all: an endpoint the daemon
// does not speak is an enveloped 404, and a wrong method on a real
// endpoint is an enveloped 405 naming POST in Allow — never a bare
// mux fallthrough.
func TestVersionGuard(t *testing.T) {
	_, srv := newTestDaemon(t, res("bus", 4, "RR1"))

	status, _, env := getEnvelope(t, "GET", srv.URL+"/v1/nosuch")
	if status != 404 || env.Code != "not_found" {
		t.Errorf("GET /v1/nosuch: status %d code %q, want 404 not_found", status, env.Code)
	}
	status, _, env = getEnvelope(t, "POST", srv.URL+"/v1/acquire/extra")
	if status != 404 || env.Code != "not_found" {
		t.Errorf("POST /v1/acquire/extra: status %d code %q, want 404 not_found", status, env.Code)
	}
	status, hdr, env := getEnvelope(t, "GET", srv.URL+"/v1/acquire?resource=bus&agent=1")
	if status != 405 || env.Code != "method_not_allowed" {
		t.Errorf("GET acquire: status %d code %q, want 405 method_not_allowed", status, env.Code)
	}
	if allow := hdr.Get("Allow"); allow != "POST" {
		t.Errorf("Allow %q, want POST", allow)
	}
	status, hdr, env = getEnvelope(t, "DELETE", srv.URL+"/v1/release")
	if status != 405 || env.Code != "method_not_allowed" {
		t.Errorf("DELETE release: status %d code %q, want 405 method_not_allowed", status, env.Code)
	}
	if allow := hdr.Get("Allow"); allow != "POST" {
		t.Errorf("Allow %q, want POST", allow)
	}
}

// TestReleaseBody pins /v1/release's success body: the resource named
// with the same field spelling the lease uses, plus the released flag.
func TestReleaseBody(t *testing.T) {
	_, srv := newTestDaemon(t, res("bus", 4, "RR1"))

	code, lease := httpAcquire(t, srv.URL, "bus", 1, "")
	if code != http.StatusOK {
		t.Fatalf("acquire status %d", code)
	}
	resp, err := http.Post(srv.URL+"/v1/release?resource=bus&token="+lease.Token, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body releaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Resource != "bus" || !body.Released {
		t.Errorf("release body = %+v, want {bus true}", body)
	}
}
