package arbd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"busarb/internal/obs"
)

// Handler returns the daemon's HTTP surface:
//
//	POST /v1/acquire?resource=R&agent=I[&timeout=2s][&ttl=5s]
//	    Block until agent I is granted resource R (200 with a Lease
//	    JSON body), the timeout passes (408), or the daemon pushes
//	    back (503: full queue or shutting down).
//	POST /v1/release?resource=R&token=T
//	    End the lease T (200 with {"resource","released"}), or 404 if
//	    it is unknown or expired.
//	GET  /metricz
//	    Live per-resource JSON: per-agent grant and request tallies,
//	    arbitration and repass counts, and the most recent closed
//	    obs.Metrics window with per-agent wait quantiles.
//	GET  /healthz
//	    "ok" while the daemon is up.
//
// Every failure answers a JSON error envelope {"code","error"} —
// code is the taxonomy name (bad_request, not_found, deadline,
// overload), error the human-readable message — including requests
// for /v1/ paths that do not exist (the version guard: an endpoint
// this daemon does not speak is a well-formed not_found, never a
// silently misrouted success). The HTTP statuses and envelope codes
// are the same taxonomy the binary transport ships as numeric error
// frames; busarb/client maps both onto its typed errors.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/acquire", d.handleAcquire)
	mux.HandleFunc("POST /v1/release", d.handleRelease)
	mux.HandleFunc("GET /metricz", d.handleMetricz)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		// The version guard sits below the method-qualified patterns,
		// so it sees both wrong methods on real endpoints (405, with
		// the envelope the bare mux would not write) and endpoints
		// this daemon does not speak (404).
		switch r.URL.Path {
		case "/v1/acquire", "/v1/release":
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed,
				fmt.Sprintf("arbd: %s %s needs POST", r.Method, r.URL.Path))
		default:
			writeError(w, codeNotFound, fmt.Sprintf("arbd: no such endpoint %s %s", r.Method, r.URL.Path))
		}
	})
	return mux
}

// errorEnvelope is the JSON body of every HTTP failure.
type errorEnvelope struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// codeName names a taxonomy code for the envelope.
func codeName(code int) string {
	switch code {
	case codeBadRequest:
		return "bad_request"
	case codeNotFound:
		return "not_found"
	case codeDeadline:
		return "deadline"
	case codeOverload:
		return "overload"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	}
	return fmt.Sprintf("http_%d", code)
}

// writeError answers one failure with the envelope.
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorEnvelope{Code: codeName(code), Error: msg})
}

// writeStatusError answers a shard/daemon statusError with the
// envelope.
func writeStatusError(w http.ResponseWriter, serr *statusError) {
	writeError(w, serr.code, serr.msg)
}

// shardFor resolves the resource parameter, writing the error itself
// when it fails.
func (d *Daemon) shardFor(w http.ResponseWriter, r *http.Request) *shard {
	name := r.FormValue("resource")
	if name == "" {
		writeError(w, codeBadRequest, "arbd: missing resource parameter")
		return nil
	}
	s, ok := d.shards[name]
	if !ok {
		writeError(w, codeNotFound, fmt.Sprintf("arbd: unknown resource %q", name))
		return nil
	}
	return s
}

// parseDuration reads an optional duration parameter.
func parseDuration(r *http.Request, name string) (time.Duration, error) {
	v := r.FormValue(name)
	if v == "" {
		return 0, nil
	}
	dur, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("arbd: bad %s %q: %v", name, v, err)
	}
	if dur < 0 {
		return 0, fmt.Errorf("arbd: negative %s %q", name, v)
	}
	return dur, nil
}

func (d *Daemon) handleAcquire(w http.ResponseWriter, r *http.Request) {
	s := d.shardFor(w, r)
	if s == nil {
		return
	}
	var agent int
	if _, err := fmt.Sscanf(r.FormValue("agent"), "%d", &agent); err != nil {
		writeError(w, codeBadRequest, fmt.Sprintf("arbd: bad agent %q", r.FormValue("agent")))
		return
	}
	timeout, err := parseDuration(r, "timeout")
	if err != nil {
		writeError(w, codeBadRequest, err.Error())
		return
	}
	ttl, err := parseDuration(r, "ttl")
	if err != nil {
		writeError(w, codeBadRequest, err.Error())
		return
	}
	lease, serr := s.acquire(r.Context(), agent, timeout, ttl)
	if serr != nil {
		writeStatusError(w, serr)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(lease)
}

// releaseResponse is /v1/release's success body, naming the resource
// with the same field spelling the acquire lease and /metricz use.
type releaseResponse struct {
	Resource string `json:"resource"`
	Released bool   `json:"released"`
}

func (d *Daemon) handleRelease(w http.ResponseWriter, r *http.Request) {
	s := d.shardFor(w, r)
	if s == nil {
		return
	}
	token := r.FormValue("token")
	if token == "" {
		writeError(w, codeBadRequest, "arbd: missing token parameter")
		return
	}
	if !s.releaseToken(token) {
		writeError(w, codeNotFound, "arbd: unknown or expired lease")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(releaseResponse{Resource: s.cfg.Name, Released: true})
}

// AgentMetrics is one agent's slice of a /metricz resource entry.
type AgentMetrics struct {
	// Grants and Requests are cumulative since daemon start.
	Grants   int64 `json:"grants"`
	Requests int64 `json:"requests"`
	// The wait quantiles summarize the most recent closed metrics
	// window (zero when the agent was idle in it): time from request
	// line assertion to lease end, in seconds.
	WaitP50 float64 `json:"wait_p50_s"`
	WaitP90 float64 `json:"wait_p90_s"`
	WaitMax float64 `json:"wait_max_s"`
}

// ResourceMetrics is one resource's /metricz entry.
type ResourceMetrics struct {
	Protocol     string         `json:"protocol"`
	Agents       []AgentMetrics `json:"agents"` // indexed by identity-1
	Arbitrations int64          `json:"arbitrations"`
	Repasses     int64          `json:"repasses"`
	// WindowStart/WindowEnd bound the closed metrics window the wait
	// quantiles come from, in seconds since daemon start; both zero
	// when no window has closed yet.
	WindowStart float64 `json:"window_start_s"`
	WindowEnd   float64 `json:"window_end_s"`
}

// Metrics snapshots every resource's live counters and latest metrics
// window. It is safe to call while the shard loops run: each snapshot
// is taken under the shard's probe mutex.
func (d *Daemon) Metrics() map[string]ResourceMetrics {
	out := make(map[string]ResourceMetrics, len(d.names))
	for _, name := range d.names {
		s := d.shards[name]
		rm := ResourceMetrics{
			Protocol: s.cfg.ProtocolName(),
			Agents:   make([]AgentMetrics, s.cfg.Agents),
		}
		s.probe.Do(func() {
			for id := 1; id <= s.cfg.Agents; id++ {
				rm.Agents[id-1] = AgentMetrics{
					Grants:   s.tally.grants[id],
					Requests: s.tally.requests[id],
				}
			}
			rm.Arbitrations = s.tally.arbitrations
			rm.Repasses = s.tally.repasses
			if wins := s.metrics.Windows(); len(wins) > 0 {
				win := wins[len(wins)-1]
				rm.WindowStart, rm.WindowEnd = win.Start, win.End
				for id := 1; id <= s.cfg.Agents && id <= len(win.Agents); id++ {
					a := win.Agents[id-1]
					rm.Agents[id-1].WaitP50 = a.WaitP50
					rm.Agents[id-1].WaitP90 = a.WaitP90
					rm.Agents[id-1].WaitMax = a.WaitMax
				}
			}
		})
		out[name] = rm
	}
	return out
}

// metriczPayload is the /metricz document.
type metriczPayload struct {
	UptimeSeconds float64                    `json:"uptime_s"`
	Resources     map[string]ResourceMetrics `json:"resources"`
}

func (d *Daemon) handleMetricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(metriczPayload{
		UptimeSeconds: d.Uptime().Seconds(),
		Resources:     d.Metrics(),
	})
}

// obsProbeCheck pins at compile time that tally satisfies obs.Probe.
var _ obs.Probe = (*tally)(nil)
