// Package arbd is arbitration-as-a-service: the paper's bus
// arbitration protocols (re-hosted as real-time grant schedulers by
// internal/grant) granting named shared resources to networked clients
// over HTTP. It is the first subsystem in this repository where
// wall-clock concurrency is the product rather than a test harness.
//
// Each configured resource is one shard: a single goroutine that owns
// a grant.Scheduler and runs the "bus cycle" — a ticker that batches
// the acquire requests that arrived since the last tick, expires
// leases and waiter deadlines, and, when the resource is free, runs
// one wired-OR arbitration and grants the winner a lease. Mirroring
// the simulators' single-threaded event loops keeps the protocol state
// free of locks; the only cross-goroutine seams are the shard's
// request channels and an obs.Synchronized probe, through which the
// /metricz handler reads live obs.Metrics windows and grant tallies
// while the loop keeps emitting.
//
// Backpressure contract: a full shard queue and a stopping daemon
// answer 503; an acquire whose client deadline passes while queued
// answers 408. Leases expire at their TTL if the holder never
// releases, so a crashed client cannot wedge a resource.
package arbd

import (
	"context"
	"fmt"
	"sync"
	"time"

	"busarb/internal/grant"
	"busarb/internal/obs"
	"busarb/internal/topo"
)

// ResourceConfig describes one arbitrated resource (one shard).
type ResourceConfig struct {
	// Name identifies the resource in URLs (non-empty, unique).
	Name string
	// Agents is the number of arbitrating identities, 1..Agents. With
	// Topo set it may be left 0 (the tree's total) but must match the
	// tree when given.
	Agents int
	// Protocol names the grant scheduler ("FP", "RR1", "RR3", "FCFS1",
	// "FCFS2"). Set exactly one of Protocol and Topo.
	Protocol string
	// Topo, if non-nil, arbitrates the resource hierarchically: agents
	// compete in clusters and cluster winners compete upward, each node
	// running its own protocol (internal/topo's grant face). Agent
	// identities map onto leaves depth-first.
	Topo *topo.Spec
	// Tick is the bus cycle: pending acquires are batched and at most
	// one arbitration resolves per tick. Default 1ms.
	Tick time.Duration
	// TTL is the default (and maximum) lease lifetime. Default 30s.
	TTL time.Duration
	// MaxQueue bounds the queued waiters per shard; acquires beyond it
	// are answered 503. Default 1024.
	MaxQueue int
	// MetricsWindow is the obs.Metrics window width in seconds.
	// Default 5s.
	MetricsWindow float64
}

// ProtocolName names the resource's arbitration discipline for status
// surfaces: the scheduler name, or the tree's composite name (e.g.
// "FCFS2(4xRR1:8)").
func (rc ResourceConfig) ProtocolName() string {
	if rc.Topo != nil {
		return rc.Topo.Name()
	}
	return rc.Protocol
}

// withDefaults returns rc with zero fields filled in.
func (rc ResourceConfig) withDefaults() ResourceConfig {
	if rc.Topo != nil && rc.Agents == 0 {
		rc.Agents = rc.Topo.TotalAgents()
	}
	if rc.Tick == 0 {
		rc.Tick = time.Millisecond
	}
	if rc.TTL == 0 {
		rc.TTL = 30 * time.Second
	}
	if rc.MaxQueue == 0 {
		rc.MaxQueue = 1024
	}
	if rc.MetricsWindow == 0 {
		rc.MetricsWindow = 5
	}
	return rc
}

// Config describes a daemon.
type Config struct {
	// Resources lists the arbitrated resources (at least one, unless
	// AllowNoResources).
	Resources []ResourceConfig
	// AllowNoResources permits an empty Resources list. A standalone
	// daemon with nothing to arbitrate is a misconfiguration, but a
	// cluster node can legitimately own zero resources (the ring
	// placed them all elsewhere) while still forwarding for its
	// peers.
	AllowNoResources bool
	// Observer, if non-nil, additionally receives every shard's events
	// (already serialized through the shard's Synchronized probe).
	// Event times are seconds since the daemon started.
	Observer obs.Probe
}

// Validate checks the configuration; New returns exactly these errors.
func (cfg Config) Validate() error {
	if len(cfg.Resources) == 0 && !cfg.AllowNoResources {
		return fmt.Errorf("arbd: at least one resource required")
	}
	seen := make(map[string]bool, len(cfg.Resources))
	for _, rc := range cfg.Resources {
		if rc.Name == "" {
			return fmt.Errorf("arbd: resource with empty name")
		}
		if seen[rc.Name] {
			return fmt.Errorf("arbd: duplicate resource %q", rc.Name)
		}
		seen[rc.Name] = true
		switch {
		case rc.Topo != nil:
			if rc.Protocol != "" {
				return fmt.Errorf("arbd: resource %q: set Protocol or Topo, not both", rc.Name)
			}
			if err := rc.Topo.Validate(func(name string) error {
				_, err := grant.ByName(name)
				return err
			}); err != nil {
				return fmt.Errorf("arbd: resource %q: %v", rc.Name, err)
			}
			if total := rc.Topo.TotalAgents(); rc.Agents != 0 && rc.Agents != total {
				return fmt.Errorf("arbd: resource %q: Agents %d does not match the tree's %d",
					rc.Name, rc.Agents, total)
			}
		default:
			if rc.Agents < 1 {
				return fmt.Errorf("arbd: resource %q needs at least 1 agent, got %d", rc.Name, rc.Agents)
			}
			if _, err := grant.ByName(rc.Protocol); err != nil {
				return fmt.Errorf("arbd: resource %q: %v", rc.Name, err)
			}
		}
		if rc.Tick < 0 || rc.TTL < 0 || rc.MaxQueue < 0 || rc.MetricsWindow < 0 {
			return fmt.Errorf("arbd: resource %q has negative timing/queue parameters", rc.Name)
		}
	}
	return nil
}

// Daemon is a running arbitration service. Create with New, expose
// with Handler, stop with Close.
type Daemon struct {
	shards map[string]*shard
	names  []string // shard names in configuration order
	epoch  time.Time
}

// New validates cfg, builds one shard per resource, and starts the
// shard loops.
func New(cfg Config) (*Daemon, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Daemon{shards: make(map[string]*shard, len(cfg.Resources)), epoch: time.Now()}
	for _, rc := range cfg.Resources {
		rc = rc.withDefaults()
		var sched grant.Scheduler
		if rc.Topo != nil {
			tree, err := topo.NewGrantTree(rc.Topo)
			if err != nil {
				return nil, err // unreachable after Validate; kept for safety
			}
			sched = tree
		} else {
			f, err := grant.ByName(rc.Protocol)
			if err != nil {
				return nil, err // unreachable after Validate; kept for safety
			}
			sched = f(rc.Agents)
		}
		s := newShard(rc, sched, d.epoch, cfg.Observer)
		d.shards[rc.Name] = s
		d.names = append(d.names, rc.Name)
		go s.loop()
	}
	return d, nil
}

// Close stops every shard loop, answering all queued acquires with
// 503, and waits for the loops to exit. It is idempotent.
func (d *Daemon) Close() {
	for _, name := range d.names {
		d.shards[name].stop()
	}
	for _, name := range d.names {
		<-d.shards[name].stopped
	}
}

// Uptime returns the wall-clock time since the daemon started.
func (d *Daemon) Uptime() time.Duration { return time.Since(d.epoch) }

// statusError is a shard reply that did not grant: a code from the
// daemon's transport-neutral taxonomy plus a message. The codes reuse
// the HTTP status numbers — 400 bad request, 404 unknown resource or
// lease, 408 deadline, 503 overload/shutdown — and travel verbatim as
// binary-protocol error codes, so both transports speak the same
// taxonomy (client maps them onto its typed errors).
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

// The taxonomy's codes, named where the transports construct replies.
const (
	codeBadRequest = 400
	codeNotFound   = 404
	codeDeadline   = 408
	codeOverload   = 503
)

// acquireReq is one client waiting for a grant.
type acquireReq struct {
	agent    int
	deadline time.Time       // zero means no client deadline
	ttl      time.Duration   // requested lease TTL (clamped to config)
	ctx      context.Context // abandoned when done
	reply    chan acquireReply
}

// acquireReply resolves one acquireReq: a lease or an error.
type acquireReply struct {
	lease Lease
	err   *statusError
}

// Lease is a granted resource tenure.
type Lease struct {
	Resource string        `json:"resource"`
	Agent    int           `json:"agent"`
	Token    string        `json:"token"`
	TTL      time.Duration `json:"ttl_ns"`
}

// releaseReq asks the shard to end a lease.
type releaseReq struct {
	token string
	reply chan bool
}

// tally is the live counter probe behind /metricz: per-agent grants
// and line assertions plus resolution counts. It is driven and read
// under the shard's Synchronized probe.
type tally struct {
	grants       []int64 // indexed by agent identity; [0] unused
	requests     []int64
	arbitrations int64
	repasses     int64
}

// OnEvent implements obs.Probe.
func (t *tally) OnEvent(e obs.Event) {
	switch e.Kind {
	case obs.RequestIssued:
		t.requests[e.Agent]++
	case obs.ServiceStart:
		t.grants[e.Agent]++
	case obs.ArbitrationResolve:
		t.arbitrations++
	case obs.Repass:
		t.repasses++
	}
}

// shard is one resource's arbitration loop and its seams.
type shard struct {
	cfg   ResourceConfig
	epoch time.Time

	acquireCh chan *acquireReq
	releaseCh chan releaseReq
	done      chan struct{} // closed by stop()
	stopped   chan struct{} // closed when loop() exits
	stopOnce  sync.Once

	// probe serializes the loop's emissions with /metricz reads of the
	// consumers behind it.
	probe   *obs.SynchronizedProbe
	metrics *obs.Metrics
	tally   *tally

	// Loop-owned state (no locking: single goroutine).
	sched       grant.Scheduler // owned by the loop goroutine
	waiters     [][]*acquireReq // owned by the loop goroutine; per-agent FIFO, index by identity
	nwait       int             // owned by the loop goroutine
	leaseToken  string          // owned by the loop goroutine; "" when the resource is free
	leaseAgent  int             // owned by the loop goroutine
	leaseExpiry time.Time       // owned by the loop goroutine
	tokenSeq    uint64          // owned by the loop goroutine
	repassSeen  int64           // owned by the loop goroutine
}

func newShard(rc ResourceConfig, sched grant.Scheduler, epoch time.Time, extra obs.Probe) *shard {
	s := &shard{
		cfg:       rc,
		epoch:     epoch,
		acquireCh: make(chan *acquireReq, 64),
		releaseCh: make(chan releaseReq, 16),
		done:      make(chan struct{}),
		stopped:   make(chan struct{}),
		sched:     sched,
		waiters:   make([][]*acquireReq, rc.Agents+1),
		metrics:   obs.NewMetrics(rc.MetricsWindow),
		tally: &tally{
			grants:   make([]int64, rc.Agents+1),
			requests: make([]int64, rc.Agents+1),
		},
	}
	sinks := obs.Multi{s.tally, s.metrics}
	if extra != nil {
		sinks = append(sinks, extra)
	}
	s.probe = obs.Synchronized(sinks)
	return s
}

// stop requests loop exit; idempotent.
func (s *shard) stop() { s.stopOnce.Do(func() { close(s.done) }) }

// now returns the event-time in seconds since the daemon epoch.
func (s *shard) now() float64 { return time.Since(s.epoch).Seconds() }

// emit forwards an event through the synchronized probe.
func (s *shard) emit(e obs.Event) { s.probe.OnEvent(e) }

// loop is the shard's single-goroutine bus cycle.
func (s *shard) loop() {
	defer close(s.stopped)
	ticker := time.NewTicker(s.cfg.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			s.drain()
			return
		case req := <-s.acquireCh:
			s.admit(req)
		case rel := <-s.releaseCh:
			rel.reply <- s.release(rel.token)
		case <-ticker.C:
			s.tick()
		}
	}
}

// drain answers every queued and in-channel acquire with 503 on
// shutdown.
func (s *shard) drain() {
	for {
		select {
		case req := <-s.acquireCh:
			req.reply <- acquireReply{err: &statusError{codeOverload, "arbd: shutting down"}}
			continue
		case rel := <-s.releaseCh:
			rel.reply <- false
			continue
		default:
		}
		break
	}
	for agent := 1; agent <= s.cfg.Agents; agent++ {
		for _, req := range s.waiters[agent] {
			req.reply <- acquireReply{err: &statusError{codeOverload, "arbd: shutting down"}}
		}
		s.waiters[agent] = nil
	}
	s.nwait = 0
}

// admit queues one acquire, asserting the agent's request line if it
// was idle. A full queue is backpressure: 503, try elsewhere or later.
func (s *shard) admit(req *acquireReq) {
	if s.nwait >= s.cfg.MaxQueue {
		req.reply <- acquireReply{err: &statusError{codeOverload, fmt.Sprintf(
			"arbd: resource %q queue full (%d waiters)", s.cfg.Name, s.nwait)}}
		return
	}
	s.waiters[req.agent] = append(s.waiters[req.agent], req)
	s.nwait++
	if s.sched.Enqueue(req.agent) {
		// The line was newly asserted: one outstanding request per
		// agent, exactly the paper's model. Further waiters queue
		// behind the line and re-assert it when the grant is consumed.
		s.emit(obs.Event{Time: s.now(), Kind: obs.RequestIssued, Agent: req.agent})
	}
}

// release frees the lease identified by token. Unknown or expired
// tokens report false.
func (s *shard) release(token string) bool {
	if token == "" || token != s.leaseToken {
		return false
	}
	s.endLease()
	return true
}

// endLease clears the current lease and emits its ServiceEnd.
func (s *shard) endLease() {
	s.emit(obs.Event{Time: s.now(), Kind: obs.ServiceEnd, Agent: s.leaseAgent})
	s.leaseToken = ""
	s.leaseAgent = 0
}

// tick is one bus cycle: expire the lease, drop dead waiters, and —
// when the resource is free — arbitrate among the asserted lines.
func (s *shard) tick() {
	now := time.Now()
	if s.leaseToken != "" && now.After(s.leaseExpiry) {
		// The holder never released: the lease lapses so a crashed
		// client cannot wedge the resource.
		s.endLease()
	}
	s.expireWaiters(now)
	if s.leaseToken != "" || s.sched.Pending() == 0 {
		return
	}
	w := s.sched.Resolve()
	if rp, ok := s.sched.(grant.Repasser); ok {
		for ; s.repassSeen < rp.Repasses(); s.repassSeen++ {
			s.emit(obs.Event{Time: s.now(), Kind: obs.Repass})
		}
	}
	if w == 0 {
		return
	}
	s.emit(obs.Event{Time: s.now(), Kind: obs.ArbitrationResolve, Agent: w})
	req := s.popWaiter(w, now)
	if req == nil {
		// The line was asserted but every waiter behind it died while
		// queued (deadline or abandoned context): the grant is
		// discarded, like a bus master that fails to assume mastership.
		return
	}
	s.grantLease(w, req, now)
	if len(s.waiters[w]) > 0 && s.sched.Enqueue(w) {
		// More clients share this identity: the line goes straight
		// back up for the next of them, which is when its wait starts
		// in the bus model.
		s.emit(obs.Event{Time: s.now(), Kind: obs.RequestIssued, Agent: w})
	}
}

// expireWaiters answers 408 to every queued waiter whose deadline
// passed or whose client went away.
func (s *shard) expireWaiters(now time.Time) {
	for agent := 1; agent <= s.cfg.Agents; agent++ {
		q := s.waiters[agent]
		if len(q) == 0 {
			continue
		}
		live := q[:0]
		for _, req := range q {
			if dead, code := waiterDead(req, now); dead {
				req.reply <- acquireReply{err: code}
				s.nwait--
			} else {
				live = append(live, req)
			}
		}
		s.waiters[agent] = live
		// A line asserted for waiters that all died stays asserted
		// until its next (discarded) grant — the arbiter has no
		// "deassert" message, matching the hardware model.
	}
}

// waiterDead reports whether req can no longer be granted, and why.
func waiterDead(req *acquireReq, now time.Time) (bool, *statusError) {
	select {
	case <-req.ctx.Done():
		return true, &statusError{codeDeadline, "arbd: client went away"}
	default:
	}
	if !req.deadline.IsZero() && now.After(req.deadline) {
		return true, &statusError{codeDeadline, "arbd: acquire deadline exceeded while queued"}
	}
	return false, nil
}

// popWaiter dequeues agent's oldest live waiter.
func (s *shard) popWaiter(agent int, now time.Time) *acquireReq {
	for len(s.waiters[agent]) > 0 {
		req := s.waiters[agent][0]
		s.waiters[agent] = s.waiters[agent][1:]
		s.nwait--
		if dead, code := waiterDead(req, now); dead {
			req.reply <- acquireReply{err: code}
			continue
		}
		return req
	}
	return nil
}

// grantLease installs the winner's lease and replies to its waiter.
func (s *shard) grantLease(agent int, req *acquireReq, now time.Time) {
	ttl := req.ttl
	if ttl <= 0 || ttl > s.cfg.TTL {
		ttl = s.cfg.TTL
	}
	s.tokenSeq++
	token := fmt.Sprintf("%s-%d-%d", s.cfg.Name, agent, s.tokenSeq)
	s.leaseToken = token
	s.leaseAgent = agent
	s.leaseExpiry = now.Add(ttl)
	s.emit(obs.Event{Time: s.now(), Kind: obs.ServiceStart, Agent: agent})
	req.reply <- acquireReply{lease: Lease{
		Resource: s.cfg.Name,
		Agent:    agent,
		Token:    token,
		TTL:      ttl,
	}}
}

// acquire submits one request to the shard and waits for its reply,
// the client's deadline, or shutdown. It is the transport-blind entry
// point behind Daemon.Acquire, so it owns the full parameter
// validation: a transport that never parses durations (the binary
// codec ships raw nanoseconds) still cannot smuggle a negative
// timeout or TTL past it into the shard defaults.
func (s *shard) acquire(ctx context.Context, agent int, timeout, ttl time.Duration) (Lease, *statusError) {
	if agent < 1 || agent > s.cfg.Agents {
		return Lease{}, &statusError{codeBadRequest, fmt.Sprintf(
			"arbd: agent %d out of range 1..%d for resource %q", agent, s.cfg.Agents, s.cfg.Name)}
	}
	if timeout < 0 {
		return Lease{}, &statusError{codeBadRequest, fmt.Sprintf(
			"arbd: negative timeout %v", timeout)}
	}
	if ttl < 0 {
		return Lease{}, &statusError{codeBadRequest, fmt.Sprintf(
			"arbd: negative ttl %v", ttl)}
	}
	req := &acquireReq{
		agent: agent,
		ttl:   ttl,
		ctx:   ctx,
		reply: make(chan acquireReply, 1),
	}
	if timeout > 0 {
		req.deadline = time.Now().Add(timeout)
	}
	select {
	case s.acquireCh <- req:
	case <-s.done:
		return Lease{}, &statusError{codeOverload, "arbd: shutting down"}
	case <-ctx.Done():
		return Lease{}, &statusError{codeDeadline, "arbd: client went away"}
	}
	// From here the shard replies on grant, deadline, abandonment, or
	// shutdown-drain. One race remains: the send above can buffer into
	// acquireCh just after the exiting loop's final drain, leaving the
	// request unowned — the stopped channel breaks the wait, with a
	// last non-blocking look in case the reply and the shutdown raced.
	select {
	case rep := <-req.reply:
		return rep.lease, rep.err
	case <-s.stopped:
		select {
		case rep := <-req.reply:
			return rep.lease, rep.err
		default:
			return Lease{}, &statusError{codeOverload, "arbd: shutting down"}
		}
	}
}

// Acquire is the transport-blind entry point both the HTTP handlers
// and the binary listener feed: block until agent is granted resource
// (nil error), the timeout passes while queued (408), ctx is
// abandoned (408), backpressure pushes back (503: full queue or
// shutdown), or the parameters are rejected (400 bad agent or
// negative durations, 404 unknown resource).
func (d *Daemon) Acquire(ctx context.Context, resource string, agent int, timeout, ttl time.Duration) (Lease, *statusError) {
	s, ok := d.shards[resource]
	if !ok {
		return Lease{}, &statusError{codeNotFound, fmt.Sprintf("arbd: unknown resource %q", resource)}
	}
	return s.acquire(ctx, agent, timeout, ttl)
}

// Release is Acquire's counterpart: it ends the lease identified by
// token, reporting 404 for an unknown resource or an unknown/expired
// token.
func (d *Daemon) Release(resource, token string) *statusError {
	s, ok := d.shards[resource]
	if !ok {
		return &statusError{codeNotFound, fmt.Sprintf("arbd: unknown resource %q", resource)}
	}
	if !s.releaseToken(token) {
		return &statusError{codeNotFound, "arbd: unknown or expired lease"}
	}
	return nil
}

// releaseToken submits a release and reports whether a live lease
// matched.
func (s *shard) releaseToken(token string) bool {
	rel := releaseReq{token: token, reply: make(chan bool, 1)}
	select {
	case s.releaseCh <- rel:
	case <-s.done:
		return false
	}
	select {
	case ok := <-rel.reply:
		return ok
	case <-s.stopped:
		select {
		case ok := <-rel.reply:
			return ok
		default:
			return false
		}
	}
}
