package arbd

import (
	"context"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"busarb/client"
)

// benchTick is finer than testTick: the benchmarks measure transport
// overhead around the grant cycle, so the cycle itself should be as
// short as stability allows.
const benchTick = 50 * time.Microsecond

// benchDaemon builds an uncontended single-agent daemon; each
// iteration's acquire is granted on the next tick.
func benchDaemon(b *testing.B) *Daemon {
	b.Helper()
	d, err := New(Config{Resources: []ResourceConfig{{
		Name: "bus", Agents: 1, Protocol: "RR1", Tick: benchTick,
	}}})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(d.Close)
	return d
}

// benchLoop runs acquire+release round trips through c.
func benchLoop(b *testing.B, c *client.Client) {
	b.Helper()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lease, err := c.Acquire(ctx, "bus", 1, client.AcquireOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Release(ctx, lease); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// BenchmarkBinaryAcquireRelease is the binary transport end to end: a
// real TCP socket, the codec on both sides, the transport-blind
// daemon entry points, one uncontended agent.
func BenchmarkBinaryAcquireRelease(b *testing.B) {
	d := benchDaemon(b)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	bs := NewBinaryServer(d)
	go bs.Serve(ln)
	defer bs.Close()

	c, err := client.Dial("tcp://" + ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	benchLoop(b, c)
}

// BenchmarkHTTPAcquireRelease is the same round trip over the HTTP
// transport, the binary benchmark's baseline.
func BenchmarkHTTPAcquireRelease(b *testing.B) {
	d := benchDaemon(b)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	c, err := client.Dial(srv.URL)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	benchLoop(b, c)
}
