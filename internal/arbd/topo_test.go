package arbd

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"busarb/internal/topo"
)

// treeRes returns a tree-arbitrated ResourceConfig with test-speed
// defaults.
func treeRes(t *testing.T, name, dims, protos string) ResourceConfig {
	t.Helper()
	spec, err := topo.ParseUniform(dims, protos)
	if err != nil {
		t.Fatal(err)
	}
	return ResourceConfig{Name: name, Topo: spec, Tick: testTick}
}

// TestTreeResource drives acquire/release against a hierarchical
// resource: agents in different clusters are granted in turn, the
// lease carries the right identity, and /metricz reports the composite
// protocol name.
func TestTreeResource(t *testing.T) {
	d, srv := newTestDaemon(t, treeRes(t, "bus", "4x2", "RR1/FCFS2"))

	// Agents 1 (cluster 0) and 6 (cluster 1) both win eventually.
	for _, agent := range []int{1, 6} {
		code, lease := httpAcquire(t, srv.URL, "bus", agent, "")
		if code != http.StatusOK {
			t.Fatalf("agent %d acquire status %d, want 200", agent, code)
		}
		if lease.Agent != agent || lease.Resource != "bus" {
			t.Fatalf("bad lease %+v", lease)
		}
		if code := httpRelease(t, srv.URL, "bus", lease.Token); code != http.StatusOK {
			t.Fatalf("release status %d, want 200", code)
		}
	}

	// The daemon-level identity range comes from the tree's total.
	if _, serr := d.Acquire(context.Background(), "bus", 9, time.Second, 0); serr == nil || serr.code != codeBadRequest {
		t.Fatalf("agent beyond tree total = %v, want 400", serr)
	}

	resp, err := http.Get(srv.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Resources map[string]ResourceMetrics `json:"resources"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	bus := m.Resources["bus"]
	if bus.Protocol != "FCFS2(2xRR1:4)" {
		t.Errorf("metricz protocol = %q, want the composite tree name", bus.Protocol)
	}
	if len(bus.Agents) != 8 {
		t.Errorf("metricz agents = %d, want 8", len(bus.Agents))
	}
}

// TestTreeContention runs concurrent acquires across clusters and
// checks everyone is eventually granted exactly once.
func TestTreeContention(t *testing.T) {
	d, _ := newTestDaemon(t, treeRes(t, "bus", "2x3", "RR3/RR1"))
	const n = 6
	granted := make(chan int, n)
	for agent := 1; agent <= n; agent++ {
		agent := agent
		go func() {
			lease, serr := d.Acquire(context.Background(), "bus", agent, 5*time.Second, 0)
			if serr != nil {
				t.Errorf("agent %d: %v", agent, serr)
				granted <- 0
				return
			}
			granted <- lease.Agent
			d.Release("bus", lease.Token)
		}()
	}
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		select {
		case a := <-granted:
			if seen[a] {
				t.Errorf("agent %d granted twice", a)
			}
			seen[a] = true
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for grants")
		}
	}
	for agent := 1; agent <= n; agent++ {
		if !seen[agent] {
			t.Errorf("agent %d never granted", agent)
		}
	}
}

// TestTreeResourceValidate pins the config errors for tree resources.
func TestTreeResourceValidate(t *testing.T) {
	leaf := &topo.Spec{Protocol: "RR1", Agents: 4}
	tree := &topo.Spec{Protocol: "FCFS2", Children: []topo.Spec{
		{Protocol: "RR1", Agents: 4}, {Protocol: "RR1", Agents: 4}}}
	cases := []struct {
		name string
		rc   ResourceConfig
		want string
	}{
		{"both", ResourceConfig{Name: "r", Protocol: "RR1", Topo: leaf}, "not both"},
		{"agents mismatch", ResourceConfig{Name: "r", Agents: 5, Topo: tree}, "does not match"},
		{"bad proto", ResourceConfig{Name: "r",
			Topo: &topo.Spec{Protocol: "RR2", Agents: 4}}, "unknown protocol"},
		{"malformed tree", ResourceConfig{Name: "r",
			Topo: &topo.Spec{Protocol: "FCFS2", Children: []topo.Spec{
				{Protocol: "RR1", Agents: 4}}}}, "at least 2 children"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := Config{Resources: []ResourceConfig{c.rc}}.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("Validate = %v, want error containing %q", err, c.want)
			}
		})
	}
	// Agents may be left 0 (filled from the tree) or given exactly.
	for _, agents := range []int{0, 8} {
		rc := ResourceConfig{Name: "r", Agents: agents, Topo: tree}
		if err := (Config{Resources: []ResourceConfig{rc}}).Validate(); err != nil {
			t.Errorf("Agents=%d: Validate = %v, want ok", agents, err)
		}
	}
}
