package arbd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"busarb/client"
	"busarb/internal/dist"
	"busarb/internal/rng"
)

// This file is the closed-loop load generator behind cmd/arbload: the
// paper's §4.1 workload pointed at a live daemon. Each agent is one
// client goroutine with a single outstanding request: think for a
// sampled interrequest time, acquire, hold, release, repeat, for a
// fixed per-agent request budget. The report mirrors Table 4.1 over a
// socket: per-agent grant throughput, the bandwidth ratio t_N/t_1
// (worst-served over best-served agent), and acquire-wait quantiles.
//
// All traffic goes through the public busarb/client package — the
// generator issues no hand-rolled requests — so the Target's scheme
// selects the transport: "http://host:port" drives the JSON surface,
// "tcp://host:port" the binary protocol, where every agent in the run
// multiplexes over one persistent connection. (The generator lives in
// internal/arbd rather than cmd/arbload so the CLIs stay free of
// wall-clock reads — the determinism analyzer binds cmd/.)

// LoadConfig describes one load run.
type LoadConfig struct {
	// Target locates the daemon and selects the transport by scheme:
	// "http://127.0.0.1:8321" (HTTP) or "tcp://127.0.0.1:8322"
	// (binary).
	Target string
	// Targets, when set, lists several daemon targets instead of
	// Target: the generator connects with client.DialCluster, so the
	// run drives an arbd cluster with owner-aware routing. A single
	// entry still goes through DialCluster (useful to exercise the
	// topology-learning path against one node).
	Targets []string
	// Resource names the arbitrated resource to pound on.
	Resource string
	// Resources, when set, spreads the agents round-robin over several
	// resources instead of Resource: agent i drives
	// Resources[(i-1)%R] under per-resource identity (i-1)/R+1, so
	// each resource sees a dense 1..ceil(N/R) identity range.
	Resources []string
	// Agents is the number of closed-loop clients (identities 1..Agents).
	Agents int
	// Requests is each agent's grant budget.
	Requests int
	// ThinkMean and ThinkCV shape the interrequest-time distribution
	// (§4.1): mean seconds between release and the next acquire, with
	// the given coefficient of variation. ThinkMean 0 is saturation.
	ThinkMean float64
	ThinkCV   float64
	// Hold is how long each lease is held before release.
	Hold time.Duration
	// Timeout bounds each acquire; 0 means no client timeout.
	Timeout time.Duration
	// Seed selects the think-time random streams.
	Seed uint64
}

// targetList resolves the effective targets: Targets when set, else
// the single Target.
func (cfg LoadConfig) targetList() []string {
	if len(cfg.Targets) > 0 {
		return cfg.Targets
	}
	return []string{cfg.Target}
}

// resourceList resolves the effective resources: Resources when set,
// else the single Resource.
func (cfg LoadConfig) resourceList() []string {
	if len(cfg.Resources) > 0 {
		return cfg.Resources
	}
	return []string{cfg.Resource}
}

// Validate checks the configuration; RunLoad returns exactly these
// errors before touching the network.
func (cfg LoadConfig) Validate() error {
	if cfg.Target == "" && len(cfg.Targets) == 0 {
		return fmt.Errorf("arbload: target required")
	}
	for _, target := range cfg.Targets {
		if target == "" {
			return fmt.Errorf("arbload: empty target in list")
		}
	}
	if cfg.Resource == "" && len(cfg.Resources) == 0 {
		return fmt.Errorf("arbload: resource name required")
	}
	for _, r := range cfg.Resources {
		if r == "" {
			return fmt.Errorf("arbload: empty resource name in list")
		}
	}
	if cfg.Agents < 1 {
		return fmt.Errorf("arbload: need at least 1 agent, got %d", cfg.Agents)
	}
	if cfg.Requests < 1 {
		return fmt.Errorf("arbload: need at least 1 request per agent, got %d", cfg.Requests)
	}
	if cfg.ThinkMean < 0 || cfg.ThinkCV < 0 {
		return fmt.Errorf("arbload: negative think mean or CV")
	}
	if cfg.Hold < 0 || cfg.Timeout < 0 {
		return fmt.Errorf("arbload: negative hold or timeout")
	}
	return nil
}

// AgentLoad is one agent's measurements.
type AgentLoad struct {
	// Resource is the resource this agent drove (the round-robin
	// assignment when LoadConfig.Resources is set).
	Resource string
	// Identity is the arbitrating identity the agent used on its
	// resource (dense 1..ceil(N/R) per resource).
	Identity int
	// Grants is the number of leases obtained (== the budget unless
	// acquires timed out).
	Grants int64
	// Timeouts counts deadline answers (the daemon's 408).
	Timeouts int64
	// Elapsed is the agent's wall time from first acquire to last
	// release.
	Elapsed time.Duration
	// Throughput is Grants per second of Elapsed.
	Throughput float64
	// WaitP50, WaitP90, WaitMax summarize the acquire latencies.
	WaitP50 time.Duration
	WaitP90 time.Duration
	WaitMax time.Duration
}

// LoadReport is the run's result.
type LoadReport struct {
	Agents  []AgentLoad // indexed by identity-1
	Elapsed time.Duration
	// BandwidthRatio is the networked Table 4.1 figure: the
	// worst-served agent's throughput over the best-served agent's
	// (t_N/t_1). Near 1.0 means the protocol shared the resource
	// evenly; well below 1.0 means somebody starved.
	BandwidthRatio float64
	// WaitP50, WaitP90, WaitMax pool every agent's acquire latencies.
	WaitP50 time.Duration
	WaitP90 time.Duration
	WaitMax time.Duration
}

// RunLoad drives the workload against a live daemon and reports. An
// unreachable daemon or a non-grant answer other than the deadline
// backpressure (client.ErrDeadline) fails the run.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var c *client.Client
	var err error
	if targets := cfg.targetList(); len(cfg.Targets) > 0 {
		c, err = client.DialCluster(targets)
	} else {
		c, err = client.Dial(targets[0])
	}
	if err != nil {
		return nil, fmt.Errorf("arbload: %w", err)
	}
	defer c.Close()
	resources := cfg.resourceList()

	type agentResult struct {
		agent AgentLoad
		waits []time.Duration
		err   error
	}
	results := make([]agentResult, cfg.Agents)
	master := rng.New(cfg.Seed)
	srcs := make([]*rng.Source, cfg.Agents)
	for i := range srcs {
		srcs[i] = master.Split()
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	start := time.Now()
	for id := 1; id <= cfg.Agents; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			res := &results[id-1]
			// Round-robin assignment over the resource list: dense
			// per-resource identities keep each shard's protocol seeing
			// agents 1..ceil(N/R), the shape the fairness figures assume.
			resource := resources[(id-1)%len(resources)]
			identity := (id-1)/len(resources) + 1
			res.agent.Resource = resource
			res.agent.Identity = identity
			var think dist.Sampler
			if cfg.ThinkMean > 0 {
				think = dist.ByCV(cfg.ThinkMean, cfg.ThinkCV)
			}
			src := srcs[id-1]
			agentStart := time.Now()
			for r := 0; r < cfg.Requests; r++ {
				if think != nil {
					time.Sleep(time.Duration(think.Sample(src) * float64(time.Second)))
				}
				t0 := time.Now()
				lease, err := c.Acquire(ctx, resource, identity,
					client.AcquireOptions{Timeout: cfg.Timeout})
				if errors.Is(err, client.ErrDeadline) {
					res.agent.Timeouts++
					continue
				}
				if err != nil {
					res.err = fmt.Errorf("arbload: acquire: %w", err)
					return
				}
				res.waits = append(res.waits, time.Since(t0))
				res.agent.Grants++
				if cfg.Hold > 0 {
					time.Sleep(cfg.Hold)
				}
				if err := c.Release(ctx, lease); err != nil {
					res.err = fmt.Errorf("arbload: release: %w", err)
					return
				}
			}
			res.agent.Elapsed = time.Since(agentStart)
		}(id)
	}
	wg.Wait()

	rep := &LoadReport{Agents: make([]AgentLoad, cfg.Agents), Elapsed: time.Since(start)}
	var pooled []time.Duration
	minTP, maxTP := 0.0, 0.0
	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
		a := results[i].agent
		if a.Elapsed > 0 {
			a.Throughput = float64(a.Grants) / a.Elapsed.Seconds()
		}
		a.WaitP50 = durQuantile(results[i].waits, 0.50)
		a.WaitP90 = durQuantile(results[i].waits, 0.90)
		a.WaitMax = durQuantile(results[i].waits, 1.0)
		rep.Agents[i] = a
		pooled = append(pooled, results[i].waits...)
		if i == 0 || a.Throughput < minTP {
			minTP = a.Throughput
		}
		if i == 0 || a.Throughput > maxTP {
			maxTP = a.Throughput
		}
	}
	if maxTP > 0 {
		rep.BandwidthRatio = minTP / maxTP
	}
	rep.WaitP50 = durQuantile(pooled, 0.50)
	rep.WaitP90 = durQuantile(pooled, 0.90)
	rep.WaitMax = durQuantile(pooled, 1.0)
	return rep, nil
}

// durQuantile returns the q-quantile (nearest-rank) of the samples.
func durQuantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// WriteReport renders the report as the arbload CLI's output.
func (r *LoadReport) WriteReport(w io.Writer, cfg LoadConfig) error {
	resources := cfg.resourceList()
	targets := cfg.targetList()
	via := targetScheme(targets[0])
	if len(targets) > 1 {
		via = fmt.Sprintf("cluster of %d", len(targets))
	}
	if _, err := fmt.Fprintf(w, "arbload: %d agents x %d requests on %q via %s (%.2fs)\n",
		cfg.Agents, cfg.Requests, strings.Join(resources, ","), via, r.Elapsed.Seconds()); err != nil {
		return err
	}
	multi := len(resources) > 1
	if multi {
		if _, err := fmt.Fprintf(w, "  %5s %12s %8s %9s %11s %10s %10s %10s\n",
			"agent", "resource", "grants", "timeouts", "grants/s", "Wp50", "Wp90", "Wmax"); err != nil {
			return err
		}
	} else if _, err := fmt.Fprintf(w, "  %5s %8s %9s %11s %10s %10s %10s\n",
		"agent", "grants", "timeouts", "grants/s", "Wp50", "Wp90", "Wmax"); err != nil {
		return err
	}
	for i, a := range r.Agents {
		var err error
		if multi {
			_, err = fmt.Fprintf(w, "  %5d %12s %8d %9d %11.2f %10s %10s %10s\n",
				a.Identity, a.Resource, a.Grants, a.Timeouts, a.Throughput,
				a.WaitP50.Round(time.Microsecond), a.WaitP90.Round(time.Microsecond),
				a.WaitMax.Round(time.Microsecond))
		} else {
			_, err = fmt.Fprintf(w, "  %5d %8d %9d %11.2f %10s %10s %10s\n",
				i+1, a.Grants, a.Timeouts, a.Throughput,
				a.WaitP50.Round(time.Microsecond), a.WaitP90.Round(time.Microsecond),
				a.WaitMax.Round(time.Microsecond))
		}
		if err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "bandwidth ratio t_N/t_1 = %.3f (1.0 is perfectly fair); pooled Wp50=%s Wp90=%s Wmax=%s\n",
		r.BandwidthRatio, r.WaitP50.Round(time.Microsecond),
		r.WaitP90.Round(time.Microsecond), r.WaitMax.Round(time.Microsecond))
	return err
}

// targetScheme names the transport a target selects, for the report
// header.
func targetScheme(target string) string {
	if i := strings.Index(target, "://"); i > 0 {
		return target[:i]
	}
	return "?"
}
