// Package codec is arbd's binary wire protocol: length-prefixed
// request/grant/release frames over persistent connections, the
// compact alternative to the daemon's JSON-over-HTTP surface. The
// paper's protocols resolve in a handful of wired-OR bus cycles and
// the bit-parallel kernel resolves a grant in tens of nanoseconds;
// this codec keeps the signalling path in the same spirit — a frame
// is a few dozen bytes, encode and decode are allocation-free, and
// one TCP connection multiplexes any number of logical agents through
// correlation IDs.
//
// Frame layout (all integers big-endian):
//
//	+--------+---------+------+-------+------+------------+
//	| length | version | type | flags | corr |    body    |
//	|   u32  |   u8    |  u8  |  u16  | u64  |  type-dep. |
//	+--------+---------+------+-------+------+------------+
//
// length counts every byte after the length field itself (version
// through body, so at least HeaderLen). corr is the caller-chosen
// correlation ID echoed verbatim on the response frame; it is what
// lets many in-flight acquires share one connection. flags bit 0
// (FlagRouted) reserves room for a clustering routing header: when
// set, the body is prefixed by a u16-length opaque route field that
// v1 endpoints carry through untouched — the seam a multi-shard
// forwarding layer will use without a version bump.
//
// Body layouts by type (variable fields are u16 length + bytes):
//
//	Acquire:  agent u32, timeout_ns i64, ttl_ns i64, resource
//	Grant:    agent u32, ttl_ns i64, resource, token
//	Release:  resource, token
//	Released: resource
//	Error:    code u16, message
//
// Error codes reuse the daemon's HTTP statuses (see docs/WIRE.md):
// 400 bad request, 404 unknown resource or lease, 408 deadline
// exceeded, 503 overload or shutdown.
//
// Decode aliases the input buffer for the variable-length fields
// (Resource, Token, Msg, Route): zero copies, zero allocations, valid
// until the buffer is reused. Callers that keep a field across frames
// must copy it. The package is inside arblint's determinism scope: no
// wall clock, no global randomness — a frame encodes the same bytes
// every time.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Type discriminates frames.
type Type uint8

// The frame types. Acquire and Release travel client→server; Grant,
// Released and Error travel server→client, echoing the request's
// correlation ID.
const (
	TInvalid  Type = 0
	TAcquire  Type = 1
	TGrant    Type = 2
	TRelease  Type = 3
	TReleased Type = 4
	TError    Type = 5
)

// String names the type for diagnostics.
//
//arblint:alloc Stringer for logs and tests, never on the frame path
func (t Type) String() string {
	switch t {
	case TAcquire:
		return "Acquire"
	case TGrant:
		return "Grant"
	case TRelease:
		return "Release"
	case TReleased:
		return "Released"
	case TError:
		return "Error"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Version is the only wire version this package speaks. Decoders
// reject other versions rather than guessing at layouts.
const Version = 1

// FlagRouted marks a frame whose body is prefixed by an opaque
// routing header (u16 length + bytes), reserved for the multi-shard
// forwarding layer. v1 endpoints decode it into Frame.Route and must
// echo it untouched when forwarding.
const FlagRouted uint16 = 1 << 0

// HeaderLen is the fixed post-length header: version, type, flags,
// correlation ID.
const HeaderLen = 1 + 1 + 2 + 8

// MaxPayload bounds the post-length payload a conforming endpoint
// will encode or accept: frames are control messages, not data
// transfers, and the bound keeps a malformed or hostile length prefix
// from ballooning a read buffer.
const MaxPayload = 4096

// MaxFrame is the largest whole frame on the wire.
const MaxFrame = 4 + MaxPayload

// The decode errors. They are predeclared so the fast path allocates
// nothing.
var (
	// ErrShort reports a buffer that ends mid-frame; stream readers
	// treat it as "need more bytes".
	ErrShort = errors.New("codec: truncated frame")
	// ErrVersion reports a frame from a different protocol version.
	ErrVersion = errors.New("codec: unsupported version")
	// ErrType reports an unknown frame type.
	ErrType = errors.New("codec: unknown frame type")
	// ErrTooLong reports a length prefix over MaxPayload, or an encode
	// whose variable fields would exceed it.
	ErrTooLong = errors.New("codec: frame exceeds MaxPayload")
	// ErrMalformed reports a body that does not parse under its type's
	// layout (bad field lengths, trailing bytes).
	ErrMalformed = errors.New("codec: malformed frame body")
)

// Frame is one decoded (or to-be-encoded) protocol message. Which
// fields are meaningful depends on Type; the rest are ignored by
// Append and zeroed by Decode. The byte-slice fields alias the decode
// buffer — see the package comment.
type Frame struct {
	Type  Type
	Flags uint16
	// Corr is the correlation ID: chosen by the requester, echoed by
	// the responder.
	Corr uint64
	// Agent is the arbitrating identity (Acquire, Grant).
	Agent uint32
	// TimeoutNS bounds the acquire's queue wait in nanoseconds
	// (Acquire; 0 means wait indefinitely).
	TimeoutNS int64
	// TTLNS is the lease lifetime in nanoseconds (Acquire: requested,
	// 0 for the resource default; Grant: granted).
	TTLNS int64
	// Code is the error status (Error): the daemon's HTTP-taxonomy
	// codes 400/404/408/503.
	Code uint16
	// Resource names the arbitrated resource (Acquire, Grant, Release,
	// Released).
	Resource []byte
	// Token identifies a lease (Grant, Release).
	Token []byte
	// Msg is the human-readable error text (Error).
	Msg []byte
	// Route is the opaque routing header present iff Flags&FlagRouted
	// is set, carried through by v1 endpoints.
	Route []byte
}

// Append encodes f onto dst and returns the extended slice. It is the
// allocation-free fast path: with sufficient capacity in dst it does
// not allocate. Oversized variable fields report ErrTooLong; an
// unencodable Type reports ErrType.
func Append(dst []byte, f *Frame) ([]byte, error) {
	payload := HeaderLen
	if f.Flags&FlagRouted != 0 {
		payload += 2 + len(f.Route)
	}
	switch f.Type {
	case TAcquire:
		payload += 4 + 8 + 8 + 2 + len(f.Resource)
	case TGrant:
		payload += 4 + 8 + 2 + len(f.Resource) + 2 + len(f.Token)
	case TRelease:
		payload += 2 + len(f.Resource) + 2 + len(f.Token)
	case TReleased:
		payload += 2 + len(f.Resource)
	case TError:
		payload += 2 + 2 + len(f.Msg)
	default:
		return dst, ErrType
	}
	if payload > MaxPayload ||
		len(f.Resource) > maxField || len(f.Token) > maxField ||
		len(f.Msg) > maxField || len(f.Route) > maxField {
		return dst, ErrTooLong
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(payload))
	dst = append(dst, Version, byte(f.Type))
	dst = binary.BigEndian.AppendUint16(dst, f.Flags)
	dst = binary.BigEndian.AppendUint64(dst, f.Corr)
	if f.Flags&FlagRouted != 0 {
		dst = appendField(dst, f.Route)
	}
	switch f.Type {
	case TAcquire:
		dst = binary.BigEndian.AppendUint32(dst, f.Agent)
		dst = binary.BigEndian.AppendUint64(dst, uint64(f.TimeoutNS))
		dst = binary.BigEndian.AppendUint64(dst, uint64(f.TTLNS))
		dst = appendField(dst, f.Resource)
	case TGrant:
		dst = binary.BigEndian.AppendUint32(dst, f.Agent)
		dst = binary.BigEndian.AppendUint64(dst, uint64(f.TTLNS))
		dst = appendField(dst, f.Resource)
		dst = appendField(dst, f.Token)
	case TRelease:
		dst = appendField(dst, f.Resource)
		dst = appendField(dst, f.Token)
	case TReleased:
		dst = appendField(dst, f.Resource)
	case TError:
		dst = binary.BigEndian.AppendUint16(dst, f.Code)
		dst = appendField(dst, f.Msg)
	}
	return dst, nil
}

// maxField bounds each variable-length field (u16 length on the wire,
// but MaxPayload governs first).
const maxField = MaxPayload - HeaderLen - 2

func appendField(dst, field []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(field)))
	return append(dst, field...)
}

// Decode parses the first frame in buf into f, returning the number
// of bytes consumed. f's byte-slice fields alias buf. A buffer ending
// mid-frame reports ErrShort with n == 0, as does an oversized or
// undersized length prefix (the stream cannot be trusted past it);
// payload-level errors consume the advertised frame so a caller could
// resynchronize, though in practice endpoints drop the connection on
// any decode error.
func Decode(buf []byte, f *Frame) (n int, err error) {
	if len(buf) < 4 {
		return 0, ErrShort
	}
	payload := int(binary.BigEndian.Uint32(buf))
	if payload > MaxPayload {
		return 0, ErrTooLong
	}
	if payload < HeaderLen {
		return 0, ErrMalformed
	}
	if len(buf) < 4+payload {
		return 0, ErrShort
	}
	n = 4 + payload
	if err := decodePayload(buf[4:n], f); err != nil {
		return n, err
	}
	return n, nil
}

// decodePayload parses one frame's post-length payload (version
// through body) into f.
func decodePayload(b []byte, f *Frame) error {
	*f = Frame{}
	if len(b) < HeaderLen {
		return ErrMalformed
	}
	if b[0] != Version {
		return ErrVersion
	}
	f.Type = Type(b[1])
	f.Flags = binary.BigEndian.Uint16(b[2:4])
	f.Corr = binary.BigEndian.Uint64(b[4:12])
	b = b[HeaderLen:]
	var ok bool
	if f.Flags&FlagRouted != 0 {
		if f.Route, b, ok = cutField(b); !ok {
			return ErrMalformed
		}
	}
	switch f.Type {
	case TAcquire:
		if len(b) < 4+8+8 {
			return ErrMalformed
		}
		f.Agent = binary.BigEndian.Uint32(b)
		f.TimeoutNS = int64(binary.BigEndian.Uint64(b[4:]))
		f.TTLNS = int64(binary.BigEndian.Uint64(b[12:]))
		b = b[20:]
		if f.Resource, b, ok = cutField(b); !ok {
			return ErrMalformed
		}
	case TGrant:
		if len(b) < 4+8 {
			return ErrMalformed
		}
		f.Agent = binary.BigEndian.Uint32(b)
		f.TTLNS = int64(binary.BigEndian.Uint64(b[4:]))
		b = b[12:]
		if f.Resource, b, ok = cutField(b); !ok {
			return ErrMalformed
		}
		if f.Token, b, ok = cutField(b); !ok {
			return ErrMalformed
		}
	case TRelease:
		if f.Resource, b, ok = cutField(b); !ok {
			return ErrMalformed
		}
		if f.Token, b, ok = cutField(b); !ok {
			return ErrMalformed
		}
	case TReleased:
		if f.Resource, b, ok = cutField(b); !ok {
			return ErrMalformed
		}
	case TError:
		if len(b) < 2 {
			return ErrMalformed
		}
		f.Code = binary.BigEndian.Uint16(b)
		b = b[2:]
		if f.Msg, b, ok = cutField(b); !ok {
			return ErrMalformed
		}
	default:
		return ErrType
	}
	if len(b) != 0 {
		return ErrMalformed
	}
	return nil
}

// cutField splits a u16-length-prefixed field off the front of b.
func cutField(b []byte) (field, rest []byte, ok bool) {
	if len(b) < 2 {
		return nil, b, false
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+n {
		return nil, b, false
	}
	return b[2 : 2+n], b[2+n:], true
}

// Reader decodes a frame stream from an io.Reader, reusing one
// internal buffer: after the first few frames, Next allocates
// nothing. The Frame fields it fills alias that buffer and are valid
// only until the next Next call.
type Reader struct {
	r   io.Reader
	buf []byte
	len [4]byte
}

// NewReader wraps r.
//
//arblint:alloc constructor: one Reader per connection, at setup
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next reads exactly one frame into f. io.EOF at a frame boundary is
// returned as io.EOF; a stream ending mid-frame is
// io.ErrUnexpectedEOF.
func (r *Reader) Next(f *Frame) error {
	if _, err := io.ReadFull(r.r, r.len[:]); err != nil {
		return err
	}
	payload := int(binary.BigEndian.Uint32(r.len[:]))
	if payload > MaxPayload {
		return ErrTooLong
	}
	if payload < HeaderLen {
		return ErrMalformed
	}
	if cap(r.buf) < payload {
		r.buf = make([]byte, payload) //arblint:alloc amortized growth: steady state reuses the buffer
	}
	r.buf = r.buf[:payload]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	return decodePayload(r.buf, f)
}

// Writer encodes frames onto an io.Writer through one reused buffer:
// after the first few frames, WriteFrame's encode path allocates
// nothing. It does no locking; callers serialize.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter wraps w.
//
//arblint:alloc constructor: one Writer per connection, at setup
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteFrame encodes f and writes it as one Write call.
func (w *Writer) WriteFrame(f *Frame) error {
	b, err := Append(w.buf[:0], f)
	if err != nil {
		return err
	}
	w.buf = b
	_, err = w.w.Write(b)
	return err
}
