package codec

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// sampleFrames covers every type, with and without the routing
// header, plus edge values (zero and maximal integers, empty fields).
func sampleFrames() []Frame {
	return []Frame{
		{Type: TAcquire, Corr: 1, Agent: 7, TimeoutNS: 2_000_000_000, TTLNS: 5_000_000_000,
			Resource: []byte("bus")},
		{Type: TAcquire, Corr: ^uint64(0), Agent: ^uint32(0), TimeoutNS: -1, TTLNS: -1,
			Resource: []byte("")},
		{Type: TGrant, Corr: 42, Agent: 3, TTLNS: 30_000_000_000,
			Resource: []byte("bus"), Token: []byte("bus-3-17")},
		{Type: TRelease, Corr: 43, Resource: []byte("disk"), Token: []byte("disk-1-2")},
		{Type: TReleased, Corr: 43, Resource: []byte("disk")},
		{Type: TError, Corr: 44, Code: 503, Msg: []byte("arbd: queue full")},
		{Type: TError, Corr: 0, Code: 0, Msg: nil},
		{Type: TGrant, Corr: 9, Agent: 1, Flags: FlagRouted, Route: []byte{0xde, 0xad},
			Resource: []byte("bus"), Token: []byte("t")},
	}
}

// canon normalizes a frame for comparison: nil and empty byte fields
// are the same wire bytes.
func canon(f Frame) Frame {
	norm := func(b []byte) []byte {
		if len(b) == 0 {
			return nil
		}
		return b
	}
	f.Resource = norm(f.Resource)
	f.Token = norm(f.Token)
	f.Msg = norm(f.Msg)
	f.Route = norm(f.Route)
	return f
}

func framesEqual(a, b Frame) bool {
	a, b = canon(a), canon(b)
	return a.Type == b.Type && a.Flags == b.Flags && a.Corr == b.Corr &&
		a.Agent == b.Agent && a.TimeoutNS == b.TimeoutNS && a.TTLNS == b.TTLNS &&
		a.Code == b.Code &&
		bytes.Equal(a.Resource, b.Resource) && bytes.Equal(a.Token, b.Token) &&
		bytes.Equal(a.Msg, b.Msg) && bytes.Equal(a.Route, b.Route)
}

func TestRoundTrip(t *testing.T) {
	for _, in := range sampleFrames() {
		buf, err := Append(nil, &in)
		if err != nil {
			t.Fatalf("Append(%v): %v", in.Type, err)
		}
		var out Frame
		n, err := Decode(buf, &out)
		if err != nil {
			t.Fatalf("Decode(%v): %v", in.Type, err)
		}
		if n != len(buf) {
			t.Errorf("%v: Decode consumed %d of %d bytes", in.Type, n, len(buf))
		}
		if !framesEqual(in, out) {
			t.Errorf("%v round trip:\n in  %+v\n out %+v", in.Type, in, out)
		}
	}
}

// TestStreamRoundTrip pushes every sample frame through one
// Writer/Reader pair back to back, the way a connection does.
func TestStreamRoundTrip(t *testing.T) {
	frames := sampleFrames()
	var wire bytes.Buffer
	w := NewWriter(&wire)
	for i := range frames {
		if err := w.WriteFrame(&frames[i]); err != nil {
			t.Fatalf("WriteFrame %d: %v", i, err)
		}
	}
	r := NewReader(&wire)
	var f Frame
	for i := range frames {
		if err := r.Next(&f); err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if !framesEqual(frames[i], f) {
			t.Errorf("frame %d:\n in  %+v\n out %+v", i, frames[i], f)
		}
	}
	if err := r.Next(&f); err != io.EOF {
		t.Errorf("Next past end = %v, want io.EOF", err)
	}
}

// TestDecodeErrors pins the error taxonomy for malformed input.
func TestDecodeErrors(t *testing.T) {
	good, err := Append(nil, &Frame{Type: TAcquire, Corr: 1, Agent: 2, Resource: []byte("bus")})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mut(b)
		return b
	}
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrShort},
		{"short length", good[:3], ErrShort},
		{"mid-frame", good[:len(good)-1], ErrShort},
		{"payload under header", corrupt(func(b []byte) { binary.BigEndian.PutUint32(b, HeaderLen-1) }), ErrMalformed},
		{"payload over cap", corrupt(func(b []byte) { binary.BigEndian.PutUint32(b, MaxPayload+1) }), ErrTooLong},
		{"bad version", corrupt(func(b []byte) { b[4] = 99 }), ErrVersion},
		{"unknown type", corrupt(func(b []byte) { b[5] = 200 }), ErrType},
		{"field length past body", corrupt(func(b []byte) {
			// The resource length field sits after the 20-byte acquire
			// integers; point it past the end of the body.
			binary.BigEndian.PutUint16(b[4+HeaderLen+20:], 9999)
		}), ErrMalformed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var f Frame
			if _, err := Decode(tc.buf, &f); err != tc.want {
				t.Errorf("Decode = %v, want %v", err, tc.want)
			}
		})
	}

	// Trailing bytes after a well-formed body are malformed, not
	// silently ignored.
	long := append([]byte(nil), good...)
	long = append(long, 0xFF)
	binary.BigEndian.PutUint32(long, uint32(len(long)-4))
	var f Frame
	if _, err := Decode(long, &f); err != ErrMalformed {
		t.Errorf("trailing bytes: Decode = %v, want ErrMalformed", err)
	}
}

func TestAppendErrors(t *testing.T) {
	if _, err := Append(nil, &Frame{Type: TInvalid}); err != ErrType {
		t.Errorf("Append(TInvalid) = %v, want ErrType", err)
	}
	huge := make([]byte, MaxPayload)
	if _, err := Append(nil, &Frame{Type: TRelease, Resource: huge, Token: []byte("t")}); err != ErrTooLong {
		t.Errorf("oversized field: Append = %v, want ErrTooLong", err)
	}
}

// TestReaderRejectsHostileLength pins that a hostile length prefix
// cannot balloon the read buffer: the reader fails before reading the
// body.
func TestReaderRejectsHostileLength(t *testing.T) {
	var wire bytes.Buffer
	binary.Write(&wire, binary.BigEndian, uint32(1<<30))
	r := NewReader(&wire)
	var f Frame
	if err := r.Next(&f); err != ErrTooLong {
		t.Errorf("Next = %v, want ErrTooLong", err)
	}
}

// TestEncodeDecodeZeroAlloc pins the fast path's allocation-free
// contract (the reason the codec exists): encoding into a warm buffer
// and decoding in place are both 0 allocs/op, and so are the stream
// Reader and Writer after their buffers warm up. arblint's
// determinism scope covers this package; this test covers its other
// half of the zero-alloc wire-path invariant.
func TestEncodeDecodeZeroAlloc(t *testing.T) {
	in := Frame{Type: TAcquire, Corr: 7, Agent: 3, TimeoutNS: 1e9, TTLNS: 5e9,
		Resource: []byte("bus")}
	buf := make([]byte, 0, MaxFrame)
	if allocs := testing.AllocsPerRun(100, func() {
		b, err := Append(buf[:0], &in)
		if err != nil || len(b) == 0 {
			t.Fatal("append failed")
		}
	}); allocs != 0 {
		t.Errorf("Append allocates %.1f times per frame, want 0", allocs)
	}

	wire, err := Append(nil, &in)
	if err != nil {
		t.Fatal(err)
	}
	var out Frame
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := Decode(wire, &out); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Decode allocates %.1f times per frame, want 0", allocs)
	}

	// Stream pair over a pre-grown pipe buffer.
	var conn bytes.Buffer
	w, r := NewWriter(&conn), NewReader(&conn)
	if err := w.WriteFrame(&in); err != nil { // warm both buffers
		t.Fatal(err)
	}
	if err := r.Next(&out); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := w.WriteFrame(&in); err != nil {
			t.Fatal(err)
		}
		if err := r.Next(&out); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Writer+Reader allocate %.1f times per frame, want 0", allocs)
	}
}
