package codec

import "encoding/binary"

// This file is the routed-frame route field's wire layout: what the
// opaque bytes behind FlagRouted actually contain now that the cluster
// layer (internal/arbd/cluster) is real. The framing spec in
// docs/WIRE.md reserved the field in version 1 precisely so these
// layouts could land without a version bump; endpoints that do not
// understand them still carry the bytes through untouched.
//
// Two layouts share the field, disambiguated by direction:
//
//	request (client→server, node→node):
//	    hops u8, origin member name (u16 len + bytes), origin corr u64
//	response (server→client):
//	    hops u8, owner member name (u16 len + bytes), owner address
//	    (u16 len + bytes)
//
// The request form is stamped by the first forwarding node (origin =
// its own member name, corr = the client's correlation ID) and
// preserved — hops incremented — across any further hop, so the owner
// can see where a frame entered the cluster. The response form is the
// owner hint a forwarding node attaches when relaying the owner's
// answer: clients use it to learn resource placement lazily and dial
// the owner directly next time.
//
// Like the rest of the codec these helpers are allocation-free: the
// appenders extend a caller-owned slice and the parsers alias their
// input. Callers that keep parsed fields across frames must copy them.

// RouteHopLimit is the largest hop count a conforming node will
// forward past; it exists to stop a misconfigured cluster (two nodes
// whose rings disagree) from bouncing a frame forever. Nodes answer
// Error 503 instead of forwarding a frame whose hops reach it.
const RouteHopLimit = 3

// AppendRequestRoute appends the request-form route field onto dst:
// the hop count, the member name of the node where the frame entered
// the cluster, and the correlation ID the original client chose.
func AppendRequestRoute(dst []byte, hops uint8, origin []byte, corr uint64) []byte {
	dst = append(dst, hops)
	dst = appendField(dst, origin)
	return binary.BigEndian.AppendUint64(dst, corr)
}

// ParseRequestRoute parses a request-form route field. origin aliases
// route. ok is false when the bytes do not parse under the layout.
func ParseRequestRoute(route []byte) (hops uint8, origin []byte, corr uint64, ok bool) {
	if len(route) < 1 {
		return 0, nil, 0, false
	}
	hops = route[0]
	origin, rest, ok := cutField(route[1:])
	if !ok || len(rest) != 8 {
		return 0, nil, 0, false
	}
	return hops, origin, binary.BigEndian.Uint64(rest), true
}

// AppendOwnerRoute appends the response-form route field onto dst: the
// hop count the request took, the owning member's name, and its
// dialable binary-transport address.
func AppendOwnerRoute(dst []byte, hops uint8, owner, addr []byte) []byte {
	dst = append(dst, hops)
	dst = appendField(dst, owner)
	return appendField(dst, addr)
}

// ParseOwnerRoute parses a response-form route field. owner and addr
// alias route. ok is false when the bytes do not parse under the
// layout.
func ParseOwnerRoute(route []byte) (hops uint8, owner, addr []byte, ok bool) {
	if len(route) < 1 {
		return 0, nil, nil, false
	}
	hops = route[0]
	owner, rest, ok := cutField(route[1:])
	if !ok {
		return 0, nil, nil, false
	}
	addr, rest, ok = cutField(rest)
	if !ok || len(rest) != 0 {
		return 0, nil, nil, false
	}
	return hops, owner, addr, true
}
