package codec

import (
	"testing"
)

// The codec benchmarks pin the wire fast path in the BENCH_*.json
// trajectory: encode and decode must stay single-digit nanoseconds
// per frame and 0 allocs/op, or the binary protocol stops being an
// improvement over the JSON surface it exists to displace.

func benchAcquire() Frame {
	return Frame{Type: TAcquire, Corr: 123456, Agent: 17,
		TimeoutNS: 2_000_000_000, TTLNS: 30_000_000_000, Resource: []byte("bus")}
}

func BenchmarkCodecEncodeAcquire(b *testing.B) {
	f := benchAcquire()
	buf := make([]byte, 0, MaxFrame)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = Append(buf[:0], &f)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecodeAcquire(b *testing.B) {
	f := benchAcquire()
	wire, err := Append(nil, &f)
	if err != nil {
		b.Fatal(err)
	}
	var out Frame
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecEncodeGrant(b *testing.B) {
	f := Frame{Type: TGrant, Corr: 123456, Agent: 17,
		TTLNS: 30_000_000_000, Resource: []byte("bus"), Token: []byte("bus-17-94321")}
	buf := make([]byte, 0, MaxFrame)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = Append(buf[:0], &f)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecodeGrant(b *testing.B) {
	f := Frame{Type: TGrant, Corr: 123456, Agent: 17,
		TTLNS: 30_000_000_000, Resource: []byte("bus"), Token: []byte("bus-17-94321")}
	wire, err := Append(nil, &f)
	if err != nil {
		b.Fatal(err)
	}
	var out Frame
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire, &out); err != nil {
			b.Fatal(err)
		}
	}
}
