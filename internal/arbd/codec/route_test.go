package codec

import (
	"bytes"
	"testing"
)

func TestRequestRouteRoundTrip(t *testing.T) {
	cases := []struct {
		hops   uint8
		origin string
		corr   uint64
	}{
		{0, "a", 1},
		{1, "node-west", 0},
		{RouteHopLimit, "", ^uint64(0)},
	}
	for _, c := range cases {
		route := AppendRequestRoute(nil, c.hops, []byte(c.origin), c.corr)
		hops, origin, corr, ok := ParseRequestRoute(route)
		if !ok {
			t.Fatalf("ParseRequestRoute(%x): not ok", route)
		}
		if hops != c.hops || string(origin) != c.origin || corr != c.corr {
			t.Errorf("round trip = (%d, %q, %d), want (%d, %q, %d)",
				hops, origin, corr, c.hops, c.origin, c.corr)
		}
	}
}

func TestOwnerRouteRoundTrip(t *testing.T) {
	route := AppendOwnerRoute(nil, 2, []byte("node-b"), []byte("127.0.0.1:7001"))
	hops, owner, addr, ok := ParseOwnerRoute(route)
	if !ok {
		t.Fatalf("ParseOwnerRoute(%x): not ok", route)
	}
	if hops != 2 || string(owner) != "node-b" || string(addr) != "127.0.0.1:7001" {
		t.Errorf("round trip = (%d, %q, %q)", hops, owner, addr)
	}
}

// The appenders must extend the destination slice in place (the
// allocation-free contract): encoding after existing bytes leaves them
// untouched.
func TestRouteAppendExtends(t *testing.T) {
	prefix := []byte{0xde, 0xad}
	out := AppendRequestRoute(prefix, 1, []byte("n"), 7)
	if !bytes.HasPrefix(out, prefix) {
		t.Errorf("AppendRequestRoute clobbered prefix: %x", out)
	}
	if _, _, _, ok := ParseRequestRoute(out[len(prefix):]); !ok {
		t.Error("suffix does not parse")
	}
}

func TestParseRequestRouteMalformed(t *testing.T) {
	good := AppendRequestRoute(nil, 1, []byte("origin"), 42)
	bad := [][]byte{
		nil,
		{},
		{1},                                   // hops only
		{1, 0xff, 0xff, 'x'},                  // field length overruns
		good[:len(good)-1],                    // truncated corr
		append(good[:len(good):len(good)], 0), // trailing byte
	}
	for _, b := range bad {
		if _, _, _, ok := ParseRequestRoute(b); ok {
			t.Errorf("ParseRequestRoute(%x) ok, want malformed", b)
		}
	}
}

func TestParseOwnerRouteMalformed(t *testing.T) {
	good := AppendOwnerRoute(nil, 1, []byte("owner"), []byte("addr"))
	bad := [][]byte{
		nil,
		{},
		{1},                                   // hops only
		{1, 0, 1},                             // name length overruns
		good[:len(good)-1],                    // truncated addr
		append(good[:len(good):len(good)], 0), // trailing byte
	}
	for _, b := range bad {
		if _, _, _, ok := ParseOwnerRoute(b); ok {
			t.Errorf("ParseOwnerRoute(%x) ok, want malformed", b)
		}
	}
}

// The two layouts are not interchangeable: a request route must not
// parse as an owner route with the same meaning (the trailing-byte
// checks keep the forms honest about their own shape).
func TestRouteFormsDistinct(t *testing.T) {
	req := AppendRequestRoute(nil, 1, []byte("origin"), 42)
	if _, _, _, ok := ParseOwnerRoute(req); ok {
		// A request route happens to parse as owner form only when the
		// final 8 corr bytes decode as a valid u16-len field; the chosen
		// corr here does not.
		t.Errorf("request route %x parsed as owner route", req)
	}
}
