package codec

import (
	"bytes"
	"testing"
)

// FuzzCodecRoundTrip feeds arbitrary bytes to Decode (which must
// never panic, whatever a hostile peer sends) and, when the bytes do
// parse, re-encodes the frame and requires the second decode to agree
// with the first — encode/decode identity on everything reachable
// over the wire.
func FuzzCodecRoundTrip(f *testing.F) {
	for _, fr := range sampleFrames() {
		buf, err := Append(nil, &fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 12, Version, byte(TReleased), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var first Frame
		n, err := Decode(data, &first)
		if err != nil {
			return // malformed input is fine as long as we didn't panic
		}
		if n < 4+HeaderLen || n > len(data) {
			t.Fatalf("Decode consumed %d bytes of %d", n, len(data))
		}
		reenc, err := Append(nil, &first)
		if err != nil {
			t.Fatalf("re-encoding a decoded frame: %v (frame %+v)", err, first)
		}
		var second Frame
		m, err := Decode(reenc, &second)
		if err != nil {
			t.Fatalf("decoding a re-encoded frame: %v", err)
		}
		if m != len(reenc) {
			t.Fatalf("second decode consumed %d of %d bytes", m, len(reenc))
		}
		if !framesEqual(first, second) {
			t.Fatalf("round trip diverged:\n first  %+v\n second %+v", first, second)
		}
		// The re-encoding must be canonical: identical to the accepted
		// input frame's bytes.
		if !bytes.Equal(reenc, data[:n]) {
			t.Fatalf("re-encode not canonical:\n in  %x\n out %x", data[:n], reenc)
		}
	})
}
