package arbd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// testTick is fast enough to keep the suite quick but coarse enough to
// be stable under the race detector's slowdown.
const testTick = 200 * time.Microsecond

// newTestDaemon builds a daemon plus an httptest server on its
// handler, cleaned up in reverse order (server first, so no handler is
// in flight when the shards stop).
func newTestDaemon(t *testing.T, rcs ...ResourceConfig) (*Daemon, *httptest.Server) {
	t.Helper()
	d, err := New(Config{Resources: rcs})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() { srv.Close(); d.Close() })
	return d, srv
}

// res returns a ResourceConfig with test-speed defaults.
func res(name string, agents int, protocol string) ResourceConfig {
	return ResourceConfig{Name: name, Agents: agents, Protocol: protocol, Tick: testTick}
}

// httpAcquire performs one acquire over HTTP, returning status and the
// lease (valid only on 200).
func httpAcquire(t *testing.T, base, resource string, agent int, params string) (int, Lease) {
	t.Helper()
	u := fmt.Sprintf("%s/v1/acquire?resource=%s&agent=%d%s", base, resource, agent, params)
	resp, err := http.Post(u, "", nil)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer resp.Body.Close()
	var lease Lease
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
			t.Fatalf("decoding lease: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, lease
}

// httpRelease performs one release over HTTP.
func httpRelease(t *testing.T, base, resource, token string) int {
	t.Helper()
	u := fmt.Sprintf("%s/v1/release?resource=%s&token=%s", base, resource, token)
	resp, err := http.Post(u, "", nil)
	if err != nil {
		t.Fatalf("release: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func TestAcquireReleaseRoundTrip(t *testing.T) {
	_, srv := newTestDaemon(t, res("bus", 4, "RR1"))

	code, lease := httpAcquire(t, srv.URL, "bus", 3, "")
	if code != http.StatusOK {
		t.Fatalf("acquire status %d, want 200", code)
	}
	if lease.Resource != "bus" || lease.Agent != 3 || lease.Token == "" {
		t.Fatalf("bad lease %+v", lease)
	}
	if code := httpRelease(t, srv.URL, "bus", lease.Token); code != http.StatusOK {
		t.Fatalf("release status %d, want 200", code)
	}
	// A released token is dead.
	if code := httpRelease(t, srv.URL, "bus", lease.Token); code != http.StatusNotFound {
		t.Fatalf("double release status %d, want 404", code)
	}
}

func TestBadRequests(t *testing.T) {
	_, srv := newTestDaemon(t, res("bus", 4, "RR1"))

	cases := []struct {
		name string
		url  string
		want int
	}{
		{"unknown resource", "/v1/acquire?resource=nope&agent=1", http.StatusNotFound},
		{"missing resource", "/v1/acquire?agent=1", http.StatusBadRequest},
		{"bad agent", "/v1/acquire?resource=bus&agent=zero", http.StatusBadRequest},
		{"agent out of range", "/v1/acquire?resource=bus&agent=5", http.StatusBadRequest},
		{"agent zero", "/v1/acquire?resource=bus&agent=0", http.StatusBadRequest},
		{"bad timeout", "/v1/acquire?resource=bus&agent=1&timeout=xyz", http.StatusBadRequest},
		{"negative timeout", "/v1/acquire?resource=bus&agent=1&timeout=-1s", http.StatusBadRequest},
		{"negative ttl", "/v1/acquire?resource=bus&agent=1&ttl=-1s", http.StatusBadRequest},
		{"release missing token", "/v1/release?resource=bus", http.StatusBadRequest},
		{"release unknown token", "/v1/release?resource=bus&token=nope", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(srv.URL+tc.url, "", nil)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("status %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}

	// Wrong method: the mux's method patterns answer 405.
	resp, err := http.Get(srv.URL + "/v1/acquire?resource=bus&agent=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET acquire status %d, want 405", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	_, srv := newTestDaemon(t, res("bus", 2, "FP"))
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("healthz = %d %q, want 200 ok", resp.StatusCode, body)
	}
}

// TestQueuedAcquireTimesOut pins 408 backpressure: a waiter whose
// client timeout passes while the resource is held is answered 408.
func TestQueuedAcquireTimesOut(t *testing.T) {
	_, srv := newTestDaemon(t, res("bus", 4, "RR1"))

	code, lease := httpAcquire(t, srv.URL, "bus", 1, "")
	if code != http.StatusOK {
		t.Fatalf("holder acquire status %d", code)
	}
	start := time.Now()
	code, _ = httpAcquire(t, srv.URL, "bus", 2, "&timeout=50ms")
	if code != http.StatusRequestTimeout {
		t.Fatalf("queued acquire status %d, want 408", code)
	}
	if waited := time.Since(start); waited < 40*time.Millisecond {
		t.Errorf("408 after only %v; the deadline should have been honored", waited)
	}
	httpRelease(t, srv.URL, "bus", lease.Token)
}

// TestQueueFullAnswers503 pins the load-shedding path.
func TestQueueFullAnswers503(t *testing.T) {
	d, srv := newTestDaemon(t, func() ResourceConfig {
		rc := res("bus", 4, "RR1")
		rc.MaxQueue = 1
		return rc
	}())

	code, lease := httpAcquire(t, srv.URL, "bus", 1, "")
	if code != http.StatusOK {
		t.Fatalf("holder acquire status %d", code)
	}
	// One waiter fits the queue...
	waiterDone := make(chan int, 1)
	go func() {
		code, l := httpAcquire(t, srv.URL, "bus", 2, "&timeout=5s")
		if code == http.StatusOK {
			httpRelease(t, srv.URL, "bus", l.Token)
		}
		waiterDone <- code
	}()
	// ...and only once the shard has admitted it (its request line
	// shows in the tally) is the queue actually full.
	s := d.shards["bus"]
	deadline := time.Now().Add(2 * time.Second)
	for {
		var queued bool
		s.probe.Do(func() { queued = s.tally.requests[2] > 0 })
		if queued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never reached the shard queue")
		}
		time.Sleep(time.Millisecond)
	}
	if code, _ := httpAcquire(t, srv.URL, "bus", 3, ""); code != http.StatusServiceUnavailable {
		t.Fatalf("overflow acquire status %d, want 503", code)
	}
	httpRelease(t, srv.URL, "bus", lease.Token)
	if code := <-waiterDone; code != http.StatusOK {
		t.Fatalf("queued waiter status %d, want 200 after release", code)
	}
}

// TestLeaseExpiry pins the TTL: an unreleased lease lapses, the next
// waiter is granted, and the stale token is dead.
func TestLeaseExpiry(t *testing.T) {
	rc := res("bus", 4, "FCFS2")
	rc.TTL = 40 * time.Millisecond
	_, srv := newTestDaemon(t, rc)

	code, stale := httpAcquire(t, srv.URL, "bus", 1, "")
	if code != http.StatusOK {
		t.Fatalf("first acquire status %d", code)
	}
	start := time.Now()
	code, lease := httpAcquire(t, srv.URL, "bus", 2, "&timeout=5s")
	if code != http.StatusOK {
		t.Fatalf("post-expiry acquire status %d, want 200", code)
	}
	if waited := time.Since(start); waited < 30*time.Millisecond {
		t.Errorf("second grant after only %v; should have waited out the TTL", waited)
	}
	if code := httpRelease(t, srv.URL, "bus", stale.Token); code != http.StatusNotFound {
		t.Errorf("stale token release status %d, want 404", code)
	}
	httpRelease(t, srv.URL, "bus", lease.Token)
}

// TestSameAgentWaitersServeInOrder pins the line re-assert path: two
// clients sharing one identity are granted one after the other.
func TestSameAgentWaitersServeInOrder(t *testing.T) {
	_, srv := newTestDaemon(t, res("bus", 2, "RR1"))

	var wg sync.WaitGroup
	grants := make(chan string, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, lease := httpAcquire(t, srv.URL, "bus", 1, "&timeout=5s")
			if code != http.StatusOK {
				t.Errorf("shared-identity acquire status %d", code)
				return
			}
			grants <- lease.Token
			time.Sleep(2 * time.Millisecond)
			httpRelease(t, srv.URL, "bus", lease.Token)
		}()
	}
	wg.Wait()
	close(grants)
	seen := map[string]bool{}
	for tok := range grants {
		if seen[tok] {
			t.Errorf("token %q granted twice", tok)
		}
		seen[tok] = true
	}
	if len(seen) != 2 {
		t.Errorf("granted %d distinct leases, want 2", len(seen))
	}
}

// TestMetricz pins the observability surface: tallies add up and the
// JSON document is well-formed.
func TestMetricz(t *testing.T) {
	rc := res("bus", 3, "RR3")
	rc.MetricsWindow = 0.02 // close windows fast so quantiles appear
	_, srv := newTestDaemon(t, rc, res("gpu", 2, "FP"))

	const grantsWanted = 9
	for i := 0; i < grantsWanted; i++ {
		agent := 1 + i%3
		code, lease := httpAcquire(t, srv.URL, "bus", agent, "&timeout=5s")
		if code != http.StatusOK {
			t.Fatalf("acquire %d status %d", i, code)
		}
		httpRelease(t, srv.URL, "bus", lease.Token)
	}

	resp, err := http.Get(srv.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		UptimeSeconds float64                    `json:"uptime_s"`
		Resources     map[string]ResourceMetrics `json:"resources"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatalf("decoding metricz: %v", err)
	}
	if payload.UptimeSeconds <= 0 {
		t.Errorf("uptime %v, want > 0", payload.UptimeSeconds)
	}
	bus, ok := payload.Resources["bus"]
	if !ok {
		t.Fatalf("metricz missing resource bus: %v", payload.Resources)
	}
	if bus.Protocol != "RR3" || len(bus.Agents) != 3 {
		t.Fatalf("bus entry %+v", bus)
	}
	var grants, requests int64
	for _, a := range bus.Agents {
		grants += a.Grants
		requests += a.Requests
	}
	if grants != grantsWanted || requests != grantsWanted {
		t.Errorf("bus grants=%d requests=%d, want %d each", grants, requests, grantsWanted)
	}
	if bus.Arbitrations != grantsWanted {
		t.Errorf("bus arbitrations=%d, want %d", bus.Arbitrations, grantsWanted)
	}
	if bus.Repasses == 0 {
		t.Errorf("RR3 made no repasses over %d grants; expected at least the reset pass", grantsWanted)
	}
	if gpu := payload.Resources["gpu"]; gpu.Protocol != "FP" || len(gpu.Agents) != 2 {
		t.Errorf("gpu entry %+v", payload.Resources["gpu"])
	}
}

// TestConfigValidate pins New's error paths.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no resources", Config{}},
		{"empty name", Config{Resources: []ResourceConfig{{Agents: 2, Protocol: "RR1"}}}},
		{"no agents", Config{Resources: []ResourceConfig{{Name: "a", Protocol: "RR1"}}}},
		{"bad protocol", Config{Resources: []ResourceConfig{{Name: "a", Agents: 2, Protocol: "NOPE"}}}},
		{"duplicate", Config{Resources: []ResourceConfig{
			{Name: "a", Agents: 2, Protocol: "RR1"}, {Name: "a", Agents: 2, Protocol: "FP"}}}},
		{"negative tick", Config{Resources: []ResourceConfig{
			{Name: "a", Agents: 2, Protocol: "RR1", Tick: -time.Second}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if d, err := New(tc.cfg); err == nil {
				d.Close()
				t.Error("New succeeded, want error")
			}
		})
	}
}

// TestGracefulShutdown pins the two halves of the shutdown contract:
// queued waiters are answered 503 rather than abandoned, and every
// shard goroutine exits (no leaks).
func TestGracefulShutdown(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()

	d, err := New(Config{Resources: []ResourceConfig{
		res("bus", 4, "RR1"), res("gpu", 2, "FCFS1"), res("disk", 8, "FCFS2"),
	}})
	if err != nil {
		t.Fatal(err)
	}

	// Hold bus so a second acquire queues, then close underneath it.
	lease, herr := d.shards["bus"].acquire(context.Background(), 1, 0, 0)
	if herr != nil {
		t.Fatalf("holder acquire: %v", herr)
	}
	_ = lease
	waiterCode := make(chan int, 1)
	go func() {
		_, herr := d.shards["bus"].acquire(context.Background(), 2, 0, 0)
		if herr == nil {
			waiterCode <- 200
		} else {
			waiterCode <- herr.code
		}
	}()
	// Let the waiter reach the shard queue.
	deadline := time.Now().Add(2 * time.Second)
	for {
		var queued bool
		s := d.shards["bus"]
		s.probe.Do(func() { queued = s.tally.requests[2] > 0 })
		if queued || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	d.Close()
	if code := <-waiterCode; code != 503 {
		t.Errorf("queued waiter got %d on shutdown, want 503", code)
	}
	// Acquires after Close are refused, not hung.
	if _, herr := d.shards["bus"].acquire(context.Background(), 1, 0, 0); herr == nil || herr.code != 503 {
		t.Errorf("post-Close acquire = %v, want 503", herr)
	}
	d.Close() // idempotent

	// Every shard loop must have exited.
	deadline = time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after Close\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
