package cluster

import (
	"context"
	"net"
	"testing"
	"time"

	"busarb/client"
	"busarb/internal/arbd"
)

// benchTick matches the arbd transport benchmarks: the cycle should
// be as short as stability allows, since the measurement is the
// transport (and here the forwarding hop), not the grant scheduler.
const benchTick = 50 * time.Microsecond

// benchCluster builds a two-node cluster serving one uncontended
// resource and returns the owner's and the non-owner's dial targets:
// the direct and the forwarded path to the same shard.
func benchCluster(b *testing.B) (direct, forwarded string) {
	b.Helper()
	rcs := []arbd.ResourceConfig{{Name: "bus", Agents: 1, Protocol: "RR1", Tick: benchTick}}
	names := []string{"a", "b"}
	lns := make(map[string]net.Listener, len(names))
	members := make([]Member, 0, len(names))
	for _, name := range names {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		lns[name] = ln
		members = append(members, Member{Name: name, Addr: "tcp://" + ln.Addr().String()})
	}
	addrs := make(map[string]string, len(names))
	var owner string
	for _, name := range names {
		n, err := New(Config{Self: name, Members: members, Resources: rcs})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { n.Close() })
		addrs[name] = lns[name].Addr().String()
		go n.Serve(lns[name])
		if n.Owns("bus") {
			owner = name
		}
	}
	for _, name := range names {
		if name != owner {
			return "tcp://" + addrs[owner], "tcp://" + addrs[name]
		}
	}
	b.Fatal("no non-owner in a two-member cluster")
	return "", ""
}

func benchClusterLoop(b *testing.B, target string) {
	b.Helper()
	c, err := client.Dial(target)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lease, err := c.Acquire(ctx, "bus", 1, client.AcquireOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Release(ctx, lease); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// BenchmarkDirectAcquireRelease is the cluster baseline: the same
// round trip as arbd's BenchmarkBinaryAcquireRelease, but through a
// cluster node that owns the resource — the routed server's overhead
// without any forwarding.
func BenchmarkDirectAcquireRelease(b *testing.B) {
	direct, _ := benchCluster(b)
	benchClusterLoop(b, direct)
}

// BenchmarkForwardedAcquireRelease measures the forwarding hop: the
// identical round trip entered at the non-owner, so every frame
// crosses one extra node (route stamp, pooled inter-node connection,
// response relay). The delta against Direct is the price of hitting
// the wrong shard.
func BenchmarkForwardedAcquireRelease(b *testing.B) {
	_, forwarded := benchCluster(b)
	benchClusterLoop(b, forwarded)
}
