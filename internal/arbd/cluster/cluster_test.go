package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"busarb/client"
	"busarb/internal/arbd"
	"busarb/internal/arbd/codec"
)

// testTick matches the arbd suite's convention: fast enough to keep
// tests quick, coarse enough to survive scheduler noise.
const testTick = 200 * time.Microsecond

func res(name string, agents int, protocol string) arbd.ResourceConfig {
	return arbd.ResourceConfig{Name: name, Agents: agents, Protocol: protocol, Tick: testTick}
}

// testCluster is a set of in-process nodes serving real listeners.
type testCluster struct {
	nodes map[string]*Node
	addrs map[string]string // member name -> host:port of the binary listener
	names []string
}

// startCluster builds and serves one node per name, all sharing the
// resource list and config (mut adjusts each node's Config before
// New). Every listener is bound before any node starts, so members
// know each other's real addresses.
func startCluster(t *testing.T, names []string, rcs []arbd.ResourceConfig, mut func(*Config)) *testCluster {
	t.Helper()
	lns := make(map[string]net.Listener, len(names))
	members := make([]Member, 0, len(names))
	for _, name := range names {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[name] = ln
		members = append(members, Member{Name: name, Addr: "tcp://" + ln.Addr().String()})
	}
	tc := &testCluster{nodes: map[string]*Node{}, addrs: map[string]string{}, names: names}
	for _, name := range names {
		cfg := Config{Self: name, Members: members, Resources: rcs}
		if mut != nil {
			mut(&cfg)
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes[name] = n
		tc.addrs[name] = lns[name].Addr().String()
		go n.Serve(lns[name])
	}
	t.Cleanup(tc.close) // Node.Close is idempotent; tests may close early
	return tc
}

func (tc *testCluster) close() {
	for _, name := range tc.names {
		tc.nodes[name].Close()
	}
}

// owner returns the member name owning resource (identical on every
// node — the ring is deterministic).
func (tc *testCluster) owner(t *testing.T, resource string) string {
	t.Helper()
	m, ok := tc.nodes[tc.names[0]].Owner(resource)
	if !ok {
		t.Fatalf("no owner for %q", resource)
	}
	return m.Name
}

// nonOwner returns some member that does not own resource.
func (tc *testCluster) nonOwner(t *testing.T, resource string) string {
	t.Helper()
	owner := tc.owner(t, resource)
	for _, name := range tc.names {
		if name != owner {
			return name
		}
	}
	t.Fatalf("single-member cluster cannot have a non-owner for %q", resource)
	return ""
}

// TestClusterSmoke is the make-check cluster gate: three in-process
// nodes, and a full acquire/release round trip for every resource
// through a single node — local for the resources it owns, forwarded
// for the rest — under the race detector.
func TestClusterSmoke(t *testing.T) {
	rcs := []arbd.ResourceConfig{res("bus", 4, "RR1"), res("disk", 4, "FCFS2"), res("dma", 4, "RR1")}
	tc := startCluster(t, []string{"a", "b", "c"}, rcs, nil)

	entry := tc.nodes["a"]
	c, err := client.Dial("tcp://" + tc.addrs["a"])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	foreign := 0
	for _, rc := range rcs {
		if !entry.Owns(rc.Name) {
			foreign++
		}
		lease, err := c.Acquire(ctx, rc.Name, 1, client.AcquireOptions{})
		if err != nil {
			t.Fatalf("acquire %q via a: %v", rc.Name, err)
		}
		if lease.Resource != rc.Name || lease.Token == "" || lease.TTL <= 0 {
			t.Errorf("lease for %q = %+v, want granted with token and TTL", rc.Name, lease)
		}
		if err := c.Release(ctx, lease); err != nil {
			t.Fatalf("release %q via a: %v", rc.Name, err)
		}
	}
	// The ring spreads three resources over three members, so at least
	// one round trip above was forwarded; the node's metrics must say
	// so (acquire + release per foreign resource).
	if foreign == 0 {
		t.Skip("ring put every resource on the entry node; forwarding not exercisable with this seed")
	}
	fm := entry.ForwardMetrics()
	if want := int64(2 * foreign); fm.Forwards != want {
		t.Errorf("entry node forwards = %d, want %d (%d foreign resources)", fm.Forwards, want, foreign)
	}
	if fm.Errors != 0 || fm.Shed != 0 {
		t.Errorf("forward metrics = %+v, want no errors or sheds", fm)
	}
	if fm.LatencyMax <= 0 {
		t.Errorf("forward latency max = %v, want a positive sample", fm.LatencyMax)
	}
}

// TestForwardingEquivalence pins that a routed acquire is the same
// protocol object as a direct one: same resource, same agent echo,
// same TTL contract, a workable token — and the daemon state they
// leave behind is identical (both leases release cleanly, in either
// order, through either path).
func TestForwardingEquivalence(t *testing.T) {
	rcs := []arbd.ResourceConfig{res("bus", 4, "RR1")}
	tc := startCluster(t, []string{"a", "b", "c"}, rcs, nil)
	owner, other := tc.owner(t, "bus"), tc.nonOwner(t, "bus")

	direct, err := client.Dial("tcp://" + tc.addrs[owner])
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	routed, err := client.Dial("tcp://" + tc.addrs[other])
	if err != nil {
		t.Fatal(err)
	}
	defer routed.Close()

	ctx := context.Background()
	dl, err := direct.Acquire(ctx, "bus", 1, client.AcquireOptions{})
	if err != nil {
		t.Fatalf("direct acquire: %v", err)
	}
	if err := direct.Release(ctx, dl); err != nil {
		t.Fatalf("direct release: %v", err)
	}
	rl, err := routed.Acquire(ctx, "bus", 1, client.AcquireOptions{})
	if err != nil {
		t.Fatalf("routed acquire: %v", err)
	}
	if rl.Resource != dl.Resource || rl.Agent != dl.Agent || rl.TTL != dl.TTL {
		t.Errorf("routed lease %+v differs from direct lease %+v beyond the token", rl, dl)
	}
	if rl.Token == "" || rl.Token == dl.Token {
		t.Errorf("routed token %q, want fresh non-empty", rl.Token)
	}
	// Cross-path release: the lease came through the forwarder, the
	// release goes direct — same shard, so it must work.
	if err := direct.Release(ctx, rl); err != nil {
		t.Fatalf("direct release of routed lease: %v", err)
	}
	// And a stale release answers the same 404 on both paths.
	for name, c := range map[string]*client.Client{"direct": direct, "routed": routed} {
		err := c.Release(ctx, rl)
		var ce *client.Error
		if !asClientError(err, &ce) || ce.Code != 404 {
			t.Errorf("%s stale release: %v, want 404 *client.Error", name, err)
		}
	}
}

func asClientError(err error, ce **client.Error) bool { return errors.As(err, ce) }

// TestRoutedFlagOnWire pins the wire contract of docs/WIRE.md's routed
// frames, below the client library: a plain acquire sent to a
// non-owner comes back FlagRouted with an owner-hint route naming the
// real owner, while the same exchange with the owner carries no
// routing at all.
func TestRoutedFlagOnWire(t *testing.T) {
	rcs := []arbd.ResourceConfig{res("bus", 4, "RR1")}
	tc := startCluster(t, []string{"a", "b", "c"}, rcs, nil)
	owner, other := tc.owner(t, "bus"), tc.nonOwner(t, "bus")

	dial := func(t *testing.T, addr string) (*codec.Writer, *codec.Reader) {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		return codec.NewWriter(conn), codec.NewReader(conn)
	}
	exchange := func(t *testing.T, w *codec.Writer, r *codec.Reader, req *codec.Frame) codec.Frame {
		t.Helper()
		if err := w.WriteFrame(req); err != nil {
			t.Fatal(err)
		}
		var resp codec.Frame
		if err := r.Next(&resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Through the non-owner: the grant must carry FlagRouted and an
	// owner hint pointing at the owner's advertised address.
	w, r := dial(t, tc.addrs[other])
	resp := exchange(t, w, r, &codec.Frame{
		Type: codec.TAcquire, Corr: 7, Agent: 1, Resource: []byte("bus"),
	})
	if resp.Type != codec.TGrant || resp.Corr != 7 {
		t.Fatalf("routed response = type %v corr %d, want TGrant corr 7 (code %d msg %q)",
			resp.Type, resp.Corr, resp.Code, resp.Msg)
	}
	if resp.Flags&codec.FlagRouted == 0 {
		t.Fatal("grant relayed through a non-owner is missing FlagRouted")
	}
	hops, ownerName, ownerAddr, ok := codec.ParseOwnerRoute(resp.Route)
	if !ok {
		t.Fatalf("routed grant's route field %x does not parse as an owner hint", resp.Route)
	}
	if hops != 1 {
		t.Errorf("owner hint hops = %d, want 1 for a single forward", hops)
	}
	if string(ownerName) != owner || string(ownerAddr) != "tcp://"+tc.addrs[owner] {
		t.Errorf("owner hint = %q at %q, want %q at %q",
			ownerName, ownerAddr, owner, "tcp://"+tc.addrs[owner])
	}

	// The release through the non-owner is routed and flagged the same
	// way (and frees the lease for the direct leg below).
	resp = exchange(t, w, r, &codec.Frame{
		Type: codec.TRelease, Corr: 8, Resource: []byte("bus"), Token: append([]byte(nil), resp.Token...),
	})
	if resp.Type != codec.TReleased || resp.Corr != 8 {
		t.Fatalf("routed release response = type %v corr %d (code %d msg %q), want TReleased corr 8",
			resp.Type, resp.Corr, resp.Code, resp.Msg)
	}
	if resp.Flags&codec.FlagRouted == 0 {
		t.Error("released relayed through a non-owner is missing FlagRouted")
	}
	if _, _, _, ok := codec.ParseOwnerRoute(resp.Route); !ok {
		t.Errorf("routed released's route field %x does not parse as an owner hint", resp.Route)
	}

	// Through the owner: no routing residue on the wire.
	w, r = dial(t, tc.addrs[owner])
	resp = exchange(t, w, r, &codec.Frame{
		Type: codec.TAcquire, Corr: 9, Agent: 2, Resource: []byte("bus"),
	})
	if resp.Type != codec.TGrant {
		t.Fatalf("direct response = type %v, want TGrant (code %d msg %q)", resp.Type, resp.Code, resp.Msg)
	}
	if resp.Flags&codec.FlagRouted != 0 || len(resp.Route) != 0 {
		t.Errorf("direct grant carries routing: flags %#x route %x", resp.Flags, resp.Route)
	}
}

// TestForwardHopLimitAndBadRoute pins the two local shed paths on a
// node asked to forward a frame that already crossed the cluster: a
// hop count at the limit answers 503 instead of bouncing on, and a
// route field that does not parse answers 400. Both count as sheds in
// the metrics, not forwards.
func TestForwardHopLimitAndBadRoute(t *testing.T) {
	rcs := []arbd.ResourceConfig{res("bus", 4, "RR1")}
	tc := startCluster(t, []string{"a", "b", "c"}, rcs, nil)
	other := tc.nonOwner(t, "bus")

	conn, err := net.Dial("tcp", tc.addrs[other])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w, r := codec.NewWriter(conn), codec.NewReader(conn)

	// Already at the hop limit: one more hop would exceed it.
	route := codec.AppendRequestRoute(nil, codec.RouteHopLimit, []byte("elsewhere"), 99)
	if err := w.WriteFrame(&codec.Frame{
		Type: codec.TAcquire, Flags: codec.FlagRouted, Corr: 11, Agent: 1,
		Resource: []byte("bus"), Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	var resp codec.Frame
	if err := r.Next(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Type != codec.TError || resp.Code != 503 || !strings.Contains(string(resp.Msg), "hop limit") {
		t.Errorf("hop-limit response = type %v code %d msg %q, want TError 503 naming the hop limit",
			resp.Type, resp.Code, resp.Msg)
	}
	if resp.Corr != 11 || resp.Flags&codec.FlagRouted == 0 {
		t.Errorf("hop-limit response corr %d flags %#x, want corr 11 with FlagRouted", resp.Corr, resp.Flags)
	}

	// A routed frame whose route field is garbage.
	if err := w.WriteFrame(&codec.Frame{
		Type: codec.TAcquire, Flags: codec.FlagRouted, Corr: 12, Agent: 1,
		Resource: []byte("bus"), Route: []byte{0xff},
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Next(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Type != codec.TError || resp.Code != 400 || !strings.Contains(string(resp.Msg), "route") {
		t.Errorf("bad-route response = type %v code %d msg %q, want TError 400 naming the route",
			resp.Type, resp.Code, resp.Msg)
	}

	fm := tc.nodes[other].ForwardMetrics()
	if fm.Shed != 2 || fm.Forwards != 0 {
		t.Errorf("forward metrics after two local sheds = %+v, want Shed 2 Forwards 0", fm)
	}
}

// TestForwardQueueFull pins the bounded forward queue: with
// MaxInflight 1 and the owner's shard holding the only grant, a burst
// of forwarded acquires overflows the per-peer queue and the overflow
// answers 503 naming the queue.
func TestForwardQueueFull(t *testing.T) {
	rcs := []arbd.ResourceConfig{res("bus", 8, "RR1")}
	tc := startCluster(t, []string{"a", "b", "c"}, rcs, func(c *Config) { c.MaxInflight = 1 })
	owner, other := tc.owner(t, "bus"), tc.nonOwner(t, "bus")

	// Park a lease on the owner so forwarded acquires stay in flight.
	holder, err := client.Dial("tcp://" + tc.addrs[owner])
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	ctx := context.Background()
	lease, err := holder.Acquire(ctx, "bus", 1, client.AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Release(ctx, lease)

	// Two concurrent acquires race for the single forward slot: exactly
	// one occupies it (and blocks behind the parked lease), the other
	// must be shed with 503 — the client retry layer must not treat the
	// shed as transient.
	c, err := client.Dial("tcp://" + tc.addrs[other])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	results := make(chan error, 2)
	for agent := 2; agent <= 3; agent++ {
		go func(agent int) {
			_, err := c.Acquire(ctx, "bus", agent, client.AcquireOptions{})
			results <- err
		}(agent)
	}
	var overflowErr error
	select {
	case overflowErr = <-results:
	case <-time.After(5 * time.Second):
		t.Fatal("never saw the forward queue overflow")
	}
	var ce *client.Error
	if !asClientError(overflowErr, &ce) || ce.Code != 503 || !strings.Contains(ce.Msg, "forward queue") {
		t.Fatalf("overflow error = %v, want 503 naming the forward queue", overflowErr)
	}
	// Free the resource; the slot's occupant must be granted.
	if err := holder.Release(ctx, lease); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-results:
		if err != nil {
			t.Fatalf("in-flight forward failed after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight forward never completed after release")
	}
	if fm := tc.nodes[other].ForwardMetrics(); fm.Shed < 1 {
		t.Errorf("forward metrics = %+v, want at least one shed", fm)
	}
}

// TestClusterzAgreement pins the /clusterz document: every member
// publishes the same ring parameters, member list, and owner map, and
// the document names its publisher.
func TestClusterzAgreement(t *testing.T) {
	rcs := []arbd.ResourceConfig{res("bus", 4, "RR1"), res("disk", 4, "FCFS2")}
	tc := startCluster(t, []string{"a", "b", "c"}, rcs, func(c *Config) { c.Seed = 42 })

	var first Clusterz
	for i, name := range tc.names {
		srv := httptest.NewServer(tc.nodes[name].Handler())
		resp, err := http.Get(srv.URL + "/clusterz")
		if err != nil {
			t.Fatal(err)
		}
		var cz Clusterz
		if err := json.NewDecoder(resp.Body).Decode(&cz); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		srv.Close()
		if cz.Self != name {
			t.Errorf("member %s publishes self %q", name, cz.Self)
		}
		if cz.Seed != 42 || cz.VNodes != DefaultVNodes {
			t.Errorf("member %s ring params = seed %d vnodes %d, want 42/%d", name, cz.Seed, cz.VNodes, DefaultVNodes)
		}
		if len(cz.Members) != 3 || len(cz.Owners) != 2 {
			t.Fatalf("member %s document has %d members, %d owners", name, len(cz.Members), len(cz.Owners))
		}
		cz.Self = ""
		if i == 0 {
			first = cz
			continue
		}
		if fmt.Sprint(cz) != fmt.Sprint(first) {
			t.Errorf("member %s topology disagrees:\n%v\nvs\n%v", name, cz, first)
		}
	}
}

// TestHTTPMisdirected pins the HTTP guard: a node answers acquires for
// foreign resources with 421 and an envelope naming the owner, and
// still serves everything it owns.
func TestHTTPMisdirected(t *testing.T) {
	rcs := []arbd.ResourceConfig{res("bus", 4, "RR1")}
	tc := startCluster(t, []string{"a", "b", "c"}, rcs, nil)
	owner, other := tc.owner(t, "bus"), tc.nonOwner(t, "bus")

	srv := httptest.NewServer(tc.nodes[other].Handler())
	defer srv.Close()
	resp, err := http.PostForm(srv.URL+"/v1/acquire", map[string][]string{
		"resource": {"bus"}, "agent": {"1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("foreign acquire status = %d, want 421", resp.StatusCode)
	}
	var envelope struct {
		Code  string `json:"code"`
		Error string `json:"error"`
		Owner Member `json:"owner"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Code != "misdirected" || envelope.Owner.Name != owner {
		t.Errorf("envelope = %+v, want code misdirected owner %q", envelope, owner)
	}

	// The owner serves the same request through its full HTTP path.
	osrv := httptest.NewServer(tc.nodes[owner].Handler())
	defer osrv.Close()
	oc, err := client.Dial(osrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer oc.Close()
	lease, err := oc.Acquire(context.Background(), "bus", 1, client.AcquireOptions{})
	if err != nil {
		t.Fatalf("owner HTTP acquire: %v", err)
	}
	if err := oc.Release(context.Background(), lease); err != nil {
		t.Fatalf("owner HTTP release: %v", err)
	}
}

// TestClusterMetricz pins the /metricz cluster section: member counts,
// owned-resource counts, and forward tallies that move when traffic is
// forwarded.
func TestClusterMetricz(t *testing.T) {
	rcs := []arbd.ResourceConfig{res("bus", 4, "RR1")}
	tc := startCluster(t, []string{"a", "b", "c"}, rcs, nil)
	other := tc.nonOwner(t, "bus")

	c, err := client.Dial("tcp://" + tc.addrs[other])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	lease, err := c.Acquire(ctx, "bus", 1, client.AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Release(ctx, lease); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(tc.nodes[other].Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Resources map[string]json.RawMessage `json:"resources"`
		Cluster   struct {
			Self           string         `json:"self"`
			Members        int            `json:"members"`
			OwnedResources int            `json:"owned_resources"`
			Forward        ForwardMetrics `json:"forward"`
		} `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Cluster.Self != other || doc.Cluster.Members != 3 {
		t.Errorf("cluster section = %+v, want self %q members 3", doc.Cluster, other)
	}
	if doc.Cluster.OwnedResources != 0 {
		t.Errorf("non-owner claims %d owned resources", doc.Cluster.OwnedResources)
	}
	if doc.Cluster.Forward.Forwards != 2 {
		t.Errorf("forwards = %d, want 2 (acquire + release)", doc.Cluster.Forward.Forwards)
	}
	if _, ok := doc.Resources["bus"]; ok {
		t.Errorf("non-owner /metricz lists %q under resources; the owner's shard runs it", "bus")
	}
}

// TestClusterCloseLeaksNothing pins the goroutine hygiene of the whole
// cluster layer: after forwarded traffic (peer connections, relay
// goroutines, read loops all live), closing the clients and every node
// returns the process to its goroutine baseline.
func TestClusterCloseLeaksNothing(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()

	rcs := []arbd.ResourceConfig{res("bus", 4, "RR1"), res("disk", 4, "FCFS2")}
	tc := startCluster(t, []string{"a", "b", "c"}, rcs, nil)
	c, err := client.Dial("tcp://" + tc.addrs["a"])
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, rc := range rcs {
		lease, err := c.Acquire(ctx, rc.Name, 1, client.AcquireOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Release(ctx, lease); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	tc.close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after Close\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDialClusterRouting pins the client-side cluster transport
// end-to-end against real nodes: bootstrap from /clusterz sends the
// first call straight to the owner (no forwards anywhere), and the
// lazy path (tcp targets only) learns the owner from the first routed
// response and goes direct from then on.
func TestDialClusterRouting(t *testing.T) {
	rcs := []arbd.ResourceConfig{res("bus", 4, "RR1")}
	tc := startCluster(t, []string{"a", "b", "c"}, rcs, nil)
	owner := tc.owner(t, "bus")
	ctx := context.Background()

	totalForwards := func() int64 {
		var sum int64
		for _, name := range tc.names {
			sum += tc.nodes[name].ForwardMetrics().Forwards
		}
		return sum
	}

	// Eager: bootstrap the topology over HTTP, then call. The owner map
	// is pre-loaded, so no node ever forwards.
	hsrv := httptest.NewServer(tc.nodes[tc.nonOwner(t, "bus")].Handler())
	defer hsrv.Close()
	c, err := client.DialCluster([]string{hsrv.URL})
	if err != nil {
		t.Fatal(err)
	}
	lease, err := c.Acquire(ctx, "bus", 1, client.AcquireOptions{})
	if err != nil {
		t.Fatalf("bootstrapped acquire: %v", err)
	}
	if err := c.Release(ctx, lease); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if n := totalForwards(); n != 0 {
		t.Errorf("bootstrapped client caused %d forwards, want 0 (calls should go direct)", n)
	}

	// Lazy: tcp targets only, entry on a non-owner. The first acquire
	// is forwarded; its owner hint upgrades the rest to direct.
	other := tc.nonOwner(t, "bus")
	c, err = client.DialCluster([]string{
		"tcp://" + tc.addrs[other],
		"tcp://" + tc.addrs[owner],
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	lease, err = c.Acquire(ctx, "bus", 1, client.AcquireOptions{})
	if err != nil {
		t.Fatalf("lazy acquire: %v", err)
	}
	afterFirst := totalForwards()
	if afterFirst == 0 {
		t.Fatal("first lazy acquire was not forwarded; entry node should not own the resource")
	}
	if err := c.Release(ctx, lease); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		lease, err := c.Acquire(ctx, "bus", 1, client.AcquireOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Release(ctx, lease); err != nil {
			t.Fatal(err)
		}
	}
	if n := totalForwards(); n != afterFirst {
		t.Errorf("forwards grew from %d to %d after the owner hint; follow-ups should go direct", afterFirst, n)
	}
}

// TestDialClusterFailover pins the any-node fallback: with the
// preferred entry dead, DialCluster still reaches the cluster through
// the remaining members.
func TestDialClusterFailover(t *testing.T) {
	rcs := []arbd.ResourceConfig{res("bus", 4, "RR1")}
	tc := startCluster(t, []string{"a", "b", "c"}, rcs, nil)

	// A dead address first in the pool: every call must fail over past
	// it. Retries are trimmed so the test does not wait out backoffs.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	c, err := client.DialCluster([]string{
		"tcp://" + deadAddr,
		"tcp://" + tc.addrs["a"],
	}, client.WithRetries(1), client.WithDialTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	lease, err := c.Acquire(ctx, "bus", 1, client.AcquireOptions{})
	if err != nil {
		t.Fatalf("acquire through fallback member: %v", err)
	}
	if err := c.Release(ctx, lease); err != nil {
		t.Fatal(err)
	}
}
