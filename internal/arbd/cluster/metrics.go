package cluster

import (
	"sort"
	"sync"
	"time"
)

// forwardStats tallies the node's forwarding work for /metricz: how
// many frames were proxied, how many came back (or failed) as errors,
// and the recent forward latency distribution. Latencies live in a
// fixed ring of the last latWindow samples — quantiles over recent
// traffic, constant memory.
type forwardStats struct {
	mu     sync.Mutex
	count  int64           // guarded by mu; frames that crossed the wire
	local  int64           // guarded by mu; shed before the wire (queue full, hop limit, bad route)
	errors int64           // guarded by mu; forwards answered TError
	lat    []time.Duration // guarded by mu; ring buffer of wire-crossing latencies
	next   int             // guarded by mu; ring write cursor
}

// latWindow is the latency ring size: big enough for stable p90s,
// small enough to sort on every scrape.
const latWindow = 1024

// record tallies one forward. wire reports whether the frame actually
// reached a peer (local sheds are counted separately and contribute
// no latency sample).
func (s *forwardStats) record(d time.Duration, isErr, wire bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !wire {
		s.local++
		if isErr {
			s.errors++
		}
		return
	}
	s.count++
	if isErr {
		s.errors++
	}
	if len(s.lat) < latWindow {
		s.lat = append(s.lat, d)
		return
	}
	s.lat[s.next] = d
	s.next = (s.next + 1) % latWindow
}

// ForwardMetrics is the cluster section's forwarding entry in
// /metricz.
type ForwardMetrics struct {
	// Forwards counts frames proxied to a peer; Shed counts frames
	// refused before the wire (full queue, hop limit, malformed
	// route); Errors counts TError answers across both.
	Forwards int64 `json:"forwards"`
	Shed     int64 `json:"shed"`
	Errors   int64 `json:"errors"`
	// The latency quantiles summarize the most recent wire-crossing
	// forwards (up to the window size), in seconds; zero when none
	// happened yet.
	LatencyP50 float64 `json:"latency_p50_s"`
	LatencyP90 float64 `json:"latency_p90_s"`
	LatencyMax float64 `json:"latency_max_s"`
}

// snapshot copies and summarizes the tallies.
func (s *forwardStats) snapshot() ForwardMetrics {
	s.mu.Lock()
	m := ForwardMetrics{Forwards: s.count, Shed: s.local, Errors: s.errors}
	lat := make([]time.Duration, len(s.lat))
	copy(lat, s.lat)
	s.mu.Unlock()
	if len(lat) == 0 {
		return m
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	m.LatencyP50 = lat[len(lat)/2].Seconds()
	m.LatencyP90 = lat[len(lat)*9/10].Seconds()
	m.LatencyMax = lat[len(lat)-1].Seconds()
	return m
}

// ForwardMetrics snapshots the node's forwarding tallies.
func (n *Node) ForwardMetrics() ForwardMetrics { return n.fwd.snapshot() }
