package cluster

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"busarb/internal/arbd"
	"busarb/internal/arbd/codec"
)

// peer is the pooled binary-protocol connection to one other cluster
// member. All forwards to that member multiplex over a single
// persistent connection, correlated by ID exactly like the public
// client's transport; the connection is dialed lazily on the first
// forward and redialed transparently after a tear.
//
// sem is the bounded forward queue: at most cap(sem) forwards may be
// in flight to the member at once. A full queue fails fast with a
// 503-equivalent reply instead of buffering without bound — the same
// pushback the daemon's own MaxQueue applies to local waiters.
type peer struct {
	name        string
	addr        string // dialable host:port (scheme stripped)
	dialTimeout time.Duration
	sem         chan struct{}

	mu      sync.Mutex
	conn    net.Conn                          // guarded by mu; nil between teardown and redial
	w       *codec.Writer                     // guarded by mu; writes serialized under it
	corr    uint64                            // guarded by mu
	pending map[uint64]chan arbd.ForwardReply // guarded by mu
	closed  bool                              // guarded by mu

	wg sync.WaitGroup // one per live readLoop
}

func newPeer(name, addr string, maxInflight int, dialTimeout time.Duration) *peer {
	return &peer{
		name:        name,
		addr:        dialAddr(addr),
		dialTimeout: dialTimeout,
		sem:         make(chan struct{}, maxInflight),
		pending:     make(map[uint64]chan arbd.ForwardReply),
	}
}

// dialAddr strips the tcp:// scheme member addresses are usually
// written with, leaving the host:port net.Dial wants.
func dialAddr(addr string) string {
	return strings.TrimPrefix(addr, "tcp://")
}

// call forwards one frame to the member and waits for its correlated
// reply. f's Corr is overwritten with this connection's correlation
// ID; the caller's own correlation with its client happens at the
// response relay, not on the wire here. The returned reply is always
// terminal (grant, released, or error); wire reports whether the
// frame actually reached the connection — sheds (full queue, failed
// dial, failed write) answer locally and count toward the shed
// metric, not the forward latency window.
func (p *peer) call(ctx context.Context, f *codec.Frame) (rep arbd.ForwardReply, wire bool) {
	select {
	case p.sem <- struct{}{}:
	default:
		// Queue full: shed rather than buffer. 503 tells the client the
		// same thing the daemon's own overload path would.
		return arbd.ErrorReply(503, fmt.Sprintf("cluster: forward queue to %s full", p.name)), false
	}
	defer func() { <-p.sem }()

	p.mu.Lock()
	if err := p.ensureConnLocked(); err != nil {
		p.mu.Unlock()
		return arbd.ErrorReply(503, fmt.Sprintf("cluster: owner %s unreachable: %v", p.name, err)), false
	}
	p.corr++
	corr := p.corr
	f.Corr = corr
	ch := make(chan arbd.ForwardReply, 1)
	p.pending[corr] = ch
	err := p.w.WriteFrame(f)
	p.mu.Unlock()
	if err != nil {
		// The reader's teardown will (or already did) fail ch; answer
		// the write error for this caller.
		p.forget(corr)
		return arbd.ErrorReply(503, fmt.Sprintf("cluster: write to %s: %v", p.name, err)), false
	}
	select {
	case rep := <-ch:
		return rep, true
	case <-ctx.Done():
		// The origin client is gone (or the node is closing); nobody is
		// left to read this reply. The owner's eventual answer hits an
		// unmatched correlation ID and is dropped; a granted lease
		// lapses at TTL, like any abandoned acquire.
		p.forget(corr)
		return arbd.ErrorReply(408, fmt.Sprintf("cluster: forward to %s abandoned: %v", p.name, ctx.Err())), true
	}
}

// forget abandons a pending correlation ID.
func (p *peer) forget(corr uint64) {
	p.mu.Lock()
	delete(p.pending, corr)
	p.mu.Unlock()
}

// ensureConnLocked dials if the connection is down and starts its
// reader. Callers hold p.mu.
func (p *peer) ensureConnLocked() error {
	if p.closed {
		return fmt.Errorf("cluster: peer %s closed", p.name)
	}
	if p.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", p.addr, p.dialTimeout)
	if err != nil {
		return err
	}
	p.conn = conn
	p.w = codec.NewWriter(conn)
	p.wg.Add(1)
	go p.readLoop(conn)
	return nil
}

// readLoop owns conn's read side: it resolves forwards until the
// connection ends, then fails whatever is still in flight. Its
// shutdown path is the WaitGroup: close() closes conn, the blocked
// Next fails, and the loop tears down and Done()s.
func (p *peer) readLoop(conn net.Conn) {
	defer p.wg.Done()
	r := codec.NewReader(conn)
	var f codec.Frame
	for {
		if err := r.Next(&f); err != nil {
			p.teardown(conn, fmt.Sprintf("cluster: connection to %s lost: %v", p.name, err))
			return
		}
		var rep arbd.ForwardReply
		switch f.Type {
		case codec.TGrant:
			rep = arbd.ForwardReply{
				Type:     codec.TGrant,
				Agent:    int(int32(f.Agent)),
				TTL:      time.Duration(f.TTLNS),
				Resource: string(f.Resource),
				Token:    string(f.Token),
			}
		case codec.TReleased:
			rep = arbd.ForwardReply{Type: codec.TReleased, Resource: string(f.Resource)}
		case codec.TError:
			rep = arbd.ForwardReply{Type: codec.TError, Code: int(f.Code), Msg: string(f.Msg)}
		default:
			// A frame type we never ask for: protocol skew. Drop the
			// connection rather than guess.
			p.teardown(conn, fmt.Sprintf("cluster: unexpected %v frame from %s", f.Type, p.name))
			return
		}
		p.mu.Lock()
		ch, ok := p.pending[f.Corr]
		if ok {
			delete(p.pending, f.Corr)
		}
		p.mu.Unlock()
		if ok {
			ch <- rep // buffered; never blocks
		}
	}
}

// teardown retires a torn connection and fails its in-flight
// forwards with a 503 so origin clients can retry another member.
func (p *peer) teardown(conn net.Conn, msg string) {
	conn.Close()
	p.mu.Lock()
	if p.conn == conn {
		p.conn = nil
		p.w = nil
	}
	var chans []chan arbd.ForwardReply
	for _, ch := range p.pending {
		chans = append(chans, ch)
	}
	p.pending = make(map[uint64]chan arbd.ForwardReply)
	p.mu.Unlock()
	for _, ch := range chans {
		ch <- arbd.ErrorReply(503, msg)
	}
}

// close tears the connection down and waits for the reader to exit.
// In-flight forwards fail through the reader's teardown.
func (p *peer) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	conn := p.conn
	p.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	p.wg.Wait()
}
