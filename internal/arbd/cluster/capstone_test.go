package cluster

import (
	"runtime"
	"testing"
	"time"

	"busarb/internal/arbd"
)

// TestClusterCapstoneFairness is the PR's headline experiment: the
// paper's Table 4.1 fairness story, preserved across the cluster
// layer. Three nodes shard three resources (one per protocol); over a
// thousand closed-loop clients, multiplexed over three connections by
// client.DialCluster and spread round-robin by the load generator,
// saturate all of them at once. Because every resource's protocol runs
// entirely on its owning shard — forwarding only relays frames — the
// single-daemon fairness separations must survive verbatim:
// round-robin and FCFS share evenly (bandwidth ratio t_N/t_1 near
// 1.0), fixed priority starves its low identities (ratio near 0).
//
// The run double-checks the plumbing too: every agent must land its
// full grant budget, at least one node must actually forward (the
// entry-order routing cannot have every resource local), and closing
// everything returns the process to its goroutine baseline.
func TestClusterCapstoneFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive thousand-client load run")
	}
	runtime.GC()
	before := runtime.NumGoroutine()

	const perResource = 350 // 3 resources -> 1050 clients total
	rcs := []arbd.ResourceConfig{
		{Name: "rr", Agents: perResource, Protocol: "RR1", Tick: testTick},
		{Name: "fcfs", Agents: perResource, Protocol: "FCFS2", Tick: testTick},
		{Name: "fp", Agents: perResource, Protocol: "FP", Tick: testTick},
	}
	tc := startCluster(t, []string{"a", "b", "c"}, rcs, func(c *Config) {
		// The burst of first calls all enters at one member before the
		// owner hints land; the default per-peer forward queue (256)
		// would shed part of a 1050-client stampede.
		c.MaxInflight = 4096
	})

	rep, err := arbd.RunLoad(arbd.LoadConfig{
		Targets: []string{
			"tcp://" + tc.addrs["a"],
			"tcp://" + tc.addrs["b"],
			"tcp://" + tc.addrs["c"],
		},
		Resources: []string{"rr", "fcfs", "fp"},
		Agents:    3 * perResource,
		Requests:  30,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every agent landed its full budget: nothing was lost to routing.
	for i, a := range rep.Agents {
		if a.Grants != 30 {
			t.Errorf("agent %d (%s/%d) got %d grants, want 30", i+1, a.Resource, a.Identity, a.Grants)
		}
	}

	// Per-resource bandwidth ratios (min/max throughput within each
	// resource's agent population).
	minTP := map[string]float64{}
	maxTP := map[string]float64{}
	for _, a := range rep.Agents {
		if cur, ok := minTP[a.Resource]; !ok || a.Throughput < cur {
			minTP[a.Resource] = a.Throughput
		}
		if cur, ok := maxTP[a.Resource]; !ok || a.Throughput > cur {
			maxTP[a.Resource] = a.Throughput
		}
	}
	ratio := func(resource string) float64 {
		if maxTP[resource] == 0 {
			return 0
		}
		return minTP[resource] / maxTP[resource]
	}
	t.Logf("bandwidth ratios t_N/t_1: RR1 %.3f, FCFS2 %.3f, FP %.3f (run %.2fs, pooled Wp50=%s Wp90=%s)",
		ratio("rr"), ratio("fcfs"), ratio("fp"), rep.Elapsed.Seconds(), rep.WaitP50, rep.WaitP90)
	if r := ratio("rr"); r < 0.9 {
		t.Errorf("RR1 bandwidth ratio %.3f, want >= 0.9: round robin must share evenly across the cluster", r)
	}
	if r := ratio("fcfs"); r < 0.9 {
		t.Errorf("FCFS2 bandwidth ratio %.3f, want >= 0.9: FCFS must share evenly across the cluster", r)
	}
	if r := ratio("fp"); r >= 0.1 {
		t.Errorf("FP bandwidth ratio %.3f, want < 0.1: fixed priority should starve low identities at saturation", r)
	}

	// The cluster actually routed: with three resources hashed over
	// three members and three entry points fed round-robin only by
	// owner hints, some first calls must have crossed nodes.
	var forwards int64
	for _, name := range tc.names {
		forwards += tc.nodes[name].ForwardMetrics().Forwards
	}
	if forwards == 0 {
		t.Error("no node forwarded anything; the capstone never exercised the routing layer")
	}

	// Goroutine hygiene at scale: everything the run spun up unwinds.
	tc.close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after the capstone run: %d before, %d after Close\n%.8192s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
