package cluster

import (
	"fmt"
	"sort"
)

// Ring is the deterministic consistent-hash ring that decides which
// cluster member owns each resource. Every member contributes vnodes
// points (virtual nodes) to a 64-bit hash circle; a resource belongs
// to the member whose point is first at or clockwise of the
// resource's own hash. Virtual nodes smooth the split: with enough of
// them each member owns close to K/N of K resources.
//
// The ring is byte-deterministic: the same (members, vnodes, seed)
// triple builds the same ring on every node of the cluster, in any
// process, on any Go version — the hash is a seeded FNV-1a finished
// with a splitmix64 mix, not Go's runtime map hash. That is what lets
// each node compute ownership locally with no coordination, and what
// makes placement tests reproducible.
//
// Stability under membership change is the structural property the
// fuzz target (FuzzRingStability) pins: adding a member introduces
// only that member's points, so the only keys whose owner changes are
// the ones the new member captures; removing a member deletes only
// its points, so only keys it owned move. Everyone else stays put —
// O(K/N) movement, against O(K) for modulo placement.
//
// A Ring is immutable after construction; With and Without derive new
// rings. Methods are safe for concurrent use.
type Ring struct {
	seed    uint64
	vnodes  int
	members []string // sorted, unique
	points  []ringPoint
}

// ringPoint is one virtual node on the circle.
type ringPoint struct {
	hash   uint64
	member string
}

// DefaultVNodes is the virtual-node count NewRing substitutes for 0:
// enough that a 3-node cluster splits a few hundred resources within
// a few percent of evenly.
const DefaultVNodes = 64

// NewRing builds a ring from the member names. vnodes is the number
// of points per member (0 means DefaultVNodes); seed perturbs every
// hash so tests can re-deal placements without renaming members.
// Member names must be non-empty and unique.
func NewRing(members []string, vnodes int, seed uint64) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes == 0 {
		vnodes = DefaultVNodes
	}
	if vnodes < 0 {
		return nil, fmt.Errorf("cluster: negative vnodes %d", vnodes)
	}
	sorted := make([]string, len(members))
	copy(sorted, members)
	sort.Strings(sorted)
	for i, m := range sorted {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member name")
		}
		if i > 0 && sorted[i-1] == m {
			return nil, fmt.Errorf("cluster: duplicate member %q", m)
		}
	}
	r := &Ring{seed: seed, vnodes: vnodes, members: sorted}
	r.points = make([]ringPoint, 0, len(sorted)*vnodes)
	for _, m := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{ringHash(seed, m, uint32(v)), m})
		}
	}
	// Sort by (hash, member): the member tie-break keeps the ring
	// byte-deterministic even in the astronomically unlikely event two
	// members' points collide at 64 bits.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Owner returns the member that owns key: the first point at or
// clockwise of the key's hash, wrapping past the top of the circle.
func (r *Ring) Owner(key string) string {
	h := ringHash(r.seed, key, keyVNode)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// keyVNode separates the key hash domain from member point hashes
// (members use vnode indices 0..vnodes-1), so a resource named after
// a member does not land exactly on that member's point zero.
const keyVNode = ^uint32(0)

// Members returns the sorted member names. The slice is shared; do
// not mutate.
func (r *Ring) Members() []string { return r.members }

// VNodes returns the per-member virtual node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Seed returns the ring's hash seed.
func (r *Ring) Seed() uint64 { return r.seed }

// With derives the ring that includes member. Existing members' points
// are identical in both rings, so ownership moves only onto member.
func (r *Ring) With(member string) (*Ring, error) {
	names := make([]string, 0, len(r.members)+1)
	names = append(names, r.members...)
	names = append(names, member)
	return NewRing(names, r.vnodes, r.seed)
}

// Without derives the ring that excludes member. The remaining
// members' points are identical in both rings, so only keys member
// owned move.
func (r *Ring) Without(member string) (*Ring, error) {
	names := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != member {
			names = append(names, m)
		}
	}
	if len(names) == len(r.members) {
		return nil, fmt.Errorf("cluster: no member %q in ring", member)
	}
	return NewRing(names, r.vnodes, r.seed)
}

// ringHash is the ring's placement hash: FNV-1a over the name and
// vnode index, seeded, then finished with the splitmix64 mix so the
// low bits are as well distributed as the high ones. It is pinned
// here rather than borrowed from hash/maphash (per-process random) or
// the runtime: every node must compute the same circle.
func ringHash(seed uint64, name string, vnode uint32) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ mix64(seed)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * prime
	}
	for shift := 0; shift < 32; shift += 8 {
		h = (h ^ uint64(byte(vnode>>shift))) * prime
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer (same constants as
// internal/rng's seeding).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
