package cluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("res-%d", i)
	}
	return keys
}

func TestRingDeterministic(t *testing.T) {
	members := []string{"b", "a", "c"}
	r1, err := NewRing(members, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Same parameters, different member order: the ring sorts, so the
	// circle is identical.
	r2, err := NewRing([]string{"c", "a", "b"}, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(500) {
		if o1, o2 := r1.Owner(k), r2.Owner(k); o1 != o2 {
			t.Fatalf("Owner(%q) differs across identical rings: %q vs %q", k, o1, o2)
		}
	}
}

func TestRingSeedRedeals(t *testing.T) {
	members := []string{"a", "b", "c"}
	r1, _ := NewRing(members, 0, 1)
	r2, _ := NewRing(members, 0, 2)
	moved := 0
	for _, k := range testKeys(500) {
		if r1.Owner(k) != r2.Owner(k) {
			moved++
		}
	}
	if moved == 0 {
		t.Error("changing the seed re-dealt no keys; the seed is not reaching the hash")
	}
}

func TestRingTotalAndBalanced(t *testing.T) {
	members := []string{"a", "b", "c"}
	r, err := NewRing(members, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := testKeys(3000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for _, m := range members {
		got := counts[m]
		// Perfectly even would be 1000 each; with 64 vnodes the spread
		// stays well within a factor of two of fair share.
		if got < len(keys)/6 || got > len(keys)/2 {
			t.Errorf("member %q owns %d of %d keys; vnode smoothing is off", m, got, len(keys))
		}
	}
}

func TestRingErrors(t *testing.T) {
	cases := []struct {
		members []string
		vnodes  int
	}{
		{nil, 0},
		{[]string{"a", "a"}, 0},
		{[]string{""}, 0},
		{[]string{"a"}, -1},
	}
	for _, c := range cases {
		if _, err := NewRing(c.members, c.vnodes, 0); err == nil {
			t.Errorf("NewRing(%v, %d) succeeded, want error", c.members, c.vnodes)
		}
	}
	r, _ := NewRing([]string{"a"}, 4, 0)
	if _, err := r.Without("ghost"); err == nil {
		t.Error("Without(unknown member) succeeded, want error")
	}
}

// TestRingMovement pins the structural property the whole design rests
// on: membership change moves only the keys it must.
func TestRingMovement(t *testing.T) {
	keys := testKeys(2000)
	r, err := NewRing([]string{"a", "b", "c"}, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}

	grown, err := r.With("d")
	if err != nil {
		t.Fatal(err)
	}
	movedTo := 0
	for _, k := range keys {
		after := grown.Owner(k)
		if after != before[k] {
			if after != "d" {
				t.Fatalf("adding d moved %q from %q to %q — keys may move only onto the new member", k, before[k], after)
			}
			movedTo++
		}
	}
	// O(K/N) movement: the new member captures about a quarter. Allow a
	// wide deterministic band; modulo placement would move ~3/4.
	if movedTo == 0 || movedTo > len(keys)/2 {
		t.Errorf("adding a 4th member moved %d of %d keys; want roughly K/N", movedTo, len(keys))
	}

	shrunk, err := r.Without("b")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		after := shrunk.Owner(k)
		if before[k] == "b" {
			if after == "b" {
				t.Fatalf("removing b left %q owned by b", k)
			}
		} else if after != before[k] {
			t.Fatalf("removing b moved %q from %q to %q — only b's keys may move", k, before[k], after)
		}
	}
}

// FuzzRingStability drives the movement invariant across random
// member sets, seeds and key material: ownership is deterministic,
// total, and a single member add or remove moves only the keys the
// invariant allows.
func FuzzRingStability(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(3), []byte("alpha/beta/gamma"))
	f.Add(uint64(42), uint8(1), uint8(1), []byte("x"))
	f.Add(uint64(0), uint8(16), uint8(7), []byte("res-0/res-1/res-2/res-3"))
	f.Fuzz(func(t *testing.T, seed uint64, vnodes, nMembers uint8, keyData []byte) {
		n := int(nMembers)%8 + 1
		v := int(vnodes)%32 + 1
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("m%d", i)
		}
		keys := make([]string, 0, 32)
		for start := 0; start < len(keyData) && len(keys) < 32; start += 8 {
			end := min(start+8, len(keyData))
			keys = append(keys, fmt.Sprintf("k%d-%x", len(keys), keyData[start:end]))
		}
		keys = append(keys, "k-fixed")

		r, err := NewRing(members, v, seed)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := NewRing(members, v, seed)
		if err != nil {
			t.Fatal(err)
		}
		isMember := map[string]bool{}
		for _, m := range members {
			isMember[m] = true
		}
		before := map[string]string{}
		for _, k := range keys {
			o := r.Owner(k)
			if !isMember[o] {
				t.Fatalf("Owner(%q) = %q, not a member", k, o)
			}
			if o2 := r2.Owner(k); o2 != o {
				t.Fatalf("Owner(%q) nondeterministic: %q vs %q", k, o, o2)
			}
			before[k] = o
		}

		grown, err := r.With("added")
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if o := grown.Owner(k); o != before[k] && o != "added" {
				t.Fatalf("add moved %q from %q to %q (not the new member)", k, before[k], o)
			}
		}

		victim := members[int(seed)%n]
		shrunk, err := r.Without(victim)
		if n == 1 {
			// Removing the last member empties the ring; NewRing refuses.
			if err == nil {
				t.Fatal("Without on a 1-member ring succeeded")
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			o := shrunk.Owner(k)
			if before[k] == victim {
				if o == victim {
					t.Fatalf("remove left %q owned by removed member %q", k, victim)
				}
			} else if o != before[k] {
				t.Fatalf("remove of %q moved unrelated key %q from %q to %q", victim, k, before[k], o)
			}
		}
	})
}
