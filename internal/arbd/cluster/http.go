package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"

	"busarb/internal/arbd"
)

// Handler returns the node's HTTP surface: the local daemon's
// endpoints (docs/WIRE.md's JSON transport) plus the cluster layer.
//
//	GET /clusterz
//	    The topology: self, ring parameters, every member, and the
//	    resource → owner map. client.DialCluster bootstraps from it;
//	    operators diff it across members to audit ring agreement.
//	GET /metricz
//	    The daemon document plus a "cluster" section with forward
//	    count/latency (see ForwardMetrics).
//	POST /v1/acquire, /v1/release
//	    Served locally when this node owns the resource; answered with
//	    a 421 "misdirected" envelope naming the owner otherwise. HTTP
//	    gets a redirect-style answer instead of the binary transport's
//	    transparent forwarding: an HTTP client that cares about
//	    placement should follow the envelope, and one that doesn't
//	    should use the binary transport.
func (n *Node) Handler() http.Handler {
	inner := n.daemon.Handler()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /clusterz", n.handleClusterz)
	mux.HandleFunc("GET /metricz", n.handleMetricz)
	guard := func(w http.ResponseWriter, r *http.Request) {
		resource := r.FormValue("resource")
		if resource != "" && !n.Owns(resource) {
			owner, _ := n.Owner(resource)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusMisdirectedRequest)
			json.NewEncoder(w).Encode(struct {
				Code  string `json:"code"`
				Error string `json:"error"`
				Owner Member `json:"owner"`
			}{
				Code:  "misdirected",
				Error: fmt.Sprintf("cluster: resource %q is served by %s at %s", resource, owner.Name, owner.Addr),
				Owner: owner,
			})
			return
		}
		inner.ServeHTTP(w, r)
	}
	mux.HandleFunc("POST /v1/acquire", guard)
	mux.HandleFunc("POST /v1/release", guard)
	mux.Handle("/", inner)
	return mux
}

// Clusterz is the /clusterz document.
type Clusterz struct {
	Self   string `json:"self"`
	Seed   uint64 `json:"seed"`
	VNodes int    `json:"vnodes"`
	// Members lists every member in ring (name-sorted) order.
	Members []Member `json:"members"`
	// Owners maps each configured resource to its owning member name.
	Owners map[string]string `json:"owners"`
}

// Clusterz builds the topology document Handler serves.
func (n *Node) Clusterz() Clusterz {
	cz := Clusterz{
		Self:   n.cfg.Self,
		Seed:   n.ring.Seed(),
		VNodes: n.ring.VNodes(),
		Owners: make(map[string]string, len(n.resources)),
	}
	for _, name := range n.ring.Members() {
		for _, m := range n.cfg.Members {
			if m.Name == name {
				cz.Members = append(cz.Members, m)
			}
		}
	}
	for _, res := range n.resources {
		cz.Owners[res] = n.owners[res]
	}
	return cz
}

func (n *Node) handleClusterz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(n.Clusterz())
}

// clusterMetricz is the cluster node's /metricz document: the
// daemon's fields plus the cluster section.
type clusterMetricz struct {
	UptimeSeconds float64                         `json:"uptime_s"`
	Resources     map[string]arbd.ResourceMetrics `json:"resources"`
	Cluster       clusterSection                  `json:"cluster"`
}

type clusterSection struct {
	Self           string         `json:"self"`
	Members        int            `json:"members"`
	OwnedResources int            `json:"owned_resources"`
	Forward        ForwardMetrics `json:"forward"`
}

func (n *Node) handleMetricz(w http.ResponseWriter, r *http.Request) {
	owned := 0
	for _, res := range n.resources {
		if n.owners[res] == n.cfg.Self {
			owned++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(clusterMetricz{
		UptimeSeconds: n.daemon.Uptime().Seconds(),
		Resources:     n.daemon.Metrics(),
		Cluster: clusterSection{
			Self:           n.cfg.Self,
			Members:        len(n.cfg.Members),
			OwnedResources: owned,
			Forward:        n.fwd.snapshot(),
		},
	})
}
