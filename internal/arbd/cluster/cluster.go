// Package cluster turns a set of independent arbd processes into one
// logical arbitration service. The paper's protocols arbitrate one
// shared bus among ~10 processors; the ROADMAP north-star is the same
// fairness story at production scale — many resources sharded across
// many daemons. This package is the sharding and routing layer that
// makes the fleet look like a single daemon:
//
//   - a deterministic consistent-hash Ring maps each resource name to
//     the one member that runs its shard (ownership needs no
//     coordination: every node computes the same ring);
//   - a Node wraps a local arbd.Daemon in a routed binary server —
//     frames for foreign resources are proxied over a pooled
//     inter-node connection to the owner (FlagRouted + route field,
//     docs/WIRE.md) and the answer relayed back;
//   - /clusterz publishes the topology so clients (client.DialCluster)
//     can send straight to owners, and /metricz grows forward
//     count/latency so misrouted load is visible.
//
// Arbitration itself is untouched: a resource's protocol runs
// entirely on its owner's shard loop, so the paper's fairness
// properties hold per resource no matter which member a client
// happens to dial — the capstone test in this package pins exactly
// that.
package cluster

import (
	"context"
	"fmt"
	"net"
	"sort"
	"time"

	"busarb/internal/arbd"
	"busarb/internal/arbd/codec"
)

// Member is one node of the cluster: a stable name (the ring hashes
// names, not addresses, so a member can move hosts without reshuffling
// ownership) and the address of its binary listener.
type Member struct {
	Name string `json:"name"`
	Addr string `json:"addr"` // tcp://host:port or host:port
}

// Config describes one node's view of the cluster. Every member must
// be configured with the same Members, Resources, VNodes and Seed —
// the ring is computed, not negotiated, so agreement is a deployment
// invariant (clusterz exists to audit it).
type Config struct {
	// Self names this node; it must appear in Members.
	Self string
	// Members lists every cluster member, this node included.
	Members []Member
	// Resources is the full cluster-wide resource list. The ring
	// decides which subset this node's daemon actually runs.
	Resources []arbd.ResourceConfig
	// VNodes is the ring's per-member virtual node count (0 means
	// DefaultVNodes).
	VNodes int
	// Seed perturbs the ring's placement hash.
	Seed uint64
	// MaxInflight bounds in-flight forwards per peer (the forward
	// queue); beyond it forwards fail fast with 503. 0 means 256.
	MaxInflight int
	// HopLimit bounds how many nodes a frame may cross; a frame that
	// would exceed it answers 503 instead of bouncing further. 0 means
	// codec.RouteHopLimit.
	HopLimit int
	// DialTimeout bounds each inter-node dial. 0 means 2s.
	DialTimeout time.Duration
}

// Validate checks the configuration; New returns exactly these errors.
func (cfg Config) Validate() error {
	if cfg.Self == "" {
		return fmt.Errorf("cluster: Self required")
	}
	if len(cfg.Members) == 0 {
		return fmt.Errorf("cluster: at least one member required")
	}
	seen := make(map[string]bool, len(cfg.Members))
	selfSeen := false
	for _, m := range cfg.Members {
		if m.Name == "" {
			return fmt.Errorf("cluster: member with empty name")
		}
		if seen[m.Name] {
			return fmt.Errorf("cluster: duplicate member %q", m.Name)
		}
		seen[m.Name] = true
		if m.Addr == "" {
			return fmt.Errorf("cluster: member %q has no address", m.Name)
		}
		if m.Name == cfg.Self {
			selfSeen = true
		}
	}
	if !selfSeen {
		return fmt.Errorf("cluster: Self %q not in Members", cfg.Self)
	}
	if cfg.VNodes < 0 {
		return fmt.Errorf("cluster: negative VNodes %d", cfg.VNodes)
	}
	if cfg.MaxInflight < 0 {
		return fmt.Errorf("cluster: negative MaxInflight %d", cfg.MaxInflight)
	}
	if cfg.HopLimit < 0 {
		return fmt.Errorf("cluster: negative HopLimit %d", cfg.HopLimit)
	}
	if cfg.DialTimeout < 0 {
		return fmt.Errorf("cluster: negative DialTimeout %v", cfg.DialTimeout)
	}
	return nil
}

// withDefaults returns cfg with zero fields filled in.
func (cfg Config) withDefaults() Config {
	if cfg.VNodes == 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 256
	}
	if cfg.HopLimit == 0 {
		cfg.HopLimit = codec.RouteHopLimit
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	return cfg
}

// Node is one member's process: the local daemon running the shards
// the ring assigned here, the routed binary server forwarding
// everything else, and the pooled connections to every peer. A Node
// implements arbd.Router — that is the seam the binary server calls
// through.
type Node struct {
	cfg    Config
	ring   *Ring
	daemon *arbd.Daemon
	server *arbd.BinaryServer

	// owners maps every configured resource to its owning member;
	// resources and peerNames are the deterministic (sorted) iteration
	// orders for the maps. All four are immutable after New.
	owners    map[string]string
	resources []string
	peers     map[string]*peer
	peerNames []string
	self      Member

	fwd forwardStats
}

// New builds the node: ring, local daemon (only the resources the
// ring assigns to Self), routed binary server, and one lazy peer
// connection per other member. Serve starts the binary listener;
// Close stops everything.
func New(cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	names := make([]string, 0, len(cfg.Members))
	for _, m := range cfg.Members {
		names = append(names, m.Name)
	}
	ring, err := NewRing(names, cfg.VNodes, cfg.Seed)
	if err != nil {
		return nil, err
	}

	n := &Node{
		cfg:    cfg,
		ring:   ring,
		owners: make(map[string]string, len(cfg.Resources)),
		peers:  make(map[string]*peer, len(cfg.Members)-1),
	}
	var local []arbd.ResourceConfig
	for _, rc := range cfg.Resources {
		if _, dup := n.owners[rc.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate resource %q", rc.Name)
		}
		owner := ring.Owner(rc.Name)
		n.owners[rc.Name] = owner
		n.resources = append(n.resources, rc.Name)
		if owner == cfg.Self {
			local = append(local, rc)
		}
	}
	sort.Strings(n.resources)

	for _, m := range cfg.Members {
		if m.Name == cfg.Self {
			n.self = m
			continue
		}
		n.peers[m.Name] = newPeer(m.Name, m.Addr, cfg.MaxInflight, cfg.DialTimeout)
		n.peerNames = append(n.peerNames, m.Name)
	}
	sort.Strings(n.peerNames)

	d, err := arbd.New(arbd.Config{Resources: local, AllowNoResources: true})
	if err != nil {
		return nil, err
	}
	n.daemon = d
	n.server = arbd.NewRoutedBinaryServer(d, n)
	return n, nil
}

// Serve accepts binary-protocol connections on ln until Close,
// blocking like http.Server.Serve.
func (n *Node) Serve(ln net.Listener) error { return n.server.Serve(ln) }

// Close stops the binary server (abandoning in-flight local acquires
// and forwards), tears down every peer connection, and stops the
// local daemon's shard loops. It is idempotent.
func (n *Node) Close() error {
	err := n.server.Close()
	for _, name := range n.peerNames {
		n.peers[name].close()
	}
	n.daemon.Close()
	return err
}

// Daemon exposes the local daemon (the shards this node owns) for
// metrics and tests.
func (n *Node) Daemon() *arbd.Daemon { return n.daemon }

// Ring exposes the node's ring for tests and tooling.
func (n *Node) Ring() *Ring { return n.ring }

// Self returns this node's member record.
func (n *Node) Self() Member { return n.self }

// Owner resolves a configured resource to its owning member. ok is
// false for resources the cluster does not serve.
func (n *Node) Owner(resource string) (Member, bool) {
	owner, ok := n.owners[resource]
	if !ok {
		return Member{}, false
	}
	for _, m := range n.cfg.Members {
		if m.Name == owner {
			return m, true
		}
	}
	return Member{}, false
}

// Owns reports whether the local daemon serves resource. Unknown
// resources are handled locally too: the daemon's 404 names the
// resource, which beats a routing error from a node that also does
// not have it.
func (n *Node) Owns(resource string) bool {
	owner, ok := n.owners[resource]
	return !ok || owner == n.cfg.Self
}

// ForwardAcquire proxies an acquire to the owner: stamp or advance
// the route field, decrement the deadline for the hop, push the frame
// down the owner's pooled connection, and relay the terminal answer
// with an owner hint attached.
func (n *Node) ForwardAcquire(ctx context.Context, f arbd.ForwardFrame) arbd.ForwardReply {
	start := time.Now() //arblint:allow determinism forward latency is an operational metric, not simulation output
	timeout := f.Timeout
	if timeout > 0 {
		// Per-hop decrement: the owner must answer 408 before the
		// origin client's own deadline fires, or the client times out
		// with the request still queued on the owner. One eighth per
		// hop keeps a multi-hop chain monotonically tighter.
		timeout -= timeout / 8
	}
	rep, ok := n.forward(ctx, f, &codec.Frame{
		Type:      codec.TAcquire,
		Flags:     codec.FlagRouted,
		Agent:     uint32(f.Agent),
		TimeoutNS: int64(timeout),
		TTLNS:     int64(f.TTL),
		Resource:  []byte(f.Resource),
	})
	n.fwd.record(time.Since(start), rep.Type == codec.TError, ok)
	return rep
}

// ForwardRelease proxies a release to the owner.
func (n *Node) ForwardRelease(ctx context.Context, f arbd.ForwardFrame) arbd.ForwardReply {
	start := time.Now() //arblint:allow determinism forward latency is an operational metric, not simulation output
	rep, ok := n.forward(ctx, f, &codec.Frame{
		Type:     codec.TRelease,
		Flags:    codec.FlagRouted,
		Resource: []byte(f.Resource),
		Token:    []byte(f.Token),
	})
	n.fwd.record(time.Since(start), rep.Type == codec.TError, ok)
	return rep
}

// forward finishes route handling common to both verbs and performs
// the hop. ok reports whether the frame actually crossed the wire
// (local failures — hop limit, bad route, full queue — don't count as
// forward latency samples). The reply always carries the owner-hint
// route for the response relay.
func (n *Node) forward(ctx context.Context, f arbd.ForwardFrame, wire *codec.Frame) (arbd.ForwardReply, bool) {
	var hops uint8
	origin := []byte(n.cfg.Self)
	corr := f.Corr
	if f.Routed {
		// The frame already crossed a node: keep its origin stamp,
		// advance the hop count, and refuse to bounce past the limit —
		// two nodes forwarding to each other means their rings disagree,
		// and error beats orbit.
		h, o, c, ok := codec.ParseRequestRoute(f.Route)
		if !ok {
			return n.hint(f.Resource, arbd.ErrorReply(400, "cluster: malformed route field"), 0), false
		}
		hops, origin, corr = h, o, c
	}
	hops++
	if int(hops) > n.cfg.HopLimit {
		return n.hint(f.Resource, arbd.ErrorReply(503, fmt.Sprintf(
			"cluster: hop limit %d exceeded for %q (ring disagreement?)", n.cfg.HopLimit, f.Resource)), hops), false
	}
	wire.Route = codec.AppendRequestRoute(nil, hops, origin, corr)

	owner := n.owners[f.Resource]
	p := n.peers[owner]
	if p == nil {
		// Owns() said foreign, so the owner must be a peer; a miss here
		// is a programming error upstream, answered not crashed.
		return n.hint(f.Resource, arbd.ErrorReply(503, fmt.Sprintf("cluster: no peer for owner %q", owner)), hops), false
	}
	rep, crossed := p.call(ctx, wire)
	return n.hint(f.Resource, rep, hops), crossed
}

// hint attaches the owner hint the response relay carries back to the
// origin client (codec.AppendOwnerRoute layout): which member owns
// resource and where its binary listener is, so topology-aware
// clients stop needing the forward.
func (n *Node) hint(resource string, rep arbd.ForwardReply, hops uint8) arbd.ForwardReply {
	if m, ok := n.Owner(resource); ok {
		rep.Route = codec.AppendOwnerRoute(nil, hops, []byte(m.Name), []byte(m.Addr))
	} else {
		rep.Route = codec.AppendOwnerRoute(nil, hops, nil, nil)
	}
	return rep
}
