package grant

import (
	"testing"

	"busarb/internal/core"
	"busarb/internal/rng"
)

// The equivalence property: a grant.Scheduler is the simulators'
// protocol logic re-hosted in real time, so on the same deterministic
// arrival trace it must produce the same winner sequence as its
// internal/core counterpart driven the way internal/bussim drives it
// (OnRequest per arrival, Arbitrate over the ascending waiting set,
// repass re-arbitration, OnServiceStart for the winner). This is the
// contract that lets arbd claim the paper's fairness results transfer
// to the networked daemon.

// coreDriver adapts a core.Protocol to the Enqueue/Resolve surface,
// replaying bussim's calling convention with strictly increasing
// synthetic times (distinct wall-clock arrivals: over the network no
// two requests share FCFS2's a-incr sensing window).
type coreDriver struct {
	proto    core.Protocol
	pending  []bool
	npend    int
	now      float64
	repasses int64
	waiting  []int
}

func newCoreDriver(f core.Factory, n int) *coreDriver {
	return &coreDriver{proto: f(n), pending: make([]bool, n+1)}
}

func (d *coreDriver) tick() float64 { d.now++; return d.now }

func (d *coreDriver) enqueue(id int) {
	if d.pending[id] {
		return
	}
	d.pending[id] = true
	d.npend++
	d.proto.OnRequest(id, d.tick())
}

func (d *coreDriver) resolve() int {
	if d.npend == 0 {
		return 0
	}
	d.waiting = d.waiting[:0]
	for id := 1; id < len(d.pending); id++ {
		if d.pending[id] {
			d.waiting = append(d.waiting, id)
		}
	}
	out := d.proto.Arbitrate(d.waiting)
	for out.Repass {
		// bussim re-snapshots the (unchanged) request lines and runs a
		// fresh pass immediately.
		d.repasses++
		out = d.proto.Arbitrate(d.waiting)
	}
	w := out.Winner
	d.proto.OnServiceStart(w, d.tick())
	d.pending[w] = false
	d.npend--
	return w
}

// TestSchedulerMatchesSimulatorProtocol cross-checks every grant
// protocol against its simulator counterpart on randomized arrival
// traces: random interleavings of arrivals (random idle agent) and
// resolutions, over several agent counts and seeds.
func TestSchedulerMatchesSimulatorProtocol(t *testing.T) {
	const ops = 2000
	for _, name := range Names() {
		gf, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cf, err := core.ByName(name)
		if err != nil {
			t.Fatalf("core counterpart for %s: %v", name, err)
		}
		for _, n := range []int{2, 3, 5, 8, 16} {
			for seed := uint64(1); seed <= 3; seed++ {
				t.Run(name, func(t *testing.T) {
					src := rng.New(seed*1000 + uint64(n))
					sched := gf(n)
					driver := newCoreDriver(cf, n)
					grants := 0
					for op := 0; op < ops; op++ {
						// Bias toward arrivals so resolutions usually see
						// contention; resolve anyway when everyone is
						// already pending.
						if (src.Float64() < 0.6 && sched.Pending() < n) || sched.Pending() == 0 {
							id := 1 + src.Intn(n)
							for driver.pending[id] {
								id = 1 + src.Intn(n)
							}
							driver.enqueue(id)
							if !sched.Enqueue(id) {
								t.Fatalf("op %d: Enqueue(%d) dup against fresh arrival", op, id)
							}
							continue
						}
						want := driver.resolve()
						got := sched.Resolve()
						if got != want {
							t.Fatalf("op %d (grant %d): scheduler granted %d, simulator protocol granted %d",
								op, grants, got, want)
						}
						grants++
					}
					if grants < ops/4 {
						t.Fatalf("trace exercised only %d grants", grants)
					}
					if r, ok := sched.(Repasser); ok && r.Repasses() != driver.repasses {
						t.Errorf("repasses: scheduler %d, simulator %d", r.Repasses(), driver.repasses)
					}
				})
			}
		}
	}
}
