package grant

import (
	"testing"
)

// TestRR1RotationAtSaturation pins the round-robin scan: with every
// agent pending and each winner re-enqueued after its grant, RR1 must
// cycle N, N-1, ..., 1, N, ... — the §3.1 scan order.
func TestRR1RotationAtSaturation(t *testing.T) {
	const n = 5
	s := NewRR1(n)
	for id := 1; id <= n; id++ {
		s.Enqueue(id)
	}
	want := []int{5, 4, 3, 2, 1, 5, 4, 3, 2, 1}
	for i, w := range want {
		got := s.Resolve()
		if got != w {
			t.Fatalf("grant %d = agent %d, want %d", i, got, w)
		}
		s.Enqueue(got) // closed loop: the winner requests again
	}
}

// TestRR3MatchesRR1WithRepasses pins that RR3 produces RR1's grant
// sequence at saturation while charging empty passes: the first
// resolution (winner register 0) and every wrap of the scan cost one.
func TestRR3MatchesRR1WithRepasses(t *testing.T) {
	const n = 4
	s := NewRR3(n)
	for id := 1; id <= n; id++ {
		s.Enqueue(id)
	}
	want := []int{4, 3, 2, 1, 4, 3, 2, 1}
	for i, w := range want {
		got := s.Resolve()
		if got != w {
			t.Fatalf("grant %d = agent %d, want %d", i, got, w)
		}
		s.Enqueue(got)
	}
	// Empty passes: one at reset (winner register 0) and one per wrap
	// after agent 1 wins (nobody is below 1). The second wrap would be
	// charged by the ninth resolution, which never runs.
	if got := s.Repasses(); got != 2 {
		t.Errorf("repasses = %d, want 2 (reset + one wrap)", got)
	}
}

// TestFPStarvesLowIdentities pins the baseline's unfairness: with all
// agents saturated, FP grants only the highest identity.
func TestFPStarvesLowIdentities(t *testing.T) {
	const n = 6
	s := NewFP(n)
	for id := 1; id <= n; id++ {
		s.Enqueue(id)
	}
	for i := 0; i < 20; i++ {
		if w := s.Resolve(); w != n {
			t.Fatalf("grant %d went to agent %d, want %d", i, w, n)
		}
		s.Enqueue(n)
	}
}

// TestFCFS2ArrivalOrder pins exact arrival-order service, including an
// arrival order adversarial to static priority.
func TestFCFS2ArrivalOrder(t *testing.T) {
	s := NewFCFS2(8)
	order := []int{3, 6, 1, 5, 8, 2}
	for _, id := range order {
		s.Enqueue(id)
	}
	for i, want := range order {
		if got := s.Resolve(); got != want {
			t.Fatalf("grant %d = agent %d, want %d (arrival order)", i, got, want)
		}
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d after draining, want 0", s.Pending())
	}
}

// TestFCFS1SeniorityAccumulates pins the lose-counting rule: a loser's
// counter grows until it dominates fresher requests.
func TestFCFS1SeniorityAccumulates(t *testing.T) {
	s := NewFCFS1(4)
	s.Enqueue(1)
	s.Enqueue(4)
	if w := s.Resolve(); w != 4 {
		t.Fatalf("first grant = %d, want 4 (tie on counter 0 broken by identity)", w)
	}
	// Agent 1 lost once (counter 1); a fresh request from 4 (counter 0)
	// must now lose to it.
	s.Enqueue(4)
	if w := s.Resolve(); w != 1 {
		t.Fatalf("second grant = %d, want 1 (seniority)", w)
	}
}

// TestResolveEmptyReturnsZero pins the idle-bus contract for every
// protocol, including RR3 (no empty pass is charged when no agent is
// pending — arbitration only starts on a request).
func TestResolveEmptyReturnsZero(t *testing.T) {
	for _, name := range Names() {
		f, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s := f(4)
		if w := s.Resolve(); w != 0 {
			t.Errorf("%s: Resolve on empty = %d, want 0", name, w)
		}
		if r, ok := s.(Repasser); ok && r.Repasses() != 0 {
			t.Errorf("%s: empty Resolve charged %d repasses, want 0", name, r.Repasses())
		}
	}
}

// TestEnqueueSemantics pins idempotence, Pending accounting, Reset,
// and the out-of-range panic, for every protocol.
func TestEnqueueSemantics(t *testing.T) {
	for _, name := range Names() {
		f, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s := f(4)
		if !s.Enqueue(2) {
			t.Errorf("%s: first Enqueue(2) = false, want true", name)
		}
		if s.Enqueue(2) {
			t.Errorf("%s: duplicate Enqueue(2) = true, want false", name)
		}
		if s.Pending() != 1 {
			t.Errorf("%s: Pending = %d, want 1", name, s.Pending())
		}
		if w := s.Resolve(); w != 2 {
			t.Errorf("%s: Resolve = %d, want 2", name, w)
		}
		if s.Pending() != 0 {
			t.Errorf("%s: Pending after grant = %d, want 0", name, s.Pending())
		}
		s.Enqueue(3)
		s.Reset()
		if s.Pending() != 0 {
			t.Errorf("%s: Pending after Reset = %d, want 0", name, s.Pending())
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Enqueue(5) on n=4 did not panic", name)
				}
			}()
			s.Enqueue(5)
		}()
		if s.N() != 4 || s.Name() != name {
			t.Errorf("%s: N/Name mismatch: %d %q", name, s.N(), s.Name())
		}
	}
}

// TestByNameUnknown pins the error path and the registry listing.
func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("BOGUS"); err == nil {
		t.Error("ByName(BOGUS) succeeded")
	}
	want := []string{"FCFS1", "FCFS2", "FP", "RR1", "RR3"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

// TestSteadyStateAllocs guards the hot path: once the scheduler's
// buffers (and the contention arbiter's) have grown, a saturated
// enqueue/resolve cycle allocates nothing, for every protocol. The
// arbd shard loop leans on this — a per-grant allocation would be paid
// millions of times a day.
func TestSteadyStateAllocs(t *testing.T) {
	for _, n := range []int{8, 1024} { // small and kernel-scale
		for _, name := range Names() {
			f, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			s := f(n)
			cycle := func() {
				for id := 1; id <= n; id++ {
					s.Enqueue(id)
				}
				for s.Pending() > 0 {
					if s.Resolve() == 0 {
						t.Fatalf("%s: Resolve returned 0 with %d pending", name, s.Pending())
					}
				}
			}
			cycle() // warm the scratch buffers
			if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
				t.Errorf("%s/n=%d: steady-state enqueue/resolve cycle allocates %v times, want 0", name, n, allocs)
			}
		}
	}
}
