package grant

import (
	"fmt"
	"testing"
)

// BenchmarkGrantResolve measures one saturated grant through the
// wired-OR resolution — the arbd shard loop's per-tick cost — for each
// protocol. The hot path is alloc-guarded (TestSteadyStateAllocs pins
// 0); ReportAllocs keeps the trajectory honest in BENCH_*.json.
func BenchmarkGrantResolve(b *testing.B) {
	for _, name := range Names() {
		for _, n := range []int{8, 32, 64, 1024, 4096} {
			f, err := ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				s := f(n)
				for id := 1; id <= n; id++ {
					s.Enqueue(id)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w := s.Resolve()
					if w == 0 {
						b.Fatal("empty resolve at saturation")
					}
					s.Enqueue(w) // closed loop: winner re-requests
				}
			})
		}
	}
}
