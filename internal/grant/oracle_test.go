package grant

import (
	"fmt"
	"testing"

	"busarb/internal/rng"
)

// TestKernelMatchesSettleOracle is the tentpole equivalence contract:
// for every protocol, a kernel-mode scheduler and a settle-oracle twin
// (same type, oracle flag set, resolving through the boolean wired-OR
// contention model with composite ident numbers) replay the same random
// history of Enqueue/Resolve events and must produce bit-identical
// winner sequences — and, for RR3, identical repass counts. Agent
// counts straddle the 64-bit word boundaries and reach kernel scale.
func TestKernelMatchesSettleOracle(t *testing.T) {
	ns := []int{1, 2, 5, 63, 64, 65, 130, 1024}
	for _, name := range Names() {
		f, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range ns {
			if n > 200 && testing.Short() {
				continue
			}
			t.Run(fmt.Sprintf("%s/n=%d", name, n), func(t *testing.T) {
				kernel := f(n)
				oracle := f(n)
				oracle.(oracler).setOracle(true)

				src := rng.New(uint64(n)*1315423911 + uint64(len(name)))
				events := 400
				if n > 200 {
					events = 1200 // enough churn to wrap lastWinner / counters
				}
				for ev := 0; ev < events; ev++ {
					if src.Intn(3) != 0 || kernel.Pending() == 0 {
						agent := 1 + src.Intn(n)
						ke := kernel.Enqueue(agent)
						oe := oracle.Enqueue(agent)
						if ke != oe {
							t.Fatalf("event %d: Enqueue(%d) kernel=%v oracle=%v", ev, agent, ke, oe)
						}
						continue
					}
					kw := kernel.Resolve()
					ow := oracle.Resolve()
					if kw != ow {
						t.Fatalf("event %d: Resolve kernel=%d oracle=%d", ev, kw, ow)
					}
				}
				// Drain both to compare the full winner sequence.
				for kernel.Pending() > 0 {
					kw := kernel.Resolve()
					ow := oracle.Resolve()
					if kw != ow {
						t.Fatalf("drain: Resolve kernel=%d oracle=%d", kw, ow)
					}
				}
				if ow := oracle.Resolve(); ow != 0 {
					t.Fatalf("oracle still pending after kernel drained (next winner %d)", ow)
				}
				kr, kok := kernel.(Repasser)
				or, ook := oracle.(Repasser)
				if kok != ook {
					t.Fatalf("Repasser mismatch: kernel %v oracle %v", kok, ook)
				}
				if kok && kr.Repasses() != or.Repasses() {
					t.Fatalf("repasses: kernel=%d oracle=%d", kr.Repasses(), or.Repasses())
				}
			})
		}
	}
}

// TestOracleModeUsesSettle sanity-checks that the oracle flag actually
// changes the resolution machinery: an oracle-mode scheduler builds its
// contention arbiter lazily on first Resolve, a kernel-mode one never
// does.
func TestOracleModeUsesSettle(t *testing.T) {
	k := NewFP(8)
	o := NewFP(8)
	o.setOracle(true)
	k.Enqueue(3)
	o.Enqueue(3)
	if k.Resolve() != 3 || o.Resolve() != 3 {
		t.Fatal("wrong winner")
	}
	if k.arb != nil {
		t.Error("kernel-mode scheduler built a contention arbiter")
	}
	if o.arb == nil {
		t.Error("oracle-mode scheduler did not build a contention arbiter")
	}
}
