// Package grant re-hosts the paper's arbitration protocols (§3) as
// real-time grant schedulers: the same bit-level arbitration the
// simulators model in simulated time, driving grants of real shared
// resources in wall-clock time (the arbd daemon's shard loops).
//
// A Scheduler is the request-line side of one bus: Enqueue(agent)
// asserts agent's request line, Resolve() runs one parallel contention
// arbitration among the asserted lines and grants the winner. Resolve
// runs on the word-wide bitarb kernel — request lines are a bitmap
// (one bit per agent identity) and one arbitration is a handful of
// mask operations per 64 agents — which is what lifts the practical
// agent ceiling from tens to thousands. The original wired-OR settle
// resolution (internal/contention, composite arbitration numbers over
// ident layouts) is kept as the oracle: every scheduler can be flipped
// into oracle mode, and equivalence tests replay random histories
// through both resolutions requiring bit-identical winner sequences
// and repass counts. Property tests additionally pin each scheduler's
// winner sequence against its internal/core simulator counterpart.
//
// Schedulers are single-goroutine, like core.Protocol: the owner (one
// shard loop) serializes Enqueue and Resolve. Enqueue and Resolve are
// allocation-free in steady state (guarded by tests and by
// BenchmarkGrantResolve's ReportAllocs).
package grant

import (
	"fmt"
	"sort"

	"busarb/internal/bitarb"
	"busarb/internal/contention"
	"busarb/internal/ident"
)

// Scheduler is a real-time grant scheduler for one shared resource
// with agents 1..N.
type Scheduler interface {
	// Name returns the protocol's short name ("RR1", "FCFS2", ...).
	Name() string
	// N returns the number of agents the instance was built for.
	N() int
	// Enqueue asserts agent's request line. It reports whether the
	// line was newly asserted; enqueueing an already-pending agent is
	// a no-op returning false (one outstanding request per agent, the
	// paper's model — callers queue excess requests behind the line).
	// Enqueue panics on an agent outside 1..N.
	Enqueue(agent int) bool
	// Resolve runs one arbitration among the pending agents and
	// returns the winner's identity, removing it from the pending set
	// (the winner assumes resource mastership). It returns 0 when no
	// agent is pending — the idle bus, where no arbitration starts.
	Resolve() int
	// Pending returns the number of asserted request lines.
	Pending() int
	// Reset restores initial state (pending lines and protocol
	// registers cleared).
	Reset()
}

// Factory builds a scheduler for an n-agent resource.
type Factory func(n int) Scheduler

// Repasser is implemented by schedulers whose resolutions can include
// empty passes charged as extra arbitrations (RR3 §3.1). The counter
// is cumulative across Resolve calls.
type Repasser interface {
	Repasses() int64
}

// base carries the state every scheduler shares: the pending request
// lines as a kernel bitmap, and — in oracle mode only — the wired-OR
// contention arbiter the settle-model resolution runs on.
type base struct {
	n      int
	layout ident.Layout
	req    *bitarb.Vec // asserted request lines, bit i = agent i
	npend  int

	// oracle switches Resolve from the kernel to the boolean wired-OR
	// settle model. Set by equivalence tests (same package); the arb
	// and comps scratch are built lazily so kernel-mode schedulers at
	// thousands of agents never pay for the line bank.
	oracle bool
	arb    *contention.Arbitration
	comps  []contention.Competitor
}

func newBase(n int, layout ident.Layout) base {
	if n < 1 {
		panic(fmt.Sprintf("grant: need at least 1 agent, got %d", n))
	}
	return base{
		n:      n,
		layout: layout,
		req:    bitarb.NewVec(n),
	}
}

func (b *base) N() int       { return b.n }
func (b *base) Pending() int { return b.npend }

// setOracle flips the resolution model; used by equivalence tests via
// the oracler interface every scheduler satisfies through embedding.
func (b *base) setOracle(on bool) { b.oracle = on }

type oracler interface{ setOracle(on bool) }

func (b *base) enqueue(agent int) bool {
	if agent < 1 || agent > b.n {
		panic(fmt.Sprintf("grant: agent %d out of range 1..%d", agent, b.n))
	}
	if b.req.Test(agent) {
		return false
	}
	b.req.Set(agent)
	b.npend++
	return true
}

// grantWin removes a kernel-resolved winner from the pending set.
func (b *base) grantWin(w int) {
	b.req.Clear(w)
	b.npend--
}

func (b *base) reset() {
	b.req.Reset()
	b.npend = 0
}

// resolveOracle runs one wired-OR settle arbitration among the pending
// agents that satisfy eligible (nil means all), encoding each
// competitor's arbitration number with encode. It returns 0 if no agent
// competed; otherwise the winner is removed from the pending set. This
// is the oracle the kernel resolutions are validated against.
func (b *base) resolveOracle(eligible func(id int) bool, encode func(id int) uint64) int {
	if b.arb == nil {
		// Agent identities drive the bank directly, so it needs n+1
		// driver slots (identity 0 is reserved, §2.1).
		b.arb = contention.New(b.layout.TotalBits(), b.n+1)
		b.comps = make([]contention.Competitor, 0, b.n) //arblint:alloc lazy oracle setup, first resolve only
	}
	comps := b.comps[:0]
	for id := 1; id <= b.n; id++ {
		if b.req.Test(id) && (eligible == nil || eligible(id)) {
			comps = append(comps, contention.Competitor{Agent: id, Number: encode(id)})
		}
	}
	b.comps = comps
	if len(comps) == 0 {
		return 0
	}
	res := b.arb.Run(comps)
	w := comps[res.Winner].Agent
	b.grantWin(w)
	return w
}

// ---------------------------------------------------------------------
// Fixed priority (§2.1): the raw parallel contention arbiter.

// FP grants the highest pending static identity: maximally unfair
// under load, the baseline the paper's protocols fix (Table 4.1).
type FP struct{ base }

// NewFP returns a fixed-priority scheduler for n agents.
func NewFP(n int) *FP {
	return &FP{base: newBase(n, ident.LayoutFor(n))}
}

// Name implements Scheduler.
func (s *FP) Name() string { return "FP" }

// Enqueue implements Scheduler.
func (s *FP) Enqueue(agent int) bool { return s.enqueue(agent) }

// Resolve implements Scheduler. Kernel path: the maximum static
// identity is the highest set bit of the request bitmap.
func (s *FP) Resolve() int {
	if s.oracle {
		return s.resolveOracle(nil, func(id int) uint64 { //arblint:alloc oracle mode; the kernel path is closure-free
			return s.layout.Encode(ident.Number{Static: id})
		})
	}
	w := s.req.Max()
	if w < 0 {
		return 0
	}
	s.grantWin(w)
	return w
}

// Reset implements Scheduler.
func (s *FP) Reset() { s.reset() }

// ---------------------------------------------------------------------
// RR1 (§3.1, first implementation): the round-robin priority bit.

// RR1 adds one arbitration line carrying the round-robin bit: an agent
// asserts it when its identity is below the recorded previous winner,
// which realizes the scan j-1..1, N..j.
type RR1 struct {
	base
	lastWinner int
}

// NewRR1 returns the round-robin-priority-bit scheduler for n agents.
// The winner register starts at 0, so the first grant degenerates to
// fixed priority, exactly like hardware out of reset.
func NewRR1(n int) *RR1 {
	return &RR1{base: newBase(n, ident.Layout{StaticBits: ident.Width(n), RRBit: true})}
}

// Name implements Scheduler.
func (s *RR1) Name() string { return "RR1" }

// LastWinner returns the recorded identity of the most recent winner.
func (s *RR1) LastWinner() int { return s.lastWinner }

// Enqueue implements Scheduler.
func (s *RR1) Enqueue(agent int) bool { return s.enqueue(agent) }

// Resolve implements Scheduler. Kernel path: the RR bit is the MSB of
// the composite number, so agents below the previous winner outrank
// everyone else — the thermometer split MaxBelow(lastWinner), falling
// back to the plain maximum when that segment is empty.
func (s *RR1) Resolve() int {
	if s.oracle {
		w := s.resolveOracle(nil, func(id int) uint64 { //arblint:alloc oracle mode; the kernel path is closure-free
			return s.layout.Encode(ident.Number{Static: id, RR: id < s.lastWinner})
		})
		if w != 0 {
			s.lastWinner = w
		}
		return w
	}
	w := s.req.MaxBelow(s.lastWinner)
	if w < 0 {
		w = s.req.Max()
	}
	if w < 0 {
		return 0
	}
	s.grantWin(w)
	s.lastWinner = w
	return w
}

// Reset implements Scheduler.
func (s *RR1) Reset() { s.reset(); s.lastWinner = 0 }

// ---------------------------------------------------------------------
// RR3 (§3.1, third implementation): no extra line, occasional repass.

// RR3 inhibits agents at or above the previous winner; an empty pass
// (winning identity zero) makes every agent record N+1 and re-arbitrate
// immediately. Resolve folds the repass in — the caller sees one grant
// — and counts it, so the arbd loop can surface the extra arbitration
// the paper charges for.
type RR3 struct {
	base
	lastWinner int
	repasses   int64
}

// NewRR3 returns the no-extra-line scheduler for n agents. The winner
// register starts at 0, so the very first resolution is an empty pass.
func NewRR3(n int) *RR3 {
	return &RR3{base: newBase(n, ident.LayoutFor(n))}
}

// Name implements Scheduler.
func (s *RR3) Name() string { return "RR3" }

// LastWinner returns the recorded winner identity (N+1 right after an
// empty pass).
func (s *RR3) LastWinner() int { return s.lastWinner }

// Repasses implements Repasser.
func (s *RR3) Repasses() int64 { return s.repasses }

// Enqueue implements Scheduler.
func (s *RR3) Enqueue(agent int) bool { return s.enqueue(agent) }

// Resolve implements Scheduler. Kernel path: the inhibited arbitration
// is MaxBelow(lastWinner); an empty segment is the empty pass, after
// which lastWinner = N+1 uninhibits everyone and the repass is the
// plain maximum.
func (s *RR3) Resolve() int {
	if s.npend == 0 {
		return 0
	}
	if s.oracle {
		encode := func(id int) uint64 { //arblint:alloc oracle mode; the kernel path is closure-free
			return s.layout.Encode(ident.Number{Static: id})
		}
		w := s.resolveOracle(func(id int) bool { return id < s.lastWinner }, encode) //arblint:alloc oracle mode; the kernel path is closure-free
		if w == 0 {
			// Empty pass: every agent records N+1, a fresh uninhibited
			// arbitration follows at once (§3.1).
			s.lastWinner = s.n + 1
			s.repasses++
			w = s.resolveOracle(func(id int) bool { return id < s.lastWinner }, encode) //arblint:alloc oracle mode; the kernel path is closure-free
		}
		s.lastWinner = w
		return w
	}
	w := s.req.MaxBelow(s.lastWinner)
	if w < 0 {
		s.lastWinner = s.n + 1
		s.repasses++
		w = s.req.Max()
	}
	s.grantWin(w)
	s.lastWinner = w
	return w
}

// Reset implements Scheduler.
func (s *RR3) Reset() { s.reset(); s.lastWinner = 0; s.repasses = 0 }

// ---------------------------------------------------------------------
// FCFS1 (§3.2): waiting-time counter incremented on each lost
// arbitration.

// FCFS1 prepends a per-agent counter, incremented each time the agent
// loses an arbitration and cleared on enqueue and on a win, to the
// static identity. With one outstanding request per agent the counter
// never exceeds N-1, so ceil(log2 N) bits suffice (§3.2). The counters
// live as kernel bit-planes: the lose increment is one word-parallel
// saturating add over the request bitmap, O(counter bits) per 64
// agents.
type FCFS1 struct {
	base
	ctr *bitarb.Counters
}

// NewFCFS1 returns the lose-counting FCFS scheduler for n agents.
func NewFCFS1(n int) *FCFS1 {
	w := ident.Width(n)
	return &FCFS1{
		base: newBase(n, ident.Layout{StaticBits: w, CounterBits: w}),
		ctr:  bitarb.NewCounters(w, n),
	}
}

// Name implements Scheduler.
func (s *FCFS1) Name() string { return "FCFS1" }

// Counter returns agent id's waiting-time counter (for tests).
func (s *FCFS1) Counter(id int) int { return s.ctr.Get(id) }

// Enqueue implements Scheduler: a new request starts with counter 0.
func (s *FCFS1) Enqueue(agent int) bool {
	if !s.enqueue(agent) {
		return false
	}
	s.ctr.Zero(agent)
	return true
}

// Resolve implements Scheduler. Kernel path: the composite number is
// (counter, static identity) lexicographically, which is exactly the
// counter-plane tournament MaxIn (ties toward higher identity).
func (s *FCFS1) Resolve() int {
	var w int
	if s.oracle {
		w = s.resolveOracle(nil, func(id int) uint64 { //arblint:alloc oracle mode; the kernel path is closure-free
			return s.layout.Encode(ident.Number{Static: id, Counter: s.ctr.Get(id)})
		})
		if w == 0 {
			return 0
		}
	} else {
		w = s.ctr.MaxIn(s.req)
		if w < 0 {
			return 0
		}
		s.grantWin(w)
	}
	// "Lose" increments (saturating); the winner's counter is cleared.
	// The winner is already out of the request bitmap here.
	s.ctr.Zero(w)
	s.ctr.Inc(s.req)
	return w
}

// Reset implements Scheduler.
func (s *FCFS1) Reset() {
	s.reset()
	s.ctr.Reset()
}

// ---------------------------------------------------------------------
// FCFS2 (§3.2): the a-incr pulse on each arrival.

// FCFS2 counts arrivals instead of losses: each Enqueue pulses the
// shared a-incr line and every already-waiting agent increments its
// counter, so the counter ranks requests by arrival order exactly. In
// wall-clock serving each Enqueue is its own pulse — two requests
// share a counter value only if the daemon observed them in the same
// already-resolved state, the network analogue of §3.2's propagation
// window.
type FCFS2 struct {
	base
	ctr *bitarb.Counters
}

// NewFCFS2 returns the a-incr FCFS scheduler for n agents. The counter
// needs only ceil(log2 N) bits: with one outstanding request per
// agent, at most N-1 pulses can precede this agent's grant.
func NewFCFS2(n int) *FCFS2 {
	w := ident.Width(n)
	return &FCFS2{
		base: newBase(n, ident.Layout{StaticBits: w, CounterBits: w}),
		ctr:  bitarb.NewCounters(w, n),
	}
}

// Name implements Scheduler.
func (s *FCFS2) Name() string { return "FCFS2" }

// Counter returns agent id's waiting-time counter (for tests).
func (s *FCFS2) Counter(id int) int { return s.ctr.Get(id) }

// Enqueue implements Scheduler: the newcomer pulses a-incr, a single
// word-parallel saturating increment over the waiting bitmap.
func (s *FCFS2) Enqueue(agent int) bool {
	if agent < 1 || agent > s.n {
		panic(fmt.Sprintf("grant: agent %d out of range 1..%d", agent, s.n))
	}
	if s.req.Test(agent) {
		return false
	}
	s.ctr.Inc(s.req)
	s.ctr.Zero(agent)
	s.req.Set(agent)
	s.npend++
	return true
}

// Resolve implements Scheduler. Kernel path: same (counter, identity)
// tournament as FCFS1; the counters only move on arrivals.
func (s *FCFS2) Resolve() int {
	if s.oracle {
		return s.resolveOracle(nil, func(id int) uint64 { //arblint:alloc oracle mode; the kernel path is closure-free
			return s.layout.Encode(ident.Number{Static: id, Counter: s.ctr.Get(id)})
		})
	}
	w := s.ctr.MaxIn(s.req)
	if w < 0 {
		return 0
	}
	s.grantWin(w)
	return w
}

// Reset implements Scheduler.
func (s *FCFS2) Reset() {
	s.reset()
	s.ctr.Reset()
}

// ---------------------------------------------------------------------
// Registry.

var factories = map[string]Factory{
	"FP":    func(n int) Scheduler { return NewFP(n) },
	"RR1":   func(n int) Scheduler { return NewRR1(n) },
	"RR3":   func(n int) Scheduler { return NewRR3(n) },
	"FCFS1": func(n int) Scheduler { return NewFCFS1(n) },
	"FCFS2": func(n int) Scheduler { return NewFCFS2(n) },
}

// ByName returns the factory for a protocol name, or an error naming
// the valid choices.
func ByName(name string) (Factory, error) {
	if f, ok := factories[name]; ok {
		return f, nil
	}
	return nil, fmt.Errorf("grant: unknown protocol %q (have %v)", name, Names())
}

// Names returns the registered protocol names, sorted.
func Names() []string {
	names := make([]string, 0, len(factories))
	for name := range factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
