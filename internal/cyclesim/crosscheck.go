package cyclesim

import (
	"fmt"

	"busarb/internal/core"
	"busarb/internal/rng"
)

// crossShadow mirrors the Bus tick state machine but selects winners
// via an abstract core.Protocol, so the two can be driven through an
// identical request history and compared grant-for-grant.
type crossShadow struct {
	proto      core.Protocol
	n          int
	waiting    []bool
	busyTicks  int
	nextMaster int
	arbNeeded  bool
	tick       int64
	reqSeq     float64
	grants     []int
}

func newCrossShadow(p core.Protocol) *crossShadow {
	return &crossShadow{proto: p, n: p.N(), waiting: make([]bool, p.N()+1)}
}

func (s *crossShadow) request(id int) {
	s.waiting[id] = true
	// Strictly increasing timestamps: arrivals within one tick are
	// distinct a-incr pulses, matching the Bus's Request semantics.
	s.reqSeq += 0.001
	s.proto.OnRequest(id, float64(s.tick)+s.reqSeq)
}

func (s *crossShadow) waitingIDs() []int {
	var ids []int
	for id := 1; id <= s.n; id++ {
		if s.waiting[id] {
			ids = append(ids, id)
		}
	}
	return ids
}

func (s *crossShadow) step() {
	if s.busyTicks == 0 && s.nextMaster != 0 {
		id := s.nextMaster
		s.nextMaster = 0
		s.waiting[id] = false
		s.busyTicks = 2
		s.grants = append(s.grants, id)
		s.proto.OnServiceStart(id, float64(s.tick))
	}
	if s.nextMaster == 0 && len(s.waitingIDs()) > 0 {
		justStarted := s.busyTicks == 2
		idle := s.busyTicks == 0
		if justStarted || idle || s.arbNeeded {
			out := s.proto.Arbitrate(s.waitingIDs())
			if out.Repass {
				s.arbNeeded = true
			} else {
				s.arbNeeded = false
				s.nextMaster = out.Winner
			}
		}
	}
	if s.busyTicks > 0 {
		s.busyTicks--
	}
	s.tick++
}

// CrossCheck drives the line-level Bus for kind and the abstract
// protocol from factory through identical random request histories and
// returns an error on the first grant-sequence divergence. It is the
// production form of the package's shadow-replay test, exposed so
// arbverify can cross-validate the two model layers on demand.
func CrossCheck(kind Kind, factory core.Factory, n, trials, ticks int, seed uint64) error {
	if n < 2 {
		return fmt.Errorf("cyclesim: cross-check needs at least 2 agents, got %d", n)
	}
	if trials <= 0 || ticks <= 0 {
		return fmt.Errorf("cyclesim: cross-check needs positive trials and ticks, got %d and %d", trials, ticks)
	}
	src := rng.New(seed)
	for trial := 0; trial < trials; trial++ {
		bus := New(kind, n)
		shadow := newCrossShadow(factory(n))
		for tick := 0; tick < ticks; tick++ {
			for k := 0; k < 1+src.Intn(2); k++ {
				if src.Intn(3) == 0 {
					id := 1 + src.Intn(n)
					if !bus.Waiting(id) && !shadow.waiting[id] {
						bus.Request(id)
						shadow.request(id)
					}
				}
			}
			bus.Step()
			shadow.step()
		}
		got := bus.GrantOrder()
		want := shadow.grants
		if len(got) != len(want) {
			return fmt.Errorf("cyclesim: %v n=%d trial %d: %d line-level grants vs %d abstract",
				kind, n, trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("cyclesim: %v n=%d trial %d: grant %d is agent %d (lines) vs %d (abstract)",
					kind, n, trial, i, got[i], want[i])
			}
		}
	}
	return nil
}
