package cyclesim

import (
	"math"
	"testing"

	"busarb/internal/bussim"
	"busarb/internal/core"
	"busarb/internal/dist"
	"busarb/internal/rng"
)

// TestTimingMatchesQueueingModel validates the two simulators against
// each other numerically, not just in grant order: a cycle-level bus
// fed Bernoulli arrivals (probability p per tick per idle agent) must
// produce the same mean residence time as the continuous queueing
// model with the equivalent think-time distribution (geometric with
// mean 1/p ticks ≈ exponential with mean 0.5/p time units; at small p
// the CVs coincide).
func TestTimingMatchesQueueingModel(t *testing.T) {
	const (
		n = 8
		p = 0.05 // per-tick request probability; mean think = 10 ticks
	)
	src := rng.New(91)
	bus := New(RR1, n)
	reqTick := make([]int64, n+1)
	var waits []float64
	idle := make([]bool, n+1)
	for id := 1; id <= n; id++ {
		idle[id] = true
	}
	const ticks = 400000
	for tick := int64(0); tick < ticks; tick++ {
		for id := 1; id <= n; id++ {
			if idle[id] && src.Float64() < p {
				idle[id] = false
				reqTick[id] = tick
				bus.Request(id)
			}
		}
		if g := bus.Step(); g != nil {
			// Completion is two ticks after the grant; residence in
			// continuous time units is half the tick count.
			w := float64(g.StartTick+2-reqTick[g.Agent]) / 2
			waits = append(waits, w)
			idle[g.Agent] = true
		}
	}
	sum := 0.0
	// Discard a warm-up prefix.
	warm := len(waits) / 10
	for _, w := range waits[warm:] {
		sum += w
	}
	cycleW := sum / float64(len(waits)-warm)

	// The equivalent continuous model: geometric think with mean 1/p
	// ticks = 10 ticks = 5.0 time units.
	rr, _ := core.ByName("RR1")
	res := bussim.Run(bussim.Config{
		N:        n,
		Protocol: rr,
		Inter:    replicateSampler(dist.Exponential{MeanValue: 0.5 / p}, n),
		Seed:     92,
		Batches:  8, BatchSize: 4000,
		// The cycle-level bus arbitrates only at transaction boundaries
		// or on an idle bus; run the continuous model under the same
		// discipline so the comparison isolates the discretization.
		BoundaryArbOnly: true,
	})
	contW := res.WaitMean.Mean

	if rel := math.Abs(cycleW-contW) / contW; rel > 0.10 {
		t.Errorf("cycle-level W = %.3f vs queueing-level W = %.3f (%.1f%% apart)",
			cycleW, contW, 100*rel)
	} else {
		t.Logf("cycle-level W = %.3f, queueing-level W = %.3f (%.1f%% apart, %d grants)",
			cycleW, contW, 100*math.Abs(cycleW-contW)/contW, len(waits))
	}
}

func replicateSampler(d dist.Sampler, n int) []dist.Sampler {
	out := make([]dist.Sampler, n)
	for i := range out {
		out[i] = d
	}
	return out
}
