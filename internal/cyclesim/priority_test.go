package cyclesim

import (
	"testing"

	"busarb/internal/core"
	"busarb/internal/rng"
)

func TestNewPriorityRejectsUnsupportedKinds(t *testing.T) {
	for _, kind := range []Kind{RR2, RR3, AAP1, AAP2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPriority(%v) did not panic", kind)
				}
			}()
			NewPriority(kind, 4)
		}()
	}
}

func TestRequestUrgentNeedsPriorityBus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RequestUrgent on plain bus did not panic")
		}
	}()
	New(RR1, 4).Request(1)
	New(RR1, 4).RequestUrgent(2)
}

func TestUrgentWinsAtLineLevel(t *testing.T) {
	b := NewPriority(RR1, 8)
	b.Request(7)       // normal, high identity
	b.RequestUrgent(2) // urgent, low identity
	if err := b.RunUntilIdle(40); err != nil {
		t.Fatal(err)
	}
	got := b.GrantOrder()
	if len(got) != 2 || got[0] != 2 || got[1] != 7 {
		t.Fatalf("order = %v, want [2 7] (urgent first)", got)
	}
}

func TestFCFS2PriorityDualLines(t *testing.T) {
	b := NewPriority(FCFS2, 8)
	b.Request(3) // normal waits
	b.Step()     // its idle arbitration resolves; transfer next tick
	// A later urgent arrival must not bump 3's counter (wrong-class
	// pulse), and is served before any further normal requests anyway.
	b.RequestUrgent(6)
	b.Request(2)
	if err := b.RunUntilIdle(60); err != nil {
		t.Fatal(err)
	}
	got := b.GrantOrder()
	want := []int{3, 6, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// The line-level priority machines must grant in exactly the order of
// the abstract priority protocols (the tick-shadow equivalence, now for
// mixed-class traffic).
func TestLineLevelPriorityMatchesAbstract(t *testing.T) {
	pairs := []struct {
		kind Kind
		mk   func(n int) core.ClassRequester
	}{
		{RR1, func(n int) core.ClassRequester { return core.NewPriorityRR(n, core.RRIgnoreWithinClass) }},
		{FCFS1, func(n int) core.ClassRequester { return core.NewPriorityFCFS1(n, core.CounterOverflow) }},
		{FCFS2, func(n int) core.ClassRequester { return core.NewPriorityFCFS2(n) }},
	}
	src := rng.New(4321)
	for _, pair := range pairs {
		for trial := 0; trial < 20; trial++ {
			n := 2 + src.Intn(10)
			bus := NewPriority(pair.kind, n)
			proto := pair.mk(n)
			shadow := newShadow(proto)
			for tick := 0; tick < 300; tick++ {
				if src.Intn(3) == 0 {
					id := 1 + src.Intn(n)
					if !bus.Waiting(id) && !shadow.waiting[id] {
						urgent := src.Intn(3) == 0
						if urgent {
							bus.RequestUrgent(id)
						} else {
							bus.Request(id)
						}
						shadow.waiting[id] = true
						shadow.reqSeq += 0.001
						proto.OnClassRequest(id, float64(shadow.tick)+shadow.reqSeq, urgent)
					}
				}
				bus.Step()
				shadow.step()
			}
			got := bus.GrantOrder()
			want := shadow.grants
			if len(got) != len(want) {
				t.Fatalf("%v+prio n=%d trial %d: %d grants vs %d", pair.kind, n, trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v+prio n=%d trial %d: grant %d = %d (lines) vs %d (abstract)\nlines:    %v\nabstract: %v",
						pair.kind, n, trial, i, got[i], want[i], got, want)
				}
			}
		}
	}
}
