package cyclesim

import (
	"fmt"
	"testing"
)

// TestKernelScaleRuns drives the line-level model at the agent counts
// the bit-parallel arbitration kernel unlocked: 1024 agents (and 4096
// without -short). The contention settle at these widths runs the
// word-wide fast path; the runs must stay deterministic and grant work.
func TestKernelScaleRuns(t *testing.T) {
	ns := []int{1024}
	if !testing.Short() {
		ns = append(ns, 4096)
	}
	for _, n := range ns {
		for _, kind := range []Kind{RR1, RR3, FCFS2} {
			t.Run(fmt.Sprintf("%v/n=%d", kind, n), func(t *testing.T) {
				cfg := Config{Protocol: kind, N: n, Seed: 17, Horizon: 4000, ReqProb: 1}
				a := Run(cfg)
				if len(a.Grants) == 0 || a.Arbitrations == 0 {
					t.Fatalf("no work at scale: %d grants, %d arbitrations", len(a.Grants), a.Arbitrations)
				}
				b := Run(cfg)
				if len(a.Grants) != len(b.Grants) || a.Arbitrations != b.Arbitrations ||
					a.SettleRounds != b.SettleRounds {
					t.Fatal("same seed, different runs at scale")
				}
			})
		}
	}
}
