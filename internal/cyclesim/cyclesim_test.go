package cyclesim

import (
	"testing"

	"busarb/internal/core"
	"busarb/internal/rng"
)

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		FP: "FP", RR1: "RR1", RR2: "RR2", RR3: "RR3",
		FCFS1: "FCFS1", FCFS2: "FCFS2", AAP1: "AAP1", AAP2: "AAP2",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind string = %q", Kind(99).String())
	}
}

func TestIdleArbitrationTiming(t *testing.T) {
	b := New(FP, 4)
	b.Request(3)
	g := b.Step() // arbitration tick (exposed)
	if g != nil {
		t.Fatal("grant during arbitration tick")
	}
	g = b.Step() // transfer starts
	if g == nil || g.Agent != 3 || g.StartTick != 1 {
		t.Fatalf("grant = %+v, want agent 3 at tick 1", g)
	}
	if b.Waiting(3) {
		t.Error("granted agent still waiting")
	}
}

func TestOverlappedArbitrationTiming(t *testing.T) {
	b := New(FP, 4)
	b.Request(1)
	b.Request(2)
	b.Step() // arbitration (idle)
	g := b.Step()
	if g == nil || g.Agent != 2 {
		t.Fatalf("first grant = %+v, want 2", g)
	}
	// Agent 1's arbitration overlaps the transfer: grant exactly 2 ticks
	// after the previous one (no exposed arbitration): the transfer
	// occupies ticks 1-2 and the next starts at tick 3.
	b.Step()
	g = b.Step()
	if g == nil || g.Agent != 1 || g.StartTick != 3 {
		t.Fatalf("second grant = %+v, want agent 1 at tick 3 (back-to-back)", g)
	}
}

func TestRR3EmptyPassCostsOneTick(t *testing.T) {
	b := New(RR3, 4)
	b.Request(3)
	// lastWin starts 0, so the first pass is empty: one extra tick.
	b.Step() // empty pass
	b.Step() // real pass
	g := b.Step()
	if g == nil || g.Agent != 3 || g.StartTick != 2 {
		t.Fatalf("grant = %+v, want agent 3 at tick 2 (one extra tick)", g)
	}
	if b.EmptyPasses != 1 {
		t.Errorf("EmptyPasses = %d, want 1", b.EmptyPasses)
	}
}

func TestSaturatedRoundRobinOrder(t *testing.T) {
	const n = 6
	b := New(RR1, n)
	for id := 1; id <= n; id++ {
		b.Request(id)
	}
	var order []int
	for tick := 0; tick < 200 && len(order) < 3*n; tick++ {
		if g := b.Step(); g != nil {
			order = append(order, g.Agent)
			b.Request(g.Agent) // saturated
		}
	}
	want := []int{6, 5, 4, 3, 2, 1, 6, 5, 4, 3, 2, 1, 6, 5, 4, 3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFCFS2ServesInArrivalOrder(t *testing.T) {
	b := New(FCFS2, 8)
	b.Request(2)
	b.Step() // idle arbitration for 2
	b.Request(7)
	b.Request(5)
	var order []int
	for tick := 0; tick < 40 && len(order) < 3; tick++ {
		if g := b.Step(); g != nil {
			order = append(order, g.Agent)
		}
	}
	// 2 first (only requester at its arbitration); then 7 before 5?
	// Both 7 and 5 arrived between ticks, 7 first: its counter is
	// higher after 5's a-incr pulse.
	if len(order) != 3 || order[0] != 2 || order[1] != 7 || order[2] != 5 {
		t.Fatalf("order = %v, want [2 7 5]", order)
	}
}

func TestSettleRoundsAccumulate(t *testing.T) {
	b := New(FP, 8)
	b.Request(1)
	b.Request(5)
	b.Step()
	if b.Arbitrations == 0 || b.SettleRounds == 0 {
		t.Errorf("arbs=%d settle=%d, want > 0", b.Arbitrations, b.SettleRounds)
	}
}

func TestRequestTwicePanics(t *testing.T) {
	b := New(FP, 2)
	b.Request(1)
	defer func() {
		if recover() == nil {
			t.Error("double request did not panic")
		}
	}()
	b.Request(1)
}

func TestRunUntilIdle(t *testing.T) {
	b := New(RR1, 4)
	b.Request(1)
	b.Request(4)
	if err := b.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if got := b.GrantOrder(); len(got) != 2 {
		t.Fatalf("grants = %v", got)
	}
	// A bus that is never idle reports the bound.
	b2 := New(FP, 2)
	b2.Request(1)
	b2.Request(2)
	// Keep re-requesting inside the loop is impossible here, so just
	// check the error path with 0 budget.
	if err := b2.RunUntilIdle(0); err == nil {
		t.Error("want error with zero tick budget")
	}
}

// tickShadow mirrors the Bus tick state machine but selects winners via
// an abstract core.Protocol. Grant-order equality between Bus and its
// shadow proves the line-level register/comparator/wired-OR hardware
// implements exactly the abstract protocol.
type tickShadow struct {
	proto      core.Protocol
	n          int
	waiting    map[int]bool
	busyTicks  int
	nextMaster int
	arbNeeded  bool
	tick       int64
	reqSeq     float64
	grants     []int
}

func newShadow(p core.Protocol) *tickShadow {
	return &tickShadow{proto: p, n: p.N(), waiting: map[int]bool{}}
}

func (s *tickShadow) request(id int) {
	if s.waiting[id] {
		panic("shadow: double request")
	}
	s.waiting[id] = true
	// Strictly increasing timestamps: arrivals within one tick are
	// distinct a-incr pulses, matching cyclesim's Request semantics.
	s.reqSeq += 0.001
	s.proto.OnRequest(id, float64(s.tick)+s.reqSeq)
}

func (s *tickShadow) waitingIDs() []int {
	var ids []int
	for id := 1; id <= s.n; id++ {
		if s.waiting[id] {
			ids = append(ids, id)
		}
	}
	return ids
}

func (s *tickShadow) step() {
	if s.busyTicks == 0 && s.nextMaster != 0 {
		id := s.nextMaster
		s.nextMaster = 0
		s.waiting[id] = false
		s.busyTicks = 2
		s.grants = append(s.grants, id)
		s.proto.OnServiceStart(id, float64(s.tick))
	}
	if s.nextMaster == 0 && len(s.waitingIDs()) > 0 {
		justStarted := s.busyTicks == 2
		idle := s.busyTicks == 0
		if justStarted || idle || s.arbNeeded {
			out := s.proto.Arbitrate(s.waitingIDs())
			if out.Repass {
				s.arbNeeded = true
			} else {
				s.arbNeeded = false
				s.nextMaster = out.Winner
			}
		}
	}
	if s.busyTicks > 0 {
		s.busyTicks--
	}
	s.tick++
}

// TestLineLevelMatchesAbstract drives the wired-OR hardware model and
// the abstract protocol through identical random request histories and
// requires identical grant sequences.
func TestLineLevelMatchesAbstract(t *testing.T) {
	pairs := []struct {
		kind Kind
		mk   func(n int) core.Protocol
	}{
		{FP, func(n int) core.Protocol { return core.NewFixedPriority(n) }},
		{RR1, func(n int) core.Protocol { return core.NewRR1(n) }},
		{RR2, func(n int) core.Protocol { return core.NewRR2(n) }},
		{RR3, func(n int) core.Protocol { return core.NewRR3(n) }},
		{FCFS1, func(n int) core.Protocol { return core.NewFCFS1(n) }},
		{FCFS2, func(n int) core.Protocol { return core.NewFCFS2(n) }},
		{AAP1, func(n int) core.Protocol { return core.NewAAP1(n) }},
		{AAP2, func(n int) core.Protocol { return core.NewAAP2(n) }},
	}
	src := rng.New(1234)
	for _, pair := range pairs {
		for trial := 0; trial < 25; trial++ {
			n := 2 + src.Intn(12)
			bus := New(pair.kind, n)
			shadow := newShadow(pair.mk(n))
			for tick := 0; tick < 400; tick++ {
				// Random arrivals before this tick.
				for k := 0; k < 1+src.Intn(2); k++ {
					if src.Intn(3) == 0 {
						id := 1 + src.Intn(n)
						if !bus.Waiting(id) && !shadow.waiting[id] {
							bus.Request(id)
							shadow.request(id)
						}
					}
				}
				bus.Step()
				shadow.step()
			}
			got := bus.GrantOrder()
			want := shadow.grants
			if len(got) != len(want) {
				t.Fatalf("%v n=%d trial %d: %d grants vs %d", pair.kind, n, trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v n=%d trial %d: grant %d = %d (lines) vs %d (abstract)\nlines:    %v\nabstract: %v",
						pair.kind, n, trial, i, got[i], want[i], got, want)
				}
			}
		}
	}
}

func TestAAP1LineLevelBatching(t *testing.T) {
	b := New(AAP1, 8)
	b.Request(2)
	b.Step() // idle arbitration: 2 wins alone
	// Mid-batch arrivals wait for the boundary.
	b.Request(6)
	b.Request(4)
	var order []int
	for tick := 0; tick < 40 && len(order) < 3; tick++ {
		if g := b.Step(); g != nil {
			order = append(order, g.Agent)
		}
	}
	want := []int{2, 6, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestAAP2LineLevelInhibitAndRelease(t *testing.T) {
	b := New(AAP2, 8)
	b.Request(7)
	b.Request(4)
	var order []int
	step := func(max int) {
		for tick := 0; tick < max; tick++ {
			if g := b.Step(); g != nil {
				order = append(order, g.Agent)
				if g.Agent == 7 && len(order) == 1 {
					// 7 immediately re-requests while inhibited.
					b.Request(7)
				}
			}
		}
	}
	step(40)
	// 7 first, then 4 (7's re-request is inhibited), then the fairness
	// release lets 7 through.
	want := []int{7, 4, 7}
	if len(order) < 3 {
		t.Fatalf("only %d grants: %v", len(order), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRR2LowRequestLine(t *testing.T) {
	b := New(RR2, 8)
	b.Request(4)
	b.Request(6)
	b.RunUntilIdle(20)
	// lastWin = 4 now (6 then 4). A new pair: 2 (below 4, asserts
	// low-request) vs 8.
	b.Request(8)
	b.Request(2)
	if err := b.RunUntilIdle(20); err != nil {
		t.Fatal(err)
	}
	got := b.GrantOrder()
	want := []int{6, 4, 2, 8}
	if len(got) != 4 {
		t.Fatalf("grants = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v (low-request gating)", got, want)
		}
	}
}
