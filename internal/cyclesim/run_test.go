package cyclesim

import (
	"strings"
	"testing"

	"busarb/internal/core"
	"busarb/internal/obs"
)

func TestKindByName(t *testing.T) {
	for _, name := range KindNames() {
		k, err := KindByName(name)
		if err != nil {
			t.Fatalf("KindByName(%q): %v", name, err)
		}
		if k.String() != name {
			t.Errorf("KindByName(%q) = %v", name, k)
		}
	}
	_, err := KindByName("Hybrid")
	if err == nil {
		t.Fatal("KindByName(Hybrid) succeeded; Hybrid has no line-level model")
	}
	for _, name := range KindNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not enumerate %q", err, name)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Protocol: RR2, N: 6, Seed: 42, Horizon: 500}
	a := Run(cfg)
	b := Run(cfg)
	if len(a.Grants) != len(b.Grants) || a.Arbitrations != b.Arbitrations ||
		a.BusyTicks != b.BusyTicks {
		t.Fatalf("same seed, different runs: %+v vs %+v", a, b)
	}
	for i := range a.Grants {
		if a.Grants[i] != b.Grants[i] {
			t.Fatalf("grant %d differs: %+v vs %+v", i, a.Grants[i], b.Grants[i])
		}
	}
	s := a.Summary()
	if s.Simulator != "cyclesim" || s.Protocol != "RR2" || s.N != 6 ||
		s.Grants != int64(len(a.Grants)) {
		t.Errorf("summary = %+v", s)
	}
	if s.Utilization <= 0 || s.Utilization > 1 {
		t.Errorf("utilization = %v", s.Utilization)
	}
}

func TestRunObserverSeesGrants(t *testing.T) {
	var buf obs.Buffer
	cfg := Config{Protocol: RR1, N: 4, Seed: 7, Horizon: 200, Observer: &buf}
	res := Run(cfg)
	starts := 0
	for _, e := range buf.Events() {
		if e.Kind == obs.ServiceStart {
			starts++
		}
	}
	if starts != len(res.Grants) {
		t.Errorf("%d ServiceStart events, %d grants", starts, len(res.Grants))
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Protocol: Kind(99), N: 4, Horizon: 100},
		{Protocol: RR1, N: 1, Horizon: 100},
		{Protocol: RR1, N: 4, Horizon: 0},
		{Protocol: RR1, N: 4, Horizon: 100, ReqProb: 1.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, cfg)
		}
	}
	good := Config{Protocol: RR1, N: 4, Horizon: 100}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestCrossCheckRR2(t *testing.T) {
	if err := CrossCheck(RR2, func(n int) core.Protocol { return core.NewRR2(n) },
		6, 10, 300, 99); err != nil {
		t.Fatalf("line-level RR2 diverges from abstract RR2: %v", err)
	}
}

func TestCrossCheckDetectsMismatch(t *testing.T) {
	// Deliberately pair the RR1 hardware with the FP abstract protocol:
	// they must diverge, proving the checker can fail.
	err := CrossCheck(RR1, func(n int) core.Protocol { return core.NewFixedPriority(n) },
		6, 10, 300, 99)
	if err == nil {
		t.Fatal("CrossCheck(RR1 lines vs FP abstract) reported a match")
	}
}

func TestCrossCheckRejectsBadArgs(t *testing.T) {
	f := func(n int) core.Protocol { return core.NewRR1(n) }
	if err := CrossCheck(RR1, f, 1, 5, 100, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if err := CrossCheck(RR1, f, 4, 0, 100, 1); err == nil {
		t.Error("trials=0 accepted")
	}
}
