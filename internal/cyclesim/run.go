package cyclesim

import (
	"fmt"

	"busarb/internal/obs"
	"busarb/internal/rng"
)

// kindNames is the name → Kind table, in display order.
var kindNames = []struct {
	name string
	kind Kind
}{
	{"FP", FP}, {"RR1", RR1}, {"RR2", RR2}, {"RR3", RR3},
	{"FCFS1", FCFS1}, {"FCFS2", FCFS2}, {"AAP1", AAP1}, {"AAP2", AAP2},
}

// KindNames returns the protocol names with a line-level model, in
// display order.
func KindNames() []string {
	out := make([]string, len(kindNames))
	for i, kn := range kindNames {
		out[i] = kn.name
	}
	return out
}

// KindByName maps a protocol name to its line-level Kind. The error
// enumerates the supported names.
func KindByName(name string) (Kind, error) {
	for _, kn := range kindNames {
		if kn.name == name {
			return kn.kind, nil
		}
	}
	return 0, fmt.Errorf("cyclesim: no line-level model for %q (supported: %v)",
		name, KindNames())
}

// Config drives a cycle-level bus under Bernoulli request arrivals:
// the line-level counterpart of a bussim run, sharing the unified
// Protocol/Seed/Observer/Horizon configuration shape.
type Config struct {
	// Protocol selects the line-level protocol implementation.
	Protocol Kind
	// N is the number of agents (>= 2).
	N int
	// Seed drives the request arrivals; runs are reproducible.
	Seed uint64
	// Observer, if non-nil, receives the event stream. Times are in
	// ticks — half bus transactions, this model's native unit.
	Observer obs.Probe
	// Horizon is the number of ticks to simulate (required, positive).
	Horizon float64
	// ReqProb is the per-tick probability that one randomly chosen
	// agent issues a request (skipped if it is already waiting); 0
	// means the default 1/3.
	ReqProb float64
}

// Validate checks the configuration without running it; Run panics on
// exactly these errors.
func (cfg Config) Validate() error {
	if cfg.Protocol < FP || cfg.Protocol > AAP2 {
		return fmt.Errorf("cyclesim: unknown protocol kind %d", int(cfg.Protocol))
	}
	if cfg.N < 2 {
		return fmt.Errorf("cyclesim: need at least 2 agents, got %d", cfg.N)
	}
	if cfg.Horizon <= 0 {
		return fmt.Errorf("cyclesim: positive Horizon (ticks) required, got %v", cfg.Horizon)
	}
	if cfg.ReqProb < 0 || cfg.ReqProb > 1 {
		return fmt.Errorf("cyclesim: ReqProb %v out of [0,1]", cfg.ReqProb)
	}
	return nil
}

// RunResult reports a cycle-level run's measurements.
type RunResult struct {
	Protocol Kind
	N        int
	// Ticks is the number of ticks simulated.
	Ticks int64
	// Grants holds every bus mastership, in order.
	Grants []Grant
	// BusyTicks counts ticks the bus spent transferring.
	BusyTicks int64
	// Arbitrations, EmptyPasses, and SettleRounds mirror the Bus
	// counters: passes run, RR3 empty passes, wired-OR settle rounds.
	Arbitrations int64
	EmptyPasses  int64
	SettleRounds int64
}

// Summary implements the cross-simulator Report surface.
func (r *RunResult) Summary() obs.Summary {
	util := 0.0
	if r.Ticks > 0 {
		util = float64(r.BusyTicks) / float64(r.Ticks)
	}
	return obs.Summary{
		Simulator:   "cyclesim",
		Protocol:    r.Protocol.String(),
		N:           r.N,
		Time:        float64(r.Ticks),
		Grants:      int64(len(r.Grants)),
		Utilization: util,
	}
}

// Run executes the cycle-level simulation described by cfg.
func Run(cfg Config) *RunResult {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := cfg.ReqProb
	if p == 0 {
		p = 1.0 / 3
	}
	bus := New(cfg.Protocol, cfg.N)
	bus.Observer = cfg.Observer
	src := rng.New(cfg.Seed)
	ticks := int64(cfg.Horizon)
	for tick := int64(0); tick < ticks; tick++ {
		if src.Float64() < p {
			id := 1 + src.Intn(cfg.N)
			if !bus.Waiting(id) {
				bus.Request(id)
			}
		}
		bus.Step()
	}
	res := &RunResult{
		Protocol:     cfg.Protocol,
		N:            cfg.N,
		Ticks:        ticks,
		Grants:       bus.Grants(),
		Arbitrations: bus.Arbitrations,
		EmptyPasses:  bus.EmptyPasses,
		SettleRounds: bus.SettleRounds,
	}
	for _, g := range res.Grants {
		// A transfer occupies two ticks; the horizon may cut the last
		// one short.
		busy := int64(2)
		if left := ticks - g.StartTick; left < busy {
			busy = left
		}
		res.BusyTicks += busy
	}
	return res
}
