// Package cyclesim is a cycle-level model of the arbitrated bus: the
// protocols are implemented the way the paper's hardware would build
// them — per-agent registers and comparators assembling arbitration
// numbers that are resolved on real wired-OR lines by the Taub settle
// process (package contention) — rather than as the abstract scheduling
// rules of package core.
//
// Time advances in ticks of half a bus transaction: an arbitration takes
// one tick (the paper's 0.5) and a transfer two. An arbitration is run
// in the first tick of a transfer when the shared request line is high
// (fully overlapped), or on an idle bus, where its tick is exposed.
//
// The package exists to cross-validate the two abstraction levels:
// tests assert that for identical request histories the line-level
// machines grant the bus in exactly the order the abstract protocols do.
package cyclesim

import (
	"fmt"

	"busarb/internal/contention"
	"busarb/internal/ident"
	"busarb/internal/obs"
	"busarb/internal/wiredor"
)

// Kind selects which protocol the agents' controllers implement.
type Kind int

// The line-level protocol implementations.
const (
	FP Kind = iota
	RR1
	RR2
	RR3
	FCFS1
	FCFS2
	AAP1
	AAP2
)

// String returns the protocol's name.
func (k Kind) String() string {
	switch k {
	case FP:
		return "FP"
	case RR1:
		return "RR1"
	case RR2:
		return "RR2"
	case RR3:
		return "RR3"
	case FCFS1:
		return "FCFS1"
	case FCFS2:
		return "FCFS2"
	case AAP1:
		return "AAP1"
	case AAP2:
		return "AAP2"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// agentCtl is the per-agent arbitration hardware: a handful of
// registers and comparators, exactly the logic inventory §3 describes.
type agentCtl struct {
	kind Kind
	id   int
	n    int
	lay  ident.Layout

	wanting bool
	// urgent marks the outstanding request as priority-class (§2.4);
	// the agent asserts the priority line (the identity's MSB).
	urgent bool
	// lastWin is the RR protocols' winner register (each agent records
	// the identity of the winner at the end of every arbitration).
	lastWin int
	// counter is the FCFS waiting-time counter.
	counter int
	// pending (AAP1): the agent has a request but found the request
	// line high mid-batch, so it waits for the batch boundary before
	// asserting.
	pending bool
	// inhibited (AAP2): served in the current batch; neither asserts
	// the request line nor competes until a fairness release.
	inhibited bool
}

// participates reports whether the agent applies its number in the next
// arbitration given the low-request line state (RR2) — RR3 agents with
// id >= lastWin, AAP1 pending agents, and AAP2 inhibited agents stay
// silent.
func (a *agentCtl) participates(lowRequest bool) bool {
	if !a.wanting {
		return false
	}
	switch a.kind {
	case RR2:
		return !lowRequest || a.id < a.lastWin
	case RR3:
		return a.id < a.lastWin
	case AAP1:
		return !a.pending
	case AAP2:
		return !a.inhibited
	}
	return true
}

// number assembles the agent's composite arbitration number from its
// registers.
func (a *agentCtl) number() uint64 {
	num := ident.Number{Static: a.id}
	if a.lay.PriorityBit {
		num.Priority = a.urgent
	}
	switch a.kind {
	case RR1:
		num.RR = a.id < a.lastWin
		if a.urgent {
			// §3.1: urgent requests ignore the RR protocol by setting
			// the round-robin priority bit.
			num.RR = true
		}
	case FCFS1, FCFS2:
		num.Counter = a.counter
	}
	return a.lay.Encode(num)
}

// observe runs at the end of every arbitration: all agents monitor the
// winning number on the lines (§2.1).
func (a *agentCtl) observe(win uint64, participated bool) {
	switch a.kind {
	case RR1, RR2:
		// Record the winner's identity, excluding the RR priority bit.
		a.lastWin = a.lay.Decode(win).Static
	case RR3:
		if win == 0 {
			// Nobody participated: record N+1 (§3.1, third impl).
			a.lastWin = a.n + 1
		} else {
			a.lastWin = a.lay.Decode(win).Static
		}
	case FCFS1:
		if participated {
			switch {
			case a.lay.Decode(win).Static == a.id:
				a.counter = 0
			case a.lay.PriorityBit:
				// With priority traffic the counter can overflow: this
				// is the §3.2 "allow overflow" policy — the counter
				// wraps modulo its field capacity.
				a.counter = (a.counter + 1) % (1 << a.lay.CounterBits)
			case a.counter < 1<<a.lay.CounterBits-1:
				// Counter incremented by "lose", reset by "win" (§3.2).
				// Saturating, like core.FCFS1; with one outstanding
				// request per agent the bound N-1 is never reached.
				a.counter++
			}
		}
	}
}

// senseAIncr is the FCFS2 agents' reaction to a pulse on an a-incr
// line. With the priority integration there are two lines (a-incr and
// a-incr-priority, §3.2 third option): an agent counts only pulses of
// its own class.
func (a *agentCtl) senseAIncr(urgentPulse bool) {
	if a.kind != FCFS2 || !a.wanting {
		return
	}
	if a.lay.PriorityBit && urgentPulse != a.urgent {
		return
	}
	if a.counter < 1<<a.lay.CounterBits-1 {
		a.counter++
	}
}

// Grant reports one bus mastership with its timing.
type Grant struct {
	Agent     int
	StartTick int64
}

// Bus is the cycle-level arbitrated bus.
type Bus struct {
	kind   Kind
	n      int
	lay    ident.Layout
	arb    *contention.Arbitration
	breq   *wiredor.Line
	lowreq *wiredor.Line // RR2 only
	agents []*agentCtl

	// Observer, if non-nil, receives the bus's event stream. Event
	// times are in ticks (half bus transactions), this model's native
	// unit. Set it before the first Step.
	Observer obs.Probe

	tick       int64
	busyTicks  int  // remaining ticks of the current transfer
	nextMaster int  // latched winner for the next transfer (0 = none)
	curMaster  int  // agent of the in-flight transfer (0 = none)
	arbNeeded  bool // an arbitration should run this tick
	grants     []Grant
	// Per-arbitration scratch, reused so steady-state ticks do not
	// allocate: the competitor list handed to the arbiter and the
	// participated flags (indexed by agent identity).
	comps        []contention.Competitor
	participated []bool
	// SettleRounds accumulates the wired-OR settle rounds across all
	// arbitrations, for overhead reporting.
	SettleRounds int64
	Arbitrations int64
	EmptyPasses  int64
}

// New builds a line-level bus with n agents running the given protocol.
func New(kind Kind, n int) *Bus { return build(kind, n, false) }

// NewPriority builds a line-level bus with the §2.4 priority line: the
// arbitration numbers gain a most-significant urgent bit, and agents
// may issue urgent requests via RequestUrgent. Supported for FP, RR1,
// FCFS1 (overflow counter policy), and FCFS2 (dual a-incr lines).
func NewPriority(kind Kind, n int) *Bus {
	switch kind {
	case FP, RR1, FCFS1, FCFS2:
		return build(kind, n, true)
	}
	panic(fmt.Sprintf("cyclesim: no priority integration for %v", kind))
}

func build(kind Kind, n int, priority bool) *Bus {
	var lay ident.Layout
	switch kind {
	case FP, RR2, RR3, AAP1, AAP2:
		lay = ident.LayoutFor(n)
	case RR1:
		lay = ident.Layout{StaticBits: ident.Width(n), RRBit: true}
	case FCFS1, FCFS2:
		lay = ident.Layout{StaticBits: ident.Width(n), CounterBits: ident.Width(n)}
	default:
		panic(fmt.Sprintf("cyclesim: unknown kind %d", kind))
	}
	lay.PriorityBit = priority
	b := &Bus{
		kind:         kind,
		n:            n,
		lay:          lay,
		arb:          contention.New(lay.TotalBits(), n+1),
		breq:         wiredor.NewLine("BREQ", n+1),
		agents:       make([]*agentCtl, n+1),
		comps:        make([]contention.Competitor, 0, n),
		participated: make([]bool, n+1),
	}
	if kind == RR2 {
		b.lowreq = wiredor.NewLine("LOWREQ", n+1)
	}
	for id := 1; id <= n; id++ {
		b.agents[id] = &agentCtl{kind: kind, id: id, n: n, lay: lay}
	}
	return b
}

// Kind returns the bus's protocol.
func (b *Bus) Kind() Kind { return b.kind }

// Tick returns the current tick count.
func (b *Bus) Tick() int64 { return b.tick }

// Grants returns all bus masterships granted so far, in order.
func (b *Bus) Grants() []Grant { return b.grants }

// GrantOrder returns just the agent identities of all grants.
func (b *Bus) GrantOrder() []int {
	out := make([]int, len(b.grants))
	for i, g := range b.grants {
		out[i] = g.Agent
	}
	return out
}

// Request makes agent id generate a bus request (it must not already be
// waiting). Most protocols assert the shared request line immediately;
// an AAP1 agent finding the line high waits for the batch boundary, and
// an inhibited AAP2 agent stays silent until the fairness release. On
// FCFS2 buses the new request pulses the a-incr line, which every
// waiting agent senses (§3.2, second strategy).
func (b *Bus) Request(id int) { b.requestClass(id, false) }

// RequestUrgent issues a priority-class request (§2.4); the bus must
// have been built with NewPriority.
func (b *Bus) RequestUrgent(id int) {
	if !b.lay.PriorityBit {
		panic("cyclesim: bus has no priority line; use NewPriority")
	}
	b.requestClass(id, true)
}

func (b *Bus) requestClass(id int, urgent bool) {
	a := b.agents[id]
	if a.wanting {
		panic(fmt.Sprintf("cyclesim: agent %d already requesting", id))
	}
	a.wanting = true
	a.urgent = urgent
	a.counter = 0
	if b.Observer != nil {
		b.Observer.OnEvent(obs.Event{Time: float64(b.tick), Kind: obs.RequestIssued,
			Agent: id, Urgent: urgent})
	}
	switch b.kind {
	case AAP1:
		if b.breq.Value() {
			a.pending = true
		} else {
			b.breq.Set(id, true)
		}
	case AAP2:
		if !a.inhibited {
			b.breq.Set(id, true)
		}
	case FCFS2:
		b.breq.Set(id, true)
		for other := 1; other <= b.n; other++ {
			if other != id {
				b.agents[other].senseAIncr(urgent)
			}
		}
	default:
		b.breq.Set(id, true)
	}
}

// Waiting reports whether agent id has an outstanding request.
func (b *Bus) Waiting(id int) bool { return b.agents[id].wanting }

// Step advances the bus by one tick (half a transaction time) and
// returns the grant that started this tick, if any.
func (b *Bus) Step() *Grant {
	var granted *Grant
	// The previous transfer's tenure is over once its ticks have run
	// out; the bus frees at this tick boundary.
	if b.busyTicks == 0 && b.curMaster != 0 {
		if b.Observer != nil {
			b.Observer.OnEvent(obs.Event{Time: float64(b.tick), Kind: obs.ServiceEnd,
				Agent: b.curMaster})
		}
		b.curMaster = 0
	}
	// A latched winner takes mastership when the bus frees.
	if b.busyTicks == 0 && b.nextMaster != 0 {
		granted = b.startTransfer(b.nextMaster)
		b.nextMaster = 0
	}
	// Run an arbitration when the request line is high and either the
	// bus just started a transfer (overlap window) or it is idle. On an
	// AAP2 bus, an arbitration opportunity with the request line low
	// while agents hold (inhibited) requests is the fairness release:
	// all inhibit flags clear and the held requests assert.
	if b.nextMaster == 0 {
		opportunity := b.busyTicks == 2 || b.busyTicks == 0 || b.arbNeeded
		if opportunity && b.kind == AAP2 && !b.breq.Value() {
			b.fairnessRelease()
		}
		if opportunity && b.breq.Value() {
			b.runArbitration()
		}
	}
	if b.busyTicks > 0 {
		b.busyTicks--
	}
	b.tick++
	return granted
}

// startTransfer begins agent id's bus tenure: it releases the request
// line (and stops wanting).
func (b *Bus) startTransfer(id int) *Grant {
	a := b.agents[id]
	if !a.wanting {
		panic(fmt.Sprintf("cyclesim: granting non-waiting agent %d", id))
	}
	a.wanting = false
	a.urgent = false
	b.breq.Set(id, false)
	if b.lowreq != nil {
		b.lowreq.Set(id, false)
	}
	switch b.kind {
	case AAP1:
		// Each batch member releases the request line at the start of
		// its tenure; when the line drops, the batch is over and every
		// pending request asserts, forming the next batch (§2.2).
		if !b.breq.Value() {
			for other := 1; other <= b.n; other++ {
				oa := b.agents[other]
				if oa.pending {
					oa.pending = false
					b.breq.Set(other, true)
				}
			}
		}
	case AAP2:
		a.inhibited = true
	}
	b.busyTicks = 2
	b.curMaster = id
	if b.Observer != nil {
		b.Observer.OnEvent(obs.Event{Time: float64(b.tick), Kind: obs.ServiceStart, Agent: id})
	}
	g := Grant{Agent: id, StartTick: b.tick}
	b.grants = append(b.grants, g)
	return &b.grants[len(b.grants)-1]
}

// fairnessRelease clears every AAP2 inhibit flag; held requests assert
// the request line.
func (b *Bus) fairnessRelease() {
	for id := 1; id <= b.n; id++ {
		a := b.agents[id]
		a.inhibited = false
		if a.wanting {
			b.breq.Set(id, true)
		}
	}
}

// runArbitration performs one arbitration pass on the wired-OR lines.
func (b *Bus) runArbitration() {
	lowRequest := false
	if b.lowreq != nil {
		// RR2: each requesting agent's comparator drives the shared
		// low-request line when its identity is below the recorded
		// winner's; the wired-OR of those drives gates participation.
		for id := 1; id <= b.n; id++ {
			a := b.agents[id]
			b.lowreq.Set(id, a.wanting && a.id < a.lastWin)
		}
		lowRequest = b.lowreq.Value()
	}
	comps := b.comps[:0]
	for id := 1; id <= b.n; id++ {
		b.participated[id] = false
		if b.agents[id].participates(lowRequest) {
			comps = append(comps, contention.Competitor{Agent: id, Number: b.agents[id].number()})
			b.participated[id] = true
		}
	}
	b.comps = comps
	if b.Observer != nil {
		ids := make([]int, len(comps))
		for i, c := range comps {
			ids[i] = c.Agent
		}
		b.Observer.OnEvent(obs.Event{Time: float64(b.tick), Kind: obs.ArbitrationStart,
			Agents: ids})
	}
	res := b.arb.Run(comps)
	b.SettleRounds += int64(res.Rounds)
	b.Arbitrations++
	for id := 1; id <= b.n; id++ {
		b.agents[id].observe(res.WinningNumber, b.participated[id])
	}
	if res.Winner < 0 || res.WinningNumber == 0 {
		// Empty pass (RR3): all agents recorded N+1; rerun next tick.
		b.EmptyPasses++
		b.arbNeeded = true
		if b.Observer != nil {
			b.Observer.OnEvent(obs.Event{Time: float64(b.tick), Kind: obs.Repass})
		}
		return
	}
	b.arbNeeded = false
	b.nextMaster = comps[res.Winner].Agent
	if b.Observer != nil {
		b.Observer.OnEvent(obs.Event{Time: float64(b.tick), Kind: obs.ArbitrationResolve,
			Agent: b.nextMaster})
	}
}

// anyWanting reports whether any agent holds an outstanding request
// (asserting the request line or not).
func (b *Bus) anyWanting() bool {
	for id := 1; id <= b.n; id++ {
		if b.agents[id].wanting {
			return true
		}
	}
	return false
}

// RunUntilIdle steps the bus until no requests are outstanding and no
// transfer is in progress, with a safety bound.
func (b *Bus) RunUntilIdle(maxTicks int64) error {
	for i := int64(0); i < maxTicks; i++ {
		b.Step()
		if b.busyTicks == 0 && b.nextMaster == 0 && !b.anyWanting() && !b.arbNeeded {
			return nil
		}
	}
	return fmt.Errorf("cyclesim: bus not idle after %d ticks", maxTicks)
}
