package contention_test

import (
	"fmt"

	"busarb/internal/contention"
)

// The paper's §2.1 worked example: agents with identities 1010101 and
// 0011100 compete. The first removes its three lowest-order bits when it
// sees the OR of both numbers, the second removes all of its bits; then
// the first reapplies, and the lines settle to the maximum.
func Example() {
	arb := contention.New(7, 2)
	res, rounds := arb.RunTraced([]contention.Competitor{
		{Agent: 0, Number: 0b1010101},
		{Agent: 1, Number: 0b0011100},
	})
	for i, lines := range rounds {
		fmt.Printf("round %d: ", i)
		for _, v := range lines {
			if v {
				fmt.Print("1")
			} else {
				fmt.Print("0")
			}
		}
		fmt.Println()
	}
	fmt.Printf("winner: agent %d with %07b\n", res.Winner, res.WinningNumber)
	// Output:
	// round 0: 1011101
	// round 1: 1010000
	// round 2: 1010101
	// winner: agent 0 with 1010101
}
