// Package contention implements the parallel contention arbiter of
// Taub / Computing Devices of Canada (§2.1 of the paper): each competing
// agent applies its arbitration number to a bank of wired-OR lines and
// monitors them; an agent seeing a "1" on a line to which it applies "0"
// removes the lower-order bits of its identity, reapplying them if the
// line later drops. The lines settle to the maximum competing number.
//
// Two models are provided:
//
//   - Arbitration: a synchronous-round simulation of the settle process
//     on real wired-OR lines (package wiredor), which records how many
//     rounds the lines took to settle. This validates the distributed
//     maximum-finding that every protocol in this repository relies on.
//   - BinaryPatterned: the Johnson (US patent 4,375,639) single-pass
//     comparator scheme (§2.1), which is faster but does not broadcast
//     the winner's identity — which is why the RR protocols cannot use
//     it (§3.1).
package contention

import (
	"fmt"

	"busarb/internal/wiredor"
)

// Competitor is one agent in an arbitration: its index (position on the
// bus) and the arbitration number it applies.
type Competitor struct {
	Agent  int
	Number uint64
}

// Result describes a settled arbitration.
type Result struct {
	// Winner is the index into the competitors slice of the winning
	// agent, or -1 if no agent competed.
	Winner int
	// WinningNumber is the value the arbitration lines carry at steady
	// state: the maximum competing number, or 0 if none competed. Every
	// agent on the bus can observe this (§2.1) — the property the RR
	// protocol depends on.
	WinningNumber uint64
	// Rounds is the number of synchronous update rounds the wired-OR
	// model needed to settle. A round models one end-to-end bus
	// propagation plus the arbiter logic reacting to it.
	Rounds int
}

// Arbitration is a reusable line-level arbiter for a fixed line width and
// agent count.
type Arbitration struct {
	bank  *wiredor.Bank
	width int
	// maxRounds bounds the settle loop; Taub proves settling within
	// ~k/2 end-to-end delays, so 4k+4 synchronous rounds is generous.
	maxRounds int
	// Scratch buffers reused across Run calls so the settle loop is
	// allocation free in steady state. bits holds the competitors'
	// identity bit patterns back to back (width bits per competitor);
	// lines and applied are one-row working copies.
	bits    []bool
	lines   []bool
	applied []bool
}

// New creates an arbiter with the given line width (bits per arbitration
// number) and number of attached agents.
func New(width, agents int) *Arbitration {
	return &Arbitration{
		bank:      wiredor.NewBank("AB", width, agents),
		width:     width,
		maxRounds: 4*width + 4,
		lines:     make([]bool, width),
		applied:   make([]bool, width),
	}
}

// Width returns the number of arbitration lines.
func (a *Arbitration) Width() int { return a.width }

// Run performs one arbitration among the competitors and returns the
// settled result. Numbers must fit in the arbiter's width. Run panics if
// the lines fail to settle within the round bound, which would indicate a
// bug in the settle model (Taub proved convergence).
func (a *Arbitration) Run(comps []Competitor) Result {
	r, _ := a.run(comps, false)
	return r
}

// RunTraced is Run plus a per-round snapshot of the arbitration lines
// (MSB first), for visualizing the settle process.
func (a *Arbitration) RunTraced(comps []Competitor) (Result, [][]bool) {
	return a.run(comps, true)
}

func (a *Arbitration) run(comps []Competitor, trace bool) (Result, [][]bool) {
	if len(comps) == 0 {
		return Result{Winner: -1, WinningNumber: 0, Rounds: 0}, nil
	}
	limit := uint64(1) << uint(a.width)
	for _, c := range comps {
		if c.Number >= limit {
			panic(fmt.Sprintf("contention: number %b exceeds %d lines", c.Number, a.width))
		}
	}
	a.bank.ReleaseAll()

	// Each agent's view: the MSB-first bits of its identity, and the
	// bits it currently applies given the line state it last observed.
	// The patterns live back to back in the reusable bits buffer.
	if need := len(comps) * a.width; cap(a.bits) < need {
		a.bits = make([]bool, need)
	}
	for i, c := range comps {
		id := a.bits[i*a.width : (i+1)*a.width]
		numberBits(id, c.Number)
		a.bank.Apply(c.Agent, id)
	}

	var rows [][]bool
	if trace {
		rows = append(rows, a.bank.Values())
	}
	rounds := 0
	for ; rounds < a.maxRounds; rounds++ {
		lines := a.bank.ValuesInto(a.lines)
		changed := false
		for i, c := range comps {
			id := a.bits[i*a.width : (i+1)*a.width]
			applied := appliedBits(a.applied, id, lines)
			for j := 0; j < a.width; j++ {
				if a.bank.Line(j).Driving(c.Agent) != applied[j] {
					changed = true
				}
			}
			a.bank.Apply(c.Agent, applied)
		}
		if trace && changed {
			rows = append(rows, a.bank.Values())
		}
		if !changed {
			break
		}
	}
	if rounds == a.maxRounds {
		panic("contention: arbitration lines failed to settle (model bug)")
	}

	win := a.bank.Value()
	winner := -1
	for i, c := range comps {
		if c.Number == win {
			winner = i
			break
		}
	}
	// Clean up: losers and winner all release at end of arbitration.
	for _, c := range comps {
		a.bank.Release(c.Agent)
	}
	return Result{Winner: winner, WinningNumber: win, Rounds: rounds}, rows
}

// appliedBits implements the per-agent monitoring rule of §2.1: find the
// most significant line carrying "1" where the agent's identity has "0";
// the agent keeps its identity bits above that line and removes
// (releases) all bits below it. If no such line exists — the agent is not
// outbid anywhere — it applies its full identity, which also reapplies
// any previously removed bits once the offending line drops. The result
// is written into out (same length as id) and returned.
func appliedBits(out, id, lines []bool) []bool {
	cut := len(id)
	for j := range id {
		if lines[j] && !id[j] {
			cut = j
			break
		}
	}
	copy(out[:cut], id[:cut])
	for j := cut; j < len(id); j++ {
		out[j] = false
	}
	return out
}

// numberBits expands v into MSB-first bits filling out.
func numberBits(out []bool, v uint64) {
	width := len(out)
	for i := 0; i < width; i++ {
		out[i] = v&(1<<uint(width-1-i)) != 0
	}
}

// BinaryPatterned performs the Johnson single-pass arbitration: it
// resolves the maximum in one comparison step (one end-to-end bus
// propagation plus comparator logic) but, unlike the wired-OR settle, it
// does not leave the winner's identity observable on shared lines
// (§2.1). The boolean in the result distinguishes the two: observable is
// false.
func BinaryPatterned(comps []Competitor) (winnerIdx int, observable bool) {
	winnerIdx = -1
	var best uint64
	for i, c := range comps {
		if winnerIdx < 0 || c.Number > best {
			winnerIdx, best = i, c.Number
		}
	}
	return winnerIdx, false
}
