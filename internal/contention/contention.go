// Package contention implements the parallel contention arbiter of
// Taub / Computing Devices of Canada (§2.1 of the paper): each competing
// agent applies its arbitration number to a bank of wired-OR lines and
// monitors them; an agent seeing a "1" on a line to which it applies "0"
// removes the lower-order bits of its identity, reapplying them if the
// line later drops. The lines settle to the maximum competing number.
//
// Two models are provided:
//
//   - Arbitration: a synchronous-round simulation of the settle process,
//     which records how many rounds the lines took to settle. This
//     validates the distributed maximum-finding that every protocol in
//     this repository relies on. Run executes the settle word-wide —
//     each agent's applied pattern is one uint64 and a round is a
//     handful of mask operations per agent — while RunSettle/RunTraced
//     keep the original line-by-line boolean model on real wired-OR
//     lines (package wiredor) as the oracle: tests require both to
//     produce bit-identical winners, winning numbers, and round counts.
//   - BinaryPatterned: the Johnson (US patent 4,375,639) single-pass
//     comparator scheme (§2.1), which is faster but does not broadcast
//     the winner's identity — which is why the RR protocols cannot use
//     it (§3.1).
package contention

import (
	"fmt"
	"math/bits"

	"busarb/internal/wiredor"
)

// Competitor is one agent in an arbitration: its index (position on the
// bus) and the arbitration number it applies.
type Competitor struct {
	Agent  int
	Number uint64
}

// Result describes a settled arbitration.
type Result struct {
	// Winner is the index into the competitors slice of the winning
	// agent, or -1 if no agent competed.
	Winner int
	// WinningNumber is the value the arbitration lines carry at steady
	// state: the maximum competing number, or 0 if none competed. Every
	// agent on the bus can observe this (§2.1) — the property the RR
	// protocol depends on.
	WinningNumber uint64
	// Rounds is the number of synchronous update rounds the wired-OR
	// model needed to settle. A round models one end-to-end bus
	// propagation plus the arbiter logic reacting to it.
	Rounds int
}

// Arbitration is a reusable line-level arbiter for a fixed line width and
// agent count. Width is limited to 64 lines so an arbitration number is
// exactly one machine word; wider identities have no hardware analogue
// here (the paper's k = ceil(log2(N+1)) stays far below it).
type Arbitration struct {
	bank  *wiredor.Bank
	width int
	// maxRounds bounds the settle loop; Taub proves settling within
	// ~k/2 end-to-end delays, so 4k+4 synchronous rounds is generous.
	maxRounds int
	// Word-wide settle state (Run): each competitor's applied pattern
	// is one uint64, reused across calls.
	applied []uint64
	// Boolean settle state (RunSettle/RunTraced): bits holds the
	// competitors' identity bit patterns back to back (width bits per
	// competitor); lines and lineApplied are one-row working copies.
	bits        []bool
	lines       []bool
	lineApplied []bool
}

// New creates an arbiter with the given line width (bits per arbitration
// number, 1..64) and number of attached agents.
func New(width, agents int) *Arbitration {
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("contention: width %d out of range 1..64 (one arbitration number per machine word)", width))
	}
	return &Arbitration{
		bank:        wiredor.NewBank("AB", width, agents),
		width:       width,
		maxRounds:   4*width + 4,
		lines:       make([]bool, width),
		lineApplied: make([]bool, width),
	}
}

// Width returns the number of arbitration lines.
func (a *Arbitration) Width() int { return a.width }

// checkNumbers panics if any competitor's number does not fit the
// arbiter's lines. The check is shift-based so it cannot wrap at
// width 64 (a `1 << 64` bound would overflow to 0 and reject
// everything).
func (a *Arbitration) checkNumbers(comps []Competitor) {
	for _, c := range comps {
		if c.Number>>uint(a.width) != 0 {
			panic(fmt.Sprintf("contention: number %b exceeds %d lines", c.Number, a.width))
		}
	}
}

// Run performs one arbitration among the competitors and returns the
// settled result. Numbers must fit in the arbiter's width. Run panics if
// the lines fail to settle within the round bound, which would indicate a
// bug in the settle model (Taub proved convergence).
//
// Run is the word-wide fast path: one uint64 per competitor, a few mask
// operations per agent per round. It reproduces the boolean wired-OR
// settle of RunSettle exactly — same winner, same winning number, same
// round count — which the equivalence tests and the FuzzKernelMatchesSettle
// target pin.
func (a *Arbitration) Run(comps []Competitor) Result {
	if len(comps) == 0 {
		return Result{Winner: -1, WinningNumber: 0, Rounds: 0}
	}
	a.checkNumbers(comps)

	// Initial state: every agent applies its full identity.
	if cap(a.applied) < len(comps) {
		a.applied = make([]uint64, len(comps))
	}
	applied := a.applied[:len(comps)]
	lines := uint64(0)
	for i, c := range comps {
		applied[i] = c.Number
		lines |= c.Number
	}

	rounds := 0
	for ; rounds < a.maxRounds; rounds++ {
		// All agents observe the same settled line state (one
		// end-to-end propagation), then update what they apply.
		snapshot := lines
		changed := false
		lines = 0
		for i, c := range comps {
			// §2.1 monitoring rule, word-wide: conflict has a 1 on every
			// line carrying "1" where this identity has "0". The agent
			// keeps its bits above the most significant conflict and
			// removes that bit and everything below it; with no conflict
			// it applies (or reapplies) the full identity.
			next := c.Number
			if conflict := snapshot &^ c.Number; conflict != 0 {
				cut := bits.Len64(conflict) - 1
				next = c.Number &^ (^uint64(0) >> uint(63-cut))
			}
			if next != applied[i] {
				changed = true
			}
			applied[i] = next
			lines |= next
		}
		if !changed {
			lines = snapshot
			break
		}
	}
	if rounds == a.maxRounds {
		panic("contention: arbitration lines failed to settle (model bug)")
	}

	winner := -1
	for i, c := range comps {
		if c.Number == lines {
			winner = i
			break
		}
	}
	return Result{Winner: winner, WinningNumber: lines, Rounds: rounds}
}

// RunSettle performs the arbitration on the boolean wired-OR line model
// (package wiredor), scanning agents and lines one bool at a time. It is
// the oracle the word-wide Run is validated against; production paths
// use Run.
func (a *Arbitration) RunSettle(comps []Competitor) Result {
	r, _ := a.runSettle(comps, false)
	return r
}

// RunTraced is RunSettle plus a per-round snapshot of the arbitration
// lines (MSB first), for visualizing the settle process.
func (a *Arbitration) RunTraced(comps []Competitor) (Result, [][]bool) {
	return a.runSettle(comps, true)
}

func (a *Arbitration) runSettle(comps []Competitor, trace bool) (Result, [][]bool) {
	if len(comps) == 0 {
		return Result{Winner: -1, WinningNumber: 0, Rounds: 0}, nil
	}
	a.checkNumbers(comps)
	a.bank.ReleaseAll()

	// Each agent's view: the MSB-first bits of its identity, and the
	// bits it currently applies given the line state it last observed.
	// The patterns live back to back in the reusable bits buffer.
	if need := len(comps) * a.width; cap(a.bits) < need {
		a.bits = make([]bool, need)
	}
	for i, c := range comps {
		id := a.bits[i*a.width : (i+1)*a.width]
		numberBits(id, c.Number)
		a.bank.Apply(c.Agent, id)
	}

	var rows [][]bool
	if trace {
		rows = append(rows, a.bank.Values())
	}
	rounds := 0
	for ; rounds < a.maxRounds; rounds++ {
		lines := a.bank.ValuesInto(a.lines)
		changed := false
		for i, c := range comps {
			id := a.bits[i*a.width : (i+1)*a.width]
			applied := appliedBits(a.lineApplied, id, lines)
			for j := 0; j < a.width; j++ {
				if a.bank.Line(j).Driving(c.Agent) != applied[j] {
					changed = true
				}
			}
			a.bank.Apply(c.Agent, applied)
		}
		if trace && changed {
			rows = append(rows, a.bank.Values())
		}
		if !changed {
			break
		}
	}
	if rounds == a.maxRounds {
		panic("contention: arbitration lines failed to settle (model bug)")
	}

	win := a.bank.Value()
	winner := -1
	for i, c := range comps {
		if c.Number == win {
			winner = i
			break
		}
	}
	// Clean up: losers and winner all release at end of arbitration.
	for _, c := range comps {
		a.bank.Release(c.Agent)
	}
	return Result{Winner: winner, WinningNumber: win, Rounds: rounds}, rows
}

// appliedBits implements the per-agent monitoring rule of §2.1: find the
// most significant line carrying "1" where the agent's identity has "0";
// the agent keeps its identity bits above that line and removes
// (releases) all bits below it. If no such line exists — the agent is not
// outbid anywhere — it applies its full identity, which also reapplies
// any previously removed bits once the offending line drops. The result
// is written into out (same length as id) and returned.
func appliedBits(out, id, lines []bool) []bool {
	cut := len(id)
	for j := range id {
		if lines[j] && !id[j] {
			cut = j
			break
		}
	}
	copy(out[:cut], id[:cut])
	for j := cut; j < len(id); j++ {
		out[j] = false
	}
	return out
}

// numberBits expands v into MSB-first bits filling out.
func numberBits(out []bool, v uint64) {
	width := len(out)
	for i := 0; i < width; i++ {
		out[i] = v&(1<<uint(width-1-i)) != 0
	}
}

// BinaryPatterned performs the Johnson single-pass arbitration: it
// resolves the maximum in one comparison step (one end-to-end bus
// propagation plus comparator logic) but, unlike the wired-OR settle, it
// does not leave the winner's identity observable on shared lines
// (§2.1). The boolean in the result distinguishes the two: observable is
// false.
func BinaryPatterned(comps []Competitor) (winnerIdx int, observable bool) {
	winnerIdx = -1
	var best uint64
	for i, c := range comps {
		if winnerIdx < 0 || c.Number > best {
			winnerIdx, best = i, c.Number
		}
	}
	return winnerIdx, false
}
