package contention

import (
	"encoding/binary"
	"testing"

	"busarb/internal/bitarb"
)

// FuzzSettleFindsMax throws arbitrary competitor sets at the wired-OR
// settle model: it must always converge to the maximum without panicking
// (numbers are masked into range; zero/duplicate numbers are dropped the
// way unique hardware identities guarantee).
func FuzzSettleFindsMax(f *testing.F) {
	f.Add(uint8(7), []byte{1, 5, 9})
	f.Add(uint8(3), []byte{7, 6, 5, 4, 3, 2, 1})
	f.Add(uint8(1), []byte{1})
	f.Add(uint8(12), []byte{255, 128, 64, 32})
	f.Fuzz(func(t *testing.T, w uint8, raw []byte) {
		width := 1 + int(w%16)
		arb := New(width, 32)
		mask := uint64(1)<<uint(width) - 1
		seen := map[uint64]bool{}
		var comps []Competitor
		for _, b := range raw {
			id := uint64(b) & mask
			if id == 0 || seen[id] || len(comps) >= 32 {
				continue
			}
			seen[id] = true
			comps = append(comps, Competitor{Agent: len(comps), Number: id})
		}
		if len(comps) == 0 {
			return
		}
		var want uint64
		for _, c := range comps {
			if c.Number > want {
				want = c.Number
			}
		}
		res := arb.Run(comps)
		if res.WinningNumber != want {
			t.Fatalf("settled to %b, want %b", res.WinningNumber, want)
		}
		if comps[res.Winner].Number != want {
			t.Fatal("winner index mismatch")
		}
	})
}

// FuzzKernelMatchesSettle cross-checks the three implementations of the
// contention pass on arbitrary competitor sets at full 64-bit widths
// (including the word boundaries 63 and 64): the word-wide Run, the
// boolean wired-OR settle oracle, and the bitarb bit-plane tournament
// must all agree on winner, winning number, and (for the two settle
// models) round count.
func FuzzKernelMatchesSettle(f *testing.F) {
	f.Add(uint8(64), []byte{1, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255, 255, 255, 255, 255})
	f.Add(uint8(63), []byte{9, 3, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(1), []byte{1})
	f.Add(uint8(12), []byte{255, 128, 64, 32, 7, 7, 7, 7, 0, 0})
	f.Fuzz(func(t *testing.T, w uint8, raw []byte) {
		width := 1 + int(w%64)
		const maxComps = 24
		arb := New(width, maxComps)
		planes := bitarb.NewPlanes(width, maxComps)
		req := bitarb.NewVec(maxComps)
		mask := ^uint64(0) >> uint(64-width)
		seen := map[uint64]bool{}
		var comps []Competitor
		for len(raw) >= 8 && len(comps) < maxComps {
			id := binary.LittleEndian.Uint64(raw) & mask
			raw = raw[8:]
			if id == 0 || seen[id] {
				continue
			}
			seen[id] = true
			comps = append(comps, Competitor{Agent: len(comps), Number: id})
		}
		fast := arb.Run(comps)
		oracle := arb.RunSettle(comps)
		if fast != oracle {
			t.Fatalf("width %d: Run = %+v, RunSettle oracle = %+v (comps %v)", width, fast, oracle, comps)
		}
		req.Reset()
		for i, c := range comps {
			planes.Store(i+1, c.Number) // kernel identities are 1-based
			req.Set(i + 1)
		}
		slot, num := planes.Resolve(req)
		wantSlot := -1 // Resolve signals "no competitor" as -1, like Winner
		if fast.Winner >= 0 {
			wantSlot = fast.Winner + 1 // kernel identities are 1-based
		}
		if slot != wantSlot || num != fast.WinningNumber {
			t.Fatalf("width %d: planes tournament = (%d, %b), settle = (%d, %b)",
				width, slot, num, wantSlot, fast.WinningNumber)
		}
	})
}
