package contention

import "testing"

// FuzzSettleFindsMax throws arbitrary competitor sets at the wired-OR
// settle model: it must always converge to the maximum without panicking
// (numbers are masked into range; zero/duplicate numbers are dropped the
// way unique hardware identities guarantee).
func FuzzSettleFindsMax(f *testing.F) {
	f.Add(uint8(7), []byte{1, 5, 9})
	f.Add(uint8(3), []byte{7, 6, 5, 4, 3, 2, 1})
	f.Add(uint8(1), []byte{1})
	f.Add(uint8(12), []byte{255, 128, 64, 32})
	f.Fuzz(func(t *testing.T, w uint8, raw []byte) {
		width := 1 + int(w%16)
		arb := New(width, 32)
		mask := uint64(1)<<uint(width) - 1
		seen := map[uint64]bool{}
		var comps []Competitor
		for _, b := range raw {
			id := uint64(b) & mask
			if id == 0 || seen[id] || len(comps) >= 32 {
				continue
			}
			seen[id] = true
			comps = append(comps, Competitor{Agent: len(comps), Number: id})
		}
		if len(comps) == 0 {
			return
		}
		var want uint64
		for _, c := range comps {
			if c.Number > want {
				want = c.Number
			}
		}
		res := arb.Run(comps)
		if res.WinningNumber != want {
			t.Fatalf("settled to %b, want %b", res.WinningNumber, want)
		}
		if comps[res.Winner].Number != want {
			t.Fatal("winner index mismatch")
		}
	})
}
