package contention

import (
	"testing"
	"testing/quick"

	"busarb/internal/rng"
)

func TestEmptyArbitration(t *testing.T) {
	a := New(4, 8)
	r := a.Run(nil)
	if r.Winner != -1 || r.WinningNumber != 0 {
		t.Errorf("empty arbitration = %+v", r)
	}
}

func TestSingleCompetitor(t *testing.T) {
	a := New(4, 8)
	r := a.Run([]Competitor{{Agent: 3, Number: 0b1010}})
	if r.Winner != 0 || r.WinningNumber != 0b1010 {
		t.Errorf("single competitor = %+v", r)
	}
}

// The paper's own worked example (§2.1): identities 1010101 and 0011100.
// The first agent removes its three lowest-order bits, the second all of
// its bits; then the first reapplies. Steady state: 1010101.
func TestPaperExample(t *testing.T) {
	a := New(7, 2)
	r := a.Run([]Competitor{
		{Agent: 0, Number: 0b1010101},
		{Agent: 1, Number: 0b0011100},
	})
	if r.WinningNumber != 0b1010101 || r.Winner != 0 {
		t.Errorf("result = %+v, want winner 0 with 1010101", r)
	}
}

func TestMaxAlwaysWins(t *testing.T) {
	a := New(6, 64)
	src := rng.New(17)
	for trial := 0; trial < 2000; trial++ {
		n := 1 + src.Intn(10)
		comps := make([]Competitor, 0, n)
		seen := map[uint64]bool{}
		for len(comps) < n {
			id := uint64(1 + src.Intn(63))
			if seen[id] {
				continue
			}
			seen[id] = true
			comps = append(comps, Competitor{Agent: len(comps), Number: id})
		}
		var want uint64
		for _, c := range comps {
			if c.Number > want {
				want = c.Number
			}
		}
		r := a.Run(comps)
		if r.WinningNumber != want {
			t.Fatalf("trial %d: lines settled to %b, want %b (comps %v)", trial, r.WinningNumber, want, comps)
		}
		if comps[r.Winner].Number != want {
			t.Fatalf("trial %d: winner index wrong", trial)
		}
	}
}

// Property over arbitrary widths and competitor sets: the settle
// algorithm finds the maximum and terminates within the round bound.
func TestSettleProperty(t *testing.T) {
	f := func(raw []uint16, w uint8) bool {
		width := 1 + int(w%12)
		arb := New(width, 16)
		mask := uint64(1)<<uint(width) - 1
		comps := make([]Competitor, 0, len(raw))
		seen := map[uint64]bool{}
		for _, v := range raw {
			id := uint64(v) & mask
			if id == 0 || seen[id] || len(comps) >= 16 {
				continue
			}
			seen[id] = true
			comps = append(comps, Competitor{Agent: len(comps), Number: id})
		}
		if len(comps) == 0 {
			return true
		}
		var want uint64
		for _, c := range comps {
			if c.Number > want {
				want = c.Number
			}
		}
		r := arb.Run(comps)
		return r.WinningNumber == want && comps[r.Winner].Number == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRoundsBounded(t *testing.T) {
	// Taub's bound is ~k/2 end-to-end propagations; our synchronous
	// round model should stay within a small multiple of k. Use the
	// adversarial identity assignment (descending staircase) plus random
	// sets and record the worst case.
	const width = 8
	a := New(width, 64)
	worst := 0
	// Staircase: 10000000, 11000000, ... maximizes sequential unmasking.
	comps := make([]Competitor, width)
	for i := 0; i < width; i++ {
		comps[i] = Competitor{Agent: i, Number: (1<<uint(width) - 1) &^ (1<<uint(width-1-i) - 1)}
	}
	r := a.Run(comps)
	if r.Rounds > worst {
		worst = r.Rounds
	}
	src := rng.New(5)
	for trial := 0; trial < 500; trial++ {
		n := 2 + src.Intn(30)
		cs := make([]Competitor, 0, n)
		seen := map[uint64]bool{}
		for len(cs) < n {
			id := uint64(1 + src.Intn(255))
			if seen[id] {
				continue
			}
			seen[id] = true
			cs = append(cs, Competitor{Agent: len(cs), Number: id})
		}
		res := a.Run(cs)
		if res.Rounds > worst {
			worst = res.Rounds
		}
	}
	if worst > 2*width+2 {
		t.Errorf("worst settle rounds %d exceeds 2k+2 = %d", worst, 2*width+2)
	}
	t.Logf("worst observed settle rounds for k=%d: %d", width, worst)
}

func TestLinesReleasedAfterRun(t *testing.T) {
	a := New(5, 8)
	a.Run([]Competitor{{Agent: 0, Number: 21}, {Agent: 1, Number: 9}})
	// A second arbitration with different agents must not see stale bits.
	r := a.Run([]Competitor{{Agent: 2, Number: 3}})
	if r.WinningNumber != 3 {
		t.Errorf("stale line state leaked: got %b", r.WinningNumber)
	}
}

func TestRunPanicsOnOverwideNumber(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overwide number did not panic")
		}
	}()
	New(3, 2).Run([]Competitor{{Agent: 0, Number: 8}})
}

func TestBinaryPatterned(t *testing.T) {
	comps := []Competitor{
		{Agent: 0, Number: 5},
		{Agent: 1, Number: 12},
		{Agent: 2, Number: 9},
	}
	idx, observable := BinaryPatterned(comps)
	if idx != 1 {
		t.Errorf("winner = %d, want 1", idx)
	}
	if observable {
		t.Error("binary-patterned scheme must not expose the winner's identity on the lines (§2.1)")
	}
	if idx, _ := BinaryPatterned(nil); idx != -1 {
		t.Errorf("empty = %d, want -1", idx)
	}
}

// Both arbiters must agree on the winner for identical competitor sets.
func TestBinaryPatternedMatchesWiredOR(t *testing.T) {
	a := New(8, 16)
	f := func(raw []uint8) bool {
		comps := make([]Competitor, 0, len(raw))
		seen := map[uint64]bool{}
		for _, v := range raw {
			if v == 0 || seen[uint64(v)] || len(comps) >= 16 {
				continue
			}
			seen[uint64(v)] = true
			comps = append(comps, Competitor{Agent: len(comps), Number: uint64(v)})
		}
		if len(comps) == 0 {
			return true
		}
		bpIdx, _ := BinaryPatterned(comps)
		r := a.Run(comps)
		return comps[bpIdx].Number == comps[r.Winner].Number
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSettle(b *testing.B) {
	a := New(7, 64)
	comps := make([]Competitor, 32)
	for i := range comps {
		comps[i] = Competitor{Agent: i, Number: uint64(i*2 + 1)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Run(comps)
	}
}
