package contention

import (
	"fmt"
	"testing"

	"busarb/internal/bitarb"
	"busarb/internal/rng"
)

// randomComps builds a set of distinct nonzero numbers within width
// bits, one competitor each.
func randomComps(src *rng.Source, width, maxN int) []Competitor {
	mask := ^uint64(0) >> uint(64-width)
	n := 1 + src.Intn(maxN)
	seen := map[uint64]bool{}
	comps := make([]Competitor, 0, n)
	for len(comps) < n {
		id := src.Uint64() & mask
		if id == 0 || seen[id] {
			if len(seen) >= 1<<uint(minI(width, 20))-1 {
				break // width too narrow for more distinct numbers
			}
			continue
		}
		seen[id] = true
		comps = append(comps, Competitor{Agent: len(comps), Number: id})
	}
	return comps
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestRunMatchesSettleOracle is the word-wide fast path's contract: on
// random competitor sets across widths (including the word-boundary
// widths 63 and 64), Run must return exactly what the boolean wired-OR
// settle model returns — winner, winning number, and round count.
func TestRunMatchesSettleOracle(t *testing.T) {
	for _, width := range []int{1, 2, 7, 12, 31, 32, 33, 63, 64} {
		t.Run(fmt.Sprintf("width=%d", width), func(t *testing.T) {
			a := New(width, 32)
			src := rng.New(uint64(width)*977 + 3)
			trials := 200
			if width == 1 {
				trials = 10 // only one distinct nonzero number exists
			}
			for trial := 0; trial < trials; trial++ {
				comps := randomComps(src, width, 24)
				fast := a.Run(comps)
				oracle := a.RunSettle(comps)
				if fast != oracle {
					t.Fatalf("trial %d: Run = %+v, RunSettle = %+v (comps %v)", trial, fast, oracle, comps)
				}
			}
		})
	}
}

// TestWidth64NoOverflow is the regression test for the settle loop's
// former `uint64(1) << width` bound, which wrapped to 0 at width 64 and
// made every competitor panic as out-of-range. The full 64-bit range
// must be usable, at width 63 and 64 alike.
func TestWidth64NoOverflow(t *testing.T) {
	cases := []struct {
		width int
		comps []Competitor
	}{
		{63, []Competitor{
			{Agent: 0, Number: 1<<63 - 1}, // all 63 lines asserted
			{Agent: 1, Number: 1 << 62},
			{Agent: 2, Number: 5},
		}},
		{64, []Competitor{
			{Agent: 0, Number: ^uint64(0)}, // all 64 lines asserted
			{Agent: 1, Number: 1 << 63},
			{Agent: 2, Number: 7},
		}},
	}
	for _, c := range cases {
		a := New(c.width, 8)
		var want uint64
		for _, cc := range c.comps {
			if cc.Number > want {
				want = cc.Number
			}
		}
		r := a.Run(c.comps)
		if r.WinningNumber != want || c.comps[r.Winner].Number != want {
			t.Errorf("width %d: settled to %b, want %b", c.width, r.WinningNumber, want)
		}
		if o := a.RunSettle(c.comps); o != r {
			t.Errorf("width %d: Run %+v != RunSettle %+v", c.width, r, o)
		}
	}
}

// TestWidth64BoundStillRejects pins that the non-wrapping bound check
// still rejects overwide numbers at width 63 (the widest width where an
// overwide uint64 exists).
func TestWidth64BoundStillRejects(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("number with bit 63 set on a 63-line arbiter did not panic")
		}
	}()
	New(63, 2).Run([]Competitor{{Agent: 0, Number: 1 << 63}})
}

// TestNewValidatesWidth pins the constructor's width range: the settle
// model carries one arbitration number per machine word.
func TestNewValidatesWidth(t *testing.T) {
	for _, w := range []int{0, -1, 65, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(width=%d) did not panic", w)
				}
			}()
			New(w, 4)
		}()
	}
	// Boundary widths construct fine.
	if New(1, 2).Width() != 1 || New(64, 2).Width() != 64 {
		t.Error("boundary widths mangled")
	}
}

// TestRunSettleEmptyAndTrace pins the oracle's empty-set behavior and
// that RunTraced still reports the same result as Run.
func TestRunSettleEmptyAndTrace(t *testing.T) {
	a := New(5, 8)
	if r := a.RunSettle(nil); r.Winner != -1 || r.WinningNumber != 0 {
		t.Errorf("RunSettle(nil) = %+v", r)
	}
	comps := []Competitor{{Agent: 0, Number: 21}, {Agent: 1, Number: 9}, {Agent: 2, Number: 30}}
	res, rows := a.RunTraced(comps)
	if got := a.Run(comps); got != res {
		t.Errorf("Run = %+v, RunTraced result = %+v", got, res)
	}
	if len(rows) == 0 {
		t.Error("RunTraced returned no line snapshots")
	}
}

// TestKernelPlanesMatchSettle cross-checks the third implementation of
// the same contention pass: the bitarb bit-plane tournament must pick
// the same winner and winning number as both settle models.
func TestKernelPlanesMatchSettle(t *testing.T) {
	const width, nAgents = 10, 40
	a := New(width, nAgents)
	planes := bitarb.NewPlanes(width, nAgents)
	req := bitarb.NewVec(nAgents)
	src := rng.New(99)
	for trial := 0; trial < 300; trial++ {
		comps := randomComps(src, width, 30)
		req.Reset()
		// Slot i+1 carries competitor i (kernel identities are 1-based).
		for i, c := range comps {
			planes.Store(i+1, c.Number)
			req.Set(i + 1)
		}
		slot, num := planes.Resolve(req)
		r := a.Run(comps)
		if slot-1 != r.Winner || num != r.WinningNumber {
			t.Fatalf("trial %d: planes = (%d, %b), settle = (%d, %b)",
				trial, slot-1, num, r.Winner, r.WinningNumber)
		}
	}
}

// TestRunSteadyStateAllocs pins that the word-wide fast path allocates
// nothing once its applied buffer has grown.
func TestRunSteadyStateAllocs(t *testing.T) {
	a := New(8, 32)
	comps := make([]Competitor, 16)
	for i := range comps {
		comps[i] = Competitor{Agent: i, Number: uint64(16 - i)}
	}
	a.Run(comps)
	if allocs := testing.AllocsPerRun(100, func() { a.Run(comps) }); allocs != 0 {
		t.Errorf("Run allocates %v times in steady state, want 0", allocs)
	}
}

// BenchmarkSettleOracle measures the boolean line-by-line model that
// Run's word-wide settle replaced, for the trajectory comparison
// against BenchmarkSettle.
func BenchmarkSettleOracle(b *testing.B) {
	a := New(7, 64)
	comps := make([]Competitor, 32)
	for i := range comps {
		comps[i] = Competitor{Agent: i, Number: uint64(i*2 + 1)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.RunSettle(comps)
	}
}
