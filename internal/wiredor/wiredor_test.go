package wiredor

import (
	"testing"
	"testing/quick"
)

func TestLineWiredOR(t *testing.T) {
	l := NewLine("BREQ", 4)
	if l.Value() {
		t.Fatal("idle line should read 0")
	}
	l.Set(1, true)
	if !l.Value() {
		t.Fatal("asserted line should read 1")
	}
	l.Set(3, true)
	l.Set(1, false)
	if !l.Value() {
		t.Fatal("line must stay 1 while any agent asserts")
	}
	l.Set(3, false)
	if l.Value() {
		t.Fatal("line must drop when all agents release")
	}
}

func TestLineIdempotentSet(t *testing.T) {
	l := NewLine("X", 2)
	l.Set(0, true)
	l.Set(0, true)
	if l.DriverCount() != 1 {
		t.Fatalf("DriverCount = %d after double assert", l.DriverCount())
	}
	l.Set(0, false)
	l.Set(0, false)
	if l.DriverCount() != 0 || l.Value() {
		t.Fatal("double release corrupted count")
	}
}

func TestLineDriving(t *testing.T) {
	l := NewLine("X", 3)
	l.Set(2, true)
	if !l.Driving(2) || l.Driving(0) {
		t.Fatal("Driving misreports")
	}
	if l.Name() != "X" || l.Agents() != 3 {
		t.Fatal("metadata wrong")
	}
}

func TestLineReleaseAll(t *testing.T) {
	l := NewLine("X", 3)
	l.Set(0, true)
	l.Set(2, true)
	l.ReleaseAll()
	if l.Value() || l.DriverCount() != 0 || l.Driving(0) {
		t.Fatal("ReleaseAll left state behind")
	}
}

func TestNewLinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLine with 0 agents did not panic")
		}
	}()
	NewLine("X", 0)
}

// Property: a line's value is exactly the OR of its drivers' states.
func TestLineValueIsOR(t *testing.T) {
	f := func(ops []uint8) bool {
		const agents = 8
		l := NewLine("P", agents)
		want := [agents]bool{}
		for _, op := range ops {
			agent := int(op % agents)
			assert := op&0x80 != 0
			l.Set(agent, assert)
			want[agent] = assert
		}
		or := false
		n := 0
		for i, w := range want {
			or = or || w
			if w {
				n++
			}
			if l.Driving(i) != w {
				return false
			}
		}
		return l.Value() == or && l.DriverCount() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBankApplyAndValue(t *testing.T) {
	b := NewBank("AB", 4, 3)
	if b.Width() != 4 {
		t.Fatalf("Width = %d", b.Width())
	}
	b.Apply(0, []bool{true, false, true, false}) // 1010
	b.Apply(1, []bool{false, false, true, true}) // 0011
	if got := b.Value(); got != 0b1011 {
		t.Errorf("Value = %04b, want 1011 (wired-OR)", got)
	}
	vals := b.Values()
	want := []bool{true, false, true, true}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("Values[%d] = %v, want %v", i, vals[i], want[i])
		}
	}
	b.Release(0)
	if got := b.Value(); got != 0b0011 {
		t.Errorf("after Release(0), Value = %04b, want 0011", got)
	}
	b.ReleaseAll()
	if b.Value() != 0 {
		t.Error("ReleaseAll left lines asserted")
	}
}

func TestBankLineNames(t *testing.T) {
	b := NewBank("AB", 3, 1)
	if b.Line(0).Name() != "AB0" || b.Line(2).Name() != "AB2" {
		t.Errorf("line names %q, %q", b.Line(0).Name(), b.Line(2).Name())
	}
}

func TestBankApplyWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Apply with wrong width did not panic")
		}
	}()
	NewBank("AB", 3, 1).Apply(0, []bool{true})
}

func TestNewBankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBank with width 0 did not panic")
		}
	}()
	NewBank("AB", 0, 1)
}

// TestNewBankRejectsOverwide is the regression test for the silent
// width>64 truncation: Bank.Value packs the lines into one uint64, and
// a 65-line bank used to shift the most significant line off the top
// instead of failing. Width 64 itself must work, all lines intact.
func TestNewBankRejectsOverwide(t *testing.T) {
	b := NewBank("AB", 64, 1)
	bits := make([]bool, 64)
	for i := range bits {
		bits[i] = true
	}
	b.Apply(0, bits)
	if b.Value() != ^uint64(0) {
		t.Errorf("64-line bank value = %x, want all ones", b.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("NewBank with width 65 did not panic")
		}
	}()
	NewBank("AB", 65, 1)
}

// Property: the bank value is the bitwise OR of all applied patterns.
func TestBankValueIsBitwiseOR(t *testing.T) {
	f := func(a, b, c uint8) bool {
		bank := NewBank("AB", 8, 3)
		patterns := []uint8{a, b, c}
		for agent, p := range patterns {
			bits := make([]bool, 8)
			for i := 0; i < 8; i++ {
				bits[i] = p&(1<<uint(7-i)) != 0
			}
			bank.Apply(agent, bits)
		}
		return bank.Value() == uint64(a|b|c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
