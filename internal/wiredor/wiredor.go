// Package wiredor models open-collector ("wired-OR") bus lines, the
// electrical substrate of the parallel contention arbiter (§2 of the
// paper). Each line is tied high conceptually and carries the logical OR
// of the signals applied by all agents: any agent can assert a "1"; the
// line reads "0" only when every agent releases it.
package wiredor

import "fmt"

// Line is one wired-OR bus line shared by a fixed set of agents.
type Line struct {
	name     string
	drivers  []bool
	asserted int
}

// NewLine creates a line shared by the given number of agents, all
// initially releasing it.
func NewLine(name string, agents int) *Line {
	if agents <= 0 {
		panic(fmt.Sprintf("wiredor: line %q needs at least one agent", name))
	}
	return &Line{name: name, drivers: make([]bool, agents)}
}

// Name returns the line's label (e.g. "BREQ", "AB3").
func (l *Line) Name() string { return l.name }

// Agents returns the number of agents attached to the line.
func (l *Line) Agents() int { return len(l.drivers) }

// Set makes agent drive (true, "assert") or release (false) the line.
func (l *Line) Set(agent int, v bool) {
	if l.drivers[agent] == v {
		return
	}
	l.drivers[agent] = v
	if v {
		l.asserted++
	} else {
		l.asserted--
	}
}

// Value returns the wired-OR of all applied signals.
func (l *Line) Value() bool { return l.asserted > 0 }

// DriverCount returns how many agents are currently asserting the line.
// (Real open-collector lines don't expose this; it exists for tests and
// trace output.)
func (l *Line) DriverCount() int { return l.asserted }

// Driving reports whether the given agent is asserting the line.
func (l *Line) Driving(agent int) bool { return l.drivers[agent] }

// ReleaseAll makes every agent release the line.
func (l *Line) ReleaseAll() {
	for i := range l.drivers {
		l.drivers[i] = false
	}
	l.asserted = 0
}

// Bank is an ordered group of wired-OR lines carrying a multi-bit
// arbitration number, most-significant line first (the paper's
// "arbitration lines").
type Bank struct {
	lines []*Line
}

// NewBank creates width lines named name0..name<width-1>, MSB first.
// Width is capped at 64: Value packs the bank into one uint64, and a
// wider bank would silently shift the most significant lines off the
// top.
func NewBank(name string, width, agents int) *Bank {
	if width <= 0 {
		panic(fmt.Sprintf("wiredor: bank %q needs positive width", name))
	}
	if width > 64 {
		panic(fmt.Sprintf("wiredor: bank %q width %d exceeds 64 (Value packs the bank into one uint64)", name, width))
	}
	b := &Bank{lines: make([]*Line, width)}
	for i := range b.lines {
		b.lines[i] = NewLine(fmt.Sprintf("%s%d", name, i), agents)
	}
	return b
}

// Width returns the number of lines in the bank.
func (b *Bank) Width() int { return len(b.lines) }

// Line returns the i-th line (0 = most significant).
func (b *Bank) Line(i int) *Line { return b.lines[i] }

// Apply drives the bank with the given MSB-first bit pattern for one
// agent. The pattern length must equal the bank width.
func (b *Bank) Apply(agent int, bits []bool) {
	if len(bits) != len(b.lines) {
		panic(fmt.Sprintf("wiredor: pattern width %d != bank width %d", len(bits), len(b.lines)))
	}
	for i, v := range bits {
		b.lines[i].Set(agent, v)
	}
}

// Release makes the agent release every line in the bank.
func (b *Bank) Release(agent int) {
	for _, l := range b.lines {
		l.Set(agent, false)
	}
}

// Values returns the wired-OR value of each line, MSB first.
func (b *Bank) Values() []bool {
	return b.ValuesInto(make([]bool, len(b.lines)))
}

// ValuesInto writes the wired-OR value of each line, MSB first, into dst
// (which must have the bank's width) and returns it. It lets a settle
// loop read the lines every round without allocating.
func (b *Bank) ValuesInto(dst []bool) []bool {
	if len(dst) != len(b.lines) {
		panic(fmt.Sprintf("wiredor: dst width %d != bank width %d", len(dst), len(b.lines)))
	}
	for i, l := range b.lines {
		dst[i] = l.Value()
	}
	return dst
}

// Value returns the bank's wired-OR contents as an unsigned integer.
func (b *Bank) Value() uint64 {
	var v uint64
	for _, l := range b.lines {
		v <<= 1
		if l.Value() {
			v |= 1
		}
	}
	return v
}

// ReleaseAll releases every line for every agent.
func (b *Bank) ReleaseAll() {
	for _, l := range b.lines {
		l.ReleaseAll()
	}
}
