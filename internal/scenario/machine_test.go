package scenario

import (
	"strings"
	"testing"

	"busarb/internal/mp"
)

const validMachine = `{
  "name": "smp-mixed",
  "protocol": "RR1",
  "seed": 4,
  "batches": 3,
  "batch_size": 500,
  "cache_bytes": 4096, "block_bytes": 32, "ways": 2,
  "processors": [
    {"count": 2, "cycle_per_ref": 0.1,
     "pattern": {"kind": "hotcold", "hot_bytes": 2048, "cold_bytes": 1048576,
                 "hot_prob": 0.9, "write_frac": 0.3}},
    {"count": 2, "cycle_per_ref": 0.2,
     "pattern": {"kind": "sequential", "stride": 8, "write_frac": 0.5}},
    {"count": 1, "cycle_per_ref": 0.5,
     "pattern": {"kind": "workingset", "bytes": 1048576}}
  ]
}`

func TestLoadMachineValid(t *testing.T) {
	f, err := LoadMachine(strings.NewReader(validMachine))
	if err != nil {
		t.Fatal(err)
	}
	cfg := f.Config()
	if len(cfg.Processors) != 5 {
		t.Fatalf("processors = %d", len(cfg.Processors))
	}
	// Each processor gets its own pattern and cache instance.
	if cfg.Processors[0].Pattern == cfg.Processors[1].Pattern {
		t.Error("processors share a pattern instance")
	}
	if cfg.Processors[0].Cache == cfg.Processors[1].Cache {
		t.Error("processors share a cache")
	}
	if cfg.Processors[0].Cache.BlockBytes() != 32 {
		t.Errorf("block = %d", cfg.Processors[0].Cache.BlockBytes())
	}
	if _, ok := cfg.Processors[4].Pattern.(*mp.WorkingSet); !ok {
		t.Errorf("last pattern = %T", cfg.Processors[4].Pattern)
	}
}

func TestLoadedMachineRuns(t *testing.T) {
	f, err := LoadMachine(strings.NewReader(validMachine))
	if err != nil {
		t.Fatal(err)
	}
	res := mp.Run(f.Config())
	if res.Bus.Completions != 1500 {
		t.Errorf("completions = %d", res.Bus.Completions)
	}
	for i, p := range res.Progress {
		if p <= 0 {
			t.Errorf("processor %d made no progress", i+1)
		}
	}
}

func TestLoadMachineErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{`,
		"no protocol":   `{"processors":[{"count":2,"cycle_per_ref":1,"pattern":{"kind":"sequential"}}]}`,
		"bad protocol":  `{"protocol":"XX","processors":[{"count":2,"cycle_per_ref":1,"pattern":{"kind":"sequential"}}]}`,
		"no processors": `{"protocol":"RR1","processors":[]}`,
		"zero count":    `{"protocol":"RR1","processors":[{"count":0,"cycle_per_ref":1,"pattern":{"kind":"sequential"}}]}`,
		"zero cycle":    `{"protocol":"RR1","processors":[{"count":2,"cycle_per_ref":0,"pattern":{"kind":"sequential"}}]}`,
		"bad pattern":   `{"protocol":"RR1","processors":[{"count":2,"cycle_per_ref":1,"pattern":{"kind":"zigzag"}}]}`,
		"ws no bytes":   `{"protocol":"RR1","processors":[{"count":2,"cycle_per_ref":1,"pattern":{"kind":"workingset"}}]}`,
		"hc no sizes":   `{"protocol":"RR1","processors":[{"count":2,"cycle_per_ref":1,"pattern":{"kind":"hotcold"}}]}`,
		"single proc":   `{"protocol":"RR1","processors":[{"count":1,"cycle_per_ref":1,"pattern":{"kind":"sequential"}}]}`,
		"unknown field": `{"protocol":"RR1","zap":1,"processors":[{"count":2,"cycle_per_ref":1,"pattern":{"kind":"sequential"}}]}`,
	}
	for name, in := range cases {
		if _, err := LoadMachine(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestIsMachineFile(t *testing.T) {
	if !IsMachineFile([]byte(validMachine)) {
		t.Error("machine file not detected")
	}
	if IsMachineFile([]byte(valid)) {
		t.Error("agent scenario misdetected as machine")
	}
	if IsMachineFile([]byte("not json")) {
		t.Error("garbage misdetected")
	}
}
