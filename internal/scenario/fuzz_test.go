package scenario

import (
	"bytes"
	"testing"
)

// FuzzLoad ensures arbitrary input never panics the parser, and that
// anything it accepts builds a usable simulator configuration.
func FuzzLoad(f *testing.F) {
	f.Add([]byte(valid))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"protocol":"RR1","agents":[{"count":2,"load":0.5}]}`))
	f.Add([]byte(`{"protocol":"FCFS1","seed":9,"agents":[{"count":3,"load":0.01,"cv":0},{"count":1,"load":0.9}]}`))
	f.Add([]byte(`{"protocol":"AAP2","service":2,"arb_overhead":0.5,"agents":[{"count":2,"load":0.3,"urgent_prob":1}]}`))
	f.Add([]byte(hierValid))
	f.Add([]byte(`{"protocol":"FCFS2","topology":{"local_protocol":"RR1","clusters":[` +
		`{"agents":[{"count":8,"load":0.05}]},{"agents":[{"count":8,"load":0.05}]}]}}`))
	f.Add([]byte(`{"protocol":"FP","topology":{"clusters":[` +
		`{"protocol":"RR3","agents":[{"count":2,"load":0.1}]},` +
		`{"protocol":"FCFS1","agents":[{"count":3,"load":0.1,"urgent_prob":0.2}]}]}}`))
	f.Add([]byte(`{"protocol":"RR1","topology":{"clusters":[{"agents":[{"count":1,"load":0.5}]}]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sf, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted scenarios must yield consistent, buildable configs.
		cfg := sf.Config()
		if err := cfg.Validate(); err != nil {
			t.Fatalf("accepted scenario built invalid config: %v", err)
		}
		if cfg.N < 2 || len(cfg.Inter) != cfg.N {
			t.Fatalf("accepted scenario built bad config: N=%d inter=%d", cfg.N, len(cfg.Inter))
		}
		for i, d := range cfg.Inter {
			if d.Mean() <= 0 {
				t.Fatalf("agent %d has non-positive mean interrequest %v", i+1, d.Mean())
			}
		}
		if cfg.UrgentProb != nil && len(cfg.UrgentProb) != cfg.N {
			t.Fatalf("urgent prob length %d != N %d", len(cfg.UrgentProb), cfg.N)
		}
	})
}
