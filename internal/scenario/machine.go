package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"busarb/internal/core"
	"busarb/internal/mp"
)

// LoadMachine parses and validates a machine scenario from r.
func LoadMachine(r io.Reader) (*MachineFile, error) {
	var f MachineFile
	if err := decodeStrict(r, &f); err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// MachineFile is the on-disk format for a full multiprocessor scenario
// (processors + caches + reference patterns), the internal/mp
// counterpart of the plain agent scenario.
//
// Example:
//
//	{
//	  "name": "smp-mixed",
//	  "protocol": "RR1",
//	  "cache_bytes": 8192, "block_bytes": 32, "ways": 2,
//	  "processors": [
//	    {"count": 4, "cycle_per_ref": 0.1,
//	     "pattern": {"kind": "hotcold", "hot_bytes": 4096,
//	                 "cold_bytes": 1048576, "hot_prob": 0.95,
//	                 "write_frac": 0.3}},
//	    {"count": 3, "cycle_per_ref": 0.12,
//	     "pattern": {"kind": "sequential", "stride": 8, "write_frac": 0.5}}
//	  ]
//	}
type MachineFile struct {
	Name       string      `json:"name"`
	Protocol   string      `json:"protocol"`
	Seed       uint64      `json:"seed,omitempty"`
	Batches    int         `json:"batches,omitempty"`
	BatchSize  int         `json:"batch_size,omitempty"`
	CacheBytes int         `json:"cache_bytes,omitempty"`
	BlockBytes int         `json:"block_bytes,omitempty"`
	Ways       int         `json:"ways,omitempty"`
	Processors []ProcGroup `json:"processors"`
}

// ProcGroup describes a run of identical processors.
type ProcGroup struct {
	Count       int         `json:"count"`
	CyclePerRef float64     `json:"cycle_per_ref"`
	Pattern     PatternSpec `json:"pattern"`
}

// PatternSpec selects and parameterizes a reference pattern.
type PatternSpec struct {
	Kind      string  `json:"kind"` // "sequential", "workingset", "hotcold"
	Stride    uint64  `json:"stride,omitempty"`
	Bytes     uint64  `json:"bytes,omitempty"`
	HotBytes  uint64  `json:"hot_bytes,omitempty"`
	ColdBytes uint64  `json:"cold_bytes,omitempty"`
	HotProb   float64 `json:"hot_prob,omitempty"`
	WriteFrac float64 `json:"write_frac,omitempty"`
	Base      uint64  `json:"base,omitempty"`
}

// build constructs a fresh pattern instance (patterns are stateful, so
// each processor needs its own).
func (s PatternSpec) build() (mp.Pattern, error) {
	switch s.Kind {
	case "sequential":
		return &mp.Sequential{Stride: s.Stride, WriteFrac: s.WriteFrac}, nil
	case "workingset":
		if s.Bytes == 0 {
			return nil, fmt.Errorf("scenario: workingset pattern needs bytes")
		}
		return &mp.WorkingSet{Bytes: s.Bytes, WriteFrac: s.WriteFrac, Base: s.Base}, nil
	case "hotcold":
		if s.HotBytes == 0 || s.ColdBytes == 0 {
			return nil, fmt.Errorf("scenario: hotcold pattern needs hot_bytes and cold_bytes")
		}
		return &mp.HotCold{HotBytes: s.HotBytes, ColdBytes: s.ColdBytes,
			HotProb: s.HotProb, WriteFrac: s.WriteFrac}, nil
	}
	return nil, fmt.Errorf("scenario: unknown pattern kind %q", s.Kind)
}

// Validate checks the machine scenario's invariants.
func (f *MachineFile) Validate() error {
	if f.Protocol == "" {
		return fmt.Errorf("scenario %q: protocol required", f.Name)
	}
	if _, err := core.ByName(f.Protocol); err != nil {
		return fmt.Errorf("scenario %q: %w", f.Name, err)
	}
	if len(f.Processors) == 0 {
		return fmt.Errorf("scenario %q: at least one processor group required", f.Name)
	}
	total := 0
	for i, g := range f.Processors {
		if g.Count < 1 {
			return fmt.Errorf("scenario %q: group %d: count %d < 1", f.Name, i, g.Count)
		}
		if g.CyclePerRef <= 0 {
			return fmt.Errorf("scenario %q: group %d: cycle_per_ref must be positive", f.Name, i)
		}
		if _, err := g.Pattern.build(); err != nil {
			return fmt.Errorf("scenario %q: group %d: %w", f.Name, i, err)
		}
		total += g.Count
	}
	if total < 2 {
		return fmt.Errorf("scenario %q: need at least 2 processors, got %d", f.Name, total)
	}
	return nil
}

// Config builds the mp machine configuration. Valid only after a
// successful Validate (LoadMachine validates automatically).
func (f *MachineFile) Config() mp.MachineConfig {
	factory, err := core.ByName(f.Protocol)
	if err != nil {
		panic(err)
	}
	cacheBytes := f.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = 8192
	}
	blockBytes := f.BlockBytes
	if blockBytes == 0 {
		blockBytes = 32
	}
	ways := f.Ways
	if ways == 0 {
		ways = 2
	}
	var procs []*mp.Processor
	for _, g := range f.Processors {
		for i := 0; i < g.Count; i++ {
			pat, err := g.Pattern.build()
			if err != nil {
				panic(err) // Validate guarantees buildability
			}
			procs = append(procs, &mp.Processor{
				Cache:       mp.NewCache(cacheBytes, blockBytes, ways),
				Pattern:     pat,
				CyclePerRef: g.CyclePerRef,
			})
		}
	}
	return mp.MachineConfig{
		Processors: procs,
		Protocol:   factory,
		Seed:       f.Seed,
		Batches:    f.Batches,
		BatchSize:  f.BatchSize,
	}
}

// IsMachineFile sniffs whether raw JSON looks like a machine scenario
// (it has a "processors" key) rather than a plain agent scenario.
func IsMachineFile(raw []byte) bool {
	var probe struct {
		Processors []json.RawMessage `json:"processors"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return false
	}
	return probe.Processors != nil
}
