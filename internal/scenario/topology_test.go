package scenario

import (
	"math"
	"strings"
	"testing"

	"busarb/internal/bussim"
)

const hierValid = `{
  "name": "hier",
  "protocol": "FCFS2",
  "seed": 3,
  "batches": 2,
  "batch_size": 200,
  "topology": {
    "local_protocol": "RR1",
    "clusters": [
      {"agents": [{"count": 4, "load": 0.05}]},
      {"protocol": "RR3", "agents": [{"count": 2, "load": 0.10, "cv": 0.5},
                                     {"count": 2, "load": 0.02, "urgent_prob": 0.5}]}
    ]
  }
}`

func TestLoadTopology(t *testing.T) {
	f, err := Load(strings.NewReader(hierValid))
	if err != nil {
		t.Fatal(err)
	}
	if f.N() != 8 {
		t.Errorf("N = %d, want 8", f.N())
	}
	if want := 4*0.05 + 2*0.10 + 2*0.02; math.Abs(f.TotalLoad()-want) > 1e-12 {
		t.Errorf("TotalLoad = %v, want %v", f.TotalLoad(), want)
	}
	spec := f.Spec()
	if spec == nil {
		t.Fatal("Spec() = nil for topology scenario")
	}
	if got := spec.Name(); got != "FCFS2(RR1:4,RR3:4)" {
		t.Errorf("Spec().Name() = %q", got)
	}
	cfg := f.Config()
	if cfg.Protocol != nil || cfg.Topology == nil {
		t.Fatalf("Config: topology scenario must set Topology, not Protocol")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Config does not validate: %v", err)
	}
	// Identities run cluster by cluster in file order: agents 1..4 at
	// load 0.05 (mean 19), 5..6 at 0.10 (mean 9, cv 0.5), 7..8 at 0.02.
	if math.Abs(cfg.Inter[0].Mean()-19) > 1e-9 {
		t.Errorf("agent 1 mean = %v, want 19", cfg.Inter[0].Mean())
	}
	if cfg.Inter[4].CV() != 0.5 {
		t.Errorf("agent 5 cv = %v, want 0.5", cfg.Inter[4].CV())
	}
	if len(cfg.UrgentProb) != 8 || cfg.UrgentProb[6] != 0.5 || cfg.UrgentProb[0] != 0 {
		t.Errorf("urgent probs = %v", cfg.UrgentProb)
	}
}

func TestTopologyScenarioRuns(t *testing.T) {
	f, err := Load(strings.NewReader(hierValid))
	if err != nil {
		t.Fatal(err)
	}
	res := bussim.Run(f.Config())
	if res.Completions != 400 {
		t.Errorf("completions = %d, want 400", res.Completions)
	}
	if res.ProtocolName != "FCFS2(RR1:4,RR3:4)" {
		t.Errorf("protocol = %s", res.ProtocolName)
	}
}

func TestTopologyValidateErrors(t *testing.T) {
	cases := map[string]struct{ in, want string }{
		"both forms": {
			`{"protocol":"RR1","agents":[{"count":2,"load":0.1}],
			  "topology":{"local_protocol":"RR1","clusters":[
			    {"agents":[{"count":2,"load":0.1}]},
			    {"agents":[{"count":2,"load":0.1}]}]}}`,
			"not both"},
		"one cluster": {
			`{"protocol":"RR1","topology":{"local_protocol":"RR1","clusters":[
			   {"agents":[{"count":4,"load":0.1}]}]}}`,
			"at least 2 clusters"},
		"no cluster protocol": {
			`{"protocol":"RR1","topology":{"clusters":[
			   {"agents":[{"count":2,"load":0.1}]},
			   {"agents":[{"count":2,"load":0.1}]}]}}`,
			"cluster 0: no protocol"},
		"bad local protocol": {
			`{"protocol":"RR1","topology":{"local_protocol":"XX","clusters":[
			   {"agents":[{"count":2,"load":0.1}]},
			   {"agents":[{"count":2,"load":0.1}]}]}}`,
			"local_protocol"},
		"bad cluster protocol": {
			`{"protocol":"RR1","topology":{"local_protocol":"RR1","clusters":[
			   {"agents":[{"count":2,"load":0.1}]},
			   {"protocol":"XX","agents":[{"count":2,"load":0.1}]}]}}`,
			"cluster 1"},
		"empty cluster": {
			`{"protocol":"RR1","topology":{"local_protocol":"RR1","clusters":[
			   {"agents":[{"count":2,"load":0.1}]},
			   {"agents":[]}]}}`,
			"cluster 1: at least one agent group"},
		"bad cluster load": {
			`{"protocol":"RR1","topology":{"local_protocol":"RR1","clusters":[
			   {"agents":[{"count":2,"load":0.1}]},
			   {"agents":[{"count":2,"load":7}]}]}}`,
			"cluster 1: group 0"},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := Load(strings.NewReader(c.in))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("Load = %v, want error containing %q", err, c.want)
			}
		})
	}
}

// TestLoadErrorLocations pins the loader's error reporting: parse
// failures must name the offending field path and line:column instead
// of surfacing a bare json error.
func TestLoadErrorLocations(t *testing.T) {
	cases := map[string]struct {
		in      string
		machine bool
		want    []string
	}{
		"type error names nested field": {
			in: "{\n  \"protocol\": \"RR1\",\n  \"agents\": [{\"count\": 2, \"load\": \"heavy\"}]\n}",
			want: []string{
				"field agents.load", "line 3", "cannot unmarshal string",
			},
		},
		"syntax error located": {
			in:   "{\n  \"protocol\": \"RR1\",\n  \"agents\": [{\"count\": 2,, \"load\": 0.1}]\n}",
			want: []string{"line 3:"},
		},
		"unknown field located": {
			in:   "{\n  \"protocol\": \"RR1\",\n  \"agnets\": [{\"count\": 2, \"load\": 0.1}]\n}",
			want: []string{"line 3:", "agnets"},
		},
		"topology type error names path": {
			in: "{\n  \"protocol\": \"RR1\",\n  \"topology\": {\"clusters\": [{\"agents\": [{\"count\": \"two\", \"load\": 0.1}]}]}\n}",
			want: []string{
				"field topology.clusters.agents.count", "line 3",
			},
		},
		"machine loader shares the reporting": {
			in:      "{\n  \"protocol\": \"RR1\",\n  \"processors\": [{\"count\": \"four\"}]\n}",
			machine: true,
			want:    []string{"field processors.count", "line 3"},
		},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			var err error
			if c.machine {
				_, err = LoadMachine(strings.NewReader(c.in))
			} else {
				_, err = Load(strings.NewReader(c.in))
			}
			if err == nil {
				t.Fatal("Load accepted malformed input")
			}
			for _, w := range c.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q does not mention %q", err, w)
				}
			}
		})
	}
}

func TestLineCol(t *testing.T) {
	raw := []byte("ab\ncde\nf")
	cases := []struct {
		off       int64
		line, col int
	}{
		{0, 1, 1}, {2, 1, 3}, {3, 2, 1}, {5, 2, 3}, {7, 3, 1},
		{-4, 1, 1}, {99, 3, 2}, // clamped
	}
	for _, c := range cases {
		if l, col := lineCol(raw, c.off); l != c.line || col != c.col {
			t.Errorf("lineCol(%d) = %d:%d, want %d:%d", c.off, l, col, c.line, c.col)
		}
	}
}
