package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestShippedScenariosValidate loads every scenario shipped in the
// repository's scenarios/ directory — dispatching exactly the way
// arbsim -scenario does — and asserts it parses and validates: the
// example files are part of the documented surface, so a schema change
// that strands one is a break, not doc rot.
func TestShippedScenariosValidate(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no shipped scenarios found under scenarios/")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if IsMachineFile(raw) {
				mf, err := LoadMachine(bytes.NewReader(raw))
				if err != nil {
					t.Fatalf("loading machine scenario: %v", err)
				}
				if err := mf.Validate(); err != nil {
					t.Errorf("shipped machine scenario does not validate: %v", err)
				}
				return
			}
			f, err := Load(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("loading: %v", err)
			}
			if err := f.Validate(); err != nil {
				t.Errorf("shipped scenario does not validate: %v", err)
			}
			if f.N() < 2 {
				t.Errorf("scenario has %d agents; arbitration needs at least 2", f.N())
			}
		})
	}
}
