package scenario

import (
	"math"
	"strings"
	"testing"

	"busarb/internal/bussim"
)

const valid = `{
  "name": "cpu-cluster-with-dma",
  "protocol": "FCFS2",
  "seed": 7,
  "batches": 4,
  "batch_size": 500,
  "agents": [
    {"count": 15, "load": 0.05, "cv": 1.0},
    {"count": 1,  "load": 0.20, "cv": 0.5, "urgent_prob": 0.1}
  ]
}`

func TestLoadValid(t *testing.T) {
	f, err := Load(strings.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	if f.N() != 16 {
		t.Errorf("N = %d", f.N())
	}
	if math.Abs(f.TotalLoad()-(15*0.05+0.20)) > 1e-12 {
		t.Errorf("TotalLoad = %v", f.TotalLoad())
	}
	cfg := f.Config()
	if cfg.N != 16 || len(cfg.Inter) != 16 {
		t.Fatalf("config N/len = %d/%d", cfg.N, len(cfg.Inter))
	}
	// Group order: agents 1..15 at load 0.05 (mean 19), agent 16 at
	// load 0.2 (mean 4).
	if math.Abs(cfg.Inter[0].Mean()-19) > 1e-9 {
		t.Errorf("agent 1 mean = %v, want 19", cfg.Inter[0].Mean())
	}
	if math.Abs(cfg.Inter[15].Mean()-4) > 1e-9 {
		t.Errorf("agent 16 mean = %v, want 4", cfg.Inter[15].Mean())
	}
	if cfg.Inter[15].CV() != 0.5 {
		t.Errorf("agent 16 cv = %v", cfg.Inter[15].CV())
	}
	if len(cfg.UrgentProb) != 16 || cfg.UrgentProb[15] != 0.1 || cfg.UrgentProb[0] != 0 {
		t.Errorf("urgent probs = %v", cfg.UrgentProb)
	}
}

func TestLoadedScenarioRuns(t *testing.T) {
	f, err := Load(strings.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	res := bussim.Run(f.Config())
	if res.Completions != 2000 {
		t.Errorf("completions = %d", res.Completions)
	}
	if res.ProtocolName != "FCFS2" {
		t.Errorf("protocol = %s", res.ProtocolName)
	}
}

func TestDefaultCVIsExponential(t *testing.T) {
	f, err := Load(strings.NewReader(`{
	  "protocol": "RR1",
	  "agents": [{"count": 3, "load": 0.1}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg := f.Config()
	if cfg.Inter[0].CV() != 1.0 {
		t.Errorf("default cv = %v, want 1", cfg.Inter[0].CV())
	}
	if cfg.UrgentProb != nil {
		t.Error("UrgentProb should be nil when nobody is urgent")
	}
}

func TestExplicitCVZeroIsDeterministic(t *testing.T) {
	f, err := Load(strings.NewReader(`{
	  "protocol": "RR1",
	  "agents": [{"count": 2, "load": 0.1, "cv": 0}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if cv := f.Config().Inter[0].CV(); cv != 0 {
		t.Errorf("cv = %v, want 0 (explicit zero must not default)", cv)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":         `{`,
		"unknown field":    `{"protocol":"RR1","agents":[{"count":2,"load":0.1}],"nope":1}`,
		"missing protocol": `{"agents":[{"count":2,"load":0.1}]}`,
		"unknown protocol": `{"protocol":"XX","agents":[{"count":2,"load":0.1}]}`,
		"no agents":        `{"protocol":"RR1","agents":[]}`,
		"zero count":       `{"protocol":"RR1","agents":[{"count":0,"load":0.1}]}`,
		"load too high":    `{"protocol":"RR1","agents":[{"count":2,"load":1.0}]}`,
		"load zero":        `{"protocol":"RR1","agents":[{"count":2,"load":0}]}`,
		"negative cv":      `{"protocol":"RR1","agents":[{"count":2,"load":0.1,"cv":-1}]}`,
		"bad urgent":       `{"protocol":"RR1","agents":[{"count":2,"load":0.1,"urgent_prob":2}]}`,
		"single agent":     `{"protocol":"RR1","agents":[{"count":1,"load":0.1}]}`,
		"arb > service":    `{"protocol":"RR1","service":1,"arb_overhead":2,"agents":[{"count":2,"load":0.1}]}`,
		"negative service": `{"protocol":"RR1","service":-1,"agents":[{"count":2,"load":0.1}]}`,
	}
	for name, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCustomServiceTime(t *testing.T) {
	f, err := Load(strings.NewReader(`{
	  "protocol": "RR1",
	  "service": 2.0,
	  "arb_overhead": 1.0,
	  "agents": [{"count": 2, "load": 0.25}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg := f.Config()
	// load 0.25 with service 2: mean interrequest = 6.
	if math.Abs(cfg.Inter[0].Mean()-6) > 1e-9 {
		t.Errorf("mean = %v, want 6", cfg.Inter[0].Mean())
	}
	if cfg.Service != 2.0 || cfg.ArbOverhead != 1.0 {
		t.Errorf("timing = %v/%v", cfg.Service, cfg.ArbOverhead)
	}
}
