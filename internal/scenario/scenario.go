// Package scenario loads simulation scenarios from JSON files, so that
// cmd/arbsim (and downstream users) can describe heterogeneous agent
// populations without writing Go. A scenario names the protocol, the
// statistical effort, and groups of agents with per-group offered load,
// interrequest CV, and urgent-request probability.
//
// Example:
//
//	{
//	  "name": "cpu-cluster-with-dma",
//	  "protocol": "FCFS2",
//	  "seed": 7,
//	  "agents": [
//	    {"count": 15, "load": 0.05, "cv": 1.0},
//	    {"count": 1,  "load": 0.20, "cv": 0.5, "urgent_prob": 0.1}
//	  ]
//	}
//
// Agent identities are assigned in file order, starting at 1.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"busarb/internal/bussim"
	"busarb/internal/core"
	"busarb/internal/dist"
)

// Group describes a run of identical agents.
type Group struct {
	// Count is the number of agents in the group (>= 1).
	Count int `json:"count"`
	// Load is each agent's offered load, in (0, 1).
	Load float64 `json:"load"`
	// CV is the interrequest coefficient of variation (default 1.0;
	// note that 0 means deterministic, so the default applies only
	// when the field is absent).
	CV *float64 `json:"cv,omitempty"`
	// UrgentProb is the probability a request is urgent (default 0).
	UrgentProb float64 `json:"urgent_prob,omitempty"`
}

// File is the on-disk scenario format.
type File struct {
	Name      string  `json:"name"`
	Protocol  string  `json:"protocol"`
	Seed      uint64  `json:"seed,omitempty"`
	Batches   int     `json:"batches,omitempty"`
	BatchSize int     `json:"batch_size,omitempty"`
	Service   float64 `json:"service,omitempty"`
	ArbOvh    float64 `json:"arb_overhead,omitempty"`
	Agents    []Group `json:"agents"`
}

// Load parses and validates a scenario from r.
func Load(r io.Reader) (*File, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Validate checks the scenario's invariants.
func (f *File) Validate() error {
	if f.Protocol == "" {
		return fmt.Errorf("scenario %q: protocol required", f.Name)
	}
	if _, err := core.ByName(f.Protocol); err != nil {
		return fmt.Errorf("scenario %q: %w", f.Name, err)
	}
	if len(f.Agents) == 0 {
		return fmt.Errorf("scenario %q: at least one agent group required", f.Name)
	}
	total := 0
	for i, g := range f.Agents {
		if g.Count < 1 {
			return fmt.Errorf("scenario %q: group %d: count %d < 1", f.Name, i, g.Count)
		}
		if g.Load <= 0 || g.Load >= 1 {
			return fmt.Errorf("scenario %q: group %d: per-agent load %v outside (0,1)", f.Name, i, g.Load)
		}
		if g.CV != nil && *g.CV < 0 {
			return fmt.Errorf("scenario %q: group %d: cv %v < 0", f.Name, i, *g.CV)
		}
		if g.UrgentProb < 0 || g.UrgentProb > 1 {
			return fmt.Errorf("scenario %q: group %d: urgent_prob %v outside [0,1]", f.Name, i, g.UrgentProb)
		}
		total += g.Count
	}
	if total < 2 {
		return fmt.Errorf("scenario %q: need at least 2 agents, got %d", f.Name, total)
	}
	if f.Service < 0 || f.ArbOvh < 0 {
		return fmt.Errorf("scenario %q: negative timing parameters", f.Name)
	}
	if f.Service > 0 && f.ArbOvh > f.Service {
		return fmt.Errorf("scenario %q: arbitration overhead %v exceeds service %v", f.Name, f.ArbOvh, f.Service)
	}
	return nil
}

// N returns the total agent count.
func (f *File) N() int {
	n := 0
	for _, g := range f.Agents {
		n += g.Count
	}
	return n
}

// TotalLoad returns the summed offered load.
func (f *File) TotalLoad() float64 {
	t := 0.0
	for _, g := range f.Agents {
		t += float64(g.Count) * g.Load
	}
	return t
}

// Config builds the simulator configuration. It is valid only after a
// successful Validate (Load validates automatically).
func (f *File) Config() bussim.Config {
	factory, err := core.ByName(f.Protocol)
	if err != nil {
		panic(err) // Validate guarantees the name resolves
	}
	service := f.Service
	if service == 0 {
		service = 1.0
	}
	cfg := bussim.Config{
		N:           f.N(),
		Protocol:    factory,
		Service:     f.Service,
		ArbOverhead: f.ArbOvh,
		Seed:        f.Seed,
		Batches:     f.Batches,
		BatchSize:   f.BatchSize,
	}
	anyUrgent := false
	for _, g := range f.Agents {
		if g.UrgentProb > 0 {
			anyUrgent = true
		}
	}
	var urgent []float64
	if anyUrgent {
		urgent = make([]float64, 0, cfg.N)
	}
	inter := make([]dist.Sampler, 0, cfg.N)
	for _, g := range f.Agents {
		cv := 1.0
		if g.CV != nil {
			cv = *g.CV
		}
		mean := bussim.MeanForLoad(g.Load, service)
		for i := 0; i < g.Count; i++ {
			inter = append(inter, dist.ByCV(mean, cv))
			if anyUrgent {
				urgent = append(urgent, g.UrgentProb)
			}
		}
	}
	cfg.Inter = inter
	cfg.UrgentProb = urgent
	return cfg
}
