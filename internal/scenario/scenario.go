// Package scenario loads simulation scenarios from JSON files, so that
// cmd/arbsim (and downstream users) can describe heterogeneous agent
// populations without writing Go. A scenario names the protocol, the
// statistical effort, and groups of agents with per-group offered load,
// interrequest CV, and urgent-request probability.
//
// Example:
//
//	{
//	  "name": "cpu-cluster-with-dma",
//	  "protocol": "FCFS2",
//	  "seed": 7,
//	  "agents": [
//	    {"count": 15, "load": 0.05, "cv": 1.0},
//	    {"count": 1,  "load": 0.20, "cv": 0.5, "urgent_prob": 0.1}
//	  ]
//	}
//
// A scenario may instead describe a hierarchical topology: clusters of
// agents arbitrating locally, cluster winners competing at a root bus
// running the top-level protocol (the paper's §5 hybrid generalized to
// hierarchy):
//
//	{
//	  "name": "hierarchical",
//	  "protocol": "FCFS2",
//	  "topology": {
//	    "local_protocol": "RR1",
//	    "clusters": [
//	      {"agents": [{"count": 8, "load": 0.05}]},
//	      {"protocol": "RR3", "agents": [{"count": 8, "load": 0.05}]}
//	    ]
//	  }
//	}
//
// Agent identities are assigned in file order, starting at 1 (cluster
// by cluster in topology form). The flat form canonicalizes to a
// single-leaf tree, so both forms run the same simulator core.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"busarb/internal/bussim"
	"busarb/internal/core"
	"busarb/internal/dist"
	"busarb/internal/topo"
)

// Group describes a run of identical agents.
type Group struct {
	// Count is the number of agents in the group (>= 1).
	Count int `json:"count"`
	// Load is each agent's offered load, in (0, 1).
	Load float64 `json:"load"`
	// CV is the interrequest coefficient of variation (default 1.0;
	// note that 0 means deterministic, so the default applies only
	// when the field is absent).
	CV *float64 `json:"cv,omitempty"`
	// UrgentProb is the probability a request is urgent (default 0).
	UrgentProb float64 `json:"urgent_prob,omitempty"`
}

// Cluster is one leaf of a topology scenario: agents sharing a local
// bus whose winner competes at the root.
type Cluster struct {
	// Protocol is the cluster's local arbitration protocol; empty
	// means the topology's local_protocol.
	Protocol string `json:"protocol,omitempty"`
	// Agents are the cluster's agent groups.
	Agents []Group `json:"agents"`
}

// Topology describes the hierarchical form: at least two clusters
// whose local winners compete at the root bus under the scenario's
// top-level protocol.
type Topology struct {
	// LocalProtocol is the default local protocol of clusters that do
	// not name their own.
	LocalProtocol string `json:"local_protocol,omitempty"`
	// Clusters are the leaf clusters, in identity order.
	Clusters []Cluster `json:"clusters"`
}

// File is the on-disk scenario format. Set exactly one of Agents
// (flat bus) and Topology (arbitration tree).
type File struct {
	Name      string    `json:"name"`
	Protocol  string    `json:"protocol"`
	Seed      uint64    `json:"seed,omitempty"`
	Batches   int       `json:"batches,omitempty"`
	BatchSize int       `json:"batch_size,omitempty"`
	Service   float64   `json:"service,omitempty"`
	ArbOvh    float64   `json:"arb_overhead,omitempty"`
	Agents    []Group   `json:"agents,omitempty"`
	Topology  *Topology `json:"topology,omitempty"`
}

// Load parses and validates a scenario from r.
func Load(r io.Reader) (*File, error) {
	var f File
	if err := decodeStrict(r, &f); err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// decodeStrict decodes JSON rejecting unknown fields, and reports
// parse failures with the offending field path and line:column —
// "line 5:21: field agents.load: ..." instead of a bare json error.
func decodeStrict(r io.Reader, v any) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return describeJSONError(raw, err, dec.InputOffset())
	}
	return nil
}

// describeJSONError rewraps an encoding/json error with location (and
// field path, when the error carries one). inputOff is the decoder's
// position when the error surfaced — the best anchor for errors that
// carry no offset of their own, like unknown-field rejections.
func describeJSONError(raw []byte, err error, inputOff int64) error {
	switch e := err.(type) {
	case *json.SyntaxError:
		l, c := lineCol(raw, e.Offset)
		return fmt.Errorf("scenario: line %d:%d: %w", l, c, err)
	case *json.UnmarshalTypeError:
		l, c := lineCol(raw, e.Offset)
		if e.Field != "" {
			return fmt.Errorf("scenario: line %d:%d: field %s: cannot unmarshal %s into %s",
				l, c, e.Field, e.Value, e.Type)
		}
		return fmt.Errorf("scenario: line %d:%d: %w", l, c, err)
	default:
		// Unknown-field rejections surface only after the decoder has
		// consumed the field's value, so InputOffset overshoots; point
		// at the field name itself when it appears in the input.
		if name, ok := strings.CutPrefix(err.Error(), `json: unknown field "`); ok {
			name = strings.TrimSuffix(name, `"`)
			if off := bytes.Index(raw, []byte(`"`+name+`"`)); off >= 0 {
				inputOff = int64(off)
			}
		}
		l, c := lineCol(raw, inputOff)
		return fmt.Errorf("scenario: line %d:%d: %w", l, c, err)
	}
}

// lineCol converts a byte offset into 1-based line and column.
func lineCol(raw []byte, off int64) (line, col int) {
	if off < 0 {
		off = 0
	}
	if off > int64(len(raw)) {
		off = int64(len(raw))
	}
	line = 1
	last := 0
	for i, b := range raw[:off] {
		if b == '\n' {
			line++
			last = i + 1
		}
	}
	return line, int(off) - last + 1
}

// validateGroups checks one agent-group list; where names the list in
// errors ("" for the flat form, "cluster N: " in topology form). It
// returns the group list's agent count.
func (f *File) validateGroups(where string, groups []Group) (int, error) {
	total := 0
	for i, g := range groups {
		if g.Count < 1 {
			return 0, fmt.Errorf("scenario %q: %sgroup %d: count %d < 1", f.Name, where, i, g.Count)
		}
		if g.Load <= 0 || g.Load >= 1 {
			return 0, fmt.Errorf("scenario %q: %sgroup %d: per-agent load %v outside (0,1)", f.Name, where, i, g.Load)
		}
		if g.CV != nil && *g.CV < 0 {
			return 0, fmt.Errorf("scenario %q: %sgroup %d: cv %v < 0", f.Name, where, i, *g.CV)
		}
		if g.UrgentProb < 0 || g.UrgentProb > 1 {
			return 0, fmt.Errorf("scenario %q: %sgroup %d: urgent_prob %v outside [0,1]", f.Name, where, i, g.UrgentProb)
		}
		total += g.Count
	}
	return total, nil
}

// Validate checks the scenario's invariants.
func (f *File) Validate() error {
	if f.Protocol == "" {
		return fmt.Errorf("scenario %q: protocol required", f.Name)
	}
	if _, err := core.ByName(f.Protocol); err != nil {
		return fmt.Errorf("scenario %q: %w", f.Name, err)
	}
	if f.Topology != nil && len(f.Agents) > 0 {
		return fmt.Errorf("scenario %q: set agents or topology, not both", f.Name)
	}
	total := 0
	switch {
	case f.Topology != nil:
		t := f.Topology
		if len(t.Clusters) < 2 {
			return fmt.Errorf("scenario %q: topology needs at least 2 clusters, got %d", f.Name, len(t.Clusters))
		}
		if t.LocalProtocol != "" {
			if _, err := core.ByName(t.LocalProtocol); err != nil {
				return fmt.Errorf("scenario %q: local_protocol: %w", f.Name, err)
			}
		}
		for ci := range t.Clusters {
			c := &t.Clusters[ci]
			proto := c.Protocol
			if proto == "" {
				proto = t.LocalProtocol
			}
			if proto == "" {
				return fmt.Errorf("scenario %q: cluster %d: no protocol (set cluster protocol or local_protocol)", f.Name, ci)
			}
			if _, err := core.ByName(proto); err != nil {
				return fmt.Errorf("scenario %q: cluster %d: %w", f.Name, ci, err)
			}
			if len(c.Agents) == 0 {
				return fmt.Errorf("scenario %q: cluster %d: at least one agent group required", f.Name, ci)
			}
			n, err := f.validateGroups(fmt.Sprintf("cluster %d: ", ci), c.Agents)
			if err != nil {
				return err
			}
			total += n
		}
	case len(f.Agents) > 0:
		var err error
		total, err = f.validateGroups("", f.Agents)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("scenario %q: at least one agent group required", f.Name)
	}
	if total < 2 {
		return fmt.Errorf("scenario %q: need at least 2 agents, got %d", f.Name, total)
	}
	if f.Service < 0 || f.ArbOvh < 0 {
		return fmt.Errorf("scenario %q: negative timing parameters", f.Name)
	}
	// Compare the effective timing values (zero means the simulator's
	// defaults, 1.0 service and 0.5 overhead): the overhead must not
	// exceed the service time or the simulator will reject the config.
	service, arbOvh := f.Service, f.ArbOvh
	if service == 0 {
		service = 1.0
	}
	if arbOvh == 0 {
		arbOvh = 0.5
	}
	if arbOvh > service {
		return fmt.Errorf("scenario %q: arbitration overhead %v exceeds service %v", f.Name, arbOvh, service)
	}
	return nil
}

// groups yields every agent group in identity order, regardless of
// form.
func (f *File) groups(visit func(g *Group)) {
	if f.Topology != nil {
		for ci := range f.Topology.Clusters {
			for gi := range f.Topology.Clusters[ci].Agents {
				visit(&f.Topology.Clusters[ci].Agents[gi])
			}
		}
		return
	}
	for gi := range f.Agents {
		visit(&f.Agents[gi])
	}
}

// N returns the total agent count.
func (f *File) N() int {
	n := 0
	f.groups(func(g *Group) { n += g.Count })
	return n
}

// TotalLoad returns the summed offered load.
func (f *File) TotalLoad() float64 {
	t := 0.0
	f.groups(func(g *Group) { t += float64(g.Count) * g.Load })
	return t
}

// Spec returns the scenario's arbitration tree, or nil for the flat
// form. Valid only after a successful Validate.
func (f *File) Spec() *topo.Spec {
	if f.Topology == nil {
		return nil
	}
	children := make([]topo.Spec, len(f.Topology.Clusters))
	for ci := range f.Topology.Clusters {
		c := &f.Topology.Clusters[ci]
		proto := c.Protocol
		if proto == "" {
			proto = f.Topology.LocalProtocol
		}
		n := 0
		for _, g := range c.Agents {
			n += g.Count
		}
		children[ci] = topo.Spec{Protocol: proto, Agents: n}
	}
	return &topo.Spec{Protocol: f.Protocol, Children: children}
}

// Config builds the simulator configuration. It is valid only after a
// successful Validate (Load validates automatically).
func (f *File) Config() bussim.Config {
	service := f.Service
	if service == 0 {
		service = 1.0
	}
	cfg := bussim.Config{
		N:           f.N(),
		Service:     f.Service,
		ArbOverhead: f.ArbOvh,
		Seed:        f.Seed,
		Batches:     f.Batches,
		BatchSize:   f.BatchSize,
	}
	if spec := f.Spec(); spec != nil {
		cfg.Topology = spec
	} else {
		factory, err := core.ByName(f.Protocol)
		if err != nil {
			panic(err) // Validate guarantees the name resolves
		}
		cfg.Protocol = factory
	}
	anyUrgent := false
	f.groups(func(g *Group) {
		if g.UrgentProb > 0 {
			anyUrgent = true
		}
	})
	var urgent []float64
	if anyUrgent {
		urgent = make([]float64, 0, cfg.N)
	}
	inter := make([]dist.Sampler, 0, cfg.N)
	f.groups(func(g *Group) {
		cv := 1.0
		if g.CV != nil {
			cv = *g.CV
		}
		mean := bussim.MeanForLoad(g.Load, service)
		for i := 0; i < g.Count; i++ {
			inter = append(inter, dist.ByCV(mean, cv))
			if anyUrgent {
				urgent = append(urgent, g.UrgentProb)
			}
		}
	})
	cfg.Inter = inter
	cfg.UrgentProb = urgent
	return cfg
}
