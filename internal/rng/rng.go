// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by all simulations in this repository.
//
// Simulation studies must be reproducible: the paper (§4.1) computes
// confidence intervals over batch means of pseudo-random runs, and our
// tests assert properties of specific seeded runs. The standard library's
// math/rand is seedable too, but its generator has changed across Go
// releases; pinning our own keeps results stable forever. The generator
// is xoshiro256**, seeded via splitmix64, the construction recommended by
// Blackman & Vigna.
package rng

import "math"

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type Source struct {
	s         [4]uint64
	spare     float64
	haveSpare bool
}

// New returns a Source seeded from the given seed using splitmix64, so
// that any seed (including 0) yields a well-mixed state.
func New(seed uint64) *Source {
	var src Source
	src.Seed(seed)
	return &src
}

// Seed resets the generator state from seed.
func (r *Source) Seed(seed uint64) {
	r.haveSpare = false
	r.spare = 0
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// ExpFloat64 returns an exponentially distributed value with mean 1,
// via inversion. Inversion (rather than ziggurat) keeps the stream
// consumption per sample constant, which makes interleaved simulations
// reproducible regardless of sample values.
func (r *Source) ExpFloat64() float64 {
	u := r.Float64()
	// u is in [0,1); 1-u is in (0,1], so the log is finite.
	return -math.Log(1 - u)
}

// NormFloat64 returns a standard normal value using the Box-Muller
// transform (again chosen for fixed stream consumption: two uniforms per
// pair of normals; we cache the second).
func (r *Source) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	radius := math.Sqrt(-2 * math.Log(u))
	theta := 2 * math.Pi * v
	r.spare = radius * math.Sin(theta)
	r.haveSpare = true
	return radius * math.Cos(theta)
}

// Split returns a new Source whose state is derived from, but independent
// of, r's current state. Used to give each simulated agent its own
// stream so that changing one agent's parameters does not perturb the
// samples seen by others (common random numbers across experiments).
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xd1342543de82ef95)
}
