package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d vs %d", i, av, bv)
		}
	}
}

func TestSeedResets(t *testing.T) {
	a := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = a.Uint64()
	}
	a.Seed(7)
	for i := range first {
		if v := a.Uint64(); v != first[i] {
			t.Fatalf("after reseed, value %d = %d, want %d", i, v, first[i])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		if s1 == s2 {
			return true
		}
		a, b := New(s1), New(s2)
		// Over 8 draws the chance of full collision is negligible.
		for i := 0; i < 8; i++ {
			if a.Uint64() != b.Uint64() {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(3)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(9)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(7) bucket %d has %d hits, want ~10000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 400000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("exp mean = %v, want ~1", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("exp variance = %v, want ~1", variance)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 400000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(5)
	child := parent.Split()
	// The child stream must differ from the parent's continuing stream.
	same := true
	for i := 0; i < 8; i++ {
		if parent.Uint64() != child.Uint64() {
			same = false
			break
		}
	}
	if same {
		t.Error("split child reproduces parent stream")
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(5)
	b := New(5)
	ca, cb := a.Split(), b.Split()
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		x, y, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkExpFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.ExpFloat64()
	}
	_ = sink
}
