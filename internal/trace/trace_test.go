package trace

import (
	"errors"
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		Request: "request", ArbStart: "arb-start", ArbResolve: "arb-resolve",
		ArbRepass: "arb-repass", Grant: "grant", Complete: "complete",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if Kind(42).String() != "Kind(42)" {
		t.Errorf("unknown kind = %q", Kind(42).String())
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Time: 1.5, Kind: Request, Agent: 3}, "request"},
		{Event{Time: 1.5, Kind: Request, Agent: 3, Urgent: true}, "urgent"},
		{Event{Time: 2, Kind: ArbStart, Agents: []int{1, 3}}, "[1 3]"},
		{Event{Time: 2, Kind: Grant, Agent: 7}, "agent=7"},
		{Event{Time: 2, Kind: ArbRepass}, "arb-repass"},
	}
	for _, c := range cases {
		if got := c.e.String(); !strings.Contains(got, c.want) {
			t.Errorf("String() = %q, want substring %q", got, c.want)
		}
	}
}

func TestBuffer(t *testing.T) {
	var b Buffer
	for i := 0; i < 5; i++ {
		b.Record(Event{Time: float64(i), Kind: Grant, Agent: i})
	}
	if b.Len() != 5 {
		t.Fatalf("Len = %d", b.Len())
	}
	evs := b.Events()
	evs[0].Agent = 99 // must not affect the buffer (copy)
	if b.Events()[0].Agent == 99 {
		t.Error("Events() exposed internal slice")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Error("Reset failed")
	}
}

func TestBufferCapDropsOldest(t *testing.T) {
	b := Buffer{Cap: 3}
	for i := 0; i < 10; i++ {
		b.Record(Event{Time: float64(i)})
	}
	evs := b.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	if evs[0].Time != 7 || evs[2].Time != 9 {
		t.Errorf("kept %v..%v, want most recent 7..9", evs[0].Time, evs[2].Time)
	}
}

func TestWriter(t *testing.T) {
	var sb strings.Builder
	w := Writer{W: &sb}
	w.Record(Event{Time: 3.25, Kind: Grant, Agent: 2})
	w.Record(Event{Time: 4.25, Kind: Complete, Agent: 2})
	out := sb.String()
	if !strings.Contains(out, "grant") || !strings.Contains(out, "complete") {
		t.Errorf("output:\n%s", out)
	}
	if strings.Count(out, "\n") != 2 {
		t.Errorf("want 2 lines, got %q", out)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, errors.New("disk full")
}

func TestWriterStopsAfterError(t *testing.T) {
	fw := &failWriter{}
	w := Writer{W: fw}
	w.Record(Event{Kind: Grant})
	w.Record(Event{Kind: Grant})
	if w.Err == nil {
		t.Fatal("error not captured")
	}
	if fw.n != 1 {
		t.Errorf("writes after error: %d", fw.n)
	}
}

func TestMulti(t *testing.T) {
	var a, b Buffer
	m := Multi{&a, &b}
	m.Record(Event{Kind: Grant, Agent: 1})
	if a.Len() != 1 || b.Len() != 1 {
		t.Error("Multi did not fan out")
	}
}

func TestFilter(t *testing.T) {
	var b Buffer
	f := Filter{Next: &b, Kinds: map[Kind]bool{Grant: true}}
	f.Record(Event{Kind: Grant})
	f.Record(Event{Kind: Request})
	f.Record(Event{Kind: Complete})
	if b.Len() != 1 || b.Events()[0].Kind != Grant {
		t.Errorf("filtered events: %v", b.Events())
	}
}
