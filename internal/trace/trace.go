// Package trace records structured simulation events — request
// arrivals, arbitrations, grants, completions — for debugging,
// visualization, and the §2.1 observation that the arbiter's state "is
// available and can be monitored on the bus ... useful for software
// initialization of the system and for diagnosing system failures".
//
// A Recorder is attached to a simulation via bussim.Config.Trace; each
// event is forwarded to a Sink. Sinks included: an in-memory buffer
// (for tests and analysis) and a text writer (for humans). Events carry
// enough to reconstruct the full bus schedule.
package trace

import (
	"fmt"
	"io"
	"sync"
)

// Kind enumerates event types.
type Kind int

// Event kinds, in rough lifecycle order of a request.
const (
	// Request: an agent asserted the bus request line.
	Request Kind = iota
	// ArbStart: an arbitration began (Agents = request-line snapshot).
	ArbStart
	// ArbResolve: an arbitration resolved (Agent = winner).
	ArbResolve
	// ArbRepass: an empty RR3 pass occurred; a new pass follows.
	ArbRepass
	// Grant: an agent became bus master.
	Grant
	// Complete: a bus transaction finished.
	Complete
)

// String returns the event kind's name.
func (k Kind) String() string {
	switch k {
	case Request:
		return "request"
	case ArbStart:
		return "arb-start"
	case ArbResolve:
		return "arb-resolve"
	case ArbRepass:
		return "arb-repass"
	case Grant:
		return "grant"
	case Complete:
		return "complete"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one simulation occurrence.
type Event struct {
	Time   float64
	Kind   Kind
	Agent  int   // the acting agent, 0 when not applicable
	Agents []int // arbitration snapshot (ArbStart only)
	Urgent bool  // request class (Request only)
}

// String renders the event on one line.
func (e Event) String() string {
	switch e.Kind {
	case ArbStart:
		return fmt.Sprintf("%10.2f  %-11s competitors=%v", e.Time, e.Kind, e.Agents)
	case Request:
		u := ""
		if e.Urgent {
			u = " urgent"
		}
		return fmt.Sprintf("%10.2f  %-11s agent=%d%s", e.Time, e.Kind, e.Agent, u)
	case ArbRepass:
		return fmt.Sprintf("%10.2f  %-11s", e.Time, e.Kind)
	default:
		return fmt.Sprintf("%10.2f  %-11s agent=%d", e.Time, e.Kind, e.Agent)
	}
}

// Sink consumes events.
type Sink interface {
	Record(e Event)
}

// Buffer is an in-memory Sink, safe for concurrent use.
type Buffer struct {
	mu     sync.Mutex
	events []Event
	// Cap bounds memory; 0 means unbounded. When full, the oldest
	// events are dropped (a ring of the most recent activity, which is
	// what post-mortem debugging wants).
	Cap int
}

// Record implements Sink.
func (b *Buffer) Record(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = append(b.events, e)
	if b.Cap > 0 && len(b.events) > b.Cap {
		drop := len(b.events) - b.Cap
		b.events = append(b.events[:0], b.events[drop:]...)
	}
}

// Events returns a copy of the recorded events.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, len(b.events))
	copy(out, b.events)
	return out
}

// Len returns the number of buffered events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Reset discards all buffered events.
func (b *Buffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = b.events[:0]
}

// Writer is a Sink that renders each event as a text line.
type Writer struct {
	W io.Writer
	// Err holds the first write error; subsequent events are dropped.
	Err error
}

// Record implements Sink.
func (w *Writer) Record(e Event) {
	if w.Err != nil {
		return
	}
	_, w.Err = fmt.Fprintln(w.W, e.String())
}

// Multi fans events out to several sinks.
type Multi []Sink

// Record implements Sink.
func (m Multi) Record(e Event) {
	for _, s := range m {
		s.Record(e)
	}
}

// Filter forwards only events whose kind is enabled.
type Filter struct {
	Next  Sink
	Kinds map[Kind]bool
}

// Record implements Sink.
func (f *Filter) Record(e Event) {
	if f.Kinds[e.Kind] {
		f.Next.Record(e)
	}
}
