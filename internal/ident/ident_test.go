package ident

import (
	"testing"
	"testing/quick"
)

func TestWidth(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{10, 4}, {30, 5}, {31, 5}, {32, 6}, {63, 6}, {64, 7},
	}
	for _, c := range cases {
		if got := Width(c.n); got != c.want {
			t.Errorf("Width(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	// The paper notes Futurebus uses k=6, i.e. up to 63 agents.
	if Width(63) != 6 {
		t.Error("Futurebus k=6 example violated")
	}
}

func TestTotalBits(t *testing.T) {
	l := Layout{StaticBits: 5, RRBit: true, CounterBits: 5, PriorityBit: true}
	if got := l.TotalBits(); got != 12 {
		t.Errorf("TotalBits = %d, want 12", got)
	}
	// The paper (§3.2): FCFS at most doubles the identity size.
	fc := Layout{StaticBits: 6, CounterBits: 6}
	if fc.TotalBits() != 12 {
		t.Error("FCFS layout should double the static width")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	layouts := []Layout{
		{StaticBits: 4},
		{StaticBits: 4, RRBit: true},
		{StaticBits: 5, CounterBits: 5},
		{StaticBits: 5, CounterBits: 5, PriorityBit: true},
		{StaticBits: 6, RRBit: true, CounterBits: 3, PriorityBit: true},
	}
	for _, l := range layouts {
		f := func(static, counter uint8, rr, prio bool) bool {
			n := Number{
				// Identity 0 is reserved, so valid statics are
				// 1..2^StaticBits-1.
				Static:   1 + int(static)%(1<<l.StaticBits-1),
				RR:       rr && l.RRBit,
				Counter:  0,
				Priority: prio && l.PriorityBit,
			}
			if l.CounterBits > 0 {
				n.Counter = int(counter) % (1 << l.CounterBits)
			}
			return l.Decode(l.Encode(n)) == n
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("layout %+v: %v", l, err)
		}
	}
}

func TestEncodeOrdering(t *testing.T) {
	l := Layout{StaticBits: 4, RRBit: true, CounterBits: 4, PriorityBit: true}
	// Priority dominates counter dominates RR dominates static.
	lowPrio := l.Encode(Number{Static: 15, Counter: 15, RR: true})
	highPrio := l.Encode(Number{Static: 1, Priority: true})
	if highPrio <= lowPrio {
		t.Error("priority bit must dominate all other fields")
	}
	lowCtr := l.Encode(Number{Static: 15, RR: true, Counter: 3})
	highCtr := l.Encode(Number{Static: 1, Counter: 4})
	if highCtr <= lowCtr {
		t.Error("counter must dominate RR bit and static id")
	}
	noRR := l.Encode(Number{Static: 15})
	withRR := l.Encode(Number{Static: 1, RR: true})
	if withRR <= noRR {
		t.Error("RR bit must dominate static id")
	}
	small := l.Encode(Number{Static: 3})
	big := l.Encode(Number{Static: 9})
	if big <= small {
		t.Error("static ordering broken")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		layout Layout
		n      Number
		ok     bool
	}{
		{"min static", Layout{StaticBits: 3}, Number{Static: 1}, true},
		{"max static", Layout{StaticBits: 3}, Number{Static: 7}, true},
		{"full composite", Layout{StaticBits: 3, RRBit: true, CounterBits: 2, PriorityBit: true},
			Number{Static: 5, RR: true, Counter: 3, Priority: true}, true},
		// The reserved identity: a winning identity of zero means "no
		// competitor" (§2.1), so no agent may carry Static == 0. This
		// used to be accepted.
		{"reserved zero", Layout{StaticBits: 3}, Number{Static: 0}, false},
		{"reserved zero wide", Layout{StaticBits: 6, CounterBits: 6}, Number{Static: 0, Counter: 3}, false},
		{"static too big", Layout{StaticBits: 3}, Number{Static: 8}, false},
		{"static negative", Layout{StaticBits: 3}, Number{Static: -1}, false},
		{"RR without RR bit", Layout{StaticBits: 3}, Number{Static: 1, RR: true}, false},
		{"counter without field", Layout{StaticBits: 3}, Number{Static: 1, Counter: 1}, false},
		{"counter too big", Layout{StaticBits: 3, CounterBits: 2}, Number{Static: 1, Counter: 4}, false},
		{"priority without bit", Layout{StaticBits: 3}, Number{Static: 1, Priority: true}, false},
		{"no static field", Layout{}, Number{}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.layout.Validate(c.n)
			if c.ok && err != nil {
				t.Errorf("Validate(%+v) = %v, want nil", c.n, err)
			}
			if !c.ok && err == nil {
				t.Errorf("Validate(%+v) accepted invalid number", c.n)
			}
		})
	}
}

// TestEncodeRejectsReservedIdentity pins the reserved identity at the
// Encode layer too: protocols must never place identity 0 on the lines.
func TestEncodeRejectsReservedIdentity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Encode(Static: 0) did not panic")
		}
	}()
	Layout{StaticBits: 4}.Encode(Number{Static: 0})
}

func TestEncodePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Encode of invalid number did not panic")
		}
	}()
	Layout{StaticBits: 2}.Encode(Number{Static: 4})
}

func TestBitsRoundTrip(t *testing.T) {
	l := Layout{StaticBits: 5, RRBit: true, CounterBits: 5}
	f := func(raw uint16) bool {
		v := uint64(raw) % (1 << l.TotalBits())
		bs := l.Bits(v)
		if len(bs) != l.TotalBits() {
			return false
		}
		return l.FromBits(bs) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestBitsMSBFirst(t *testing.T) {
	l := Layout{StaticBits: 4}
	bs := l.Bits(0b1010)
	want := []bool{true, false, true, false}
	for i := range want {
		if bs[i] != want[i] {
			t.Fatalf("Bits(0b1010) = %v, want %v", bs, want)
		}
	}
}

func TestMax(t *testing.T) {
	if w, i := Max(nil); w != 0 || i != -1 {
		t.Errorf("Max(nil) = (%d, %d)", w, i)
	}
	if w, i := Max([]uint64{0}); w != 0 || i != 0 {
		t.Errorf("Max([0]) = (%d, %d)", w, i)
	}
	if w, i := Max([]uint64{3, 9, 9, 2}); w != 9 || i != 1 {
		t.Errorf("Max = (%d, %d), want (9, 1)", w, i)
	}
}

func TestMaxProperty(t *testing.T) {
	f := func(vs []uint64) bool {
		w, i := Max(vs)
		if len(vs) == 0 {
			return w == 0 && i == -1
		}
		if i < 0 || i >= len(vs) || vs[i] != w {
			return false
		}
		for _, v := range vs {
			if v > w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The paper's §3.1 example: agents 1010101 and 0011100 compete; the
// winner must be 1010101.
func TestPaperExampleIdentities(t *testing.T) {
	l := Layout{StaticBits: 7}
	a := l.Encode(Number{Static: 0b1010101})
	b := l.Encode(Number{Static: 0b0011100})
	w, i := Max([]uint64{a, b})
	if w != a || i != 0 {
		t.Errorf("winner = %b, want 1010101", w)
	}
}
