// Package ident models the composite arbitration numbers ("identities")
// used by the parallel contention arbiter and the paper's protocols.
//
// The paper's key construction (§3) is that an agent's arbitration number
// is a concatenation of fields, most-significant first:
//
//	[ priority bit | waiting-time counter | round-robin bit | static ID ]
//
// Fixed priority uses only the static ID. RR1 adds the round-robin bit
// (§3.1, first implementation). FCFS adds the waiting-time counter as the
// most significant part (§3.2). Priority integration (§2.4, §3.1, §3.2)
// adds one more most-significant bit. The maximum-finding arbitration
// then realizes each scheduling policy.
package ident

import (
	"fmt"
	"math/bits"
)

// Width returns k = ceil(log2(N+1)), the number of arbitration lines
// needed for N agents with identities 1..N (identity 0 is reserved to
// mean "no competitor"), as in §2.1.
func Width(n int) int {
	if n < 1 {
		return 0
	}
	return bits.Len(uint(n))
}

// Layout describes which fields a protocol's arbitration numbers carry
// and how wide each is. Encoded numbers compare correctly as plain
// unsigned integers.
type Layout struct {
	StaticBits  int  // width of the static identity field (>= 1)
	RRBit       bool // round-robin priority bit present (RR protocol)
	CounterBits int  // waiting-time counter width (FCFS protocol), 0 if absent
	PriorityBit bool // urgent-request bit present (priority integration)
}

// LayoutFor returns the minimal fixed-priority layout for n agents.
func LayoutFor(n int) Layout { return Layout{StaticBits: Width(n)} }

// TotalBits returns the number of bus arbitration lines the layout
// occupies.
func (l Layout) TotalBits() int {
	total := l.StaticBits + l.CounterBits
	if l.RRBit {
		total++
	}
	if l.PriorityBit {
		total++
	}
	return total
}

// Number is one agent's composite arbitration number, in decoded form.
type Number struct {
	Static   int  // statically assigned identity, 1..2^StaticBits-1
	RR       bool // round-robin priority bit (RR1)
	Counter  int  // waiting-time counter (FCFS)
	Priority bool // urgent-request bit
}

// Validate reports whether n fits in the layout.
func (l Layout) Validate(n Number) error {
	if l.StaticBits < 1 {
		return fmt.Errorf("ident: layout has no static field")
	}
	// Identity 0 is reserved: a winning identity of zero means "no
	// competitor participated" (§2.1, §3.1), so no agent may carry it.
	if n.Static < 1 || n.Static >= 1<<l.StaticBits {
		return fmt.Errorf("ident: static id %d out of range 1..%d (identity 0 is reserved, §2.1)", n.Static, 1<<l.StaticBits-1)
	}
	if n.Counter < 0 || (l.CounterBits == 0 && n.Counter != 0) ||
		(l.CounterBits > 0 && n.Counter >= 1<<l.CounterBits) {
		return fmt.Errorf("ident: counter %d out of range for %d bits", n.Counter, l.CounterBits)
	}
	if n.RR && !l.RRBit {
		return fmt.Errorf("ident: RR bit set but layout has none")
	}
	if n.Priority && !l.PriorityBit {
		return fmt.Errorf("ident: priority bit set but layout has none")
	}
	return nil
}

// Encode packs n into an unsigned integer whose natural ordering is the
// arbitration ordering (priority > counter > RR bit > static ID). It
// panics if n does not fit the layout; protocols construct numbers
// internally, so a failure is a programming error.
func (l Layout) Encode(n Number) uint64 {
	if err := l.Validate(n); err != nil {
		panic(err)
	}
	v := uint64(n.Static)
	shift := uint(l.StaticBits)
	if l.RRBit {
		if n.RR {
			v |= 1 << shift
		}
		shift++
	}
	if l.CounterBits > 0 {
		v |= uint64(n.Counter) << shift
		shift += uint(l.CounterBits)
	}
	if l.PriorityBit {
		if n.Priority {
			v |= 1 << shift
		}
	}
	return v
}

// Decode unpacks an encoded arbitration number.
func (l Layout) Decode(v uint64) Number {
	var n Number
	n.Static = int(v & (1<<l.StaticBits - 1))
	shift := uint(l.StaticBits)
	if l.RRBit {
		n.RR = v&(1<<shift) != 0
		shift++
	}
	if l.CounterBits > 0 {
		n.Counter = int((v >> shift) & (1<<l.CounterBits - 1))
		shift += uint(l.CounterBits)
	}
	if l.PriorityBit {
		n.Priority = v&(1<<shift) != 0
	}
	return n
}

// Bits expands an encoded number into a most-significant-first bit slice
// of the layout's total width, the form applied to the bus arbitration
// lines (line 0 carries the MSB, matching the paper's "line i" notation
// counted from the top).
func (l Layout) Bits(v uint64) []bool {
	w := l.TotalBits()
	out := make([]bool, w)
	for i := 0; i < w; i++ {
		out[i] = v&(1<<uint(w-1-i)) != 0
	}
	return out
}

// FromBits reassembles an encoded number from a most-significant-first
// bit slice.
func (l Layout) FromBits(bs []bool) uint64 {
	var v uint64
	for _, b := range bs {
		v <<= 1
		if b {
			v |= 1
		}
	}
	return v
}

// Max returns the maximum of the encoded numbers and its index, the
// abstract result of a parallel contention arbitration. It returns
// (0, -1) for an empty set, matching the paper's "winning identity of
// zero indicates that no agent participated" (§3.1, third
// implementation).
func Max(vs []uint64) (winner uint64, index int) {
	index = -1
	for i, v := range vs {
		if v > winner || index < 0 {
			winner, index = v, i
		}
	}
	return winner, index
}
