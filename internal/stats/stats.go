// Package stats implements the output-analysis machinery the paper uses
// in §4.1: the method of batch means with Student-t confidence intervals
// (10 batches of 8000 samples, 90% confidence), plus running moment
// accumulators and empirical CDFs for Figure 4.1.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates count, mean, and variance of a stream using
// Welford's numerically stable online algorithm. The zero value is ready
// to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the sample mean (0 if empty).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance (0 if n < 2).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation (0 if empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 if empty).
func (r *Running) Max() float64 { return r.max }

// Reset clears the accumulator.
func (r *Running) Reset() { *r = Running{} }

// Merge combines another accumulator into r (parallel Welford merge).
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n1, n2 := float64(r.n), float64(o.n)
	delta := o.mean - r.mean
	total := n1 + n2
	r.m2 += o.m2 + delta*delta*n1*n2/total
	r.mean += delta * n2 / total
	r.n += o.n
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
}

// tCritical90 holds two-sided 90% critical values of the Student t
// distribution (i.e. the 0.95 quantile) for 1..30 degrees of freedom.
// The paper's 10-batch runs use df = 9 (1.833).
var tCritical90 = []float64{
	math.NaN(), // df = 0 unused
	6.314, 2.920, 2.353, 2.132, 2.015,
	1.943, 1.895, 1.860, 1.833, 1.812,
	1.796, 1.782, 1.771, 1.761, 1.753,
	1.746, 1.740, 1.734, 1.729, 1.725,
	1.721, 1.717, 1.714, 1.711, 1.708,
	1.706, 1.703, 1.701, 1.699, 1.697,
}

// TCritical90 returns the two-sided 90% Student-t critical value for the
// given degrees of freedom. Beyond the table it returns the normal
// approximation 1.645.
func TCritical90(df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if df < len(tCritical90) {
		return tCritical90[df]
	}
	return 1.645
}

// Estimate is a point estimate with a symmetric confidence half-width,
// as reported throughout the paper's tables ("1.04 ± 0.05").
type Estimate struct {
	Mean     float64
	HalfW    float64 // half-width of the 90% confidence interval
	NBatches int
}

// String formats the estimate in the paper's "m ± h" style.
func (e Estimate) String() string { return fmt.Sprintf("%.2f ± %.2f", e.Mean, e.HalfW) }

// Contains reports whether v lies within the confidence interval.
func (e Estimate) Contains(v float64) bool {
	return v >= e.Mean-e.HalfW && v <= e.Mean+e.HalfW
}

// BatchMeans computes a batch-means estimate with a 90% confidence
// interval from per-batch means. This is the paper's §4.1 method: run the
// simulation in B batches, treat the batch means as (approximately)
// independent observations, and apply the Student t interval with B-1
// degrees of freedom.
func BatchMeans(batches []float64) Estimate {
	b := len(batches)
	if b == 0 {
		return Estimate{Mean: math.NaN(), HalfW: math.NaN()}
	}
	var acc Running
	for _, v := range batches {
		acc.Add(v)
	}
	if b == 1 {
		return Estimate{Mean: acc.Mean(), HalfW: math.NaN(), NBatches: 1}
	}
	se := acc.StdDev() / math.Sqrt(float64(b))
	return Estimate{
		Mean:     acc.Mean(),
		HalfW:    TCritical90(b-1) * se,
		NBatches: b,
	}
}

// Lag1Autocorrelation estimates the lag-1 autocorrelation of a series
// of batch means. The method of batch means assumes approximately
// independent batches; a large positive value (rule of thumb: > 0.3)
// warns that batches are too short and the confidence intervals
// understate the error [Lave83]. Returns 0 for fewer than 3 batches.
func Lag1Autocorrelation(batches []float64) float64 {
	n := len(batches)
	if n < 3 {
		return 0
	}
	var acc Running
	for _, v := range batches {
		acc.Add(v)
	}
	mean := acc.Mean()
	var num, den float64
	for i := 0; i < n; i++ {
		d := batches[i] - mean
		den += d * d
		if i+1 < n {
			num += d * (batches[i+1] - mean)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// RatioOfBatches computes a confidence interval on the ratio of two
// quantities measured batch-by-batch (e.g. throughput of agent N over
// throughput of agent 1): the per-batch ratios are the observations.
// Panics if the slices differ in length.
func RatioOfBatches(num, den []float64) Estimate {
	if len(num) != len(den) {
		panic("stats: batch count mismatch")
	}
	ratios := make([]float64, len(num))
	for i := range num {
		ratios[i] = num[i] / den[i]
	}
	return BatchMeans(ratios)
}

// Histogram is a fixed-bin-width histogram with overflow tracking, used
// for empirical waiting-time CDFs (Figure 4.1).
type Histogram struct {
	BinWidth float64
	bins     []int64
	overflow int64
	count    int64
	sum      float64
}

// NewHistogram creates a histogram covering [0, maxValue) with the given
// bin width; observations at or beyond maxValue land in an overflow
// bucket (still counted in the CDF denominator).
func NewHistogram(binWidth, maxValue float64) *Histogram {
	if binWidth <= 0 || maxValue <= 0 {
		panic("stats: histogram needs positive bin width and range")
	}
	n := int(math.Ceil(maxValue / binWidth))
	return &Histogram{BinWidth: binWidth, bins: make([]int64, n)}
}

// Add records one observation (negative values clamp to bin 0).
func (h *Histogram) Add(x float64) {
	h.count++
	h.sum += x
	if x < 0 {
		x = 0
	}
	i := int(x / h.BinWidth)
	if i >= len(h.bins) {
		h.overflow++
		return
	}
	h.bins[i]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the mean of all recorded observations (exact, not binned).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// CDF returns the empirical P(X <= x), counting a bin only once x has
// reached its upper edge (a conservative step function; exact at bin
// edges for continuous data). Overflow mass is treated as clamped to the
// histogram's maximum value, so CDF(maxValue) = 1.
func (h *Histogram) CDF(x float64) float64 {
	if h.count == 0 {
		return 0
	}
	if x < 0 {
		return 0
	}
	// Number of complete bins whose upper edge i*BinWidth is <= x; the
	// epsilon absorbs binary rounding of x/BinWidth at exact edges.
	k := int(math.Floor(x/h.BinWidth + 1e-9))
	var cum int64
	for i := 0; i < len(h.bins) && i < k; i++ {
		cum += h.bins[i]
	}
	if k >= len(h.bins) {
		cum += h.overflow
	}
	return float64(cum) / float64(h.count)
}

// Points returns the CDF sampled at every bin upper edge, for plotting.
// Each point is (upper edge, P(X <= edge)).
func (h *Histogram) Points() []CDFPoint {
	pts := make([]CDFPoint, 0, len(h.bins))
	var cum int64
	for i, b := range h.bins {
		cum += b
		pts = append(pts, CDFPoint{
			X: float64(i+1) * h.BinWidth,
			P: float64(cum) / float64(max64(h.count, 1)),
		})
	}
	return pts
}

// CDFPoint is one (x, P(X<=x)) sample of an empirical CDF.
type CDFPoint struct {
	X float64
	P float64
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Quantile returns the q-quantile (0<=q<=1) of the binned data using the
// bin upper edge; overflow mass maps to +Inf.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum int64
	for i, b := range h.bins {
		cum += b
		if cum >= target {
			return float64(i+1) * h.BinWidth
		}
	}
	return math.Inf(1)
}

// ECDF is an exact empirical CDF over stored samples. It is used where
// exact quantiles matter (the Table 4.3 overlap search); Histogram is
// used where memory matters.
type ECDF struct {
	sorted bool
	xs     []float64
}

// Add records one observation.
func (e *ECDF) Add(x float64) {
	e.xs = append(e.xs, x)
	e.sorted = false
}

// Reserve pre-grows the sample store to hold n observations, so a
// collector that knows its sample count up front (the simulator does:
// batches x batch size) avoids the append regrowth copies.
func (e *ECDF) Reserve(n int) {
	if n > cap(e.xs) {
		xs := make([]float64, len(e.xs), n)
		copy(xs, e.xs)
		e.xs = xs
	}
}

// N returns the number of observations.
func (e *ECDF) N() int { return len(e.xs) }

func (e *ECDF) ensureSorted() {
	if !e.sorted {
		sort.Float64s(e.xs)
		e.sorted = true
	}
}

// P returns the empirical P(X <= x).
func (e *ECDF) P(x float64) float64 {
	if len(e.xs) == 0 {
		return 0
	}
	e.ensureSorted()
	// Index of the first element > x.
	i := sort.SearchFloat64s(e.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.xs))
}

// Mean returns the sample mean.
func (e *ECDF) Mean() float64 {
	if len(e.xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range e.xs {
		s += v
	}
	return s / float64(len(e.xs))
}

// MeanMin returns E[min(c, X)], the expected overlapped execution in the
// paper's Table 4.3 model for a fixed overlap value c.
func (e *ECDF) MeanMin(c float64) float64 {
	if len(e.xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range e.xs {
		s += math.Min(c, v)
	}
	return s / float64(len(e.xs))
}
