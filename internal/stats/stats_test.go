package stats

import (
	"math"
	"testing"
	"testing/quick"

	"busarb/internal/rng"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(v)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if got := r.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if got := r.Variance(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.StdDev() != 0 {
		t.Error("empty accumulator should report zeros")
	}
	r.Add(3)
	if r.Mean() != 3 || r.Variance() != 0 {
		t.Error("single-sample accumulator wrong")
	}
}

func TestRunningReset(t *testing.T) {
	var r Running
	r.Add(1)
	r.Add(2)
	r.Reset()
	if r.N() != 0 || r.Mean() != 0 {
		t.Error("Reset did not clear state")
	}
}

// Property: merging two accumulators equals accumulating the
// concatenated stream.
func TestRunningMergeProperty(t *testing.T) {
	f := func(seed uint64, n1, n2 uint8) bool {
		src := rng.New(seed)
		var a, b, all Running
		for i := 0; i < int(n1); i++ {
			v := src.NormFloat64() * 10
			a.Add(v)
			all.Add(v)
		}
		for i := 0; i < int(n2); i++ {
			v := src.NormFloat64()*3 + 5
			b.Add(v)
			all.Add(v)
		}
		a.Merge(&b)
		if a.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		return math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-all.Variance()) < 1e-7 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTCritical90(t *testing.T) {
	if got := TCritical90(9); got != 1.833 {
		t.Errorf("t(9) = %v, want 1.833 (the paper's 10-batch value)", got)
	}
	if got := TCritical90(1); got != 6.314 {
		t.Errorf("t(1) = %v", got)
	}
	if got := TCritical90(100); got != 1.645 {
		t.Errorf("t(100) = %v, want normal approx", got)
	}
	if !math.IsNaN(TCritical90(0)) {
		t.Error("t(0) should be NaN")
	}
}

func TestBatchMeans(t *testing.T) {
	batches := []float64{10, 12, 11, 9, 13, 10, 11, 12, 9, 13}
	e := BatchMeans(batches)
	if e.NBatches != 10 {
		t.Fatalf("NBatches = %d", e.NBatches)
	}
	if math.Abs(e.Mean-11) > 1e-12 {
		t.Errorf("Mean = %v, want 11", e.Mean)
	}
	// StdDev of these batches is sqrt(20/9); se = sqrt(20/9)/sqrt(10).
	wantHW := 1.833 * math.Sqrt(20.0/9) / math.Sqrt(10)
	if math.Abs(e.HalfW-wantHW) > 1e-9 {
		t.Errorf("HalfW = %v, want %v", e.HalfW, wantHW)
	}
	if !e.Contains(11) || e.Contains(20) {
		t.Error("Contains misbehaves")
	}
}

func TestBatchMeansDegenerate(t *testing.T) {
	if e := BatchMeans(nil); !math.IsNaN(e.Mean) {
		t.Error("empty batch means should be NaN")
	}
	e := BatchMeans([]float64{5})
	if e.Mean != 5 || !math.IsNaN(e.HalfW) {
		t.Error("single batch should have NaN half-width")
	}
}

func TestRatioOfBatches(t *testing.T) {
	num := []float64{2, 4, 6}
	den := []float64{1, 2, 3}
	e := RatioOfBatches(num, den)
	if math.Abs(e.Mean-2) > 1e-12 || e.HalfW > 1e-9 {
		t.Errorf("ratio estimate = %+v, want exactly 2 ± 0", e)
	}
}

func TestRatioOfBatchesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	RatioOfBatches([]float64{1}, []float64{1, 2})
}

func TestEstimateString(t *testing.T) {
	e := Estimate{Mean: 1.0449, HalfW: 0.051}
	if got := e.String(); got != "1.04 ± 0.05" {
		t.Errorf("String = %q", got)
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram(1.0, 10)
	for _, v := range []float64{0.5, 1.5, 1.7, 2.5, 9.5, 12} {
		h.Add(v)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.CDF(0.99); got != 0 {
		t.Errorf("CDF(0.99) = %v, want 0 (bin 0 not complete yet)", got)
	}
	if got := h.CDF(1.0); math.Abs(got-1.0/6) > 1e-12 {
		t.Errorf("CDF(1.0) = %v, want 1/6", got)
	}
	if got := h.CDF(2.0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(2.0) = %v, want 0.5", got)
	}
	if got := h.CDF(10); got != 1 {
		t.Errorf("CDF(10) = %v, want 1 (overflow clamps to max)", got)
	}
	if got := h.CDF(100); got != 1 {
		t.Errorf("CDF(100) = %v, want 1", got)
	}
	if got := h.CDF(-1); got != 0 {
		t.Errorf("CDF(-1) = %v, want 0", got)
	}
	if got := h.Mean(); math.Abs(got-(0.5+1.5+1.7+2.5+9.5+12)/6) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
}

func TestHistogramNegativeClamp(t *testing.T) {
	h := NewHistogram(1, 4)
	h.Add(-2)
	if got := h.CDF(1); got != 1 {
		t.Errorf("negative sample should clamp to bin 0; CDF(1)=%v", got)
	}
}

func TestHistogramPointsMonotone(t *testing.T) {
	h := NewHistogram(0.25, 20)
	r := rng.New(4)
	for i := 0; i < 10000; i++ {
		h.Add(r.ExpFloat64() * 3)
	}
	pts := h.Points()
	if len(pts) != 80 {
		t.Fatalf("len(Points) = %d", len(pts))
	}
	prev := 0.0
	for _, p := range pts {
		if p.P < prev {
			t.Fatalf("CDF not monotone at x=%v", p.X)
		}
		prev = p.P
	}
	if prev > 1+1e-12 {
		t.Errorf("CDF exceeds 1: %v", prev)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) / 10) // 0.0 .. 9.9
	}
	if q := h.Quantile(0.5); q != 5 {
		t.Errorf("median = %v, want 5 (bin upper edge)", q)
	}
	if q := h.Quantile(1.0); q != 10 {
		t.Errorf("q(1.0) = %v, want 10", q)
	}
	h2 := NewHistogram(1, 2)
	h2.Add(100)
	if q := h2.Quantile(0.9); !math.IsInf(q, 1) {
		t.Errorf("overflow quantile = %v, want +Inf", q)
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	for _, args := range [][2]float64{{0, 1}, {1, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v, %v) did not panic", args[0], args[1])
				}
			}()
			NewHistogram(args[0], args[1])
		}()
	}
}

func TestECDF(t *testing.T) {
	var e ECDF
	for _, v := range []float64{3, 1, 2, 2, 5} {
		e.Add(v)
	}
	if e.N() != 5 {
		t.Fatalf("N = %d", e.N())
	}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.2}, {1.5, 0.2}, {2, 0.6}, {3, 0.8}, {5, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.P(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if got := e.Mean(); math.Abs(got-2.6) > 1e-12 {
		t.Errorf("Mean = %v, want 2.6", got)
	}
	if got := e.MeanMin(2); math.Abs(got-(2+1+2+2+2)/5.0) > 1e-12 {
		t.Errorf("MeanMin(2) = %v", got)
	}
}

func TestECDFAddAfterQuery(t *testing.T) {
	var e ECDF
	e.Add(5)
	_ = e.P(5)
	e.Add(1) // must re-sort lazily
	if got := e.P(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(1) after late Add = %v, want 0.5", got)
	}
}

// Property: histogram CDF and exact ECDF agree at bin edges.
func TestHistogramMatchesECDFProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		h := NewHistogram(0.5, 50)
		var e ECDF
		for i := 0; i < 500; i++ {
			v := r.ExpFloat64() * 4
			h.Add(v)
			e.Add(v)
		}
		for edge := 0.5; edge <= 49.5; edge += 0.5 {
			// Exact samples rarely land on an edge; when none do, the
			// binned CDF at the edge equals the exact CDF at the edge.
			if math.Abs(h.CDF(edge)-e.P(edge)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLag1Autocorrelation(t *testing.T) {
	// A constant series: zero by convention (den = 0).
	if got := Lag1Autocorrelation([]float64{2, 2, 2, 2}); got != 0 {
		t.Errorf("constant series = %v", got)
	}
	// A strongly alternating series has negative lag-1 correlation.
	if got := Lag1Autocorrelation([]float64{1, -1, 1, -1, 1, -1, 1, -1}); got > -0.5 {
		t.Errorf("alternating series = %v, want strongly negative", got)
	}
	// A trend has positive lag-1 correlation.
	if got := Lag1Autocorrelation([]float64{1, 2, 3, 4, 5, 6, 7, 8}); got < 0.3 {
		t.Errorf("trending series = %v, want positive", got)
	}
	// Too few batches: 0.
	if got := Lag1Autocorrelation([]float64{1, 2}); got != 0 {
		t.Errorf("short series = %v", got)
	}
	// IID noise: near zero.
	src := rng.New(8)
	series := make([]float64, 2000)
	for i := range series {
		series[i] = src.NormFloat64()
	}
	if got := Lag1Autocorrelation(series); math.Abs(got) > 0.06 {
		t.Errorf("iid series = %v, want ~0", got)
	}
}

func TestBatchMeansCoverage(t *testing.T) {
	// Statistical sanity: the 90% CI should contain the true mean in
	// roughly 90% of replications. With 200 replications, expect at
	// least 80% coverage (loose bound to keep the test deterministic).
	src := rng.New(99)
	contained := 0
	const reps = 200
	for rep := 0; rep < reps; rep++ {
		batches := make([]float64, 10)
		for b := range batches {
			var acc Running
			for i := 0; i < 200; i++ {
				acc.Add(src.ExpFloat64()) // true mean 1
			}
			batches[b] = acc.Mean()
		}
		if BatchMeans(batches).Contains(1.0) {
			contained++
		}
	}
	if contained < int(0.80*reps) {
		t.Errorf("CI coverage %d/%d, want >= 80%%", contained, reps)
	}
}
