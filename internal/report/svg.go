package report

import (
	"fmt"
	"io"
	"strings"

	"busarb/internal/experiment"
)

// Figure41SVG renders the waiting-time CDFs as a standalone SVG plot —
// a publication-shaped regeneration of the paper's Figure 4.1 with no
// external plotting dependency.
func Figure41SVG(w io.Writer, f experiment.Figure41Result) error {
	const (
		width   = 640
		height  = 420
		mLeft   = 60
		mRight  = 20
		mTop    = 40
		mBottom = 50
	)
	plotW := float64(width - mLeft - mRight)
	plotH := float64(height - mTop - mBottom)
	if len(f.Points) == 0 {
		return fmt.Errorf("report: figure has no points")
	}
	maxX := f.Points[len(f.Points)-1].X

	x := func(v float64) float64 { return mLeft + v/maxX*plotW }
	y := func(p float64) float64 { return mTop + (1-p)*plotH }

	path := func(get func(experiment.FigurePoint) float64) string {
		var b strings.Builder
		for i, p := range f.Points {
			cmd := 'L'
			if i == 0 {
				cmd = 'M'
			}
			fmt.Fprintf(&b, "%c%.1f %.1f ", cmd, x(p.X), y(get(p)))
		}
		return b.String()
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="serif" font-size="16" text-anchor="middle">Figure 4.1: CDF of the Bus Waiting Time (%d agents, load %.1f)</text>`,
		width/2, f.N, f.Load)

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`,
		mLeft, mTop+plotH, width-mRight, mTop+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%.1f" stroke="black"/>`,
		mLeft, mTop, mLeft, mTop+plotH)
	// Y ticks at 0, .25, .5, .75, 1 with gridlines.
	for i := 0; i <= 4; i++ {
		p := float64(i) / 4
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`,
			mLeft, y(p), width-mRight, y(p))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="serif" font-size="12" text-anchor="end">%.2f</text>`,
			mLeft-6, y(p)+4, p)
	}
	// X ticks: five divisions.
	for i := 0; i <= 5; i++ {
		v := maxX * float64(i) / 5
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="serif" font-size="12" text-anchor="middle">%.0f</text>`,
			x(v), mTop+plotH+18, v)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="serif" font-size="13" text-anchor="middle">waiting time (bus transaction times)</text>`,
		width/2, height-12)

	// Mean-wait marker.
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="#999" stroke-dasharray="4 3"/>`,
		x(f.W), mTop, x(f.W), mTop+plotH)
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="serif" font-size="11" text-anchor="middle" fill="#555">W = %.1f</text>`,
		x(f.W), mTop-4, f.W)

	// The two CDFs.
	fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="#1f77b4" stroke-width="2"/>`,
		path(func(p experiment.FigurePoint) float64 { return p.FCFS }))
	fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="#d62728" stroke-width="2" stroke-dasharray="6 3"/>`,
		path(func(p experiment.FigurePoint) float64 { return p.RR }))

	// Legend.
	lx, ly := mLeft+20, mTop+16
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#1f77b4" stroke-width="2"/>`, lx, ly, lx+30, ly)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="serif" font-size="13">FCFS</text>`, lx+36, ly+4)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#d62728" stroke-width="2" stroke-dasharray="6 3"/>`, lx, ly+20, lx+30, ly+20)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="serif" font-size="13">RR</text>`, lx+36, ly+24)

	b.WriteString(`</svg>`)
	_, err := io.WriteString(w, b.String())
	return err
}

// MemBusCSV exports the split-vs-connected sweep.
func MemBusCSV(w io.Writer, rows []experiment.MemBusRow) error {
	header := []string{"mem_time", "lat_connected", "lat_split", "tput_connected", "tput_split",
		"split_bus_util", "split_bank_util"}
	data := make([][]float64, len(rows))
	for i, r := range rows {
		data[i] = []float64{r.MemTime, r.LatConnected, r.LatSplit, r.TputConnected, r.TputSplit,
			r.BusUtilSplit, r.BankUtilSplit}
	}
	return csvWrite(w, header, data)
}

// RobustnessCSV exports the fault-injection study.
func RobustnessCSV(w io.Writer, rows []experiment.RobustnessRow) error {
	header := []string{"fault_every", "rot_collisions", "rot_fairness", "rr_fairness"}
	data := make([][]float64, len(rows))
	for i, r := range rows {
		data[i] = []float64{float64(r.FaultEvery), float64(r.CollisionsRot), r.FairnessRot, r.FairnessRR}
	}
	return csvWrite(w, header, data)
}
