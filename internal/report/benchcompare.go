// Benchmark regression gating: diff two BENCH_<date>.json snapshots
// and name the benchmarks that got worse. An allocs/op increase is
// always a regression (the repository's hot loops pin zero steady-state
// allocations, so any growth is a real structural change); ns/op is
// gated by a configurable relative threshold because wall-time moves
// with the hardware the suite ran on.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ReadBenchJSON parses a BENCH_<date>.json snapshot (the format
// WriteBenchJSON emits).
func ReadBenchJSON(r io.Reader) (*BenchSuite, error) {
	var s BenchSuite
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("report: parsing bench snapshot: %w", err)
	}
	return &s, nil
}

// BenchRegression is one benchmark that got worse between snapshots.
type BenchRegression struct {
	Name   string  // fully qualified: pkg.BenchmarkName
	Metric string  // "allocs/op" or "ns/op"
	Old    float64 // value in the old snapshot
	New    float64 // value in the new snapshot
}

func (r BenchRegression) String() string {
	return fmt.Sprintf("%s: %s %v -> %v", r.Name, r.Metric, r.Old, r.New)
}

// benchKey identifies a benchmark across snapshots.
func benchKey(b BenchResult) string {
	if b.Pkg != "" {
		return b.Pkg + "." + b.Name
	}
	return b.Name
}

// allocSlack is the relative allocs/op growth tolerated before it
// counts as a regression. Macro benchmarks (whole simulation runs with
// thousands of allocs/op) drift by a count or two with the iteration
// count, because one-time setup amortizes differently; 1% absorbs that
// while keeping the zero-alloc pins exact — any allocation on a
// zero-alloc path still fails.
const allocSlack = 0.01

// CompareBench diffs two snapshots. An allocs/op increase beyond
// allocSlack is always a regression. nsThreshold gates ns/op as a
// relative increase (0.25 fails on >25% slower); a negative threshold
// disables the ns/op check entirely (the cross-hardware CI setting).
// Benchmarks present only in old are returned in missing — renames and
// removals are for a human to judge, not an automatic failure.
// Benchmarks only in new are new coverage and ignored.
func CompareBench(old, new *BenchSuite, nsThreshold float64) (regressions []BenchRegression, missing []string) {
	byKey := make(map[string]BenchResult, len(new.Benchmarks))
	for _, b := range new.Benchmarks {
		byKey[benchKey(b)] = b
	}
	for _, ob := range old.Benchmarks {
		key := benchKey(ob)
		nb, ok := byKey[key]
		if !ok {
			missing = append(missing, key)
			continue
		}
		if float64(nb.AllocsPerOp) > float64(ob.AllocsPerOp)*(1+allocSlack) {
			regressions = append(regressions, BenchRegression{
				Name: key, Metric: "allocs/op",
				Old: float64(ob.AllocsPerOp), New: float64(nb.AllocsPerOp),
			})
		}
		if nsThreshold >= 0 && ob.NsPerOp > 0 && nb.NsPerOp > ob.NsPerOp*(1+nsThreshold) {
			regressions = append(regressions, BenchRegression{
				Name: key, Metric: "ns/op",
				Old: ob.NsPerOp, New: nb.NsPerOp,
			})
		}
	}
	sort.Slice(regressions, func(i, j int) bool {
		if regressions[i].Name != regressions[j].Name {
			return regressions[i].Name < regressions[j].Name
		}
		return regressions[i].Metric < regressions[j].Metric
	})
	sort.Strings(missing)
	return regressions, missing
}
