package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"busarb/internal/bussim"
	"busarb/internal/core"
	"busarb/internal/experiment"
	"busarb/internal/stats"
)

func smallResult(t *testing.T) *bussim.Result {
	t.Helper()
	f, _ := core.ByName("RR1")
	return bussim.Run(bussim.Config{
		N: 4, Protocol: f, Seed: 3,
		Inter:   bussim.UniformLoad(4, 1.0, 1.0, 1.0),
		Batches: 3, BatchSize: 200,
	})
}

func TestWriteResultJSONRoundTrip(t *testing.T) {
	res := smallResult(t)
	var buf bytes.Buffer
	if err := WriteResultJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var decoded ResultJSON
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if decoded.Protocol != "RR1" || decoded.N != 4 || len(decoded.Agents) != 4 {
		t.Errorf("decoded = %+v", decoded)
	}
	if decoded.Completions != res.Completions {
		t.Errorf("completions %d != %d", decoded.Completions, res.Completions)
	}
	if decoded.Agents[0].ID != 1 || decoded.Agents[3].ID != 4 {
		t.Errorf("agent ids wrong: %+v", decoded.Agents)
	}
}

func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	recs, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v\n%s", err, s)
	}
	return recs
}

func fakeEstimate(m, h float64) stats.Estimate { return stats.Estimate{Mean: m, HalfW: h} }

func TestTable41CSV(t *testing.T) {
	rows := []experiment.Table41Row{
		{Load: 0.25, Lambda: 0.25, RatioRR: fakeEstimate(1.0, 0.02), RatioFCFS: fakeEstimate(1.01, 0.03)},
		{Load: 2.0, Lambda: 1.0, RatioRR: fakeEstimate(1.0, 0.01), RatioFCFS: fakeEstimate(1.09, 0.01)},
	}
	var buf bytes.Buffer
	if err := Table41CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, buf.String())
	if len(recs) != 3 || len(recs[0]) != 6 {
		t.Fatalf("shape = %dx%d", len(recs), len(recs[0]))
	}
	if recs[0][0] != "load" || recs[2][4] != "1.09" {
		t.Errorf("records = %v", recs)
	}
}

func TestTable41CSVWithAAP(t *testing.T) {
	aap := fakeEstimate(1.99, 0.02)
	rows := []experiment.Table41Row{
		{Load: 7.5, Lambda: 1.0, RatioRR: fakeEstimate(1, 0), RatioFCFS: fakeEstimate(1.01, 0), RatioAAP: &aap},
	}
	var buf bytes.Buffer
	if err := Table41CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, buf.String())
	if len(recs[0]) != 8 || recs[0][6] != "ratio_aap" {
		t.Errorf("header = %v", recs[0])
	}
	if recs[1][6] != "1.99" {
		t.Errorf("aap cell = %v", recs[1][6])
	}
}

func TestTable42And45CSV(t *testing.T) {
	var buf bytes.Buffer
	err := Table42CSV(&buf, []experiment.Table42Row{{
		Load: 1, W: 2.77, SDFCFS: fakeEstimate(1.18, 0.02),
		SDRR: fakeEstimate(1.30, 0.02), SDRatio: fakeEstimate(1.10, 0.02),
	}})
	if err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, buf.String())
	if recs[1][1] != "2.77" {
		t.Errorf("W cell = %v", recs[1][1])
	}

	buf.Reset()
	err = Table45CSV(&buf, []experiment.Table45Row{{CV: 0, LoadRatio: 0.7, Ratio: fakeEstimate(0.5, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	recs = parseCSV(t, buf.String())
	if recs[1][2] != "0.5" {
		t.Errorf("ratio cell = %v", recs[1][2])
	}
}

func TestFigure41CSV(t *testing.T) {
	f := experiment.Figure41Result{
		N: 30, Load: 1.5, W: 11,
		Points: []experiment.FigurePoint{{X: 1, RR: 0.1, FCFS: 0.05}, {X: 2, RR: 0.3, FCFS: 0.25}},
	}
	var buf bytes.Buffer
	if err := Figure41CSV(&buf, f); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, buf.String())
	if len(recs) != 3 || recs[2][2] != "0.25" {
		t.Errorf("records = %v", recs)
	}
}

func TestTable43And44CSV(t *testing.T) {
	var buf bytes.Buffer
	err := Table43CSV(&buf, []experiment.Table43Row{{
		Load: 2, W: 6, WNetRR: 0.5, WNetFCFS: 0.2, ProdRR: 0.95, ProdFCFS: 0.98, Overlap: 7,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if recs := parseCSV(t, buf.String()); recs[1][6] != "7" {
		t.Errorf("overlap cell = %v", recs[1][6])
	}

	buf.Reset()
	err = Table44CSV(&buf, []experiment.Table44Row{{
		Load: 1.03, Lambda: 0.92, LoadRatio: 2,
		RatioRR: fakeEstimate(1.78, 0.06), RatioFCFS: fakeEstimate(1.78, 0.06),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if recs := parseCSV(t, buf.String()); recs[1][2] != "2" {
		t.Errorf("load_ratio cell = %v", recs[1][2])
	}
}

func TestTableJSON(t *testing.T) {
	rows := []experiment.Table45Row{{CV: 0.5, LoadRatio: 0.7, Ratio: fakeEstimate(0.76, 0.01)}}
	var buf bytes.Buffer
	if err := TableJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded) != 1 || decoded[0]["CV"].(float64) != 0.5 {
		t.Errorf("decoded = %v", decoded)
	}
}

type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, bytes.ErrTooLarge }

func TestCSVWriteErrorPropagates(t *testing.T) {
	err := Table45CSV(errWriter{}, []experiment.Table45Row{{CV: 0}})
	if err == nil {
		t.Error("write error not propagated")
	}
}

func TestFigure41SVG(t *testing.T) {
	f := experiment.Figure41Result{
		N: 30, Load: 1.5, W: 11,
		Points: []experiment.FigurePoint{
			{X: 5, RR: 0.1, FCFS: 0.05},
			{X: 11, RR: 0.5, FCFS: 0.55},
			{X: 20, RR: 0.95, FCFS: 1.0},
		},
	}
	var buf bytes.Buffer
	if err := Figure41SVG(&buf, f); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "FCFS", "Figure 4.1", "W = 11.0", "stroke=\"#1f77b4\""} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if err := Figure41SVG(&buf, experiment.Figure41Result{}); err == nil {
		t.Error("empty figure accepted")
	}
}

func TestMemBusAndRobustnessCSV(t *testing.T) {
	var buf bytes.Buffer
	err := MemBusCSV(&buf, []experiment.MemBusRow{{
		MemTime: 2, LatConnected: 21.3, LatSplit: 4.1,
		TputConnected: 0.33, TputSplit: 0.64, BusUtilSplit: 0.64, BankUtilSplit: 0.16,
	}})
	if err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, buf.String())
	if recs[1][0] != "2" || recs[1][4] != "0.64" {
		t.Errorf("membus csv = %v", recs)
	}
	buf.Reset()
	err = RobustnessCSV(&buf, []experiment.RobustnessRow{{
		FaultEvery: 500, CollisionsRot: 21367, FairnessRot: 0.34, FairnessRR: 1.0,
	}})
	if err != nil {
		t.Fatal(err)
	}
	recs = parseCSV(t, buf.String())
	if recs[1][1] != "21367" {
		t.Errorf("robustness csv = %v", recs)
	}
}

func TestLinePlotSVG(t *testing.T) {
	var buf bytes.Buffer
	err := LinePlotSVG(&buf, "Waiting time vs load", "offered load", "W", []Series{
		{Label: "10 agents", X: []float64{0.25, 1, 2}, Y: []float64{1.64, 2.77, 6.0}},
		{Label: "30 agents", X: []float64{0.25, 1, 2}, Y: []float64{1.66, 4.11, 16.0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "30 agents", "offered load", "stroke=\"#d62728\""} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q", want)
		}
	}
	// Error paths.
	if err := LinePlotSVG(&buf, "t", "x", "y", nil); err == nil {
		t.Error("empty series accepted")
	}
	if err := LinePlotSVG(&buf, "t", "x", "y", []Series{{Label: "bad", X: []float64{1}, Y: nil}}); err == nil {
		t.Error("malformed series accepted")
	}
	if err := LinePlotSVG(&buf, "t", "x", "y", []Series{{Label: "zero", X: []float64{0}, Y: []float64{0}}}); err == nil {
		t.Error("degenerate range accepted")
	}
}
