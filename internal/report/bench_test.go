package report

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: busarb
cpu: Test CPU @ 2.00GHz
BenchmarkTable41_10Agents 	       1	  82756260 ns/op	         1.074 peak-FCFS-ratio	  116296 B/op	    1663 allocs/op
BenchmarkSimulatorThroughput-8 	      37	  31360922 ns/op	    127953 completions/s	   12345 B/op	      67 allocs/op
PASS
ok  	busarb	4.944s
pkg: busarb/internal/other
BenchmarkOther 	     100	     12345 ns/op
PASS
ok  	busarb/internal/other	0.100s
`

func TestParseBench(t *testing.T) {
	s, err := ParseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if s.Goos != "linux" || s.Goarch != "amd64" || s.CPU != "Test CPU @ 2.00GHz" {
		t.Errorf("bad header: %+v", s)
	}
	if len(s.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(s.Benchmarks))
	}

	b := s.Benchmarks[0]
	if b.Name != "BenchmarkTable41_10Agents" || b.Pkg != "busarb" ||
		b.Iterations != 1 || b.NsPerOp != 82756260 ||
		b.BytesPerOp != 116296 || b.AllocsPerOp != 1663 {
		t.Errorf("bad first benchmark: %+v", b)
	}
	if got := b.Metrics["peak-FCFS-ratio"]; got != 1.074 {
		t.Errorf("peak-FCFS-ratio = %v, want 1.074", got)
	}

	if b := s.Benchmarks[1]; b.Name != "BenchmarkSimulatorThroughput" || b.Procs != 8 {
		t.Errorf("procs suffix not split: %+v", b)
	}
	if b := s.Benchmarks[2]; b.Pkg != "busarb/internal/other" || b.NsPerOp != 12345 {
		t.Errorf("pkg header not tracked: %+v", b)
	}
}

func TestParseBenchSplitReportLine(t *testing.T) {
	// A benchmark that writes to stdout makes go test emit the name on
	// its own line; the parser must skip it rather than fail.
	in := "BenchmarkChatty\nsome output\nBenchmarkChatty 	      10	   100 ns/op\n"
	s, err := ParseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 1 || s.Benchmarks[0].Iterations != 10 {
		t.Fatalf("got %+v", s.Benchmarks)
	}
}

func TestParseBenchMalformed(t *testing.T) {
	if _, err := ParseBench(strings.NewReader("BenchmarkBad 	 notanumber 	 5 ns/op\n")); err == nil {
		t.Error("malformed iteration count not rejected")
	}
}

func TestWriteBenchJSONRoundTrip(t *testing.T) {
	s, err := ParseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	s.Date = "2026-08-06"
	var buf strings.Builder
	if err := WriteBenchJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	var back BenchSuite
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Date != "2026-08-06" || len(back.Benchmarks) != len(s.Benchmarks) {
		t.Errorf("round trip lost data: %+v", back)
	}
}
