// Benchmark-trajectory support: parse the text output of
// `go test -bench -benchmem` into structured records and serialize them
// as the repository's BENCH_<date>.json files, so every PR can append a
// comparable snapshot of the simulator's performance (see `make
// bench-json`).
package report

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// BenchResult is one parsed benchmark line. The standard ns/op, B/op and
// allocs/op measurements get dedicated fields; everything else (the
// domain metrics the suite reports via b.ReportMetric, e.g.
// "peak-FCFS-ratio") lands in Metrics keyed by unit.
type BenchResult struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg,omitempty"`
	Procs       int                `json:"procs,omitempty"` // -P name suffix, if present
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// BenchSuite is a full `go test -bench` run: the environment header plus
// every benchmark line, in output order.
type BenchSuite struct {
	Date       string        `json:"date"` // YYYY-MM-DD, set by the caller
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// ParseBench reads `go test -bench [-benchmem]` text output and returns
// the structured suite. Non-benchmark lines (test results, PASS/ok,
// metric chatter) are skipped; a malformed Benchmark line is an error so
// truncated output cannot masquerade as a clean (if small) run.
func ParseBench(r io.Reader) (*BenchSuite, error) {
	s := &BenchSuite{}
	pkg := "" // most recent "pkg:" header; ./... runs emit one per package
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			s.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			s.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			s.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if len(strings.Fields(line)) == 1 {
				// A bare name line: the benchmark wrote to stdout and go
				// test split the report. The measurements follow later.
				continue
			}
			b, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			b.Pkg = pkg
			s.Benchmarks = append(s.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseBenchLine(line string) (BenchResult, error) {
	fields := strings.Fields(line)
	// Name, iterations, then (value, unit) pairs.
	if len(fields) < 2 || len(fields)%2 != 0 {
		return BenchResult{}, fmt.Errorf("report: malformed benchmark line %q", line)
	}
	b := BenchResult{Name: fields[0]}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchResult{}, fmt.Errorf("report: bad iteration count in %q", line)
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return BenchResult{}, fmt.Errorf("report: bad value %q in %q", fields[i], line)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = int64(val)
		case "allocs/op":
			b.AllocsPerOp = int64(val)
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, nil
}

// WriteBenchJSON writes the suite as indented JSON (the BENCH_<date>.json
// format archived at the repository root).
func WriteBenchJSON(w io.Writer, s *BenchSuite) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
