package report

import (
	"strings"
	"testing"
)

func suite(bs ...BenchResult) *BenchSuite { return &BenchSuite{Benchmarks: bs} }

func TestCompareBench(t *testing.T) {
	old := suite(
		BenchResult{Name: "BenchmarkKernel", Pkg: "busarb/internal/bitarb", NsPerOp: 100, AllocsPerOp: 0},
		BenchResult{Name: "BenchmarkRun", Pkg: "busarb/internal/bussim", NsPerOp: 1000, AllocsPerOp: 12},
		BenchResult{Name: "BenchmarkGone", Pkg: "busarb/internal/core", NsPerOp: 50},
	)

	t.Run("clean", func(t *testing.T) {
		new := suite(
			BenchResult{Name: "BenchmarkKernel", Pkg: "busarb/internal/bitarb", NsPerOp: 110, AllocsPerOp: 0},
			BenchResult{Name: "BenchmarkRun", Pkg: "busarb/internal/bussim", NsPerOp: 900, AllocsPerOp: 12},
			BenchResult{Name: "BenchmarkGone", Pkg: "busarb/internal/core", NsPerOp: 55},
			BenchResult{Name: "BenchmarkNew", Pkg: "busarb/internal/topo", NsPerOp: 1, AllocsPerOp: 99},
		)
		regs, missing := CompareBench(old, new, 0.25)
		if len(regs) != 0 || len(missing) != 0 {
			t.Errorf("regs=%v missing=%v, want none (10%% slower is under threshold, new benchmarks ignored)", regs, missing)
		}
	})

	t.Run("macro alloc drift within slack passes", func(t *testing.T) {
		o := suite(BenchResult{Name: "BenchmarkTable", Pkg: "p", NsPerOp: 1, AllocsPerOp: 1650})
		n := suite(BenchResult{Name: "BenchmarkTable", Pkg: "p", NsPerOp: 1, AllocsPerOp: 1652})
		if regs, _ := CompareBench(o, n, -1); len(regs) != 0 {
			t.Errorf("+2 on 1650 allocs flagged despite slack: %v", regs)
		}
		n.Benchmarks[0].AllocsPerOp = 1700
		if regs, _ := CompareBench(o, n, -1); len(regs) != 1 {
			t.Errorf("+50 on 1650 allocs not flagged: %v", regs)
		}
	})

	t.Run("alloc regression always fails", func(t *testing.T) {
		new := suite(
			BenchResult{Name: "BenchmarkKernel", Pkg: "busarb/internal/bitarb", NsPerOp: 90, AllocsPerOp: 1},
			BenchResult{Name: "BenchmarkRun", Pkg: "busarb/internal/bussim", NsPerOp: 1000, AllocsPerOp: 12},
			BenchResult{Name: "BenchmarkGone", Pkg: "busarb/internal/core", NsPerOp: 50},
		)
		// Even with the ns check disabled.
		regs, _ := CompareBench(old, new, -1)
		if len(regs) != 1 || regs[0].Metric != "allocs/op" || regs[0].New != 1 {
			t.Fatalf("regs = %v, want the one alloc regression", regs)
		}
		if !strings.Contains(regs[0].String(), "BenchmarkKernel") {
			t.Errorf("regression does not name the benchmark: %v", regs[0])
		}
	})

	t.Run("ns threshold", func(t *testing.T) {
		new := suite(
			BenchResult{Name: "BenchmarkKernel", Pkg: "busarb/internal/bitarb", NsPerOp: 140, AllocsPerOp: 0},
			BenchResult{Name: "BenchmarkRun", Pkg: "busarb/internal/bussim", NsPerOp: 1200, AllocsPerOp: 12},
			BenchResult{Name: "BenchmarkGone", Pkg: "busarb/internal/core", NsPerOp: 50},
		)
		regs, _ := CompareBench(old, new, 0.25)
		if len(regs) != 1 || regs[0].Metric != "ns/op" || !strings.Contains(regs[0].Name, "BenchmarkKernel") {
			t.Fatalf("regs = %v, want only the 40%% ns regression", regs)
		}
		if regs, _ := CompareBench(old, new, -1); len(regs) != 0 {
			t.Errorf("negative threshold still flagged ns: %v", regs)
		}
		if regs, _ := CompareBench(old, new, 0); len(regs) != 2 {
			t.Errorf("zero threshold should flag any ns increase, got %v", regs)
		}
	})

	t.Run("missing reported not failed", func(t *testing.T) {
		new := suite(
			BenchResult{Name: "BenchmarkKernel", Pkg: "busarb/internal/bitarb", NsPerOp: 100, AllocsPerOp: 0},
			BenchResult{Name: "BenchmarkRun", Pkg: "busarb/internal/bussim", NsPerOp: 1000, AllocsPerOp: 12},
		)
		regs, missing := CompareBench(old, new, 0.25)
		if len(regs) != 0 {
			t.Errorf("regs = %v, want none", regs)
		}
		if len(missing) != 1 || missing[0] != "busarb/internal/core.BenchmarkGone" {
			t.Errorf("missing = %v", missing)
		}
	})
}

func TestReadBenchJSONRoundTrip(t *testing.T) {
	s := suite(BenchResult{Name: "BenchmarkX", Pkg: "p", Iterations: 10,
		NsPerOp: 1.5, AllocsPerOp: 2, Metrics: map[string]float64{"ratio": 3}})
	s.Date = "2026-08-08"
	var buf strings.Builder
	if err := WriteBenchJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Date != s.Date || len(back.Benchmarks) != 1 ||
		back.Benchmarks[0].NsPerOp != 1.5 || back.Benchmarks[0].Metrics["ratio"] != 3 {
		t.Errorf("round trip = %+v", back)
	}
	if _, err := ReadBenchJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage input accepted")
	}
}
