// Package report exports simulation results and experiment tables as
// JSON and CSV, so the paper's figures can be regenerated with external
// plotting tools and runs can be archived and diffed.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"busarb/internal/bussim"
	"busarb/internal/experiment"
	"busarb/internal/stats"
)

// ResultJSON is the serializable view of a simulation result.
type ResultJSON struct {
	Protocol     string       `json:"protocol"`
	N            int          `json:"n"`
	Seed         uint64       `json:"seed"`
	Completions  int64        `json:"completions"`
	Elapsed      float64      `json:"elapsed"`
	Throughput   EstimateJSON `json:"throughput"`
	Utilization  EstimateJSON `json:"utilization"`
	WaitMean     EstimateJSON `json:"wait_mean"`
	WaitStdDev   EstimateJSON `json:"wait_stddev"`
	Agents       []AgentJSON  `json:"agents"`
	Arbitrations int64        `json:"arbitrations"`
	ExposedArbs  int64        `json:"exposed_arbitrations"`
	Repasses     int64        `json:"repasses"`
}

// EstimateJSON serializes a batch-means estimate.
type EstimateJSON struct {
	Mean  float64 `json:"mean"`
	HalfW float64 `json:"ci90_halfwidth"`
}

// AgentJSON is one agent's per-run summary.
type AgentJSON struct {
	ID         int          `json:"id"`
	Throughput EstimateJSON `json:"throughput"`
	WaitMean   float64      `json:"wait_mean"`
	WaitStdDev float64      `json:"wait_stddev"`
}

func est(e stats.Estimate) EstimateJSON { return EstimateJSON{Mean: e.Mean, HalfW: e.HalfW} }

// FromResult converts a simulation result to its serializable view.
func FromResult(r *bussim.Result) ResultJSON {
	out := ResultJSON{
		Protocol:     r.ProtocolName,
		N:            r.N,
		Seed:         r.Seed,
		Completions:  r.Completions,
		Elapsed:      r.Elapsed,
		Throughput:   est(r.Throughput),
		Utilization:  est(r.Utilization),
		WaitMean:     est(r.WaitMean),
		WaitStdDev:   est(r.WaitStdDev),
		Arbitrations: r.Arbitrations,
		ExposedArbs:  r.ExposedArbs,
		Repasses:     r.Repasses,
	}
	for i := range r.AgentThroughput {
		out.Agents = append(out.Agents, AgentJSON{
			ID:         i + 1,
			Throughput: est(r.AgentThroughput[i]),
			WaitMean:   r.AgentWait[i].Mean(),
			WaitStdDev: r.AgentWait[i].StdDev(),
		})
	}
	return out
}

// WriteResultJSON writes a simulation result as indented JSON.
func WriteResultJSON(w io.Writer, r *bussim.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(FromResult(r))
}

// csvWrite writes a header and rows, converting each cell to a string.
func csvWrite(w io.Writer, header []string, rows [][]float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		rec := make([]string, len(row))
		for i, v := range row {
			rec[i] = strconv.FormatFloat(v, 'g', 6, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table41CSV exports Table 4.1 rows.
func Table41CSV(w io.Writer, rows []experiment.Table41Row) error {
	header := []string{"load", "lambda", "ratio_rr", "ratio_rr_ci", "ratio_fcfs", "ratio_fcfs_ci"}
	hasAAP := len(rows) > 0 && rows[0].RatioAAP != nil
	if hasAAP {
		header = append(header, "ratio_aap", "ratio_aap_ci")
	}
	data := make([][]float64, len(rows))
	for i, r := range rows {
		row := []float64{r.Load, r.Lambda, r.RatioRR.Mean, r.RatioRR.HalfW, r.RatioFCFS.Mean, r.RatioFCFS.HalfW}
		if hasAAP {
			row = append(row, r.RatioAAP.Mean, r.RatioAAP.HalfW)
		}
		data[i] = row
	}
	return csvWrite(w, header, data)
}

// Table42CSV exports Table 4.2 rows.
func Table42CSV(w io.Writer, rows []experiment.Table42Row) error {
	header := []string{"load", "w", "sd_fcfs", "sd_fcfs_ci", "sd_rr", "sd_rr_ci", "sd_ratio"}
	data := make([][]float64, len(rows))
	for i, r := range rows {
		data[i] = []float64{r.Load, r.W, r.SDFCFS.Mean, r.SDFCFS.HalfW, r.SDRR.Mean, r.SDRR.HalfW, r.SDRatio.Mean}
	}
	return csvWrite(w, header, data)
}

// Figure41CSV exports the Figure 4.1 CDF series.
func Figure41CSV(w io.Writer, f experiment.Figure41Result) error {
	header := []string{"x", "cdf_rr", "cdf_fcfs"}
	data := make([][]float64, len(f.Points))
	for i, p := range f.Points {
		data[i] = []float64{p.X, p.RR, p.FCFS}
	}
	return csvWrite(w, header, data)
}

// Table43CSV exports Table 4.3 rows.
func Table43CSV(w io.Writer, rows []experiment.Table43Row) error {
	header := []string{"load", "w", "w_net_rr", "w_net_fcfs", "prod_rr", "prod_fcfs", "overlap"}
	data := make([][]float64, len(rows))
	for i, r := range rows {
		data[i] = []float64{r.Load, r.W, r.WNetRR, r.WNetFCFS, r.ProdRR, r.ProdFCFS, r.Overlap}
	}
	return csvWrite(w, header, data)
}

// Table44CSV exports Table 4.4 rows.
func Table44CSV(w io.Writer, rows []experiment.Table44Row) error {
	header := []string{"load", "lambda", "load_ratio", "ratio_rr", "ratio_rr_ci", "ratio_fcfs", "ratio_fcfs_ci"}
	data := make([][]float64, len(rows))
	for i, r := range rows {
		data[i] = []float64{r.Load, r.Lambda, r.LoadRatio, r.RatioRR.Mean, r.RatioRR.HalfW, r.RatioFCFS.Mean, r.RatioFCFS.HalfW}
	}
	return csvWrite(w, header, data)
}

// Table45CSV exports Table 4.5 rows.
func Table45CSV(w io.Writer, rows []experiment.Table45Row) error {
	header := []string{"cv", "load_ratio", "tput_ratio", "tput_ratio_ci"}
	data := make([][]float64, len(rows))
	for i, r := range rows {
		data[i] = []float64{r.CV, r.LoadRatio, r.Ratio.Mean, r.Ratio.HalfW}
	}
	return csvWrite(w, header, data)
}

// TableJSON writes any experiment row slice as indented JSON.
func TableJSON(w io.Writer, rows interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}
