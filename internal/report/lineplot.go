package report

import (
	"fmt"
	"io"
	"strings"
)

// Series is one labeled curve for LinePlotSVG.
type Series struct {
	Label string
	X, Y  []float64
}

// linePalette cycles through distinguishable stroke styles.
var linePalette = []struct {
	color string
	dash  string
}{
	{"#1f77b4", ""},
	{"#d62728", "6 3"},
	{"#2ca02c", "2 3"},
	{"#9467bd", "8 3 2 3"},
	{"#ff7f0e", ""},
}

// LinePlotSVG renders labeled series as a standalone SVG line chart
// with linear axes starting at the origin.
func LinePlotSVG(w io.Writer, title, xlabel, ylabel string, series []Series) error {
	const (
		width   = 640
		height  = 420
		mLeft   = 64
		mRight  = 20
		mTop    = 40
		mBottom = 52
	)
	if len(series) == 0 {
		return fmt.Errorf("report: no series")
	}
	maxX, maxY := 0.0, 0.0
	for _, s := range series {
		if len(s.X) != len(s.Y) || len(s.X) == 0 {
			return fmt.Errorf("report: series %q malformed", s.Label)
		}
		for i := range s.X {
			if s.X[i] > maxX {
				maxX = s.X[i]
			}
			if s.Y[i] > maxY {
				maxY = s.Y[i]
			}
		}
	}
	if maxX <= 0 || maxY <= 0 {
		return fmt.Errorf("report: degenerate axis range")
	}
	plotW := float64(width - mLeft - mRight)
	plotH := float64(height - mTop - mBottom)
	x := func(v float64) float64 { return mLeft + v/maxX*plotW }
	y := func(v float64) float64 { return mTop + (1-v/maxY)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="serif" font-size="16" text-anchor="middle">%s</text>`,
		width/2, title)
	// Axes and gridlines.
	fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`,
		mLeft, mTop+plotH, width-mRight, mTop+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%.1f" stroke="black"/>`,
		mLeft, mTop, mLeft, mTop+plotH)
	for i := 0; i <= 4; i++ {
		v := maxY * float64(i) / 4
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`,
			mLeft, y(v), width-mRight, y(v))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="serif" font-size="12" text-anchor="end">%.1f</text>`,
			mLeft-6, y(v)+4, v)
	}
	for i := 0; i <= 5; i++ {
		v := maxX * float64(i) / 5
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="serif" font-size="12" text-anchor="middle">%.1f</text>`,
			x(v), mTop+plotH+18, v)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="serif" font-size="13" text-anchor="middle">%s</text>`,
		width/2, height-12, xlabel)
	fmt.Fprintf(&b, `<text x="16" y="%d" font-family="serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`,
		(mTop+int(plotH))/2, (mTop+int(plotH))/2, ylabel)

	// Curves and legend.
	for i, s := range series {
		style := linePalette[i%len(linePalette)]
		var path strings.Builder
		for j := range s.X {
			cmd := 'L'
			if j == 0 {
				cmd = 'M'
			}
			fmt.Fprintf(&path, "%c%.1f %.1f ", cmd, x(s.X[j]), y(s.Y[j]))
		}
		dash := ""
		if style.dash != "" {
			dash = fmt.Sprintf(` stroke-dasharray="%s"`, style.dash)
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2"%s/>`,
			path.String(), style.color, dash)
		ly := mTop + 16 + i*20
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"%s/>`,
			mLeft+20, ly, mLeft+50, ly, style.color, dash)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="serif" font-size="13">%s</text>`,
			mLeft+56, ly+4, s.Label)
	}
	b.WriteString(`</svg>`)
	_, err := io.WriteString(w, b.String())
	return err
}
