// Package clitest runs the repository's command-line binaries the way a
// shell script would and pins their exit-status contract: every failure
// path exits 1 (flag-parse errors exit 2, the flag package's
// convention), and no misuse silently succeeds.
package clitest

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildCmds compiles the CLI binaries once into a temp dir and returns
// their paths by name.
func buildCmds(t *testing.T) map[string]string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	_, self, _, _ := runtime.Caller(0)
	root := filepath.Dir(filepath.Dir(filepath.Dir(self)))
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir+string(filepath.Separator), "./cmd/...")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building CLIs: %v\n%s", err, out)
	}
	bins := map[string]string{}
	for _, name := range []string{"paper", "arbsim", "arbtrace", "arbverify", "benchjson", "arbd", "arbload", "arblint"} {
		bins[name] = filepath.Join(dir, name)
	}
	return bins
}

// run executes a binary and returns its exit code and combined stderr.
func run(t *testing.T, bin string, stdin string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %s: %v", bin, err)
	}
	return code, stderr.String()
}

func TestCLIFailurePathsExitNonZero(t *testing.T) {
	bins := buildCmds(t)

	cases := []struct {
		name     string
		bin      string
		args     []string
		stdin    string
		wantCode int
		wantErr  string // substring that must appear on stderr
	}{
		{"paper unknown format", "paper", []string{"-table", "4.1", "-format", "yaml"}, "", 1, "unknown format"},
		{"paper unknown table", "paper", []string{"-table", "9.9"}, "", 1, "unknown table"},
		{"paper unknown figure", "paper", []string{"-figure", "7.7"}, "", 1, "unknown figure"},
		{"paper bad sizes", "paper", []string{"-table", "4.1", "-sizes", "x"}, "", 1, "bad size"},
		{"paper no work requested", "paper", []string{}, "", 1, ""},
		{"arbsim unknown protocol", "arbsim", []string{"-protocol", "BOGUS"}, "", 1, "unknown protocol"},
		{"arbsim unknown compare entry", "arbsim", []string{"-compare", "RR1,BOGUS"}, "", 1, "unknown protocol"},
		{"arbsim blank compare list", "arbsim", []string{"-compare", " , "}, "", 1, "non-empty protocol list"},
		{"arbsim missing scenario file", "arbsim", []string{"-scenario", "/nonexistent/file.json"}, "", 1, "no such file"},
		{"arbsim bad trace path", "arbsim", []string{"-n", "4", "-batches", "2", "-batchsize", "100", "-trace", "/nonexistent/dir/t.jsonl"}, "", 1, "no such file"},
		{"arbsim non-positive metrics window", "arbsim", []string{"-n", "4", "-batches", "2", "-batchsize", "100", "-metrics-window", "0"}, "", 1, "must be positive"},
		{"arbtrace bad identity", "arbtrace", []string{"-ids", "0"}, "", 1, "bad identity"},
		{"arbtrace bad topo spec", "arbtrace", []string{"-topo", "4x2"}, "", 1, "bad -topo spec"},
		{"arbtrace topo unknown protocol", "arbtrace", []string{"-topo", "4x2:RR1/BOGUS"}, "", 1, "unknown protocol"},
		{"arbtrace unknown protocol", "arbtrace", []string{"-protocol", "Hybrid"}, "", 1, "no line-level model"},
		{"arbverify cross unknown protocol", "arbverify", []string{"-cross", "-protocol", "Hybrid"}, "", 1, "no line-level model"},
		{"arbtrace too few agents", "arbtrace", []string{"-n", "1"}, "", 1, "at least 2 agents"},
		{"arbverify unknown protocol", "arbverify", []string{"-protocol", "BOGUS"}, "", 1, "unknown protocol"},
		{"arbverify too few agents", "arbverify", []string{"-n", "1"}, "", 1, "at least 2 agents"},
		{"arbverify refuted bound", "arbverify", []string{"-protocol", "FP", "-n", "3", "-bound", "2"}, "", 1, ""},
		{"benchjson empty stdin", "benchjson", nil, " ", 1, "no benchmark lines"},
		{"benchjson malformed input", "benchjson", nil, "BenchmarkX abc 5 ns/op\n", 1, "bad iteration count"},
		{"benchjson compare wants two args", "benchjson", []string{"-compare", "only.json"}, "", 1, "exactly two arguments"},
		{"benchjson compare missing file", "benchjson", []string{"-compare", "/nonexistent/a.json", "/nonexistent/b.json"}, "", 1, "no such file"},
		{"benchjson compare catches alloc regression", "benchjson", []string{"-compare", "-ns-threshold=-1", "testdata/bench-old.json", "testdata/bench-regressed.json"}, "", 1, "allocs/op"},
		{"arbd malformed resource spec", "arbd", []string{"-resources", "busRR1"}, "", 1, "bad resource spec"},
		{"arbd bad agent count", "arbd", []string{"-resources", "bus:ten:RR1"}, "", 1, "bad agent count"},
		{"arbd empty resource list", "arbd", []string{"-resources", " , "}, "", 1, "names no resources"},
		{"arbd unknown protocol", "arbd", []string{"-resources", "bus:4:BOGUS"}, "", 1, "unknown protocol"},
		{"arbd malformed tree dims", "arbd", []string{"-resources", "bus:8x:RR1/FCFS2"}, "", 1, "bad tree spec"},
		{"arbd tree level mismatch", "arbd", []string{"-resources", "bus:8x4:RR1"}, "", 1, "bad tree spec"},
		{"arbd tree unknown protocol", "arbd", []string{"-resources", "bus:8x4:RR1/BOGUS"}, "", 1, "unknown protocol"},
		{"arbd unlistenable address", "arbd", []string{"-addr", "256.0.0.1:0", "-resources", "bus:2:RR1"}, "", 1, ""},
		{"arbd unlistenable binary address", "arbd", []string{"-addr", "127.0.0.1:0", "-baddr", "256.0.0.1:0", "-resources", "bus:2:RR1"}, "", 1, ""},
		{"arbd bad cluster member spec", "arbd", []string{"-cluster", "a;tcp://127.0.0.1:1"}, "", 1, "want name=addr"},
		{"arbd empty cluster list", "arbd", []string{"-cluster", " , "}, "", 1, "names no members"},
		{"arbd self not in cluster", "arbd", []string{"-cluster", "a=tcp://127.0.0.1:1", "-self", "b"}, "", 1, "not in Members"},
		{"arbload empty resources list", "arbload", []string{"-resources", " , ", "-agents", "1", "-requests", "1"}, "", 1, "names no resources"},
		{"arbload unreachable daemon", "arbload", []string{"-target", "http://127.0.0.1:1", "-resource", "bus", "-agents", "1", "-requests", "1"}, "", 1, "acquire"},
		{"arbload unreachable binary daemon", "arbload", []string{"-target", "tcp://127.0.0.1:1", "-resource", "bus", "-agents", "1", "-requests", "1"}, "", 1, "dial"},
		{"arbload schemeless target", "arbload", []string{"-target", "127.0.0.1:8321", "-agents", "1", "-requests", "1"}, "", 1, "scheme"},
		{"arbload bad agent count", "arbload", []string{"-agents", "0"}, "", 1, "at least 1 agent"},
		{"flag parse errors keep the flag convention", "arbsim", []string{"-nosuchflag"}, "", 2, "flag provided but not defined"},
		{"arbd flag convention", "arbd", []string{"-nosuchflag"}, "", 2, "flag provided but not defined"},
		{"arbload flag convention", "arbload", []string{"-nosuchflag"}, "", 2, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stderr := run(t, bins[tc.bin], tc.stdin, tc.args...)
			if code != tc.wantCode {
				t.Errorf("exit code %d, want %d (stderr: %s)", code, tc.wantCode, stderr)
			}
			if tc.wantErr != "" && !strings.Contains(stderr, tc.wantErr) {
				t.Errorf("stderr %q does not contain %q", stderr, tc.wantErr)
			}
		})
	}
}

// runStdout executes a binary and returns its exit code and stdout.
func runStdout(t *testing.T, bin string, stdin string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdin = strings.NewReader(stdin)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %s: %v (stderr: %s)", bin, err, stderr.String())
	}
	return code, stdout.String()
}

// TestBenchJSONStampReproducible pins the -stamp contract: with
// -stamp=false (and no -date) the snapshot carries no wall-clock
// residue, so regenerating a BENCH_*.json from the same bench output is
// byte-identical — the determinism analyzer's escape hatch for
// benchjson covers only the default stamping path.
func TestBenchJSONStampReproducible(t *testing.T) {
	bins := buildCmds(t)
	bench := "BenchmarkX \t 10 \t 100 ns/op \t 8 B/op \t 1 allocs/op\n"

	code, first := runStdout(t, bins["benchjson"], bench, "-stamp=false")
	if code != 0 {
		t.Fatalf("benchjson -stamp=false exited %d", code)
	}
	code, second := runStdout(t, bins["benchjson"], bench, "-stamp=false")
	if code != 0 {
		t.Fatalf("benchjson -stamp=false exited %d", code)
	}
	if first != second {
		t.Errorf("-stamp=false output is not byte-identical:\n%s\nvs\n%s", first, second)
	}
	if !strings.Contains(first, `"date": ""`) && !strings.Contains(first, `"date":""`) {
		t.Errorf("-stamp=false should leave the date empty, got:\n%s", first)
	}

	// Default behavior still stamps today's date (the archive's name
	// contract), and -date overrides it deterministically.
	code, stamped := runStdout(t, bins["benchjson"], bench)
	if code != 0 {
		t.Fatalf("benchjson exited %d", code)
	}
	if strings.Contains(stamped, `"date": ""`) || strings.Contains(stamped, `"date":""`) {
		t.Errorf("default run should stamp a date, got:\n%s", stamped)
	}
	code, dated := runStdout(t, bins["benchjson"], bench, "-date", "2026-01-02")
	if code != 0 {
		t.Fatalf("benchjson -date exited %d", code)
	}
	if !strings.Contains(dated, "2026-01-02") {
		t.Errorf("-date override missing from output:\n%s", dated)
	}
}

// TestArbdLifecycle pins the daemon's process contract end to end: it
// announces both listen addresses on stdout, serves a real arbload run
// over each transport, and a SIGTERM is a clean exit 0.
func TestArbdLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a real daemon")
	}
	bins := buildCmds(t)

	daemon := exec.Command(bins["arbd"],
		"-addr", "127.0.0.1:0", "-baddr", "127.0.0.1:0",
		"-resources", "bus:4:RR1,disk:2:FCFS2", "-tick", "200us")
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr strings.Builder
	daemon.Stderr = &stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill() // no-op after a clean Wait

	// The leading stdout lines carry the bound addresses.
	lines := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	baddrCh := make(chan string, 1)
	go func() {
		for lines.Scan() {
			line := lines.Text()
			if rest, ok := strings.CutPrefix(line, "arbd: binary listening on "); ok {
				baddrCh <- rest
			} else if rest, ok := strings.CutPrefix(line, "arbd: listening on "); ok {
				addrCh <- rest
			}
		}
	}()
	var addr, baddr string
	for addr == "" || baddr == "" {
		select {
		case addr = <-addrCh:
		case baddr = <-baddrCh:
		case <-time.After(10 * time.Second):
			t.Fatalf("daemon never announced its addresses (stderr: %s)", stderr.String())
		}
	}

	for _, target := range []string{"http://" + addr, "tcp://" + baddr} {
		code, out := runStdout(t, bins["arbload"],
			"", "-target", target, "-resource", "bus", "-agents", "3", "-requests", "5")
		if code != 0 {
			t.Fatalf("arbload exited %d against a live daemon at %s", code, target)
		}
		if !strings.Contains(out, "bandwidth ratio t_N/t_1") {
			t.Errorf("arbload report for %s missing the bandwidth ratio line:\n%s", target, out)
		}
	}

	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- daemon.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Errorf("SIGTERM exit: %v (want clean exit 0; stderr: %s)", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit within 10s of SIGTERM")
	}
}

// freePort reserves an ephemeral port and returns it, released for
// the caller to rebind. The tiny race with other processes is the
// standard cost of needing a port number before the process that will
// listen on it exists (cluster members must know each other's
// addresses up front).
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// TestArbdClusterLifecycle pins the -cluster serving path end to end:
// two arbd processes form a cluster, a multi-target multi-resource
// arbload run completes against it (agents spread round-robin over
// the resources, calls routed to each resource's owner or forwarded),
// and SIGTERM is a clean exit 0 on both members.
func TestArbdClusterLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("starts real daemons")
	}
	bins := buildCmds(t)

	p1, p2 := freePort(t), freePort(t)
	spec := fmt.Sprintf("a=tcp://127.0.0.1:%d,b=tcp://127.0.0.1:%d", p1, p2)
	var daemons []*exec.Cmd
	for _, name := range []string{"a", "b"} {
		daemon := exec.Command(bins["arbd"],
			"-addr", "127.0.0.1:0", "-cluster", spec, "-self", name,
			"-resources", "bus:4:RR1,disk:4:RR1,dma:4:RR1", "-tick", "200us")
		stdout, err := daemon.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		var stderr strings.Builder
		daemon.Stderr = &stderr
		if err := daemon.Start(); err != nil {
			t.Fatal(err)
		}
		daemons = append(daemons, daemon)
		defer daemon.Process.Kill() // no-op after a clean Wait

		ready := make(chan bool, 1)
		go func() {
			lines := bufio.NewScanner(stdout)
			for lines.Scan() {
				if strings.HasPrefix(lines.Text(), "arbd: binary listening on ") {
					ready <- true
					return
				}
			}
			ready <- false
		}()
		select {
		case ok := <-ready:
			if !ok {
				t.Fatalf("member %s never announced its binary listener (stderr: %s)", name, stderr.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("member %s startup timed out (stderr: %s)", name, stderr.String())
		}
	}

	targets := fmt.Sprintf("tcp://127.0.0.1:%d,tcp://127.0.0.1:%d", p1, p2)
	code, out := runStdout(t, bins["arbload"], "",
		"-target", targets, "-resources", "bus,disk,dma", "-agents", "6", "-requests", "5")
	if code != 0 {
		t.Fatalf("arbload exited %d against the cluster", code)
	}
	if !strings.Contains(out, "bandwidth ratio t_N/t_1") {
		t.Errorf("arbload cluster report missing the bandwidth ratio line:\n%s", out)
	}
	if !strings.Contains(out, "via cluster of 2") {
		t.Errorf("arbload cluster report missing the cluster header:\n%s", out)
	}

	for i, daemon := range daemons {
		if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		waitErr := make(chan error, 1)
		go func() { waitErr <- daemon.Wait() }()
		select {
		case err := <-waitErr:
			if err != nil {
				t.Errorf("member %d SIGTERM exit: %v (want clean exit 0)", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("member %d did not exit within 10s of SIGTERM", i)
		}
	}
}

// TestArbsimTopologyScenario pins the hierarchical scenario path end
// to end: arbsim loads a topology scenario file, runs it, and reports
// the composite protocol name.
func TestArbsimTopologyScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	bins := buildCmds(t)
	path := filepath.Join(t.TempDir(), "hier.json")
	doc := `{
	  "name": "hier-cli",
	  "protocol": "FCFS2",
	  "batches": 2, "batch_size": 100,
	  "topology": {
	    "local_protocol": "RR1",
	    "clusters": [
	      {"agents": [{"count": 4, "load": 0.2}]},
	      {"agents": [{"count": 4, "load": 0.2}]}
	    ]
	  }
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out := runStdout(t, bins["arbsim"], "", "-scenario", path)
	if code != 0 {
		t.Fatalf("arbsim -scenario exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "FCFS2(2xRR1:4)") {
		t.Errorf("report missing the composite protocol name:\n%s", out)
	}

	// A malformed topology (one cluster) is a clean exit 1 naming the
	// problem.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"protocol":"FCFS2","topology":{"local_protocol":"RR1",
	  "clusters":[{"agents":[{"count":4,"load":0.2}]}]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stderr := run(t, bins["arbsim"], "", "-scenario", bad)
	if code != 1 || !strings.Contains(stderr, "at least 2 clusters") {
		t.Errorf("bad topology: exit %d stderr %q, want 1 naming the cluster count", code, stderr)
	}
}

func TestCLISuccessPathsExitZero(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	bins := buildCmds(t)

	cases := []struct {
		name  string
		bin   string
		args  []string
		stdin string
	}{
		{"arbsim quick run", "arbsim", []string{"-n", "4", "-batches", "2", "-batchsize", "100"}, ""},
		{"arbsim compare parallel", "arbsim", []string{"-compare", "RR1,FCFS1", "-n", "4", "-batches", "2", "-batchsize", "100", "-parallel", "2"}, ""},
		{"arbtrace defaults", "arbtrace", []string{"-ticks", "10"}, ""},
		{"arbtrace RR2 line-level", "arbtrace", []string{"-protocol", "RR2", "-ticks", "10"}, ""},
		{"arbtrace topology hops", "arbtrace", []string{"-topo", "4x2:RR1/FCFS2", "-ticks", "20"}, ""},
		{"arbverify RR1 small", "arbverify", []string{"-protocol", "RR1", "-n", "3"}, ""},
		{"arbverify cross RR2", "arbverify", []string{"-cross", "-protocol", "RR2", "-n", "4", "-trials", "3", "-ticks", "100"}, ""},
		{"paper tiny table", "paper", []string{"-table", "4.5", "-sizes", "5", "-batches", "2", "-batchsize", "100"}, ""},
		{"benchjson parses bench output", "benchjson", []string{"-date", "2026-08-06"},
			"BenchmarkX 	 10 	 100 ns/op 	 8 B/op 	 1 allocs/op\n"},
		{"benchjson self-compare is clean", "benchjson", []string{"-compare", "-ns-threshold=-1",
			"testdata/bench-old.json", "testdata/bench-old.json"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stderr := run(t, bins[tc.bin], tc.stdin, tc.args...)
			if code != 0 {
				t.Errorf("exit code %d, want 0 (stderr: %s)", code, stderr)
			}
		})
	}
}
