package clitest

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway Go module for arblint to chew
// on: files maps slash-separated relative paths to contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runInDir executes a binary with its working directory set (the run
// helper above has no Dir knob) and returns exit code, stdout, stderr.
func runInDir(t *testing.T, bin, dir string, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %s: %v", bin, err)
	}
	return code, stdout.String(), stderr.String()
}

// dirtyModule is a module with one violation of each diagnostic kind:
// two seedsrc findings sharing a line (pinning the column tiebreak), an
// unused allow, an allow naming an unknown analyzer, and an allow for
// an analyzer that never runs in the package.
func dirtyModule(t *testing.T) string {
	return writeModule(t, map[string]string{
		"go.mod": "module lintme\n\ngo 1.22\n",
		"a/a.go": `// Package a deliberately violates seedsrc for the CLI pin.
package a

import "math/rand"

// New builds a seeded generator outside internal/rng.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
`,
		"b/b.go": `// Package b carries deliberate annotation-hygiene violations.
package b

//arblint:allow seedsrc
func F() int { return 1 }

//arblint:allow nosuch
func G() int { return 2 }

//arblint:allow goroleak
func H() int { return 3 }
`,
	})
}

// TestArblintOutputContract pins the driver's CLI surface: globally
// position-sorted text diagnostics, byte-identical output across runs,
// the -json line schema with kind labels, the -stats table, and the
// exit-status convention (1 on findings, 0 on a clean tree, 2 on flag
// misuse).
func TestArblintOutputContract(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and type-checks fixture modules")
	}
	bins := buildCmds(t)
	arblint := bins["arblint"]
	mod := dirtyModule(t)

	code, stdout, stderr := runInDir(t, arblint, mod, "./...")
	if code != 1 {
		t.Fatalf("exit code %d on a dirty module, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "arblint: 5 finding(s)") {
		t.Errorf("stderr %q does not report the finding count", stderr)
	}
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d diagnostic lines, want 5:\n%s", len(lines), stdout)
	}
	// The global sort order is file, then line, then column: both
	// seedsrc findings (a/a.go line 8, rand.New before rand.NewSource)
	// precede all three package-b hygiene findings in source order.
	wants := []struct{ file, frag string }{
		{"a/a.go", "math/rand.New constructs"},
		{"a/a.go", "math/rand.NewSource constructs"},
		{"b/b.go", "unused //arblint:allow seedsrc"},
		{"b/b.go", `unknown analyzer "nosuch"`},
		{"b/b.go", "inapplicable //arblint:allow goroleak"},
	}
	for i, w := range wants {
		if !strings.Contains(lines[i], filepath.FromSlash(w.file)) || !strings.Contains(lines[i], w.frag) {
			t.Errorf("line %d = %q, want file %s and fragment %q", i, lines[i], w.file, w.frag)
		}
	}
	// file:line:col: message (analyzer) — every line carries a parsable
	// position prefix and a trailing analyzer tag.
	for _, line := range lines {
		rest := line[strings.Index(line, ".go:")+len(".go:"):]
		parts := strings.SplitN(rest, ":", 3)
		if len(parts) != 3 || !strings.HasSuffix(line, ")") || !strings.Contains(line, " (") {
			t.Errorf("line %q is not in file:line:col: message (analyzer) form", line)
		}
	}

	// Byte determinism: a second run must reproduce stdout exactly.
	code2, stdout2, _ := runInDir(t, arblint, mod, "./...")
	if code2 != 1 || stdout2 != stdout {
		t.Errorf("second run differed: code %d, stdout diff:\n--- first\n%s--- second\n%s", code2, stdout, stdout2)
	}

	// -json: one JSON object per line, same order, kinds distinguishing
	// real findings from annotation hygiene.
	code, stdout, _ = runInDir(t, arblint, mod, "-json", "./...")
	if code != 1 {
		t.Fatalf("-json exit code %d, want 1", code)
	}
	jlines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if len(jlines) != 5 {
		t.Fatalf("-json produced %d lines, want 5:\n%s", len(jlines), stdout)
	}
	wantKinds := []string{"finding", "finding", "unused-allow", "inapplicable-allow", "inapplicable-allow"}
	for i, jl := range jlines {
		var d struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Kind     string `json:"kind"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(jl), &d); err != nil {
			t.Fatalf("-json line %d is not JSON: %v\n%s", i, err, jl)
		}
		if d.File == "" || d.Line == 0 || d.Col == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("-json line %d has empty fields: %+v", i, d)
		}
		if d.Kind != wantKinds[i] {
			t.Errorf("-json line %d kind = %q, want %q", i, d.Kind, wantKinds[i])
		}
	}
	// The two seedsrc findings share a line; JSON order must still be
	// deterministic via the column tiebreak.
	var first, second struct{ Col int }
	if json.Unmarshal([]byte(jlines[0]), &first) == nil && json.Unmarshal([]byte(jlines[1]), &second) == nil {
		if first.Col >= second.Col {
			t.Errorf("same-line findings not column-sorted: %d then %d", first.Col, second.Col)
		}
	}

	// -stats: a per-analyzer table on stderr. seedsrc owns three of the
	// findings (two real plus its unused allow); nothing was allowed.
	code, _, stderr = runInDir(t, arblint, mod, "-stats", "./...")
	if code != 1 {
		t.Fatalf("-stats exit code %d, want 1", code)
	}
	var sawHeader, sawSeedsrc bool
	for _, line := range strings.Split(stderr, "\n") {
		f := strings.Fields(line)
		if len(f) == 3 && f[0] == "analyzer" && f[1] == "findings" && f[2] == "allowed" {
			sawHeader = true
		}
		if len(f) == 3 && f[0] == "seedsrc" {
			sawSeedsrc = true
			if f[1] != "3" || f[2] != "0" {
				t.Errorf("seedsrc stats row = %v, want findings 3 allowed 0", f)
			}
		}
	}
	if !sawHeader || !sawSeedsrc {
		t.Errorf("-stats table missing header or seedsrc row:\n%s", stderr)
	}

	// A clean module: exit 0, no stdout.
	clean := writeModule(t, map[string]string{
		"go.mod": "module cleanme\n\ngo 1.22\n",
		"ok/ok.go": `// Package ok holds nothing arblint objects to.
package ok

// Sum is allocation- and randomness-free.
func Sum(a, b int) int { return a + b }
`,
	})
	code, stdout, stderr = runInDir(t, arblint, clean, "./...")
	if code != 0 || stdout != "" {
		t.Errorf("clean module: exit %d stdout %q stderr %q, want silent success", code, stdout, stderr)
	}

	// Flag misuse keeps the flag package's exit-2 convention.
	code, _, stderr = runInDir(t, arblint, mod, "-nosuchflag")
	if code != 2 || !strings.Contains(stderr, "flag provided but not defined") {
		t.Errorf("flag misuse: exit %d stderr %q, want 2 and the flag error", code, stderr)
	}
}
