package dist

import (
	"math"
	"testing"
	"testing/quick"

	"busarb/internal/rng"
)

// sampleMoments draws n samples and returns their mean and CV.
func sampleMoments(t *testing.T, s Sampler, n int, seed uint64) (mean, cv float64) {
	t.Helper()
	r := rng.New(seed)
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Sample(r)
		if v < 0 {
			t.Fatalf("%s produced negative sample %v", s, v)
		}
		sum += v
		sumsq += v * v
	}
	mean = sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	if mean == 0 {
		return mean, 0
	}
	return mean, math.Sqrt(variance) / mean
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{Value: 3.25}
	r := rng.New(1)
	for i := 0; i < 10; i++ {
		if v := d.Sample(r); v != 3.25 {
			t.Fatalf("sample = %v, want 3.25", v)
		}
	}
	if d.Mean() != 3.25 || d.CV() != 0 {
		t.Errorf("Mean/CV = %v/%v", d.Mean(), d.CV())
	}
}

func TestExponentialMoments(t *testing.T) {
	e := Exponential{MeanValue: 2.5}
	mean, cv := sampleMoments(t, e, 300000, 2)
	if math.Abs(mean-2.5) > 0.03 {
		t.Errorf("mean = %v, want ~2.5", mean)
	}
	if math.Abs(cv-1) > 0.02 {
		t.Errorf("cv = %v, want ~1", cv)
	}
}

func TestErlangMoments(t *testing.T) {
	for _, k := range []int{2, 4, 9, 16} {
		e := Erlang{K: k, MeanValue: 1.7}
		mean, cv := sampleMoments(t, e, 200000, uint64(k))
		if math.Abs(mean-1.7) > 0.03 {
			t.Errorf("k=%d: mean = %v, want ~1.7", k, mean)
		}
		want := 1 / math.Sqrt(float64(k))
		if math.Abs(cv-want) > 0.02 {
			t.Errorf("k=%d: cv = %v, want ~%v", k, cv, want)
		}
	}
}

func TestHyperExpMoments(t *testing.T) {
	h := ByCV(2.0, 2.0).(HyperExp)
	mean, cv := sampleMoments(t, h, 500000, 77)
	if math.Abs(mean-2.0) > 0.05 {
		t.Errorf("mean = %v, want ~2", mean)
	}
	if math.Abs(cv-2.0) > 0.08 {
		t.Errorf("cv = %v, want ~2", cv)
	}
}

func TestByCVSelection(t *testing.T) {
	if _, ok := ByCV(1, 0).(Deterministic); !ok {
		t.Error("CV=0 should be Deterministic")
	}
	if _, ok := ByCV(1, 1).(Exponential); !ok {
		t.Error("CV=1 should be Exponential")
	}
	if e, ok := ByCV(1, 0.5).(Erlang); !ok || e.K != 4 {
		t.Errorf("CV=0.5 should be Erlang k=4, got %v", ByCV(1, 0.5))
	}
	if e, ok := ByCV(1, 0.33).(Erlang); !ok || e.K != 9 {
		t.Errorf("CV=0.33 should be Erlang k=9, got %v", ByCV(1, 0.33))
	}
	if e, ok := ByCV(1, 0.25).(Erlang); !ok || e.K != 16 {
		t.Errorf("CV=0.25 should be Erlang k=16, got %v", ByCV(1, 0.25))
	}
	if e, ok := ByCV(1, 0.1).(Erlang); !ok || e.K != 100 {
		t.Errorf("CV=0.1 should be Erlang k=100, got %v", ByCV(1, 0.1))
	}
	if _, ok := ByCV(1, 1.5).(HyperExp); !ok {
		t.Error("CV=1.5 should be HyperExp")
	}
}

func TestByCVPanicsOnNegative(t *testing.T) {
	for _, args := range [][2]float64{{-1, 0}, {1, -0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ByCV(%v, %v) did not panic", args[0], args[1])
				}
			}()
			ByCV(args[0], args[1])
		}()
	}
}

// Property: for any mean in (0, 100] and CV in [0, 1], the declared
// moments of the constructed sampler match the request closely (the
// Erlang rounding of K makes the CV approximate).
func TestByCVDeclaredMomentsProperty(t *testing.T) {
	f := func(m, c uint16) bool {
		mean := 0.01 + float64(m%10000)/100
		cv := float64(c%101) / 100
		s := ByCV(mean, cv)
		if math.Abs(s.Mean()-mean) > 1e-9 {
			return false
		}
		// K = round(1/cv²) gives CV' = 1/sqrt(K); the relative error of
		// CV' vs cv is bounded for cv in (0,1].
		if cv > 0 && math.Abs(s.CV()-cv) > 0.25*cv+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: sampling is reproducible given the same source state.
func TestSamplingReproducibleProperty(t *testing.T) {
	f := func(seed uint64, c uint8) bool {
		cv := float64(c%150) / 100
		s := ByCV(2.0, cv)
		r1, r2 := rng.New(seed), rng.New(seed)
		for i := 0; i < 16; i++ {
			if s.Sample(r1) != s.Sample(r2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestErlangStreamConsumptionConstant(t *testing.T) {
	// Two samplers sharing one source must interleave deterministically;
	// this holds only if each Sample consumes a fixed number of draws.
	s := Erlang{K: 3, MeanValue: 1}
	r1 := rng.New(10)
	r2 := rng.New(10)
	// Draw 5 samples from r1, then compare that draw 6 matches a fresh
	// source advanced by the same amount.
	for i := 0; i < 5; i++ {
		s.Sample(r1)
		s.Sample(r2)
	}
	if s.Sample(r1) != s.Sample(r2) {
		t.Error("stream consumption not deterministic")
	}
}

func TestStringDescriptions(t *testing.T) {
	cases := map[string]Sampler{
		"det(2.5)":               Deterministic{Value: 2.5},
		"exp(3)":                 Exponential{MeanValue: 3},
		"erlang(k=4, 1.5)":       Erlang{K: 4, MeanValue: 1.5},
		"hyperexp(p=0.75, 1, 3)": HyperExp{P: 0.75, Mean1: 1, Mean2: 3},
	}
	for want, s := range cases {
		if got := s.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestHyperExpDeclaredMoments(t *testing.T) {
	h := HyperExp{P: 0.5, Mean1: 1, Mean2: 3}
	if got := h.Mean(); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := h.CV(); got <= 1 {
		t.Errorf("CV = %v, want > 1 for hyperexponential", got)
	}
	// Degenerate equal means: CV = 1 (plain exponential).
	h2 := HyperExp{P: 0.5, Mean1: 2, Mean2: 2}
	if got := h2.CV(); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal-mean H2 CV = %v, want 1", got)
	}
}

func TestErlangDeclaredCV(t *testing.T) {
	if got := (Erlang{K: 16, MeanValue: 1}).CV(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Erlang(16) CV = %v, want 0.25", got)
	}
}
