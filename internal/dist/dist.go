// Package dist provides the interrequest-time distributions used in the
// paper's simulation experiments (§4.1): deterministic (CV=0), Erlang-k
// (0<CV<1), and exponential (CV=1). A hyperexponential distribution is
// provided for CV>1 sensitivity studies beyond the paper's range.
package dist

import (
	"fmt"
	"math"

	"busarb/internal/rng"
)

// Sampler draws successive values from a distribution using the supplied
// random source. Implementations are stateless with respect to the
// source: the same source state always yields the same sample.
type Sampler interface {
	// Sample returns the next value. Values are always >= 0.
	Sample(r *rng.Source) float64
	// Mean returns the distribution's mean.
	Mean() float64
	// CV returns the distribution's coefficient of variation
	// (standard deviation divided by mean); 0 for deterministic.
	CV() float64
	// String describes the distribution for logs and experiment records.
	String() string
}

// Deterministic is a point mass at Value (CV = 0).
type Deterministic struct {
	Value float64
}

// Sample implements Sampler.
func (d Deterministic) Sample(*rng.Source) float64 { return d.Value }

// Mean implements Sampler.
func (d Deterministic) Mean() float64 { return d.Value }

// CV implements Sampler.
func (d Deterministic) CV() float64 { return 0 }

func (d Deterministic) String() string { return fmt.Sprintf("det(%g)", d.Value) }

// Exponential has the given mean (CV = 1).
type Exponential struct {
	MeanValue float64
}

// Sample implements Sampler.
func (e Exponential) Sample(r *rng.Source) float64 { return e.MeanValue * r.ExpFloat64() }

// Mean implements Sampler.
func (e Exponential) Mean() float64 { return e.MeanValue }

// CV implements Sampler.
func (e Exponential) CV() float64 { return 1 }

func (e Exponential) String() string { return fmt.Sprintf("exp(%g)", e.MeanValue) }

// Erlang is the sum of K independent exponential stages, scaled so the
// total mean is MeanValue. Its CV is 1/sqrt(K), so K = round(1/CV²)
// realizes intermediate CVs; this is exactly the paper's choice for
// 0 < CV < 1 (§4.1 footnote 5).
type Erlang struct {
	K         int
	MeanValue float64
}

// Sample implements Sampler.
func (e Erlang) Sample(r *rng.Source) float64 {
	stageMean := e.MeanValue / float64(e.K)
	total := 0.0
	for i := 0; i < e.K; i++ {
		total += stageMean * r.ExpFloat64()
	}
	return total
}

// Mean implements Sampler.
func (e Erlang) Mean() float64 { return e.MeanValue }

// CV implements Sampler.
func (e Erlang) CV() float64 { return 1 / math.Sqrt(float64(e.K)) }

func (e Erlang) String() string { return fmt.Sprintf("erlang(k=%d, %g)", e.K, e.MeanValue) }

// HyperExp is a two-phase hyperexponential distribution: with probability
// P the sample is exponential with mean Mean1, otherwise exponential with
// mean Mean2. It realizes CV > 1 for sensitivity studies beyond the
// paper's 0..1 range.
type HyperExp struct {
	P            float64
	Mean1, Mean2 float64
}

// Sample implements Sampler.
func (h HyperExp) Sample(r *rng.Source) float64 {
	// Draw the phase selector first, then the exponential, so stream
	// consumption is constant (2 uniforms) per sample.
	u := r.Float64()
	v := r.ExpFloat64()
	if u < h.P {
		return h.Mean1 * v
	}
	return h.Mean2 * v
}

// Mean implements Sampler.
func (h HyperExp) Mean() float64 { return h.P*h.Mean1 + (1-h.P)*h.Mean2 }

// CV implements Sampler.
func (h HyperExp) CV() float64 {
	m := h.Mean()
	second := 2 * (h.P*h.Mean1*h.Mean1 + (1-h.P)*h.Mean2*h.Mean2)
	variance := second - m*m
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance) / m
}

func (h HyperExp) String() string {
	return fmt.Sprintf("hyperexp(p=%g, %g, %g)", h.P, h.Mean1, h.Mean2)
}

// ByCV returns a Sampler with the given mean and coefficient of
// variation, following the paper's §4.1 convention: CV=0 deterministic,
// CV=1 exponential, 0<CV<1 Erlang with K = round(1/CV²), and CV>1 a
// balanced-means hyperexponential. It panics on negative arguments.
func ByCV(mean, cv float64) Sampler {
	switch {
	case mean < 0 || cv < 0:
		panic(fmt.Sprintf("dist: invalid mean=%g cv=%g", mean, cv))
	case cv == 0:
		return Deterministic{Value: mean}
	case cv == 1:
		return Exponential{MeanValue: mean}
	case cv < 1:
		k := int(math.Round(1 / (cv * cv)))
		if k < 1 {
			k = 1
		}
		return Erlang{K: k, MeanValue: mean}
	default:
		// Balanced-means H2: p/mean1 = (1-p)/mean2, solved for the
		// requested CV.
		c2 := cv * cv
		p := 0.5 * (1 + math.Sqrt((c2-1)/(c2+1)))
		return HyperExp{P: p, Mean1: mean / (2 * p), Mean2: mean / (2 * (1 - p))}
	}
}
