package topo

import (
	"fmt"

	"busarb/internal/grant"
)

// grantNode is one tree node on the serving face.
type grantNode struct {
	sched    grant.Scheduler
	parent   int // node index, -1 at the root
	childIdx int // 1-based identity on the parent's bus
	first    int // global agent range [first, last], DFS-contiguous
	last     int
	children []int // node indices, empty at leaves
	// pending counts waiting agents in the subtree; the node's request
	// line to its parent is asserted iff pending > 0.
	pending int
}

// GrantTree is an arbitration tree on the serving face: it implements
// grant.Scheduler over the global agent identities, so an arbd shard
// drives a tree exactly as it drives a flat scheduler. Like the flat
// schedulers it is single-goroutine and allocation-free in steady
// state (pinned by AllocsPerRun).
type GrantTree struct {
	name   string
	n      int
	depth  int
	nodes  []grantNode
	leafOf []int // global agent -> leaf node index (index 0 unused)
	// repassers are the nodes whose schedulers count RR3 empty passes.
	repassers []grant.Repasser
}

// NewGrantTree builds the serving face of spec. Every node's protocol
// must be registered in grant (the schedulers' registry).
func NewGrantTree(spec *Spec) (*GrantTree, error) {
	if err := spec.Validate(func(name string) error {
		_, err := grant.ByName(name)
		return err
	}); err != nil {
		return nil, err
	}
	t := &GrantTree{
		name:   spec.Name(),
		n:      spec.TotalAgents(),
		depth:  spec.Depth(),
		leafOf: make([]int, spec.TotalAgents()+1),
	}
	if _, err := t.build(spec, -1, 0, 1); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *GrantTree) build(s *Spec, parent, childIdx, first int) (int, error) {
	ni := len(t.nodes)
	t.nodes = append(t.nodes, grantNode{
		parent:   parent,
		childIdx: childIdx,
		first:    first,
	})
	lines := s.Agents
	if !s.Leaf() {
		lines = len(s.Children)
	}
	factory, err := grant.ByName(s.Protocol)
	if err != nil {
		return 0, err
	}
	sched := factory(lines)
	t.nodes[ni].sched = sched
	if r, ok := sched.(grant.Repasser); ok {
		t.repassers = append(t.repassers, r)
	}
	if s.Leaf() {
		t.nodes[ni].last = first + s.Agents - 1
		for g := first; g <= t.nodes[ni].last; g++ {
			t.leafOf[g] = ni
		}
		return ni, nil
	}
	next := first
	for i := range s.Children {
		ci, err := t.build(&s.Children[i], ni, i+1, next)
		if err != nil {
			return 0, err
		}
		t.nodes[ni].children = append(t.nodes[ni].children, ci)
		next = t.nodes[ci].last + 1
	}
	t.nodes[ni].last = next - 1
	return ni, nil
}

// Name implements grant.Scheduler.
func (t *GrantTree) Name() string { return t.name }

// N implements grant.Scheduler.
func (t *GrantTree) N() int { return t.n }

// Depth returns the number of arbitration levels.
func (t *GrantTree) Depth() int { return t.depth }

// Enqueue implements grant.Scheduler: agent's line goes high on its
// leaf bus, and every enclosing cluster whose line was idle asserts
// its own line one level up.
func (t *GrantTree) Enqueue(agent int) bool {
	if agent < 1 || agent > t.n {
		panic(fmt.Sprintf("topo: agent %d out of range 1..%d", agent, t.n))
	}
	ni := t.leafOf[agent]
	if !t.nodes[ni].sched.Enqueue(agent - t.nodes[ni].first + 1) {
		return false
	}
	for ni >= 0 {
		node := &t.nodes[ni]
		node.pending++
		if node.pending == 1 && node.parent >= 0 {
			t.nodes[node.parent].sched.Enqueue(node.childIdx)
		}
		ni = node.parent
	}
	return true
}

// Resolve implements grant.Scheduler: the root resolves a cluster,
// the cluster resolves a sub-cluster, down to the winning agent. A
// cluster whose line was consumed but which still has waiting agents
// re-enqueues its line immediately — a fresh request at the parent's
// bus, so FCFS schedulers rank cluster lines by (re-)arrival order,
// the same multi-waiter identity handling the arbd shard loop applies
// to flat schedulers.
func (t *GrantTree) Resolve() int {
	if t.nodes[0].pending == 0 {
		return 0
	}
	cur := 0
	for len(t.nodes[cur].children) > 0 {
		c := t.nodes[cur].sched.Resolve()
		if c == 0 {
			// pending > 0 guarantees an asserted line on every bus down
			// the winning path; a dry Resolve is a tree invariant bug.
			panic("topo: internal node resolved idle with pending agents")
		}
		cur = t.nodes[cur].children[c-1]
	}
	w := t.nodes[cur].sched.Resolve()
	if w == 0 {
		panic("topo: leaf resolved idle with pending agents")
	}
	g := w + t.nodes[cur].first - 1
	for ni := cur; ni >= 0; {
		node := &t.nodes[ni]
		node.pending--
		if node.parent >= 0 && node.pending > 0 {
			t.nodes[node.parent].sched.Enqueue(node.childIdx)
		}
		ni = node.parent
	}
	return g
}

// Pending implements grant.Scheduler: the number of waiting agents.
func (t *GrantTree) Pending() int { return t.nodes[0].pending }

// Repasses implements grant.Repasser, summing the RR3 empty-pass
// counters across the tree's nodes.
func (t *GrantTree) Repasses() int64 {
	var total int64
	for _, r := range t.repassers {
		total += r.Repasses()
	}
	return total
}

// Reset implements grant.Scheduler.
func (t *GrantTree) Reset() {
	for i := range t.nodes {
		t.nodes[i].sched.Reset()
		t.nodes[i].pending = 0
	}
}
