// Package topo makes arbitration topology a first-class layer:
// instead of one flat bus, agents are grouped into clusters whose
// local arbiters feed a parent arbiter, recursively, up to a root.
// This is the hierarchical generalization of the paper's §5 hybrid
// direction — any §3 protocol at any level — so "local RR1 feeding a
// global FCFS2" is just a two-level Spec.
//
// The model is composable wired-OR hardware: every node owns one
// arbiter (any registered protocol) and a set of request lines, one
// per child. A leaf node's lines are its agents' request lines; an
// internal node's lines are asserted by child clusters that have at
// least one waiting agent. A grant settles top-down — the root picks
// a cluster, that cluster picks a sub-cluster, and so on to the
// winning agent — and the whole composite settles within a single
// arbitration delay (the levels are just more bits in the §2.1
// composite arbitration number). A repass at any level (RR3's empty
// pass) restarts the arbitration at every level and is charged one
// full extra arbitration delay, the §3.1 accounting generalized.
//
// Agents carry global identities 1..TotalAgents, assigned depth-first
// so every subtree owns one contiguous range — which is what lets the
// simulator's sorted waiting-set snapshot be bucketed into clusters
// by boundary lookups, allocation-free, on top of the bit-parallel
// kernel paths of the per-node protocols.
//
// The tree has two faces: SimTree implements core.Protocol (the
// simulators' face; a single-node tree is bit-identical to the flat
// bus) and GrantTree implements grant.Scheduler (the serving face
// behind arbd resource specs like "8x4:RR1/FCFS2").
package topo

import (
	"fmt"
	"strconv"
	"strings"
)

// MaxDepth bounds tree depth; deeper specs are rejected by Validate.
// Real interconnects are 2-3 levels; the bound only exists to keep
// hostile inputs (fuzzed scenarios, wire specs) from recursing away.
const MaxDepth = 8

// Spec describes one arbitration node: a protocol plus either a count
// of directly attached agents (leaf cluster) or child nodes (internal
// node). Exactly one of Agents and Children must be set.
//
// The JSON form is the scenario schema's topology vocabulary:
//
//	{"protocol": "FCFS2", "children": [
//	  {"protocol": "RR1", "agents": 8},
//	  {"protocol": "RR1", "agents": 8}]}
//
// A flat bus is the degenerate single-leaf Spec {Protocol, Agents}.
type Spec struct {
	// Protocol names this node's arbiter ("RR1", "FCFS2", ...). The
	// valid set depends on the face: NewSimTree accepts any core
	// protocol, NewGrantTree any grant scheduler.
	Protocol string `json:"protocol"`
	// Agents is the number of agents on a leaf cluster's bus.
	Agents int `json:"agents,omitempty"`
	// Children are the sub-clusters competing on an internal node's bus.
	Children []Spec `json:"children,omitempty"`
}

// Leaf reports whether the node has directly attached agents.
func (s *Spec) Leaf() bool { return len(s.Children) == 0 }

// TotalAgents returns the number of agents in the subtree.
func (s *Spec) TotalAgents() int {
	if s.Leaf() {
		return s.Agents
	}
	total := 0
	for i := range s.Children {
		total += s.Children[i].TotalAgents()
	}
	return total
}

// Depth returns the number of arbitration levels (1 for a flat bus).
func (s *Spec) Depth() int {
	if s.Leaf() {
		return 1
	}
	max := 0
	for i := range s.Children {
		if d := s.Children[i].Depth(); d > max {
			max = d
		}
	}
	return 1 + max
}

// Validate walks the spec, checking shape (exactly one of agents and
// children, at least 2 children per internal node, depth within
// MaxDepth) and every protocol name through avail. Errors name the
// offending node by path, e.g. `children[1].children[0]`.
func (s *Spec) Validate(avail func(protocol string) error) error {
	return s.validate(avail, "topology", 1)
}

func (s *Spec) validate(avail func(string) error, path string, depth int) error {
	if depth > MaxDepth {
		return fmt.Errorf("topo: %s: depth exceeds %d levels", path, MaxDepth)
	}
	if s.Protocol == "" {
		return fmt.Errorf("topo: %s: missing protocol", path)
	}
	if avail != nil {
		if err := avail(s.Protocol); err != nil {
			return fmt.Errorf("topo: %s: %w", path, err)
		}
	}
	if s.Agents != 0 && len(s.Children) != 0 {
		return fmt.Errorf("topo: %s: set agents or children, not both", path)
	}
	if s.Leaf() {
		if s.Agents < 1 {
			return fmt.Errorf("topo: %s: leaf needs at least 1 agent, got %d", path, s.Agents)
		}
		return nil
	}
	if len(s.Children) < 2 {
		return fmt.Errorf("topo: %s: internal node needs at least 2 children, got %d", path, len(s.Children))
	}
	for i := range s.Children {
		child := fmt.Sprintf("%s.children[%d]", path, i)
		if err := s.Children[i].validate(avail, child, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// Name returns a compact display name: a leaf is its bare protocol
// ("RR1", so a single-node tree reports the same ProtocolName as the
// flat bus it replaces), an internal node with identical children
// collapses to "FCFS2(4xRR1:8)", and mixed children are listed.
func (s *Spec) Name() string {
	if s.Leaf() {
		return s.Protocol
	}
	uniform := true
	for i := 1; i < len(s.Children); i++ {
		if !equalSpec(&s.Children[i], &s.Children[0]) {
			uniform = false
			break
		}
	}
	if uniform {
		return fmt.Sprintf("%s(%dx%s)", s.Protocol, len(s.Children), s.Children[0].childName())
	}
	parts := make([]string, len(s.Children))
	for i := range s.Children {
		parts[i] = s.Children[i].childName()
	}
	return fmt.Sprintf("%s(%s)", s.Protocol, strings.Join(parts, ","))
}

// childName is Name with leaf cluster sizes spelled out ("RR1:8").
func (s *Spec) childName() string {
	if s.Leaf() {
		return fmt.Sprintf("%s:%d", s.Protocol, s.Agents)
	}
	return s.Name()
}

func equalSpec(a, b *Spec) bool {
	if a.Protocol != b.Protocol || a.Agents != b.Agents || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !equalSpec(&a.Children[i], &b.Children[i]) {
			return false
		}
	}
	return true
}

// Uniform builds a balanced tree. dims and protos run leaf to root:
// dims[0] is the agents per leaf cluster, dims[i>0] the fan-out at
// level i, protos[i] the protocol at that level. Uniform([8, 4],
// ["RR1", "FCFS2"]) is 4 clusters of 8 agents arbitrating by RR1
// locally, cluster winners competing by FCFS2 at the root.
func Uniform(dims []int, protos []string) (*Spec, error) {
	if len(dims) == 0 || len(dims) != len(protos) {
		return nil, fmt.Errorf("topo: need one protocol per dimension, got %d dims and %d protocols",
			len(dims), len(protos))
	}
	for i, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("topo: dimension %d must be positive, got %d", i, d)
		}
	}
	spec := &Spec{Protocol: protos[0], Agents: dims[0]}
	for lvl := 1; lvl < len(dims); lvl++ {
		children := make([]Spec, dims[lvl])
		for i := range children {
			children[i] = *spec
		}
		spec = &Spec{Protocol: protos[lvl], Children: children}
	}
	return spec, nil
}

// ParseUniform parses the compact tree syntax of arbd resource specs:
// dims "8x4" with protos "RR1/FCFS2" is Uniform([8,4], [RR1,FCFS2]) —
// both lists run leaf to root and must have the same length. A single
// dimension with a single protocol ("32" with "RR1") is the flat bus.
func ParseUniform(dims, protos string) (*Spec, error) {
	dimParts := strings.Split(dims, "x")
	protoParts := strings.Split(protos, "/")
	if len(dimParts) != len(protoParts) {
		return nil, fmt.Errorf("topo: %d dimensions %q but %d protocols %q (need one protocol per level, leaf to root)",
			len(dimParts), dims, len(protoParts), protos)
	}
	d := make([]int, len(dimParts))
	for i, p := range dimParts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("topo: bad dimension %q in %q", p, dims)
		}
		d[i] = v
	}
	return Uniform(d, protoParts)
}
