package topo

import (
	"sort"
	"testing"

	"busarb/internal/core"
	"busarb/internal/grant"
	"busarb/internal/rng"
)

// drive replays one random request/grant history through both faces
// of the same spec under the simulators' convention (enqueue =
// OnRequest, grant = Arbitrate + OnServiceStart) and requires
// identical winner sequences. Valid for any tree whose RR3 nodes, if
// present, are at the root: a repass below the root re-runs ancestor
// arbitrations on the simulator face (the whole composite settles
// again) while the serving face folds it inside the node, so the two
// faces' dynamic state diverges by design there.
func drive(t *testing.T, spec *Spec, seed uint64, steps int) {
	t.Helper()
	sim, err := NewSimTree(spec)
	if err != nil {
		t.Fatalf("NewSimTree: %v", err)
	}
	gt, err := NewGrantTree(spec)
	if err != nil {
		t.Fatalf("NewGrantTree: %v", err)
	}
	n := spec.TotalAgents()
	if sim.N() != n || gt.N() != n {
		t.Fatalf("N: sim %d grant %d, want %d", sim.N(), gt.N(), n)
	}
	src := rng.New(seed)
	waiting := make([]bool, n+1)
	nwait := 0
	now := 0.0
	grants := 0
	for step := 0; step < steps; step++ {
		now += 1
		if nwait == 0 || (nwait < n && src.Float64() < 0.6) {
			g := 1 + src.Intn(n)
			for waiting[g] {
				g = 1 + src.Intn(n)
			}
			waiting[g] = true
			nwait++
			sim.OnRequest(g, now)
			if !gt.Enqueue(g) {
				t.Fatalf("step %d: Enqueue(%d) = false for idle line", step, g)
			}
			if gt.Enqueue(g) {
				t.Fatalf("step %d: Enqueue(%d) = true for asserted line", step, g)
			}
			continue
		}
		if gt.Pending() != nwait {
			t.Fatalf("step %d: Pending = %d, want %d", step, gt.Pending(), nwait)
		}
		snap := make([]int, 0, nwait)
		for id := 1; id <= n; id++ {
			if waiting[id] {
				snap = append(snap, id)
			}
		}
		out := sim.Arbitrate(snap)
		for out.Repass {
			out = sim.Arbitrate(snap)
		}
		w := out.Winner
		// Hops cover the winner's path: consecutive levels from the
		// root, at most the tree depth (less in lopsided trees when a
		// shallow cluster wins).
		hops := sim.LastHops()
		if len(hops) < 1 || len(hops) > spec.Depth() {
			t.Fatalf("step %d: %d hops for depth-%d tree", step, len(hops), spec.Depth())
		}
		for lvl, h := range hops {
			if h.Level != lvl {
				t.Fatalf("step %d: hop %d at level %d, want root-first order", step, lvl, h.Level)
			}
			if h.LineUp > now {
				t.Fatalf("step %d: hop level %d line-up %v after resolve %v", step, lvl, h.LineUp, now)
			}
		}
		now += 1
		sim.OnServiceStart(w, now)
		gw := gt.Resolve()
		if gw != w {
			t.Fatalf("step %d (grant %d): faces disagree: sim %d, grant %d", step, grants, w, gw)
		}
		if !waiting[w] {
			t.Fatalf("step %d: granted non-waiting agent %d", step, w)
		}
		waiting[w] = false
		nwait--
		grants++
	}
	if grants == 0 {
		t.Fatal("history produced no grants")
	}
}

func TestFacesAgree(t *testing.T) {
	specs := map[string]*Spec{
		"flat-RR1":      {Protocol: "RR1", Agents: 16},
		"flat-RR3":      {Protocol: "RR3", Agents: 16},
		"flat-FCFS2":    {Protocol: "FCFS2", Agents: 16},
		"8x4-RR1-FCFS2": mustUniform(t, []int{8, 4}, []string{"RR1", "FCFS2"}),
		"4x4-FCFS1-RR1": mustUniform(t, []int{4, 4}, []string{"FCFS1", "RR1"}),
		"4x2x2-FP-RR1-FCFS1": mustUniform(t, []int{4, 2, 2},
			[]string{"FP", "RR1", "FCFS1"}),
		"root-RR3": {Protocol: "RR3", Children: []Spec{
			{Protocol: "RR1", Agents: 3}, {Protocol: "FCFS2", Agents: 5},
			{Protocol: "FP", Agents: 8}}},
		"lopsided": {Protocol: "FCFS2", Children: []Spec{
			{Protocol: "RR1", Agents: 1},
			{Protocol: "FCFS1", Children: []Spec{
				{Protocol: "RR1", Agents: 7}, {Protocol: "FP", Agents: 2}}}}},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 4; seed++ {
				drive(t, spec, seed, 3000)
			}
		})
	}
}

// TestDepth1DelegatesExactly pins the refactor's safety net at the
// protocol level: a single-leaf tree must produce the same winner
// sequence as a bare protocol instance under identical histories
// (bussim's equivalence test extends this to whole-run bit-identity).
func TestDepth1DelegatesExactly(t *testing.T) {
	for _, proto := range []string{"FP", "RR1", "RR2", "RR3", "FCFS1", "FCFS2"} {
		t.Run(proto, func(t *testing.T) {
			const n = 12
			tree, err := NewSimTree(&Spec{Protocol: proto, Agents: n})
			if err != nil {
				t.Fatalf("NewSimTree: %v", err)
			}
			if tree.Name() != proto {
				t.Fatalf("Name = %q, want %q", tree.Name(), proto)
			}
			factory, err := core.ByName(proto)
			if err != nil {
				t.Fatal(err)
			}
			flat := factory(n)
			src := rng.New(7)
			waiting := map[int]bool{}
			now := 0.0
			for step := 0; step < 2000; step++ {
				now += 1
				if len(waiting) == 0 || (len(waiting) < n && src.Float64() < 0.55) {
					g := 1 + src.Intn(n)
					for waiting[g] {
						g = 1 + src.Intn(n)
					}
					waiting[g] = true
					tree.OnRequest(g, now)
					flat.OnRequest(g, now)
					continue
				}
				snap := make([]int, 0, len(waiting))
				for id := range waiting {
					snap = append(snap, id)
				}
				sort.Ints(snap)
				to := tree.Arbitrate(snap)
				fo := flat.Arbitrate(snap)
				if to != fo {
					t.Fatalf("step %d: tree %+v, flat %+v", step, to, fo)
				}
				if to.Repass {
					continue
				}
				now += 1
				tree.OnServiceStart(to.Winner, now)
				flat.OnServiceStart(to.Winner, now)
				delete(waiting, to.Winner)
			}
		})
	}
}

// TestTreeAllocFree pins the acceptance criterion: steady-state
// operation of both faces at 1024 agents allocates nothing.
func TestTreeAllocFree(t *testing.T) {
	spec := mustUniform(t, []int{32, 32}, []string{"RR1", "FCFS2"})
	sim, err := NewSimTree(spec)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := NewGrantTree(spec)
	if err != nil {
		t.Fatal(err)
	}
	n := spec.TotalAgents()
	snap := make([]int, 0, n)
	now := 0.0
	cycle := func() {
		for g := 1; g <= n; g += 7 {
			now += 1
			sim.OnRequest(g, now)
			gt.Enqueue(g)
		}
		snap = snap[:0]
		for g := 1; g <= n; g += 7 {
			snap = append(snap, g)
		}
		for len(snap) > 0 {
			out := sim.Arbitrate(snap)
			now += 1
			sim.OnServiceStart(out.Winner, now)
			if w := gt.Resolve(); w != out.Winner {
				t.Fatalf("faces disagree: sim %d, grant %d", out.Winner, w)
			}
			i := sort.SearchInts(snap, out.Winner)
			snap = append(snap[:i], snap[i+1:]...)
		}
	}
	cycle() // warm scratch buffers
	if allocs := testing.AllocsPerRun(10, cycle); allocs > 0 {
		t.Errorf("steady-state tree cycle allocates %v per run, want 0", allocs)
	}
}

// TestGrantTreeRepasses sums RR3 empty-pass counters across nodes.
func TestGrantTreeRepasses(t *testing.T) {
	spec := mustUniform(t, []int{4, 2}, []string{"RR3", "RR3"})
	gt, err := NewGrantTree(spec)
	if err != nil {
		t.Fatal(err)
	}
	var _ grant.Scheduler = gt
	var _ grant.Repasser = gt
	gt.Enqueue(1)
	gt.Enqueue(5)
	// Fresh RR3 registers hold 0, so the first resolution at every
	// level on the winning path is an empty pass.
	if w := gt.Resolve(); w == 0 {
		t.Fatal("Resolve = 0 with pending agents")
	}
	if got := gt.Repasses(); got < 2 {
		t.Errorf("Repasses = %d, want at least 2 (root and winning leaf)", got)
	}
}
