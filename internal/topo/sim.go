package topo

import (
	"fmt"
	"sort"

	"busarb/internal/core"
)

// Hop is one level's resolution within a tree arbitration, root
// first. LineUp is the time the winning request line at that level
// was asserted: the winning agent's request time at the leaf level,
// the winning cluster's line-assert time at internal levels — so
// (resolve time − LineUp) is the per-hop wait the observability layer
// reports.
type Hop struct {
	// Level is the arbitration level, 0 at the root.
	Level int
	// LineUp is when the winning line at this level went high.
	LineUp float64
}

// simNode is one tree node on the simulator face.
type simNode struct {
	proto    core.Protocol
	parent   int // node index, -1 at the root
	childIdx int // 1-based identity on the parent's bus
	level    int // 0 at the root
	first    int // global agent range [first, last], DFS-contiguous
	last     int
	children []int // node indices, empty at leaves
	// pending counts waiting agents in the subtree; the node's request
	// line to its parent is asserted iff pending > 0.
	pending int
	// lineUp is when the line to the parent was last asserted.
	lineUp float64
}

// SimTree is an arbitration tree on the simulators' face: it
// implements core.Protocol over the global agent identities, so
// bussim runs a tree exactly as it runs a flat protocol. A
// single-leaf tree delegates every call to its one protocol instance
// and is bit-identical to the flat bus (the refactor's safety net,
// pinned by bussim's equivalence test).
//
// Steady-state operation is allocation-free: the descent buckets the
// sorted waiting snapshot into clusters with boundary lookups over
// the DFS-contiguous identity ranges, and all per-call scratch is
// owned by the tree.
type SimTree struct {
	name    string
	n       int
	depth   int
	nodes   []simNode
	leafOf  []int     // global agent -> leaf node index (index 0 unused)
	reqTime []float64 // global agent -> pending request's issue time
	hops    []Hop     // last grant's per-level resolutions, root first
	buf     []int     // per-level waiting-set scratch
}

// NewSimTree builds the simulator face of spec. Every node's protocol
// must be registered in core (the simulators' registry).
func NewSimTree(spec *Spec) (*SimTree, error) {
	if err := spec.Validate(func(name string) error {
		_, err := core.ByName(name)
		return err
	}); err != nil {
		return nil, err
	}
	n := spec.TotalAgents()
	t := &SimTree{
		name:    spec.Name(),
		n:       n,
		depth:   spec.Depth(),
		leafOf:  make([]int, n+1),
		reqTime: make([]float64, n+1),
		hops:    make([]Hop, 0, spec.Depth()),
	}
	maxLines := 0
	if _, err := t.build(spec, -1, 0, 0, 1, &maxLines); err != nil {
		return nil, err
	}
	t.buf = make([]int, 0, maxLines)
	return t, nil
}

// build flattens the spec subtree into t.nodes, assigning global
// identities depth-first from first. It returns the node's index.
func (t *SimTree) build(s *Spec, parent, childIdx, level, first int, maxLines *int) (int, error) {
	ni := len(t.nodes)
	t.nodes = append(t.nodes, simNode{
		parent:   parent,
		childIdx: childIdx,
		level:    level,
		first:    first,
	})
	lines := s.Agents
	if !s.Leaf() {
		lines = len(s.Children)
	}
	if lines > *maxLines {
		*maxLines = lines
	}
	factory, err := core.ByName(s.Protocol)
	if err != nil {
		return 0, err
	}
	t.nodes[ni].proto = factory(lines)
	if s.Leaf() {
		t.nodes[ni].last = first + s.Agents - 1
		for g := first; g <= t.nodes[ni].last; g++ {
			t.leafOf[g] = ni
		}
		return ni, nil
	}
	next := first
	for i := range s.Children {
		ci, err := t.build(&s.Children[i], ni, i+1, level+1, next, maxLines)
		if err != nil {
			return 0, err
		}
		// The append in the recursive call may have moved t.nodes.
		t.nodes[ni].children = append(t.nodes[ni].children, ci)
		next = t.nodes[ci].last + 1
	}
	t.nodes[ni].last = next - 1
	return ni, nil
}

// Name implements core.Protocol: the Spec's collapsed display name
// ("RR1" for a single-leaf tree, "FCFS2(4xRR1:8)" for a uniform
// two-level one).
func (t *SimTree) Name() string { return t.name }

// N implements core.Protocol.
func (t *SimTree) N() int { return t.n }

// Depth returns the number of arbitration levels.
func (t *SimTree) Depth() int { return t.depth }

// OnRequest implements core.Protocol: agent g's request line goes
// high on its leaf bus, and every enclosing cluster whose line was
// idle asserts its own line one level up.
func (t *SimTree) OnRequest(g int, now float64) {
	t.checkAgent(g)
	t.reqTime[g] = now
	ni := t.leafOf[g]
	t.nodes[ni].proto.OnRequest(g-t.nodes[ni].first+1, now)
	for ni >= 0 {
		node := &t.nodes[ni]
		node.pending++
		if node.pending == 1 && node.parent >= 0 {
			t.nodes[node.parent].proto.OnRequest(node.childIdx, now)
			node.lineUp = now
		}
		ni = node.parent
	}
}

// OnServiceStart implements core.Protocol: the winner's request is
// consumed at every level on its path. A cluster that still has
// waiting agents re-asserts its line immediately — a fresh request at
// the parent's bus, which is what keeps FCFS counters ranking cluster
// lines by (re-)arrival order (the multi-waiter identity semantics of
// the serving face, mirrored here).
func (t *SimTree) OnServiceStart(g int, now float64) {
	t.checkAgent(g)
	ni := t.leafOf[g]
	t.nodes[ni].proto.OnServiceStart(g-t.nodes[ni].first+1, now)
	for ni >= 0 {
		node := &t.nodes[ni]
		node.pending--
		if node.parent >= 0 {
			parent := t.nodes[node.parent].proto
			parent.OnServiceStart(node.childIdx, now)
			if node.pending > 0 {
				parent.OnRequest(node.childIdx, now)
				node.lineUp = now
			}
		}
		ni = node.parent
	}
}

// Arbitrate implements core.Protocol: the root arbitrates among the
// cluster lines, the winning cluster arbitrates among its own, down
// to the winning agent — one top-down settle per §2.1's composite
// arbitration number, all levels within the caller's single
// arbitration delay. A repass at any level (RR3's empty pass) aborts
// the settle and reports Repass; the caller charges a fresh
// arbitration delay and re-arbitrates the whole tree.
func (t *SimTree) Arbitrate(waiting []int) core.Outcome {
	if len(waiting) == 0 {
		panic("topo: Arbitrate with no waiting agents")
	}
	t.hops = t.hops[:0]
	cur := 0
	for {
		node := &t.nodes[cur]
		if len(node.children) == 0 {
			// Leaf: translate the remaining global identities to the
			// local bus (1-based within the cluster).
			local := t.buf[:0]
			for _, g := range waiting {
				local = append(local, g-node.first+1)
			}
			t.buf = local[:0]
			out := node.proto.Arbitrate(local)
			if out.Repass {
				return core.Outcome{Repass: true}
			}
			w := out.Winner + node.first - 1
			t.hops = append(t.hops, Hop{Level: node.level, LineUp: t.reqTime[w]})
			return core.Outcome{Winner: w}
		}
		// Internal: a child competes iff some of its agents are in the
		// snapshot; child ranges are contiguous and ascending, so the
		// competitor set is a boundary scan over the sorted snapshot.
		lines := t.buf[:0]
		i := 0
		for _, ci := range node.children {
			child := &t.nodes[ci]
			for i < len(waiting) && waiting[i] < child.first {
				i++
			}
			if i < len(waiting) && waiting[i] <= child.last {
				lines = append(lines, child.childIdx)
			}
		}
		t.buf = lines[:0]
		out := node.proto.Arbitrate(lines)
		if out.Repass {
			return core.Outcome{Repass: true}
		}
		win := node.children[out.Winner-1]
		child := &t.nodes[win]
		t.hops = append(t.hops, Hop{Level: node.level, LineUp: child.lineUp})
		lo := sort.SearchInts(waiting, child.first)
		hi := lo
		for hi < len(waiting) && waiting[hi] <= child.last {
			hi++
		}
		waiting = waiting[lo:hi]
		cur = win
	}
}

// LastHops returns the per-level resolutions of the most recent
// successful Arbitrate, root first. The slice is reused by the next
// call.
func (t *SimTree) LastHops() []Hop { return t.hops }

// Reset implements core.Protocol.
func (t *SimTree) Reset() {
	for i := range t.nodes {
		t.nodes[i].proto.Reset()
		t.nodes[i].pending = 0
		t.nodes[i].lineUp = 0
	}
	for i := range t.reqTime {
		t.reqTime[i] = 0
	}
	t.hops = t.hops[:0]
}

func (t *SimTree) checkAgent(g int) {
	if g < 1 || g > t.n {
		panic(fmt.Sprintf("topo: agent %d out of range 1..%d", g, t.n))
	}
}
