package topo

import (
	"strings"
	"testing"

	"busarb/internal/core"
)

func coreAvail(name string) error {
	_, err := core.ByName(name)
	return err
}

func mustUniform(t *testing.T, dims []int, protos []string) *Spec {
	t.Helper()
	s, err := Uniform(dims, protos)
	if err != nil {
		t.Fatalf("Uniform(%v, %v): %v", dims, protos, err)
	}
	return s
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name    string
		spec    Spec
		wantErr string // "" means valid
	}{
		{"flat leaf", Spec{Protocol: "RR1", Agents: 8}, ""},
		{"two level", Spec{Protocol: "FCFS2", Children: []Spec{
			{Protocol: "RR1", Agents: 4}, {Protocol: "RR1", Agents: 4}}}, ""},
		{"missing protocol", Spec{Agents: 4}, "missing protocol"},
		{"unknown protocol", Spec{Protocol: "LRU", Agents: 4}, "unknown protocol"},
		{"both forms", Spec{Protocol: "RR1", Agents: 4, Children: []Spec{
			{Protocol: "RR1", Agents: 2}, {Protocol: "RR1", Agents: 2}}}, "not both"},
		{"empty leaf", Spec{Protocol: "RR1"}, "at least 1 agent"},
		{"single child", Spec{Protocol: "RR1", Children: []Spec{
			{Protocol: "RR1", Agents: 4}}}, "at least 2 children"},
		{"bad nested protocol", Spec{Protocol: "FCFS2", Children: []Spec{
			{Protocol: "RR1", Agents: 4}, {Protocol: "nope", Agents: 4}}},
			"children[1]"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate(coreAvail)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("Validate = %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}

func TestSpecValidateDepthBound(t *testing.T) {
	// A chain deeper than MaxDepth must be rejected.
	spec := Spec{Protocol: "RR1", Agents: 2}
	for i := 0; i < MaxDepth; i++ {
		spec = Spec{Protocol: "RR1", Children: []Spec{spec, {Protocol: "RR1", Agents: 2}}}
	}
	if err := spec.Validate(coreAvail); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("Validate deep spec = %v, want depth error", err)
	}
}

func TestSpecAccessors(t *testing.T) {
	s := mustUniform(t, []int{8, 4}, []string{"RR1", "FCFS2"})
	if got := s.TotalAgents(); got != 32 {
		t.Errorf("TotalAgents = %d, want 32", got)
	}
	if got := s.Depth(); got != 2 {
		t.Errorf("Depth = %d, want 2", got)
	}
	if got := s.Name(); got != "FCFS2(4xRR1:8)" {
		t.Errorf("Name = %q, want FCFS2(4xRR1:8)", got)
	}
	flat := &Spec{Protocol: "RR1", Agents: 32}
	if got := flat.Name(); got != "RR1" {
		t.Errorf("flat Name = %q, want RR1 (must match the flat bus's ProtocolName)", got)
	}
	mixed := &Spec{Protocol: "FP", Children: []Spec{
		{Protocol: "RR1", Agents: 2}, {Protocol: "RR3", Agents: 6}}}
	if got := mixed.Name(); got != "FP(RR1:2,RR3:6)" {
		t.Errorf("mixed Name = %q", got)
	}
}

func TestParseUniform(t *testing.T) {
	cases := []struct {
		dims, protos string
		wantAgents   int
		wantDepth    int
		wantErr      bool
	}{
		{"8x4", "RR1/FCFS2", 32, 2, false},
		{"32", "RR1", 32, 1, false},
		{"4x4x4", "FP/RR1/FCFS2", 64, 3, false},
		{"8x4", "RR1", 0, 0, true},     // one protocol for two levels
		{"8", "RR1/FCFS2", 0, 0, true}, // two protocols for one level
		{"8xfour", "RR1/FCFS2", 0, 0, true},
		{"0x4", "RR1/FCFS2", 0, 0, true},
		{"-8x4", "RR1/FCFS2", 0, 0, true},
	}
	for _, c := range cases {
		s, err := ParseUniform(c.dims, c.protos)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseUniform(%q, %q) = %v, want error", c.dims, c.protos, s)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseUniform(%q, %q): %v", c.dims, c.protos, err)
			continue
		}
		if s.TotalAgents() != c.wantAgents || s.Depth() != c.wantDepth {
			t.Errorf("ParseUniform(%q, %q) = %d agents depth %d, want %d/%d",
				c.dims, c.protos, s.TotalAgents(), s.Depth(), c.wantAgents, c.wantDepth)
		}
	}
}
