// Package analysis is the repository's static-analysis toolkit: a
// minimal, dependency-free reimplementation of the golang.org/x/tools
// go/analysis surface (Analyzer, Pass, Diagnostic) plus a module
// loader, built entirely on the standard library's go/ast, go/parser,
// go/types and go/importer packages.
//
// The usual way to write Go analyzers is golang.org/x/tools/go/analysis
// with the x/tools loader and analysistest harness. This repository
// deliberately has no external dependencies (go.mod lists none, and the
// build environment is offline), so the small slice of that machinery
// the seven arblint analyzers need is reimplemented here, together with
// a shared intraprocedural CFG/dataflow engine (the cfg subpackage:
// dominators plus a must-facts worklist). The API shape is kept close
// to x/tools so the analyzers could be ported to a real multichecker by
// swapping imports if the dependency ever lands.
//
// The analyzers themselves (Determinism, NilProbe, ValidateCall,
// SeedSrc, AllocFree, SyncGuard, GoroLeak) encode invariants that every
// reproduced table in EXPERIMENTS.md — and the arbd daemon's
// concurrency discipline — rests on: fixed-seed runs are bit-identical,
// nil-Observer simulation paths are allocation-free, configurations are
// validated before use, the arbitration hot paths never allocate,
// mutex-guarded fields are touched only under their lock, and every
// spawned goroutine has a shutdown path. See the per-analyzer files and
// docs/LINT.md.
//
// A diagnostic can be suppressed at the offending line (or the line
// above it) with the escape hatch
//
//	//arblint:allow <analyzer>
//
// Each allow comment suppresses exactly one diagnostic from the named
// analyzer; an allow comment that suppresses nothing is itself
// reported, so stale exemptions cannot accumulate. See allow.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. Unlike the x/tools original it
// carries an optional package filter: repository invariants like
// determinism only bind in the simulator packages, and the driver uses
// AppliesTo to skip the rest of the tree.
type Analyzer struct {
	// Name is the analyzer's identifier: the diagnostic suffix printed
	// by cmd/arblint and the token named in //arblint:allow comments.
	Name string
	// Doc is the one-paragraph description shown by `arblint -list`.
	Doc string
	// AppliesTo reports whether the analyzer should run on the package
	// with the given import path. A nil AppliesTo means every package.
	// The analysistest harness ignores this filter so testdata packages
	// exercise the analyzer regardless of their synthetic import paths.
	AppliesTo func(pkgPath string) bool
	// Run performs the analysis on one type-checked package, reporting
	// findings through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test files, comments included.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags []Diagnostic
}

// Diagnostic kinds, carried so machine consumers (arblint -json) can
// distinguish real findings from the annotation-hygiene diagnostics.
const (
	// KindFinding is a violation the analyzer itself reported.
	KindFinding = "finding"
	// KindUnusedAllow is an //arblint:allow comment that suppressed
	// nothing.
	KindUnusedAllow = "unused-allow"
	// KindUnusedAlloc is an //arblint:alloc comment that excused
	// nothing.
	KindUnusedAlloc = "unused-alloc"
	// KindInapplicableAllow is an annotation naming an analyzer that is
	// unknown or never runs in the annotated package (see CheckAllows).
	KindInapplicableAllow = "inapplicable-allow"
)

// Diagnostic is one finding, with its position already resolved so the
// driver and tests can sort and print without a FileSet at hand.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
	// Kind classifies the diagnostic: KindFinding for analyzer
	// violations, or one of the annotation-hygiene kinds.
	Kind string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
		Kind:     KindFinding,
	})
}

// RunAnalyzer runs one analyzer over one loaded package and returns its
// diagnostics with //arblint:allow suppressions already applied and
// unused allow comments reported, sorted by position. This is the one
// entry point shared by the cmd/arblint driver and the analysistest
// harness, so the escape hatch behaves identically in both.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	diags, _, err := AnalyzePackage(a, pkg)
	return diags, err
}

// AnalyzePackage is RunAnalyzer with bookkeeping: it also reports how
// many diagnostics //arblint:allow comments suppressed, which is what
// `arblint -stats` aggregates.
func AnalyzePackage(a *Analyzer, pkg *Package) ([]Diagnostic, int, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, 0, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
	}
	diags, suppressed := filterAllows(a.Name, pkg, pass.diags)
	sortDiagnostics(diags)
	return diags, suppressed, nil
}

// SortDiagnostics orders diagnostics by file, line, column, then
// message — the global order cmd/arblint prints, byte-deterministic
// across runs.
func SortDiagnostics(diags []Diagnostic) { sortDiagnostics(diags) }

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Message < diags[j].Message
	})
}

// calleeFunc resolves the *types.Func a call expression invokes, or nil
// for calls through function-typed values, builtins, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether f is the package-level function pkgPath.name
// (methods never match: they have a receiver).
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	if f == nil || f.Pkg() == nil || f.Name() != name || f.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// obsTypeNamed reports whether t is the named type `name` declared in
// the observability package busarb/internal/obs. Matching by package
// suffix keeps the check valid for testdata packages, which import the
// real obs package through the module loader.
func obsTypeNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	return pathHasSuffix(obj.Pkg().Path(), "internal/obs")
}

// pathHasSuffix reports whether path ends with the given slash-separated
// suffix on a path-segment boundary.
func pathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	n := len(path) - len(suffix)
	return n > 0 && path[n-1] == '/' && path[n:] == suffix
}
