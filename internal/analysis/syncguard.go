package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"busarb/internal/analysis/cfg"
)

// SyncGuard brings the daemon's concurrency discipline under static
// lint. It is annotation-driven: a struct field declares its guard in
// its comment, and every access is then checked against it.
//
//	mu    sync.Mutex
//	conns map[net.Conn]bool // guarded by mu
//
// An access s.conns is legal only where the must-analysis proves
// s.mu is held: s.mu.Lock() gens the fact, s.mu.Unlock() kills it,
// facts intersect at joins, and a deferred Unlock does not kill (it
// runs on the way out). A function whose doc comment says "callers
// hold s.mu" starts with the fact — the *Locked-suffix convention made
// checkable.
//
//	waiters []waiter // owned by the loop goroutine
//
// declares single-goroutine ownership instead: the field may only be
// touched by the named function and the functions called exclusively
// from it (the owner set is a greatest fixpoint over the package's
// call graph, where call sites inside go statements and function
// literals never confer ownership), plus constructors — functions
// returning the struct type, which run before the goroutine exists.
// This is how internal/arbd's "loop-owned state, no locking" comment
// becomes an enforced invariant rather than prose.
//
// The analyzer runs on every package but costs nothing where no field
// is annotated. Misspelled annotations (naming a mutex that is not a
// sync.Mutex/RWMutex sibling field, or an owner function that does not
// exist) are diagnostics themselves.
var SyncGuard = &Analyzer{
	Name: "syncguard",
	Doc: "fields declared `// guarded by <mu>` need the mutex held at every access; " +
		"`// owned by the <f> goroutine` fields are single-goroutine state",
	Run: runSyncGuard,
}

var (
	guardedByRE = regexp.MustCompile(`//.*\bguarded by (\w+)\b`)
	ownedByRE   = regexp.MustCompile(`//.*\bowned by the (\w+) goroutine\b`)
	callersRE   = regexp.MustCompile(`(?i)//.*\bcallers hold (\w+(?:\.\w+)+)`)
)

// guardedField is one annotated field.
type guardedField struct {
	obj   *types.Var // the field object
	mutex string     // "guarded by" mutex field name, or ""
	owner string     // "owned by" goroutine root function name, or ""
}

func runSyncGuard(pass *Pass) error {
	s := &syncChecker{pass: pass, fields: make(map[*types.Var]*guardedField)}
	s.collectFields()
	if len(s.fields) == 0 {
		return nil
	}
	s.buildOwnerSets()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				s.checkFunc(fd)
			}
		}
	}
	return nil
}

type syncChecker struct {
	pass   *Pass
	fields map[*types.Var]*guardedField
	// owners maps an owner root name to the set of functions whose
	// every call site sits inside the set (the single-goroutine call
	// tree rooted at the owner).
	owners map[string]map[*types.Func]bool
	decls  map[*types.Func]*ast.FuncDecl
}

// collectFields finds the annotated struct fields. Both comment
// positions work: the field's line comment and a doc comment above it.
func (s *syncChecker) collectFields() {
	for _, f := range s.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				text := ""
				if field.Doc != nil {
					text += field.Doc.Text() + "\n"
				}
				if field.Comment != nil {
					text += field.Comment.Text()
				}
				// Comment.Text() strips the // markers; re-add one so the
				// annotation regexps share a single grammar with raw
				// comments.
				text = "// " + strings.ReplaceAll(text, "\n", "\n// ")
				gf := guardedField{}
				if m := guardedByRE.FindStringSubmatch(text); m != nil {
					gf.mutex = m[1]
				}
				if m := ownedByRE.FindStringSubmatch(text); m != nil {
					gf.owner = m[1]
				}
				if gf.mutex == "" && gf.owner == "" {
					continue
				}
				if gf.mutex != "" && !s.structHasMutex(st, gf.mutex) {
					s.pass.Reportf(field.Pos(), "guarded-by annotation names %s, which is not a sync.Mutex or sync.RWMutex field of this struct", gf.mutex)
					continue
				}
				for _, name := range field.Names {
					if obj, ok := s.pass.Info.Defs[name].(*types.Var); ok {
						g := gf
						g.obj = obj
						s.fields[obj] = &g
					}
				}
			}
			return true
		})
	}
}

// structHasMutex reports whether the struct declares a field named
// name whose type is sync.Mutex or sync.RWMutex.
func (s *syncChecker) structHasMutex(st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, fn := range field.Names {
			if fn.Name != name {
				continue
			}
			if obj := s.pass.Info.Defs[fn]; obj != nil && isMutexType(obj.Type()) {
				return true
			}
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// buildOwnerSets computes, for every owner root named by an
// annotation, the greatest set of package functions reachable only
// from the root: a function stays in the set while the root is it, or
// it has call sites and every one sits inside the set — outside any go
// statement or function literal (code that runs on other goroutines).
// Functions referenced as values (method handlers, registry factories)
// leave the set: the reference could be called from anywhere.
func (s *syncChecker) buildOwnerSets() {
	s.decls = make(map[*types.Func]*ast.FuncDecl)
	for _, f := range s.pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, ok := s.pass.Info.Defs[fd.Name].(*types.Func); ok {
					s.decls[fn] = fd
				}
			}
		}
	}

	roots := make(map[string]bool)
	for _, gf := range s.fields {
		if gf.owner != "" {
			roots[gf.owner] = true
		}
	}
	if len(roots) == 0 {
		return
	}

	// callers[f] lists the functions with a direct, same-goroutine call
	// to f; escaped[f] marks calls from inside go/FuncLit and uses of f
	// as a value.
	callers := make(map[*types.Func][]*types.Func)
	escaped := make(map[*types.Func]bool)
	for fn, fd := range s.decls {
		if fd.Body == nil {
			continue
		}
		var walk func(n ast.Node, inOther bool)
		walk = func(n ast.Node, inOther bool) {
			ast.Inspect(n, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.GoStmt:
					// The spawned call and its arguments run elsewhere.
					walk(x.Call, true)
					return false
				case *ast.FuncLit:
					walk(x.Body, true)
					return false
				case *ast.CallExpr:
					if callee := calleeFunc(s.pass.Info, x); callee != nil && s.decls[callee] != nil {
						if inOther {
							escaped[callee] = true
						} else {
							callers[callee] = append(callers[callee], fn)
						}
						// Arguments (and a method's receiver chain) may
						// still reference functions as values.
						for _, arg := range x.Args {
							walk(arg, inOther)
						}
						if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
							walk(sel.X, inOther)
						}
						return false
					}
				case *ast.Ident:
					// A bare reference to a package function (not the
					// callee position, handled above) escapes it.
					if callee, ok := s.pass.Info.Uses[x].(*types.Func); ok && s.decls[callee] != nil {
						escaped[callee] = true
					}
				case *ast.SelectorExpr:
					if callee, ok := s.pass.Info.Uses[x.Sel].(*types.Func); ok && s.decls[callee] != nil {
						escaped[callee] = true
					}
					walk(x.X, inOther)
					return false
				}
				return true
			})
		}
		walk(fd.Body, false)
	}

	s.owners = make(map[string]map[*types.Func]bool)
	for root := range roots {
		set := make(map[*types.Func]bool)
		found := false
		for fn := range s.decls {
			if fn.Name() == root {
				set[fn] = true
				found = true
			}
			// Optimistically include everything; the fixpoint prunes.
			set[fn] = true
		}
		if !found {
			// Report once per file set: the annotation names a function
			// that does not exist.
			for _, gf := range s.fields {
				if gf.owner == root {
					s.pass.Reportf(gf.obj.Pos(), "owned-by annotation names goroutine %q, but no function or method %s exists in this package", root, root)
					gf.owner = ""
				}
			}
			continue
		}
		for changed := true; changed; {
			changed = false
			for fn := range set {
				if fn.Name() == root {
					continue
				}
				ok := !escaped[fn] && len(callers[fn]) > 0
				if ok {
					for _, caller := range callers[fn] {
						if !set[caller] {
							ok = false
							break
						}
					}
				}
				if !ok {
					delete(set, fn)
					changed = true
				}
			}
		}
		s.owners[root] = set
	}
}

// checkFunc checks every annotated-field access in one function.
func (s *syncChecker) checkFunc(fd *ast.FuncDecl) {
	fn, _ := s.pass.Info.Defs[fd.Name].(*types.Func)
	isCtor := s.isConstructor(fd)

	g := cfg.Build(fd.Body)
	flow := cfg.Flow{
		Entry:    s.docHeldFacts(fd),
		Transfer: s.lockTransfer,
	}
	in := g.MustFacts(flow)
	for _, blk := range g.Blocks {
		facts := in[blk.Index].Clone()
		for _, n := range blk.Nodes {
			s.checkNode(n, facts, fn, isCtor, false)
			s.lockTransfer(n, facts)
		}
	}
}

// docHeldFacts seeds the lock set from a "callers hold x.mu" doc
// comment — the checkable form of the *Locked naming convention.
func (s *syncChecker) docHeldFacts(fd *ast.FuncDecl) []string {
	if fd.Doc == nil {
		return nil
	}
	var facts []string
	for _, cm := range fd.Doc.List {
		if m := callersRE.FindStringSubmatch(cm.Text); m != nil {
			facts = append(facts, "lock:"+m[1])
		}
	}
	return facts
}

// lockTransfer gens a fact at <expr>.Lock()/RLock() and kills it at
// <expr>.Unlock()/RUnlock(). Deferred unlocks run at return and kill
// nothing here; calls inside go statements and function literals run
// elsewhere and transfer nothing.
func (s *syncChecker) lockTransfer(n ast.Node, facts cfg.Set) {
	switch n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := ast.Unparen(sel.X)
			if t := s.pass.Info.Types[recv].Type; t == nil || !isMutexType(t) {
				return true
			}
			switch sel.Sel.Name {
			case "Lock", "RLock":
				facts.Add("lock:" + types.ExprString(recv))
			case "Unlock", "RUnlock":
				facts.Remove("lock:" + types.ExprString(recv))
			}
		}
		return true
	})
}

// checkNode checks the field accesses inside one block node. Function
// literal bodies are checked with no lock facts (they may run on
// another goroutine); go/defer calls likewise.
func (s *syncChecker) checkNode(n ast.Node, facts cfg.Set, fn *types.Func, isCtor, inOther bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			s.checkNode(x.Body, cfg.Set{}, fn, isCtor, true)
			return false
		case *ast.GoStmt:
			s.checkNode(x.Call, cfg.Set{}, fn, isCtor, true)
			return false
		case *ast.SelectorExpr:
			s.checkAccess(x, facts, fn, isCtor)
			// keep walking: the base may itself access guarded fields
		}
		return true
	})
}

func (s *syncChecker) checkAccess(sel *ast.SelectorExpr, facts cfg.Set, fn *types.Func, isCtor bool) {
	obj, ok := s.pass.Info.Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	gf, ok := s.fields[obj]
	if !ok {
		return
	}
	if gf.mutex != "" {
		want := "lock:" + types.ExprString(ast.Unparen(sel.X)) + "." + gf.mutex
		if !facts.Has(want) {
			s.pass.Reportf(sel.Pos(), "access to %s (guarded by %s) without %s.%s held",
				types.ExprString(sel), gf.mutex, types.ExprString(ast.Unparen(sel.X)), gf.mutex)
		}
	}
	if gf.owner != "" {
		if isCtor {
			return // construction precedes the goroutine
		}
		if fn == nil || !s.owners[gf.owner][fn] {
			where := "a function literal"
			if fn != nil {
				where = fn.Name()
			}
			s.pass.Reportf(sel.Pos(), "access to %s (owned by the %s goroutine) from %s, which is not in %s's single-goroutine call tree",
				types.ExprString(sel), gf.owner, where, gf.owner)
		}
	}
}

// isConstructor reports whether fd returns the type (or pointer to the
// type) declaring any owned field — construction happens before the
// owning goroutine starts.
func (s *syncChecker) isConstructor(fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, res := range fd.Type.Results.List {
		t := s.pass.Info.Types[res.Type].Type
		if t == nil {
			continue
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if gf, ok := s.fields[st.Field(i)]; ok && gf.owner != "" {
				return true
			}
		}
	}
	return false
}
