package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package of the module (or of a
// testdata tree loaded explicitly through Program.LoadDir).
type Package struct {
	// Path is the package's import path within the module.
	Path string
	// Dir is the absolute directory the files were read from.
	Dir  string
	Fset *token.FileSet
	// Files are the parsed non-test files, with comments.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a loaded module: every non-testdata package under the
// module root, parsed and type-checked against the standard library.
//
// Standard-library imports are resolved by the go/importer "source"
// importer (type-checking GOROOT sources directly), so loading needs no
// network, no GOPATH installation, and no export data — only the Go
// toolchain the repository already builds with.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	RootDir    string

	mu      sync.Mutex
	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import-cycle detection
}

var moduleRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// LoadModule discovers, parses, and type-checks every package of the
// module rooted at (or above) dir. Directories named testdata, hidden
// directories, and _test.go files are skipped — arblint checks the
// shipping tree, and testdata packages hold deliberate violations.
func LoadModule(dir string) (*Program, error) {
	root, modpath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	prog := &Program{
		Fset:       fset,
		ModulePath: modpath,
		RootDir:    root,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		if _, err := prog.LoadDir(d); err != nil && err != errNoGoFiles {
			return nil, err
		}
	}
	return prog, nil
}

// findModule walks upward from dir to the enclosing go.mod and returns
// the module root and module path.
func findModule(dir string) (root, modpath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			m := moduleRE.FindSubmatch(data)
			if m == nil {
				return "", "", fmt.Errorf("%s/go.mod: no module directive", d)
			}
			return d, string(m[1]), nil
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("no go.mod found above %s", abs)
		}
	}
}

// Packages returns the loaded packages sorted by import path.
func (p *Program) Packages() []*Package {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Package, 0, len(p.pkgs))
	for _, pkg := range p.pkgs {
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

var errNoGoFiles = fmt.Errorf("no non-test Go files")

// LoadDir parses and type-checks the single package in dir, loading any
// module-internal dependencies on demand. It is how testdata packages —
// which the module walk deliberately skips — get loaded by the
// analysistest harness.
func (p *Program) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(p.RootDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("%s is outside module %s", dir, p.ModulePath)
	}
	path := p.ModulePath
	if rel != "." {
		path = p.ModulePath + "/" + filepath.ToSlash(rel)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.load(path, abs)
}

// load parses and type-checks one package, assuming p.mu is held.
func (p *Program) load(path, dir string) (*Package, error) {
	if pkg, ok := p.pkgs[path]; ok {
		return pkg, nil
	}
	if p.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	p.loading[path] = true
	defer delete(p.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, errNoGoFiles
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importerFunc(p.importPkg)}
	tpkg, err := conf.Check(path, p.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: p.Fset, Files: files, Types: tpkg, Info: info}
	p.pkgs[path] = pkg
	return pkg, nil
}

// importPkg resolves one import during type checking: module-internal
// paths recurse into the loader; everything else goes to the
// standard-library source importer.
func (p *Program) importPkg(path string) (*types.Package, error) {
	if path == p.ModulePath || strings.HasPrefix(path, p.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, p.ModulePath), "/")
		pkg, err := p.load(path, filepath.Join(p.RootDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return p.std.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// moduleOnce caches the module program across the analyzer tests and
// the clean-tree test: loading type-checks the entire repository plus
// the slice of the standard library it imports, which is worth doing
// once per process, not once per test.
var (
	moduleOnce sync.Once
	moduleProg *Program
	moduleErr  error
)

// ModuleProgram loads (once per process) the module enclosing the
// working directory.
func ModuleProgram() (*Program, error) {
	moduleOnce.Do(func() {
		moduleProg, moduleErr = LoadModule(".")
	})
	return moduleProg, moduleErr
}
