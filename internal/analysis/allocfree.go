package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"

	"busarb/internal/analysis/cfg"
)

// AllocFree statically proves the zero-alloc hot paths: functions in
// the declared hot-path scope must contain no allocating construct.
// The AllocsPerRun benchmarks pin the same property dynamically, but
// only along the inputs they happen to drive; this analyzer makes it a
// property of the whole tree.
//
// The scope is the code the paper's performance claims rest on:
//
//   - internal/bitarb: the whole package (the bit-parallel kernels);
//   - internal/arbd/codec: the whole package (the wire codec's
//     Append/Decode run per frame);
//   - internal/grant: the resolve path (Enqueue/Resolve and their
//     helpers) — constructors and the registry are setup;
//   - internal/topo: the steady-state tree operations — building the
//     tree is setup.
//
// Flagged constructs: make, new, slice/map composite literals,
// &-literals, appends that are not provably reuse-backed, function
// literals (closure allocation), interface boxing at call sites,
// non-constant string concatenation, and conversions that copy to a
// slice or from one to a string. Arguments to panic are exempt — a
// panicking hot path is already lost, and the diagnostic text is worth
// the allocation.
//
// An append is reuse-backed when the slice it grows provably derives
// from a caller-owned parameter (codec.Append's dst) or from a reslice
// of a struct field (`x := t.buf[:0]`, or `t.hops = t.hops[:0]`
// reaching the append) — the amortized-growth idiom whose steady state
// allocates nothing. The proof is a forward must-analysis on the cfg
// graph: assignments propagate or kill the reuse-backed fact, and the
// fact must reach the append along every path.
//
// Deliberate allocations are annotated:
//
//	//arblint:alloc <why>
//
// on a function's doc comment exempts the whole function (a declared
// setup-phase function inside the scope, like a lazily-built oracle);
// on the allocating line (or the line above) it excuses that one
// construct. Like //arblint:allow, an annotation that excuses nothing
// is itself reported, so stale exemptions cannot accumulate.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc: "hot-path functions (bitarb, codec, grant resolve, topo steady state) must not " +
		"allocate; //arblint:alloc annotates deliberate setup-phase allocations",
	AppliesTo: allocFreeApplies,
	Run:       runAllocFree,
}

// allocFreeScope maps package-path suffixes to the function and method
// names in scope; a nil list means the whole package. Packages not
// listed (the analysistest testdata trees) check every function.
var allocFreeScope = []struct {
	suffix string
	funcs  []string
}{
	{"internal/bitarb", nil},
	{"internal/arbd/codec", nil},
	{"internal/grant", []string{
		"Enqueue", "Resolve", "Pending", "Reset",
		"enqueue", "grantWin", "reset", "resolveOracle",
	}},
	{"internal/topo", []string{
		"OnRequest", "OnServiceStart", "Arbitrate", "LastHops",
		"Enqueue", "Resolve", "Pending", "Repasses", "Reset", "checkAgent",
	}},
}

func allocFreeApplies(pkgPath string) bool {
	for _, s := range allocFreeScope {
		if pathHasSuffix(pkgPath, s.suffix) {
			return true
		}
	}
	return false
}

// allocScopeFuncs returns the in-scope function names for a package
// path, or nil meaning every function (whole-package scope and the
// testdata trees).
func allocScopeFuncs(pkgPath string) map[string]bool {
	for _, s := range allocFreeScope {
		if pathHasSuffix(pkgPath, s.suffix) && s.funcs != nil {
			set := make(map[string]bool, len(s.funcs))
			for _, n := range s.funcs {
				set[n] = true
			}
			return set
		}
	}
	return nil
}

var allocAnnRE = regexp.MustCompile(`^//\s*arblint:alloc\b`)

type allocAnn struct {
	pos  token.Position
	used bool
}

func runAllocFree(pass *Pass) error {
	c := &allocChecker{pass: pass, byLine: make(map[string]map[int][]*allocAnn)}
	for _, f := range pass.Files {
		for _, group := range f.Comments {
			for _, cm := range group.List {
				if !allocAnnRE.MatchString(cm.Text) {
					continue
				}
				pos := pass.Fset.Position(cm.Pos())
				ann := &allocAnn{pos: pos}
				c.anns = append(c.anns, ann)
				lines := c.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*allocAnn)
					c.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], ann)
			}
		}
	}

	scope := allocScopeFuncs(pass.Pkg.Path())
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if scope != nil && !scope[fd.Name.Name] {
				continue
			}
			if c.consumeDocAnn(fd) {
				continue // the whole function is declared setup-phase
			}
			c.checkFunc(fd)
		}
	}
	for _, ann := range c.anns {
		if !ann.used {
			pass.diags = append(pass.diags, Diagnostic{
				Pos:      ann.pos,
				Message:  "unused //arblint:alloc comment: no allocating construct on this or the next line",
				Analyzer: pass.Analyzer.Name,
				Kind:     KindUnusedAlloc,
			})
		}
	}
	return nil
}

type allocChecker struct {
	pass   *Pass
	anns   []*allocAnn
	byLine map[string]map[int][]*allocAnn
}

// consumeDocAnn reports whether fd's doc comment carries an
// //arblint:alloc annotation, consuming it.
func (c *allocChecker) consumeDocAnn(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	found := false
	for _, cm := range fd.Doc.List {
		if !allocAnnRE.MatchString(cm.Text) {
			continue
		}
		p := c.pass.Fset.Position(cm.Pos())
		for _, a := range c.byLine[p.Filename][p.Line] {
			if a.pos == p {
				a.used = true
				found = true
			}
		}
	}
	return found
}

// flag reports an allocating construct unless an //arblint:alloc
// annotation on the construct's line or the line above excuses it
// (budget: one construct per annotation, mirroring //arblint:allow).
func (c *allocChecker) flag(pos token.Pos, format string, args ...interface{}) {
	p := c.pass.Fset.Position(pos)
	lines := c.byLine[p.Filename]
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, ann := range lines[line] {
			if !ann.used {
				ann.used = true
				return
			}
		}
	}
	c.pass.Reportf(pos, format, args...)
}

// checkFunc runs the reuse-backed must-analysis over fd's body and
// reports every allocating construct the facts cannot excuse.
func (c *allocChecker) checkFunc(fd *ast.FuncDecl) {
	g := cfg.Build(fd.Body)
	flow := cfg.Flow{
		Entry:    c.entryFacts(fd),
		Transfer: c.transfer,
	}
	in := g.MustFacts(flow)
	for _, blk := range g.Blocks {
		facts := in[blk.Index].Clone()
		for _, n := range blk.Nodes {
			c.checkNode(n, facts)
			c.transfer(n, facts)
		}
	}
}

// entryFacts seeds the reuse-backed set with every slice-typed
// parameter: the caller owns that storage, appends to it are the
// caller's capacity policy (codec.Append's dst contract).
func (c *allocChecker) entryFacts(fd *ast.FuncDecl) []string {
	var facts []string
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				obj := c.pass.Info.Defs[name]
				if obj == nil {
					continue
				}
				if _, ok := obj.Type().Underlying().(*types.Slice); ok {
					facts = append(facts, objFact(obj))
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return facts
}

func objFact(obj types.Object) string {
	return "o" + strconv.Itoa(int(obj.Pos()))
}

func selFact(e ast.Expr) string {
	return "s:" + types.ExprString(e)
}

// transfer tracks the reuse-backed facts through assignments and
// declarations: assigning a reuse-backed value propagates the fact to
// the destination, anything else kills it.
func (c *allocChecker) transfer(n ast.Node, facts cfg.Set) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				c.assign(lhs, s.Rhs[i], facts)
			}
		} else {
			for _, lhs := range s.Lhs {
				c.assign(lhs, nil, facts)
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				var rhs ast.Expr
				if i < len(vs.Values) {
					rhs = vs.Values[i]
				}
				c.assign(name, rhs, facts)
			}
		}
	}
}

func (c *allocChecker) assign(lhs, rhs ast.Expr, facts cfg.Set) {
	var key string
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := c.pass.Info.Defs[l]
		if obj == nil {
			obj = c.pass.Info.Uses[l]
		}
		if obj == nil {
			return
		}
		key = objFact(obj)
	case *ast.SelectorExpr:
		key = selFact(l)
	default:
		return
	}
	if rhs != nil && c.reuseBacked(rhs, facts) {
		facts.Add(key)
	} else {
		facts.Remove(key)
	}
}

// reuseBacked reports whether e provably evaluates to a slice whose
// storage the function reuses: a parameter, a reslice of a struct
// field, a value already proven reuse-backed, or an append-shaped call
// (append itself, or a helper like binary.BigEndian.AppendUint32 that
// takes the slice first and returns it grown).
func (c *allocChecker) reuseBacked(e ast.Expr, facts cfg.Set) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.pass.Info.Uses[e]
		return obj != nil && facts.Has(objFact(obj))
	case *ast.SelectorExpr:
		return facts.Has(selFact(e))
	case *ast.SliceExpr:
		if _, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
			return true // t.buf[:0]: the field's capacity is the reuse
		}
		return c.reuseBacked(e.X, facts)
	case *ast.CallExpr:
		if len(e.Args) == 0 {
			return false
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if _, isBuiltin := c.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				return id.Name == "append" && c.reuseBacked(e.Args[0], facts)
			}
		}
		// Append-shaped helper: slice in, same storage (grown) out.
		if t := c.pass.Info.Types[e].Type; t != nil {
			if _, ok := t.Underlying().(*types.Slice); ok {
				return c.reuseBacked(e.Args[0], facts)
			}
		}
	}
	return false
}

// checkNode reports the allocating constructs syntactically inside one
// block node. Function literals are flagged as a whole (the closure
// allocates) and not descended into; panic arguments are exempt.
func (c *allocChecker) checkNode(n ast.Node, facts cfg.Set) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			c.flag(x.Pos(), "function literal allocates a closure on the hot path")
			return false
		case *ast.CallExpr:
			return c.checkCallAlloc(x, facts)
		case *ast.CompositeLit:
			if t := c.pass.Info.Types[x].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					c.flag(x.Pos(), "slice literal allocates on the hot path")
				case *types.Map:
					c.flag(x.Pos(), "map literal allocates on the hot path")
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					c.flag(x.Pos(), "&-literal escapes to the heap on the hot path")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if tv, ok := c.pass.Info.Types[x]; ok && tv.Value == nil && isStringType(tv.Type) {
					c.flag(x.Pos(), "string concatenation allocates on the hot path")
				}
			}
		}
		return true
	})
}

// checkCallAlloc handles the call forms: builtins, conversions, and
// interface boxing of arguments. It returns false to stop the walk
// below exempt panics.
func (c *allocChecker) checkCallAlloc(call *ast.CallExpr, facts cfg.Set) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := c.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "panic":
				return false // a panicking hot path is already lost
			case "make":
				c.flag(call.Pos(), "make allocates on the hot path")
			case "new":
				c.flag(call.Pos(), "new allocates on the hot path")
			case "append":
				if !c.reuseBacked(call.Args[0], facts) {
					c.flag(call.Pos(), "append to %s is not provably reuse-backed (no parameter or field-reslice reaches it); hot-path appends must reuse capacity",
						types.ExprString(call.Args[0]))
				}
			}
			return true
		}
	}
	// Conversions: to a slice (copies), or slice to string (copies).
	if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && !isNilIdent(call.Args[0]) {
			if _, ok := tv.Type.Underlying().(*types.Slice); ok {
				c.flag(call.Pos(), "conversion to %s allocates a copy on the hot path", types.ExprString(call.Fun))
			} else if isStringType(tv.Type) {
				if at := c.pass.Info.Types[call.Args[0]].Type; at != nil {
					if _, ok := at.Underlying().(*types.Slice); ok {
						c.flag(call.Pos(), "conversion from %s to string allocates a copy on the hot path", at)
					}
				}
			}
		}
		return true
	}
	// Interface boxing: a non-constant concrete argument passed to an
	// interface-typed parameter allocates the interface value.
	sig, ok := c.pass.Info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return true
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i, call.Ellipsis != token.NoPos)
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		tv, ok := c.pass.Info.Types[arg]
		if !ok || tv.Type == nil || tv.Value != nil {
			continue // constants box into read-only statics
		}
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
			continue
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		c.flag(arg.Pos(), "argument %s is boxed into an interface parameter on the hot path", types.ExprString(arg))
	}
	return true
}

// paramTypeAt resolves the type of the i-th argument's parameter,
// unwrapping the variadic tail unless the call spreads a slice.
func paramTypeAt(sig *types.Signature, i int, hasEllipsis bool) types.Type {
	params := sig.Params()
	n := params.Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if hasEllipsis {
			return params.At(n - 1).Type()
		}
		if s, ok := params.At(n - 1).Type().Underlying().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return params.At(i).Type()
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
