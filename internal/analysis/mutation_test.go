package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"busarb/internal/analysis"
)

// TestMutationsTurnTheTreeRed proves the suite actually guards the
// invariants it claims to: re-introducing each class of bug into a
// copy of the shipping tree must produce a finding. This is the
// regression test for the analyzers themselves — if a rewrite of the
// cfg engine or a scope table ever made one of these mutations pass
// silently, TestTreeIsClean would keep passing while the protection
// was gone.
func TestMutationsTurnTheTreeRed(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks three mutated copies of the module")
	}
	prog, err := analysis.ModuleProgram()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	root := prog.RootDir

	cases := []struct {
		name     string
		analyzer *analysis.Analyzer
		file     string // module-relative file to mutate
		pkg      string // module-relative package dir to analyze
		old, new string // textual mutation (old must occur exactly once)
		want     string // substring of the expected diagnostic
	}{
		{
			name:     "deleting a bussim nil-guard",
			analyzer: analysis.NilProbe,
			file:     "internal/bussim/bussim.go",
			pkg:      "internal/bussim",
			old: `	if s.cfg.Observer != nil {
		// Probes may retain events, so the shared snapshot buffer must
		// be copied out (observed runs are not the allocation-free path).
		s.emit(obs.Event{Time: s.sched.Now(), Kind: obs.ArbitrationStart,
			Agents: append([]int(nil), s.arbSnap...)})
	}`,
			new: `	s.emit(obs.Event{Time: s.sched.Now(), Kind: obs.ArbitrationStart,
		Agents: append([]int(nil), s.arbSnap...)})`,
			want: "outside a nil-Observer guard",
		},
		{
			name:     "deleting the serveConn WaitGroup.Done",
			analyzer: analysis.GoroLeak,
			file:     "internal/arbd/binary.go",
			pkg:      "internal/arbd",
			old:      "\tdefer s.wg.Done()\n",
			new:      "",
			want:     "not tied to a shutdown path",
		},
		{
			name:     "adding a stray append in bitarb Vec.Set",
			analyzer: analysis.AllocFree,
			file:     "internal/bitarb/bitarb.go",
			pkg:      "internal/bitarb",
			old:      "func (v *Vec) Set(i int) {\n\tv.check(i)\n",
			new:      "func (v *Vec) Set(i int) {\n\tv.check(i)\n\tv.w = append(v.w, 0)\n",
			want:     "not provably reuse-backed",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tmp := t.TempDir()
			copyModule(t, root, tmp)

			target := filepath.Join(tmp, filepath.FromSlash(tc.file))
			src, err := os.ReadFile(target)
			if err != nil {
				t.Fatal(err)
			}
			if n := strings.Count(string(src), tc.old); n != 1 {
				t.Fatalf("mutation anchor occurs %d times in %s, want exactly 1; the shipping code moved — update the mutation", n, tc.file)
			}
			mutated := strings.Replace(string(src), tc.old, tc.new, 1)
			if err := os.WriteFile(target, []byte(mutated), 0o644); err != nil {
				t.Fatal(err)
			}

			mprog, err := analysis.LoadModule(tmp)
			if err != nil {
				t.Fatalf("loading mutated module: %v", err)
			}
			pkg, err := mprog.LoadDir(filepath.Join(tmp, filepath.FromSlash(tc.pkg)))
			if err != nil {
				t.Fatalf("loading mutated %s: %v", tc.pkg, err)
			}
			diags, err := analysis.RunAnalyzer(tc.analyzer, pkg)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				if strings.Contains(d.Message, tc.want) {
					return // the mutation was caught
				}
			}
			t.Errorf("%s did not catch the mutation: want a diagnostic containing %q, got %d diagnostic(s): %v",
				tc.analyzer.Name, tc.want, len(diags), diags)
		})
	}
}

// copyModule copies the module's non-test Go files and go.mod into
// dst, preserving layout and skipping testdata and hidden directories
// the loader skips anyway.
func copyModule(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != src && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if name != "go.mod" && (!strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go")) {
			return nil
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying module: %v", err)
	}
}
