package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseForAllows builds the minimal Package filterAllows needs (parsed
// files and a FileSet) from in-memory source.
func parseForAllows(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "test/allow", Fset: fset, Files: []*ast.File{f}}
}

func diagAt(pkg *Package, line int, msg string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: "allow.go", Line: line, Column: 1},
		Message:  msg,
		Analyzer: "determinism",
	}
}

// TestAllowSuppressesExactlyOne pins the budget: one comment, one
// suppression — a second diagnostic on the covered line survives.
func TestAllowSuppressesExactlyOne(t *testing.T) {
	pkg := parseForAllows(t, `package p

func f() {
	g() //arblint:allow determinism
}

func g() {}
`)
	diags := []Diagnostic{
		diagAt(pkg, 4, "first finding"),
		diagAt(pkg, 4, "second finding"),
	}
	got, suppressed := filterAllows("determinism", pkg, diags)
	if len(got) != 1 || got[0].Message != "second finding" {
		t.Fatalf("want only the second finding to survive, got %v", got)
	}
	if suppressed != 1 {
		t.Fatalf("suppressed count = %d, want 1", suppressed)
	}
}

// TestAllowCoversNextLine pins the preceding-comment form and that the
// comment is consumed by the first matching line only.
func TestAllowCoversNextLine(t *testing.T) {
	pkg := parseForAllows(t, `package p

func f() {
	//arblint:allow determinism
	g()
	g()
}

func g() {}
`)
	diags := []Diagnostic{diagAt(pkg, 5, "covered"), diagAt(pkg, 6, "not covered")}
	got, suppressed := filterAllows("determinism", pkg, diags)
	if suppressed != 1 {
		t.Fatalf("suppressed count = %d, want 1", suppressed)
	}
	if len(got) != 1 || got[0].Message != "not covered" {
		t.Fatalf("want only line 6 to survive, got %v", got)
	}
}

// TestUnusedAllowReported pins the stale-exemption rule: an allow
// comment with nothing to suppress becomes a finding at the comment.
func TestUnusedAllowReported(t *testing.T) {
	pkg := parseForAllows(t, `package p

//arblint:allow determinism
func f() {}
`)
	got, _ := filterAllows("determinism", pkg, nil)
	if len(got) != 1 {
		t.Fatalf("want one unused-allow finding, got %v", got)
	}
	if !strings.Contains(got[0].Message, "unused //arblint:allow determinism") {
		t.Fatalf("unexpected message %q", got[0].Message)
	}
	if got[0].Pos.Line != 3 {
		t.Fatalf("finding at line %d, want the comment's line 3", got[0].Pos.Line)
	}
}

// TestAllowOtherAnalyzerIgnored pins name scoping: an allow naming a
// different analyzer neither suppresses nor reports here.
func TestAllowOtherAnalyzerIgnored(t *testing.T) {
	pkg := parseForAllows(t, `package p

func f() {
	g() //arblint:allow nilprobe
}

func g() {}
`)
	diags := []Diagnostic{diagAt(pkg, 4, "survives")}
	got, suppressed := filterAllows("determinism", pkg, diags)
	if suppressed != 0 {
		t.Fatalf("suppressed count = %d, want 0", suppressed)
	}
	if len(got) != 1 || got[0].Message != "survives" {
		t.Fatalf("want the finding to survive and no unused report, got %v", got)
	}
}

// TestCheckAllows pins the inapplicable-annotation rules: an allow must
// name a registered analyzer that actually runs in the annotated
// package, and an alloc annotation must sit in allocfree's scope.
func TestCheckAllows(t *testing.T) {
	pkg := parseForAllows(t, `package p

//arblint:allow nosuchanalyzer whatever
func f() {}

//arblint:allow determinism the simulators only
func g() {}

//arblint:allow validatecall runs everywhere, applicable
func h() {}

//arblint:alloc outside the hot-path scope
func i() {}
`)
	// parseForAllows gives the package path "test/allow": determinism
	// and allocfree never run there, validatecall runs everywhere.
	got := CheckAllows(pkg)
	if len(got) != 3 {
		t.Fatalf("want 3 inapplicable-annotation findings, got %v", got)
	}
	for _, d := range got {
		if d.Kind != KindInapplicableAllow {
			t.Errorf("kind %q, want %q: %s", d.Kind, KindInapplicableAllow, d)
		}
	}
	if !strings.Contains(got[0].Message, `unknown analyzer "nosuchanalyzer"`) {
		t.Errorf("unexpected first finding %q", got[0].Message)
	}
	if !strings.Contains(got[1].Message, "inapplicable //arblint:allow determinism") {
		t.Errorf("unexpected second finding %q", got[1].Message)
	}
	if !strings.Contains(got[2].Message, "inapplicable //arblint:alloc") {
		t.Errorf("unexpected third finding %q", got[2].Message)
	}
}

// TestDiagnosticKinds pins the kind labels -json consumers key on.
func TestDiagnosticKinds(t *testing.T) {
	pkg := parseForAllows(t, `package p

//arblint:allow determinism
func f() {}
`)
	got, _ := filterAllows("determinism", pkg, nil)
	if len(got) != 1 || got[0].Kind != KindUnusedAllow {
		t.Fatalf("unused allow kind = %v, want %q", got, KindUnusedAllow)
	}
	p := &Pass{Analyzer: Determinism, Fset: pkg.Fset}
	p.Reportf(pkg.Files[0].Pos(), "x")
	if p.diags[0].Kind != KindFinding {
		t.Fatalf("Reportf kind = %q, want %q", p.diags[0].Kind, KindFinding)
	}
}
