package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseForAllows builds the minimal Package filterAllows needs (parsed
// files and a FileSet) from in-memory source.
func parseForAllows(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "test/allow", Fset: fset, Files: []*ast.File{f}}
}

func diagAt(pkg *Package, line int, msg string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: "allow.go", Line: line, Column: 1},
		Message:  msg,
		Analyzer: "determinism",
	}
}

// TestAllowSuppressesExactlyOne pins the budget: one comment, one
// suppression — a second diagnostic on the covered line survives.
func TestAllowSuppressesExactlyOne(t *testing.T) {
	pkg := parseForAllows(t, `package p

func f() {
	g() //arblint:allow determinism
}

func g() {}
`)
	diags := []Diagnostic{
		diagAt(pkg, 4, "first finding"),
		diagAt(pkg, 4, "second finding"),
	}
	got := filterAllows("determinism", pkg, diags)
	if len(got) != 1 || got[0].Message != "second finding" {
		t.Fatalf("want only the second finding to survive, got %v", got)
	}
}

// TestAllowCoversNextLine pins the preceding-comment form and that the
// comment is consumed by the first matching line only.
func TestAllowCoversNextLine(t *testing.T) {
	pkg := parseForAllows(t, `package p

func f() {
	//arblint:allow determinism
	g()
	g()
}

func g() {}
`)
	diags := []Diagnostic{diagAt(pkg, 5, "covered"), diagAt(pkg, 6, "not covered")}
	got := filterAllows("determinism", pkg, diags)
	if len(got) != 1 || got[0].Message != "not covered" {
		t.Fatalf("want only line 6 to survive, got %v", got)
	}
}

// TestUnusedAllowReported pins the stale-exemption rule: an allow
// comment with nothing to suppress becomes a finding at the comment.
func TestUnusedAllowReported(t *testing.T) {
	pkg := parseForAllows(t, `package p

//arblint:allow determinism
func f() {}
`)
	got := filterAllows("determinism", pkg, nil)
	if len(got) != 1 {
		t.Fatalf("want one unused-allow finding, got %v", got)
	}
	if !strings.Contains(got[0].Message, "unused //arblint:allow determinism") {
		t.Fatalf("unexpected message %q", got[0].Message)
	}
	if got[0].Pos.Line != 3 {
		t.Fatalf("finding at line %d, want the comment's line 3", got[0].Pos.Line)
	}
}

// TestAllowOtherAnalyzerIgnored pins name scoping: an allow naming a
// different analyzer neither suppresses nor reports here.
func TestAllowOtherAnalyzerIgnored(t *testing.T) {
	pkg := parseForAllows(t, `package p

func f() {
	g() //arblint:allow nilprobe
}

func g() {}
`)
	diags := []Diagnostic{diagAt(pkg, 4, "survives")}
	got := filterAllows("determinism", pkg, diags)
	if len(got) != 1 || got[0].Message != "survives" {
		t.Fatalf("want the finding to survive and no unused report, got %v", got)
	}
}
