package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ValidateCall enforces the config-hygiene invariant from PR 2: every
// simulator configuration declares Validate() error, and exported
// Run/New-style entry points must invoke it before reading any config
// field. An entry point that only forwards the config wholesale (like
// the busarb facade's per-simulator wrappers delegating to
// internal Run functions, which validate themselves) is legal: the rule
// is "no field use before Validate", not "Validate appears textually".
//
// The check is a source-order approximation of dominance — positions
// within the function body — which is exact for the early-return
// validate-then-use shape every entry point in this repository uses.
var ValidateCall = &Analyzer{
	Name: "validatecall",
	Doc: "exported Run/New entry points taking a config that declares " +
		"Validate() error must call it before the first config field use",
	Run: runValidateCall,
}

func runValidateCall(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if !strings.HasPrefix(fd.Name.Name, "Run") && !strings.HasPrefix(fd.Name.Name, "New") {
				continue
			}
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					obj, ok := pass.Info.Defs[name].(*types.Var)
					if !ok || !hasValidateMethod(obj.Type()) {
						continue
					}
					checkValidatedBeforeUse(pass, fd, obj)
				}
			}
		}
	}
	return nil
}

// hasValidateMethod reports whether t (or *t) has a Validate() error in
// its method set.
func hasValidateMethod(t types.Type) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			fn := ms.At(i).Obj()
			if fn.Name() != "Validate" {
				continue
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
				continue
			}
			named, ok := sig.Results().At(0).Type().(*types.Named)
			if ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				return true
			}
		}
	}
	return false
}

// checkValidatedBeforeUse reports the first selector use of cfg (a
// field read or a method call other than Validate) that precedes the
// cfg.Validate() call in source order — or every use, if Validate is
// never called.
func checkValidatedBeforeUse(pass *Pass, fd *ast.FuncDecl, cfg *types.Var) {
	validatePos := token.Pos(0)
	type use struct {
		pos  token.Pos
		text string
	}
	var firstUse *use
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || pass.Info.Uses[id] != cfg {
			return true
		}
		if sel.Sel.Name == "Validate" {
			if validatePos == 0 || sel.Pos() < validatePos {
				validatePos = sel.Pos()
			}
			return false
		}
		if firstUse == nil || sel.Pos() < firstUse.pos {
			firstUse = &use{pos: sel.Pos(), text: types.ExprString(sel)}
		}
		return true
	})
	if firstUse == nil {
		return // pure delegation: the config is only forwarded wholesale
	}
	if validatePos == 0 {
		pass.Reportf(firstUse.pos, "%s uses %s but never calls %s.Validate(); validate the configuration before reading it",
			fd.Name.Name, firstUse.text, cfg.Name())
		return
	}
	if firstUse.pos < validatePos {
		pass.Reportf(firstUse.pos, "%s uses %s before %s.Validate() is called; validate the configuration first",
			fd.Name.Name, firstUse.text, cfg.Name())
	}
}
