package analysis

import (
	"go/token"
	"regexp"
	"strconv"
)

// The escape hatch: a comment of the form
//
//	//arblint:allow <analyzer>
//
// suppresses exactly one diagnostic from the named analyzer — the first
// one reported on the comment's own line (trailing-comment form) or on
// the line directly below it (preceding-comment form). An allow comment
// that suppresses nothing is itself reported as a diagnostic, so
// exemptions cannot outlive the code they excuse.
var allowRE = regexp.MustCompile(`^//\s*arblint:allow\s+([A-Za-z0-9_-]+)`)

type allowComment struct {
	pos  token.Position
	used bool
}

// filterAllows applies the //arblint:allow escape hatch for one
// analyzer's diagnostics over one package: suppressed diagnostics are
// dropped (their count is returned for `arblint -stats`) and unused
// allow comments naming this analyzer are appended as diagnostics of
// their own.
func filterAllows(analyzer string, pkg *Package, diags []Diagnostic) ([]Diagnostic, int) {
	// Collect this analyzer's allow comments, keyed by the line they
	// cover. A comment on line L covers line L (when it trails code) and
	// line L+1 (when it stands alone above the offending line); the
	// budget of one suppression is shared across both.
	byLine := make(map[string]map[int][]*allowComment)
	var all []*allowComment
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil || m[1] != analyzer {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ac := &allowComment{pos: pos}
				all = append(all, ac)
				lines := byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*allowComment)
					byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], ac)
				lines[pos.Line+1] = append(lines[pos.Line+1], ac)
			}
		}
	}
	if len(all) == 0 {
		return diags, 0
	}

	// Match diagnostics in position order so "exactly one" is
	// deterministic: the first diagnostic a comment can cover consumes
	// it, later ones on the same line are still reported.
	sortDiagnostics(diags)
	dropped := 0
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, ac := range byLine[d.Pos.Filename][d.Pos.Line] {
			if !ac.used {
				ac.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		} else {
			dropped++
		}
	}
	for _, ac := range all {
		if !ac.used {
			kept = append(kept, Diagnostic{
				Pos:      ac.pos,
				Message:  "unused //arblint:allow " + analyzer + " comment: no " + analyzer + " diagnostic on this or the next line",
				Analyzer: analyzer,
				Kind:     KindUnusedAllow,
			})
		}
	}
	return kept, dropped
}

// CheckAllows closes the inapplicable-annotation gap filterAllows
// cannot see: filterAllows runs per analyzer per package, so an
// //arblint:allow naming a misspelled analyzer — or one whose
// AppliesTo filter skips the annotated package — never reaches any
// filter and would silently suppress nothing forever. The driver (and
// TestTreeIsClean) runs this once per package over the whole comment
// set: every arblint:allow must name a registered analyzer that
// actually runs here, and every arblint:alloc must sit in allocfree's
// hot-path scope.
func CheckAllows(pkg *Package) []Diagnostic {
	byName := make(map[string]*Analyzer, len(Analyzers))
	for _, a := range Analyzers {
		byName[a.Name] = a
	}
	var diags []Diagnostic
	report := func(pos token.Position, analyzer, msg string) {
		diags = append(diags, Diagnostic{
			Pos:      pos,
			Message:  msg,
			Analyzer: analyzer,
			Kind:     KindInapplicableAllow,
		})
	}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				pos := pkg.Fset.Position(c.Pos())
				if m := allowRE.FindStringSubmatch(c.Text); m != nil {
					a, ok := byName[m[1]]
					switch {
					case !ok:
						report(pos, "arblint", "//arblint:allow names unknown analyzer "+strconv.Quote(m[1]))
					case a.AppliesTo != nil && !a.AppliesTo(pkg.Path):
						report(pos, a.Name, "inapplicable //arblint:allow "+a.Name+" comment: "+a.Name+" never runs in package "+pkg.Path)
					}
					continue
				}
				if allocAnnRE.MatchString(c.Text) && !allocFreeApplies(pkg.Path) {
					report(pos, AllocFree.Name, "inapplicable //arblint:alloc comment: "+AllocFree.Name+" never runs in package "+pkg.Path)
				}
			}
		}
	}
	sortDiagnostics(diags)
	return diags
}
