package analysis

import (
	"go/token"
	"regexp"
)

// The escape hatch: a comment of the form
//
//	//arblint:allow <analyzer>
//
// suppresses exactly one diagnostic from the named analyzer — the first
// one reported on the comment's own line (trailing-comment form) or on
// the line directly below it (preceding-comment form). An allow comment
// that suppresses nothing is itself reported as a diagnostic, so
// exemptions cannot outlive the code they excuse.
var allowRE = regexp.MustCompile(`^//\s*arblint:allow\s+([A-Za-z0-9_-]+)`)

type allowComment struct {
	pos  token.Position
	used bool
}

// filterAllows applies the //arblint:allow escape hatch for one
// analyzer's diagnostics over one package: suppressed diagnostics are
// dropped and unused allow comments naming this analyzer are appended
// as diagnostics of their own.
func filterAllows(analyzer string, pkg *Package, diags []Diagnostic) []Diagnostic {
	// Collect this analyzer's allow comments, keyed by the line they
	// cover. A comment on line L covers line L (when it trails code) and
	// line L+1 (when it stands alone above the offending line); the
	// budget of one suppression is shared across both.
	byLine := make(map[string]map[int][]*allowComment)
	var all []*allowComment
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil || m[1] != analyzer {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ac := &allowComment{pos: pos}
				all = append(all, ac)
				lines := byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*allowComment)
					byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], ac)
				lines[pos.Line+1] = append(lines[pos.Line+1], ac)
			}
		}
	}
	if len(all) == 0 {
		return diags
	}

	// Match diagnostics in position order so "exactly one" is
	// deterministic: the first diagnostic a comment can cover consumes
	// it, later ones on the same line are still reported.
	sortDiagnostics(diags)
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, ac := range byLine[d.Pos.Filename][d.Pos.Line] {
			if !ac.used {
				ac.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, ac := range all {
		if !ac.used {
			kept = append(kept, Diagnostic{
				Pos:      ac.pos,
				Message:  "unused //arblint:allow " + analyzer + " comment: no " + analyzer + " diagnostic on this or the next line",
				Analyzer: analyzer,
			})
		}
	}
	return kept
}
