package analysis

import (
	"go/ast"
	"go/types"

	"busarb/internal/analysis/cfg"
)

// GoroLeak requires every goroutine the daemon and its client spawn to
// be tied to a shutdown path. A `go` statement passes if either:
//
//  1. WaitGroup discipline: some wg.Add(...) on the same WaitGroup
//     object dominates the go statement (the cfg dominator query), and
//     the spawned function calls wg.Done() — deferred or not. This is
//     BinaryServer's per-connection and per-acquire shape, and
//     loadgen's worker fan-out.
//
//  2. Close-signaled channel: the spawned function's steady state is
//     driven by a channel receive in a select clause, or by ranging
//     over a channel, where some function in the package close()s that
//     same channel object. This is the shard loop (select on s.done,
//     closed by stop) and the connection writer (range over responses,
//     closed by its spawner). A bare blocking receive does not count:
//     joining is not a shutdown signal — that is the WaitGroup's job.
//
// Anything else needs an //arblint:allow goroleak with a justification
// (busarb/client's readLoop, whose shutdown signal is the connection
// close itself, carries the one legitimate example).
//
// The analyzer binds in internal/arbd, its cluster layer, and the
// public client package — the long-lived processes. Simulators are
// synchronous by design and out of scope.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "every go statement in the daemon and client must be tied to a shutdown " +
		"path: a dominating WaitGroup.Add with Done in the goroutine, or a " +
		"select/range on a channel the package closes",
	AppliesTo: goroLeakApplies,
	Run:       runGoroLeak,
}

func goroLeakApplies(pkgPath string) bool {
	return pathHasSuffix(pkgPath, "internal/arbd") ||
		pathHasSuffix(pkgPath, "internal/arbd/cluster") ||
		pathHasSuffix(pkgPath, "client")
}

func runGoroLeak(pass *Pass) error {
	c := &leakChecker{
		pass:   pass,
		decls:  make(map[*types.Func]*ast.FuncDecl),
		closed: make(map[types.Object]bool),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				c.decls[fn] = fd
			}
			// Record every close(ch) in the package.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "close" {
					return true
				}
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				if obj := baseObject(pass.Info, call.Args[0]); obj != nil {
					c.closed[obj] = true
				}
				return true
			})
		}
	}

	for _, fd := range sortedDecls(c.decls) {
		c.checkUnit(fd.Body)
	}
	return nil
}

type leakChecker struct {
	pass   *Pass
	decls  map[*types.Func]*ast.FuncDecl
	closed map[types.Object]bool
}

// sortedDecls returns the declarations in source order so diagnostics
// are deterministic.
func sortedDecls(decls map[*types.Func]*ast.FuncDecl) []*ast.FuncDecl {
	out := make([]*ast.FuncDecl, 0, len(decls))
	for _, fd := range decls {
		out = append(out, fd)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Pos() > out[j].Pos(); j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// checkUnit checks the go statements at one function body's level.
// Nested function literals are their own units: their go statements
// are checked against their own graphs (a literal's spawner is the
// literal, wherever it runs).
func (c *leakChecker) checkUnit(body *ast.BlockStmt) {
	var gos []*ast.GoStmt
	var lits []*ast.FuncLit
	collectUnit(body, &gos, &lits)
	if len(gos) > 0 {
		g := cfg.Build(body)
		for _, stmt := range gos {
			c.checkGo(g, stmt)
		}
	}
	for _, lit := range lits {
		c.checkUnit(lit.Body)
	}
}

// collectUnit gathers the go statements and function literals at one
// nesting level, stopping at literal boundaries.
func collectUnit(n ast.Node, gos *[]*ast.GoStmt, lits *[]*ast.FuncLit) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			*gos = append(*gos, x)
			// The spawned callee (and its args) belong to this unit's
			// source; a literal spawned here is the goroutine body and is
			// handled by checkGo, but its own nested go statements still
			// need checking.
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				*lits = append(*lits, lit)
			}
			for _, arg := range x.Call.Args {
				collectUnit(arg, gos, lits)
			}
			return false
		case *ast.FuncLit:
			*lits = append(*lits, x)
			return false
		}
		return true
	})
}

func (c *leakChecker) checkGo(g *cfg.Graph, stmt *ast.GoStmt) {
	body := c.spawnedBody(stmt.Call)
	if body != nil {
		if obj := c.doneWaitGroup(body); obj != nil && c.addDominatesGo(g, stmt, obj) {
			return
		}
		if c.receivesClosedChannel(body) {
			return
		}
	}
	c.pass.Reportf(stmt.Pos(), "go statement is not tied to a shutdown path: no dominating WaitGroup.Add with Done in the goroutine, and no select/range on a channel this package closes")
}

// spawnedBody resolves the body of the function the go statement runs:
// a literal's own body, or the declaration of a package function or
// method called directly.
func (c *leakChecker) spawnedBody(call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := calleeFunc(c.pass.Info, call); fn != nil {
		if fd := c.decls[fn]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// doneWaitGroup returns the sync.WaitGroup object on which the spawned
// body calls Done (deferred or not), not counting literals nested in
// the body (they are other goroutines' business).
func (c *leakChecker) doneWaitGroup(body *ast.BlockStmt) types.Object {
	var obj types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if t := c.pass.Info.Types[sel.X].Type; t == nil || !isWaitGroupType(t) {
			return true
		}
		obj = baseObject(c.pass.Info, sel.X)
		return obj == nil
	})
	return obj
}

// addDominatesGo reports whether a wg.Add call on the same WaitGroup
// object dominates the go statement in the spawning function's graph
// (same block counts when the Add precedes the go in source order).
func (c *leakChecker) addDominatesGo(g *cfg.Graph, stmt *ast.GoStmt, wg types.Object) bool {
	goBlock := blockContaining(g, stmt)
	if goBlock == nil {
		return false
	}
	found := false
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			ast.Inspect(n, func(x ast.Node) bool {
				if found {
					return false
				}
				if _, ok := x.(*ast.FuncLit); ok {
					return false
				}
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Add" {
					return true
				}
				if t := c.pass.Info.Types[sel.X].Type; t == nil || !isWaitGroupType(t) {
					return true
				}
				if baseObject(c.pass.Info, sel.X) != wg {
					return true
				}
				if blk == goBlock {
					found = call.Pos() < stmt.Pos()
				} else {
					found = g.Dominates(blk, goBlock)
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}

// blockContaining finds the block whose nodes contain stmt (possibly
// nested inside a compound node).
func blockContaining(g *cfg.Graph, stmt ast.Stmt) *cfg.Block {
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			found := false
			ast.Inspect(n, func(x ast.Node) bool {
				if x == stmt {
					found = true
				}
				return !found
			})
			if found {
				return blk
			}
		}
	}
	return nil
}

// receivesClosedChannel reports whether the body's control is driven
// by a channel the package closes: a select clause receiving from it,
// or a range over it. Bare receives don't count — see the analyzer
// doc.
func (c *leakChecker) receivesClosedChannel(body *ast.BlockStmt) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			for _, cl := range n.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				var recv ast.Expr
				switch comm := cc.Comm.(type) {
				case *ast.ExprStmt:
					recv = receiveOperand(comm.X)
				case *ast.AssignStmt:
					if len(comm.Rhs) == 1 {
						recv = receiveOperand(comm.Rhs[0])
					}
				}
				if recv != nil && c.closed[baseObject(c.pass.Info, recv)] {
					tied = true
				}
			}
		case *ast.RangeStmt:
			if t := c.pass.Info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					if c.closed[baseObject(c.pass.Info, n.X)] {
						tied = true
					}
				}
			}
		}
		return !tied
	})
	return tied
}

// receiveOperand unwraps `<-ch` to ch.
func receiveOperand(e ast.Expr) ast.Expr {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op.String() != "<-" {
		return nil
	}
	return u.X
}

func isWaitGroupType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// baseObject resolves the identity of a channel or WaitGroup
// expression: the variable for an identifier, the field for a
// selector — one object per field across every receiver value, which
// is what ties close(s.done) in stop to <-s.done in loop.
func baseObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}
