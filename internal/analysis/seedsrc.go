package analysis

import (
	"go/ast"
)

// SeedSrc keeps all randomness flowing through the one blessed
// generator, busarb/internal/rng: a seeded xoshiro256** whose stream is
// pinned forever, unlike math/rand's generator, which has changed
// across Go releases. Constructing math/rand (or math/rand/v2)
// generators anywhere else would fork the repository's randomness into
// a second, version-dependent stream, so outside internal/rng it is an
// error.
var SeedSrc = &Analyzer{
	Name: "seedsrc",
	Doc: "math/rand generators (rand.New, rand.NewSource, ...) may only be " +
		"constructed inside busarb/internal/rng; plumb seeds through rng.New",
	AppliesTo: func(path string) bool {
		return !pathHasSuffix(path, "internal/rng")
	},
	Run: runSeedSrc,
}

func runSeedSrc(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			pkg := fn.Pkg().Path()
			if (pkg == "math/rand" || pkg == "math/rand/v2") && randConstructors[fn.Name()] {
				pass.Reportf(call.Pos(), "%s.%s constructs a generator outside busarb/internal/rng; use rng.New(seed) so randomness stays seed-plumbed and version-stable",
					pkg, fn.Name())
			}
			return true
		})
	}
	return nil
}

// Analyzers is the arblint suite, in the order the driver runs it.
var Analyzers = []*Analyzer{Determinism, NilProbe, ValidateCall, SeedSrc, AllocFree, SyncGuard, GoroLeak}
