package cfg

// Dominator computation: the Cooper–Harvey–Kennedy iterative
// algorithm over a reverse-postorder numbering. Small graphs, no
// need for Lengauer–Tarjan.

// computeDominators fills g.idom. Called once by Build.
func (g *Graph) computeDominators() {
	n := len(g.Blocks)
	g.idom = make([]int, n)
	for i := range g.idom {
		g.idom[i] = -1
	}
	if n == 0 {
		return
	}

	// Postorder DFS from the entry; unreachable blocks keep idom -1.
	post := make([]*Block, 0, n)
	seen := make([]bool, n)
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, e := range b.Succs {
			if !seen[e.To.Index] {
				dfs(e.To)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)

	// rpoNum orders blocks so that intersect can walk up.
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range post {
		rpoNum[b.Index] = len(post) - 1 - i
	}

	g.idom[g.Entry.Index] = g.Entry.Index
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = g.idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = g.idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		// Reverse postorder: walk post backwards.
		for i := len(post) - 1; i >= 0; i-- {
			b := post[i]
			if b == g.Entry {
				continue
			}
			newIdom := -1
			for _, e := range b.Preds {
				p := e.From.Index
				if g.idom[p] == -1 {
					continue // unreachable or not yet processed
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && g.idom[b.Index] != newIdom {
				g.idom[b.Index] = newIdom
				changed = true
			}
		}
	}
}

// Idom returns b's immediate dominator, or nil for the entry block and
// for unreachable blocks.
func (g *Graph) Idom(b *Block) *Block {
	i := g.idom[b.Index]
	if i == -1 || i == b.Index {
		return nil
	}
	return g.Blocks[i]
}

// Dominates reports whether a dominates b: every path from the entry
// to b passes through a. A block dominates itself. Unreachable blocks
// are dominated by nothing and dominate nothing (except themselves).
func (g *Graph) Dominates(a, b *Block) bool {
	if a == b {
		return true
	}
	if g.idom[a.Index] == -1 || g.idom[b.Index] == -1 {
		return false
	}
	for i := b.Index; ; {
		next := g.idom[i]
		if next == i {
			return false // reached the entry
		}
		if next == a.Index {
			return true
		}
		i = next
	}
}
