package cfg

import "go/ast"

// Set is a set of dataflow facts, keyed by strings the client
// analyzer chooses (canonical expression text, object positions).
type Set map[string]bool

// Has reports whether the fact is in the set.
func (s Set) Has(k string) bool { return s[k] }

// Add inserts a fact.
func (s Set) Add(k string) { s[k] = true }

// Remove deletes a fact.
func (s Set) Remove(k string) { delete(s, k) }

// Clone returns an independent copy.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// intersectWith removes facts absent from other, reporting whether the
// set changed.
func (s Set) intersectWith(other Set) bool {
	changed := false
	for k := range s {
		if !other[k] {
			delete(s, k)
			changed = true
		}
	}
	return changed
}

// Flow configures a forward must-analysis: a fact holds at a point
// only if it holds along every path reaching it (sets intersect at
// joins).
type Flow struct {
	// Entry facts hold when the function is entered.
	Entry []string
	// Transfer applies one block node's effect to the running set —
	// gen and kill by mutating facts. Nil means facts flow through
	// statements unchanged.
	Transfer func(n ast.Node, facts Set)
	// EdgeFacts returns the facts proven by traversing e — typically
	// derived from e.Cond and e.Branch. Nil means edges prove nothing.
	EdgeFacts func(e *Edge) []string
}

// MustFacts runs the worklist to a fixpoint and returns the facts
// holding at each block's entry, indexed by Block.Index. Unreachable
// blocks get the empty set — the conservative answer, so analyzers
// still check dead code with no assumptions.
//
// Termination: block-entry sets only ever shrink (they are refined by
// intersection), so each block re-enters the worklist finitely often.
func (g *Graph) MustFacts(f Flow) []Set {
	in := make([]Set, len(g.Blocks))
	entry := make(Set, len(f.Entry))
	for _, k := range f.Entry {
		entry.Add(k)
	}
	in[g.Entry.Index] = entry

	work := []*Block{g.Entry}
	queued := make([]bool, len(g.Blocks))
	queued[g.Entry.Index] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		out := in[b.Index].Clone()
		if f.Transfer != nil {
			for _, n := range b.Nodes {
				f.Transfer(n, out)
			}
		}
		for _, e := range b.Succs {
			facts := out
			if f.EdgeFacts != nil {
				if extra := f.EdgeFacts(e); len(extra) > 0 {
					facts = out.Clone()
					for _, k := range extra {
						facts.Add(k)
					}
				}
			}
			t := e.To.Index
			changed := false
			if in[t] == nil {
				in[t] = facts.Clone()
				changed = true
			} else if in[t].intersectWith(facts) {
				changed = true
			}
			if changed && !queued[t] {
				queued[t] = true
				work = append(work, e.To)
			}
		}
	}
	for i := range in {
		if in[i] == nil {
			in[i] = Set{}
		}
	}
	return in
}
