// Package cfg builds intraprocedural control-flow graphs over Go
// function bodies and offers the two facilities the arblint analyzers
// share: dominator queries and a forward must-facts worklist.
//
// The graph is deliberately small. Blocks hold the statements and
// condition expressions that execute straight-line, in source order;
// edges carry the branch condition (and its polarity) when control
// splits on one. That is exactly enough for the three dataflow
// analyzers built on top:
//
//   - nilprobe derives "this probe expression is non-nil" facts from
//     condition edges and intersects them at joins, which is the
//     textbook formulation of the dominance-by-a-guard rule its first
//     version approximated with an ad-hoc statement walker;
//   - allocfree tracks which slice values are provably reuse-backed
//     (derived from a parameter or a field reslice) through
//     assignments, so appends on the hot path can be proven to reuse
//     capacity;
//   - syncguard gens a fact at mu.Lock() and kills it at mu.Unlock(),
//     requiring the fact at every guarded field access;
//   - goroleak asks whether the WaitGroup.Add call dominates the go
//     statement it covers.
//
// The builder is syntactic: it needs no type information, handles
// every statement form including labeled break/continue, goto and
// fallthrough, and keeps unreachable code in the graph (as blocks with
// no predecessors) so analyzers still see it — with the empty fact
// set, the conservative answer.
package cfg

import (
	"go/ast"
	"go/token"
)

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters first. Exit is the single
	// synthetic block every return, panic and fall-off-the-end reaches.
	Entry, Exit *Block
	// Blocks lists every block, indexed by Block.Index. Unreachable
	// blocks (dead code after a return, say) are present with no
	// predecessors.
	Blocks []*Block

	idom []int // immediate dominator per block index; -1 unreachable
}

// Block is a straight-line run of statements and condition
// expressions, in execution order.
type Block struct {
	Index int
	// Nodes holds the block's statements and the condition expressions
	// evaluated in it. Compound statements never appear whole: an if
	// contributes its Init statement and Cond expression here and its
	// branches to other blocks.
	Nodes []ast.Node
	Succs []*Edge
	Preds []*Edge
}

// Edge is one control-flow transfer. When the transfer is one arm of
// a conditional branch, Cond is the controlling expression and Branch
// its polarity: true for the arm taken when Cond holds.
type Edge struct {
	From, To *Block
	Cond     ast.Expr
	Branch   bool
}

// Build constructs the graph of one function body (a *ast.FuncDecl's
// or *ast.FuncLit's Body). Function literals nested inside body are
// not expanded — they execute at another time and get their own
// graphs.
func Build(body *ast.BlockStmt) *Graph {
	b := &builder{
		g:      &Graph{},
		labels: make(map[string]*Block),
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.jump(b.g.Exit)
	b.g.computeDominators()
	return b.g
}

// scope is one enclosing breakable (loop, switch, select) construct.
type scope struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

type builder struct {
	g      *Graph
	cur    *Block // nil after a terminating statement
	scopes []scope
	labels map[string]*Block
	fall   *Block // dangling fallthrough source awaiting the next case
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// current returns the block under construction, starting a fresh
// (unreachable) one when control cannot arrive here — dead code keeps
// a home so analyzers still visit it.
func (b *builder) current() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		blk := b.current()
		blk.Nodes = append(blk.Nodes, n)
	}
}

func (b *builder) edge(from, to *Block, cond ast.Expr, branch bool) {
	e := &Edge{From: from, To: to, Cond: cond, Branch: branch}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// jump ends the current block with an unconditional edge to target.
func (b *builder) jump(to *Block) {
	if b.cur != nil {
		b.edge(b.cur, to, nil, false)
		b.cur = nil
	}
}

func (b *builder) labelBlock(name string) *Block {
	blk, ok := b.labels[name]
	if !ok {
		blk = b.newBlock()
		b.labels[name] = blk
	}
	return blk
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label block is the goto target; falling off the previous
		// statement enters it too.
		target := b.labelBlock(s.Label.Name)
		b.jump(target)
		b.cur = target
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Cond)
		head := b.cur
		join := b.newBlock()
		then := b.newBlock()
		b.edge(head, then, s.Cond, true)
		b.cur = then
		b.stmtList(s.Body.List)
		b.jump(join)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(head, els, s.Cond, false)
			b.cur = els
			b.stmt(s.Else, "")
			b.jump(join)
		} else {
			b.edge(head, join, s.Cond, false)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		head := b.newBlock()
		b.current()
		b.jump(head)
		body := b.newBlock()
		exit := b.newBlock()
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			b.edge(head, body, s.Cond, true)
			b.edge(head, exit, s.Cond, false)
		} else {
			b.edge(head, body, nil, false)
		}
		cont := head
		if s.Post != nil {
			cont = b.newBlock()
			b.cur = cont
			b.stmt(s.Post, "")
			b.jump(head)
		}
		b.scopes = append(b.scopes, scope{label: label, breakTo: exit, continueTo: cont})
		b.cur = body
		b.stmtList(s.Body.List)
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.jump(cont)
		b.cur = exit

	case *ast.RangeStmt:
		head := b.newBlock()
		b.current()
		b.jump(head)
		head.Nodes = append(head.Nodes, s.X)
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(head, body, nil, false)
		b.edge(head, exit, nil, false)
		b.scopes = append(b.scopes, scope{label: label, breakTo: exit, continueTo: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.jump(head)
		b.cur = exit

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body, label, func(blk *Block, c *ast.CaseClause) {
			for _, e := range c.List {
				blk.Nodes = append(blk.Nodes, e)
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Assign)
		b.caseClauses(s.Body, label, func(*Block, *ast.CaseClause) {})

	case *ast.SelectStmt:
		head := b.current()
		b.cur = nil
		exit := b.newBlock()
		b.scopes = append(b.scopes, scope{label: label, breakTo: exit})
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.edge(head, blk, nil, false)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm, "")
			}
			b.stmtList(cc.Body)
			b.jump(exit)
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = exit

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if to := b.findBreak(s.Label); to != nil {
				b.current()
				b.jump(to)
			}
			b.cur = nil
		case token.CONTINUE:
			if to := b.findContinue(s.Label); to != nil {
				b.current()
				b.jump(to)
			}
			b.cur = nil
		case token.GOTO:
			b.current()
			b.jump(b.labelBlock(s.Label.Name))
		case token.FALLTHROUGH:
			b.fall = b.current()
			b.cur = nil
		}

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.jump(b.g.Exit)
		}

	case nil:
		// nothing

	default:
		// Assignments, declarations, sends, inc/dec, go, defer, empty:
		// straight-line statements.
		b.add(s)
	}
}

// caseClauses builds the shared switch shape: every clause is entered
// from the head, fallthrough chains to the next clause, and a missing
// default adds a no-match edge straight to the exit.
func (b *builder) caseClauses(body *ast.BlockStmt, label string, addCase func(*Block, *ast.CaseClause)) {
	head := b.current()
	b.cur = nil
	exit := b.newBlock()
	b.scopes = append(b.scopes, scope{label: label, breakTo: exit})
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
			if cc.List == nil {
				hasDefault = true
			}
		}
	}
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
	}
	for i, cc := range clauses {
		blk := blocks[i]
		b.edge(head, blk, nil, false)
		addCase(blk, cc)
		if b.fall != nil {
			b.edge(b.fall, blk, nil, false)
			b.fall = nil
		}
		b.cur = blk
		b.stmtList(cc.Body)
		b.jump(exit)
	}
	b.fall = nil
	if !hasDefault {
		b.edge(head, exit, nil, false)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = exit
}

func (b *builder) findBreak(label *ast.Ident) *Block {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := b.scopes[i]
		if label == nil || sc.label == label.Name {
			return sc.breakTo
		}
	}
	return nil
}

func (b *builder) findContinue(label *ast.Ident) *Block {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := b.scopes[i]
		if sc.continueTo == nil {
			continue
		}
		if label == nil || sc.label == label.Name {
			return sc.continueTo
		}
	}
	return nil
}

// isPanicCall reports whether e is a direct call of the predeclared
// panic. The check is syntactic (no type info in the builder); a
// shadowed panic would merely make the graph conservative.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
