package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFunc parses src as the body of a function and builds its graph.
// src is the body's statement list, without braces.
func buildFunc(t *testing.T, src string) *Graph {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Build(f.Decls[0].(*ast.FuncDecl).Body)
}

// blockCalling returns the unique block containing a call to the named
// function.
func blockCalling(t *testing.T, g *Graph, name string) *Block {
	t.Helper()
	var found *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			match := false
			ast.Inspect(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						match = true
					}
				}
				return !match
			})
			if match {
				if found != nil && found != b {
					t.Fatalf("call to %s in multiple blocks", name)
				}
				found = b
			}
		}
	}
	if found == nil {
		t.Fatalf("no block calls %s", name)
	}
	return found
}

// identEdgeFacts makes a Flow whose edges prove "<name>" on the true
// arm and "!<name>" on the false arm of an identifier condition.
func identEdgeFacts() Flow {
	return Flow{EdgeFacts: func(e *Edge) []string {
		id, ok := e.Cond.(*ast.Ident)
		if !ok {
			return nil
		}
		if e.Branch {
			return []string{id.Name}
		}
		return []string{"!" + id.Name}
	}}
}

func TestIfJoinDominance(t *testing.T) {
	g := buildFunc(t, `
a()
if c {
	b()
} else {
	d()
}
e()`)
	ba, bb, bd, be := blockCalling(t, g, "a"), blockCalling(t, g, "b"), blockCalling(t, g, "d"), blockCalling(t, g, "e")
	if !g.Dominates(ba, be) {
		t.Error("a's block should dominate e's")
	}
	if g.Dominates(bb, be) || g.Dominates(bd, be) {
		t.Error("neither branch should dominate the join")
	}
	if !g.Dominates(g.Entry, be) {
		t.Error("entry should dominate everything reachable")
	}
	if g.Dominates(bb, bd) || g.Dominates(bd, bb) {
		t.Error("sibling branches should not dominate each other")
	}
}

func TestBranchFactsIntersectAtJoin(t *testing.T) {
	g := buildFunc(t, `
if c {
	b()
} else {
	d()
}
e()`)
	in := g.MustFacts(identEdgeFacts())
	if bb := blockCalling(t, g, "b"); !in[bb.Index].Has("c") {
		t.Error("then-branch should know c")
	}
	if bd := blockCalling(t, g, "d"); !in[bd.Index].Has("!c") {
		t.Error("else-branch should know !c")
	}
	if be := blockCalling(t, g, "e"); in[be.Index].Has("c") || in[be.Index].Has("!c") {
		t.Error("join should know neither: facts intersect")
	}
}

func TestEarlyReturnPromotesFact(t *testing.T) {
	// The false-arm fact reaches everything after a then-branch that
	// returns — the CFG formulation of "if p == nil { return }".
	g := buildFunc(t, `
if c {
	return
}
e()`)
	in := g.MustFacts(identEdgeFacts())
	if be := blockCalling(t, g, "e"); !in[be.Index].Has("!c") {
		t.Error("code after the early return should know !c")
	}
}

func TestPanicTerminatesBranch(t *testing.T) {
	g := buildFunc(t, `
if c {
	panic("no")
}
e()`)
	in := g.MustFacts(identEdgeFacts())
	if be := blockCalling(t, g, "e"); !in[be.Index].Has("!c") {
		t.Error("code after a panicking branch should know !c")
	}
}

func TestLoopFactsSurviveBackedge(t *testing.T) {
	// A fact established before the loop and never killed must hold in
	// the body across iterations; one gen'd only on a branch inside the
	// loop must not leak to the next iteration.
	g := buildFunc(t, `
if p {
} else {
	return
}
for i := 0; i < n; i++ {
	if q {
		b()
	}
	e()
}`)
	in := g.MustFacts(identEdgeFacts())
	be := blockCalling(t, g, "e")
	if !in[be.Index].Has("p") {
		t.Error("pre-loop fact should survive the backedge")
	}
	if in[be.Index].Has("q") {
		t.Error("branch-local fact must not survive to the loop tail")
	}
	if bb := blockCalling(t, g, "b"); !in[bb.Index].Has("q") {
		t.Error("guarded block should know q")
	}
}

// lockFlow gens fact L at lock() and kills it at unlock(): the
// syncguard shape.
func lockFlow() Flow {
	return Flow{
		Transfer: func(n ast.Node, facts Set) {
			ast.Inspect(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						switch id.Name {
						case "lock":
							facts.Add("L")
						case "unlock":
							facts.Remove("L")
						}
					}
				}
				return true
			})
		},
	}
}

func TestTransferGenKillWithinBlock(t *testing.T) {
	// lock(); a(); unlock(); e() is one straight-line block: clients
	// replay the transfer node by node, checking before transferring.
	flow := lockFlow()
	g := buildFunc(t, `
lock()
a()
unlock()
e()`)
	in := g.MustFacts(flow)
	facts := in[g.Entry.Index].Clone()
	held := map[string]bool{}
	for _, n := range g.Entry.Nodes {
		var name string
		ast.Inspect(n, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					name = id.Name
				}
			}
			return true
		})
		if name == "a" || name == "e" {
			held[name] = facts.Has("L")
		}
		flow.Transfer(n, facts)
	}
	if !held["a"] {
		t.Error("L should be held at a(): lock() transferred before it")
	}
	if held["e"] {
		t.Error("L must not be held at e(): unlock() transferred before it")
	}
}

func TestLockHeldAcrossBranch(t *testing.T) {
	flow := lockFlow()
	g := buildFunc(t, `
lock()
if c {
	unlock()
	return
}
e()
unlock()`)
	in := g.MustFacts(flow)
	if be := blockCalling(t, g, "e"); !in[be.Index].Has("L") {
		t.Error("lock should be held at e(): the unlocking path returned")
	}

	g2 := buildFunc(t, `
lock()
if c {
	unlock()
}
e()`)
	in2 := g2.MustFacts(flow)
	if be := blockCalling(t, g2, "e"); in2[be.Index].Has("L") {
		t.Error("lock must not be proven at e(): one path unlocked")
	}
}

func TestLabeledBreakAndContinue(t *testing.T) {
	g := buildFunc(t, `
outer:
for {
	for {
		if c {
			break outer
		}
		if d {
			continue outer
		}
		b()
	}
}
e()`)
	be := blockCalling(t, g, "e")
	if len(be.Preds) == 0 {
		t.Error("e() should be reachable via break outer")
	}
	if !g.Dominates(g.Entry, be) {
		t.Error("entry should dominate the post-loop block")
	}
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	g := buildFunc(t, `
switch x {
case 1:
	a()
	fallthrough
case 2:
	b()
}
e()`)
	ba, bb := blockCalling(t, g, "a"), blockCalling(t, g, "b")
	fell := false
	for _, e := range bb.Preds {
		if e.From == ba {
			fell = true
		}
	}
	if !fell {
		t.Error("fallthrough should add an edge from case 1 to case 2")
	}
	// No default: the head must reach e() directly, so neither case
	// dominates it.
	if be := blockCalling(t, g, "e"); g.Dominates(bb, be) {
		t.Error("case body must not dominate the code after the switch")
	}
}

func TestSelectAndGoto(t *testing.T) {
	g := buildFunc(t, `
for i := 0; i < 3; i++ {
	if c {
		goto done
	}
}
select {
case v := <-ch:
	a(v)
case out <- 1:
	b()
}
done:
e()`)
	be := blockCalling(t, g, "e")
	if len(be.Preds) < 2 {
		t.Errorf("done label should be reached by goto and fallthrough, got %d preds", len(be.Preds))
	}
	ba := blockCalling(t, g, "a")
	if g.Dominates(ba, be) {
		t.Error("one select arm must not dominate the label")
	}
}

func TestUnreachableCode(t *testing.T) {
	g := buildFunc(t, `
if c {
} else {
	return
}
return
e()`)
	be := blockCalling(t, g, "e")
	if g.Dominates(g.Entry, be) {
		t.Error("dead code should not be dominated by the entry")
	}
	in := g.MustFacts(identEdgeFacts())
	if len(in[be.Index]) != 0 {
		t.Error("dead code should carry no facts")
	}
}

func TestExitReachableFromAllReturns(t *testing.T) {
	g := buildFunc(t, `
if c {
	return
}
e()`)
	if len(g.Exit.Preds) < 2 {
		t.Errorf("exit should join the return and the fall-off end, got %d preds", len(g.Exit.Preds))
	}
}
