package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// simPackagePaths are the packages whose runs must be bit-identical for
// a fixed seed: every number in EXPERIMENTS.md comes out of them. The
// determinism and nilprobe analyzers bind only here (plus cmd/ for
// determinism: the CLIs stamp and steer reproductions).
var simPackagePaths = []string{
	"internal/sim",
	"internal/bussim",
	"internal/cyclesim",
	"internal/mp",
	"internal/snoop",
	"internal/membus",
	"internal/contention",
	"internal/core",
	"internal/wiredor",
	// The bit-parallel arbitration kernel every hot path resolves
	// through: a nondeterminism here would skew every protocol at once.
	"internal/bitarb",
	// grant re-hosts the protocols as real-time schedulers; the protocol
	// state machines themselves must stay as deterministic as core's.
	// (internal/arbd is deliberately absent: its shard loops are
	// wall-clock by design — tickers, lease TTLs, client deadlines.)
	"internal/grant",
	// The arbitration-tree layer composes core protocols and grant
	// schedulers into hierarchies; both its faces sit on simulator and
	// daemon hot paths, so it inherits both packages' discipline.
	"internal/topo",
	// The binary wire codec: pure byte-shuffling on the daemon's hot
	// path, so it must stay clock-free and allocation-free like the
	// kernels. (Its parent internal/arbd stays excluded; the suffix
	// match binds the codec package alone.)
	"internal/arbd/codec",
	// The cluster layer's ring must place resources identically on
	// every node with no coordination — nondeterministic placement is
	// split-brain. The wall-clock forward-latency metric carries the
	// package's one //arblint:allow determinism.
	"internal/arbd/cluster",
}

func isSimPackage(path string) bool {
	for _, s := range simPackagePaths {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// randConstructors are math/rand top-level functions that build a
// generator rather than draw from the process-global source. They are
// SeedSrc's concern (randomness must come from busarb/internal/rng), so
// Determinism leaves them alone instead of double-reporting.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Determinism flags the three ways a simulator package silently loses
// run-to-run reproducibility:
//
//   - time.Now: wall-clock reads make output depend on when, not what,
//     was simulated.
//   - math/rand top-level functions (Intn, Float64, Shuffle, ...): they
//     draw from the process-global source, whose state depends on every
//     other draw in the process and on Go's generator version.
//   - range over a map: iteration order is randomized per run. The
//     collect-keys idiom — a loop body that only appends to a slice,
//     which the surrounding code can then sort — is recognized and
//     allowed; anything else must sort first or carry an
//     //arblint:allow determinism comment.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flag time.Now, global math/rand draws, and unsorted map iteration " +
		"in simulator and cmd packages (fixed-seed runs must be bit-identical)",
	AppliesTo: func(path string) bool {
		return isSimPackage(path) || strings.Contains(path, "/cmd/")
	},
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, n)
				if fn == nil {
					return true
				}
				if isPkgFunc(fn, "time", "Now") {
					pass.Reportf(n.Pos(), "time.Now makes output depend on wall-clock time; plumb a deterministic stamp instead")
				}
				if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2") {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !randConstructors[fn.Name()] {
						pass.Reportf(n.Pos(), "%s.%s draws from the process-global random source; use a seeded busarb/internal/rng.Source", pkg.Path(), fn.Name())
					}
				}
			case *ast.RangeStmt:
				if t := pass.Info.Types[n.X].Type; t != nil {
					if _, ok := t.Underlying().(*types.Map); ok && !isCollectKeysLoop(n) {
						pass.Reportf(n.Pos(), "range over map has nondeterministic iteration order; collect the keys and sort them first")
					}
				}
			}
			return true
		})
	}
	return nil
}

// isCollectKeysLoop recognizes the one deterministic use of map
// iteration: a body that is exactly one append onto a slice
// (`keys = append(keys, k)`), leaving ordering to a later sort.
func isCollectKeysLoop(loop *ast.RangeStmt) bool {
	if len(loop.Body.List) != 1 {
		return false
	}
	assign, ok := loop.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return false
	}
	// The collected slice must be the one assigned to.
	return types.ExprString(call.Args[0]) == types.ExprString(assign.Lhs[0])
}
