// Package analysistest is a golden-diagnostic harness for the arblint
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest on
// the repository's own loader (see internal/analysis for why x/tools is
// reimplemented rather than imported).
//
// A testdata package annotates the lines where diagnostics are expected
// with want comments carrying one quoted regular expression per
// expected diagnostic:
//
//	t := time.Now() // want `time.Now`
//	a, b := f(), g() // want `first` `second`
//
// Every diagnostic must match an expectation on its line and every
// expectation must be matched — extra and missing diagnostics both fail
// the test. Diagnostics run through the same //arblint:allow filtering
// as cmd/arblint, so testdata can also pin the escape-hatch semantics
// (a suppressed diagnostic simply has no want comment; an unused allow
// comment wants its own "unused" diagnostic).
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"busarb/internal/analysis"
)

// Run loads the package in dir (relative paths resolve against the test
// binary's working directory, i.e. the package source dir) and checks
// the analyzer's diagnostics against the want comments. The analyzer's
// AppliesTo filter is deliberately ignored: testdata lives under paths
// the filter would skip.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	prog, err := analysis.ModuleProgram()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	pkg, err := prog.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := analysis.RunAnalyzer(a, pkg)
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, pkg)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		if !consumeWant(wants[key], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func consumeWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantRE finds the expectation marker: "want" immediately after a //
// delimiter (so prose like "we want to" never matches), capturing the
// pattern list. The marker may follow other comment text, which is how
// an //arblint:allow line wants its own unused-allow diagnostic.
var wantRE = regexp.MustCompile(`//\s?want\s+(.*)$`)

// collectWants parses the `// want` expectations out of every comment
// in the package, keyed by "filename:line".
func collectWants(t *testing.T, pkg *analysis.Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := parsePatterns(m[1])
				if err != nil {
					t.Fatalf("%s: %v", pos, err)
				}
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, p, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

// parsePatterns splits a want payload into its quoted regexps: a
// whitespace-separated sequence of `...` or "..." tokens.
func parsePatterns(rest string) ([]string, error) {
	rest = strings.TrimSpace(rest)
	var out []string
	for rest != "" {
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated ` in want comment")
			}
			out = append(out, rest[1:1+end])
			rest = strings.TrimSpace(rest[end+2:])
		case '"':
			end := 1
			for end < len(rest) && rest[end] != '"' {
				if rest[end] == '\\' {
					end++
				}
				end++
			}
			if end >= len(rest) {
				return nil, fmt.Errorf(`unterminated " in want comment`)
			}
			s, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad want pattern %s: %v", rest[:end+1], err)
			}
			out = append(out, s)
			rest = strings.TrimSpace(rest[end+1:])
		default:
			return nil, fmt.Errorf("want comment: expected quoted pattern, found %q", rest)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return out, nil
}
