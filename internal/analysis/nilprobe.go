package analysis

import (
	"go/ast"
	"go/types"

	"busarb/internal/analysis/cfg"
)

// NilProbe enforces the observability layer's zero-cost contract
// (internal/obs doc, pinned by the AllocsPerRun tests from PR 1/2): a
// nil Observer must cost nothing on the simulation hot path. Two rules:
//
//  1. Every direct emission P.OnEvent(e), where P is an obs.Probe, must
//     be dominated by a nil check of that same expression — either an
//     enclosing `if P != nil { ... }` or a preceding `if P == nil {
//     return }`.
//
//  2. A call to a probe-emitting helper (a function taking an obs.Event
//     that forwards to a guarded OnEvent, like bussim's (*system).emit)
//     is exempt from rule 1 — the helper guards internally — unless an
//     argument allocates (append, make, new, a slice/map literal, a
//     slice conversion). Building the event costs before the helper's
//     guard runs, so allocating call sites must sit under their own
//     nil-Observer check. This is exactly the pattern around the
//     arbitration-snapshot copy in bussim.beginArbitration.
//
// Dominance is computed on the internal/analysis/cfg control-flow
// graph as a forward must-analysis: a condition edge `P != nil`
// (possibly one conjunct of &&) proves P on its true arm, `P == nil`
// proves P on its false arm, and facts intersect at joins — so a guard
// whose nil branch returns or panics extends its proof to everything
// after, and a guard from only one of two joining paths proves
// nothing. Facts never cross into deferred calls, go statements or
// function literals, which run at other times.
//
// One structural exemption: the body of an OnEvent(obs.Event) method —
// i.e. a Probe implementation, like mp's missProbe or obs.Multi — is
// not checked. A combinator's forwarding target is non-nil by
// construction (it is only installed when an observer is attached), and
// its OnEvent only runs downstream of the simulator's own guard, where
// the zero-cost contract is already paid.
var NilProbe = &Analyzer{
	Name: "nilprobe",
	Doc: "probe emissions (and allocating arguments to emit helpers) must be " +
		"dominated by a nil check, keeping the nil-Observer path allocation-free",
	AppliesTo: isSimPackage,
	Run:       runNilProbe,
}

func runNilProbe(pass *Pass) error {
	w := &probeWalker{pass: pass, emitters: findEmitHelpers(pass)}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil && !isProbeImpl(pass, fd) {
				w.checkBody(fd.Body)
			}
		}
	}
	return nil
}

// isProbeImpl reports whether fd is an OnEvent(obs.Event) method — the
// Probe interface's one method, i.e. a probe implementation or
// combinator, which the analyzer exempts (see the package doc above).
func isProbeImpl(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "OnEvent" {
		return false
	}
	params := fd.Type.Params.List
	if len(params) != 1 {
		return false
	}
	t := pass.Info.Types[params[0].Type].Type
	return t != nil && obsTypeNamed(t, "Event")
}

// findEmitHelpers returns the package's probe-emitting helpers:
// functions with an obs.Event parameter whose body forwards to
// OnEvent. (Whether the forwarding is guarded is rule 1's business —
// the helper body is walked like any other function.)
func findEmitHelpers(pass *Pass) map[*types.Func]bool {
	helpers := make(map[*types.Func]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			hasEventParam := false
			for _, field := range fd.Type.Params.List {
				if t := pass.Info.Types[field.Type].Type; t != nil && obsTypeNamed(t, "Event") {
					hasEventParam = true
				}
			}
			if !hasEventParam {
				continue
			}
			forwards := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && pass.probeReceiver(call) != nil {
					forwards = true
				}
				return !forwards
			})
			if forwards {
				helpers[fn] = true
			}
		}
	}
	return helpers
}

// probeReceiver returns the receiver expression of an OnEvent call on
// an obs.Probe, or nil if the call is anything else.
func (p *Pass) probeReceiver(call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "OnEvent" {
		return nil
	}
	if t := p.Info.Types[sel.X].Type; t != nil && obsTypeNamed(t, "Probe") {
		return sel.X
	}
	return nil
}

// probeWalker checks one package's emissions against the guard facts
// the cfg must-analysis proves. Guard facts are keyed by the probe
// expression's canonical source text.
type probeWalker struct {
	pass     *Pass
	emitters map[*types.Func]bool
}

// checkBody builds the body's control-flow graph, runs the nil-guard
// must-analysis, and checks every emission under the facts proven at
// its program point. Nested function literals start over with their
// own graphs and no inherited facts.
func (w *probeWalker) checkBody(body *ast.BlockStmt) {
	g := cfg.Build(body)
	in := g.MustFacts(cfg.Flow{EdgeFacts: w.edgeFacts})
	for _, blk := range g.Blocks {
		facts := in[blk.Index]
		for _, n := range blk.Nodes {
			w.checkNode(n, facts)
		}
	}
}

// edgeFacts turns a branch condition into proven-non-nil guard facts:
// `P != nil` (alone or among && conjuncts) proves P on the true arm,
// a sole `P == nil` proves P on the false arm.
func (w *probeWalker) edgeFacts(e *cfg.Edge) []string {
	if e.Cond == nil {
		return nil
	}
	nonNil, isNil := w.splitNilCond(e.Cond)
	if e.Branch {
		return nonNil
	}
	return isNil
}

// checkNode checks the emissions syntactically inside one block node.
// The calls inside go and defer statements run at another time, when
// the guards may no longer hold, so they are checked with no facts —
// as are function literal bodies, via their own graphs.
func (w *probeWalker) checkNode(n ast.Node, facts cfg.Set) {
	switch s := n.(type) {
	case *ast.GoStmt:
		w.checkExpr(s.Call, cfg.Set{})
		return
	case *ast.DeferStmt:
		w.checkExpr(s.Call, cfg.Set{})
		return
	}
	w.checkExpr(n, facts)
}

func (w *probeWalker) checkExpr(n ast.Node, facts cfg.Set) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			w.checkBody(x.Body)
			return false
		case *ast.CallExpr:
			w.checkCall(x, facts)
		}
		return true
	})
}

func (w *probeWalker) checkCall(call *ast.CallExpr, facts cfg.Set) {
	if recv := w.pass.probeReceiver(call); recv != nil {
		if !facts.Has(types.ExprString(recv)) {
			w.pass.Reportf(call.Pos(), "%s.OnEvent is not dominated by a nil check of %s; a nil Observer must cost nothing (internal/obs zero-cost contract)",
				types.ExprString(recv), types.ExprString(recv))
		}
		return
	}
	if fn := calleeFunc(w.pass.Info, call); fn != nil && w.emitters[fn] {
		if len(facts) == 0 && hasAllocatingArg(w.pass.Info, call) {
			w.pass.Reportf(call.Pos(), "allocating argument to probe-emitting helper %s outside a nil-Observer guard; build the event only when a probe is attached",
				fn.Name())
		}
	}
}

// splitNilCond decomposes an if condition into probe-typed expressions
// proven non-nil when it holds (`P != nil`, possibly among &&
// conjuncts) and proven nil (`P == nil`, sole condition).
func (w *probeWalker) splitNilCond(cond ast.Expr) (nonNil, isNil []string) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "&&":
			l1, _ := w.splitNilCond(e.X)
			l2, _ := w.splitNilCond(e.Y)
			return append(l1, l2...), nil
		case "!=", "==":
			probe := e.X
			if isNilIdent(e.X) {
				probe = e.Y
			} else if !isNilIdent(e.Y) {
				return nil, nil
			}
			if t := w.pass.Info.Types[probe].Type; t == nil || !obsTypeNamed(t, "Probe") {
				return nil, nil
			}
			if e.Op.String() == "!=" {
				return []string{types.ExprString(probe)}, nil
			}
			return nil, []string{types.ExprString(probe)}
		}
	}
	return nil, nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// hasAllocatingArg reports whether any argument expression performs a
// heap allocation: append/make/new, a composite literal with slice,
// map, or pointer-yielding form, or a conversion to a slice type.
func hasAllocatingArg(info *types.Info, call *ast.CallExpr) bool {
	alloc := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if alloc {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						switch id.Name {
						case "append", "make", "new":
							alloc = true
						}
					}
				}
				// Conversions to slice types ([]byte(s), []int(nil))
				// allocate when the operand is non-trivial; flagging the
				// conversion form itself keeps the rule syntactic.
				if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
					if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice && !isNilIdent(n.Args[0]) {
						alloc = true
					}
				}
			case *ast.CompositeLit:
				if t := info.Types[n].Type; t != nil {
					switch t.Underlying().(type) {
					case *types.Slice, *types.Map:
						alloc = true
					}
				}
			case *ast.UnaryExpr:
				if n.Op.String() == "&" {
					alloc = true
				}
			}
			return !alloc
		})
		if alloc {
			return true
		}
	}
	return false
}
