package analysis

import (
	"go/ast"
	"go/types"
)

// NilProbe enforces the observability layer's zero-cost contract
// (internal/obs doc, pinned by the AllocsPerRun tests from PR 1/2): a
// nil Observer must cost nothing on the simulation hot path. Two rules:
//
//  1. Every direct emission P.OnEvent(e), where P is an obs.Probe, must
//     be dominated by a nil check of that same expression — either an
//     enclosing `if P != nil { ... }` or a preceding `if P == nil {
//     return }`.
//
//  2. A call to a probe-emitting helper (a function taking an obs.Event
//     that forwards to a guarded OnEvent, like bussim's (*system).emit)
//     is exempt from rule 1 — the helper guards internally — unless an
//     argument allocates (append, make, new, a slice/map literal, a
//     slice conversion). Building the event costs before the helper's
//     guard runs, so allocating call sites must sit under their own
//     nil-Observer check. This is exactly the pattern around the
//     arbitration-snapshot copy in bussim.beginArbitration.
//
// Dominance is tracked syntactically per function: guards do not
// survive into deferred calls or function literals, which run at other
// times.
//
// One structural exemption: the body of an OnEvent(obs.Event) method —
// i.e. a Probe implementation, like mp's missProbe or obs.Multi — is
// not checked. A combinator's forwarding target is non-nil by
// construction (it is only installed when an observer is attached), and
// its OnEvent only runs downstream of the simulator's own guard, where
// the zero-cost contract is already paid.
var NilProbe = &Analyzer{
	Name: "nilprobe",
	Doc: "probe emissions (and allocating arguments to emit helpers) must be " +
		"dominated by a nil check, keeping the nil-Observer path allocation-free",
	AppliesTo: isSimPackage,
	Run:       runNilProbe,
}

func runNilProbe(pass *Pass) error {
	w := &probeWalker{pass: pass, emitters: findEmitHelpers(pass)}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil && !isProbeImpl(pass, fd) {
				w.stmts(fd.Body.List, nil)
			}
		}
	}
	return nil
}

// isProbeImpl reports whether fd is an OnEvent(obs.Event) method — the
// Probe interface's one method, i.e. a probe implementation or
// combinator, which the analyzer exempts (see the package doc above).
func isProbeImpl(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "OnEvent" {
		return false
	}
	params := fd.Type.Params.List
	if len(params) != 1 {
		return false
	}
	t := pass.Info.Types[params[0].Type].Type
	return t != nil && obsTypeNamed(t, "Event")
}

// findEmitHelpers returns the package's probe-emitting helpers:
// functions with an obs.Event parameter whose body forwards to
// OnEvent. (Whether the forwarding is guarded is rule 1's business —
// the helper body is walked like any other function.)
func findEmitHelpers(pass *Pass) map[*types.Func]bool {
	helpers := make(map[*types.Func]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			hasEventParam := false
			for _, field := range fd.Type.Params.List {
				if t := pass.Info.Types[field.Type].Type; t != nil && obsTypeNamed(t, "Event") {
					hasEventParam = true
				}
			}
			if !hasEventParam {
				continue
			}
			forwards := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && pass.probeReceiver(call) != nil {
					forwards = true
				}
				return !forwards
			})
			if forwards {
				helpers[fn] = true
			}
		}
	}
	return helpers
}

// probeReceiver returns the receiver expression of an OnEvent call on
// an obs.Probe, or nil if the call is anything else.
func (p *Pass) probeReceiver(call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "OnEvent" {
		return nil
	}
	if t := p.Info.Types[sel.X].Type; t != nil && obsTypeNamed(t, "Probe") {
		return sel.X
	}
	return nil
}

// probeWalker walks a function body carrying the set of probe-typed
// expressions currently proven non-nil (by their canonical source
// text).
type probeWalker struct {
	pass     *Pass
	emitters map[*types.Func]bool
}

type guardSet map[string]bool

func (g guardSet) with(names []string) guardSet {
	if len(names) == 0 {
		return g
	}
	out := make(guardSet, len(g)+len(names))
	for k := range g {
		out[k] = true
	}
	for _, n := range names {
		out[n] = true
	}
	return out
}

// stmts walks a statement list in order, returning the guard set in
// force after it (early-return nil checks extend the set for the
// statements that follow).
func (w *probeWalker) stmts(list []ast.Stmt, g guardSet) guardSet {
	for _, s := range list {
		g = w.stmt(s, g)
	}
	return g
}

func (w *probeWalker) stmt(s ast.Stmt, g guardSet) guardSet {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, g)
		}
		w.exprs(g, s.Cond)
		nonNil, isNil := w.splitNilCond(s.Cond)
		w.stmts(s.Body.List, g.with(nonNil))
		if s.Else != nil {
			// `if P == nil { ... } else { ... }`: the else branch has P.
			w.stmt(s.Else, g.with(isNil))
		}
		// `if P == nil { return }` proves P for everything after.
		if len(isNil) > 0 && terminates(s.Body) {
			g = g.with(isNil)
		}
	case *ast.BlockStmt:
		g = w.stmts(s.List, g)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, g)
		}
		w.exprs(g, s.Cond)
		if s.Post != nil {
			w.stmt(s.Post, g)
		}
		w.stmts(s.Body.List, g)
	case *ast.RangeStmt:
		w.exprs(g, s.X)
		w.stmts(s.Body.List, g)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, g)
		}
		w.exprs(g, s.Tag)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.exprs(g, cc.List...)
				w.stmts(cc.Body, g)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, g)
		}
		w.stmt(s.Assign, g)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, g)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm, g)
				}
				w.stmts(cc.Body, g)
			}
		}
	case *ast.LabeledStmt:
		g = w.stmt(s.Stmt, g)
	case *ast.ExprStmt:
		w.exprs(g, s.X)
	case *ast.AssignStmt:
		w.exprs(g, s.Rhs...)
		w.exprs(g, s.Lhs...)
	case *ast.ReturnStmt:
		w.exprs(g, s.Results...)
	case *ast.SendStmt:
		w.exprs(g, s.Chan, s.Value)
	case *ast.IncDecStmt:
		w.exprs(g, s.X)
	case *ast.GoStmt:
		// The call runs at another time; its guards may no longer hold.
		w.exprs(nil, s.Call)
	case *ast.DeferStmt:
		w.exprs(nil, s.Call)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.exprs(g, vs.Values...)
				}
			}
		}
	}
	return g
}

// exprs checks every emission reachable from the given expressions
// under the guard set g. Function literals start over with no guards.
func (w *probeWalker) exprs(g guardSet, exprs ...ast.Expr) {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				w.stmts(n.Body.List, nil)
				return false
			case *ast.CallExpr:
				w.checkCall(n, g)
			}
			return true
		})
	}
}

func (w *probeWalker) checkCall(call *ast.CallExpr, g guardSet) {
	if recv := w.pass.probeReceiver(call); recv != nil {
		if !g[types.ExprString(recv)] {
			w.pass.Reportf(call.Pos(), "%s.OnEvent is not dominated by a nil check of %s; a nil Observer must cost nothing (internal/obs zero-cost contract)",
				types.ExprString(recv), types.ExprString(recv))
		}
		return
	}
	if fn := calleeFunc(w.pass.Info, call); fn != nil && w.emitters[fn] {
		if len(g) == 0 && hasAllocatingArg(w.pass.Info, call) {
			w.pass.Reportf(call.Pos(), "allocating argument to probe-emitting helper %s outside a nil-Observer guard; build the event only when a probe is attached",
				fn.Name())
		}
	}
}

// splitNilCond decomposes an if condition into probe-typed expressions
// proven non-nil when it holds (`P != nil`, possibly among &&
// conjuncts) and proven nil (`P == nil`, sole condition).
func (w *probeWalker) splitNilCond(cond ast.Expr) (nonNil, isNil []string) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "&&":
			l1, _ := w.splitNilCond(e.X)
			l2, _ := w.splitNilCond(e.Y)
			return append(l1, l2...), nil
		case "!=", "==":
			probe := e.X
			if isNilIdent(e.X) {
				probe = e.Y
			} else if !isNilIdent(e.Y) {
				return nil, nil
			}
			if t := w.pass.Info.Types[probe].Type; t == nil || !obsTypeNamed(t, "Probe") {
				return nil, nil
			}
			if e.Op.String() == "!=" {
				return []string{types.ExprString(probe)}, nil
			}
			return nil, []string{types.ExprString(probe)}
		}
	}
	return nil, nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether a block always transfers control out
// (return, panic, or a loop/branch escape as its last statement).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// hasAllocatingArg reports whether any argument expression performs a
// heap allocation: append/make/new, a composite literal with slice,
// map, or pointer-yielding form, or a conversion to a slice type.
func hasAllocatingArg(info *types.Info, call *ast.CallExpr) bool {
	alloc := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if alloc {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						switch id.Name {
						case "append", "make", "new":
							alloc = true
						}
					}
				}
				// Conversions to slice types ([]byte(s), []int(nil))
				// allocate when the operand is non-trivial; flagging the
				// conversion form itself keeps the rule syntactic.
				if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
					if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice && !isNilIdent(n.Args[0]) {
						alloc = true
					}
				}
			case *ast.CompositeLit:
				if t := info.Types[n].Type; t != nil {
					switch t.Underlying().(type) {
					case *types.Slice, *types.Map:
						alloc = true
					}
				}
			case *ast.UnaryExpr:
				if n.Op.String() == "&" {
					alloc = true
				}
			}
			return !alloc
		})
		if alloc {
			return true
		}
	}
	return false
}
