// Package seedsrc is golden testdata for the seedsrc analyzer.
package seedsrc

import (
	"math/rand"

	"busarb/internal/rng"
)

// fresh constructs a math/rand generator directly: two findings on one
// line, one per constructor.
func fresh(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `math/rand.New constructs a generator` `math/rand.NewSource constructs a generator`
}

// blessed is the sanctioned path: the repository's pinned xoshiro256**
// generator, seed-plumbed.
func blessed(seed uint64) *rng.Source {
	return rng.New(seed)
}

// draws on an already-constructed *rand.Rand are not seedsrc's concern
// (and are legal outside simulator packages, where determinism does not
// bind).
func draw(r *rand.Rand) int {
	return r.Intn(6)
}

// allowed shows the escape hatch.
func allowed(seed int64) rand.Source {
	return rand.NewSource(seed) //arblint:allow seedsrc
}

// An exemption that excuses nothing reports itself.
//
//arblint:allow seedsrc // want `unused //arblint:allow seedsrc comment`
func nothingToAllow() int {
	return 7
}
