// Package syncguard is golden testdata for the syncguard analyzer:
// the guarded-by mutex discipline, the owned-by single-goroutine
// discipline, and the annotation-validation diagnostics.
package syncguard

import "sync"

type server struct {
	mu    sync.Mutex
	conns map[int]bool // guarded by mu
	n     int          // guarded by mu
}

// locked is the legal shape: Lock gens the fact, the accesses sit
// inside it.
func (s *server) locked() {
	s.mu.Lock()
	s.conns[1] = true
	s.n++
	s.mu.Unlock()
}

// deferred: a deferred Unlock runs on the way out and kills nothing
// along the body.
func (s *server) deferred() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// unlocked is the canonical violation.
func (s *server) unlocked() {
	s.conns[2] = true // want `access to s.conns \(guarded by mu\) without s.mu held`
}

// afterUnlock: the fact dies at the explicit Unlock.
func (s *server) afterUnlock() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.n++ // want `access to s.n \(guarded by mu\) without s.mu held`
}

// branchJoin: a lock taken on only one arm does not survive the join.
func (s *server) branchJoin(c bool) {
	if c {
		s.mu.Lock()
	}
	s.n++ // want `access to s.n \(guarded by mu\) without s.mu held`
	if c {
		s.mu.Unlock()
	}
}

// addLocked shows the checkable *Locked convention: the doc comment
// seeds the fact. Callers hold s.mu.
func (s *server) addLocked(id int) {
	s.conns[id] = true
}

// literalEscapes: a function literal may run on another goroutine, so
// the spawner's lock fact does not transfer into it.
func (s *server) literalEscapes() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() {
		s.n++ // want `access to s.n \(guarded by mu\) without s.mu held`
	}
}

// reader uses an RWMutex guard: RLock confers the fact too.
type reader struct {
	rw sync.RWMutex
	m  map[string]int // guarded by rw
}

func (r *reader) get(k string) int {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return r.m[k]
}

// loop is single-goroutine state: the owned-by discipline.
type loop struct {
	state int // owned by the run goroutine
}

// run is the owning root.
func (l *loop) run() {
	l.state++
	l.step()
}

// step is called only from run, so it is inside the single-goroutine
// call tree.
func (l *loop) step() {
	l.state++
}

// outside has no path from run.
func (l *loop) outside() {
	l.state++ // want `access to l.state \(owned by the run goroutine\) from outside`
}

// spawned is called from run, but only inside a go statement — that
// call site runs on another goroutine and confers no ownership.
func (l *loop) spawned() {
	l.state++ // want `access to l.state \(owned by the run goroutine\) from spawned`
}

func (l *loop) fork() {
	go l.spawned()
}

// newLoop is a constructor: it returns the owning struct, so it runs
// before the goroutine exists.
func newLoop() *loop {
	l := &loop{}
	l.state = 1
	return l
}

// Misspelled annotations are diagnostics themselves.
type badMutex struct {
	lk   sync.Mutex
	data int // guarded by mutex // want `guarded-by annotation names mutex, which is not a sync.Mutex`
}

type badOwner struct {
	v int // owned by the ghost goroutine // want `owned-by annotation names goroutine "ghost"`
}

// The escape hatch: a justified unguarded read, and a stale allow
// reporting itself.
func (s *server) allowEscape() int {
	//arblint:allow syncguard racy stats read, documented at the caller
	return s.n
}

//arblint:allow syncguard // want `unused //arblint:allow syncguard comment`
