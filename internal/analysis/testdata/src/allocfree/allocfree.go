// Package allocfree is golden testdata for the allocfree analyzer.
// The package path is outside the real hot-path scope table, so every
// function here is treated as a hot path; each case pins one construct
// rule, one reuse-backed proof shape, or the //arblint:alloc grammar.
package allocfree

type track struct {
	buf  []byte
	hops []int
	n    int
}

// appendToParam is the codec dst contract: the caller owns a
// parameter slice's storage, so growing it is the caller's capacity
// policy, not an allocation of ours.
func appendToParam(dst []byte, v byte) []byte {
	dst = append(dst, v)
	return dst
}

// resliceField is the amortized-growth idiom: t.buf[:0] reuses the
// field's capacity, and the fact follows the value through locals.
func (t *track) resliceField(v byte) {
	b := t.buf[:0]
	b = append(b, v)
	t.buf = b
}

// fieldAppendAfterReslice: the reslice fact reaches the field append
// directly, with no local in between.
func (t *track) fieldAppendAfterReslice(v int) {
	t.hops = t.hops[:0]
	t.hops = append(t.hops, v)
}

// appendShapedHelper: a call that takes the slice first and returns a
// slice keeps the storage reuse-backed (binary.AppendUvarint shape).
func appendShapedHelper(dst []byte) []byte {
	dst = appendToParam(dst, 7)
	dst = append(dst, 8)
	return dst
}

// bareFieldAppend has no reaching reslice: this is unbounded growth
// on every call, not steady-state reuse.
func (t *track) bareFieldAppend(v int) {
	t.hops = append(t.hops, v) // want `append to t.hops is not provably reuse-backed`
}

// branchLoses: the reuse fact must hold on every path into the
// append, and the nil arm kills it at the join.
func (t *track) branchLoses(v byte, grow bool) {
	var b []byte
	if grow {
		b = t.buf[:0]
	} else {
		b = nil
	}
	b = append(b, v) // want `append to b is not provably reuse-backed`
	t.buf = b
}

// builtins that always allocate.
func makes(n int) []int {
	return make([]int, n) // want `make allocates on the hot path`
}

func news() *track {
	return new(track) // want `new allocates on the hot path`
}

// literal forms.
func literals() {
	_ = []int{1, 2}    // want `slice literal allocates on the hot path`
	_ = map[int]bool{} // want `map literal allocates on the hot path`
	_ = &track{}       // want `&-literal escapes to the heap on the hot path`
	var arr [2]int     // array: stack storage, legal
	_ = arr
}

// closure allocates the captured environment.
func closure() func() int {
	n := 0
	return func() int { // want `function literal allocates a closure on the hot path`
		n++
		return n
	}
}

// boxing: a non-constant concrete value passed to an interface
// parameter allocates the interface; constants box into read-only
// statics and are legal.
func box(v int, sink func(interface{})) {
	sink(v) // want `argument v is boxed into an interface parameter on the hot path`
	sink(3)
}

// concat: non-constant string concatenation allocates; constant
// folding does not.
func concat(a, b string) string {
	_ = "a" + "b"
	return a + b // want `string concatenation allocates on the hot path`
}

// conversions that copy.
func convert(s string, b []byte) {
	_ = []byte(s) // want `conversion to \[\]byte allocates a copy on the hot path`
	_ = string(b) // want `conversion from \[\]byte to string allocates a copy on the hot path`
}

// panic arguments are exempt: a panicking hot path is already lost.
func exemptPanic(i int, name string) {
	if i < 0 {
		panic("allocfree: bad index for " + name)
	}
}

// setup is a declared setup-phase function: the doc annotation exempts
// the whole body.
//
//arblint:alloc lazily-built table, runs once
func setup() []int {
	return make([]int, 8)
}

// lineExcused excuses exactly one construct with a line annotation.
func lineExcused() []byte {
	//arblint:alloc amortized growth: steady state reuses the buffer
	b := make([]byte, 4)
	return b
}

// trailingExcused puts the annotation on the construct's own line.
func trailingExcused() map[int]int {
	return map[int]int{} //arblint:alloc one-time index build
}

// An annotation that excuses nothing reports itself:
func stale(dst []byte) []byte {
	//arblint:alloc nothing allocates here // want `unused //arblint:alloc comment`
	return append(dst, 1)
}

// The generic escape hatch works too, and reports itself when unused.
func allowed() *track {
	return new(track) //arblint:allow allocfree measured: escape analysis keeps this on the stack
}

//arblint:allow allocfree // want `unused //arblint:allow allocfree comment`
