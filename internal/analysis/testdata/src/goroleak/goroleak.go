// Package goroleak is golden testdata for the goroleak analyzer: a go
// statement must be tied to a shutdown path by WaitGroup discipline or
// by a close-signaled channel.
package goroleak

import "sync"

type server struct {
	wg   sync.WaitGroup
	done chan struct{}
	work chan int
}

// waitGrouped: the Add dominates the go statement and the spawned
// literal calls Done.
func (s *server) waitGrouped() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
	}()
}

// spawnWorker ties a declared method the same way: the Done lives in
// the method body.
func (s *server) spawnWorker() {
	s.wg.Add(1)
	go s.worker()
}

func (s *server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case v := <-s.work:
			_ = v
		}
	}
}

// closeSignaled: the goroutine selects on a channel this package
// closes (stop's close(s.done)).
func (s *server) closeSignaled() {
	go func() {
		for {
			select {
			case <-s.done:
				return
			case v := <-s.work:
				_ = v
			}
		}
	}()
}

func (s *server) stop() { close(s.done) }

// ranged: ranging over a channel the package closes is the writer
// loop's shape.
func (s *server) ranged() {
	go func() {
		for v := range s.work {
			_ = v
		}
	}()
}

func (s *server) finish() { close(s.work) }

// bareReceive: a blocking receive is joining, not shutdown — even on a
// channel the package closes, it does not tie the goroutine.
func (s *server) bareReceive() {
	go func() { // want `go statement is not tied to a shutdown path`
		<-s.work
	}()
}

// addNotDominating: an Add on one branch does not prove the pairing.
func (s *server) addNotDominating(c bool) {
	if c {
		s.wg.Add(1)
	}
	go func() { // want `go statement is not tied to a shutdown path`
		defer s.wg.Done()
	}()
}

// wrongGroup: Add and Done must hit the same WaitGroup object.
func (s *server) wrongGroup(other *sync.WaitGroup) {
	s.wg.Add(1)
	go func() { // want `go statement is not tied to a shutdown path`
		defer other.Done()
	}()
}

// untiedLoop is the canonical leak: nothing stops it.
func (s *server) untiedLoop() {
	go func() { // want `go statement is not tied to a shutdown path`
		for v := range make(chan int) {
			_ = v
		}
	}()
}

// allowed: the justified exception carries its reason.
func (s *server) allowed() {
	//arblint:allow goroleak shutdown signal is the connection close itself
	go func() {
		<-s.work
	}()
}

//arblint:allow goroleak // want `unused //arblint:allow goroleak comment`
