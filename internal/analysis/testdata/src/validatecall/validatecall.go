// Package validatecall is golden testdata for the validatecall
// analyzer.
package validatecall

import "errors"

// Config declares the Validate() error contract every simulator
// configuration carries.
type Config struct {
	N    int
	Load float64
}

func (c Config) Validate() error {
	if c.N <= 0 {
		return errors.New("validatecall: N must be positive")
	}
	return nil
}

// Result is an arbitrary entry-point product.
type Result struct{ Total int }

// Run is the canonical legal shape: validate, then read fields.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Result{Total: cfg.N * 2}, nil
}

// RunUnchecked reads a field without ever validating.
func RunUnchecked(cfg Config) int {
	return cfg.N * 2 // want `RunUnchecked uses cfg.N but never calls cfg.Validate`
}

// RunLate validates only after fields were already read.
func RunLate(cfg Config) (int, error) {
	n := cfg.N // want `RunLate uses cfg.N before cfg.Validate`
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	return n, nil
}

// NewRunner covers the New-style entry points and pointer configs.
func NewRunner(cfg *Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Result{Total: cfg.N}, nil
}

// RunForward only passes the config wholesale: delegation is legal, the
// callee validates (this mirrors the busarb facade wrappers).
func RunForward(cfg Config) (*Result, error) {
	return Run(cfg)
}

// RunAllowed shows the escape hatch.
func RunAllowed(cfg Config) int {
	return cfg.N //arblint:allow validatecall
}

// process is unexported and not an entry point: no obligation.
func process(cfg Config) int {
	return cfg.N
}

// RunPlain takes a config without Validate: no obligation.
type PlainOpts struct{ Depth int }

func RunPlain(o PlainOpts) int {
	return o.Depth
}
