// Package nilprobe is golden testdata for the nilprobe analyzer. It
// imports the real busarb/internal/obs package, so the probe types here
// are exactly the ones the simulators use.
package nilprobe

import "busarb/internal/obs"

type system struct {
	observer obs.Probe
	snapshot []int
	now      float64
}

// guarded is the canonical legal emission: enclosed in a nil check of
// the same expression.
func (s *system) guarded() {
	if s.observer != nil {
		s.observer.OnEvent(obs.Event{Time: s.now, Kind: obs.Repass})
	}
}

// earlyReturn proves the probe non-nil for the rest of the function.
func (s *system) earlyReturn() {
	if s.observer == nil {
		return
	}
	s.observer.OnEvent(obs.Event{Time: s.now, Kind: obs.Repass})
}

// conjunction accepts the guard among && conjuncts.
func (s *system) conjunction(enabled bool) {
	if enabled && s.observer != nil {
		s.observer.OnEvent(obs.Event{Time: s.now, Kind: obs.Repass})
	}
}

// unguarded is the canonical violation.
func (s *system) unguarded() {
	s.observer.OnEvent(obs.Event{Time: s.now, Kind: obs.Repass}) // want `OnEvent is not dominated by a nil check`
}

// wrongGuard checks a different expression than it emits on.
func (s *system) wrongGuard(other obs.Probe) {
	if other != nil {
		s.observer.OnEvent(obs.Event{Time: s.now, Kind: obs.Repass}) // want `nil check of s.observer`
	}
}

// staleGuard shows that guards do not leak into function literals,
// which may run after the observer is detached.
func (s *system) staleGuard() func() {
	if s.observer != nil {
		return func() {
			s.observer.OnEvent(obs.Event{Time: s.now, Kind: obs.Repass}) // want `OnEvent is not dominated`
		}
	}
	return nil
}

// emit is a probe-emitting helper: it guards internally, so callers
// need no guard of their own (rule 1 is satisfied inside the helper).
func (s *system) emit(e obs.Event) {
	if s.observer != nil {
		s.observer.OnEvent(e)
	}
}

// helperPlain forwards a flat event; the helper's internal guard is
// enough.
func (s *system) helperPlain() {
	s.emit(obs.Event{Time: s.now, Kind: obs.ServiceEnd, Agent: 3})
}

// helperGuardedAlloc copies the snapshot only under its own nil check —
// the shape of bussim.beginArbitration, which keeps the nil-Observer
// path allocation-free.
func (s *system) helperGuardedAlloc() {
	if s.observer != nil {
		s.emit(obs.Event{Time: s.now, Kind: obs.ArbitrationStart,
			Agents: append([]int(nil), s.snapshot...)})
	}
}

// helperUnguardedAlloc builds the snapshot copy unconditionally: the
// allocation happens even when no probe is attached.
func (s *system) helperUnguardedAlloc() {
	s.emit(obs.Event{Time: s.now, Kind: obs.ArbitrationStart, // want `allocating argument to probe-emitting helper emit`
		Agents: append([]int(nil), s.snapshot...)})
}

// allowed demonstrates the escape hatch on an emission.
func (s *system) allowed() {
	s.observer.OnEvent(obs.Event{Time: s.now, Kind: obs.Repass}) //arblint:allow nilprobe
}

// forwarder implements obs.Probe; combinators forward without guards
// because they are only installed when an observer is attached, so
// OnEvent bodies are exempt.
type forwarder struct {
	next obs.Probe
}

func (f *forwarder) OnEvent(e obs.Event) {
	f.next.OnEvent(e)
}
