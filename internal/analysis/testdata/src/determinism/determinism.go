// Package determinism is golden testdata for the determinism analyzer:
// each want comment pins one diagnostic, and the arblint:allow lines
// pin the escape-hatch semantics.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

// clock is the canonical violation: wall-clock reads.
func clock() time.Time {
	return time.Now() // want `time.Now makes output depend on wall-clock time`
}

// roll draws from the process-global source.
func roll() int {
	return rand.Intn(6) // want `math/rand.Intn draws from the process-global random source`
}

// shuffle covers a global draw with pointer-free arguments.
func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand.Shuffle`
}

// seeded constructs a local generator: that is seedsrc's concern, not
// determinism's, so no diagnostic here (the generator's draws are
// deterministic for a fixed seed).
func seeded() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(6)
}

// allowedClock demonstrates the trailing escape hatch: the diagnostic
// on this line is suppressed and the allow comment is consumed.
func allowedClock() time.Time {
	return time.Now() //arblint:allow determinism
}

// allowedAbove demonstrates the preceding-line escape hatch.
func allowedAbove() time.Time {
	//arblint:allow determinism
	return time.Now()
}

// sortedIteration is the recognized deterministic idiom: collect the
// keys, sort, then index.
func sortedIteration(m map[int]string) []string {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// unsortedIteration consumes map values in iteration order.
func unsortedIteration(m map[int]string) string {
	s := ""
	for _, v := range m { // want `range over map has nondeterministic iteration order`
		s += v
	}
	return s
}

// twoOnOneLine shows an allow comment suppressing exactly one
// diagnostic: the first time.Now is excused, the second still reports.
func twoOnOneLine() (time.Time, time.Time) {
	a, b := time.Now(), time.Now() //arblint:allow determinism // want `time.Now`
	return a, b
}

// An allow comment that excuses nothing is itself a finding.
//
//arblint:allow determinism // want `unused //arblint:allow determinism comment`
func nothingToAllow() int {
	return 1
}
