package analysis_test

import (
	"strings"
	"testing"

	"busarb/internal/analysis"
)

// TestTreeIsClean runs the full arblint suite over every package of the
// module and requires zero findings: the invariants the analyzers
// encode (bit-identical fixed-seed runs, allocation-free nil-Observer
// paths, validated configs, rng-only randomness) must hold on the
// shipping tree, not just in CI where `make lint` runs the cmd/arblint
// driver. Deleting a nil-Observer guard in internal/bussim — or adding
// a time.Now to a simulator — fails this test and therefore `go test
// ./...` itself.
func TestTreeIsClean(t *testing.T) {
	prog, err := analysis.ModuleProgram()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, pkg := range prog.Packages() {
		// The shared program may have testdata packages cached by the
		// analysistest runs; those hold deliberate violations.
		if strings.Contains(pkg.Path, "/testdata/") {
			continue
		}
		for _, a := range analysis.Analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			diags, err := analysis.RunAnalyzer(a, pkg)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				t.Errorf("%s", d)
			}
		}
		// Annotation hygiene: every allow/alloc comment must name an
		// analyzer that actually runs here (the inapplicable-allow gap).
		for _, d := range analysis.CheckAllows(pkg) {
			t.Errorf("%s", d)
		}
	}
}
