package analysis_test

import (
	"testing"

	"busarb/internal/analysis"
	"busarb/internal/analysis/analysistest"
)

// Each analyzer's golden testdata demonstrates at least one flagged
// violation, at least one legal counterpart, and the //arblint:allow
// escape hatch (a consumed allow and an unused one that reports
// itself).

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysis.Determinism, "testdata/src/determinism")
}

func TestNilProbe(t *testing.T) {
	analysistest.Run(t, analysis.NilProbe, "testdata/src/nilprobe")
}

func TestValidateCall(t *testing.T) {
	analysistest.Run(t, analysis.ValidateCall, "testdata/src/validatecall")
}

func TestSeedSrc(t *testing.T) {
	analysistest.Run(t, analysis.SeedSrc, "testdata/src/seedsrc")
}

func TestAllocFree(t *testing.T) {
	analysistest.Run(t, analysis.AllocFree, "testdata/src/allocfree")
}

func TestSyncGuard(t *testing.T) {
	analysistest.Run(t, analysis.SyncGuard, "testdata/src/syncguard")
}

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, analysis.GoroLeak, "testdata/src/goroleak")
}

// TestAnalyzerScope pins the package filters: determinism binds in the
// simulator and cmd packages only, nilprobe in simulator packages only,
// seedsrc everywhere but the blessed internal/rng, validatecall
// everywhere.
func TestAnalyzerScope(t *testing.T) {
	cases := []struct {
		analyzer *analysis.Analyzer
		path     string
		want     bool
	}{
		{analysis.Determinism, "busarb/internal/bussim", true},
		{analysis.Determinism, "busarb/cmd/benchjson", true},
		{analysis.Determinism, "busarb/internal/report", false},
		{analysis.Determinism, "busarb/internal/obs", false},
		{analysis.Determinism, "busarb/internal/grant", true},
		{analysis.Determinism, "busarb/internal/bitarb", true},
		{analysis.Determinism, "busarb/internal/arbd", false},
		{analysis.Determinism, "busarb/internal/arbd/codec", true},
		{analysis.Determinism, "busarb/internal/arbd/cluster", true},
		{analysis.Determinism, "busarb/internal/topo", true},
		{analysis.NilProbe, "busarb/internal/topo", true},
		{analysis.NilProbe, "busarb/internal/grant", true},
		{analysis.NilProbe, "busarb/internal/arbd/codec", true},
		// The cluster package rides simPackagePaths into nilprobe scope
		// too; it emits no probes, so the bind is vacuous but harmless.
		{analysis.NilProbe, "busarb/internal/arbd/cluster", true},
		{analysis.NilProbe, "busarb/internal/bitarb", true},
		{analysis.NilProbe, "busarb/internal/arbd", false},
		{analysis.NilProbe, "busarb/internal/cyclesim", true},
		{analysis.NilProbe, "busarb/internal/obs", false},
		{analysis.NilProbe, "busarb/cmd/arbtrace", false},
		{analysis.SeedSrc, "busarb/internal/rng", false},
		{analysis.SeedSrc, "busarb/internal/workload", true},
		{analysis.AllocFree, "busarb/internal/bitarb", true},
		{analysis.AllocFree, "busarb/internal/arbd/codec", true},
		{analysis.AllocFree, "busarb/internal/grant", true},
		{analysis.AllocFree, "busarb/internal/topo", true},
		{analysis.AllocFree, "busarb/internal/arbd", false},
		{analysis.AllocFree, "busarb/internal/sim", false},
		{analysis.GoroLeak, "busarb/internal/arbd", true},
		{analysis.GoroLeak, "busarb/internal/arbd/cluster", true},
		{analysis.GoroLeak, "busarb/client", true},
		{analysis.GoroLeak, "busarb/internal/arbd/codec", false},
		{analysis.GoroLeak, "busarb/internal/sim", false},
	}
	for _, c := range cases {
		if got := c.analyzer.AppliesTo(c.path); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.analyzer.Name, c.path, got, c.want)
		}
	}
	if analysis.ValidateCall.AppliesTo != nil {
		t.Error("validatecall should apply to every package (nil AppliesTo)")
	}
	if analysis.SyncGuard.AppliesTo != nil {
		t.Error("syncguard should apply to every package (nil AppliesTo): unannotated packages cost nothing")
	}
}
