// Package membus models the memory side of the multiprocessor bus: the
// block transfers the paper's §4.1 abstracts as a fixed transaction
// time are address + memory-access + data-burst sequences against
// banked memory. Two bus disciplines of the paper's era are provided:
//
//   - Connected: the master holds the bus through the entire sequence
//     (address cycles, memory latency, data burst) — NuBus/Multibus
//     style. Bus service time = A + M + D, and memory latency is dead
//     time on the bus.
//   - Split: the master releases the bus after the address cycles; the
//     memory controller becomes a bus agent itself and arbitrates to
//     return the data burst when the bank finishes — Fastbus/Futurebus
//     style. The bus carries A + D per transfer and memory latency
//     overlaps other traffic, at the cost of a second arbitration.
//
// Every bus tenure — processors' requests and the memory controller's
// responses alike — is granted by one of the paper's arbitration
// protocols; the memory controller competes with identity N+1 (the
// highest, as such controllers typically did).
package membus

import (
	"fmt"

	"busarb/internal/core"
	"busarb/internal/dist"
	"busarb/internal/obs"
	"busarb/internal/rng"
	"busarb/internal/sim"
	"busarb/internal/stats"
)

// Mode selects the bus discipline.
type Mode int

// The bus disciplines.
const (
	// Connected holds the bus through the memory access.
	Connected Mode = iota
	// Split releases the bus during the memory access; responses are
	// separate arbitrated transfers by the memory controller.
	Split
)

// String names the mode.
func (m Mode) String() string {
	if m == Split {
		return "split"
	}
	return "connected"
}

// Config describes a memory-bus simulation.
type Config struct {
	// N is the number of processors (bus identities 1..N; the memory
	// controller takes N+1 in split mode).
	N int
	// Banks is the number of interleaved memory banks (>= 1). A block's
	// bank is chosen uniformly per request.
	Banks int
	// Protocol arbitrates the bus.
	Protocol core.Factory
	// Mode selects connected or split transfers.
	Mode Mode
	// AddrTime, MemTime, DataTime are the phase durations; zero values
	// default to 0.25, 1.5, 0.75 (a slow-memory configuration where the
	// disciplines differ visibly).
	AddrTime float64
	MemTime  float64
	DataTime float64
	// Inter is each processor's think-time distribution.
	Inter []dist.Sampler
	// Seed, Batches, BatchSize configure measurement (defaults 10x2000;
	// a batch counts completed block transfers).
	Seed      uint64
	Batches   int
	BatchSize int
	// Observer, if non-nil, receives the simulation's event stream,
	// including BankConflict whenever a transfer finds its bank still
	// busy with an earlier access.
	Observer obs.Probe
	// Horizon, when positive, ends the run once the simulated clock
	// reaches it, even if the completion target has not been met. Zero
	// means run to the completion target.
	Horizon float64
}

// Validate checks the configuration without running it; Run panics on
// exactly these errors.
func (cfg Config) Validate() error {
	if cfg.N < 2 {
		return fmt.Errorf("membus: need at least two processors, got %d", cfg.N)
	}
	if cfg.Banks < 1 {
		return fmt.Errorf("membus: need at least one bank, got %d", cfg.Banks)
	}
	if cfg.Protocol == nil {
		return fmt.Errorf("membus: Protocol factory is required")
	}
	if len(cfg.Inter) != cfg.N {
		return fmt.Errorf("membus: len(Inter)=%d, want %d", len(cfg.Inter), cfg.N)
	}
	if cfg.AddrTime < 0 || cfg.MemTime < 0 || cfg.DataTime < 0 {
		return fmt.Errorf("membus: phase times must be positive")
	}
	if cfg.Horizon < 0 {
		return fmt.Errorf("membus: negative Horizon %v", cfg.Horizon)
	}
	return nil
}

// Result reports the run's measurements.
type Result struct {
	Mode        Mode
	Protocol    string
	N           int
	Completions int64
	Elapsed     float64
	// Latency is the batch-means estimate of the full transfer latency:
	// request generation to data received.
	Latency stats.Estimate
	// Throughput is completed transfers per unit time.
	Throughput stats.Estimate
	// BusUtilization is the fraction of time the bus is held.
	BusUtilization stats.Estimate
	// BankUtilization is the mean fraction of time banks are busy.
	BankUtilization stats.Estimate
	// RespArbitrations counts the split-mode response tenures.
	RespArbitrations int64
}

// Summary implements the cross-simulator Report surface.
func (r *Result) Summary() obs.Summary {
	return obs.Summary{
		Simulator:   "membus",
		Protocol:    r.Protocol,
		N:           r.N,
		Time:        r.Elapsed,
		Grants:      r.Completions + r.RespArbitrations,
		Utilization: r.BusUtilization.Mean,
	}
}

type pendingResp struct {
	proc    int
	genTime float64
	readyAt float64
}

type machine struct {
	cfg   Config
	sched sim.Scheduler
	proto core.Protocol
	memID int

	// Per-processor state.
	waiting []bool // outstanding request not yet granted the bus
	genTime []float64
	srcs    []*rng.Source

	// Memory controller state (split mode).
	respQueue []pendingResp
	respReady int // responses whose bank has finished

	// Bank state.
	bankFreeAt []float64

	busBusy     bool
	arbitrating bool
	pendingWin  int

	// Measurement.
	target      int64
	batchSize   int64
	warmupLeft  int64
	completions int64
	startTime   float64
	batchStart  float64
	busBusyAcc  float64
	bankBusyAcc float64
	batchLat    stats.Running
	latBatches  []float64
	cntBatches  []float64
	busBatches  []float64
	bankBatches []float64
	done        bool
	res         *Result
}

// Run executes the simulation.
func Run(cfg Config) *Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.AddrTime == 0 {
		cfg.AddrTime = 0.25
	}
	if cfg.MemTime == 0 {
		cfg.MemTime = 1.5
	}
	if cfg.DataTime == 0 {
		cfg.DataTime = 0.75
	}
	if cfg.AddrTime <= 0 || cfg.MemTime <= 0 || cfg.DataTime <= 0 {
		panic("membus: phase times must be positive")
	}
	if cfg.Batches == 0 {
		cfg.Batches = 10
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 2000
	}

	nAgents := cfg.N
	if cfg.Mode == Split {
		nAgents = cfg.N + 1 // the memory controller
	}
	m := &machine{
		cfg:        cfg,
		proto:      cfg.Protocol(nAgents),
		memID:      cfg.N + 1,
		waiting:    make([]bool, cfg.N+2),
		genTime:    make([]float64, cfg.N+2),
		srcs:       make([]*rng.Source, cfg.N+2),
		bankFreeAt: make([]float64, cfg.Banks),
		target:     int64(cfg.Batches) * int64(cfg.BatchSize),
		batchSize:  int64(cfg.BatchSize),
		warmupLeft: int64(cfg.BatchSize),
		res:        &Result{Mode: cfg.Mode, N: cfg.N},
	}
	m.res.Protocol = m.proto.Name()
	master := rng.New(cfg.Seed)
	for id := 1; id <= cfg.N; id++ {
		m.srcs[id] = master.Split()
		m.scheduleThink(id)
	}
	m.srcs[m.memID] = master.Split()
	if cfg.Horizon > 0 {
		m.sched.At(cfg.Horizon, func() { m.done = true })
	}
	m.sched.Run(func() bool { return m.done })
	m.finish()
	return m.res
}

// emit forwards an event to the configured observer, if any.
func (m *machine) emit(e obs.Event) {
	if m.cfg.Observer != nil {
		m.cfg.Observer.OnEvent(e)
	}
}

func (m *machine) scheduleThink(id int) {
	d := m.cfg.Inter[id-1].Sample(m.srcs[id])
	m.sched.After(d, func() { m.generate(id) })
}

func (m *machine) generate(id int) {
	m.waiting[id] = true
	m.genTime[id] = m.sched.Now()
	m.proto.OnRequest(id, m.sched.Now())
	m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.RequestIssued, Agent: id})
	m.maybeArbitrate()
}

func (m *machine) maybeArbitrate() {
	if m.arbitrating || m.pendingWin != 0 {
		return
	}
	if !m.anyWaiting() {
		return
	}
	m.arbitrating = true
	snapshot := m.waitingIDs()
	if m.cfg.Observer != nil {
		// Copy: resolve still reads snapshot after the probe sees it.
		m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.ArbitrationStart,
			Agents: append([]int(nil), snapshot...)})
	}
	// Arbitration overhead: half an address cycle, overlapped with any
	// current tenure (the §4.1 structure scaled to this bus).
	m.sched.After(m.cfg.AddrTime/2, func() { m.resolve(snapshot) })
}

func (m *machine) anyWaiting() bool {
	for id := 1; id < len(m.waiting); id++ {
		if m.waiting[id] {
			return true
		}
	}
	return false
}

func (m *machine) waitingIDs() []int {
	var ids []int
	for id := 1; id < len(m.waiting); id++ {
		if m.waiting[id] {
			ids = append(ids, id)
		}
	}
	return ids
}

func (m *machine) resolve(snapshot []int) {
	out := m.proto.Arbitrate(snapshot)
	if out.Repass {
		m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.Repass})
		fresh := m.waitingIDs()
		m.sched.After(m.cfg.AddrTime/2, func() { m.resolve(fresh) })
		return
	}
	m.arbitrating = false
	m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.ArbitrationResolve, Agent: out.Winner})
	if m.busBusy {
		m.pendingWin = out.Winner
	} else {
		m.grant(out.Winner)
	}
}

func (m *machine) grant(id int) {
	m.pendingWin = 0
	m.waiting[id] = false
	m.busBusy = true
	m.proto.OnServiceStart(id, m.sched.Now())
	if id == m.memID {
		m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.ServiceStart, Agent: id, Label: "response"})
		m.startResponse()
	} else {
		m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.ServiceStart, Agent: id})
		m.startRequest(id)
	}
	// Overlap the next arbitration with this tenure.
	m.maybeArbitrate()
}

// startRequest runs a processor's tenure.
func (m *machine) startRequest(id int) {
	now := m.sched.Now()
	bank := m.srcs[id].Intn(m.cfg.Banks)
	switch m.cfg.Mode {
	case Connected:
		// Hold the bus: address + wait for bank + access + data.
		start := now + m.cfg.AddrTime
		if m.bankFreeAt[bank] > start {
			start = m.bankFreeAt[bank]
			m.emit(obs.Event{Time: now, Kind: obs.BankConflict, Agent: id, Aux: int64(bank)})
		}
		doneMem := start + m.cfg.MemTime
		m.bankBusyAcc += m.cfg.MemTime
		m.bankFreeAt[bank] = doneMem
		end := doneMem + m.cfg.DataTime
		m.busBusyAcc += end - now
		m.sched.At(end, func() {
			m.busBusy = false
			m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.ServiceEnd, Agent: id})
			m.complete(id, m.genTime[id])
			m.scheduleThink(id)
			m.afterTenure()
		})
	case Split:
		// Address cycles only; the bank then works off-bus and the
		// response queues at the memory controller.
		end := now + m.cfg.AddrTime
		m.busBusyAcc += m.cfg.AddrTime
		gen := m.genTime[id]
		m.sched.At(end, func() {
			m.busBusy = false
			m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.ServiceEnd, Agent: id})
			start := m.sched.Now()
			if m.bankFreeAt[bank] > start {
				start = m.bankFreeAt[bank]
				m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.BankConflict, Agent: id, Aux: int64(bank)})
			}
			ready := start + m.cfg.MemTime
			m.bankBusyAcc += m.cfg.MemTime
			m.bankFreeAt[bank] = ready
			m.respQueue = append(m.respQueue, pendingResp{proc: id, genTime: gen, readyAt: ready})
			m.sched.At(ready, func() { m.responseReady() })
			m.afterTenure()
		})
	}
}

// responseReady marks one queued response as deliverable; the memory
// controller asserts the bus request line if it wasn't already.
func (m *machine) responseReady() {
	m.respReady++
	if !m.waiting[m.memID] {
		m.waiting[m.memID] = true
		m.proto.OnRequest(m.memID, m.sched.Now())
		m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.RequestIssued, Agent: m.memID})
		m.maybeArbitrate()
	}
}

// startResponse runs the memory controller's tenure: the oldest ready
// response's data burst.
func (m *machine) startResponse() {
	if m.respReady == 0 {
		panic("membus: memory controller granted with no ready response")
	}
	// Oldest ready response (FIFO by readiness).
	idx := -1
	for i := range m.respQueue {
		if m.respQueue[i].readyAt <= m.sched.Now()+1e-9 {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic("membus: ready counter out of sync")
	}
	resp := m.respQueue[idx]
	m.respQueue = append(m.respQueue[:idx], m.respQueue[idx+1:]...)
	m.respReady--
	m.res.RespArbitrations++
	end := m.sched.Now() + m.cfg.DataTime
	m.busBusyAcc += m.cfg.DataTime
	m.sched.At(end, func() {
		m.busBusy = false
		m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.ServiceEnd, Agent: m.memID,
			Aux: int64(resp.proc), Label: "response"})
		m.complete(resp.proc, resp.genTime)
		m.scheduleThink(resp.proc)
		// More ready responses: re-assert immediately.
		if m.respReady > 0 {
			m.waiting[m.memID] = true
			m.proto.OnRequest(m.memID, m.sched.Now())
			m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.RequestIssued, Agent: m.memID})
		}
		m.afterTenure()
	})
}

func (m *machine) afterTenure() {
	if m.done {
		return
	}
	if m.pendingWin != 0 {
		m.grant(m.pendingWin)
		return
	}
	if !m.arbitrating {
		m.maybeArbitrate()
	}
}

func (m *machine) complete(proc int, gen float64) {
	lat := m.sched.Now() - gen
	if m.warmupLeft > 0 {
		m.warmupLeft--
		if m.warmupLeft == 0 {
			m.startTime = m.sched.Now()
			m.batchStart = m.sched.Now()
			m.busBusyAcc = 0
			m.bankBusyAcc = 0
		}
		return
	}
	if m.completions >= m.target {
		return
	}
	m.completions++
	m.batchLat.Add(lat)
	if m.completions%m.batchSize == 0 {
		m.closeBatch()
	}
	if m.completions >= m.target {
		m.done = true
	}
}

func (m *machine) closeBatch() {
	now := m.sched.Now()
	dur := now - m.batchStart
	if dur <= 0 {
		dur = 1e-12
	}
	m.latBatches = append(m.latBatches, m.batchLat.Mean())
	m.cntBatches = append(m.cntBatches, float64(m.batchSize)/dur)
	m.busBatches = append(m.busBatches, m.busBusyAcc/dur)
	m.bankBatches = append(m.bankBatches, m.bankBusyAcc/(dur*float64(m.cfg.Banks)))
	m.batchLat.Reset()
	m.busBusyAcc = 0
	m.bankBusyAcc = 0
	m.batchStart = now
}

func (m *machine) finish() {
	m.res.Completions = m.completions
	m.res.Elapsed = m.sched.Now() - m.startTime
	m.res.Latency = stats.BatchMeans(m.latBatches)
	m.res.Throughput = stats.BatchMeans(m.cntBatches)
	m.res.BusUtilization = stats.BatchMeans(m.busBatches)
	m.res.BankUtilization = stats.BatchMeans(m.bankBatches)
}
