package membus

import (
	"testing"

	"busarb/internal/bussim"
	"busarb/internal/core"
)

func cfg(mode Mode, n, banks int, load float64) Config {
	rr, _ := core.ByName("RR1")
	// Offered load is relative to the connected service time A+M+D.
	service := 0.25 + 1.5 + 0.75
	per := load / float64(n)
	mean := bussim.MeanForLoad(per, service)
	inter := bussim.UniformLoad(n, load, 1.0, service)
	_ = mean
	return Config{
		N: n, Banks: banks, Protocol: rr, Mode: mode,
		Inter: inter, Seed: 5, Batches: 6, BatchSize: 1500,
	}
}

func TestModeString(t *testing.T) {
	if Connected.String() != "connected" || Split.String() != "split" {
		t.Error("mode names wrong")
	}
}

func TestConnectedLowLoadLatency(t *testing.T) {
	// At low load a transfer is just A + M + D plus half-address
	// arbitration, with negligible queueing.
	res := Run(cfg(Connected, 8, 4, 0.3))
	minLat := 0.25 + 1.5 + 0.75
	if res.Latency.Mean < minLat || res.Latency.Mean > minLat+0.6 {
		t.Errorf("connected low-load latency = %v, want ~%v", res.Latency.Mean, minLat)
	}
}

func TestSplitConnectedCloseAtLowLoad(t *testing.T) {
	// At low load both disciplines deliver essentially A + M + D: the
	// split bus saves queueing behind held buses but pays a second
	// arbitration — a small net difference either way.
	conn := Run(cfg(Connected, 8, 4, 0.1))
	split := Run(cfg(Split, 8, 4, 0.1))
	if gap := conn.Latency.Mean - split.Latency.Mean; gap < -0.2 || gap > 0.4 {
		t.Errorf("low load: split %v vs connected %v — gap %v too large",
			split.Latency.Mean, conn.Latency.Mean, gap)
	}
	if split.RespArbitrations == 0 {
		t.Error("split mode recorded no response tenures")
	}
	if conn.RespArbitrations != 0 {
		t.Error("connected mode recorded response tenures")
	}
}

func TestSplitWinsUnderLoad(t *testing.T) {
	// The crossover the split-transaction design exists for: with slow
	// memory and high demand, the connected bus wastes M per transfer
	// while split overlaps it, carrying much more traffic.
	conn := Run(cfg(Connected, 12, 8, 3.0))
	split := Run(cfg(Split, 12, 8, 3.0))
	if split.Throughput.Mean < 1.3*conn.Throughput.Mean {
		t.Errorf("loaded: split throughput %v, connected %v — want >1.3x",
			split.Throughput.Mean, conn.Throughput.Mean)
	}
	if split.Latency.Mean > conn.Latency.Mean {
		t.Errorf("loaded: split latency %v should beat connected %v",
			split.Latency.Mean, conn.Latency.Mean)
	}
}

func TestConnectedCapacityBound(t *testing.T) {
	// Connected capacity is exactly 1/(A+M+D) transfers per unit time.
	res := Run(cfg(Connected, 12, 8, 5.0))
	bound := 1.0 / (0.25 + 1.5 + 0.75)
	if res.Throughput.Mean > bound+0.005 {
		t.Errorf("throughput %v exceeds connected bound %v", res.Throughput.Mean, bound)
	}
	if res.Throughput.Mean < 0.97*bound {
		t.Errorf("saturated throughput %v, want ~bound %v", res.Throughput.Mean, bound)
	}
	if res.BusUtilization.Mean < 0.98 {
		t.Errorf("saturated connected bus utilization = %v", res.BusUtilization.Mean)
	}
}

func TestSplitCapacityBounds(t *testing.T) {
	// Split is bus-bound at 1/(A+D) or bank-bound at Banks/M, whichever
	// is smaller. With 8 banks and M=1.5: banks allow 5.33/t, bus allows
	// 1/(1.0) = 1.0/t — bus-bound.
	res := Run(cfg(Split, 12, 8, 5.0))
	busBound := 1.0 / (0.25 + 0.75)
	if res.Throughput.Mean > busBound+0.01 {
		t.Errorf("throughput %v exceeds split bus bound %v", res.Throughput.Mean, busBound)
	}
	if res.Throughput.Mean < 0.9*busBound {
		t.Errorf("saturated split throughput %v, want near %v", res.Throughput.Mean, busBound)
	}
}

func TestBankBoundSplit(t *testing.T) {
	// One slow bank: capacity Banks/M = 1/1.5 < bus bound 1.0 — the
	// bank becomes the bottleneck and its utilization approaches 1.
	res := Run(cfg(Split, 12, 1, 5.0))
	bankBound := 1.0 / 1.5
	if res.Throughput.Mean > bankBound+0.01 {
		t.Errorf("throughput %v exceeds bank bound %v", res.Throughput.Mean, bankBound)
	}
	if res.BankUtilization.Mean < 0.95 {
		t.Errorf("bank utilization %v, want ~1 (bottleneck)", res.BankUtilization.Mean)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := Run(cfg(Split, 8, 4, 1.5))
	b := Run(cfg(Split, 8, 4, 1.5))
	if a.Latency.Mean != b.Latency.Mean || a.Throughput.Mean != b.Throughput.Mean {
		t.Error("identical seeds differ")
	}
}

func TestValidation(t *testing.T) {
	rr, _ := core.ByName("RR1")
	bad := []Config{
		{N: 1, Banks: 1, Protocol: rr},
		{N: 4, Banks: 0, Protocol: rr},
		{N: 4, Banks: 1, Protocol: nil},
		{N: 4, Banks: 1, Protocol: rr, Inter: bussim.UniformLoad(3, 0.5, 1, 1)},
		{N: 4, Banks: 1, Protocol: rr, Inter: bussim.UniformLoad(4, 0.5, 1, 1), AddrTime: -1},
	}
	for i, c := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad config %d did not panic", i)
				}
			}()
			Run(c)
		}()
	}
}

func TestWorksWithEveryProtocol(t *testing.T) {
	for _, name := range []string{"FP", "RR1", "RR3", "FCFS1", "FCFS2", "AAP1", "AAP2"} {
		f, _ := core.ByName(name)
		c := cfg(Split, 6, 4, 2.0)
		c.Protocol = f
		c.Batches, c.BatchSize = 3, 500
		res := Run(c)
		if res.Completions != 1500 {
			t.Errorf("%s: completions = %d", name, res.Completions)
		}
	}
}
