package mp

import (
	"math"
	"testing"

	"busarb/internal/core"
	"busarb/internal/rng"
)

func TestCacheGeometry(t *testing.T) {
	c := NewCache(1024, 32, 2)
	if c.Sets() != 16 || c.Ways() != 2 || c.BlockBytes() != 32 {
		t.Errorf("geometry: sets=%d ways=%d block=%d", c.Sets(), c.Ways(), c.BlockBytes())
	}
}

func TestCacheGeometryPanics(t *testing.T) {
	cases := [][3]int{
		{0, 32, 1},    // zero size
		{1024, 33, 1}, // non-power-of-two block
		{1024, 32, 3}, // blocks not divisible by ways: 32 blocks / 3
		{96, 32, 1},   // sets = 3, not a power of two
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCache(%v) did not panic", c)
				}
			}()
			NewCache(c[0], c[1], c[2])
		}()
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(256, 32, 1) // 8 direct-mapped blocks
	if res := c.Access(0, false); res.Hit {
		t.Fatal("cold access hit")
	}
	if res := c.Access(16, false); !res.Hit {
		t.Fatal("same-block access missed")
	}
	// A conflicting block (same set, 8 blocks apart) evicts.
	if res := c.Access(256, false); res.Hit {
		t.Fatal("conflicting access hit")
	}
	if res := c.Access(0, false); res.Hit {
		t.Fatal("evicted block still present")
	}
	if c.Misses != 3 || c.Accesses != 4 {
		t.Errorf("misses=%d accesses=%d", c.Misses, c.Accesses)
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	c := NewCache(256, 32, 1)
	c.Access(0, true) // miss, fill, dirty
	res := c.Access(256, false)
	if !res.Writeback {
		t.Error("dirty victim eviction must report a write-back")
	}
	if c.DirtyEvts != 1 {
		t.Errorf("DirtyEvts = %d", c.DirtyEvts)
	}
	// Clean eviction: no write-back.
	res = c.Access(0, false)
	if res.Writeback {
		t.Error("clean victim must not write back")
	}
}

func TestCacheLRU(t *testing.T) {
	c := NewCache(128, 32, 2) // 2 sets, 2 ways
	// Set 0 blocks: 0, 64, 128...
	c.Access(0, false)   // fill way A
	c.Access(64, false)  // fill way B
	c.Access(0, false)   // touch A: B is now LRU
	c.Access(128, false) // evicts B (64)
	if res := c.Access(0, false); !res.Hit {
		t.Error("recently used block evicted (not LRU)")
	}
	if res := c.Access(64, false); res.Hit {
		t.Error("LRU block survived")
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	// A working set smaller than the cache converges to ~zero misses.
	c := NewCache(4096, 32, 2)
	p := &WorkingSet{Bytes: 2048}
	src := rng.New(1)
	for i := 0; i < 5000; i++ {
		addr, w := p.Next(src)
		c.Access(addr, w)
	}
	warmMisses := c.Misses
	for i := 0; i < 5000; i++ {
		addr, w := p.Next(src)
		c.Access(addr, w)
	}
	if c.Misses != warmMisses {
		t.Errorf("fitting working set still missing after warmup: %d -> %d", warmMisses, c.Misses)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(256, 32, 1)
	c.Access(0, true)
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Error("Reset left stats")
	}
	if res := c.Access(0, false); res.Hit {
		t.Error("Reset left valid lines")
	}
}

func TestSequentialPatternAlwaysMissesAtBlockRate(t *testing.T) {
	c := NewCache(1024, 32, 1)
	p := &Sequential{Stride: 8}
	src := rng.New(2)
	for i := 0; i < 4000; i++ {
		addr, w := p.Next(src)
		c.Access(addr, w)
	}
	// Stride 8 over 32B blocks: one miss every 4 references.
	want := 0.25
	if got := c.MissRate(); math.Abs(got-want) > 0.01 {
		t.Errorf("streaming miss rate = %v, want %v", got, want)
	}
}

func TestHotColdPattern(t *testing.T) {
	p := &HotCold{HotBytes: 1024, ColdBytes: 1 << 20, HotProb: 0.9}
	src := rng.New(3)
	hot := 0
	for i := 0; i < 10000; i++ {
		addr, _ := p.Next(src)
		if addr < 1024 {
			hot++
		}
	}
	if hot < 8800 || hot > 9200 {
		t.Errorf("hot fraction = %v, want ~0.9", float64(hot)/10000)
	}
}

func TestProcessorThinkSequence(t *testing.T) {
	// A streaming processor misses every 4th reference (32B blocks,
	// stride 8): think time must be 4 * CyclePerRef per request, and a
	// dirty-writeback fill follows with zero think.
	proc := &Processor{
		Cache:       NewCache(256, 32, 1),
		Pattern:     &Sequential{Stride: 8, WriteFrac: 1.0}, // all writes: every eviction dirty
		CyclePerRef: 0.1,
	}
	src := rng.New(4)
	first := proc.NextThink(src) // cold miss on reference 1
	if math.Abs(first-0.1) > 1e-12 {
		t.Errorf("first think = %v, want 0.1", first)
	}
	// Fill the 8 blocks, then evictions begin producing write-backs:
	// every miss is then (0.4 think, then a 0-think fill request).
	for i := 0; i < 7; i++ {
		proc.NextThink(src)
	}
	think := proc.NextThink(src)
	if math.Abs(think-0.4) > 1e-12 {
		t.Errorf("steady think = %v, want 0.4", think)
	}
	fill := proc.NextThink(src)
	if fill != 0 {
		t.Errorf("fill think = %v, want 0 (back-to-back with write-back)", fill)
	}
}

func TestMachineRunsAndReportsProgress(t *testing.T) {
	mkProc := func() *Processor {
		return &Processor{
			Cache:       NewCache(4096, 32, 2),
			Pattern:     &HotCold{HotBytes: 2048, ColdBytes: 1 << 18, HotProb: 0.85, WriteFrac: 0.3},
			CyclePerRef: 0.05,
		}
	}
	procs := make([]*Processor, 8)
	for i := range procs {
		procs[i] = mkProc()
	}
	rr, _ := core.ByName("RR1")
	res := Run(MachineConfig{
		Processors: procs,
		Protocol:   rr,
		Seed:       5,
		Batches:    4, BatchSize: 2000,
	})
	if res.Bus.Completions != 8000 {
		t.Fatalf("completions = %d", res.Bus.Completions)
	}
	for i, pr := range res.Progress {
		if pr <= 0 {
			t.Errorf("processor %d made no progress", i+1)
		}
		if res.MissRate[i] <= 0 || res.MissRate[i] >= 1 {
			t.Errorf("processor %d miss rate %v", i+1, res.MissRate[i])
		}
	}
	if s := res.SlowestRelative(); s < 0.8 || s > 1.0+1e-9 {
		t.Errorf("RR slowest relative speed = %v, want near 1 (fair bus)", s)
	}
}

// The §2.3 story, end to end: under a saturated bus, fixed-priority
// arbitration slows the low-identity processors' application progress;
// round-robin keeps them equal.
func TestApplicationLevelFairness(t *testing.T) {
	build := func(name string) *MachineResult {
		procs := make([]*Processor, 6)
		for i := range procs {
			procs[i] = &Processor{
				Cache:       NewCache(1024, 32, 1),
				Pattern:     &Sequential{Stride: 16}, // streaming: heavy bus load
				CyclePerRef: 0.05,
			}
		}
		f, _ := core.ByName(name)
		return Run(MachineConfig{
			Processors: procs,
			Protocol:   f,
			Seed:       6,
			Batches:    4, BatchSize: 2000,
		})
	}
	rr := build("RR1")
	fp := build("FP")
	if s := rr.SlowestRelative(); s < 0.95 {
		t.Errorf("RR slowest relative = %v, want ~1", s)
	}
	if s := fp.SlowestRelative(); s > 0.6 {
		t.Errorf("FP slowest relative = %v, want heavily penalized", s)
	}
}

func TestMachineConfigValidation(t *testing.T) {
	rr, _ := core.ByName("RR1")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("single processor did not panic")
			}
		}()
		Run(MachineConfig{Processors: []*Processor{{}}, Protocol: rr})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("incomplete processor did not panic")
			}
		}()
		Run(MachineConfig{Processors: []*Processor{{}, {}}, Protocol: rr})
	}()
}
