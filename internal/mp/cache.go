// Package mp models the system the paper's introduction motivates: a
// shared-bus multiprocessor whose processors stall on cache-block
// transfers. Processors execute synthetic reference streams against
// private caches; misses (and dirty write-backs) become bus transactions
// arbitrated by the protocols under study. This turns the paper's §2.3
// observation — "the relative bus bandwidth allocated to each processor
// translates directly to the relative speeds at which application
// processes run" — into a measurable application-level quantity.
package mp

import (
	"fmt"

	"busarb/internal/rng"
)

// Cache is a set-associative write-back cache with LRU replacement.
// Addresses are byte addresses; a block is 1<<blockBits bytes.
type Cache struct {
	sets      int
	ways      int
	blockBits uint

	// tags[set][way] holds the block address (addr >> blockBits) or
	// invalid; lru[set][way] is the recency stamp (bigger = newer).
	tags  [][]uint64
	valid [][]bool
	dirty [][]bool
	lru   [][]uint64
	clock uint64

	// Statistics.
	Accesses  int64
	Misses    int64
	Evictions int64
	DirtyEvts int64
}

// NewCache builds a cache with the given geometry. sizeBytes must be
// divisible by blockBytes*ways; blockBytes must be a power of two.
func NewCache(sizeBytes, blockBytes, ways int) *Cache {
	if sizeBytes <= 0 || blockBytes <= 0 || ways <= 0 {
		panic("mp: cache geometry must be positive")
	}
	if blockBytes&(blockBytes-1) != 0 {
		panic(fmt.Sprintf("mp: block size %d not a power of two", blockBytes))
	}
	blocks := sizeBytes / blockBytes
	if blocks == 0 || blocks%ways != 0 {
		panic(fmt.Sprintf("mp: %dB cache with %dB blocks and %d ways is not realizable",
			sizeBytes, blockBytes, ways))
	}
	sets := blocks / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mp: set count %d not a power of two", sets))
	}
	blockBits := uint(0)
	for 1<<blockBits < blockBytes {
		blockBits++
	}
	c := &Cache{sets: sets, ways: ways, blockBits: blockBits}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.dirty = make([][]bool, sets)
	c.lru = make([][]uint64, sets)
	for s := 0; s < sets; s++ {
		c.tags[s] = make([]uint64, ways)
		c.valid[s] = make([]bool, ways)
		c.dirty[s] = make([]bool, ways)
		c.lru[s] = make([]uint64, ways)
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// BlockBytes returns the block size in bytes.
func (c *Cache) BlockBytes() int { return 1 << c.blockBits }

// AccessResult describes the bus work one reference causes.
type AccessResult struct {
	Hit bool
	// Writeback reports that a dirty block was evicted and must be
	// written to memory before (or bundled with) the fill.
	Writeback bool
}

// Access performs one reference. On a miss the block is filled (and a
// victim evicted); write hits and write fills mark the block dirty.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	c.Accesses++
	c.clock++
	block := addr >> c.blockBits
	set := int(block % uint64(c.sets))
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == block {
			c.lru[set][w] = c.clock
			if write {
				c.dirty[set][w] = true
			}
			return AccessResult{Hit: true}
		}
	}
	c.Misses++
	// Choose victim: an invalid way, else LRU.
	victim := 0
	best := ^uint64(0)
	for w := 0; w < c.ways; w++ {
		if !c.valid[set][w] {
			victim = w
			best = 0
			break
		}
		if c.lru[set][w] < best {
			best = c.lru[set][w]
			victim = w
		}
	}
	res := AccessResult{}
	if c.valid[set][victim] {
		c.Evictions++
		if c.dirty[set][victim] {
			c.DirtyEvts++
			res.Writeback = true
		}
	}
	c.tags[set][victim] = block
	c.valid[set][victim] = true
	c.dirty[set][victim] = write
	c.lru[set][victim] = c.clock
	return res
}

// MissRate returns the observed miss ratio.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset invalidates the cache and clears statistics.
func (c *Cache) Reset() {
	for s := 0; s < c.sets; s++ {
		for w := 0; w < c.ways; w++ {
			c.valid[s][w] = false
			c.dirty[s][w] = false
			c.lru[s][w] = 0
		}
	}
	c.clock = 0
	c.Accesses, c.Misses, c.Evictions, c.DirtyEvts = 0, 0, 0, 0
}

// Pattern generates a synthetic memory-reference stream.
type Pattern interface {
	// Next returns the next reference.
	Next(src *rng.Source) (addr uint64, write bool)
	// String names the pattern for reports.
	String() string
}

// Sequential walks memory with a fixed stride (streaming access: every
// block-boundary crossing misses).
type Sequential struct {
	Stride uint64
	// WriteFrac is the fraction of references that are writes.
	WriteFrac float64
	next      uint64
}

// Next implements Pattern.
func (s *Sequential) Next(src *rng.Source) (uint64, bool) {
	addr := s.next
	stride := s.Stride
	if stride == 0 {
		stride = 4
	}
	s.next += stride
	return addr, src.Float64() < s.WriteFrac
}

func (s *Sequential) String() string { return fmt.Sprintf("sequential(stride=%d)", s.Stride) }

// WorkingSet references a fixed-size region uniformly (steady-state
// miss rate depends on whether the region fits in the cache).
type WorkingSet struct {
	Bytes     uint64
	WriteFrac float64
	Base      uint64
}

// Next implements Pattern.
func (p *WorkingSet) Next(src *rng.Source) (uint64, bool) {
	if p.Bytes == 0 {
		panic("mp: WorkingSet needs a size")
	}
	addr := p.Base + uint64(src.Intn(int(p.Bytes)))
	return addr, src.Float64() < p.WriteFrac
}

func (p *WorkingSet) String() string { return fmt.Sprintf("workingset(%dB)", p.Bytes) }

// HotCold mixes a small hot region (hit-prone) with a large cold region
// (miss-prone): HotProb selects the hot region.
type HotCold struct {
	HotBytes  uint64
	ColdBytes uint64
	HotProb   float64
	WriteFrac float64
}

// Next implements Pattern.
func (p *HotCold) Next(src *rng.Source) (uint64, bool) {
	var addr uint64
	if src.Float64() < p.HotProb {
		addr = uint64(src.Intn(int(p.HotBytes)))
	} else {
		addr = p.HotBytes + uint64(src.Intn(int(p.ColdBytes)))
	}
	return addr, src.Float64() < p.WriteFrac
}

func (p *HotCold) String() string {
	return fmt.Sprintf("hotcold(%dB/%dB, p=%.2f)", p.HotBytes, p.ColdBytes, p.HotProb)
}
