package mp

import (
	"fmt"

	"busarb/internal/bussim"
	"busarb/internal/core"
	"busarb/internal/obs"
	"busarb/internal/rng"
)

// Processor is a bussim.ThinkSource: between bus requests it executes
// references against its private cache; the think time is the compute
// time until the next reference that needs the bus. A miss that evicts
// a dirty block issues the write-back first (zero think time between
// the write-back and the fill, modeling a single master holding two
// back-to-back tenures).
type Processor struct {
	ID      int
	Cache   *Cache
	Pattern Pattern
	// CyclePerRef is the compute time between successive memory
	// references, in bus-transaction units (the paper's time unit). A
	// cache-block transfer takes 1.0 by definition, so a value like
	// 0.05 means one reference every twentieth of a block-transfer
	// time.
	CyclePerRef float64

	// References counts executed references, the processor's progress
	// measure ("the relative speeds at which application processes
	// run", §2.3).
	References int64

	// fillPending marks that the previous request was a write-back and
	// the block fill must follow immediately.
	fillPending bool
}

// NextThink implements bussim.ThinkSource: run until the next bus
// transaction is needed and return the compute time consumed.
func (p *Processor) NextThink(src *rng.Source) float64 {
	if p.fillPending {
		// The write-back finished; the fill goes out immediately.
		p.fillPending = false
		return 0
	}
	think := 0.0
	for {
		think += p.CyclePerRef
		p.References++
		addr, write := p.Pattern.Next(src)
		res := p.Cache.Access(addr, write)
		if res.Hit {
			continue
		}
		if res.Writeback {
			p.fillPending = true
		}
		return think
	}
}

// MeanHint implements bussim.ThinkSource; the mean think time is not
// known a priori (it depends on cache behavior).
func (p *Processor) MeanHint() float64 { return 0 }

// MachineConfig assembles a shared-bus multiprocessor.
type MachineConfig struct {
	Processors []*Processor
	Protocol   core.Factory
	Seed       uint64
	Batches    int
	BatchSize  int
	// Observer, if non-nil, receives the underlying bus's event stream
	// plus one CacheMiss event per processor cache miss (emitted at the
	// time the miss's fill request reaches the bus).
	Observer obs.Probe
	// Horizon, when positive, ends the run once the simulated clock
	// reaches it, forwarded to the underlying bussim run.
	Horizon float64
}

// Validate checks the configuration without running it; Run panics on
// exactly these errors.
func (cfg MachineConfig) Validate() error {
	if len(cfg.Processors) < 2 {
		return fmt.Errorf("mp: need at least two processors, got %d", len(cfg.Processors))
	}
	for i, p := range cfg.Processors {
		if p.Cache == nil || p.Pattern == nil || p.CyclePerRef <= 0 {
			return fmt.Errorf("mp: processor %d incompletely configured", i+1)
		}
	}
	if cfg.Protocol == nil {
		return fmt.Errorf("mp: Protocol factory is required")
	}
	if cfg.Horizon < 0 {
		return fmt.Errorf("mp: negative Horizon %v", cfg.Horizon)
	}
	return nil
}

// missProbe forwards the bus event stream and inserts a CacheMiss
// event for each request that is a miss fill (write-backs precede
// their fill, so gating on fillPending yields exactly one CacheMiss
// per processor cache miss).
type missProbe struct {
	next  obs.Probe
	procs []*Processor
}

func (m *missProbe) OnEvent(e obs.Event) {
	m.next.OnEvent(e)
	if e.Kind == obs.RequestIssued && e.Agent >= 1 && e.Agent <= len(m.procs) {
		if !m.procs[e.Agent-1].fillPending {
			m.next.OnEvent(obs.Event{Time: e.Time, Kind: obs.CacheMiss, Agent: e.Agent})
		}
	}
}

// MachineResult couples the bus-level measurements with per-processor
// application-level progress.
type MachineResult struct {
	Bus *bussim.Result
	// Progress[i] is processor i+1's executed references per unit time.
	Progress []float64
	// MissRate[i] is processor i+1's cache miss ratio.
	MissRate []float64
}

// Summary implements the cross-simulator Report surface.
func (r *MachineResult) Summary() obs.Summary {
	s := r.Bus.Summary()
	s.Simulator = "mp"
	return s
}

// SlowestRelative returns the slowest processor's progress relative to
// the mean — the §2.3 number that bounds tightly coupled parallel
// programs.
func (r *MachineResult) SlowestRelative() float64 {
	if len(r.Progress) == 0 {
		return 0
	}
	minP, sum := r.Progress[0], 0.0
	for _, p := range r.Progress {
		if p < minP {
			minP = p
		}
		sum += p
	}
	mean := sum / float64(len(r.Progress))
	if mean == 0 {
		return 0
	}
	return minP / mean
}

// Run simulates the machine.
func Run(cfg MachineConfig) *MachineResult {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := len(cfg.Processors)
	sources := make([]bussim.ThinkSource, n)
	for i, p := range cfg.Processors {
		p.ID = i + 1
		sources[i] = p
	}
	observer := cfg.Observer
	if observer != nil {
		observer = &missProbe{next: observer, procs: cfg.Processors}
	}
	bres := bussim.Run(bussim.Config{
		N:         n,
		Protocol:  cfg.Protocol,
		Sources:   sources,
		Seed:      cfg.Seed,
		Batches:   cfg.Batches,
		BatchSize: cfg.BatchSize,
		Observer:  observer,
		Horizon:   cfg.Horizon,
	})
	res := &MachineResult{
		Bus:      bres,
		Progress: make([]float64, n),
		MissRate: make([]float64, n),
	}
	// Progress per unit time over the whole run: references accumulate
	// from time zero, so divide by the full simulated span.
	total := bres.WallTime
	if total <= 0 {
		total = 1
	}
	for i, p := range cfg.Processors {
		res.Progress[i] = float64(p.References) / total
		res.MissRate[i] = p.Cache.MissRate()
	}
	return res
}
