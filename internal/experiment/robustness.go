package experiment

import (
	"fmt"
	"strings"

	"busarb/internal/core"
	"busarb/internal/rng"
)

// The paper's robustness claim (§1, §3): static-identity protocols are
// "more robust ... than previous distributed RR protocols that are
// based on rotating agent priorities". This study injects register
// faults into both schemes on a saturated bus and measures what the
// claim predicts: the rotating scheme accumulates arbitration
// collisions and permanent unfairness, the static scheme heals.

// RobustnessRow is one fault-rate point.
type RobustnessRow struct {
	// FaultEvery is the injection period in grants (0 = no faults).
	FaultEvery int
	// CollisionsRot is the rotating scheme's collision count over the
	// measured grants.
	CollisionsRot int64
	// FairnessRot and FairnessRR are min/max grant-count ratios across
	// agents (1.0 = perfectly fair).
	FairnessRot float64
	FairnessRR  float64
}

// Robustness runs the fault-injection comparison on an n-agent
// saturated bus for the given number of grants per fault period.
func Robustness(n, grants int, faultPeriods []int, seed uint64) []RobustnessRow {
	rows := make([]RobustnessRow, 0, len(faultPeriods))
	for _, period := range faultPeriods {
		rot := core.NewRotatingRR(n)
		rr := core.NewRR1(n)
		src := rng.New(seed)
		rotCounts := saturatedWithFaults(rot, n, grants, period, src,
			func(agent int) { rot.Corrupt(agent, 1+src.Intn(n)) })
		rrCounts := saturatedWithFaults(rr, n, grants, period, src,
			func(int) { rr.SetLastWinner(1 + src.Intn(n)) })
		rows = append(rows, RobustnessRow{
			FaultEvery:    period,
			CollisionsRot: rot.Collisions,
			FairnessRot:   minMaxRatio(rotCounts),
			FairnessRR:    minMaxRatio(rrCounts),
		})
	}
	return rows
}

// saturatedWithFaults drives a protocol at saturation (every agent
// re-requests immediately after service), injecting a fault every
// `period` grants (0 disables), and returns per-agent grant counts.
func saturatedWithFaults(p core.Protocol, n, grants, period int, src *rng.Source, inject func(agent int)) []int {
	waiting := make([]int, 0, n)
	for id := 1; id <= n; id++ {
		waiting = append(waiting, id)
		p.OnRequest(id, float64(id))
	}
	counts := make([]int, n+1)
	now := float64(n)
	for g := 0; g < grants; g++ {
		if period > 0 && g%period == period-1 {
			inject(1 + src.Intn(n))
		}
		var w int
		for pass := 0; ; pass++ {
			out := p.Arbitrate(waiting)
			if !out.Repass {
				w = out.Winner
				break
			}
			if pass > 2 {
				panic("experiment: runaway repass")
			}
		}
		now++
		p.OnServiceStart(w, now)
		counts[w]++
		// Saturated: the served agent requests again immediately.
		p.OnRequest(w, now)
	}
	return counts[1:]
}

func minMaxRatio(counts []int) float64 {
	lo, hi := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi == 0 {
		return 1
	}
	return float64(lo) / float64(hi)
}

// FormatRobustness renders the study.
func FormatRobustness(n, grants int, rows []RobustnessRow) string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Robustness under register faults (%d agents, %d grants, saturated)", n, grants))
	b.WriteString("  fault every   RotRR collisions   RotRR fairness   RR1 fairness\n")
	for _, r := range rows {
		period := "never"
		if r.FaultEvery > 0 {
			period = fmt.Sprintf("%d", r.FaultEvery)
		}
		fmt.Fprintf(&b, "  %11s   %16d   %14.2f   %12.2f\n",
			period, r.CollisionsRot, r.FairnessRot, r.FairnessRR)
	}
	b.WriteString("\n  (fairness = min/max grant share across agents; 1.00 is perfect.\n")
	b.WriteString("   A fault corrupts one agent's winner/rotation register: the static\n")
	b.WriteString("   scheme re-reads ground truth from the lines next arbitration, the\n")
	b.WriteString("   rotating scheme decodes through its broken base forever.)\n")
	return b.String()
}
