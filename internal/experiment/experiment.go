// Package experiment regenerates every table and figure in the paper's
// evaluation section (§4): each Table/Figure function runs the required
// simulations and returns structured rows; the Format functions render
// them in the paper's layout. The cmd/paper binary and the repository's
// benchmark suite are thin wrappers around this package.
package experiment

import (
	"math"
	"sync"

	"busarb/internal/bussim"
	"busarb/internal/core"
	"busarb/internal/stats"
	"busarb/internal/workload"
)

// Opts configures the statistical effort of an experiment run.
type Opts struct {
	// Batches and BatchSize control the batch-means analysis. Zero
	// values mean the paper's 10 × 8000. Benchmarks pass smaller sizes.
	Batches   int
	BatchSize int
	// Seed selects the random streams (default 1988, the paper's year).
	// A zero Seed means "use the default" unless SeedSet is true: the
	// zero seed is a legitimate stream, so callers that really want it
	// set SeedSet (CLIs set it whenever -seed was given explicitly).
	Seed    uint64
	SeedSet bool
	// Parallel runs the independent simulations of a table across this
	// many goroutines (0 or 1 = sequential). Results are identical
	// regardless: every run is seeded independently.
	Parallel int
}

func (o Opts) fill() Opts {
	if o.Batches == 0 {
		o.Batches = 10
	}
	if o.BatchSize == 0 {
		o.BatchSize = 8000
	}
	if o.Seed == 0 && !o.SeedSet {
		o.Seed = 1988
	}
	if o.Parallel < 1 {
		o.Parallel = 1
	}
	return o
}

// ForEach runs fn(i) for i in [0, n), using o.Parallel workers. Each fn
// must write only to its own index (or otherwise avoid shared state), so
// no synchronization beyond the final wait is needed. It is exported so
// CLI front ends (cmd/arbsim -compare) can reuse the same worker pool
// for their own independent simulation fans.
func (o Opts) ForEach(n int, fn func(i int)) {
	if o.Parallel <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, o.Parallel)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i)
		}()
	}
	wg.Wait()
}

// PaperLoads is the offered-load grid used throughout §4.
var PaperLoads = []float64{0.25, 0.50, 1.00, 1.50, 2.00, 2.50, 5.00, 7.50}

// PaperSizes is the set of system sizes used throughout §4.
var PaperSizes = []int{10, 30, 64}

// protoRR is the RR implementation used for the performance tables (all
// three give identical schedules; RR1 is the paper's primary proposal).
func protoRR(n int) core.Protocol { return core.NewRR1(n) }

// protoFCFS1 is the simple FCFS implementation whose residual unfairness
// Table 4.1 quantifies.
func protoFCFS1(n int) core.Protocol { return core.NewFCFS1(n) }

// protoFCFS2 is the accurate (a-incr) FCFS implementation used where the
// paper studies "the FCFS protocol" proper (Tables 4.2–4.4, Figure 4.1).
func protoFCFS2(n int) core.Protocol { return core.NewFCFS2(n) }

func protoAAP1(n int) core.Protocol { return core.NewAAP1(n) }

func run(sc workload.Scenario, proto core.Factory, o Opts, collect bool) *bussim.Result {
	cfg := bussim.Config{
		Protocol:     proto,
		Seed:         o.Seed,
		Batches:      o.Batches,
		BatchSize:    o.BatchSize,
		CollectWaits: collect,
	}
	sc.Apply(&cfg)
	return bussim.Run(cfg)
}

// ---------------------------------------------------------------------
// Table 4.1: Allocation of bus bandwidth among agents with equal
// request rates — ratio of the highest-identity agent's throughput to
// the lowest-identity agent's, for RR and the simple FCFS; the 30-agent
// variant adds the first assured access protocol for comparison.

// Table41Row is one load point of Table 4.1.
type Table41Row struct {
	Load      float64         // total offered load
	Lambda    float64         // measured total throughput (bus utilization)
	RatioRR   stats.Estimate  // t_N / t_1 under RR
	RatioFCFS stats.Estimate  // t_N / t_1 under simple FCFS
	RatioAAP  *stats.Estimate // t_N / t_1 under AAP1 (n=30 only in the paper)
}

// Table41 reproduces Table 4.1 for the given system size. includeAAP
// adds the assured-access column the paper shows for 30 agents.
func Table41(n int, includeAAP bool, o Opts) []Table41Row {
	o = o.fill()
	rows := make([]Table41Row, len(PaperLoads))
	o.ForEach(len(PaperLoads), func(i int) {
		load := PaperLoads[i]
		sc := workload.Equal(n, load, 1.0)
		rr := run(sc, protoRR, o, false)
		fc := run(sc, protoFCFS1, o, false)
		row := Table41Row{
			Load:      load,
			Lambda:    rr.Throughput.Mean,
			RatioRR:   rr.ThroughputRatio(n, 1),
			RatioFCFS: fc.ThroughputRatio(n, 1),
		}
		if includeAAP {
			aap := run(sc, protoAAP1, o, false)
			r := aap.ThroughputRatio(n, 1)
			row.RatioAAP = &r
		}
		rows[i] = row
	})
	return rows
}

// ---------------------------------------------------------------------
// Table 4.2: Standard deviation of the waiting time for FCFS and RR.

// Table42Row is one load point of Table 4.2.
type Table42Row struct {
	Load    float64
	W       float64        // mean waiting (residence) time — equal for both
	SDFCFS  stats.Estimate // σ_W under FCFS
	SDRR    stats.Estimate // σ_W under RR
	SDRatio stats.Estimate // σ_RR / σ_FCFS
}

// Table42 reproduces Table 4.2 for the given system size.
func Table42(n int, o Opts) []Table42Row {
	o = o.fill()
	rows := make([]Table42Row, len(PaperLoads))
	o.ForEach(len(PaperLoads), func(i int) {
		load := PaperLoads[i]
		sc := workload.Equal(n, load, 1.0)
		rr := run(sc, protoRR, o, false)
		fc := run(sc, protoFCFS2, o, false)
		rows[i] = Table42Row{
			Load:   load,
			W:      rr.WaitMean.Mean,
			SDFCFS: fc.WaitStdDev,
			SDRR:   rr.WaitStdDev,
			SDRatio: stats.Estimate{
				Mean:     rr.WaitStdDev.Mean / fc.WaitStdDev.Mean,
				HalfW:    ratioHalfWidth(rr.WaitStdDev, fc.WaitStdDev),
				NBatches: rr.WaitStdDev.NBatches,
			},
		}
	})
	return rows
}

// ratioHalfWidth propagates CI half-widths through a ratio via the
// first-order delta method.
func ratioHalfWidth(num, den stats.Estimate) float64 {
	if den.Mean == 0 {
		return math.NaN()
	}
	r := num.Mean / den.Mean
	a := num.HalfW / num.Mean
	b := den.HalfW / den.Mean
	return math.Abs(r) * math.Sqrt(a*a+b*b)
}

// ---------------------------------------------------------------------
// Figure 4.1: CDF of the bus waiting time for RR and FCFS
// (30 agents, load 1.5).

// FigurePoint is one x of Figure 4.1 with both protocols' CDF values.
type FigurePoint struct {
	X    float64
	RR   float64
	FCFS float64
}

// Figure41Result carries the two waiting-time CDFs and their means.
type Figure41Result struct {
	N      int
	Load   float64
	W      float64 // common mean waiting time
	Points []FigurePoint
}

// Figure41 reproduces Figure 4.1: the waiting-time CDFs of RR and FCFS
// for n agents at the given load (the paper uses n=30, load=1.5).
func Figure41(n int, load float64, o Opts) Figure41Result {
	o = o.fill()
	sc := workload.Equal(n, load, 1.0)
	rr := run(sc, protoRR, o, true)
	fc := run(sc, protoFCFS2, o, true)
	maxX := rr.WaitPooled.Mean() * 3
	step := maxX / 60
	res := Figure41Result{N: n, Load: load, W: rr.WaitPooled.Mean()}
	for x := step; x <= maxX+1e-9; x += step {
		res.Points = append(res.Points, FigurePoint{
			X:    x,
			RR:   rr.Waits.P(x),
			FCFS: fc.Waits.P(x),
		})
	}
	return res
}

// ---------------------------------------------------------------------
// Table 4.3: Performance comparison for execution overlapped with bus
// waiting times. The overlap value is the minimum integer x at which
// CDF_RR(x) < CDF_FCFS(x); the overlapped execution per request is
// min(overlap, waiting time); productivity is the mean time spent
// executing productively between bus requests over the mean time
// between bus requests.

// Table43Row is one load point of Table 4.3.
type Table43Row struct {
	Load     float64
	W        float64 // total mean waiting time (including overlapped execution)
	WNetRR   float64 // mean bus waiting after subtracting overlapped execution, RR
	WNetFCFS float64 // same, FCFS
	ProdRR   float64
	ProdFCFS float64
	Overlap  float64
}

// Table43 reproduces Table 4.3 for the given system size.
func Table43(n int, o Opts) []Table43Row {
	o = o.fill()
	rows := make([]Table43Row, len(PaperLoads))
	o.ForEach(len(PaperLoads), func(i int) {
		load := PaperLoads[i]
		sc := workload.Equal(n, load, 1.0)
		rr := run(sc, protoRR, o, true)
		fc := run(sc, protoFCFS2, o, true)
		ov := overlapValue(rr.Waits, fc.Waits)
		inter := rr.MeanInter
		wRR, wFC := rr.Waits.Mean(), fc.Waits.Mean()
		ovRR, ovFC := rr.Waits.MeanMin(ov), fc.Waits.MeanMin(ov)
		rows[i] = Table43Row{
			Load:     load,
			W:        wRR,
			WNetRR:   wRR - ovRR,
			WNetFCFS: wFC - ovFC,
			ProdRR:   (inter + ovRR) / (inter + wRR),
			ProdFCFS: (inter + ovFC) / (inter + wFC),
			Overlap:  ov,
		}
	})
	return rows
}

// overlapValue finds the minimum integer x >= 1 at which the RR CDF lies
// below the FCFS CDF — the paper's choice of execution overlap that
// maximizes FCFS's advantage. The gap must exceed a small threshold so
// that sampling noise in the near-empty lower tail (where both CDFs are
// ~0) cannot produce a spurious low crossing; the genuine crossing sits
// just above the mean waiting time, matching the paper's overlap
// columns (≈ W+1 at high load). Returns the waiting-time mean's ceiling
// if no crossing exists within 3x the mean (degenerate extreme loads).
func overlapValue(rr, fcfs *stats.ECDF) float64 {
	const gap = 0.01
	limit := int(math.Ceil(rr.Mean()*3)) + 2
	for x := 1; x <= limit; x++ {
		fx := float64(x)
		if fcfs.P(fx)-rr.P(fx) > gap {
			return fx
		}
	}
	return math.Ceil(rr.Mean())
}

// ---------------------------------------------------------------------
// Table 4.4: Allocation of bus bandwidth among agents with unequal
// loads: agent 1 offers `factor` times the load of each other agent.

// Table44Row is one load point of Table 4.4.
type Table44Row struct {
	Load      float64 // total offered load (the paper's first column)
	Lambda    float64 // bus utilization
	LoadRatio float64 // Load_1 / Load_2 = factor
	RatioRR   stats.Estimate
	RatioFCFS stats.Estimate
}

// Table44 reproduces Table 4.4 for 30 agents with the given rate factor
// (2 for Table 4.4(a), 4 for 4.4(b)).
func Table44(n int, factor float64, o Opts) []Table44Row {
	o = o.fill()
	var feasible []float64
	for _, base := range PaperLoads {
		// Skip grid points where the scaled agent alone would exceed
		// unit offered load (cannot happen for the paper's n=30).
		if factor*base/float64(n) < 1 {
			feasible = append(feasible, base)
		}
	}
	rows := make([]Table44Row, len(feasible))
	o.ForEach(len(feasible), func(i int) {
		sc := workload.OneScaled(n, feasible[i], factor, 1.0)
		rr := run(sc, protoRR, o, false)
		fc := run(sc, protoFCFS2, o, false)
		rows[i] = Table44Row{
			Load:      sc.TotalLoad,
			Lambda:    rr.Throughput.Mean,
			LoadRatio: factor,
			RatioRR:   rr.ThroughputRatio(1, 2),
			RatioFCFS: fc.ThroughputRatio(1, 2),
		}
	})
	return rows
}

// ---------------------------------------------------------------------
// Table 4.5: Worst-case bus allocation for RR — the "just miss"
// scenario, swept over the interrequest-time coefficient of variation.

// PaperCVs is the CV sweep of Table 4.5.
var PaperCVs = []float64{0.0, 0.10, 0.25, 0.33, 0.50, 1.00}

// Table45Row is one CV point of Table 4.5.
type Table45Row struct {
	CV        float64
	LoadRatio float64        // Load_slow / Load_other
	Ratio     stats.Estimate // t_slow / t_other under RR
}

// Table45 reproduces Table 4.5 for the given system size.
func Table45(n int, o Opts) []Table45Row {
	o = o.fill()
	rows := make([]Table45Row, len(PaperCVs))
	o.ForEach(len(PaperCVs), func(i int) {
		sc := workload.WorstCaseRR(n, PaperCVs[i])
		rr := run(sc, protoRR, o, false)
		// Throughput ratio of the slow agent (id 1) to a representative
		// regular agent (id 2).
		rows[i] = Table45Row{
			CV:        PaperCVs[i],
			LoadRatio: workload.LoadRatioWorstCase(n),
			Ratio:     rr.ThroughputRatio(1, 2),
		}
	})
	return rows
}
