package experiment

import (
	"fmt"
	"strings"

	"busarb/internal/analytic"
	"busarb/internal/ident"
)

// The paper's thesis (§1, §5) is that the proposed protocols have "a
// better combination of efficiency, cost, and fairness characteristics"
// than existing arbiters. CostTable assembles that comparison for a
// given system size: bus lines beyond the basic arbiter, arbitration
// delay (proportional to the identity width under Taub's k/2 bound),
// per-agent logic, and the verified fairness bound.

// CostRow summarizes one protocol's implementation cost.
type CostRow struct {
	Protocol string
	// ExtraLines is the count of bus lines beyond the basic parallel
	// contention arbiter's ceil(log2(N+1)) arbitration lines.
	ExtraLines int
	// IdentityBits is the full arbitration-number width, which sets the
	// arbitration delay under the k/2 settle bound.
	IdentityBits int
	// SettleBound is Taub's bound in end-to-end propagation delays.
	SettleBound float64
	// Logic sketches the per-agent hardware beyond the arbiter itself.
	Logic string
	// FairnessBound is the proven bypass bound for a continuously
	// waiting agent (N = agents); "unbounded" marks starvation-prone
	// protocols. See internal/verify for the exhaustive proofs.
	FairnessBound string
}

// CostTable builds the §1/§3/§5 cost-and-fairness comparison for n
// agents.
func CostTable(n int) []CostRow {
	k := ident.Width(n)
	row := func(proto string, extra, bits int, logic, fair string) CostRow {
		return CostRow{
			Protocol:      proto,
			ExtraLines:    extra,
			IdentityBits:  bits,
			SettleBound:   analytic.TaubSettleBound(bits),
			Logic:         logic,
			FairnessBound: fair,
		}
	}
	return []CostRow{
		row("FP", 0, k, "none", "unbounded (starves low identities)"),
		row("AAP1", 0, k, "batch flag, request-line edge detect", "2(N-1)"),
		row("AAP2", 0, k, "inhibit flag, release detect", "2(N-1)"),
		row("RR1", 1, k+1, "winner register + comparator", "N-1"),
		row("RR2", 1, k, "winner register + comparator, low-request line", "N-1"),
		row("RR3", 0, k, "winner register + comparator; occasional empty pass", "N-1"),
		row("FCFS1", k, 2*k, "modulo-N counter (count on lose, clear on win)", "N-1"),
		row("FCFS2", k+1, 2*k, "counter + a-incr pulse logic", "N-1"),
		row("Ticket", 2*k, 3*k, "shared ticket dispenser; one extra bus operation per request", "N-1"),
		row("RotRR", 0, k, "rotation base register; no ground truth on the lines (fragile)", "N-1 (healthy only)"),
	}
}

// FormatCostTable renders the comparison.
func FormatCostTable(n int, rows []CostRow) string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Protocol cost and fairness comparison (%d agents, k = %d lines)", n, ident.Width(n)))
	b.WriteString("  Proto   +lines  id bits  settle   fairness bound\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-6s  %6d  %7d  %5.1fT   %s\n",
			r.Protocol, r.ExtraLines, r.IdentityBits, r.SettleBound, r.FairnessBound)
	}
	b.WriteString("\n  (settle in end-to-end bus propagation delays T, Taub's k/2 bound;\n")
	b.WriteString("   per-agent logic: ")
	for i, r := range rows {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s: %s", r.Protocol, r.Logic)
	}
	b.WriteString(")\n")
	return b.String()
}
