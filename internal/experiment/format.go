package experiment

import (
	"fmt"
	"strings"
)

// Format helpers render experiment results in the paper's table layout,
// for cmd/paper and EXPERIMENTS.md.

func header(b *strings.Builder, title string) {
	b.WriteString(title)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", len(title)))
	b.WriteByte('\n')
}

// FormatTable41 renders Table 4.1 rows.
func FormatTable41(n int, rows []Table41Row) string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Table 4.1 (%d agents): bandwidth allocation, equal request rates", n))
	b.WriteString("  Load     λ      tN/t1 RR        tN/t1 FCFS")
	if rows[0].RatioAAP != nil {
		b.WriteString("      tN/t1 AAP")
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "  %4.2f   %4.2f   %-14s  %-14s", r.Load, r.Lambda, r.RatioRR, r.RatioFCFS)
		if r.RatioAAP != nil {
			fmt.Fprintf(&b, "  %-14s", *r.RatioAAP)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTable42 renders Table 4.2 rows.
func FormatTable42(n int, rows []Table42Row) string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Table 4.2 (%d agents): waiting time standard deviation", n))
	b.WriteString("  Load     W       σW FCFS         σW RR           σRR/σFCFS\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %4.2f  %6.2f   %-14s  %-14s  %-14s\n",
			r.Load, r.W, r.SDFCFS, r.SDRR, r.SDRatio)
	}
	return b.String()
}

// FormatFigure41 renders Figure 4.1 as an ASCII plot plus a data table.
func FormatFigure41(f Figure41Result) string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Figure 4.1: CDF of bus waiting time (%d agents, load = %.1f, W = %.2f)", f.N, f.Load, f.W))
	b.WriteString("      x      CDF RR   CDF FCFS\n")
	for i, p := range f.Points {
		// Thin the table: every 4th point.
		if i%4 != 0 {
			continue
		}
		fmt.Fprintf(&b, "  %7.2f   %6.3f   %6.3f\n", p.X, p.RR, p.FCFS)
	}
	b.WriteByte('\n')
	b.WriteString(asciiCDF(f))
	return b.String()
}

// asciiCDF draws both CDFs in a fixed-size character grid: 'R' marks the
// RR curve, 'F' the FCFS curve, '*' where they coincide.
func asciiCDF(f Figure41Result) string {
	const height = 20
	width := len(f.Points)
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plot := func(vals func(FigurePoint) float64, mark byte) {
		for x, p := range f.Points {
			y := int(vals(p) * float64(height-1))
			if y < 0 {
				y = 0
			}
			if y >= height {
				y = height - 1
			}
			row := height - 1 - y
			switch grid[row][x] {
			case ' ':
				grid[row][x] = mark
			default:
				grid[row][x] = '*'
			}
		}
	}
	plot(func(p FigurePoint) float64 { return p.RR }, 'R')
	plot(func(p FigurePoint) float64 { return p.FCFS }, 'F')
	var b strings.Builder
	b.WriteString("  1.0 +" + strings.Repeat("-", width) + "\n")
	for i, row := range grid {
		label := "      "
		if i == height-1 {
			label = "  0.0 "
		} else if i == height/2 {
			label = "  0.5 "
		}
		b.WriteString(label + "|" + string(row) + "\n")
	}
	fmt.Fprintf(&b, "        0%sx -> %.1f  (R = RR, F = FCFS, * = both)\n",
		strings.Repeat(" ", width-12), f.Points[len(f.Points)-1].X)
	return b.String()
}

// FormatTable43 renders Table 4.3 rows.
func FormatTable43(n int, rows []Table43Row) string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Table 4.3 (%d agents): execution overlapped with bus waiting", n))
	b.WriteString("  Load     W      W-ov RR   W-ov FCFS   Prod RR   Prod FCFS   Overlap\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %4.2f  %6.2f   %7.2f   %9.2f   %7.2f   %9.2f   %7.1f\n",
			r.Load, r.W, r.WNetRR, r.WNetFCFS, r.ProdRR, r.ProdFCFS, r.Overlap)
	}
	return b.String()
}

// FormatTable44 renders Table 4.4 rows.
func FormatTable44(n int, factor float64, rows []Table44Row) string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Table 4.4 (%d agents): one agent at %.0fx request rate", n, factor))
	b.WriteString("  Load     λ     L1/L2    t1/t2 RR        t1/t2 FCFS\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %4.2f   %4.2f   %4.2f   %-14s  %-14s\n",
			r.Load, r.Lambda, r.LoadRatio, r.RatioRR, r.RatioFCFS)
	}
	return b.String()
}

// FormatTable45 renders Table 4.5 rows.
func FormatTable45(n int, rows []Table45Row) string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Table 4.5 (%d agents): worst-case bus allocation for RR", n))
	b.WriteString("   CV    Lslow/Lother    tslow/tother\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %4.2f   %10.2f      %-14s\n", r.CV, r.LoadRatio, r.Ratio)
	}
	return b.String()
}
