package experiment

import (
	"strings"
	"testing"
)

func TestPriorityStudy(t *testing.T) {
	rows := PriorityStudy(10, 2.0, []float64{0.1, 0.5},
		Opts{Batches: 6, BatchSize: 1000, Seed: 31})
	if len(rows) != len(PriorityVariants)*2 {
		t.Fatalf("rows = %d", len(rows))
	}
	sawOverflow := false
	for _, r := range rows {
		// Urgent requests always wait less than normal ones on a loaded
		// bus, under every integration variant.
		if r.WUrgent >= r.WNormal {
			t.Errorf("%s urgent %.0f%%: W urgent %v >= W normal %v",
				r.Variant, 100*r.UrgentFrac, r.WUrgent, r.WNormal)
		}
		if r.OverflowPerGrant > 0 {
			if r.Variant != "FCFS1+prio/overflow" {
				t.Errorf("%s reported overflows", r.Variant)
			}
			sawOverflow = true
		}
	}
	// At 50% urgent traffic on a saturated bus, the overflow policy's
	// counters do wrap — quantifying the §3.2 hazard.
	if !sawOverflow {
		t.Error("overflow policy never overflowed at 50% urgent load (implausible)")
	}
	// Higher urgent fraction reduces the urgent advantage (more peers in
	// the high class).
	byKey := map[string]PriorityRow{}
	for _, r := range rows {
		byKey[r.Variant+f(r.UrgentFrac)] = r
	}
	lo := byKey["RR1+prio"+f(0.1)]
	hi := byKey["RR1+prio"+f(0.5)]
	if lo.WUrgent >= hi.WUrgent {
		t.Errorf("urgent wait should grow with urgent share: %v -> %v", lo.WUrgent, hi.WUrgent)
	}
}

func f(v float64) string {
	if v == 0.1 {
		return "lo"
	}
	return "hi"
}

func TestFormatPriorityStudy(t *testing.T) {
	rows := PriorityStudy(8, 1.5, []float64{0.2}, Opts{Batches: 3, BatchSize: 300, Seed: 2})
	out := FormatPriorityStudy(8, 1.5, rows)
	for _, want := range []string{"Priority integration", "W urgent", "overflow/grant", "RR1+prio"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
