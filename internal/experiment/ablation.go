package experiment

import (
	"busarb/internal/bussim"
	"busarb/internal/core"
	"busarb/internal/ident"
	"busarb/internal/stats"
	"busarb/internal/workload"
)

// Ablation studies for the design choices DESIGN.md calls out. These go
// beyond the paper's tables: they quantify statements the paper makes in
// passing ("fewer bits should implement nearly ideal FCFS when the bus
// is not saturated", RR3 is "somewhat less efficient", the §5 hybrid).

// CounterBitsRow measures the simple FCFS implementation with a reduced
// waiting-time-counter width.
type CounterBitsRow struct {
	Bits     int
	Ratio    stats.Estimate // t_N / t_1 unfairness
	WaitSD   stats.Estimate // waiting-time σ (FCFS-ness indicator)
	WaitMean stats.Estimate
}

// AblationCounterBits sweeps the FCFS1 counter width from 1 bit to the
// full ceil(log2 N) at the given load (§3.2's size/accuracy trade-off).
func AblationCounterBits(n int, load float64, o Opts) []CounterBitsRow {
	o = o.fill()
	full := ident.Width(n)
	rows := make([]CounterBitsRow, 0, full)
	for bits := 1; bits <= full; bits++ {
		bits := bits
		sc := workload.Equal(n, load, 1.0)
		r := run(sc, func(m int) core.Protocol { return core.NewFCFS1Bits(m, bits) }, o, false)
		rows = append(rows, CounterBitsRow{
			Bits:     bits,
			Ratio:    r.ThroughputRatio(n, 1),
			WaitSD:   r.WaitStdDev,
			WaitMean: r.WaitMean,
		})
	}
	return rows
}

// HybridRow compares a protocol's fairness and waiting-time variance at
// one load.
type HybridRow struct {
	Protocol string
	Ratio    stats.Estimate
	WaitSD   stats.Estimate
}

// AblationHybrid compares the §5 hybrid against pure RR and pure FCFS:
// the hybrid should combine FCFS's low variance with RR's fairness on
// simultaneous arrivals.
func AblationHybrid(n int, load float64, o Opts) []HybridRow {
	o = o.fill()
	sc := workload.Equal(n, load, 1.0)
	var rows []HybridRow
	for _, f := range []core.Factory{protoRR, protoFCFS2,
		func(m int) core.Protocol { return core.NewHybrid(m) }} {
		r := run(sc, f, o, false)
		rows = append(rows, HybridRow{
			Protocol: r.ProtocolName,
			Ratio:    r.ThroughputRatio(n, 1),
			WaitSD:   r.WaitStdDev,
		})
	}
	return rows
}

// RR3CostRow quantifies the efficiency loss of RR3's empty passes.
type RR3CostRow struct {
	Load             float64
	WaitRR1          float64
	WaitRR3          float64
	RepassesPerGrant float64
}

// AblationRR3 measures RR3's extra arbitration passes and their waiting
// time cost against RR1 across the load grid.
func AblationRR3(n int, o Opts) []RR3CostRow {
	o = o.fill()
	rows := make([]RR3CostRow, 0, len(PaperLoads))
	for _, load := range PaperLoads {
		sc := workload.Equal(n, load, 1.0)
		r1 := run(sc, protoRR, o, false)
		r3 := run(sc, func(m int) core.Protocol { return core.NewRR3(m) }, o, false)
		rows = append(rows, RR3CostRow{
			Load:             load,
			WaitRR1:          r1.WaitMean.Mean,
			WaitRR3:          r3.WaitMean.Mean,
			RepassesPerGrant: float64(r3.Repasses) / float64(r3.Completions),
		})
	}
	return rows
}

// SnapshotRow compares request-line snapshot arbitration against the
// late-join ablation.
type SnapshotRow struct {
	Load         float64
	WaitSnapshot float64
	WaitLateJoin float64
}

// AblationSnapshot measures the effect of letting requests join an
// in-flight arbitration (LateJoin) under FCFS1, where joining late can
// only help the newly arrived request.
func AblationSnapshot(n int, o Opts) []SnapshotRow {
	o = o.fill()
	rows := make([]SnapshotRow, 0, len(PaperLoads))
	for _, load := range PaperLoads {
		sc := workload.Equal(n, load, 1.0)
		mk := func(late bool) *bussim.Result {
			cfg := bussim.Config{
				Protocol:  protoFCFS1,
				Seed:      o.Seed,
				Batches:   o.Batches,
				BatchSize: o.BatchSize,
				LateJoin:  late,
			}
			sc.Apply(&cfg)
			return bussim.Run(cfg)
		}
		rows = append(rows, SnapshotRow{
			Load:         load,
			WaitSnapshot: mk(false).WaitMean.Mean,
			WaitLateJoin: mk(true).WaitMean.Mean,
		})
	}
	return rows
}
