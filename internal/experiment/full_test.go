package experiment

import (
	"math"
	"testing"
)

// TestFullEffortTable42aRegression reruns Table 4.2(a) at the paper's
// full statistical effort (10 batches x 8000 completions) and compares
// against the published values with tight tolerances. It takes ~20s, so
// it is skipped under -short; the regular shape tests cover the same
// ground at reduced effort.
func TestFullEffortTable42aRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("full-effort regression skipped in -short mode")
	}
	paper := []struct {
		load, w, sdFCFS, sdRR float64
	}{
		{0.25, 1.64, 0.33, 0.33},
		{0.50, 1.85, 0.56, 0.58},
		{1.00, 2.77, 1.18, 1.30},
		{1.50, 4.47, 1.54, 1.94},
		{2.00, 6.00, 1.43, 2.09},
		{2.50, 7.00, 1.25, 2.02},
		{5.00, 9.00, 0.71, 0.99},
		{7.50, 9.67, 0.32, 0.33},
	}
	rows := Table42(10, Opts{Batches: 10, BatchSize: 8000, Seed: 1988, Parallel: 4})
	if len(rows) != len(paper) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, p := range paper {
		r := rows[i]
		if rel := math.Abs(r.W-p.w) / p.w; rel > 0.03 {
			t.Errorf("load %v: W = %.3f, paper %.2f (%.1f%% off)", p.load, r.W, p.w, 100*rel)
		}
		if rel := math.Abs(r.SDRR.Mean-p.sdRR) / p.sdRR; rel > 0.08 {
			t.Errorf("load %v: σ_RR = %.3f, paper %.2f", p.load, r.SDRR.Mean, p.sdRR)
		}
		if rel := math.Abs(r.SDFCFS.Mean-p.sdFCFS) / p.sdFCFS; rel > 0.10 {
			t.Errorf("load %v: σ_FCFS = %.3f, paper %.2f", p.load, r.SDFCFS.Mean, p.sdFCFS)
		}
	}
}

// TestFullEffortTable45Regression verifies the §4.5 headline numbers at
// full effort: the slow agent's ratio is 0.50 at CV=0 for every system
// size and recovers to the published levels at CV=0.1.
func TestFullEffortTable45Regression(t *testing.T) {
	if testing.Short() {
		t.Skip("full-effort regression skipped in -short mode")
	}
	recovery := map[int]float64{10: 0.76, 30: 0.91, 64: 0.96}
	for _, n := range []int{10, 30, 64} {
		rows := Table45(n, Opts{Batches: 10, BatchSize: 4000, Seed: 1988, Parallel: 4})
		if math.Abs(rows[0].Ratio.Mean-0.50) > 0.02 {
			t.Errorf("n=%d CV=0: ratio %.3f, paper 0.50", n, rows[0].Ratio.Mean)
		}
		if math.Abs(rows[1].Ratio.Mean-recovery[n]) > 0.05 {
			t.Errorf("n=%d CV=0.1: ratio %.3f, paper %.2f", n, rows[1].Ratio.Mean, recovery[n])
		}
	}
}
