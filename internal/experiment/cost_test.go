package experiment

import (
	"strings"
	"testing"
)

func TestCostTable(t *testing.T) {
	rows := CostTable(30) // k = 5
	byName := map[string]CostRow{}
	for _, r := range rows {
		byName[r.Protocol] = r
	}
	// §3.1: RR1 needs one extra line; its identity is k+1 bits.
	if r := byName["RR1"]; r.ExtraLines != 1 || r.IdentityBits != 6 {
		t.Errorf("RR1 = %+v", r)
	}
	// §3.1: RR3 needs no extra line.
	if r := byName["RR3"]; r.ExtraLines != 0 {
		t.Errorf("RR3 = %+v", r)
	}
	// §3.2: FCFS "at most doubles" the identity size.
	if r := byName["FCFS1"]; r.IdentityBits != 10 || r.ExtraLines != 5 {
		t.Errorf("FCFS1 = %+v", r)
	}
	// FCFS2 additionally needs the a-incr line.
	if r := byName["FCFS2"]; r.ExtraLines != 6 {
		t.Errorf("FCFS2 = %+v", r)
	}
	// The assured access protocols add no lines but have the weaker
	// fairness bound.
	if r := byName["AAP1"]; r.ExtraLines != 0 || !strings.Contains(r.FairnessBound, "2(N-1)") {
		t.Errorf("AAP1 = %+v", r)
	}
	if r := byName["FP"]; !strings.Contains(r.FairnessBound, "unbounded") {
		t.Errorf("FP = %+v", r)
	}
	// Settle bound scales with identity width: FCFS pays double.
	if byName["FCFS1"].SettleBound != 2*byName["RR3"].SettleBound {
		t.Errorf("settle: FCFS1 %v vs RR3 %v", byName["FCFS1"].SettleBound, byName["RR3"].SettleBound)
	}
}

func TestFormatCostTable(t *testing.T) {
	out := FormatCostTable(30, CostTable(30))
	for _, want := range []string{"Proto", "RR1", "FCFS2", "settle", "unbounded"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
