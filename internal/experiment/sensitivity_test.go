package experiment

import (
	"testing"

	"busarb/internal/workload"
)

func workloadEqual(n int, load float64) workload.Scenario {
	return workload.Equal(n, load, 1.0)
}

func TestCVSensitivityPaperClaim(t *testing.T) {
	// §4.3: "the waiting time standard deviations decrease, and become
	// closer in value, as the CV of the interrequest times is reduced."
	rows := CVSensitivity(10, 2.0, []float64{0.0, 0.33, 1.0},
		Opts{Batches: 8, BatchSize: 1000, Seed: 12})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Decreasing σ with decreasing CV for both protocols.
	if !(rows[0].SDRR < rows[1].SDRR && rows[1].SDRR < rows[2].SDRR) {
		t.Errorf("σ_RR not increasing with CV: %v %v %v", rows[0].SDRR, rows[1].SDRR, rows[2].SDRR)
	}
	if !(rows[0].SDFCFS <= rows[1].SDFCFS+0.05 && rows[1].SDFCFS < rows[2].SDFCFS) {
		t.Errorf("σ_FCFS not increasing with CV: %v %v %v", rows[0].SDFCFS, rows[1].SDFCFS, rows[2].SDFCFS)
	}
	// Converging: the σ gap shrinks toward CV=0.
	gap0 := rows[0].SDRR - rows[0].SDFCFS
	gap1 := rows[2].SDRR - rows[2].SDFCFS
	if gap0 > gap1 {
		t.Errorf("σ gap at CV=0 (%v) exceeds gap at CV=1 (%v)", gap0, gap1)
	}
}

func TestOverheadSensitivity(t *testing.T) {
	rows := OverheadSensitivity(10, 0.5, []float64{0.1, 0.5, 1.0},
		Opts{Batches: 8, BatchSize: 1000, Seed: 13})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More overhead, more waiting — monotone at low load where most
	// arbitrations are exposed.
	if !(rows[0].W < rows[1].W && rows[1].W < rows[2].W) {
		t.Errorf("W not monotone in overhead: %v %v %v", rows[0].W, rows[1].W, rows[2].W)
	}
	// At load 0.5, a large fraction of arbitrations is exposed.
	if rows[1].ExposedFrac < 0.3 {
		t.Errorf("exposed fraction = %v, want substantial at low load", rows[1].ExposedFrac)
	}
	// The W shift from 0.1 to 1.0 overhead is bounded by one overhead
	// difference per request.
	if shift := rows[2].W - rows[0].W; shift > 0.95 {
		t.Errorf("W shift = %v, want < 0.9 (at most one exposed overhead)", shift)
	}
}

func TestBatchIndependenceDiagnostic(t *testing.T) {
	// The paper-sized batches should be long enough that batch means
	// decorrelate; verify the diagnostic stays small on a standard run.
	sc := Opts{Batches: 10, BatchSize: 2000, Seed: 14}
	rows := CVSensitivity(10, 1.5, []float64{1.0}, sc)
	_ = rows
	r := run(workloadEqual(10, 1.5), protoRR, sc, false)
	if r.BatchAutocorr > 0.5 {
		t.Errorf("lag-1 batch autocorrelation = %v, batches too short", r.BatchAutocorr)
	}
}
