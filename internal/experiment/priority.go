package experiment

import (
	"fmt"
	"strings"

	"busarb/internal/bussim"
	"busarb/internal/core"
	"busarb/internal/workload"
)

// Priority-integration study (§2.4, §3.1, §3.2): sweep the urgent
// fraction of the traffic and measure (a) the urgent class's waiting
// advantage under each integration variant, and (b) how often the
// overflow-tolerant FCFS counter policy actually overflows — the paper
// leaves that policy's suitability to "the likelihood of overflow".

// PriorityRow is one urgent-fraction point for one protocol variant.
type PriorityRow struct {
	Variant    string
	UrgentFrac float64
	WUrgent    float64
	WNormal    float64
	// OverflowPerGrant is non-zero only for the overflow counter
	// policy: wrap events per completed request.
	OverflowPerGrant float64
}

// PriorityVariants lists the §2.4/§3 priority integrations under study.
var PriorityVariants = []string{
	"RR1+prio",
	"RR1+prio/rr",
	"FCFS1+prio/overflow",
	"FCFS1+prio/matched",
	"FCFS2+prio",
}

func priorityFactory(variant string) core.Factory {
	return func(n int) core.Protocol {
		switch variant {
		case "RR1+prio":
			return core.NewPriorityRR(n, core.RRIgnoreWithinClass)
		case "RR1+prio/rr":
			return core.NewPriorityRR(n, core.RRWithinClass)
		case "FCFS1+prio/overflow":
			return core.NewPriorityFCFS1(n, core.CounterOverflow)
		case "FCFS1+prio/matched":
			return core.NewPriorityFCFS1(n, core.CounterMatched)
		case "FCFS2+prio":
			return core.NewPriorityFCFS2(n)
		}
		panic("experiment: unknown priority variant " + variant)
	}
}

// PriorityStudy sweeps urgent fractions at a fixed load for every
// integration variant.
func PriorityStudy(n int, load float64, fracs []float64, o Opts) []PriorityRow {
	o = o.fill()
	type job struct {
		variant string
		frac    float64
	}
	var jobs []job
	for _, v := range PriorityVariants {
		for _, f := range fracs {
			jobs = append(jobs, job{v, f})
		}
	}
	rows := make([]PriorityRow, len(jobs))
	o.ForEach(len(jobs), func(i int) {
		j := jobs[i]
		sc := workload.PriorityMix(n, load, 1.0, j.frac)
		cfg := bussim.Config{
			Protocol:  priorityFactory(j.variant),
			Seed:      o.Seed,
			Batches:   o.Batches,
			BatchSize: o.BatchSize,
		}
		sc.Apply(&cfg)
		res := bussim.Run(cfg)
		row := PriorityRow{
			Variant:    j.variant,
			UrgentFrac: j.frac,
			WUrgent:    res.WaitUrgent.Mean(),
			WNormal:    res.WaitNormal.Mean(),
		}
		if pf, ok := res.Instance.(*core.PriorityFCFS1); ok && res.Completions > 0 {
			row.OverflowPerGrant = float64(pf.Overflows()) / float64(res.Completions)
		}
		rows[i] = row
	})
	return rows
}

// FormatPriorityStudy renders the sweep grouped by variant.
func FormatPriorityStudy(n int, load float64, rows []PriorityRow) string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Priority integration (%d agents, load %.1f)", n, load))
	b.WriteString("  variant               urgent%   W urgent   W normal   overflow/grant\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-20s  %6.0f%%   %8.2f   %8.2f   %14.4f\n",
			r.Variant, 100*r.UrgentFrac, r.WUrgent, r.WNormal, r.OverflowPerGrant)
	}
	return b.String()
}
