package experiment

import (
	"busarb/internal/bussim"
	"busarb/internal/workload"
)

// Sensitivity studies around the paper's fixed assumptions: §4.3 notes
// that "the waiting time standard deviations decrease, and become closer
// in value, as the CV of the interrequest times is reduced", and §4.1
// fixes the arbitration overhead at half a transaction. These sweeps
// quantify both statements.

// CVSensitivityRow compares RR and FCFS waiting-time dispersion at one
// interrequest CV.
type CVSensitivityRow struct {
	CV      float64
	W       float64
	SDRR    float64
	SDFCFS  float64
	SDRatio float64
}

// CVSensitivity sweeps the interrequest coefficient of variation at a
// fixed load, reproducing the §4.3 claim that the two protocols'
// waiting-time standard deviations shrink and converge as CV drops.
func CVSensitivity(n int, load float64, cvs []float64, o Opts) []CVSensitivityRow {
	o = o.fill()
	rows := make([]CVSensitivityRow, 0, len(cvs))
	for _, cv := range cvs {
		sc := workload.Equal(n, load, cv)
		rr := run(sc, protoRR, o, false)
		fc := run(sc, protoFCFS2, o, false)
		ratio := 1.0
		if fc.WaitStdDev.Mean > 0 {
			ratio = rr.WaitStdDev.Mean / fc.WaitStdDev.Mean
		}
		rows = append(rows, CVSensitivityRow{
			CV:      cv,
			W:       rr.WaitMean.Mean,
			SDRR:    rr.WaitStdDev.Mean,
			SDFCFS:  fc.WaitStdDev.Mean,
			SDRatio: ratio,
		})
	}
	return rows
}

// OverheadRow measures waiting time under a different arbitration
// overhead.
type OverheadRow struct {
	ArbOverhead float64
	W           float64
	ExposedFrac float64 // fraction of arbitrations whose delay was exposed
}

// OverheadSensitivity sweeps the arbitration overhead at a fixed load
// (the paper fixes it at 0.5; smaller values model the binary-patterned
// lines of [John83], larger ones wider buses or slower logic). The
// overhead matters only through exposed arbitrations, so W shifts by at
// most one overhead per request.
func OverheadSensitivity(n int, load float64, overheads []float64, o Opts) []OverheadRow {
	o = o.fill()
	rows := make([]OverheadRow, 0, len(overheads))
	for _, ovh := range overheads {
		sc := workload.Equal(n, load, 1.0)
		cfg := bussim.Config{
			Protocol:    protoRR,
			ArbOverhead: ovh,
			Seed:        o.Seed,
			Batches:     o.Batches,
			BatchSize:   o.BatchSize,
		}
		sc.Apply(&cfg)
		res := bussim.Run(cfg)
		exposed := 0.0
		if res.Arbitrations > 0 {
			exposed = float64(res.ExposedArbs) / float64(res.Arbitrations)
		}
		rows = append(rows, OverheadRow{
			ArbOverhead: ovh,
			W:           res.WaitMean.Mean,
			ExposedFrac: exposed,
		})
	}
	return rows
}
