package experiment

import (
	"sync/atomic"
	"testing"
)

// TestOptsSeedSentinel pins the seed-defaulting contract: a zero Seed
// means "the paper's 1988" only when the caller did not ask for zero
// explicitly. Before the SeedSet sentinel existed, seed 0 was silently
// unrequestable through every API and CLI path.
func TestOptsSeedSentinel(t *testing.T) {
	if got := (Opts{}).fill().Seed; got != 1988 {
		t.Errorf("unset seed filled to %d, want the 1988 default", got)
	}
	if got := (Opts{Seed: 7}).fill().Seed; got != 7 {
		t.Errorf("explicit seed remapped to %d, want 7", got)
	}
	if got := (Opts{Seed: 0, SeedSet: true}).fill().Seed; got != 0 {
		t.Errorf("explicit zero seed remapped to %d, want 0", got)
	}
	// And the explicit zero seed must actually reach the simulations:
	// a run seeded 0 differs from the default-seeded run.
	quick0 := Opts{Batches: 4, BatchSize: 300, SeedSet: true}
	quickDefault := Opts{Batches: 4, BatchSize: 300}
	r0 := Table41(10, false, quick0)
	rd := Table41(10, false, quickDefault)
	same := true
	for i := range r0 {
		if r0[i].RatioFCFS.Mean != rd[i].RatioFCFS.Mean {
			same = false
		}
	}
	if same {
		t.Error("seed 0 produced the same run as the 1988 default; sentinel not honored")
	}
}

// TestForEachParallel checks the worker pool visits every index exactly
// once regardless of worker count (run under -race in tier-1).
func TestForEachParallel(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 32} {
		const n = 100
		var visits [n]int32
		var total int32
		Opts{Parallel: workers}.ForEach(n, func(i int) {
			atomic.AddInt32(&visits[i], 1)
			atomic.AddInt32(&total, 1)
		})
		if total != n {
			t.Fatalf("parallel=%d: %d calls, want %d", workers, total, n)
		}
		for i, v := range visits {
			if v != 1 {
				t.Errorf("parallel=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}
