package experiment

import (
	"math"
	"strings"
	"testing"
)

// quick is a reduced statistical effort for tests; shapes remain stable.
var quick = Opts{Batches: 10, BatchSize: 1500, Seed: 1988}

func TestTable41Shape(t *testing.T) {
	rows := Table41(10, false, quick)
	if len(rows) != len(PaperLoads) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// RR perfectly fair at every load.
		if math.Abs(r.RatioRR.Mean-1.0) > 0.08 {
			t.Errorf("load %v: RR ratio %s, want ~1", r.Load, r.RatioRR)
		}
		if r.RatioAAP != nil {
			t.Error("AAP column requested off")
		}
	}
	// FCFS1 unfairness peaks near saturation (paper: 1.08-1.09 at load
	// 1.5-2.5) and is small at the extremes.
	peak := 0.0
	for _, r := range rows {
		if r.Load >= 1.5 && r.Load <= 2.5 && r.RatioFCFS.Mean > peak {
			peak = r.RatioFCFS.Mean
		}
	}
	if peak < 1.03 || peak > 1.15 {
		t.Errorf("FCFS peak unfairness = %v, paper ~1.08", peak)
	}
	if last := rows[len(rows)-1].RatioFCFS.Mean; last > 1.05 {
		t.Errorf("FCFS ratio at extreme load = %v, paper 1.01", last)
	}
}

func TestTable41AAPColumn(t *testing.T) {
	rows := Table41(30, true, Opts{Batches: 10, BatchSize: 1000, Seed: 3})
	if rows[0].RatioAAP == nil {
		t.Fatal("AAP column missing")
	}
	// Paper Table 4.1(b): AAP ratio climbs toward ~2 at the highest load.
	last := rows[len(rows)-1].RatioAAP.Mean
	if last < 1.7 {
		t.Errorf("AAP ratio at load 7.5 = %v, paper 1.99", last)
	}
	first := rows[0].RatioAAP.Mean
	if math.Abs(first-1.0) > 0.15 {
		t.Errorf("AAP ratio at load 0.25 = %v, paper ~0.98", first)
	}
}

func TestTable42Shape(t *testing.T) {
	rows := Table42(10, quick)
	for _, r := range rows {
		if r.SDRatio.Mean < 0.85 {
			t.Errorf("load %v: σRR/σFCFS = %v < 1 (FCFS minimizes variance)", r.Load, r.SDRatio.Mean)
		}
	}
	// Paper: the ratio peaks around loads 2-2.5 at ~1.6 for 10 agents.
	peak := 0.0
	for _, r := range rows {
		if r.SDRatio.Mean > peak {
			peak = r.SDRatio.Mean
		}
	}
	if peak < 1.3 || peak > 1.9 {
		t.Errorf("σ ratio peak = %v, paper ~1.6 for 10 agents", peak)
	}
	// W increases with load and approaches N-ish at the top.
	if rows[0].W > rows[len(rows)-1].W {
		t.Error("W not increasing with load")
	}
}

func TestFigure41Shape(t *testing.T) {
	f := Figure41(10, 1.5, quick)
	if len(f.Points) == 0 {
		t.Fatal("no points")
	}
	prevRR, prevFC := 0.0, 0.0
	for _, p := range f.Points {
		if p.RR < prevRR-1e-12 || p.FCFS < prevFC-1e-12 {
			t.Fatal("CDFs must be monotone")
		}
		prevRR, prevFC = p.RR, p.FCFS
	}
	// "Note how sharply the CDF rises near the mean waiting time for the
	// FCFS protocol": FCFS CDF must exceed RR's just above the mean.
	justAbove := f.W * 1.3
	var rrAt, fcAt float64
	for _, p := range f.Points {
		if p.X <= justAbove {
			rrAt, fcAt = p.RR, p.FCFS
		}
	}
	if fcAt <= rrAt {
		t.Errorf("CDF at 1.3W: FCFS %v <= RR %v, want sharper FCFS rise", fcAt, rrAt)
	}
}

func TestTable43Shape(t *testing.T) {
	rows := Table43(10, quick)
	for _, r := range rows {
		if r.ProdRR < 0 || r.ProdRR > 1 || r.ProdFCFS < 0 || r.ProdFCFS > 1 {
			t.Errorf("load %v: productivity out of range: %v %v", r.Load, r.ProdRR, r.ProdFCFS)
		}
		if r.Overlap < 1 {
			t.Errorf("load %v: overlap %v < 1", r.Load, r.Overlap)
		}
		if r.WNetRR < -1e-9 || r.WNetFCFS < -1e-9 {
			t.Errorf("load %v: negative net wait", r.Load)
		}
	}
	// The paper's conclusion: FCFS productivity is somewhat higher under
	// this contrived overlap at moderate-to-high loads.
	better := 0
	for _, r := range rows {
		if r.Load >= 1.0 && r.ProdFCFS >= r.ProdRR-0.005 {
			better++
		}
	}
	if better < 4 {
		t.Errorf("FCFS productivity >= RR in only %d of the loaded rows", better)
	}
}

func TestTable44Shape(t *testing.T) {
	rows := Table44(30, 2, Opts{Batches: 10, BatchSize: 3000, Seed: 7})
	// Low load: ratio ≈ factor; high load: decays toward 1, with FCFS
	// staying at least as proportional as RR.
	if math.Abs(rows[0].RatioRR.Mean-2.0) > 0.35 {
		t.Errorf("low-load RR ratio = %s, want ~2", rows[0].RatioRR)
	}
	last := rows[len(rows)-1]
	if last.RatioRR.Mean > 1.15 {
		t.Errorf("high-load RR ratio = %s, want ~1.0 (evening-out)", last.RatioRR)
	}
	if last.RatioFCFS.Mean < last.RatioRR.Mean-0.05 {
		t.Errorf("FCFS should stay more proportional: RR %s vs FCFS %s",
			last.RatioRR, last.RatioFCFS)
	}
	if rows[2].Load < 1.0 || rows[2].Load > 1.1 {
		t.Errorf("total load = %v, paper 1.03", rows[2].Load)
	}
}

func TestTable45Shape(t *testing.T) {
	rows := Table45(10, Opts{Batches: 10, BatchSize: 1500, Seed: 9})
	if len(rows) != len(PaperCVs) {
		t.Fatalf("rows = %d", len(rows))
	}
	cv0 := rows[0].Ratio.Mean
	loadRatio := rows[0].LoadRatio
	// CV=0: the slow agent just misses its turn; its relative throughput
	// collapses well below its load share (paper: 0.50 vs 0.76-ish).
	if cv0 > 0.8*loadRatio {
		t.Errorf("CV=0 ratio = %v, want well below load ratio %v", cv0, loadRatio)
	}
	// Any CV >= 0.1 recovers to ~the load-proportional share.
	for _, r := range rows[1:] {
		if r.Ratio.Mean < 0.85*loadRatio {
			t.Errorf("CV=%v ratio = %v, want ≈ load ratio %v", r.CV, r.Ratio.Mean, loadRatio)
		}
	}
}

func TestOptsFill(t *testing.T) {
	o := Opts{}.fill()
	if o.Batches != 10 || o.BatchSize != 8000 || o.Seed != 1988 {
		t.Errorf("defaults = %+v", o)
	}
	o = Opts{Batches: 3, BatchSize: 100, Seed: 5}.fill()
	if o.Batches != 3 || o.BatchSize != 100 || o.Seed != 5 {
		t.Errorf("explicit opts clobbered: %+v", o)
	}
}

func TestFormatters(t *testing.T) {
	small := Opts{Batches: 4, BatchSize: 300, Seed: 2}
	t41 := FormatTable41(10, Table41(10, false, small))
	if !strings.Contains(t41, "Table 4.1") || !strings.Contains(t41, "±") {
		t.Errorf("Table 4.1 format:\n%s", t41)
	}
	t42 := FormatTable42(10, Table42(10, small))
	if !strings.Contains(t42, "σRR/σFCFS") {
		t.Errorf("Table 4.2 format:\n%s", t42)
	}
	fig := FormatFigure41(Figure41(10, 1.5, small))
	if !strings.Contains(fig, "Figure 4.1") || !strings.Contains(fig, "R = RR") {
		t.Errorf("Figure 4.1 format:\n%s", fig)
	}
	t43 := FormatTable43(10, Table43(10, small))
	if !strings.Contains(t43, "Overlap") {
		t.Errorf("Table 4.3 format:\n%s", t43)
	}
	t44 := FormatTable44(30, 2, Table44(30, 2, small))
	if !strings.Contains(t44, "t1/t2") {
		t.Errorf("Table 4.4 format:\n%s", t44)
	}
	t45 := FormatTable45(10, Table45(10, small))
	if !strings.Contains(t45, "tslow/tother") {
		t.Errorf("Table 4.5 format:\n%s", t45)
	}
}

func TestAblationCounterBits(t *testing.T) {
	rows := AblationCounterBits(10, 2.0, Opts{Batches: 8, BatchSize: 800, Seed: 4})
	if len(rows) != 4 { // Width(10) = 4
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	// More counter bits => no worse unfairness (1-bit FCFS degrades
	// toward fixed priority's bias).
	if rows[0].Ratio.Mean < rows[len(rows)-1].Ratio.Mean-0.05 {
		t.Errorf("1-bit ratio %v should be >= full-width ratio %v",
			rows[0].Ratio.Mean, rows[len(rows)-1].Ratio.Mean)
	}
}

func TestAblationHybrid(t *testing.T) {
	rows := AblationHybrid(10, 2.0, Opts{Batches: 8, BatchSize: 800, Seed: 4})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]HybridRow{}
	for _, r := range rows {
		byName[r.Protocol] = r
	}
	// The hybrid keeps FCFS-like variance (well below RR's).
	if byName["Hybrid"].WaitSD.Mean > 0.7*byName["RR1"].WaitSD.Mean+0.3*byName["FCFS2"].WaitSD.Mean {
		t.Errorf("hybrid σ %v vs RR %v and FCFS %v — expected closer to FCFS",
			byName["Hybrid"].WaitSD.Mean, byName["RR1"].WaitSD.Mean, byName["FCFS2"].WaitSD.Mean)
	}
}

func TestAblationRR3(t *testing.T) {
	rows := AblationRR3(10, Opts{Batches: 8, BatchSize: 800, Seed: 4})
	sawRepass := false
	for _, r := range rows {
		if r.RepassesPerGrant > 0 {
			sawRepass = true
		}
		// RR3's empty passes cost real time — "somewhat less efficient"
		// (§3.1). At low load roughly half the exposed arbitrations
		// repass, adding up to ~0.5·P(repass) ≈ 0.3 to W; under load the
		// passes hide under transactions. Never cheaper than RR1, never
		// more than one extra arbitration delay.
		if r.WaitRR3 < r.WaitRR1-0.05 {
			t.Errorf("load %v: RR3 W %v cheaper than RR1 %v (impossible)", r.Load, r.WaitRR3, r.WaitRR1)
		}
		if r.WaitRR3 > r.WaitRR1+0.5 {
			t.Errorf("load %v: RR3 W %v exceeds RR1 %v + 0.5", r.Load, r.WaitRR3, r.WaitRR1)
		}
	}
	if !sawRepass {
		t.Error("RR3 never repassed across the load grid (implausible)")
	}
}

func TestAblationSnapshot(t *testing.T) {
	rows := AblationSnapshot(10, Opts{Batches: 8, BatchSize: 800, Seed: 4})
	for _, r := range rows {
		if rel := math.Abs(r.WaitLateJoin-r.WaitSnapshot) / r.WaitSnapshot; rel > 0.05 {
			t.Errorf("load %v: late-join W %v vs snapshot %v — should be a small effect",
				r.Load, r.WaitLateJoin, r.WaitSnapshot)
		}
	}
}

// Parallel execution must produce identical results to sequential: every
// simulation is independently seeded.
func TestParallelDeterminism(t *testing.T) {
	seq := Table42(10, Opts{Batches: 4, BatchSize: 400, Seed: 6, Parallel: 1})
	par := Table42(10, Opts{Batches: 4, BatchSize: 400, Seed: 6, Parallel: 8})
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("row %d differs: %+v vs %+v", i, seq[i], par[i])
		}
	}
}

func TestRobustnessStudy(t *testing.T) {
	rows := Robustness(8, 4000, []int{0, 500, 50}, 21)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// No faults: both perfectly fair, no collisions.
	if rows[0].CollisionsRot != 0 || rows[0].FairnessRot < 0.99 || rows[0].FairnessRR < 0.99 {
		t.Errorf("fault-free row = %+v", rows[0])
	}
	// With faults: RR1 stays essentially fair (heals each arbitration);
	// the rotating scheme collides and skews badly. Even a rare fault
	// (every 500 grants) is catastrophic — the desync is permanent, so
	// the fault frequency barely matters.
	for _, r := range rows[1:] {
		if r.FairnessRR < 0.95 {
			t.Errorf("faults every %d: RR1 fairness %v, want ~1 (self-healing)", r.FaultEvery, r.FairnessRR)
		}
		if r.CollisionsRot == 0 {
			t.Errorf("faults every %d: rotating scheme had no collisions", r.FaultEvery)
		}
		if r.FairnessRot > 0.7 {
			t.Errorf("faults every %d: rotating fairness %v, want badly skewed", r.FaultEvery, r.FairnessRot)
		}
	}
}

func TestFormatRobustness(t *testing.T) {
	out := FormatRobustness(8, 1000, Robustness(8, 1000, []int{0, 100}, 5))
	for _, want := range []string{"Robustness", "never", "collisions", "fairness"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSplitVsConnected(t *testing.T) {
	rows := SplitVsConnected(8, 4, 2.0, []float64{0.25, 2.0},
		Opts{Batches: 4, BatchSize: 800, Seed: 3})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Fast memory: near-tie. Slow memory: split carries much more.
	fast, slow := rows[0], rows[1]
	if fast.TputSplit < 0.9*fast.TputConnected {
		t.Errorf("fast memory: split %v far below connected %v", fast.TputSplit, fast.TputConnected)
	}
	if slow.TputSplit < 1.5*slow.TputConnected {
		t.Errorf("slow memory: split %v, connected %v — want big win", slow.TputSplit, slow.TputConnected)
	}
}
