package experiment

import (
	"fmt"
	"strings"

	"busarb/internal/bussim"
	"busarb/internal/membus"
)

// Split-vs-connected study: the bus-discipline question of the paper's
// era, run on this library's arbiters. Connected transfers hold the bus
// through the memory access; split transfers release it and let the
// memory controller arbitrate the response back.

// MemBusRow is one memory-latency point.
type MemBusRow struct {
	MemTime       float64
	LatConnected  float64
	LatSplit      float64
	TputConnected float64
	TputSplit     float64
	BusUtilSplit  float64
	BankUtilSplit float64
}

// SplitVsConnected sweeps the memory access time at a fixed offered
// load and bank count, reporting latency and carried throughput for
// both disciplines.
func SplitVsConnected(n, banks int, load float64, memTimes []float64, o Opts) []MemBusRow {
	o = o.fill()
	rows := make([]MemBusRow, len(memTimes))
	o.ForEach(len(memTimes), func(i int) {
		mt := memTimes[i]
		service := 0.25 + mt + 0.75
		base := membus.Config{
			N:         n,
			Banks:     banks,
			Protocol:  protoRR,
			AddrTime:  0.25,
			MemTime:   mt,
			DataTime:  0.75,
			Inter:     bussim.UniformLoad(n, load, 1.0, service),
			Seed:      o.Seed,
			Batches:   o.Batches,
			BatchSize: o.BatchSize,
		}
		connCfg := base
		connCfg.Mode = membus.Connected
		splitCfg := base
		splitCfg.Mode = membus.Split
		conn := membus.Run(connCfg)
		split := membus.Run(splitCfg)
		rows[i] = MemBusRow{
			MemTime:       mt,
			LatConnected:  conn.Latency.Mean,
			LatSplit:      split.Latency.Mean,
			TputConnected: conn.Throughput.Mean,
			TputSplit:     split.Throughput.Mean,
			BusUtilSplit:  split.BusUtilization.Mean,
			BankUtilSplit: split.BankUtilization.Mean,
		}
	})
	return rows
}

// FormatSplitVsConnected renders the sweep.
func FormatSplitVsConnected(n, banks int, load float64, rows []MemBusRow) string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Split vs connected transfers (%d processors, %d banks, load %.1f)", n, banks, load))
	b.WriteString("  mem time   lat conn   lat split   tput conn   tput split   split bus/bank util\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %8.2f   %8.2f   %9.2f   %9.3f   %10.3f   %9.2f / %.2f\n",
			r.MemTime, r.LatConnected, r.LatSplit, r.TputConnected, r.TputSplit,
			r.BusUtilSplit, r.BankUtilSplit)
	}
	return b.String()
}
