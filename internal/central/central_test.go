package central

import "testing"

func TestRoundRobinScan(t *testing.T) {
	r := NewRoundRobin(8)
	if w := r.Grant([]int{3, 5, 7}); w != 7 {
		t.Fatalf("first grant = %d, want 7 (no history: max)", w)
	}
	if w := r.Grant([]int{3, 5}); w != 5 {
		t.Fatalf("grant = %d, want 5 (scan below 7)", w)
	}
	if w := r.Grant([]int{3, 8}); w != 3 {
		t.Fatalf("grant = %d, want 3 (below 5 beats 8)", w)
	}
	if w := r.Grant([]int{8, 2}); w != 2 {
		t.Fatalf("grant = %d, want 2", w)
	}
	if w := r.Grant([]int{8}); w != 8 {
		t.Fatalf("grant = %d, want 8 (wrap to top)", w)
	}
	if r.Last() != 8 {
		t.Errorf("Last = %d", r.Last())
	}
}

func TestRoundRobinEmpty(t *testing.T) {
	r := NewRoundRobin(4)
	if w := r.Grant(nil); w != 0 {
		t.Errorf("empty grant = %d, want 0", w)
	}
	r.Grant([]int{2})
	r.Reset()
	if r.Last() != 0 {
		t.Error("Reset failed")
	}
}

func TestRoundRobinPanicsOnBadID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad id did not panic")
		}
	}()
	NewRoundRobin(4).Grant([]int{5})
}

func TestFCFSQueueOrder(t *testing.T) {
	var q FCFSQueue
	q.Enqueue(3, 1.0)
	q.Enqueue(7, 2.0)
	q.Enqueue(1, 2.0) // tie with 7: higher id first
	q.Enqueue(5, 3.0)
	want := []int{3, 7, 1, 5}
	for i, w := range want {
		if g := q.Grant(); g != w {
			t.Fatalf("grant %d = %d, want %d", i, g, w)
		}
	}
	if q.Grant() != 0 || q.Len() != 0 {
		t.Error("empty queue misbehaves")
	}
}

func TestFCFSQueueReset(t *testing.T) {
	var q FCFSQueue
	q.Enqueue(1, 0)
	q.Reset()
	if q.Len() != 0 {
		t.Error("Reset failed")
	}
}

func TestTicketOrder(t *testing.T) {
	tk := NewTicket()
	tk.Take(4)
	tk.Take(2)
	tk.TakeBatch([]int{1, 6}) // simultaneous: 6 then 1
	want := []int{4, 2, 6, 1}
	for i, w := range want {
		if g := tk.Grant(); g != w {
			t.Fatalf("grant %d = %d, want %d", i, g, w)
		}
	}
	if tk.Grant() != 0 {
		t.Error("empty grant should be 0")
	}
}

func TestTicketOutstandingAndReset(t *testing.T) {
	tk := NewTicket()
	tk.Take(1)
	tk.Take(2)
	if tk.Outstanding() != 2 {
		t.Errorf("Outstanding = %d", tk.Outstanding())
	}
	tk.Reset()
	if tk.Outstanding() != 0 || tk.Grant() != 0 {
		t.Error("Reset failed")
	}
}

// Ticket and FCFSQueue must agree when fed the same arrivals.
func TestTicketMatchesQueue(t *testing.T) {
	var q FCFSQueue
	tk := NewTicket()
	arrivals := []struct {
		id int
		t  float64
	}{{5, 1}, {2, 2}, {8, 3}, {1, 4}, {6, 5}}
	for _, a := range arrivals {
		q.Enqueue(a.id, a.t)
		tk.Take(a.id)
	}
	for q.Len() > 0 {
		if g1, g2 := q.Grant(), tk.Grant(); g1 != g2 {
			t.Fatalf("queue %d != ticket %d", g1, g2)
		}
	}
}
