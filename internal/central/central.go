// Package central implements centralized reference arbiters used as
// correctness oracles for the distributed protocols:
//
//   - RoundRobin: a central round-robin arbiter. The paper claims its
//     distributed RR protocol is "identical to the central round-robin
//     arbiter" (§1); tests assert grant-sequence equality.
//   - FCFSQueue: a central queue serving requests in arrival order
//     (ties at identical arrival instants broken toward the higher
//     static identity, matching the contention tie-break).
//   - Ticket: the Sharma–Ahuja ticket-assignment FCFS scheme [ShAh81]
//     the paper cites as prior FCFS work — requesters draw increasing
//     ticket numbers and the lowest outstanding ticket is served.
package central

import (
	"fmt"
	"sort"
)

// RoundRobin is a central round-robin arbiter over agents 1..N that
// performs the paper's scan: after granting agent j, the next grant
// scans j-1 down to 1, then N down to j.
type RoundRobin struct {
	n    int
	last int
}

// NewRoundRobin returns a central RR arbiter for n agents.
func NewRoundRobin(n int) *RoundRobin { return &RoundRobin{n: n} }

// Last returns the previously granted identity (0 before any grant).
func (r *RoundRobin) Last() int { return r.last }

// Grant selects the next agent among waiting (any order, ids 1..N) and
// records it. It returns 0 if waiting is empty.
func (r *RoundRobin) Grant(waiting []int) int {
	bestBelow, bestAny := 0, 0
	for _, id := range waiting {
		if id <= 0 || id > r.n {
			panic(fmt.Sprintf("central: bad id %d", id))
		}
		if id < r.last && id > bestBelow {
			bestBelow = id
		}
		if id > bestAny {
			bestAny = id
		}
	}
	w := bestBelow
	if w == 0 {
		w = bestAny
	}
	if w != 0 {
		r.last = w
	}
	return w
}

// Reset restores the initial state.
func (r *RoundRobin) Reset() { r.last = 0 }

// FCFSQueue is a central first-come first-serve queue. Requests enqueue
// with their arrival time; Grant serves the earliest arrival, breaking
// ties at identical instants toward the higher identity.
type FCFSQueue struct {
	reqs []fcfsReq
}

type fcfsReq struct {
	id   int
	time float64
	seq  int64
}

// Enqueue records a request from agent id at the given time. Callers
// must enqueue in non-decreasing time order.
func (q *FCFSQueue) Enqueue(id int, time float64) {
	q.reqs = append(q.reqs, fcfsReq{id: id, time: time, seq: int64(len(q.reqs))})
}

// Len returns the number of queued requests.
func (q *FCFSQueue) Len() int { return len(q.reqs) }

// Grant removes and returns the next request's agent identity, or 0 if
// the queue is empty.
func (q *FCFSQueue) Grant() int {
	if len(q.reqs) == 0 {
		return 0
	}
	best := 0
	for i := 1; i < len(q.reqs); i++ {
		a, b := q.reqs[i], q.reqs[best]
		if a.time < b.time || (a.time == b.time && a.id > b.id) {
			best = i
		}
	}
	id := q.reqs[best].id
	q.reqs = append(q.reqs[:best], q.reqs[best+1:]...)
	return id
}

// Reset empties the queue.
func (q *FCFSQueue) Reset() { q.reqs = nil }

// Ticket is the Sharma–Ahuja FCFS scheme: a global ticket counter hands
// out increasing tickets at request time; the lowest outstanding ticket
// is served next. With distinct tickets it is exactly FCFS in request
// order; simultaneous requests receive distinct tickets in identity
// order (higher identity first, to match the contention tie-break).
type Ticket struct {
	next    int64
	holders map[int]int64 // agent id -> ticket
}

// NewTicket returns an empty ticket arbiter.
func NewTicket() *Ticket { return &Ticket{holders: make(map[int]int64)} }

// Take assigns the next ticket to agent id. Simultaneous arrivals must
// be passed together via TakeBatch for the identity-order tie-break.
func (t *Ticket) Take(id int) {
	t.holders[id] = t.next
	t.next++
}

// TakeBatch assigns tickets to agents that requested at the same
// instant, in descending identity order.
func (t *Ticket) TakeBatch(ids []int) {
	sorted := append([]int(nil), ids...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	for _, id := range sorted {
		t.Take(id)
	}
}

// Grant removes and returns the agent holding the lowest ticket, or 0
// if none.
func (t *Ticket) Grant() int {
	best, bestTicket := 0, int64(-1)
	for id, tk := range t.holders {
		if bestTicket < 0 || tk < bestTicket {
			best, bestTicket = id, tk
		}
	}
	if best != 0 {
		delete(t.holders, best)
	}
	return best
}

// Outstanding returns the number of agents holding tickets.
func (t *Ticket) Outstanding() int { return len(t.holders) }

// Reset restores the initial state.
func (t *Ticket) Reset() {
	t.next = 0
	t.holders = make(map[int]int64)
}
