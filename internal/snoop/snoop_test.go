package snoop

import (
	"testing"

	"busarb/internal/core"
	"busarb/internal/mp"
	"busarb/internal/rng"
)

func rrFactory() core.Factory {
	f, err := core.ByName("RR1")
	if err != nil {
		panic(err)
	}
	return f
}

func TestStateAndKindStrings(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Error("state names wrong")
	}
	if State(9).String() != "State(9)" {
		t.Error("unknown state name wrong")
	}
	kinds := map[TxKind]string{BusRd: "BusRd", BusRdX: "BusRdX", BusUpgr: "BusUpgr", BusWB: "BusWB"}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d = %q, want %q", k, k.String(), want)
		}
	}
	if TxKind(9).String() != "TxKind(9)" {
		t.Error("unknown kind name wrong")
	}
}

// fixedPattern replays a scripted reference list, then idles on a
// private address.
type fixedPattern struct {
	refs []struct {
		addr  uint64
		write bool
	}
	idle uint64
	i    int
}

func (p *fixedPattern) Next(*rng.Source) (uint64, bool) {
	if p.i < len(p.refs) {
		r := p.refs[p.i]
		p.i++
		return r.addr, r.write
	}
	return p.idle, false
}
func (p *fixedPattern) String() string { return "fixed" }

func script(idle uint64, rs ...interface{}) *fixedPattern {
	p := &fixedPattern{idle: idle}
	for i := 0; i < len(rs); i += 2 {
		p.refs = append(p.refs, struct {
			addr  uint64
			write bool
		}{rs[i].(uint64), rs[i+1].(bool)})
	}
	return p
}

func TestReadSharingNoInvalidations(t *testing.T) {
	// Both processors read the same block repeatedly: after the two
	// fills there must be no coherence traffic at all.
	shared := uint64(0)
	procs := []*Proc{
		{Pattern: script(shared), CyclePerRef: 1.0},
		{Pattern: script(shared), CyclePerRef: 1.0},
	}
	res := Run(Config{
		Procs: procs, Protocol: rrFactory(), Seed: 1,
		Duration: 200, CheckInvariants: true,
	})
	if res.ByKind[BusRd] != 2 {
		t.Errorf("BusRd = %d, want exactly 2 fills", res.ByKind[BusRd])
	}
	if res.ByKind[BusRdX] != 0 || res.ByKind[BusUpgr] != 0 {
		t.Errorf("write traffic on read sharing: %v", res.ByKind)
	}
	for _, p := range procs {
		if p.Stats.InvalidationsRecv != 0 {
			t.Errorf("proc %d received %d invalidations", p.ID, p.Stats.InvalidationsRecv)
		}
	}
}

func TestWritePingPong(t *testing.T) {
	// Both processors write the same block: every write by one
	// invalidates the other, so coherence misses/upgrades dominate.
	shared := uint64(0)
	mk := func() *Proc {
		p := &fixedPattern{idle: shared}
		// Idle address IS the shared block; make idle refs writes by
		// using an infinite write script instead.
		_ = p
		return &Proc{Pattern: writeForever(shared), CyclePerRef: 2.0}
	}
	procs := []*Proc{mk(), mk()}
	res := Run(Config{
		Procs: procs, Protocol: rrFactory(), Seed: 2,
		Duration: 400, CheckInvariants: true,
	})
	inval := procs[0].Stats.InvalidationsRecv + procs[1].Stats.InvalidationsRecv
	if inval < 50 {
		t.Errorf("ping-pong produced only %d invalidations", inval)
	}
	if res.ByKind[BusRdX]+res.ByKind[BusUpgr] < 50 {
		t.Errorf("write transactions = %v", res.ByKind)
	}
	coh := procs[0].Stats.CoherenceMisses + procs[1].Stats.CoherenceMisses
	if coh < 25 {
		t.Errorf("coherence misses = %d, want dominant", coh)
	}
}

type repeatWriter struct{ addr uint64 }

func (r repeatWriter) Next(*rng.Source) (uint64, bool) { return r.addr, true }
func (r repeatWriter) String() string                  { return "writeForever" }

func writeForever(addr uint64) mp.Pattern { return repeatWriter{addr: addr} }

func TestUpgradePath(t *testing.T) {
	// One processor reads a block (S), then writes it: the write must
	// be a BusUpgr, not a refill.
	procs := []*Proc{
		{Pattern: script(1<<20, uint64(0), false, uint64(0), true), CyclePerRef: 1.0},
		{Pattern: script(1 << 21), CyclePerRef: 50.0}, // mostly idle
	}
	res := Run(Config{
		Procs: procs, Protocol: rrFactory(), Seed: 3,
		Duration: 30, CheckInvariants: true,
	})
	if res.ByKind[BusUpgr] != 1 {
		t.Errorf("BusUpgr = %d, want 1 (S->M upgrade)", res.ByKind[BusUpgr])
	}
	if procs[0].Stats.Upgrades != 1 {
		t.Errorf("proc upgrades = %d", procs[0].Stats.Upgrades)
	}
}

func TestDirtyWritebackChain(t *testing.T) {
	// Fill a direct-mapped set with a dirty block, then miss to a
	// conflicting block: the bus must carry WB before the new fill.
	const blockBytes = 32
	cacheSize := 256 // 8 blocks direct-mapped
	conflict := uint64(cacheSize)
	procs := []*Proc{
		{Pattern: script(1<<20, uint64(0), true, conflict, false), CyclePerRef: 1.0},
		{Pattern: script(1 << 21), CyclePerRef: 100.0},
	}
	res := Run(Config{
		Procs: procs, Protocol: rrFactory(), Seed: 4,
		CacheSize: cacheSize, BlockSize: blockBytes, Ways: 1,
		Duration: 40, CheckInvariants: true,
	})
	if res.ByKind[BusWB] != 1 {
		t.Errorf("BusWB = %d, want 1", res.ByKind[BusWB])
	}
	if procs[0].Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d", procs[0].Stats.Writebacks)
	}
}

// The version oracle: random shared-write workloads must never let any
// processor read a stale copy (CheckInvariants panics on violation).
func TestCoherenceOracleRandomWorkload(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		procs := make([]*Proc, 4)
		for i := range procs {
			procs[i] = &Proc{
				Pattern:     &mp.HotCold{HotBytes: 512, ColdBytes: 1 << 16, HotProb: 0.7, WriteFrac: 0.4},
				CyclePerRef: 0.3,
			}
		}
		res := Run(Config{
			Procs: procs, Protocol: rrFactory(), Seed: seed,
			CacheSize: 1024, BlockSize: 32, Ways: 2,
			Duration: 500, CheckInvariants: true,
		})
		if res.Grants == 0 {
			t.Fatal("no bus traffic")
		}
	}
}

// Coherence traffic is still arbitrated fairly: identical processors
// sharing data progress at equal rates under RR.
func TestCoherentMachineFairness(t *testing.T) {
	procs := make([]*Proc, 6)
	for i := range procs {
		procs[i] = &Proc{
			Pattern:     &mp.HotCold{HotBytes: 256, ColdBytes: 1 << 16, HotProb: 0.5, WriteFrac: 0.5},
			CyclePerRef: 0.1,
		}
	}
	res := Run(Config{
		Procs: procs, Protocol: rrFactory(), Seed: 6,
		Duration: 2000, CheckInvariants: true,
	})
	minP, maxP := res.Progress[0], res.Progress[0]
	for _, p := range res.Progress {
		if p < minP {
			minP = p
		}
		if p > maxP {
			maxP = p
		}
	}
	if minP/maxP < 0.9 {
		t.Errorf("progress spread %v..%v under RR, want near-equal", minP, maxP)
	}
	if res.Utilization() <= 0 || res.Utilization() > 1 {
		t.Errorf("utilization = %v", res.Utilization())
	}
}

func TestConfigValidation(t *testing.T) {
	rr := rrFactory()
	cases := []Config{
		{Procs: []*Proc{{}}, Protocol: rr, Duration: 1},                                                                        // 1 proc
		{Procs: []*Proc{{}, {}}, Protocol: nil, Duration: 1},                                                                   // no protocol
		{Procs: []*Proc{{Pattern: writeForever(0), CyclePerRef: 1}, {}}, Protocol: rr, Duration: 1},                            // incomplete proc
		{Procs: []*Proc{{Pattern: writeForever(0), CyclePerRef: 1}, {Pattern: writeForever(0), CyclePerRef: 1}}, Protocol: rr}, // no duration
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			Run(cfg)
		}()
	}
}

func TestMESISilentUpgrade(t *testing.T) {
	// One processor reads then writes a private block: MESI fills
	// Exclusive and upgrades silently — zero BusUpgr — while MSI pays
	// one upgrade transaction.
	mk := func(exclusive bool) (*Result, *Proc) {
		procs := []*Proc{
			{Pattern: script(1<<20, uint64(0), false, uint64(0), true), CyclePerRef: 1.0},
			{Pattern: script(1 << 21), CyclePerRef: 50.0},
		}
		res := Run(Config{
			Procs: procs, Protocol: rrFactory(), Seed: 3,
			Duration: 30, CheckInvariants: true, Exclusive: exclusive,
		})
		return res, procs[0]
	}
	msi, _ := mk(false)
	mesi, p := mk(true)
	if msi.ByKind[BusUpgr] != 1 {
		t.Errorf("MSI BusUpgr = %d, want 1", msi.ByKind[BusUpgr])
	}
	if mesi.ByKind[BusUpgr] != 0 {
		t.Errorf("MESI BusUpgr = %d, want 0 (silent upgrade)", mesi.ByKind[BusUpgr])
	}
	if p.Stats.SilentUpgrades != 1 {
		t.Errorf("SilentUpgrades = %d, want 1", p.Stats.SilentUpgrades)
	}
}

func TestMESISharedReadPreventsExclusive(t *testing.T) {
	// Both processors read the same block before one writes it: the
	// second fill sees a holder, enters Shared, and the write still
	// needs a BusUpgr even under MESI.
	shared := uint64(0)
	procs := []*Proc{
		{Pattern: script(1<<20, shared, false, shared, true), CyclePerRef: 3.0},
		{Pattern: script(1<<21, shared, false), CyclePerRef: 1.0},
	}
	res := Run(Config{
		Procs: procs, Protocol: rrFactory(), Seed: 4,
		Duration: 40, CheckInvariants: true, Exclusive: true,
	})
	if res.ByKind[BusUpgr] == 0 {
		t.Error("shared-then-written block upgraded silently (missed sharer)")
	}
}

func TestMESIReducesUpgradeTrafficUnderPrivateWrites(t *testing.T) {
	// Mostly-private mixed workload: MESI should eliminate most BusUpgr
	// traffic while keeping the oracle checks green.
	mk := func(exclusive bool) *Result {
		procs := make([]*Proc, 4)
		for i := range procs {
			// Disjoint per-processor working sets, a bit larger than the
			// cache: blocks churn in and out, get read (filled clean) and
			// later written — the upgrade-heavy private pattern.
			procs[i] = &Proc{
				Pattern: &mp.WorkingSet{
					Bytes:     4096,
					Base:      uint64(i) << 24,
					WriteFrac: 0.3,
				},
				CyclePerRef: 0.3,
			}
		}
		return Run(Config{
			Procs: procs, Protocol: rrFactory(), Seed: 5,
			CacheSize: 2048, Duration: 1500, CheckInvariants: true, Exclusive: exclusive,
		})
	}
	msi := mk(false)
	mesi := mk(true)
	if msi.ByKind[BusUpgr] < 50 {
		t.Fatalf("MSI BusUpgr = %d — workload not upgrade-heavy enough to compare", msi.ByKind[BusUpgr])
	}
	if mesi.ByKind[BusUpgr] != 0 {
		t.Errorf("MESI BusUpgr = %d on fully private data, want 0", mesi.ByKind[BusUpgr])
	}
}
