// Package snoop models a snooping-coherent shared-bus multiprocessor:
// private MSI caches whose misses, upgrades, and write-backs become bus
// transactions arbitrated by the paper's protocols, with every cache
// observing committed transactions on the bus (the same broadcast
// property §2.1 relies on for arbitration).
//
// Unlike internal/mp — which pre-executes references lazily and is
// therefore oblivious to other processors — this machine executes every
// reference at simulation time, so invalidations arrive exactly when
// the invalidating transaction commits on the bus. A per-block version
// oracle checks coherence: a cached copy is readable only while no
// other processor has written the block, so every read hit must observe
// the block's current global version.
package snoop

import (
	"fmt"

	"busarb/internal/core"
	"busarb/internal/mp"
	"busarb/internal/obs"
	"busarb/internal/rng"
	"busarb/internal/sim"
)

// State is a cache-line coherence state (MSI, plus Exclusive when the
// machine runs in MESI mode).
type State uint8

// The coherence states.
const (
	Invalid State = iota
	Shared
	// Exclusive: the only cached copy, clean (MESI mode only). A write
	// hit upgrades to Modified silently, with no bus transaction.
	Exclusive
	Modified
)

// String names the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// TxKind is a bus-transaction type.
type TxKind uint8

// Bus transaction kinds.
const (
	// BusRd fills a block for reading (result state Shared).
	BusRd TxKind = iota
	// BusRdX fills a block for writing (result state Modified);
	// invalidates all other copies.
	BusRdX
	// BusUpgr upgrades Shared to Modified without a data transfer;
	// invalidates all other copies.
	BusUpgr
	// BusWB writes a dirty victim back to memory.
	BusWB
)

// String names the transaction kind.
func (k TxKind) String() string {
	switch k {
	case BusRd:
		return "BusRd"
	case BusRdX:
		return "BusRdX"
	case BusUpgr:
		return "BusUpgr"
	case BusWB:
		return "BusWB"
	}
	return fmt.Sprintf("TxKind(%d)", uint8(k))
}

type line struct {
	tag     uint64
	state   State
	lru     uint64
	version uint64 // global block version captured at fill/upgrade
}

// cache is a set-associative MSI cache.
type cache struct {
	sets      int
	ways      int
	blockBits uint
	lines     [][]line
	clock     uint64
}

func newCache(sizeBytes, blockBytes, ways int) *cache {
	// Reuse mp's geometry validation by constructing (and discarding) a
	// plain cache with the same parameters.
	mp.NewCache(sizeBytes, blockBytes, ways)
	blocks := sizeBytes / blockBytes
	sets := blocks / ways
	blockBits := uint(0)
	for 1<<blockBits < blockBytes {
		blockBits++
	}
	c := &cache{sets: sets, ways: ways, blockBits: blockBits}
	c.lines = make([][]line, sets)
	for s := range c.lines {
		c.lines[s] = make([]line, ways)
	}
	return c
}

func (c *cache) set(block uint64) int { return int(block % uint64(c.sets)) }

// lookup returns the way holding block, or -1.
func (c *cache) lookup(block uint64) int {
	s := c.set(block)
	for w := range c.lines[s] {
		l := &c.lines[s][w]
		if l.state != Invalid && l.tag == block {
			return w
		}
	}
	return -1
}

// victim picks the fill way: an Invalid way if any, else LRU.
func (c *cache) victim(block uint64) int {
	s := c.set(block)
	best, bestLRU := 0, ^uint64(0)
	for w := range c.lines[s] {
		l := &c.lines[s][w]
		if l.state == Invalid {
			return w
		}
		if l.lru < bestLRU {
			bestLRU = l.lru
			best = w
		}
	}
	return best
}

func (c *cache) touch(block uint64, w int) {
	c.clock++
	c.lines[c.set(block)][w].lru = c.clock
}

// Stats collects one processor's coherence statistics.
type Stats struct {
	Refs          int64 // references executed
	Reads, Writes int64
	Misses        int64 // fills (BusRd + BusRdX)
	Upgrades      int64 // BusUpgr transactions
	Writebacks    int64
	// InvalidationsRecv counts copies lost to other processors' writes;
	// CoherenceMisses counts misses to blocks this cache previously
	// held but lost to an invalidation (the sharing traffic).
	InvalidationsRecv int64
	CoherenceMisses   int64
	// SilentUpgrades counts Exclusive->Modified transitions (MESI mode):
	// writes that MSI would have paid a BusUpgr for.
	SilentUpgrades int64
}

// Proc is one processor of the machine.
type Proc struct {
	ID          int
	Pattern     mp.Pattern
	CyclePerRef float64
	Stats       Stats

	cache *cache
	src   *rng.Source

	// Pending transaction chain for the current stalled reference:
	// e.g. [BusWB victim, BusRdX block].
	pendingTx    []tx
	pendingAddr  uint64
	pendingWrite bool

	// invalidated remembers blocks lost to snooped invalidations, to
	// classify later misses as coherence misses.
	invalidated map[uint64]bool
}

type tx struct {
	kind  TxKind
	block uint64
}

// Config assembles a snooping machine.
type Config struct {
	Procs     []*Proc
	Protocol  core.Factory
	CacheSize int // bytes (default 4096)
	BlockSize int // bytes (default 32)
	Ways      int // associativity (default 2)
	Seed      uint64
	// Horizon is the simulated time to run (bus-transaction units).
	Horizon float64
	// Duration is the simulated time to run.
	//
	// Deprecated: use Horizon, the name shared by every simulator
	// Config. Duration is honored only when Horizon is zero.
	Duration float64
	// Observer, if non-nil, receives the machine's event stream:
	// request/arbitration/service events plus CacheMiss at each stalled
	// reference, Invalidation per copy lost to another writer, and
	// ServiceStart/ServiceEnd labeled with the transaction kind.
	Observer obs.Probe
	// Service and ArbOverhead default to the paper's 1.0 and 0.5. An
	// upgrade (no data transfer) costs half a service time.
	Service     float64
	ArbOverhead float64
	// CheckInvariants enables the single-writer and version-oracle
	// checks on every reference (tests keep it on).
	CheckInvariants bool
	// Exclusive enables the MESI Exclusive state: a fill that no other
	// cache holds enters E (real buses signal this on a shared line),
	// and a later write hit upgrades to M silently, saving the BusUpgr.
	Exclusive bool
}

// Result reports machine-level measurements.
type Result struct {
	Protocol string
	N        int
	Time     float64
	BusBusy  float64
	Grants   int64
	ByKind   map[TxKind]int64
	Progress []float64 // per-processor refs per unit time
}

// Utilization returns the bus busy fraction.
func (r *Result) Utilization() float64 {
	if r.Time <= 0 {
		return 0
	}
	return r.BusBusy / r.Time
}

// Summary implements the cross-simulator Report surface.
func (r *Result) Summary() obs.Summary {
	return obs.Summary{
		Simulator:   "snoop",
		Protocol:    r.Protocol,
		N:           r.N,
		Time:        r.Time,
		Grants:      r.Grants,
		Utilization: r.Utilization(),
	}
}

type machine struct {
	cfg   Config
	sched sim.Scheduler
	proto core.Protocol
	procs []*Proc // index 0 unused

	waitingCount int
	busBusy      bool
	arbitrating  bool
	pendingWin   int

	versions map[uint64]uint64 // per-block global write version
	res      *Result
}

// Validate checks the configuration without running it; Run panics on
// exactly these errors.
func (cfg Config) Validate() error {
	if len(cfg.Procs) < 2 {
		return fmt.Errorf("snoop: need at least two processors, got %d", len(cfg.Procs))
	}
	if cfg.Protocol == nil {
		return fmt.Errorf("snoop: Protocol factory is required")
	}
	for i, p := range cfg.Procs {
		if p.Pattern == nil || p.CyclePerRef <= 0 {
			return fmt.Errorf("snoop: processor %d incompletely configured", i+1)
		}
	}
	if cfg.Horizon < 0 {
		return fmt.Errorf("snoop: negative Horizon %v", cfg.Horizon)
	}
	if cfg.Horizon == 0 && cfg.Duration <= 0 {
		return fmt.Errorf("snoop: positive Horizon required")
	}
	return nil
}

// Run executes the machine until the simulated clock reaches
// cfg.Horizon (or the deprecated cfg.Duration).
func Run(cfg Config) *Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := len(cfg.Procs)
	if cfg.Horizon == 0 {
		cfg.Horizon = cfg.Duration
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 4096
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 32
	}
	if cfg.Ways == 0 {
		cfg.Ways = 2
	}
	if cfg.Service == 0 {
		cfg.Service = 1.0
	}
	if cfg.ArbOverhead == 0 {
		cfg.ArbOverhead = 0.5
	}
	m := &machine{
		cfg:      cfg,
		proto:    cfg.Protocol(n),
		procs:    make([]*Proc, n+1),
		versions: make(map[uint64]uint64),
		res: &Result{
			N:        n,
			ByKind:   make(map[TxKind]int64),
			Progress: make([]float64, n),
		},
	}
	m.res.Protocol = m.proto.Name()
	master := rng.New(cfg.Seed)
	for i, p := range cfg.Procs {
		p.ID = i + 1
		p.cache = newCache(cfg.CacheSize, cfg.BlockSize, cfg.Ways)
		p.src = master.Split()
		p.invalidated = make(map[uint64]bool)
		m.procs[p.ID] = p
		m.scheduleRef(p)
	}
	m.sched.RunUntil(cfg.Horizon)
	m.res.Time = cfg.Horizon
	for i, p := range cfg.Procs {
		m.res.Progress[i] = float64(p.Stats.Refs) / cfg.Horizon
	}
	return m.res
}

// emit forwards an event to the configured observer, if any.
func (m *machine) emit(e obs.Event) {
	if m.cfg.Observer != nil {
		m.cfg.Observer.OnEvent(e)
	}
}

func (m *machine) scheduleRef(p *Proc) {
	m.sched.After(p.CyclePerRef, func() { m.executeRef(p) })
}

// executeRef runs one reference; on a hit the processor keeps going, on
// coherence work it stalls and requests the bus.
func (m *machine) executeRef(p *Proc) {
	addr, write := p.Pattern.Next(p.src)
	block := addr >> p.cache.blockBits
	p.Stats.Refs++
	if write {
		p.Stats.Writes++
	} else {
		p.Stats.Reads++
	}
	w := p.cache.lookup(block)
	if w >= 0 {
		l := &p.cache.lines[p.cache.set(block)][w]
		p.cache.touch(block, w)
		switch {
		case !write:
			if m.cfg.CheckInvariants && l.version != m.versions[block] {
				panic(fmt.Sprintf("snoop: proc %d read stale block %d: version %d, global %d",
					p.ID, block, l.version, m.versions[block]))
			}
			m.scheduleRef(p)
			return
		case l.state == Modified:
			m.versions[block]++
			l.version = m.versions[block]
			m.scheduleRef(p)
			return
		case l.state == Exclusive:
			// MESI: the only copy — upgrade silently, no bus traffic.
			l.state = Modified
			m.versions[block]++
			l.version = m.versions[block]
			p.Stats.SilentUpgrades++
			m.scheduleRef(p)
			return
		default: // write hit on Shared: upgrade
			p.pendingTx = []tx{{kind: BusUpgr, block: block}}
			p.pendingAddr = addr
			p.pendingWrite = true
			m.request(p)
			return
		}
	}
	// Miss: maybe a write-back, then the fill.
	p.Stats.Misses++
	m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.CacheMiss, Agent: p.ID, Aux: int64(block)})
	if p.invalidated[block] {
		p.Stats.CoherenceMisses++
		delete(p.invalidated, block)
	}
	p.pendingTx = p.pendingTx[:0]
	v := p.cache.victim(block)
	vl := &p.cache.lines[p.cache.set(block)][v]
	if vl.state == Modified {
		p.pendingTx = append(p.pendingTx, tx{kind: BusWB, block: vl.tag})
	}
	kind := BusRd
	if write {
		kind = BusRdX
	}
	p.pendingTx = append(p.pendingTx, tx{kind: kind, block: block})
	p.pendingAddr = addr
	p.pendingWrite = write
	m.request(p)
}

// --- bus state machine (the §4.1 rules, as in bussim) ---

func (m *machine) request(p *Proc) {
	m.waitingCount++
	m.proto.OnRequest(p.ID, m.sched.Now())
	m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.RequestIssued, Agent: p.ID})
	if !m.arbitrating && m.pendingWin == 0 {
		m.beginArbitration()
	}
}

func (m *machine) waitingIDs() []int {
	ids := make([]int, 0, m.waitingCount)
	for id := 1; id < len(m.procs); id++ {
		if len(m.procs[id].pendingTx) > 0 {
			ids = append(ids, id)
		}
	}
	return ids
}

func (m *machine) beginArbitration() {
	if m.waitingCount == 0 {
		return
	}
	m.arbitrating = true
	snapshot := m.waitingIDs()
	if m.cfg.Observer != nil {
		// Copy: resolve still reads snapshot after the probe sees it.
		m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.ArbitrationStart,
			Agents: append([]int(nil), snapshot...)})
	}
	m.sched.After(m.cfg.ArbOverhead, func() { m.resolve(snapshot) })
}

func (m *machine) resolve(snapshot []int) {
	out := m.proto.Arbitrate(snapshot)
	if out.Repass {
		m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.Repass})
		fresh := m.waitingIDs()
		m.sched.After(m.cfg.ArbOverhead, func() { m.resolve(fresh) })
		return
	}
	m.arbitrating = false
	m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.ArbitrationResolve, Agent: out.Winner})
	if m.busBusy {
		m.pendingWin = out.Winner
	} else {
		m.startTx(out.Winner)
	}
}

func (m *machine) startTx(id int) {
	p := m.procs[id]
	t := p.pendingTx[0]
	m.pendingWin = 0
	m.busBusy = true
	dur := m.cfg.Service
	if t.kind == BusUpgr {
		// No data phase: an address-only transaction at half cost.
		dur = m.cfg.Service / 2
	}
	// The agent releases the request line only when its whole chain is
	// done; mid-chain it competes again immediately, but the protocol
	// sees a service start per transaction.
	m.proto.OnServiceStart(id, m.sched.Now())
	m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.ServiceStart, Agent: id,
		Aux: int64(t.block), Label: t.kind.String()})
	m.waitingCount--
	m.res.Grants++
	m.res.ByKind[t.kind]++
	m.res.BusBusy += dur
	m.sched.After(dur, func() { m.completeTx(p, t) })
	if m.waitingCount > 0 && !m.arbitrating {
		m.beginArbitration()
	}
}

func (m *machine) completeTx(p *Proc, t tx) {
	m.busBusy = false
	m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.ServiceEnd, Agent: p.ID,
		Aux: int64(t.block), Label: t.kind.String()})
	m.commit(p, t)
	p.pendingTx = p.pendingTx[1:]
	if len(p.pendingTx) > 0 {
		// Chain continues (write-back then fill): re-request.
		m.waitingCount++
		m.proto.OnRequest(p.ID, m.sched.Now())
		m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.RequestIssued, Agent: p.ID})
	} else {
		// Reference finished; processor resumes computing.
		m.scheduleRef(p)
	}
	switch {
	case m.pendingWin != 0:
		m.startTx(m.pendingWin)
	case m.arbitrating:
		// in-flight arbitration will grant
	case m.waitingCount > 0:
		m.beginArbitration()
	}
}

// commit applies a transaction's coherence actions at its completion —
// the moment all snoopers observe it.
func (m *machine) commit(p *Proc, t tx) {
	c := p.cache
	switch t.kind {
	case BusWB:
		// Invalidate the victim locally; memory is now current.
		if w := c.lookup(t.block); w >= 0 {
			c.lines[c.set(t.block)][w].state = Invalid
		}
		p.Stats.Writebacks++
	case BusRd, BusRdX:
		// Other caches snoop: M/E holders surrender (flush implied and
		// real buses assert a "shared" line the filler observes);
		// BusRdX invalidates every other copy.
		sharedSeen := false
		for id := 1; id < len(m.procs); id++ {
			if id == p.ID {
				continue
			}
			o := m.procs[id]
			if w := o.cache.lookup(t.block); w >= 0 {
				sharedSeen = true
				ol := &o.cache.lines[o.cache.set(t.block)][w]
				if t.kind == BusRdX {
					ol.state = Invalid
					o.Stats.InvalidationsRecv++
					o.invalidated[t.block] = true
					m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.Invalidation,
						Agent: id, Aux: int64(t.block)})
				} else if ol.state == Modified || ol.state == Exclusive {
					ol.state = Shared
				}
			}
		}
		// Fill locally.
		w := c.victim(t.block)
		l := &c.lines[c.set(t.block)][w]
		if m.cfg.CheckInvariants && l.state == Modified {
			panic("snoop: filling over a Modified victim without write-back")
		}
		l.tag = t.block
		c.touch(t.block, w)
		if t.kind == BusRdX {
			l.state = Modified
			m.versions[t.block]++
			l.version = m.versions[t.block]
		} else {
			l.state = Shared
			if m.cfg.Exclusive && !sharedSeen {
				l.state = Exclusive
			}
			l.version = m.versions[t.block]
		}
	case BusUpgr:
		for id := 1; id < len(m.procs); id++ {
			if id == p.ID {
				continue
			}
			o := m.procs[id]
			if w := o.cache.lookup(t.block); w >= 0 {
				o.cache.lines[o.cache.set(t.block)][w].state = Invalid
				o.Stats.InvalidationsRecv++
				o.invalidated[t.block] = true
				m.emit(obs.Event{Time: m.sched.Now(), Kind: obs.Invalidation,
					Agent: id, Aux: int64(t.block)})
			}
		}
		w := c.lookup(t.block)
		if w < 0 {
			// The copy was invalidated while waiting for the upgrade:
			// in real MSI the upgrade converts to a BusRdX; model that
			// by filling here (same bus cost already paid plus this
			// corner is rare).
			w = c.victim(t.block)
			c.lines[c.set(t.block)][w].tag = t.block
		}
		l := &c.lines[c.set(t.block)][w]
		l.state = Modified
		c.touch(t.block, w)
		m.versions[t.block]++
		l.version = m.versions[t.block]
		p.Stats.Upgrades++
	}
	if m.cfg.CheckInvariants {
		m.checkSingleWriter(t.block)
	}
}

// checkSingleWriter asserts the coherence invariant: at most one
// exclusive-class (Modified or Exclusive) copy, and no Shared copy
// coexists with one.
func (m *machine) checkSingleWriter(block uint64) {
	exclusive, shared := 0, 0
	for id := 1; id < len(m.procs); id++ {
		c := m.procs[id].cache
		if w := c.lookup(block); w >= 0 {
			switch c.lines[c.set(block)][w].state {
			case Modified, Exclusive:
				exclusive++
			case Shared:
				shared++
			}
		}
	}
	if exclusive > 1 || (exclusive == 1 && shared > 0) {
		panic(fmt.Sprintf("snoop: coherence invariant violated on block %d: %dM/E %dS", block, exclusive, shared))
	}
}
