// Package workload builds the agent populations used in the paper's
// simulation experiments (§4.2–§4.5): equal-rate agents, one agent at a
// multiple of the others' request rate, the contrived "just miss"
// worst case for round-robin, and a priority-traffic mix.
package workload

import (
	"fmt"

	"busarb/internal/bussim"
	"busarb/internal/dist"
)

// Scenario is a named agent population for the bus simulator.
type Scenario struct {
	// Name identifies the scenario in reports.
	Name string
	// N is the number of agents.
	N int
	// Inter holds each agent's interrequest sampler (Inter[i] = agent i+1).
	Inter []dist.Sampler
	// UrgentProb optionally marks per-agent urgent-request probability.
	UrgentProb []float64
	// TotalLoad is the total offered load (sum of per-agent loads).
	TotalLoad float64
	// Description explains the construction for experiment records.
	Description string
}

// Apply copies the scenario into a simulator config.
func (s Scenario) Apply(cfg *bussim.Config) {
	cfg.N = s.N
	cfg.Inter = s.Inter
	cfg.UrgentProb = s.UrgentProb
}

// Equal builds n agents with identical interrequest distributions
// (mean set so the total offered load is totalLoad; coefficient of
// variation cv), the §4.2/§4.3 population.
func Equal(n int, totalLoad, cv float64) Scenario {
	return Scenario{
		Name:        fmt.Sprintf("equal(n=%d, load=%.2f, cv=%.2f)", n, totalLoad, cv),
		N:           n,
		Inter:       bussim.UniformLoad(n, totalLoad, cv, 1.0),
		TotalLoad:   totalLoad,
		Description: "all agents identical (§4.2)",
	}
}

// OneScaled builds the §4.4 population: agent 1 offers factor times the
// load of each other agent; every other agent offers baseLoad/n. The
// total offered load is therefore baseLoad*(n-1+factor)/n — e.g. the
// paper's 1.03 for baseLoad 1.0, n=30, factor 2.
func OneScaled(n int, baseLoad, factor, cv float64) Scenario {
	per := baseLoad / float64(n)
	scaled := factor * per
	if scaled >= 1 {
		panic(fmt.Sprintf("workload: scaled per-agent load %v >= 1", scaled))
	}
	inter := make([]dist.Sampler, n)
	inter[0] = dist.ByCV(bussim.MeanForLoad(scaled, 1.0), cv)
	for i := 1; i < n; i++ {
		inter[i] = dist.ByCV(bussim.MeanForLoad(per, 1.0), cv)
	}
	return Scenario{
		Name:        fmt.Sprintf("one-scaled(n=%d, base=%.2f, x%.0f, cv=%.2f)", n, baseLoad, factor, cv),
		N:           n,
		Inter:       inter,
		TotalLoad:   per * (float64(n) - 1 + factor),
		Description: "agent 1 at a multiple of the common request rate (§4.4)",
	}
}

// WorstCaseRR builds the §4.5 population: the "slow" agent (identity 1)
// has interrequest mean n-0.5 and the others n-3.6, at the given
// coefficient of variation. With cv=0 the slow agent deterministically
// "just misses" its round-robin turn every cycle.
func WorstCaseRR(n int, cv float64) Scenario {
	if n < 5 {
		panic("workload: WorstCaseRR needs n >= 5 for positive interrequest times")
	}
	slow := float64(n) - 0.5
	other := float64(n) - 3.6
	inter := make([]dist.Sampler, n)
	inter[0] = dist.ByCV(slow, cv)
	for i := 1; i < n; i++ {
		inter[i] = dist.ByCV(other, cv)
	}
	loadSlow := 1 / (1 + slow)
	loadOther := 1 / (1 + other)
	return Scenario{
		Name:        fmt.Sprintf("worst-case-rr(n=%d, cv=%.2f)", n, cv),
		N:           n,
		Inter:       inter,
		TotalLoad:   loadSlow + float64(n-1)*loadOther,
		Description: "slow agent repeatedly just misses its RR turn (§4.5)",
	}
}

// LoadRatioWorstCase returns Load_slow / Load_other for the §4.5
// scenario, the paper's third column.
func LoadRatioWorstCase(n int) float64 {
	slow := float64(n) - 0.5
	other := float64(n) - 3.6
	return (1 / (1 + slow)) / (1 / (1 + other))
}

// PriorityMix builds n equal agents where each request is urgent with
// probability urgentProb (for the §2.4/§3 priority-integration studies;
// not part of the paper's tables).
func PriorityMix(n int, totalLoad, cv, urgentProb float64) Scenario {
	s := Equal(n, totalLoad, cv)
	s.Name = fmt.Sprintf("priority-mix(n=%d, load=%.2f, urgent=%.2f)", n, totalLoad, urgentProb)
	s.UrgentProb = make([]float64, n)
	for i := range s.UrgentProb {
		s.UrgentProb[i] = urgentProb
	}
	s.Description = "equal agents with a fraction of urgent requests"
	return s
}
