package workload

import (
	"math"
	"testing"

	"busarb/internal/bussim"
)

func TestEqual(t *testing.T) {
	s := Equal(10, 2.5, 1.0)
	if s.N != 10 || len(s.Inter) != 10 {
		t.Fatalf("N/len = %d/%d", s.N, len(s.Inter))
	}
	if math.Abs(s.TotalLoad-2.5) > 1e-12 {
		t.Errorf("TotalLoad = %v", s.TotalLoad)
	}
	for _, d := range s.Inter {
		if math.Abs(d.Mean()-3.0) > 1e-12 {
			t.Errorf("mean = %v, want 3.0", d.Mean())
		}
	}
}

func TestOneScaledPaperTotals(t *testing.T) {
	// Table 4.4(a): base loads {0.25, 0.5, 1.0, ...} with factor 2 give
	// total loads {0.26, 0.52, 1.03, ...}; factor 4 gives {0.28, ...}.
	cases := []struct {
		base, factor, wantTotal float64
	}{
		{0.25, 2, 0.26}, {0.50, 2, 0.52}, {1.00, 2, 1.03}, {2.00, 2, 2.07},
		{0.25, 4, 0.28}, {0.50, 4, 0.55}, {1.00, 4, 1.10}, {5.00, 4, 5.50},
	}
	for _, c := range cases {
		s := OneScaled(30, c.base, c.factor, 1.0)
		if math.Abs(s.TotalLoad-c.wantTotal) > 0.006 {
			t.Errorf("base %v x%v: total = %.3f, paper %v", c.base, c.factor, s.TotalLoad, c.wantTotal)
		}
		// Agent 1's rate is factor times agent 2's.
		r1 := 1 / (1 + s.Inter[0].Mean())
		r2 := 1 / (1 + s.Inter[1].Mean())
		if math.Abs(r1/r2-c.factor) > 1e-9 {
			t.Errorf("rate ratio = %v, want %v", r1/r2, c.factor)
		}
	}
}

func TestOneScaledPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("over-unity scaled load did not panic")
		}
	}()
	OneScaled(10, 5.0, 4, 1.0) // agent 1 load = 2.0
}

func TestWorstCaseRR(t *testing.T) {
	s := WorstCaseRR(10, 0)
	if s.Inter[0].Mean() != 9.5 {
		t.Errorf("slow mean = %v, want 9.5", s.Inter[0].Mean())
	}
	if s.Inter[1].Mean() != 6.4 {
		t.Errorf("other mean = %v, want 6.4", s.Inter[1].Mean())
	}
	if s.Inter[0].CV() != 0 {
		t.Errorf("cv = %v", s.Inter[0].CV())
	}
}

func TestLoadRatioWorstCase(t *testing.T) {
	// n=30: (1/30.5)/(1/27.4) = 27.4/30.5 ≈ 0.898 — the paper's 0.90.
	if r := LoadRatioWorstCase(30); math.Abs(r-0.898) > 0.005 {
		t.Errorf("load ratio(30) = %v, paper ~0.90", r)
	}
	// n=64: 61.4/64.5 ≈ 0.952 — the paper's 0.95.
	if r := LoadRatioWorstCase(64); math.Abs(r-0.952) > 0.005 {
		t.Errorf("load ratio(64) = %v, paper ~0.95", r)
	}
}

func TestWorstCasePanicsOnTinyN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("n=4 did not panic")
		}
	}()
	WorstCaseRR(4, 0)
}

func TestPriorityMix(t *testing.T) {
	s := PriorityMix(8, 1.0, 1.0, 0.25)
	if len(s.UrgentProb) != 8 {
		t.Fatalf("UrgentProb len = %d", len(s.UrgentProb))
	}
	for _, p := range s.UrgentProb {
		if p != 0.25 {
			t.Errorf("urgent prob = %v", p)
		}
	}
}

func TestApply(t *testing.T) {
	s := Equal(6, 1.0, 0.5)
	var cfg bussim.Config
	s.Apply(&cfg)
	if cfg.N != 6 || len(cfg.Inter) != 6 || cfg.UrgentProb != nil {
		t.Error("Apply incomplete")
	}
}
