package obs

import (
	"encoding/json"
	"io"
)

// JSONLWriter is a Probe that streams events as JSON Lines: one JSON
// object per event, one event per line. The schema is stable and
// byte-deterministic for a fixed-seed run (golden-trace tests rely on
// this):
//
//	{"t":<time>,"ev":"<kind>"}                      always present
//	"agent":<id>                                    acting agent (omitted when 0)
//	"agents":[<id>,...]                             arb-start competitor snapshot
//	"level":<l>                                     arbitration level (topology runs)
//	"wait":<w>                                      per-hop wait (topology runs)
//	"urgent":true                                   priority-class request
//	"aux":<n>                                       block / bank detail
//	"label":"<text>"                                e.g. snoop transaction kind
//
// Field order is fixed (t, ev, agent, agents, level, wait, urgent,
// aux, label) and zero-valued optional fields are omitted — so traces
// of flat-bus runs are byte-identical to the pre-topology schema.
type JSONLWriter struct {
	W io.Writer
	// Err holds the first write or encode error; subsequent events are
	// dropped.
	Err error
}

// jsonEvent fixes the trace schema; keep field order in sync with the
// JSONLWriter doc comment.
type jsonEvent struct {
	T      float64 `json:"t"`
	Ev     string  `json:"ev"`
	Agent  int     `json:"agent,omitempty"`
	Agents []int   `json:"agents,omitempty"`
	Level  int     `json:"level,omitempty"`
	Wait   float64 `json:"wait,omitempty"`
	Urgent bool    `json:"urgent,omitempty"`
	Aux    int64   `json:"aux,omitempty"`
	Label  string  `json:"label,omitempty"`
}

// OnEvent implements Probe.
func (w *JSONLWriter) OnEvent(e Event) {
	if w.Err != nil {
		return
	}
	line, err := json.Marshal(jsonEvent{
		T: e.Time, Ev: e.Kind.String(), Agent: e.Agent, Agents: e.Agents,
		Level: e.Level, Wait: e.Wait, Urgent: e.Urgent, Aux: e.Aux, Label: e.Label,
	})
	if err != nil {
		w.Err = err
		return
	}
	line = append(line, '\n')
	_, w.Err = w.W.Write(line)
}

// ReadJSONL decodes a JSONL trace back into events, inverting
// JSONLWriter (for tools and tests that post-process traces).
func ReadJSONL(r io.Reader) ([]Event, error) {
	kinds := map[string]Kind{}
	for k := RequestIssued; k <= BankConflict; k++ {
		kinds[k.String()] = k
	}
	dec := json.NewDecoder(r)
	var out []Event
	for dec.More() {
		var je jsonEvent
		if err := dec.Decode(&je); err != nil {
			return out, err
		}
		k, ok := kinds[je.Ev]
		if !ok {
			continue // unknown kinds are skipped, for forward compatibility
		}
		out = append(out, Event{
			Time: je.T, Kind: k, Agent: je.Agent, Agents: je.Agents,
			Level: je.Level, Wait: je.Wait,
			Urgent: je.Urgent, Aux: je.Aux, Label: je.Label,
		})
	}
	return out, nil
}
