package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		RequestIssued: "request", ArbitrationStart: "arb-start",
		ArbitrationResolve: "arb-resolve", Repass: "arb-repass",
		ServiceStart: "service-start", ServiceEnd: "service-end",
		CacheMiss: "cache-miss", Invalidation: "invalidation",
		BankConflict: "bank-conflict",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Errorf("unknown kind string = %q", Kind(99).String())
	}
}

func TestMultiFansOut(t *testing.T) {
	var a, b Buffer
	m := Multi{&a, &b}
	m.OnEvent(Event{Time: 1, Kind: RequestIssued, Agent: 3})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("lens = %d, %d, want 1, 1", a.Len(), b.Len())
	}
}

func TestFilterSelectsKinds(t *testing.T) {
	var buf Buffer
	f := Filter{Next: &buf, Kinds: map[Kind]bool{ServiceStart: true}}
	f.OnEvent(Event{Kind: RequestIssued, Agent: 1})
	f.OnEvent(Event{Kind: ServiceStart, Agent: 1})
	f.OnEvent(Event{Kind: ServiceEnd, Agent: 1})
	if buf.Len() != 1 || buf.Events()[0].Kind != ServiceStart {
		t.Fatalf("filtered buffer = %v", buf.Events())
	}
}

func TestBufferCap(t *testing.T) {
	buf := Buffer{Cap: 3}
	for i := 0; i < 10; i++ {
		buf.OnEvent(Event{Time: float64(i), Kind: RequestIssued, Agent: 1})
	}
	evs := buf.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3 (capped)", len(evs))
	}
	if evs[0].Time != 7 || evs[2].Time != 9 {
		t.Errorf("ring kept %v, want the newest three", evs)
	}
	buf.Reset()
	if buf.Len() != 0 {
		t.Errorf("Len after Reset = %d", buf.Len())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.OnEvent(Event{Kind: RequestIssued})
	c.OnEvent(Event{Kind: RequestIssued})
	c.OnEvent(Event{Kind: ServiceEnd})
	if c.Total != 3 || c.Count(RequestIssued) != 2 || c.Count(ServiceEnd) != 1 {
		t.Errorf("counter = %+v", c)
	}
}

func TestTextWriterRendersEvents(t *testing.T) {
	var sb strings.Builder
	w := TextWriter{W: &sb}
	w.OnEvent(Event{Time: 1.5, Kind: ServiceStart, Agent: 2})
	if w.Err != nil {
		t.Fatal(w.Err)
	}
	out := sb.String()
	if !strings.Contains(out, "service-start") || !strings.Contains(out, "2") {
		t.Errorf("text output %q lacks kind or agent", out)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Time: 0.5, Kind: RequestIssued, Agent: 1, Urgent: true},
		{Time: 1.0, Kind: ArbitrationStart, Agents: []int{1, 2}},
		{Time: 1.5, Kind: ArbitrationResolve, Agent: 2},
		{Time: 1.5, Kind: ServiceStart, Agent: 2, Aux: 7, Label: "BusRd"},
		{Time: 2.5, Kind: ServiceEnd, Agent: 2},
	}
	var buf bytes.Buffer
	w := JSONLWriter{W: &buf}
	for _, e := range events {
		w.OnEvent(e)
	}
	if w.Err != nil {
		t.Fatal(w.Err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		w, g := events[i], got[i]
		if w.Time != g.Time || w.Kind != g.Kind || w.Agent != g.Agent ||
			w.Urgent != g.Urgent || w.Aux != g.Aux || w.Label != g.Label ||
			len(w.Agents) != len(g.Agents) {
			t.Errorf("event %d: got %+v, want %+v", i, g, w)
		}
	}
}

func TestReadJSONLSkipsUnknownKinds(t *testing.T) {
	in := `{"t":1,"ev":"request","agent":1}
{"t":2,"ev":"some-future-kind","agent":1}
{"t":3,"ev":"service-end","agent":1}
`
	got, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d events, want 2 (unknown kind skipped)", len(got))
	}
}

func TestMetricsWindows(t *testing.T) {
	m := NewMetrics(10)
	// Agent 1: request at 1, served 2..4; agent 2: request at 12, served
	// 13..15. One arbitration each.
	feed := []Event{
		{Time: 1, Kind: RequestIssued, Agent: 1},
		{Time: 1, Kind: ArbitrationStart, Agents: []int{1}},
		{Time: 2, Kind: ArbitrationResolve, Agent: 1},
		{Time: 2, Kind: ServiceStart, Agent: 1},
		{Time: 4, Kind: ServiceEnd, Agent: 1},
		{Time: 12, Kind: RequestIssued, Agent: 2},
		{Time: 12.5, Kind: Repass},
		{Time: 13, Kind: ArbitrationResolve, Agent: 2},
		{Time: 13, Kind: ServiceStart, Agent: 2},
		{Time: 15, Kind: ServiceEnd, Agent: 2},
	}
	for _, e := range feed {
		m.OnEvent(e)
	}
	m.Flush(20)
	wins := m.Windows()
	if len(wins) != 2 {
		t.Fatalf("%d windows, want 2", len(wins))
	}
	w0, w1 := wins[0], wins[1]
	if w0.Start != 0 || w0.End != 10 || w1.Start != 10 || w1.End != 20 {
		t.Fatalf("window bounds [%v,%v) [%v,%v)", w0.Start, w0.End, w1.Start, w1.End)
	}
	if w0.Arbitrations != 1 || w1.Arbitrations != 1 || w1.Repasses != 1 {
		t.Errorf("arb counts: %d/%d repasses %d", w0.Arbitrations, w1.Arbitrations, w1.Repasses)
	}
	a1 := w0.Agents[0]
	if a1.Requests != 1 || a1.Grants != 1 || a1.Completions != 1 {
		t.Errorf("agent 1 window 0: %+v", a1)
	}
	// Residence: request at 1, end at 4 → 3. Busy: 2..4 → 2.
	if math.Abs(a1.WaitMean-3) > 1e-9 || math.Abs(a1.Busy-2) > 1e-9 {
		t.Errorf("agent 1 wait %v busy %v, want 3 and 2", a1.WaitMean, a1.Busy)
	}
	if u := w0.Utilization(1); math.Abs(u-0.2) > 1e-9 {
		t.Errorf("utilization = %v, want 0.2", u)
	}
	a2 := w1.Agents[1]
	if a2.Requests != 1 || math.Abs(a2.WaitMean-3) > 1e-9 {
		t.Errorf("agent 2 window 1: %+v", a2)
	}
	// The table renderer shouldn't error and should mention both windows.
	var sb strings.Builder
	if err := m.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "window [0,10)") {
		t.Errorf("table output:\n%s", sb.String())
	}
}

func TestMetricsQuantiles(t *testing.T) {
	m := NewMetrics(1000)
	// Ten completions with residence times 1..10.
	for i := 1; i <= 10; i++ {
		ti := float64(i)
		m.OnEvent(Event{Time: 10 * ti, Kind: RequestIssued, Agent: 1})
		m.OnEvent(Event{Time: 10*ti + ti - 0.5, Kind: ServiceStart, Agent: 1})
		m.OnEvent(Event{Time: 10*ti + ti, Kind: ServiceEnd, Agent: 1})
	}
	m.Flush(200)
	all := m.Windows()
	var a *AgentWindow
	for i := range all {
		if all[i].Agents[0].Completions > 0 {
			if a != nil {
				t.Fatal("completions split across windows; widen the window")
			}
			a = &all[i].Agents[0]
		}
	}
	if a == nil {
		t.Fatal("no completions recorded")
	}
	if a.WaitP50 != 5 || a.WaitP90 != 9 || a.WaitMax != 10 {
		t.Errorf("quantiles p50=%v p90=%v max=%v, want 5, 9, 10", a.WaitP50, a.WaitP90, a.WaitMax)
	}
}

func TestNewMetricsPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMetrics(0) did not panic")
		}
	}()
	NewMetrics(0)
}
