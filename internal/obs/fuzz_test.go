package obs

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSONL throws arbitrary bytes at the JSONL trace reader and
// pins two properties the trace tooling relies on:
//
//  1. ReadJSONL never panics, whatever the input — corrupt traces must
//     fail with an error (possibly after yielding a valid prefix), not
//     crash arbtrace.
//  2. Write∘Read is a projection: re-encoding whatever was decoded and
//     decoding it again reproduces the same byte stream. This is the
//     byte-determinism contract of the JSONL schema (golden-file tests
//     pin it for one trace; the fuzzer pins it for all decodable
//     inputs, covering field order, omitempty boundaries, and the
//     nil-vs-empty Agents slice).
func FuzzReadJSONL(f *testing.F) {
	// A well-formed trace touching every field of the schema.
	var golden bytes.Buffer
	w := &JSONLWriter{W: &golden}
	for _, e := range []Event{
		{Time: 0, Kind: RequestIssued, Agent: 2, Urgent: true},
		{Time: 0.5, Kind: ArbitrationStart, Agents: []int{1, 2, 3}},
		{Time: 1.25, Kind: ArbitrationResolve, Agent: 3},
		{Time: 1.25, Kind: Repass},
		{Time: 2, Kind: ServiceStart, Agent: 3, Label: "BusRdX"},
		{Time: 3, Kind: ServiceEnd, Agent: 3},
		{Time: 3, Kind: CacheMiss, Agent: 1, Aux: 4096},
		{Time: 4, Kind: Invalidation, Agent: 2, Aux: 4096},
		{Time: 5, Kind: BankConflict, Agent: 1, Aux: 7},
	} {
		w.OnEvent(e)
	}
	if w.Err != nil {
		f.Fatal(w.Err)
	}
	f.Add(golden.Bytes())
	f.Add([]byte(`{"t":1,"ev":"request","agent":1}`))
	f.Add([]byte(`{"t":1,"ev":"unknown-kind"}` + "\n" + `{"t":2,"ev":"arb-repass"}`))
	f.Add([]byte(`{"t":1,"ev":"arb-start","agents":[]}`))
	f.Add([]byte(`{"t":`))
	f.Add([]byte("\x00\xff garbage"))
	f.Add([]byte(`{"t":1e308,"ev":"request","aux":-9223372036854775808}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadJSONL(bytes.NewReader(data))
		// Property 1 is the absence of a panic. Whatever decoded —
		// including a valid prefix before an error — must round-trip.
		if err != nil && len(events) == 0 {
			return
		}

		var first bytes.Buffer
		w1 := &JSONLWriter{W: &first}
		for _, e := range events {
			w1.OnEvent(e)
		}
		if w1.Err != nil {
			t.Fatalf("re-encoding decoded events: %v", w1.Err)
		}

		again, err := ReadJSONL(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("decoding re-encoded trace: %v\ntrace:\n%s", err, first.String())
		}
		if len(again) != len(events) {
			t.Fatalf("round-trip changed event count: %d -> %d", len(events), len(again))
		}

		var second bytes.Buffer
		w2 := &JSONLWriter{W: &second}
		for _, e := range again {
			w2.OnEvent(e)
		}
		if w2.Err != nil {
			t.Fatal(w2.Err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("re-encoding is not byte-stable:\nfirst:\n%s\nsecond:\n%s",
				first.String(), second.String())
		}
		if n := strings.Count(first.String(), "\n"); n != len(events) {
			t.Fatalf("%d events produced %d lines", len(events), n)
		}
	})
}
