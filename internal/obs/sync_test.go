package obs

import (
	"sync"
	"testing"
)

// TestSynchronizedConcurrentEmitAndRead drives a Synchronized-wrapped
// Counter from several producer goroutines while a reader snapshots it
// through Do. Correctness is the exact final tally; the race detector
// (make check runs the suite under -race) verifies the locking.
func TestSynchronizedConcurrentEmitAndRead(t *testing.T) {
	c := &Counter{}
	p := Synchronized(c)

	const producers = 4
	const perProducer = 1000

	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			p.Do(func() {
				if c.Total < 0 {
					t.Error("negative tally")
				}
			})
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				p.OnEvent(Event{Kind: ServiceStart, Agent: g + 1})
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	var total int64
	p.Do(func() { total = c.Count(ServiceStart) })
	if want := int64(producers * perProducer); total != want {
		t.Errorf("Synchronized counter total = %d, want %d", total, want)
	}
}
