// Cross-simulator probe tests: these run the real simulators against
// the obs consumers, so they live in an external test package (obs
// itself imports no simulator).
package obs_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"busarb/internal/bussim"
	"busarb/internal/core"
	"busarb/internal/cyclesim"
	"busarb/internal/membus"
	"busarb/internal/mp"
	"busarb/internal/obs"
	"busarb/internal/snoop"
)

func rr1() core.Factory {
	f, err := core.ByName("RR1")
	if err != nil {
		panic(err)
	}
	return f
}

// goldenConfig is the fixed-seed run whose JSONL trace is committed
// under testdata; any change to event content, ordering, or encoding
// shows up as a byte-level diff.
func goldenConfig(p obs.Probe) bussim.Config {
	return bussim.Config{
		N:        3,
		Protocol: rr1(),
		Inter:    bussim.UniformLoad(3, 1.5, 1.0, 1.0),
		Seed:     7,
		Batches:  1, BatchSize: 25,
		Warmup:   -1,
		Observer: p,
	}
}

// TestGoldenJSONLTrace pins the JSONL trace format byte for byte. To
// regenerate after an intentional schema change:
//
//	UPDATE_GOLDEN=1 go test ./internal/obs -run TestGoldenJSONLTrace
func TestGoldenJSONLTrace(t *testing.T) {
	var buf bytes.Buffer
	w := &obs.JSONLWriter{W: &buf}
	bussim.Run(goldenConfig(w))
	if w.Err != nil {
		t.Fatal(w.Err)
	}
	golden := filepath.Join("testdata", "golden_bussim_rr1.jsonl")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace diverges from golden file (%d vs %d bytes); "+
			"if the change is intentional, rerun with UPDATE_GOLDEN=1",
			buf.Len(), len(want))
	}
	// The committed trace must also decode back to events.
	events, err := obs.ReadJSONL(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("golden trace decoded to zero events")
	}
}

// TestObserverDoesNotPerturb pins the zero-cost contract's semantic
// half: attaching a probe must not change a fixed-seed run's results.
func TestObserverDoesNotPerturb(t *testing.T) {
	bare := bussim.Run(goldenConfig(nil))
	var buf obs.Buffer
	observed := bussim.Run(goldenConfig(&buf))
	if buf.Len() == 0 {
		t.Fatal("no events observed")
	}
	if bare.Completions != observed.Completions ||
		bare.WallTime != observed.WallTime ||
		bare.Utilization.Mean != observed.Utilization.Mean ||
		bare.WaitMean.Mean != observed.WaitMean.Mean {
		t.Errorf("observer perturbed the run: %+v vs %+v", bare, observed)
	}
}

// checkStartFollowsResolve asserts the core event-ordering invariant:
// a ServiceStart for an agent never precedes the ArbitrationResolve
// that selected it.
func checkStartFollowsResolve(t *testing.T, name string, events []obs.Event) {
	t.Helper()
	if len(events) == 0 {
		t.Fatalf("%s: no events", name)
	}
	credits := map[int]int{}
	starts := 0
	for i, e := range events {
		switch e.Kind {
		case obs.ArbitrationResolve:
			credits[e.Agent]++
		case obs.ServiceStart:
			starts++
			if credits[e.Agent] <= 0 {
				t.Fatalf("%s: event %d: ServiceStart for agent %d precedes its ArbitrationResolve",
					name, i, e.Agent)
			}
			credits[e.Agent]--
		}
	}
	if starts == 0 {
		t.Fatalf("%s: no ServiceStart events", name)
	}
}

func TestEventOrderingAcrossSimulators(t *testing.T) {
	t.Run("bussim", func(t *testing.T) {
		var buf obs.Buffer
		bussim.Run(bussim.Config{
			N: 4, Protocol: rr1(), Inter: bussim.UniformLoad(4, 2.0, 1.0, 1.0),
			Seed: 3, Batches: 2, BatchSize: 200, Warmup: -1,
			Observer: &buf,
		})
		checkStartFollowsResolve(t, "bussim", buf.Events())
	})
	t.Run("cyclesim", func(t *testing.T) {
		var buf obs.Buffer
		cyclesim.Run(cyclesim.Config{
			Protocol: cyclesim.RR2, N: 5, Seed: 9, Horizon: 600, Observer: &buf,
		})
		checkStartFollowsResolve(t, "cyclesim", buf.Events())
	})
	t.Run("mp", func(t *testing.T) {
		var buf obs.Buffer
		procs := make([]*mp.Processor, 3)
		for i := range procs {
			procs[i] = &mp.Processor{
				Cache:       mp.NewCache(1024, 32, 2),
				Pattern:     &mp.WorkingSet{Bytes: 16384, WriteFrac: 0.3},
				CyclePerRef: 0.2,
			}
		}
		mp.Run(mp.MachineConfig{
			Processors: procs, Protocol: rr1(), Seed: 11,
			Batches: 2, BatchSize: 200, Observer: &buf,
		})
		checkStartFollowsResolve(t, "mp", buf.Events())
		misses := 0
		for _, e := range buf.Events() {
			if e.Kind == obs.CacheMiss {
				misses++
			}
		}
		if misses == 0 {
			t.Error("mp: no CacheMiss events")
		}
	})
	t.Run("snoop", func(t *testing.T) {
		var buf obs.Buffer
		snoop.Run(snoop.Config{
			Procs: []*snoop.Proc{
				{Pattern: &mp.WorkingSet{Bytes: 8192, WriteFrac: 0.4}, CyclePerRef: 0.5},
				{Pattern: &mp.WorkingSet{Bytes: 8192, WriteFrac: 0.4}, CyclePerRef: 0.5},
			},
			Protocol: rr1(), Seed: 13, Horizon: 400,
			CheckInvariants: true, Observer: &buf,
		})
		checkStartFollowsResolve(t, "snoop", buf.Events())
		var invalidations, misses int64
		for _, e := range buf.Events() {
			switch e.Kind {
			case obs.Invalidation:
				invalidations++
			case obs.CacheMiss:
				misses++
			}
		}
		if invalidations == 0 {
			t.Error("snoop: no Invalidation events on a shared working set")
		}
		if misses == 0 {
			t.Error("snoop: no CacheMiss events")
		}
	})
	t.Run("membus", func(t *testing.T) {
		for _, mode := range []membus.Mode{membus.Connected, membus.Split} {
			var buf obs.Buffer
			membus.Run(membus.Config{
				N: 4, Banks: 2, Protocol: rr1(), Mode: mode,
				Inter: bussim.UniformLoad(4, 2.0, 1.0, 2.5),
				Seed:  17, Batches: 2, BatchSize: 300, Observer: &buf,
			})
			checkStartFollowsResolve(t, "membus/"+mode.String(), buf.Events())
			conflicts := 0
			for _, e := range buf.Events() {
				if e.Kind == obs.BankConflict {
					conflicts++
				}
			}
			// Only split mode overlaps memory accesses, so only it can
			// find a bank still busy; connected mode serializes them.
			if mode == membus.Split && conflicts == 0 {
				t.Errorf("membus/split: no BankConflict events at high load on 2 banks")
			}
			if mode == membus.Connected && conflicts != 0 {
				t.Errorf("membus/connected: %d BankConflict events; the held bus should serialize banks", conflicts)
			}
		}
	})
}

// TestSnoopEventCountsMatchStats ties the event stream to the
// simulator's own counters: exactly one CacheMiss per recorded miss and
// one Invalidation per received invalidation.
func TestSnoopEventCountsMatchStats(t *testing.T) {
	var counter obs.Counter
	procs := []*snoop.Proc{
		{Pattern: &mp.WorkingSet{Bytes: 8192, WriteFrac: 0.4}, CyclePerRef: 0.5},
		{Pattern: &mp.WorkingSet{Bytes: 8192, WriteFrac: 0.4}, CyclePerRef: 0.5},
	}
	snoop.Run(snoop.Config{
		Procs: procs, Protocol: rr1(), Seed: 13, Horizon: 400,
		CheckInvariants: true, Observer: &counter,
	})
	var wantMiss, wantInv int64
	for _, p := range procs {
		wantMiss += p.Stats.Misses
		wantInv += p.Stats.InvalidationsRecv
	}
	if got := counter.Count(obs.CacheMiss); got != wantMiss {
		t.Errorf("CacheMiss events = %d, Stats.Misses = %d", got, wantMiss)
	}
	if got := counter.Count(obs.Invalidation); got != wantInv {
		t.Errorf("Invalidation events = %d, Stats.InvalidationsRecv = %d", got, wantInv)
	}
}

// TestMPMissEventsMatchCacheCounters pins the one-CacheMiss-per-miss
// contract of the mp wrapper probe.
func TestMPMissEventsMatchCacheCounters(t *testing.T) {
	var counter obs.Counter
	procs := make([]*mp.Processor, 2)
	for i := range procs {
		procs[i] = &mp.Processor{
			Cache:       mp.NewCache(1024, 32, 2),
			Pattern:     &mp.WorkingSet{Bytes: 16384, WriteFrac: 0.3},
			CyclePerRef: 0.2,
		}
	}
	mp.Run(mp.MachineConfig{
		Processors: procs, Protocol: rr1(), Seed: 11,
		Batches: 2, BatchSize: 200, Observer: &counter,
	})
	var want int64
	for _, p := range procs {
		want += p.Cache.Misses
	}
	// The run ends mid-flight: the last miss of each processor may have
	// been recorded by the cache but not yet reached the bus.
	got := counter.Count(obs.CacheMiss)
	if got == 0 || got > want || want-got > int64(len(procs)) {
		t.Errorf("CacheMiss events = %d, cache misses = %d (want within %d)",
			got, want, len(procs))
	}
}

// TestHorizonStopsRun pins the Horizon contract: the run ends at the
// simulated-time cutoff instead of the completion target.
func TestHorizonStopsRun(t *testing.T) {
	cfg := goldenConfig(nil)
	cfg.Batches = 100
	cfg.BatchSize = 1000
	cfg.Horizon = 50
	res := bussim.Run(cfg)
	if res.WallTime > 50 {
		t.Errorf("WallTime = %v, want <= Horizon 50", res.WallTime)
	}
	if res.Completions >= 100*1000 {
		t.Errorf("run reached the completion target despite the horizon")
	}
}
