package obs

import "sync"

// Synchronized wraps a probe for use across goroutines. The built-in
// consumers in this package (Metrics, Counter, Filter, TextWriter —
// everything except Buffer) assume the simulators' single-goroutine
// event loop and carry no internal locking; Synchronized adds the
// mutex at the seam for callers, like the arbd shard loops, whose
// events are produced on one goroutine but whose consumers are also
// read from HTTP handler goroutines.
//
// The zero-cost contract is unaffected: simulators still guard
// emissions with a nil-Observer check, and a Synchronized probe is
// only paid for when one is installed.
func Synchronized(p Probe) *SynchronizedProbe {
	return &SynchronizedProbe{p: p}
}

// SynchronizedProbe is a Probe whose OnEvent holds a mutex, plus a Do
// hook for reading the wrapped consumer's state under the same mutex.
type SynchronizedProbe struct {
	mu sync.Mutex
	p  Probe // guarded by mu
}

// OnEvent implements Probe: it forwards under the lock.
func (s *SynchronizedProbe) OnEvent(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.p.OnEvent(e)
}

// Do runs f while holding the probe's mutex, excluding concurrent
// OnEvent calls. Readers use it to take consistent snapshots of the
// wrapped consumer (e.g. Metrics windows or Counter tallies) while the
// producing loop keeps running; f must not call OnEvent or Do on the
// same probe.
func (s *SynchronizedProbe) Do(f func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f()
}
