package obs

import (
	"fmt"
	"io"
	"sort"
)

// AgentWindow is one agent's activity within one metrics window.
type AgentWindow struct {
	// Requests counts requests the agent issued in the window.
	Requests int64
	// Grants counts bus tenures the agent started in the window.
	Grants int64
	// Completions counts tenures that finished in the window.
	Completions int64
	// Busy is the bus time the agent's completed tenures consumed,
	// attributed to the window each tenure ended in.
	Busy float64
	// WaitMean, WaitP50, WaitP90, WaitMax summarize the residence
	// times (request issue to service end) of the window's completions.
	WaitMean float64
	WaitP50  float64
	WaitP90  float64
	WaitMax  float64
}

// HopWindow summarizes one arbitration level's per-hop waits within
// one metrics window (topology runs; flat-bus runs produce none).
type HopWindow struct {
	// Level is the arbitration level, 0 at the root bus.
	Level int
	// Resolves counts level resolutions in the window.
	Resolves int64
	// WaitMean, WaitP50, WaitP90, WaitMax summarize the hop waits —
	// resolve time minus the level's winning-line assert time.
	WaitMean float64
	WaitP50  float64
	WaitP90  float64
	WaitMax  float64
}

// Window is one time slice of the windowed metrics.
type Window struct {
	// Start and End bound the window: [Start, End).
	Start, End float64
	// Arbitrations and Repasses count resolutions and empty passes.
	// On topology runs only root (level-0) resolutions count: the
	// deeper resolve events are the same settle seen at inner buses.
	Arbitrations int64
	Repasses     int64
	// Agents holds per-agent activity, indexed by identity-1.
	Agents []AgentWindow
	// Hops holds per-level hop-wait summaries, ascending by level
	// (nil on flat-bus runs, whose events carry no hop waits).
	Hops []HopWindow
}

// Utilization returns agent id's bus utilization over the window.
func (w *Window) Utilization(id int) float64 {
	if w.End <= w.Start {
		return 0
	}
	return w.Agents[id-1].Busy / (w.End - w.Start)
}

// Metrics is a Probe that aggregates the event stream into fixed-width
// time windows of per-agent activity: utilization, waiting-time
// quantiles, arbitration counts. It answers the questions the
// aggregate Result structs cannot — how waiting time and bandwidth
// share evolve over a run, per agent.
//
// Windows are [k*Width, (k+1)*Width). A tenure's busy time and
// residence time are attributed to the window its ServiceEnd falls in.
// Call Flush when the run ends to close the final partial window.
type Metrics struct {
	// Width is the window length in simulator time units.
	Width float64

	n      int // highest agent identity seen
	closed []Window

	// Current-window accumulation.
	curIdx      int64 // index of the window being accumulated
	started     bool
	cur         Window
	curWaits    [][]float64 // per-agent residence samples this window
	curHopWaits [][]float64 // per-level hop-wait samples this window

	// Cross-window request/service state.
	issueQ     [][]float64 // per-agent FIFO of request-issue times
	startTimes []float64   // per-agent current tenure start
}

// NewMetrics returns a collector with the given window width.
func NewMetrics(width float64) *Metrics {
	if width <= 0 {
		panic(fmt.Sprintf("obs: metrics window width %v must be positive", width))
	}
	return &Metrics{Width: width}
}

// grow ensures per-agent state exists for identity id.
func (m *Metrics) grow(id int) {
	if id <= m.n {
		return
	}
	m.n = id
	for len(m.issueQ) < id {
		m.issueQ = append(m.issueQ, nil)
		m.startTimes = append(m.startTimes, 0)
	}
	for len(m.cur.Agents) < id {
		m.cur.Agents = append(m.cur.Agents, AgentWindow{})
		m.curWaits = append(m.curWaits, nil)
	}
}

// rollTo closes windows until the one containing time t is current.
func (m *Metrics) rollTo(t float64) {
	idx := int64(t / m.Width)
	if !m.started {
		m.started = true
		m.curIdx = idx
		m.cur.Start = float64(idx) * m.Width
		m.cur.End = m.cur.Start + m.Width
		return
	}
	for m.curIdx < idx {
		m.closeCurrent(m.cur.Start + m.Width)
		m.curIdx++
		m.cur.Start = float64(m.curIdx) * m.Width
		m.cur.End = m.cur.Start + m.Width
	}
}

// closeCurrent finalizes the current window at end time end.
func (m *Metrics) closeCurrent(end float64) {
	m.cur.End = end
	for i := range m.cur.Agents {
		a := &m.cur.Agents[i]
		waits := m.curWaits[i]
		if len(waits) > 0 {
			sort.Float64s(waits)
			sum := 0.0
			for _, w := range waits {
				sum += w
			}
			a.WaitMean = sum / float64(len(waits))
			a.WaitP50 = quantile(waits, 0.50)
			a.WaitP90 = quantile(waits, 0.90)
			a.WaitMax = waits[len(waits)-1]
		}
		m.curWaits[i] = waits[:0]
	}
	m.cur.Hops = m.cur.Hops[:0]
	for lvl, waits := range m.curHopWaits {
		if len(waits) == 0 {
			continue
		}
		sort.Float64s(waits)
		sum := 0.0
		for _, w := range waits {
			sum += w
		}
		m.cur.Hops = append(m.cur.Hops, HopWindow{
			Level:    lvl,
			Resolves: int64(len(waits)),
			WaitMean: sum / float64(len(waits)),
			WaitP50:  quantile(waits, 0.50),
			WaitP90:  quantile(waits, 0.90),
			WaitMax:  waits[len(waits)-1],
		})
		m.curHopWaits[lvl] = waits[:0]
	}
	// Deep-copy the agent and hop slices: cur is reused for the next
	// window.
	out := m.cur
	out.Agents = append([]AgentWindow(nil), m.cur.Agents...)
	out.Hops = nil
	if len(m.cur.Hops) > 0 {
		out.Hops = append([]HopWindow(nil), m.cur.Hops...)
	}
	m.closed = append(m.closed, out)
	m.cur.Arbitrations = 0
	m.cur.Repasses = 0
	for i := range m.cur.Agents {
		m.cur.Agents[i] = AgentWindow{}
	}
}

// quantile returns the q-quantile of sorted samples (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// OnEvent implements Probe.
func (m *Metrics) OnEvent(e Event) {
	if e.Agent > 0 {
		m.grow(e.Agent)
	}
	m.rollTo(e.Time)
	switch e.Kind {
	case RequestIssued:
		m.issueQ[e.Agent-1] = append(m.issueQ[e.Agent-1], e.Time)
		m.cur.Agents[e.Agent-1].Requests++
	case ArbitrationResolve:
		if e.Level == 0 {
			m.cur.Arbitrations++
		}
		if e.Wait > 0 {
			for len(m.curHopWaits) <= e.Level {
				m.curHopWaits = append(m.curHopWaits, nil)
			}
			m.curHopWaits[e.Level] = append(m.curHopWaits[e.Level], e.Wait)
		}
	case Repass:
		m.cur.Repasses++
	case ServiceStart:
		m.startTimes[e.Agent-1] = e.Time
		m.cur.Agents[e.Agent-1].Grants++
	case ServiceEnd:
		i := e.Agent - 1
		a := &m.cur.Agents[i]
		a.Completions++
		a.Busy += e.Time - m.startTimes[i]
		if q := m.issueQ[i]; len(q) > 0 {
			// Requests are served oldest-first (FIFO per agent, the
			// simulators' discipline), so the completing tenure belongs
			// to the head of the issue queue.
			m.curWaits[i] = append(m.curWaits[i], e.Time-q[0])
			copy(q, q[1:])
			m.issueQ[i] = q[:len(q)-1]
		}
	}
}

// Flush closes the final partial window at time end (use the run's
// simulated end time; any earlier value is clamped to the last event).
func (m *Metrics) Flush(end float64) {
	if !m.started {
		return
	}
	if end < m.cur.Start {
		end = m.cur.Start
	}
	if end > m.cur.Start+m.Width {
		// Roll empty windows up to the one containing end, then close.
		m.rollTo(end)
	}
	m.closeCurrent(end)
	m.started = false
}

// Windows returns the closed windows accumulated so far.
func (m *Metrics) Windows() []Window { return m.closed }

// WriteTable renders the windowed metrics as a per-window, per-agent
// text table (the arbsim -metrics-window output).
func (m *Metrics) WriteTable(w io.Writer) error {
	for _, win := range m.closed {
		var reqs int64
		for _, a := range win.Agents {
			reqs += a.Requests
		}
		if _, err := fmt.Fprintf(w, "window [%.4g,%.4g): %d requests, %d arbitrations, %d repasses\n",
			win.Start, win.End, reqs, win.Arbitrations, win.Repasses); err != nil {
			return err
		}
		for _, h := range win.Hops {
			if _, err := fmt.Fprintf(w, "  hop level %d: %d resolves, wait mean=%.2f p50=%.2f p90=%.2f max=%.2f\n",
				h.Level, h.Resolves, h.WaitMean, h.WaitP50, h.WaitP90, h.WaitMax); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "  %5s %8s %8s %8s %8s %8s %8s %8s\n",
			"agent", "reqs", "grants", "util", "Wmean", "Wp50", "Wp90", "Wmax"); err != nil {
			return err
		}
		for id := 1; id <= len(win.Agents); id++ {
			a := win.Agents[id-1]
			if a.Requests == 0 && a.Grants == 0 && a.Completions == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "  %5d %8d %8d %8.3f %8.2f %8.2f %8.2f %8.2f\n",
				id, a.Requests, a.Grants, win.Utilization(id),
				a.WaitMean, a.WaitP50, a.WaitP90, a.WaitMax); err != nil {
				return err
			}
		}
	}
	return nil
}
