// Package obs is the cross-simulator observability layer: a small
// event vocabulary covering the lifecycle of a bus request — issue,
// arbitration, service — plus simulator-specific occurrences (cache
// misses, coherence invalidations, memory-bank conflicts), delivered
// through the Probe interface to pluggable consumers.
//
// Every simulator configuration (bussim, cyclesim, mp, snoop, membus)
// carries an Observer field of type Probe. A nil Observer is the fast
// path: the instrumented hot loops guard every emission with a nil
// check and construct no Event values, so an unobserved run costs
// nothing — the §4.1 benchmarks are bit-identical and allocation-free
// with Observer == nil (pinned by allocation-guard tests).
//
// Built-in consumers:
//
//   - JSONLWriter streams each event as one JSON line (the trace
//     export format; schema documented on the type).
//   - Metrics aggregates windowed per-agent utilization, waiting-time
//     quantiles, and arbitration counts over time.
//   - Counter tallies events by kind (cheap; for tests and smoke
//     checks).
//   - Buffer retains events in memory; TextWriter renders them as
//     human-readable lines; Multi fans out; Filter selects kinds.
//
// The package generalizes the §2.1 observation that the arbiter's
// state "is available and can be monitored on the bus ... useful for
// software initialization of the system and for diagnosing system
// failures" from the arbitration lines to the whole machine.
package obs

import (
	"fmt"
	"io"
	"sync"
)

// Kind enumerates event types.
type Kind int

// The event vocabulary, in rough lifecycle order of a request. The
// first six kinds are common to every simulator; the rest are
// simulator-specific.
const (
	// RequestIssued: an agent asserted the bus request line.
	RequestIssued Kind = iota
	// ArbitrationStart: an arbitration began (Agents holds the
	// request-line snapshot, ascending).
	ArbitrationStart
	// ArbitrationResolve: an arbitration selected a winner (Agent).
	ArbitrationResolve
	// Repass: an arbitration pass was empty (RR3 §3.1) and a new pass
	// follows immediately, costing another arbitration delay.
	Repass
	// ServiceStart: the winner assumed bus mastership. For the
	// snooping machine, Label names the transaction kind (BusRd,
	// BusRdX, BusUpgr, BusWB).
	ServiceStart
	// ServiceEnd: the bus transaction finished.
	ServiceEnd
	// CacheMiss: a private-cache miss became bus traffic (mp and
	// snoop machines; Aux is the block number where known).
	CacheMiss
	// Invalidation: a snooped transaction invalidated this agent's
	// cached copy (snoop machine; Aux is the block number).
	Invalidation
	// BankConflict: a transfer found its memory bank busy and had to
	// wait for it (membus machine; Aux is the bank index).
	BankConflict
)

// String returns the event kind's name (also the JSONL "ev" value).
func (k Kind) String() string {
	switch k {
	case RequestIssued:
		return "request"
	case ArbitrationStart:
		return "arb-start"
	case ArbitrationResolve:
		return "arb-resolve"
	case Repass:
		return "arb-repass"
	case ServiceStart:
		return "service-start"
	case ServiceEnd:
		return "service-end"
	case CacheMiss:
		return "cache-miss"
	case Invalidation:
		return "invalidation"
	case BankConflict:
		return "bank-conflict"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one simulation occurrence. Time is in the emitting
// simulator's time unit (bus-transaction units everywhere except
// cyclesim, which counts ticks of half a transaction).
type Event struct {
	Time   float64
	Kind   Kind
	Agent  int   // the acting agent, 0 when not applicable
	Agents []int // arbitration snapshot (ArbitrationStart only)
	Urgent bool  // request class (RequestIssued only)
	// Level is the arbitration level of an ArbitrationResolve on a
	// topology run: 0 at the root bus, increasing toward the leaf
	// clusters. Flat-bus events carry 0. A tree grant emits one
	// resolve event per level of the winner's path, all with the
	// winning agent; only the level-0 event counts as an arbitration
	// (the deeper ones are the same settle seen at inner buses).
	Level int
	// Wait is the per-hop wait of an ArbitrationResolve on a topology
	// run: resolve time minus the assert time of the level's winning
	// request line (the agent's request at the leaf, the cluster line
	// one level up). Zero on flat-bus events.
	Wait float64
	// Aux carries kind-specific detail: the block number for CacheMiss
	// and Invalidation, the bank index for BankConflict.
	Aux int64
	// Label carries kind-specific text: the coherence transaction name
	// on the snooping machine's ServiceStart events.
	Label string
}

// String renders the event on one line.
func (e Event) String() string {
	switch e.Kind {
	case ArbitrationStart:
		return fmt.Sprintf("%10.2f  %-13s competitors=%v", e.Time, e.Kind, e.Agents)
	case ArbitrationResolve:
		if e.Wait > 0 || e.Level > 0 {
			return fmt.Sprintf("%10.2f  %-13s agent=%d level=%d wait=%.2f",
				e.Time, e.Kind, e.Agent, e.Level, e.Wait)
		}
		return fmt.Sprintf("%10.2f  %-13s agent=%d", e.Time, e.Kind, e.Agent)
	case RequestIssued:
		u := ""
		if e.Urgent {
			u = " urgent"
		}
		return fmt.Sprintf("%10.2f  %-13s agent=%d%s", e.Time, e.Kind, e.Agent, u)
	case Repass:
		return fmt.Sprintf("%10.2f  %-13s", e.Time, e.Kind)
	case CacheMiss, Invalidation:
		return fmt.Sprintf("%10.2f  %-13s agent=%d block=%d", e.Time, e.Kind, e.Agent, e.Aux)
	case BankConflict:
		return fmt.Sprintf("%10.2f  %-13s agent=%d bank=%d", e.Time, e.Kind, e.Agent, e.Aux)
	default:
		if e.Label != "" {
			return fmt.Sprintf("%10.2f  %-13s agent=%d %s", e.Time, e.Kind, e.Agent, e.Label)
		}
		return fmt.Sprintf("%10.2f  %-13s agent=%d", e.Time, e.Kind, e.Agent)
	}
}

// Probe consumes simulation events. Implementations are called from
// the simulator's single-threaded event loop: they must not block and
// need no internal locking unless they are shared across simulations.
// Of the built-in consumers only Buffer locks internally; to drive or
// read any other consumer from more than one goroutine (as the arbd
// shard loops do), wrap it in Synchronized.
//
// A Probe that retains an Event past the call must not assume the
// Agents slice stays valid — simulators hand probes a private copy of
// the arbitration snapshot, but probes that re-forward events (Multi,
// Filter) pass the same slice on.
type Probe interface {
	OnEvent(e Event)
}

// Multi fans events out to several probes.
type Multi []Probe

// OnEvent implements Probe.
func (m Multi) OnEvent(e Event) {
	for _, p := range m {
		p.OnEvent(e)
	}
}

// Filter forwards only events whose kind is enabled.
type Filter struct {
	Next  Probe
	Kinds map[Kind]bool
}

// OnEvent implements Probe.
func (f *Filter) OnEvent(e Event) {
	if f.Kinds[e.Kind] {
		f.Next.OnEvent(e)
	}
}

// Buffer is an in-memory Probe, safe for concurrent use.
type Buffer struct {
	mu     sync.Mutex
	events []Event
	// Cap bounds memory; 0 means unbounded. When full, the oldest
	// events are dropped (a ring of the most recent activity, which is
	// what post-mortem debugging wants).
	Cap int
}

// OnEvent implements Probe.
func (b *Buffer) OnEvent(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = append(b.events, e)
	if b.Cap > 0 && len(b.events) > b.Cap {
		drop := len(b.events) - b.Cap
		b.events = append(b.events[:0], b.events[drop:]...)
	}
}

// Events returns a copy of the recorded events.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, len(b.events))
	copy(out, b.events)
	return out
}

// Len returns the number of buffered events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Reset discards all buffered events.
func (b *Buffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = b.events[:0]
}

// TextWriter is a Probe that renders each event as a text line.
type TextWriter struct {
	W io.Writer
	// Err holds the first write error; subsequent events are dropped.
	Err error
}

// OnEvent implements Probe.
func (w *TextWriter) OnEvent(e Event) {
	if w.Err != nil {
		return
	}
	_, w.Err = fmt.Fprintln(w.W, e.String())
}

// Counter tallies events by kind: the counting probe for tests and
// cheap smoke checks.
type Counter struct {
	// ByKind[k] is the number of events of kind k seen so far.
	ByKind [BankConflict + 1]int64
	// Total is the number of events seen.
	Total int64
}

// OnEvent implements Probe.
func (c *Counter) OnEvent(e Event) {
	c.Total++
	if int(e.Kind) >= 0 && int(e.Kind) < len(c.ByKind) {
		c.ByKind[e.Kind]++
	}
}

// Count returns the tally for one kind.
func (c *Counter) Count(k Kind) int64 {
	if int(k) < 0 || int(k) >= len(c.ByKind) {
		return 0
	}
	return c.ByKind[k]
}

// Summary is the cross-simulator headline result: every simulator's
// Result type implements Summary() with these fields, which is what
// the busarb.Run facade's Report interface exposes uniformly.
type Summary struct {
	// Simulator names the producing model: "bussim", "cyclesim", "mp",
	// "snoop", "membus".
	Simulator string
	// Protocol is the arbitration protocol's name.
	Protocol string
	// N is the number of arbitrating agents.
	N int
	// Time is the simulated span in the simulator's time unit.
	Time float64
	// Grants is the number of bus tenures granted.
	Grants int64
	// Utilization is the fraction of Time the bus was busy.
	Utilization float64
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("%s/%s n=%d time=%.4g grants=%d util=%.3f",
		s.Simulator, s.Protocol, s.N, s.Time, s.Grants, s.Utilization)
}
