package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestJSONLHopFields pins the topology extension of the trace schema:
// level and wait serialize between agent(s) and urgent, round-trip
// through ReadJSONL, and are omitted entirely from flat-bus events so
// pre-topology traces stay byte-identical.
func TestJSONLHopFields(t *testing.T) {
	var buf bytes.Buffer
	w := &JSONLWriter{W: &buf}
	events := []Event{
		{Time: 1, Kind: ArbitrationResolve, Agent: 7},                         // flat
		{Time: 2.5, Kind: ArbitrationResolve, Agent: 9, Level: 1, Wait: 0.75}, // leaf hop
		{Time: 2.5, Kind: ArbitrationResolve, Agent: 9, Level: 0, Wait: 0.25}, // root hop
	}
	for _, e := range events {
		w.OnEvent(e)
	}
	if w.Err != nil {
		t.Fatal(w.Err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	want := []string{
		`{"t":1,"ev":"arb-resolve","agent":7}`,
		`{"t":2.5,"ev":"arb-resolve","agent":9,"level":1,"wait":0.75}`,
		`{"t":2.5,"ev":"arb-resolve","agent":9,"wait":0.25}`,
	}
	for i, l := range lines {
		if l != want[i] {
			t.Errorf("line %d = %s, want %s", i, l, want[i])
		}
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("read %d events, want %d", len(back), len(events))
	}
	for i, e := range back {
		want := events[i]
		if e.Time != want.Time || e.Kind != want.Kind || e.Agent != want.Agent ||
			e.Level != want.Level || e.Wait != want.Wait {
			t.Errorf("round trip event %d = %+v, want %+v", i, e, want)
		}
	}
}

// TestMetricsHopWindows pins the per-level aggregation: level-0
// resolves alone count as arbitrations, hop waits are summarized per
// level, and flat-bus events (no wait) produce no hop windows.
func TestMetricsHopWindows(t *testing.T) {
	m := NewMetrics(10)
	// Two tree grants in window 0: each emits a root and a leaf hop.
	m.OnEvent(Event{Time: 1, Kind: ArbitrationResolve, Agent: 3, Level: 0, Wait: 0.5})
	m.OnEvent(Event{Time: 1, Kind: ArbitrationResolve, Agent: 3, Level: 1, Wait: 1.0})
	m.OnEvent(Event{Time: 4, Kind: ArbitrationResolve, Agent: 5, Level: 0, Wait: 0.7})
	m.OnEvent(Event{Time: 4, Kind: ArbitrationResolve, Agent: 5, Level: 1, Wait: 3.0})
	m.Flush(10)
	wins := m.Windows()
	if len(wins) != 1 {
		t.Fatalf("got %d windows, want 1", len(wins))
	}
	w := wins[0]
	if w.Arbitrations != 2 {
		t.Errorf("Arbitrations = %d, want 2 (level-0 resolves only)", w.Arbitrations)
	}
	if len(w.Hops) != 2 {
		t.Fatalf("got %d hop levels, want 2: %+v", len(w.Hops), w.Hops)
	}
	root, leaf := w.Hops[0], w.Hops[1]
	if root.Level != 0 || root.Resolves != 2 || root.WaitMean != 0.6 || root.WaitMax != 0.7 {
		t.Errorf("root hops = %+v", root)
	}
	if leaf.Level != 1 || leaf.Resolves != 2 || leaf.WaitMean != 2.0 || leaf.WaitMax != 3.0 {
		t.Errorf("leaf hops = %+v", leaf)
	}
	if leaf.WaitP50 > leaf.WaitP90 || leaf.WaitP90 > leaf.WaitMax {
		t.Errorf("leaf quantiles out of order: %+v", leaf)
	}

	// A flat run in the next collector: no hops at all.
	m2 := NewMetrics(10)
	m2.OnEvent(Event{Time: 1, Kind: ArbitrationResolve, Agent: 3})
	m2.Flush(10)
	if got := m2.Windows()[0]; got.Hops != nil || got.Arbitrations != 1 {
		t.Errorf("flat window = %+v, want 1 arbitration and nil Hops", got)
	}

	// The table renderer includes the hop lines.
	var buf bytes.Buffer
	if err := m.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hop level 0: 2 resolves") ||
		!strings.Contains(buf.String(), "hop level 1: 2 resolves") {
		t.Errorf("WriteTable missing hop lines:\n%s", buf.String())
	}
}
