package bussim

import (
	"reflect"
	"strings"
	"testing"

	"busarb/internal/core"
	"busarb/internal/obs"
	"busarb/internal/topo"
)

// TestDepth1TopologyBitIdentical is the refactor's safety net: a
// single-leaf tree must replay bit-identically to the flat bus —
// same winner event sequence, same aggregate numbers, same per-agent
// waits — for every protocol the flat path supports, including RR3's
// repasses.
func TestDepth1TopologyBitIdentical(t *testing.T) {
	for _, proto := range []string{"FP", "RR1", "RR3", "FCFS1", "FCFS2"} {
		t.Run(proto, func(t *testing.T) {
			f, err := core.ByName(proto)
			if err != nil {
				t.Fatal(err)
			}
			const n = 8
			base := Config{
				N:       n,
				Inter:   UniformLoad(n, 1.5, 1.0, 1.0),
				Seed:    42,
				Batches: 4, BatchSize: 500,
			}
			flatCfg := base
			flatCfg.Protocol = f
			treeCfg := base
			treeCfg.Topology = &topo.Spec{Protocol: proto, Agents: n}

			var flatTrace, treeTrace obs.Buffer
			flatCfg.Observer = &flatTrace
			treeCfg.Observer = &treeTrace
			flat := Run(flatCfg)
			tree := Run(treeCfg)

			// The tree's resolve events additionally carry the hop wait;
			// everything else must be identical, event for event.
			fe, te := flatTrace.Events(), treeTrace.Events()
			if len(fe) != len(te) {
				t.Fatalf("event counts differ: flat %d, tree %d", len(fe), len(te))
			}
			for i := range te {
				ev := te[i]
				if ev.Kind == obs.ArbitrationResolve {
					if ev.Wait <= 0 {
						t.Fatalf("event %d: tree resolve has no hop wait: %+v", i, ev)
					}
					ev.Wait = 0
					ev.Level = 0
				}
				if !reflect.DeepEqual(ev, fe[i]) {
					t.Fatalf("event %d differs: flat %+v, tree %+v", i, fe[i], te[i])
				}
			}

			// Results are bit-identical (the Instance is the protocol
			// object itself and necessarily differs).
			flat.Instance, tree.Instance = nil, nil
			if !reflect.DeepEqual(flat, tree) {
				t.Errorf("results differ:\nflat: %+v\ntree: %+v", flat, tree)
			}
		})
	}
}

// TestTopologyHybrid1024 is the headline study's harness at test
// scale: 32 clusters of 32 agents, local RR1 feeding a global FCFS2
// (the §5 hybrid generalized to hierarchy), on the bit-parallel
// kernel. Per-hop waits flow through obs.Metrics at both levels.
func TestTopologyHybrid1024(t *testing.T) {
	spec, err := topo.Uniform([]int{32, 32}, []string{"RR1", "FCFS2"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1024
	metrics := obs.NewMetrics(500)
	res := Run(Config{
		N:        n,
		Topology: spec,
		Inter:    UniformLoad(n, 2.0, 1.0, 1.0), // saturated
		Seed:     9,
		Batches:  3, BatchSize: 1000,
		Observer: obs.Multi{metrics},
	})
	if res.ProtocolName != "FCFS2(32xRR1:32)" {
		t.Errorf("ProtocolName = %q", res.ProtocolName)
	}
	if res.Completions != 3000 {
		t.Fatalf("Completions = %d, want 3000", res.Completions)
	}
	if res.Utilization.Mean < 0.95 {
		t.Errorf("saturated bus utilization = %v, want ~1", res.Utilization.Mean)
	}
	metrics.Flush(res.WallTime)
	sawBoth := false
	for _, w := range metrics.Windows() {
		if len(w.Hops) < 2 {
			continue
		}
		sawBoth = true
		if w.Hops[0].Level != 0 || w.Hops[1].Level != 1 {
			t.Fatalf("hop levels = %+v, want 0 and 1", w.Hops)
		}
		for _, h := range w.Hops {
			if h.Resolves <= 0 || h.WaitMean <= 0 {
				t.Errorf("degenerate hop window %+v", h)
			}
			if h.WaitP50 > h.WaitP90 || h.WaitP90 > h.WaitMax {
				t.Errorf("hop quantiles out of order: %+v", h)
			}
		}
		// Every grant resolves once per level.
		if w.Hops[0].Resolves != w.Hops[1].Resolves {
			t.Errorf("level resolve counts differ: %+v", w.Hops)
		}
	}
	if !sawBoth {
		t.Error("no metrics window saw both hop levels")
	}
}

// TestTopologySteadyStateAllocs extends the nil-Observer allocation
// pin to tree runs: doubling the simulated events must not change the
// allocation count.
func TestTopologySteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime adds a few mallocs per run; the exact pin runs in the non-race suite")
	}
	spec, err := topo.Uniform([]int{8, 4}, []string{"RR1", "FCFS2"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := func(batches int) Config {
		return Config{
			N:        32,
			Topology: spec,
			Inter:    UniformLoad(32, 2.0, 1.0, 1.0),
			Seed:     5,
			Batches:  batches, BatchSize: 200,
		}
	}
	Run(cfg(1))
	base := testing.AllocsPerRun(3, func() { Run(cfg(2)) })
	doubled := testing.AllocsPerRun(3, func() { Run(cfg(4)) })
	if doubled != base {
		t.Errorf("allocs grew with event count: %v for 2 batches vs %v for 4; "+
			"the tree per-event path must be allocation-free", base, doubled)
	}
}

// TestTopologyValidate pins the config surface's error cases.
func TestTopologyValidate(t *testing.T) {
	f, _ := core.ByName("RR1")
	leaf := &topo.Spec{Protocol: "RR1", Agents: 4}
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"both", Config{N: 4, Protocol: f, Topology: leaf,
			Inter: UniformLoad(4, 1, 1, 1)}, "exactly one"},
		{"agents mismatch", Config{N: 5, Topology: leaf,
			Inter: UniformLoad(5, 1, 1, 1)}, "Topology has 4 agents"},
		{"window", Config{N: 4, Topology: leaf, Window: 2,
			Inter: UniformLoad(4, 1, 1, 1)}, "not supported on a Topology"},
		{"bad proto", Config{N: 4, Topology: &topo.Spec{Protocol: "zzz", Agents: 4},
			Inter: UniformLoad(4, 1, 1, 1)}, "unknown protocol"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("Validate = %v, want error containing %q", err, c.want)
			}
		})
	}
}
