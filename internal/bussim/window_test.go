package bussim

import (
	"math"
	"testing"

	"busarb/internal/core"
	"busarb/internal/obs"
)

// multiFactory builds the §3.2 multi-outstanding FCFS protocol.
func multiFactory(r int) core.Factory {
	return func(n int) core.Protocol { return core.NewMultiFCFS(n, r) }
}

func TestWindowValidation(t *testing.T) {
	rr, _ := core.ByName("RR1")
	// Window > 1 with a single-request protocol must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RR1 with Window 4 did not panic")
			}
		}()
		Run(Config{
			N: 4, Protocol: rr, Window: 4,
			Inter:   UniformLoad(4, 1.0, 1.0, 1.0),
			Batches: 1, BatchSize: 10,
		})
	}()
	// Window larger than the protocol's capacity must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("window 8 over capacity 4 did not panic")
			}
		}()
		Run(Config{
			N: 4, Protocol: multiFactory(4), Window: 8,
			Inter:   UniformLoad(4, 1.0, 1.0, 1.0),
			Batches: 1, BatchSize: 10,
		})
	}()
	// Negative window must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative window did not panic")
			}
		}()
		Run(Config{
			N: 4, Protocol: rr, Window: -1,
			Inter:   UniformLoad(4, 1.0, 1.0, 1.0),
			Batches: 1, BatchSize: 10,
		})
	}()
}

func TestWindow1MultiFCFSMatchesFCFS2(t *testing.T) {
	// With Window=1, MultiFCFS degenerates to FCFS2: identical waiting
	// statistics on the same seed.
	mk := func(f core.Factory) *Result {
		return Run(Config{
			N: 10, Protocol: f, Seed: 44,
			Inter:   UniformLoad(10, 1.5, 1.0, 1.0),
			Batches: 5, BatchSize: 1000,
		})
	}
	fc, _ := core.ByName("FCFS2")
	a := mk(multiFactory(1))
	b := mk(fc)
	if math.Abs(a.WaitMean.Mean-b.WaitMean.Mean) > 1e-9 {
		t.Errorf("W: MultiFCFS(1) %v vs FCFS2 %v", a.WaitMean.Mean, b.WaitMean.Mean)
	}
}

func TestWindowedRunGlobalFCFSOrder(t *testing.T) {
	// With Window=4, every grant must still follow global generation
	// order (the §3.2 claim), verified from the event trace.
	var buf obs.Buffer
	Run(Config{
		N: 6, Protocol: multiFactory(4), Window: 4, Seed: 9,
		Inter:   UniformLoad(6, 3.0, 1.0, 1.0),
		Batches: 2, BatchSize: 1000,
		Warmup:   -1,
		Observer: &buf,
	})
	var queue []int // agent ids in request order
	grants := 0
	for i, e := range buf.Events() {
		switch e.Kind {
		case obs.RequestIssued:
			queue = append(queue, e.Agent)
		case obs.ServiceStart:
			if len(queue) == 0 {
				t.Fatalf("event %d: grant with no outstanding request", i)
			}
			if queue[0] != e.Agent {
				t.Fatalf("event %d: granted %d, oldest request from %d", i, e.Agent, queue[0])
			}
			queue = queue[1:]
			grants++
		}
	}
	if grants < 2000 {
		t.Errorf("only %d grants traced", grants)
	}
}

func TestWindowRaisesCarriedLoad(t *testing.T) {
	// A window lets an agent keep generating while waiting, so the same
	// interrequest distribution carries more traffic near saturation.
	mk := func(window int) *Result {
		return Run(Config{
			N: 6, Protocol: multiFactory(window), Window: window, Seed: 10,
			Inter:   UniformLoad(6, 0.9, 1.0, 1.0),
			Batches: 5, BatchSize: 1500,
		})
	}
	w1 := mk(1)
	w4 := mk(4)
	if w4.Throughput.Mean <= w1.Throughput.Mean {
		t.Errorf("window 4 throughput %v <= window 1 %v", w4.Throughput.Mean, w1.Throughput.Mean)
	}
}

func TestWindowedAgentCanGoBackToBack(t *testing.T) {
	// One agent with a deep window and a long-idle competitor: the
	// windowed agent must be able to hold consecutive bus tenures.
	var buf obs.Buffer
	cfg := Config{
		N: 2, Protocol: multiFactory(8), Window: 8, Seed: 2,
		Batches: 1, BatchSize: 400, Warmup: -1,
		Observer: &buf,
	}
	cfg.Inter = UniformLoad(2, 1.8, 1.0, 1.0)
	// Agent 2 requests rarely.
	cfg.Inter[1] = UniformLoad(2, 0.02, 1.0, 1.0)[0]
	Run(cfg)
	prev, consecutive := 0, 0
	for _, e := range buf.Events() {
		if e.Kind != obs.ServiceStart {
			continue
		}
		if e.Agent == 1 && prev == 1 {
			consecutive++
		}
		prev = e.Agent
	}
	if consecutive == 0 {
		t.Error("windowed agent never held back-to-back tenures")
	}
}
