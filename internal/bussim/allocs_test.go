package bussim

import (
	"testing"

	"busarb/internal/core"
)

// TestNilObserverSteadyStateAllocs pins the zero-cost contract's
// performance half: with a nil Observer, the per-event simulation path
// allocates nothing. Doubling the batch count doubles the number of
// simulated events but must not change the allocation count — every
// allocation belongs to setup and result assembly, which are identical
// between the two runs.
func TestNilObserverSteadyStateAllocs(t *testing.T) {
	f, err := core.ByName("RR1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := func(batches int) Config {
		return Config{
			N:        4,
			Protocol: f,
			Inter:    UniformLoad(4, 2.0, 1.0, 1.0),
			Seed:     5,
			Batches:  batches, BatchSize: 200,
		}
	}
	// Warm any lazy runtime state before measuring.
	Run(cfg(1))
	base := testing.AllocsPerRun(3, func() { Run(cfg(2)) })
	doubled := testing.AllocsPerRun(3, func() { Run(cfg(4)) })
	if doubled != base {
		t.Errorf("allocs grew with event count: %v for 2 batches vs %v for 4; "+
			"the nil-Observer per-event path must be allocation-free", base, doubled)
	}
}
