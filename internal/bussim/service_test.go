package bussim

import (
	"math"
	"testing"

	"busarb/internal/core"
	"busarb/internal/dist"
)

// With exponential service and exponential think times, the closed
// machine-repairman model has a product-form solution and mean-value
// analysis is exact; the simulator must match it tightly when the
// arbitration overhead is made negligible.
func TestExponentialServiceMatchesExactMVA(t *testing.T) {
	const (
		n = 8
		z = 6.0 // think time
	)
	f, _ := core.ByName("FCFS2")
	res := Run(Config{
		N:           n,
		Protocol:    f,
		Service:     1.0,
		ServiceDist: dist.Exponential{MeanValue: 1.0},
		ArbOverhead: 1e-6,
		Inter:       replicate(dist.Exponential{MeanValue: z}, n),
		Seed:        51,
		Batches:     10, BatchSize: 4000,
	})
	// Exact MVA for s=1, z=6, n=8.
	q := 0.0
	var w, x float64
	for k := 1; k <= n; k++ {
		w = 1 * (1 + q)
		x = float64(k) / (w + z)
		q = x * w
	}
	if math.Abs(res.WaitMean.Mean-w) > 0.05*w {
		t.Errorf("sim W = %v, exact MVA %v", res.WaitMean.Mean, w)
	}
	if math.Abs(res.Throughput.Mean-x) > 0.03*x {
		t.Errorf("sim X = %v, exact MVA %v", res.Throughput.Mean, x)
	}
}

func replicate(d dist.Sampler, n int) []dist.Sampler {
	out := make([]dist.Sampler, n)
	for i := range out {
		out[i] = d
	}
	return out
}

// The conservation law extends to variable service times as long as the
// service order does not depend on them (true for every protocol here).
func TestConservationWithVariableService(t *testing.T) {
	var waits []float64
	for _, name := range []string{"FP", "RR1", "FCFS2", "AAP1"} {
		f, _ := core.ByName(name)
		res := Run(Config{
			N:           10,
			Protocol:    f,
			ServiceDist: dist.Erlang{K: 2, MeanValue: 1.0},
			Inter:       UniformLoad(10, 1.5, 1.0, 1.0),
			Seed:        52,
			Batches:     8, BatchSize: 1500,
		})
		waits = append(waits, res.WaitMean.Mean)
	}
	for i := 1; i < len(waits); i++ {
		if rel := math.Abs(waits[i]-waits[0]) / waits[0]; rel > 0.05 {
			t.Errorf("protocol %d: W %v vs %v (rel %.1f%%)", i, waits[i], waits[0], 100*rel)
		}
	}
}

// Variable-service utilization is measured busy time, not a
// throughput*S approximation: with service CV > 0, utilization still
// stays in [0, 1] and matches throughput * mean service closely.
func TestVariableServiceUtilization(t *testing.T) {
	f, _ := core.ByName("RR1")
	res := Run(Config{
		N:           6,
		Protocol:    f,
		ServiceDist: dist.Exponential{MeanValue: 2.0},
		Service:     2.0,
		ArbOverhead: 0.5,
		Inter:       replicate(dist.Exponential{MeanValue: 4.0}, 6),
		Seed:        53,
		Batches:     6, BatchSize: 1500,
	})
	if res.Utilization.Mean <= 0 || res.Utilization.Mean > 1+1e-9 {
		t.Fatalf("utilization = %v", res.Utilization.Mean)
	}
	approx := res.Throughput.Mean * 2.0
	if math.Abs(res.Utilization.Mean-approx) > 0.05 {
		t.Errorf("utilization %v vs throughput*meanS %v", res.Utilization.Mean, approx)
	}
}

// A service draw shorter than the arbitration overhead must not corrupt
// the schedule: the overlapped arbitration simply resolves after the
// transaction and the winner takes the bus then.
func TestServiceShorterThanOverhead(t *testing.T) {
	f, _ := core.ByName("FCFS2")
	res := Run(Config{
		N:           4,
		Protocol:    f,
		ServiceDist: dist.Exponential{MeanValue: 0.3}, // often < 0.5 overhead
		Service:     0.3,
		ArbOverhead: 0.5,
		Inter:       replicate(dist.Exponential{MeanValue: 0.2}, 4),
		Seed:        54,
		Batches:     4, BatchSize: 1000,
	})
	if res.Completions != 4000 {
		t.Errorf("completions = %d", res.Completions)
	}
	if res.Utilization.Mean > 1+1e-9 {
		t.Errorf("utilization = %v > 1", res.Utilization.Mean)
	}
}
