//go:build !race

package bussim

// raceEnabled reports whether the suite runs under the race detector,
// whose runtime perturbs allocation counts by a few mallocs per run —
// exact AllocsPerRun pins are only meaningful without it.
const raceEnabled = false
