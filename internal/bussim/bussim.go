// Package bussim is the queueing-level simulator of a multiprocessor bus
// under the paper's §4.1 assumptions:
//
//   - Bus transaction (service) times are deterministic and define the
//     time unit (S = 1.0): cache-block or I/O-block transfers.
//   - Arbitration overhead is 0.5 time units and is fully overlapped
//     with bus service whenever requests are waiting: arbitration for
//     the next master starts at the beginning of a bus transaction if
//     requests are waiting then, and the winner takes over at the end of
//     the transaction. An arbitration on an otherwise idle bus exposes
//     its full 0.5 delay.
//   - Each agent has one outstanding request at a time; after its
//     transaction completes it "thinks" for a sampled interrequest time
//     and then asserts the shared bus request line.
//   - Output analysis uses the method of batch means (package stats):
//     a discarded warm-up period, then B batches of a fixed number of
//     request completions each.
//
// The "waiting time" reported throughout the paper's tables is the full
// residence time of a request — from generation to transaction
// completion — which reproduces W ≈ 1.5 at low load (exposed arbitration
// plus service) and W ≈ N at saturation.
package bussim

import (
	"fmt"

	"busarb/internal/core"
	"busarb/internal/dist"
	"busarb/internal/obs"
	"busarb/internal/rng"
	"busarb/internal/sim"
	"busarb/internal/stats"
	"busarb/internal/topo"
)

// Config describes one simulation run.
type Config struct {
	// N is the number of agents (identities 1..N).
	N int
	// Protocol builds the arbitration protocol under test. Set exactly
	// one of Protocol and Topology.
	Protocol core.Factory
	// Topology, if non-nil, arbitrates over a tree of clusters instead
	// of one flat bus (topo.SimTree drives the same cycle loop through
	// the core.Protocol face). N must equal Topology.TotalAgents().
	// Tree runs emit one ArbitrationResolve event per level of the
	// winner's path, carrying Level and the per-hop Wait; Window > 1
	// is not supported on trees.
	Topology *topo.Spec
	// Service is the bus transaction time; 0 means the paper's 1.0.
	Service float64
	// ServiceDist, if non-nil, draws each transaction's duration from a
	// distribution instead of the fixed Service (an extension beyond
	// the paper's deterministic transfers; the §4 conservation law
	// still applies because no protocol's order depends on service
	// times). Utilization is then measured as actual busy time.
	ServiceDist dist.Sampler
	// ArbOverhead is the arbitration delay; 0 means the paper's 0.5.
	// (To model a zero-overhead arbiter, use a tiny positive value.)
	ArbOverhead float64
	// Inter holds each agent's interrequest-time distribution,
	// Inter[i] for agent i+1. Use UniformLoad for identical agents.
	// Exactly one of Inter and Sources must be set.
	Inter []dist.Sampler
	// Sources optionally replaces Inter with stateful think-time
	// generators (e.g. the processor/cache models of internal/mp whose
	// time-to-next-request depends on simulated cache contents).
	Sources []ThinkSource
	// UrgentProb, if non-nil, gives each agent's probability that a
	// request is urgent (priority class). Requires a protocol
	// implementing core.ClassRequester to have any effect.
	UrgentProb []float64
	// Seed selects the random streams; runs are reproducible.
	Seed uint64
	// Batches and BatchSize configure the batch-means output analysis;
	// zero values mean the paper's 10 batches of 8000 completions.
	Batches   int
	BatchSize int
	// Warmup is the number of initial completions discarded before
	// measurement; 0 means one batch worth (the sensible default), and
	// a negative value disables the warm-up entirely.
	Warmup int
	// CollectWaits retains every post-warmup residence-time sample in
	// an exact empirical CDF (needed for Figure 4.1 and Table 4.3).
	CollectWaits bool
	// HistBinWidth/HistMax, when positive, additionally collect a
	// binned waiting-time histogram (cheaper than CollectWaits).
	HistBinWidth float64
	HistMax      float64
	// LateJoin is an ablation switch: instead of arbitrating among the
	// requesters present when the arbitration started (the request-line
	// snapshot semantics of the real arbiter), competitors are taken at
	// resolution time, letting requests that arrived during the
	// arbitration delay join it.
	LateJoin bool
	// BoundaryArbOnly restricts arbitration starts to transaction
	// boundaries and idle arrivals, the discipline of synchronous buses
	// (and of the cycle-level model in internal/cyclesim): a request
	// arriving mid-transaction with no arbitration pending waits for
	// the transaction to end and then pays an exposed arbitration.
	BoundaryArbOnly bool
	// Observer, if non-nil, receives every simulation event (request,
	// arbitration start/resolve/repass, service start/end). A nil
	// Observer costs nothing: the hot loops guard every emission with
	// a nil check, so unobserved runs stay allocation-free and
	// bit-identical.
	Observer obs.Probe
	// Horizon, when positive, ends the run once the simulated clock
	// reaches it, even if the batch-means completion target has not
	// been met (partial final batches are discarded). Zero means run
	// to the completion target (the default).
	Horizon float64
	// Window is the per-agent outstanding-request limit (default 1).
	// Values above 1 model processors that pipeline bus requests and
	// require a protocol built for it (core.MultiFCFS, §3.2): an agent
	// keeps generating requests, pausing its interrequest clock while
	// the window is full, and its requests are served oldest-first.
	Window int
}

// ThinkSource generates an agent's successive think times — the delays
// between a transaction completing (or a window slot freeing) and the
// next request. Unlike a plain distribution it may carry state: the
// multiprocessor models in internal/mp simulate cache contents to
// decide when the next miss occurs.
type ThinkSource interface {
	// NextThink returns the next think time (>= 0), drawing any needed
	// randomness from src.
	NextThink(src *rng.Source) float64
	// MeanHint returns an a-priori mean think time if one is known, or
	// 0; used only for reporting.
	MeanHint() float64
}

// samplerSource adapts a stationary distribution to ThinkSource.
type samplerSource struct{ d dist.Sampler }

func (s samplerSource) NextThink(src *rng.Source) float64 { return s.d.Sample(src) }
func (s samplerSource) MeanHint() float64                 { return s.d.Mean() }

// UniformLoad returns N identical interrequest samplers such that each
// agent offers load/n, following the paper's definition
// load_i = S / (S + mean interrequest): mean = S*(n/load - 1)... per
// agent: load_i = load/n, mean_i = S*(1-load_i)/load_i.
func UniformLoad(n int, totalLoad, cv, service float64) []dist.Sampler {
	if service <= 0 {
		service = 1
	}
	per := totalLoad / float64(n)
	if per <= 0 || per >= 1 {
		panic(fmt.Sprintf("bussim: per-agent load %v out of (0,1)", per))
	}
	mean := service * (1 - per) / per
	out := make([]dist.Sampler, n)
	for i := range out {
		out[i] = dist.ByCV(mean, cv)
	}
	return out
}

// MeanForLoad returns the interrequest mean that realizes the given
// per-agent offered load with the given service time.
func MeanForLoad(perAgentLoad, service float64) float64 {
	if perAgentLoad <= 0 || perAgentLoad >= 1 {
		panic(fmt.Sprintf("bussim: per-agent load %v out of (0,1)", perAgentLoad))
	}
	return service * (1 - perAgentLoad) / perAgentLoad
}

// Result carries all measurements from one run.
type Result struct {
	ProtocolName string
	N            int
	Seed         uint64

	// Completions is the number of post-warmup request completions.
	Completions int64
	// Elapsed is the post-warmup measured time span.
	Elapsed float64
	// WallTime is the full simulated time span including warmup (the
	// denominator for whole-run rates such as mp progress counters).
	WallTime float64

	// Throughput is total completions per unit time with its 90% CI
	// (batch means). With S = 1 it equals bus utilization.
	Throughput stats.Estimate
	// Utilization is the fraction of measured time the bus spent
	// serving transactions.
	Utilization stats.Estimate

	// AgentBatches[a][b] is agent (a+1)'s throughput in batch b.
	AgentBatches [][]float64
	// AgentThroughput[a] is agent (a+1)'s mean throughput estimate.
	AgentThroughput []stats.Estimate

	// WaitMean and WaitStdDev are batch-means estimates of the
	// residence time's mean and standard deviation.
	WaitMean   stats.Estimate
	WaitStdDev stats.Estimate
	// WaitPooled aggregates every post-warmup residence sample.
	WaitPooled stats.Running
	// AgentWait[a] pools agent (a+1)'s residence samples.
	AgentWait []stats.Running
	// WaitUrgent and WaitNormal split the residence samples by request
	// class (meaningful when UrgentProb is set).
	WaitUrgent stats.Running
	WaitNormal stats.Running

	// Waits is the exact CDF of residence times (nil unless
	// Config.CollectWaits).
	Waits *stats.ECDF
	// Hist is the binned CDF (nil unless configured).
	Hist *stats.Histogram

	// Arbitrations counts resolved arbitrations; Repasses counts RR3
	// empty passes (each charged a full arbitration delay).
	Arbitrations int64
	Repasses     int64
	// ExposedArbs counts arbitrations whose delay was not overlapped
	// with a transaction.
	ExposedArbs int64

	// MeanInter is the configured mean interrequest time of agent 1
	// (handy for productivity computations on uniform workloads).
	MeanInter float64

	// Instance is the protocol instance the run used, for post-run
	// introspection (e.g. PriorityFCFS1.Overflows).
	Instance core.Protocol

	// BatchAutocorr is the lag-1 autocorrelation of the per-batch mean
	// waits: a batch-independence diagnostic for the batch-means method
	// (values near 0 validate the confidence intervals; > ~0.3 warns
	// that batches are too short [Lave83]).
	BatchAutocorr float64
}

// meanInterHint returns agent 1's nominal mean think time, if known.
func meanInterHint(cfg Config) float64 {
	if cfg.Sources != nil {
		return cfg.Sources[0].MeanHint()
	}
	return cfg.Inter[0].Mean()
}

// Summary implements the cross-simulator Report surface of the
// busarb facade.
func (r *Result) Summary() obs.Summary {
	return obs.Summary{
		Simulator:   "bussim",
		Protocol:    r.ProtocolName,
		N:           r.N,
		Time:        r.WallTime,
		Grants:      r.Completions,
		Utilization: r.Utilization.Mean,
	}
}

// ThroughputRatio returns the batch-means estimate of agent a's
// throughput over agent b's (identities 1..N), e.g. highest/lowest for
// Table 4.1.
func (r *Result) ThroughputRatio(a, b int) stats.Estimate {
	return stats.RatioOfBatches(r.AgentBatches[a-1], r.AgentBatches[b-1])
}

type agentState struct {
	id         int
	inter      ThinkSource
	src        *rng.Source
	urgentProb float64
	urgent     bool
	// genTimes[genHead:] is the FIFO of generation times of requests not
	// yet in service; the agent is "waiting" (asserting the request
	// line) while it is non-empty. The head index (rather than
	// reslicing from the front) lets the backing array be reused: when
	// the queue drains, both reset to zero and the capacity is kept.
	genTimes []float64
	genHead  int
	// curGenTime is the generation time of the request in service.
	curGenTime float64
	// curDur is the in-flight transaction's duration, consumed by the
	// agent's prebound completion event.
	curDur float64
	// outstanding counts requests generated but not completed.
	outstanding int
	// genBlocked marks a full window: the interrequest clock restarts
	// when a completion frees a slot.
	genBlocked bool
	// arriveFn and completeFn are the agent's two event closures,
	// allocated once at setup. At most one of each is pending at any
	// time (one interrequest clock, one bus), so scheduling them
	// repeatedly instead of fresh captures keeps the event loop
	// allocation free.
	arriveFn   func()
	completeFn func()
}

func (a *agentState) waiting() bool { return len(a.genTimes) > a.genHead }

type system struct {
	cfg      Config
	sched    sim.Scheduler
	proto    core.Protocol
	tree     *topo.SimTree       // non-nil iff cfg.Topology is set (== proto)
	classReq core.ClassRequester // nil if the protocol ignores classes
	agents   []*agentState       // index by id (0 unused)

	waitingCount int
	busBusy      bool
	arbitrating  bool
	pendingWin   int

	// arbSnap is the request-line snapshot of the arbitration in
	// flight. Only one arbitration is ever in flight (arbitrating
	// guards), so a single reusable buffer suffices; resolveFn is the
	// prebound resolution event.
	arbSnap    []int
	arbExposed bool
	resolveFn  func()

	service float64
	arbOvh  float64

	// measurement state
	warmupLeft     int64
	target         int64
	batchSize      int64
	done           bool
	completions    int64
	startTime      float64 // time warmup ended
	batchStart     float64
	batchIdx       int
	batchAgentCnt  []int64 // per-agent completions in current batch
	batchWait      stats.Running
	batchBusy      float64 // bus busy time accrued in current batch
	agentBatches   [][]float64
	waitBatchMeans []float64
	waitBatchStds  []float64
	utilBatches    []float64
	serviceSrc     *rng.Source
	res            *Result
}

// Validate checks the configuration without running it; Run panics on
// exactly these errors. Every simulator Config in this repository
// shares this pre-flight contract — the busarb.Run facade calls it and
// returns the error instead of panicking.
func (cfg Config) Validate() error {
	if cfg.N <= 0 {
		return fmt.Errorf("bussim: N must be positive")
	}
	switch {
	case cfg.Protocol == nil && cfg.Topology == nil:
		return fmt.Errorf("bussim: Protocol factory required")
	case cfg.Protocol != nil && cfg.Topology != nil:
		return fmt.Errorf("bussim: set exactly one of Protocol and Topology")
	case cfg.Topology != nil:
		if err := cfg.Topology.Validate(func(name string) error {
			_, err := core.ByName(name)
			return err
		}); err != nil {
			return err
		}
		if total := cfg.Topology.TotalAgents(); total != cfg.N {
			return fmt.Errorf("bussim: Topology has %d agents, want N=%d", total, cfg.N)
		}
		if cfg.Window > 1 {
			return fmt.Errorf("bussim: Window %d > 1 not supported on a Topology", cfg.Window)
		}
	}
	switch {
	case cfg.Sources != nil && cfg.Inter != nil:
		return fmt.Errorf("bussim: set exactly one of Inter and Sources")
	case cfg.Sources != nil:
		if len(cfg.Sources) != cfg.N {
			return fmt.Errorf("bussim: len(Sources)=%d, want N=%d", len(cfg.Sources), cfg.N)
		}
	case len(cfg.Inter) != cfg.N:
		return fmt.Errorf("bussim: len(Inter)=%d, want N=%d", len(cfg.Inter), cfg.N)
	}
	if cfg.UrgentProb != nil && len(cfg.UrgentProb) != cfg.N {
		return fmt.Errorf("bussim: len(UrgentProb) must equal N")
	}
	service, arbOvh := cfg.Service, cfg.ArbOverhead
	if service == 0 {
		service = 1.0
	}
	if arbOvh == 0 {
		arbOvh = 0.5
	}
	if service <= 0 || arbOvh <= 0 {
		return fmt.Errorf("bussim: need positive Service and ArbOverhead, got %v, %v",
			cfg.Service, cfg.ArbOverhead)
	}
	if cfg.ServiceDist == nil && arbOvh > service {
		return fmt.Errorf("bussim: ArbOverhead %v exceeds Service %v", arbOvh, service)
	}
	if cfg.Horizon < 0 {
		return fmt.Errorf("bussim: negative Horizon %v", cfg.Horizon)
	}
	if cfg.Window < 0 {
		return fmt.Errorf("bussim: Window %d < 1", cfg.Window)
	}
	return nil
}

// Run executes the simulation described by cfg and returns its Result.
func Run(cfg Config) *Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Service == 0 {
		cfg.Service = 1.0
	}
	if cfg.ArbOverhead == 0 {
		cfg.ArbOverhead = 0.5
	}
	if cfg.Batches == 0 {
		cfg.Batches = 10
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 8000
	}
	if cfg.Window == 0 {
		cfg.Window = 1
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = cfg.BatchSize
	} else if cfg.Warmup < 0 {
		cfg.Warmup = 0
	}

	var proto core.Protocol
	var tree *topo.SimTree
	if cfg.Topology != nil {
		var err error
		tree, err = topo.NewSimTree(cfg.Topology)
		if err != nil {
			panic(err)
		}
		proto = tree
	} else {
		proto = cfg.Protocol(cfg.N)
	}
	if proto.N() != cfg.N {
		panic("bussim: protocol built for wrong N")
	}
	if cfg.Window > 1 {
		// Multi-outstanding service requires a protocol that tracks
		// per-request state and serves each agent's requests in FIFO
		// order (core.MultiFCFS).
		m, ok := proto.(interface{ MaxOutstanding() int })
		if !ok {
			panic(fmt.Sprintf("bussim: protocol %s does not support Window > 1", proto.Name()))
		}
		if m.MaxOutstanding() < cfg.Window {
			panic(fmt.Sprintf("bussim: protocol window %d < configured %d", m.MaxOutstanding(), cfg.Window))
		}
	}
	s := &system{
		cfg:            cfg,
		proto:          proto,
		tree:           tree,
		service:        cfg.Service,
		arbOvh:         cfg.ArbOverhead,
		warmupLeft:     int64(cfg.Warmup),
		target:         int64(cfg.Batches) * int64(cfg.BatchSize),
		batchSize:      int64(cfg.BatchSize),
		batchAgentCnt:  make([]int64, cfg.N+1),
		agentBatches:   make([][]float64, cfg.N),
		arbSnap:        make([]int, 0, cfg.N),
		waitBatchMeans: make([]float64, 0, cfg.Batches),
		waitBatchStds:  make([]float64, 0, cfg.Batches),
		utilBatches:    make([]float64, 0, cfg.Batches),
	}
	s.resolveFn = s.resolveArbitration
	for i := range s.agentBatches {
		s.agentBatches[i] = make([]float64, 0, cfg.Batches)
	}
	if cr, ok := proto.(core.ClassRequester); ok {
		s.classReq = cr
	}
	s.res = &Result{
		ProtocolName: proto.Name(),
		N:            cfg.N,
		Seed:         cfg.Seed,
		AgentWait:    make([]stats.Running, cfg.N),
		MeanInter:    meanInterHint(cfg),
		Instance:     proto,
	}
	if cfg.CollectWaits {
		s.res.Waits = &stats.ECDF{}
		s.res.Waits.Reserve(int(s.target))
	}
	if cfg.HistBinWidth > 0 {
		hm := cfg.HistMax
		if hm <= 0 {
			hm = 50 * cfg.Service * float64(cfg.N)
		}
		s.res.Hist = stats.NewHistogram(cfg.HistBinWidth, hm)
	}

	master := rng.New(cfg.Seed)
	s.serviceSrc = master.Split()
	s.agents = make([]*agentState, cfg.N+1)
	for id := 1; id <= cfg.N; id++ {
		var think ThinkSource
		if cfg.Sources != nil {
			think = cfg.Sources[id-1]
		} else {
			think = samplerSource{d: cfg.Inter[id-1]}
		}
		a := &agentState{id: id, inter: think, src: master.Split()}
		if cfg.UrgentProb != nil {
			a.urgentProb = cfg.UrgentProb[id-1]
		}
		a.arriveFn = func() { s.requestArrives(a) }
		a.completeFn = func() { s.completeService(a) }
		s.agents[id] = a
		s.scheduleNextRequest(a)
	}

	if cfg.Horizon > 0 {
		// A hard stop at the horizon: measurement simply ends there,
		// discarding any partial batch in progress. With Horizon == 0
		// no event is scheduled and the run is bit-identical to the
		// pre-Horizon engine.
		s.sched.At(cfg.Horizon, func() { s.done = true })
	}
	s.sched.Run(func() bool { return s.done })
	s.finish()
	return s.res
}

func (s *system) scheduleNextRequest(a *agentState) {
	d := a.inter.NextThink(a.src)
	if d < 0 {
		panic(fmt.Sprintf("bussim: agent %d produced negative think time %v", a.id, d))
	}
	s.sched.After(d, a.arriveFn)
}

func (s *system) requestArrives(a *agentState) {
	if a.outstanding >= s.cfg.Window {
		panic("bussim: agent exceeded its request window")
	}
	a.outstanding++
	if !a.waiting() {
		s.waitingCount++
	}
	a.genTimes = append(a.genTimes, s.sched.Now())
	a.urgent = a.urgentProb > 0 && a.src.Float64() < a.urgentProb
	// The interrequest clock runs only while the window has room.
	if a.outstanding < s.cfg.Window {
		s.scheduleNextRequest(a)
	} else {
		a.genBlocked = true
	}
	if s.classReq != nil {
		s.classReq.OnClassRequest(a.id, s.sched.Now(), a.urgent)
	} else {
		s.proto.OnRequest(a.id, s.sched.Now())
	}
	s.emit(obs.Event{Time: s.sched.Now(), Kind: obs.RequestIssued, Agent: a.id, Urgent: a.urgent})
	// Arbitration is overlapped with bus service whenever possible: if no
	// arbitration is in flight and no winner is already lined up, the
	// request line going high starts one immediately. Its delay is
	// exposed only to the extent it outlives the current transaction
	// (fully, when the bus is idle). Synchronous buses
	// (BoundaryArbOnly) instead defer mid-transaction arrivals to the
	// next boundary.
	if !s.arbitrating && s.pendingWin == 0 {
		if s.cfg.BoundaryArbOnly && s.busBusy {
			return
		}
		s.beginArbitration(!s.busBusy)
	}
}

// snapshotWaiting refills arbSnap with the identities of all waiting
// agents, ascending (the iteration order). The buffer is reused across
// arbitrations; only one snapshot is live at a time.
func (s *system) snapshotWaiting() {
	s.arbSnap = s.arbSnap[:0]
	for id := 1; id <= s.cfg.N; id++ {
		if s.agents[id].waiting() {
			s.arbSnap = append(s.arbSnap, id)
		}
	}
}

// beginArbitration starts an arbitration among the agents asserting the
// request line right now (the snapshot); it resolves after the
// arbitration overhead. exposed marks an arbitration whose delay is not
// hidden under a bus transaction.
func (s *system) beginArbitration(exposed bool) {
	if s.waitingCount == 0 {
		return
	}
	s.arbitrating = true
	s.arbExposed = exposed
	if exposed {
		s.res.ExposedArbs++
	}
	s.snapshotWaiting()
	if s.cfg.Observer != nil {
		// Probes may retain events, so the shared snapshot buffer must
		// be copied out (observed runs are not the allocation-free path).
		s.emit(obs.Event{Time: s.sched.Now(), Kind: obs.ArbitrationStart,
			Agents: append([]int(nil), s.arbSnap...)})
	}
	s.sched.After(s.arbOvh, s.resolveFn)
}

// emit forwards an event to the configured observer, if any.
func (s *system) emit(e obs.Event) {
	if s.cfg.Observer != nil {
		s.cfg.Observer.OnEvent(e)
	}
}

func (s *system) resolveArbitration() {
	// Every snapshot member is still waiting: a waiter can only leave by
	// being granted the bus, and no grant occurs mid-arbitration.
	if s.cfg.LateJoin {
		s.snapshotWaiting()
	}
	out := s.proto.Arbitrate(s.arbSnap)
	if out.Repass {
		s.res.Repasses++
		s.emit(obs.Event{Time: s.sched.Now(), Kind: obs.Repass})
		// A fresh pass starts immediately with a fresh request-line
		// snapshot; it costs another arbitration delay, which may spill
		// past the current transaction's end (handled by completeService
		// finding arbitrating == true).
		s.snapshotWaiting()
		s.sched.After(s.arbOvh, s.resolveFn)
		return
	}
	s.res.Arbitrations++
	s.arbitrating = false
	w := out.Winner
	if s.tree != nil && s.cfg.Observer != nil {
		// One resolve event per level of the winner's path, root
		// first: the same settle seen at each bus of the tree. Wait is
		// the hop wait — resolve time minus the assert time of that
		// level's winning line. Metrics counts only the level-0 event
		// as an arbitration.
		now := s.sched.Now()
		for _, h := range s.tree.LastHops() {
			s.emit(obs.Event{Time: now, Kind: obs.ArbitrationResolve, Agent: w,
				Level: h.Level, Wait: now - h.LineUp})
		}
	} else {
		s.emit(obs.Event{Time: s.sched.Now(), Kind: obs.ArbitrationResolve, Agent: w})
	}
	if !s.agents[w].waiting() {
		panic(fmt.Sprintf("bussim: protocol %s granted non-waiting agent %d", s.proto.Name(), w))
	}
	if s.busBusy {
		s.pendingWin = w
	} else {
		s.startService(w)
	}
}

func (s *system) startService(id int) {
	a := s.agents[id]
	// The oldest queued request enters service.
	a.curGenTime = a.genTimes[a.genHead]
	a.genHead++
	if !a.waiting() {
		a.genTimes = a.genTimes[:0]
		a.genHead = 0
		s.waitingCount--
	}
	s.busBusy = true
	s.pendingWin = 0
	s.proto.OnServiceStart(id, s.sched.Now())
	s.emit(obs.Event{Time: s.sched.Now(), Kind: obs.ServiceStart, Agent: id})
	dur := s.service
	if s.cfg.ServiceDist != nil {
		dur = s.cfg.ServiceDist.Sample(s.serviceSrc)
	}
	a.curDur = dur
	s.sched.After(dur, a.completeFn)
	// §4.1: arbitration for the next master starts at the beginning of a
	// bus transaction whenever requests are waiting — fully overlapped.
	if s.waitingCount > 0 && !s.arbitrating {
		s.beginArbitration(false)
	}
}

func (s *system) completeService(a *agentState) {
	s.busBusy = false
	now := s.sched.Now()
	s.emit(obs.Event{Time: now, Kind: obs.ServiceEnd, Agent: a.id})
	s.recordCompletion(a, now-a.curGenTime, a.curDur)
	a.outstanding--
	if a.genBlocked {
		a.genBlocked = false
		s.scheduleNextRequest(a)
	}
	if s.done {
		return
	}
	switch {
	case s.pendingWin != 0:
		s.startService(s.pendingWin)
	case s.arbitrating:
		// An in-flight (repassed) arbitration will grant on resolution.
	case s.waitingCount > 0:
		// Requests arrived mid-transaction after the transaction-start
		// arbitration window: an exposed arbitration must run now.
		s.beginArbitration(true)
	}
}

func (s *system) recordCompletion(a *agentState, wait, dur float64) {
	if s.warmupLeft > 0 {
		s.warmupLeft--
		if s.warmupLeft == 0 {
			s.startTime = s.sched.Now()
			s.batchStart = s.sched.Now()
		}
		return
	}
	if s.completions >= s.target {
		return
	}
	s.completions++
	s.batchBusy += dur
	s.res.WaitPooled.Add(wait)
	s.res.AgentWait[a.id-1].Add(wait)
	if a.urgent {
		s.res.WaitUrgent.Add(wait)
	} else {
		s.res.WaitNormal.Add(wait)
	}
	s.batchWait.Add(wait)
	s.batchAgentCnt[a.id]++
	if s.res.Waits != nil {
		s.res.Waits.Add(wait)
	}
	if s.res.Hist != nil {
		s.res.Hist.Add(wait)
	}
	if s.completions%s.batchSize == 0 {
		s.closeBatch()
	}
	if s.completions >= s.target {
		s.done = true
	}
}

func (s *system) closeBatch() {
	now := s.sched.Now()
	dur := now - s.batchStart
	if dur <= 0 {
		dur = 1e-12
	}
	for id := 1; id <= s.cfg.N; id++ {
		s.agentBatches[id-1] = append(s.agentBatches[id-1],
			float64(s.batchAgentCnt[id])/dur)
		s.batchAgentCnt[id] = 0
	}
	s.waitBatchMeans = append(s.waitBatchMeans, s.batchWait.Mean())
	s.waitBatchStds = append(s.waitBatchStds, s.batchWait.StdDev())
	s.utilBatches = append(s.utilBatches, s.batchBusy/dur)
	s.batchBusy = 0
	s.batchWait.Reset()
	s.batchStart = now
	s.batchIdx++
}

func (s *system) finish() {
	r := s.res
	r.Completions = s.completions
	r.Elapsed = s.sched.Now() - s.startTime
	r.WallTime = s.sched.Now()
	r.AgentBatches = s.agentBatches

	// Total throughput per batch is the sum of agent throughputs.
	nb := len(s.waitBatchMeans)
	totals := make([]float64, nb)
	for b := 0; b < nb; b++ {
		for a := 0; a < s.cfg.N; a++ {
			totals[b] += s.agentBatches[a][b]
		}
	}
	r.Throughput = stats.BatchMeans(totals)
	r.Utilization = stats.BatchMeans(s.utilBatches)
	r.AgentThroughput = make([]stats.Estimate, s.cfg.N)
	for a := 0; a < s.cfg.N; a++ {
		r.AgentThroughput[a] = stats.BatchMeans(s.agentBatches[a])
	}
	r.WaitMean = stats.BatchMeans(s.waitBatchMeans)
	r.WaitStdDev = stats.BatchMeans(s.waitBatchStds)
	r.BatchAutocorr = stats.Lag1Autocorrelation(s.waitBatchMeans)
}
